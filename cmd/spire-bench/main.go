// Command spire-bench regenerates every table and figure from the paper's
// evaluation (§IV-V) plus the ablation studies called out in DESIGN.md.
//
// Usage:
//
//	spire-bench -all
//	spire-bench -table2 -scale 0.5
//	spire-bench -fig7 -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"spire/internal/experiments"
	"spire/internal/htmlreport"
	"spire/internal/report"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		table1   = flag.Bool("table1", false, "Table I: workload TMA classification")
		table2   = flag.Bool("table2", false, "Table II: SPIRE top metrics per test workload")
		table3   = flag.Bool("table3", false, "Table III: metric abbreviation registry")
		fig2     = flag.Bool("fig2", false, "Fig 2: classic roofline with two apps")
		fig5     = flag.Bool("fig5", false, "Fig 5: left-region fitting walkthrough")
		fig6     = flag.Bool("fig6", false, "Fig 6: right-region fitting walkthrough")
		fig7     = flag.Bool("fig7", false, "Fig 7: learned rooflines (BP.1, DB.2)")
		overhead = flag.Bool("overhead", false, "sampling overhead experiment")
		ablate   = flag.Bool("ablations", false, "design-choice ablations")
		scale    = flag.Float64("scale", 1.0, "workload length multiplier")
		seed     = flag.Int64("seed", 42, "experiment seed")
		parallel = flag.Int("parallel", 4, "concurrent workload simulations")
		csvDir   = flag.String("csv", "", "directory to write figure CSV series into")
		htmlOut  = flag.String("html", "", "write a self-contained HTML dashboard of the evaluation to this file")
	)
	flag.Parse()

	if !(*all || *table1 || *table2 || *table3 || *fig2 || *fig5 || *fig6 || *fig7 || *overhead || *ablate || *htmlOut != "") {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Parallel = *parallel
	sess := experiments.NewSession(cfg)

	start := time.Now()
	run := func(name string, enabled bool, f func() error) {
		if !enabled && !*all {
			return
		}
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "spire-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", *table1, func() error {
		rows, err := sess.Table1()
		if err != nil {
			return err
		}
		return experiments.RenderTable1(os.Stdout, rows)
	})
	run("table2", *table2, func() error {
		cols, err := sess.Table2()
		if err != nil {
			return err
		}
		return experiments.RenderTable2(os.Stdout, cols)
	})
	run("table3", *table3, func() error {
		return experiments.RenderTable3(os.Stdout)
	})
	run("fig2", *fig2, func() error {
		fig, err := sess.Fig2()
		if err != nil {
			return err
		}
		apps := report.Series{Name: "apps"}
		for _, a := range fig.Apps {
			apps.X = append(apps.X, a.Intensity)
			apps.Y = append(apps.Y, a.Throughput)
		}
		fmt.Println("Fig 2: classic roofline (IPC vs instructions/DRAM-byte)")
		for _, a := range fig.Apps {
			fmt.Printf("  %s: I=%.3g, P=%.2f -> %s\n", a.Name, a.Intensity, a.Throughput, fig.Bounds[a.Name])
		}
		if err := report.AsciiPlot(os.Stdout, 72, 18, fig.Roof, apps, fig.DRAM, fig.Scalar); err != nil {
			return err
		}
		return writeCSV(*csvDir, "fig2.csv", fig.Roof, fig.DRAM, fig.Scalar, apps)
	})
	run("fig5", *fig5, func() error {
		d, err := experiments.Fig5()
		if err != nil {
			return err
		}
		fmt.Println("Fig 5: left-region convex-hull fit")
		printDemo(d)
		return writeCSV(*csvDir, "fig5.csv", d.Curve, d.Points)
	})
	run("fig6", *fig6, func() error {
		d, err := experiments.Fig6()
		if err != nil {
			return err
		}
		fmt.Println("Fig 6: right-region Pareto + shortest-path fit")
		printDemo(d)
		fmt.Printf("  total squared overestimation: %.2f\n", d.TotalSquaredError)
		return writeCSV(*csvDir, "fig6.csv", d.Curve, d.Points)
	})
	run("fig7", *fig7, func() error {
		figs, err := sess.Fig7()
		if err != nil {
			return err
		}
		for _, f := range figs {
			fmt.Printf("Fig 7 (%s = %s): %d training samples, peak (%.3g, %.3g), tail %.3g\n",
				f.Abbr, f.Metric, len(f.Samples.X), f.Roofline.Peak().X, f.Roofline.Peak().Y, f.Roofline.TailY)
			if err := report.AsciiPlot(os.Stdout, 72, 16, f.Curve, f.Samples); err != nil {
				return err
			}
			if err := writeCSV(*csvDir, "fig7-"+f.Abbr+".csv", f.Curve, f.Samples); err != nil {
				return err
			}
		}
		return nil
	})
	run("overhead", *overhead, func() error {
		oh, err := sess.Overhead()
		if err != nil {
			return err
		}
		names := make([]string, 0, len(oh.PerWorkload))
		for n := range oh.PerWorkload {
			names = append(names, n)
		}
		sort.Strings(names)
		t := report.Table{
			Title:   "Sampling overhead per workload (paper: 1.6% avg, 4.6% max)",
			Headers: []string{"Workload", "Overhead"},
		}
		for _, n := range names {
			t.AddRow(n, fmt.Sprintf("%.2f%%", 100*oh.PerWorkload[n]))
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("mean %.2f%%, max %.2f%%\n", 100*oh.Mean, 100*oh.Max)
		return nil
	})
	run("ablations", *ablate, func() error {
		return runAblations(sess)
	})

	if *htmlOut != "" {
		t0 := time.Now()
		page, err := htmlreport.ExperimentsPage(sess)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spire-bench: html: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spire-bench: html: %v\n", err)
			os.Exit(1)
		}
		if err := page.Render(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "spire-bench: html: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "spire-bench: html: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[html dashboard written to %s in %v]\n", *htmlOut, time.Since(t0).Round(time.Millisecond))
	}

	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}

func printDemo(d *experiments.FitDemo) {
	fmt.Printf("  samples: %v\n", d.Samples)
	fmt.Printf("  left breakpoints:  %v\n", d.Roofline.Left)
	fmt.Printf("  right breakpoints: %v (tail %.3g)\n", d.Roofline.Right, d.Roofline.TailY)
	report.AsciiPlot(os.Stdout, 72, 14, d.Curve, d.Points)
}

func writeCSV(dir, name string, series ...report.Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteCSV(f, series...); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", filepath.Join(dir, name))
	return f.Close()
}

func runAblations(sess *experiments.Session) error {
	twa, err := sess.AblationTWA()
	if err != nil {
		return err
	}
	t := report.Table{
		Title:   "Ablation: time-weighted average (Eq. 1) vs unweighted mean",
		Headers: []string{"Workload", "Spearman rho", "Top-10 overlap", "|min shift|"},
	}
	for _, r := range twa {
		t.AddRow(r.Workload, fmt.Sprintf("%.3f", r.SpearmanRho),
			fmt.Sprintf("%.2f", r.OverlapTop10), fmt.Sprintf("%.4f", r.MinShiftAbs))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	red, err := sess.AblationEnsembleReduction()
	if err != nil {
		return err
	}
	t = report.Table{
		Title:   "Ablation: min-reduction vs mean-reduction of per-metric estimates",
		Headers: []string{"Workload", "Measured", "Min est.", "Mean est.", "Min/meas", "Mean/meas"},
	}
	for _, r := range red {
		t.AddRow(r.Workload, fmt.Sprintf("%.2f", r.Measured),
			fmt.Sprintf("%.2f", r.MinEst), fmt.Sprintf("%.2f", r.MeanEst),
			fmt.Sprintf("%.2f", r.MinRatio), fmt.Sprintf("%.2f", r.MeanRatio))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	mux, err := sess.AblationMultiplex()
	if err != nil {
		return err
	}
	t = report.Table{
		Title:   "Ablation: multiplexed sampling vs oracle PMU",
		Headers: []string{"Workload", "Spearman rho", "Top-10 overlap"},
	}
	for _, r := range mux {
		t.AddRow(r.Workload, fmt.Sprintf("%.3f", r.SpearmanRho), fmt.Sprintf("%.2f", r.OverlapTop10))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	sizes, err := sess.AblationTrainingSize([]int{4, 8, 16, 23})
	if err != nil {
		return err
	}
	t = report.Table{
		Title:   "Ablation: training-set size vs ranking stability",
		Headers: []string{"Training workloads", "Mean top-10 overlap with full model"},
	}
	for _, p := range sizes {
		t.AddRow(fmt.Sprintf("%d", p.Workloads), fmt.Sprintf("%.2f", p.MeanOverlapTop10))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	mb, err := sess.AblationMicrobenchTraining()
	if err != nil {
		return err
	}
	t = report.Table{
		Title:   "Ablation: application-trained vs microbenchmark-trained model (paper's 'ideal' regime)",
		Headers: []string{"Workload", "App top-1", "Microbench top-1", "Top-10 overlap", "Estimate ratio"},
	}
	for _, r := range mb {
		t.AddRow(r.Workload, r.WorkloadTrainedTop1, r.MicrobenchTrainedTop1,
			fmt.Sprintf("%.2f", r.OverlapTop10), fmt.Sprintf("%.2f", r.EstimateRatio))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	pf, err := sess.AblationPrefetcher()
	if err != nil {
		return err
	}
	t = report.Table{
		Title:   "Ablation: L2 stride prefetcher (simulator extension)",
		Headers: []string{"Workload", "Base IPC", "Prefetch IPC", "Speedup"},
	}
	for _, r := range pf {
		t.AddRow(r.Workload, fmt.Sprintf("%.3f", r.BaseIPC),
			fmt.Sprintf("%.3f", r.PrefetchIPC), fmt.Sprintf("%.2fx", r.Speedup))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	seeds, err := sess.AblationSeeds([]int64{sess.Cfg.Seed, sess.Cfg.Seed + 1, sess.Cfg.Seed + 2})
	if err != nil {
		return err
	}
	t = report.Table{
		Title:   "Ablation: ranking stability across seeds",
		Headers: []string{"Workload", "Mean pairwise top-10 overlap"},
	}
	for _, r := range seeds {
		t.AddRow(r.Workload, fmt.Sprintf("%.2f", r.MeanOverlapTop10))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	cv, err := sess.CrossValidate(0.10)
	if err != nil {
		return err
	}
	t = report.Table{
		Title:   "Leave-one-out cross-validation: does the bound hold for unseen workloads?",
		Headers: []string{"Held-out workload", "Measured", "Bound", "Bound/measured"},
	}
	for _, p := range cv.Points {
		t.AddRow(p.Workload, fmt.Sprintf("%.3f", p.Measured),
			fmt.Sprintf("%.3f", p.Estimate), fmt.Sprintf("%.2f", p.Ratio))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("violations (ratio < %.2f): %.0f%%; median ratio %.2f, worst %.2f\n",
		1-cv.Tolerance, 100*cv.ViolationRate, cv.MedianRatio, cv.WorstRatio)
	return nil
}
