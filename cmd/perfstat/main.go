// Command perfstat runs a suite workload on the simulated CPU core and
// collects performance counter samples the way `perf stat` does on real
// hardware: fixed counters for time and work, multiplexed programmable
// counters for the metric events. The sample dataset is written as JSON
// for spire train / spire analyze.
//
// Usage:
//
//	perfstat -list
//	perfstat -workload onnx -o onnx.json
//	perfstat -workload tnn -scale 0.5 -interval 25000 -oracle -o tnn.json
//	perfstat -workload fftw -record-trace fftw.trc
//	perfstat -trace fftw.trc -o fftw.json
package main

import (
	"flag"
	"fmt"
	"os"

	"spire/internal/calibrate"
	"spire/internal/core"
	"spire/internal/isa"
	"spire/internal/perfstat"
	"spire/internal/sim"
	"spire/internal/tma"
	"spire/internal/trace"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available workloads and exit")
		workload = flag.String("workload", "", "workload name (see -list)")
		scale    = flag.Float64("scale", 1.0, "dynamic instruction count multiplier")
		seed     = flag.Int64("seed", 42, "workload seed")
		interval = flag.Uint64("interval", 50_000, "sampling interval in cycles")
		maxCy    = flag.Uint64("max-cycles", 4_000_000, "simulation cycle cap")
		oracle   = flag.Bool("oracle", false, "disable counter multiplexing (count everything always)")
		out      = flag.String("o", "", "output file for the sample dataset (default stdout)")
		traceOut = flag.String("record-trace", "", "record the workload's instruction trace to this file and exit")
		traceIn  = flag.String("trace", "", "run a recorded trace file instead of a named workload")
		coreName = flag.String("core", "default", "microarchitecture: default, little, or a JSON config file")
		kernelIn = flag.String("kernel", "", "run a custom kernel definition (JSON, see workloads.Kernel) instead of a named workload")
		showTMA  = flag.Bool("tma", false, "print the Top-Down Analysis drill-down after the run")
		calProbe = flag.Bool("calibrate", false, "characterize the selected core with probe kernels and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("available workloads (training + testing):")
		for _, spec := range workloads.All() {
			set := "train"
			if spec.Testing {
				set = "test"
			}
			fmt.Printf("  %-18s %-6s expected bottleneck: %s\n", spec.Name, set, spec.Expected)
		}
		return
	}
	if *calProbe {
		cfg, err := uarch.ByName(*coreName)
		if err != nil {
			fatal(err)
		}
		m, err := calibrate.Discover(cfg, calibrate.Options{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("machine characterization (%s):\n%s", cfg.Name, m.Report(cfg))
		return
	}
	if *workload == "" && *traceIn == "" && *kernelIn == "" {
		fmt.Fprintln(os.Stderr, "perfstat: -workload, -trace or -kernel is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}
	var prog isa.Program
	name := *workload
	if *kernelIn != "" {
		f, err := os.Open(*kernelIn)
		if err != nil {
			fatal(err)
		}
		k, err := workloads.ReadKernel(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		k.TotalInsts = int(float64(k.TotalInsts) * *scale)
		if k.TotalInsts < 2000 {
			k.TotalInsts = 2000
		}
		prog = k
		name = k.KName
	} else if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fatal(err)
		}
		prog, err = trace.Load(f, *traceIn)
		f.Close()
		if err != nil {
			fatal(err)
		}
		name = prog.Name()
	} else {
		spec, err := workloads.ByName(*workload)
		if err != nil {
			fatal(err)
		}
		prog = spec.Build(*scale)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		n, err := trace.Record(f, prog, *seed, 1<<24)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "perfstat: recorded %d instructions to %s\n", n, *traceOut)
		return
	}
	cfg, err := uarch.ByName(*coreName)
	if err != nil {
		fatal(err)
	}
	s, err := sim.New(cfg, prog, *seed)
	if err != nil {
		fatal(err)
	}
	data, rep, err := perfstat.Collect(s, name, perfstat.Options{
		IntervalCycles: *interval,
		MaxCycles:      *maxCy,
		Multiplex:      !*oracle,
	})
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := core.WriteDataset(w, data); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"perfstat: %s ran %d instructions in %d cycles (IPC %.2f); %d samples over %d intervals, %.1f%% sampling overhead\n",
		rep.Workload, rep.Instructions, rep.Cycles, rep.IPC, rep.Samples, rep.Intervals, 100*rep.OverheadFraction)

	if *showTMA {
		tree, err := tma.Tree(s.PMU().Snapshot(), cfg.IssueWidth)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "\nTop-Down Analysis (%s):\n", name)
		if err := tree.Render(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perfstat:", err)
	os.Exit(1)
}
