package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"spire/internal/testutil"
)

// watchModel ingests the clean e2e fixture and trains a model for the
// watch tests, returning the model path.
func watchModel(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	dataset := filepath.Join(dir, "dataset.json")
	model := filepath.Join(dir, "model.json")
	if _, stderr, code := runSpire(t, "ingest", "-o", dataset, "testdata/e2e_clean.csv"); code != 0 {
		t.Fatalf("ingest exit %d: %s", code, stderr)
	}
	if _, stderr, code := runSpire(t, "train", "-o", model, dataset); code != 0 {
		t.Fatalf("train exit %d: %s", code, stderr)
	}
	return model
}

// TestE2EWatchGolden replays the clean fixture through `spire watch
// -json` and pins the emitted window stream to a golden file: one compact
// JSON result per completed interval, byte for byte. The same command fed
// over stdin must produce identical output — the watch path is
// chunking-independent all the way through the real binary.
func TestE2EWatchGolden(t *testing.T) {
	model := watchModel(t)

	args := []string{"watch", "-model", model, "-json", "-window", "4", "-top", "3"}
	stdout, stderr, code := runSpire(t, append(args, "testdata/e2e_clean.csv")...)
	if code != 0 {
		t.Fatalf("watch exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "spire watch: 82 lines, 16 intervals") {
		t.Errorf("watch stderr stats: %q", stderr)
	}

	// Structure: 16 intervals -> 16 windows, seq 1..16, every line valid
	// JSON carrying an estimation with at most 3 ranked metrics.
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != 16 {
		t.Fatalf("watch emitted %d lines, want 16:\n%s", len(lines), stdout)
	}
	for i, line := range lines {
		var res struct {
			Seq        uint64 `json:"seq"`
			Model      string `json:"model"`
			Intervals  int    `json:"intervals"`
			Samples    int    `json:"samples"`
			Error      string `json:"error"`
			Estimation *struct {
				PerMetric []json.RawMessage `json:"perMetric"`
			} `json:"estimation"`
		}
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i+1, err, line)
		}
		if res.Seq != uint64(i+1) {
			t.Errorf("line %d: seq %d, want %d", i+1, res.Seq, i+1)
		}
		wantIv := i + 1
		if wantIv > 4 {
			wantIv = 4
		}
		if res.Intervals != wantIv || res.Samples != 3*wantIv {
			t.Errorf("line %d: %d intervals / %d samples, want %d / %d",
				i+1, res.Intervals, res.Samples, wantIv, 3*wantIv)
		}
		if res.Error != "" || res.Estimation == nil || res.Model == "" {
			t.Errorf("line %d: missing estimation: %s", i+1, line)
		} else if len(res.Estimation.PerMetric) > 3 {
			t.Errorf("line %d: %d ranked metrics, want <= 3", i+1, len(res.Estimation.PerMetric))
		}
	}

	// Golden: the full stream is pinned (training is deterministic, so
	// the model fingerprint embedded in each line is too).
	golden := filepath.Join("testdata", "golden_watch.jsonl")
	testutil.Golden(t, golden, []byte(stdout), *update)

	// Stdin parity: `spire watch ... -` fed the same bytes emits the same
	// stream.
	raw, err := os.ReadFile("testdata/e2e_clean.csv")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(spireBin, append(args, "-")...)
	cmd.Stdin = bytes.NewReader(raw)
	var viaStdin, stdinErr bytes.Buffer
	cmd.Stdout = &viaStdin
	cmd.Stderr = &stdinErr
	if err := cmd.Run(); err != nil {
		t.Fatalf("watch over stdin: %v\nstderr: %s", err, stdinErr.String())
	}
	if viaStdin.String() != stdout {
		t.Errorf("stdin watch diverges from file watch\nstdin:\n%s\nfile:\n%s", viaStdin.String(), stdout)
	}
}

// TestE2EWatchTextAndExitCodes covers the human-readable mode and the
// exit-code contract: text output digests each window on one line, a
// corrupt lenient stream exits 3 (partial) while still emitting windows,
// and usage errors exit 2 via flag handling in main.
func TestE2EWatchTextAndExitCodes(t *testing.T) {
	model := watchModel(t)

	stdout, _, code := runSpire(t, "watch", "-model", model, "-top", "2", "testdata/e2e_clean.csv")
	if code != 0 {
		t.Fatalf("watch exit %d", code)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != 16 {
		t.Fatalf("text watch emitted %d lines, want 16", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "window ") || !strings.Contains(line, "bottleneck ") {
			t.Errorf("text line %q", line)
		}
	}

	stdout, stderr, code := runSpire(t, "watch", "-model", model, "-json", "testdata/e2e_corrupt.csv")
	if code != 3 {
		t.Errorf("corrupt watch exit %d, want 3 (partial)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "severe anomalies quarantined") {
		t.Errorf("corrupt watch stderr must explain the partial exit: %q", stderr)
	}
	if len(strings.TrimSpace(stdout)) == 0 {
		t.Error("corrupt watch should still emit the surviving windows")
	}

	if _, _, code := runSpire(t, "watch", "-model", model); code != 1 {
		t.Errorf("watch with no input exit %d, want 1", code)
	}
	if _, _, code := runSpire(t, "watch", "-model", filepath.Join(t.TempDir(), "missing.json"), "testdata/e2e_clean.csv"); code != 1 {
		t.Errorf("watch with missing model exit %d, want 1", code)
	}
}
