package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"spire/internal/core"
	"spire/internal/ingest"
)

// errPartialIngest marks a lenient ingestion that produced a usable
// dataset but lost input to severe anomalies (anything strict mode would
// have aborted on). main maps it to exit code 3 so pipelines can tell
// "clean", "degraded" and "failed" apart; before this the CLI exited 0
// either way.
var errPartialIngest = errors.New("partial ingest")

// cmdIngest converts raw counter collections — real `perf stat -x, -I`
// interval CSV or simulator JSON — into a validated SPIRE dataset,
// reporting everything it had to drop on stderr.
func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	out := fs.String("o", "dataset.json", `output dataset file ("-" for stdout)`)
	strict := fs.Bool("strict", false, "abort on the first severe anomaly instead of quarantining")
	lenient := fs.Bool("lenient", false, "quarantine anomalies and keep going (the default)")
	format := fs.String("format", "auto", "input format: auto, csv (perf stat -x, -I) or json")
	minRunPct := fs.Float64("min-run-pct", 0, "drop rows whose event ran less than this % of the interval")
	cyclesEvent := fs.String("cycles-event", "", "event supplying T (default cpu_clk_unhalted.thread; generic aliases accepted)")
	instEvent := fs.String("inst-event", "", "event supplying W (default inst_retired.any; generic aliases accepted)")
	verbose := fs.Bool("v", false, "print every retained diagnostic, not just the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *strict && *lenient {
		return fmt.Errorf("-strict and -lenient are mutually exclusive")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no input files given")
	}
	opts := ingest.Options{
		Mode:        ingest.Lenient,
		MinRunPct:   *minRunPct,
		CyclesEvent: *cyclesEvent,
		InstEvent:   *instEvent,
	}
	if *strict {
		opts.Mode = ingest.Strict
	}

	var merged core.Dataset
	windowBase := 0
	severe := 0
	for _, path := range fs.Args() {
		res, err := ingestOne(path, *format, opts)
		if res != nil {
			fmt.Fprintf(os.Stderr, "spire ingest: %s: %s\n", path, res.Summary())
			if *verbose {
				for _, d := range res.Diags {
					if d.Line > 0 {
						fmt.Fprintf(os.Stderr, "  line %d [%s] %s\n", d.Line, d.ClassName, d.Msg)
					} else {
						fmt.Fprintf(os.Stderr, "  [%s] %s\n", d.ClassName, d.Msg)
					}
				}
			}
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		severe += res.Stats.SevereDiags()
		// Offset window tags so intervals from different input files stay
		// distinct periods in the merged dataset.
		maxW := 0
		for _, s := range res.Dataset.Samples {
			s.Window += windowBase
			if s.Window > maxW {
				maxW = s.Window
			}
			merged.Add(s)
		}
		// Scheduler events ride the same per-file offset so the on/off-CPU
		// partition stays aligned with this file's counter intervals.
		for _, ev := range res.Dataset.Sched {
			if ev.Window > 0 {
				ev.Window += windowBase
				if ev.Window > maxW {
					maxW = ev.Window
				}
			}
			merged.AddSched(ev)
		}
		if maxW > windowBase {
			windowBase = maxW
		}
	}
	if merged.Len() == 0 {
		return fmt.Errorf("no samples survived ingestion")
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := core.WriteDataset(w, merged); err != nil {
		return err
	}
	if *out != "-" {
		sched := ""
		if len(merged.Sched) > 0 {
			sched = fmt.Sprintf(", %d sched events", len(merged.Sched))
		}
		fmt.Printf("wrote %d samples (%d metrics%s) -> %s\n", merged.Len(), len(merged.Metrics()), sched, *out)
	}
	if severe > 0 {
		return fmt.Errorf("%w: %d severe anomalies quarantined (details on stderr)", errPartialIngest, severe)
	}
	return nil
}

// ingestOne reads one input file in the requested format. The Result is
// non-nil even on error so the caller can print partial diagnostics.
func ingestOne(path, format string, opts ingest.Options) (*ingest.Result, error) {
	switch format {
	case "auto":
		return ingest.File(path, opts)
	case "csv", "json":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if format == "csv" {
			return ingest.ReadCSV(f, opts)
		}
		return ingest.ReadJSON(f, opts)
	}
	return nil, fmt.Errorf("unknown -format %q (want auto, csv or json)", format)
}
