package main

// Black-box CLI coverage for the hierarchical rooflines: a calibrated
// hierarchical model analyzed over each roster kernel's counters must
// name the engineered binding level through `spire analyze -json`, the
// human rendering must surface the verdict, `spire train -hierarchy`
// must produce a model that reports binding levels, and `spire diff
// -json` must carry the level movement fields.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"spire/internal/calibrate"
	"spire/internal/core"
	"spire/internal/pmu"
	"spire/internal/sim"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

// e2eHierModel calibrates the hierarchical model once per test process.
var e2eHierModel = struct {
	once sync.Once
	ens  *core.Ensemble
	err  error
}{}

func e2eHierarchyModel(t *testing.T) *core.Ensemble {
	t.Helper()
	e2eHierModel.once.Do(func() {
		cfg := uarch.Default()
		hm, err := calibrate.DiscoverHierarchy(cfg, calibrate.Options{})
		if err != nil {
			e2eHierModel.err = err
			return
		}
		sp, err := calibrate.SweepSparsity(cfg, calibrate.Options{})
		if err != nil {
			e2eHierModel.err = err
			return
		}
		vw, err := calibrate.SweepVecWidthMix(cfg, calibrate.Options{})
		if err != nil {
			e2eHierModel.err = err
			return
		}
		e2eHierModel.ens, e2eHierModel.err = hm.Model(sp, vw)
	})
	if e2eHierModel.err != nil {
		t.Fatal(e2eHierModel.err)
	}
	return e2eHierModel.ens
}

var e2eLevelEvents = map[string]pmu.EventID{
	"mem_load_retired.l1_hit":  pmu.EvLoadL1Hit,
	"mem_load_retired.l2_hit":  pmu.EvLoadL2Hit,
	"mem_load_retired.l3_hit":  pmu.EvLoadL3Hit,
	"mem_load_retired.l3_miss": pmu.EvLoadL3Miss,
}

var e2eParamEvents = map[string]pmu.EventID{
	"br_misp_retired.all_branches":      pmu.EvBrMispRetired,
	"uops_issued.vector_width_mismatch": pmu.EvVecWidthMismatch,
}

// e2eKernelDataset simulates one roster kernel and writes its counter
// dataset where the CLI can read it.
func e2eKernelDataset(t *testing.T, ens *core.Ensemble, hs workloads.HierarchySpec, path string) {
	t.Helper()
	s, err := sim.New(uarch.Default(), hs.Build(1), 42)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(1 << 32)
	if !res.Drained {
		t.Fatalf("%s did not drain", hs.Name)
	}
	cycles, insts := float64(res.Cycles), float64(res.Instructions)
	var data core.Dataset
	for _, lv := range ens.Hierarchy.Levels {
		data.Samples = append(data.Samples, core.Sample{
			Metric: lv.Metric, T: cycles, W: insts,
			M: float64(res.Counts.Read(e2eLevelEvents[lv.Metric])),
		})
	}
	for metric, ev := range e2eParamEvents {
		data.Samples = append(data.Samples, core.Sample{
			Metric: metric, T: cycles, W: insts,
			M: float64(res.Counts.Read(ev)),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WriteDataset(f, data); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestE2EHierarchyAnalyze: `spire analyze -json` on every roster kernel
// names the kernel's engineered binding level; the human rendering
// prints the verdict line.
func TestE2EHierarchyAnalyze(t *testing.T) {
	ens := e2eHierarchyModel(t)
	dir := t.TempDir()
	model := filepath.Join(dir, "hier-model.json")
	f, err := os.Create(model)
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for _, hs := range workloads.Hierarchy() {
		dataset := filepath.Join(dir, hs.Name+".json")
		e2eKernelDataset(t, ens, hs, dataset)

		stdout, stderr, code := runSpire(t, "analyze", "-model", model, "-json", dataset)
		if code != 0 {
			t.Fatalf("%s: analyze -json exited %d: %s", hs.Name, code, stderr)
		}
		var est core.Estimation
		if err := json.Unmarshal([]byte(stdout), &est); err != nil {
			t.Fatalf("%s: analyze -json output: %v\n%s", hs.Name, err, stdout)
		}
		if est.Hierarchy == nil {
			t.Fatalf("%s: no hierarchy in analyze -json output", hs.Name)
		}
		if got := est.Hierarchy.BindingLevel; got != hs.ExpectedLevel {
			t.Errorf("%s: analyze -json binding level %s, engineered for %s", hs.Name, got, hs.ExpectedLevel)
		}

		// Human mode surfaces the same verdict.
		stdout, stderr, code = runSpire(t, "analyze", "-model", model, dataset)
		if code != 0 {
			t.Fatalf("%s: analyze exited %d: %s", hs.Name, code, stderr)
		}
		want := "memory hierarchy: bound at " + hs.ExpectedLevel + " "
		if !strings.Contains(stdout, want) {
			t.Errorf("%s: human output missing %q:\n%s", hs.Name, want, stdout)
		}
	}
}

// TestE2ETrainHierarchy: a model trained with -hierarchy reports a
// binding level through analyze, and diff -json carries the movement
// fields; the same training without -hierarchy stays flat.
func TestE2ETrainHierarchy(t *testing.T) {
	dir := t.TempDir()
	dataset := filepath.Join(dir, "levels.json")
	var d core.Dataset
	for i := 1; i <= 8; i++ {
		for metric, m := range map[string]float64{
			"mem_load_retired.l1_hit":  1000,
			"mem_load_retired.l2_hit":  400_000,
			"mem_load_retired.l3_hit":  100,
			"mem_load_retired.l3_miss": 10,
		} {
			d.Add(core.Sample{Metric: metric, T: 1e6, W: 2e6 * float64(i) / 4, M: m * float64(i)})
		}
	}
	f, err := os.Create(dataset)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WriteDataset(f, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	model := filepath.Join(dir, "model.json")
	if _, stderr, code := runSpire(t, "train", "-hierarchy", "-o", model, dataset); code != 0 {
		t.Fatalf("train -hierarchy exited %d: %s", code, stderr)
	}
	stdout, stderr, code := runSpire(t, "analyze", "-model", model, "-json", dataset)
	if code != 0 {
		t.Fatalf("analyze exited %d: %s", code, stderr)
	}
	var est core.Estimation
	if err := json.Unmarshal([]byte(stdout), &est); err != nil {
		t.Fatal(err)
	}
	if est.Hierarchy == nil || est.Hierarchy.BindingLevel == "" {
		t.Fatalf("train -hierarchy model produced no binding level: %s", stdout)
	}

	// diff -json carries the per-side binding levels.
	stdout, stderr, code = runSpire(t, "diff", "-model", model, "-json", dataset, dataset)
	if code != 0 {
		t.Fatalf("diff exited %d: %s", code, stderr)
	}
	var res struct {
		BindingLevelBefore string `json:"bindingLevelBefore"`
		BindingLevelAfter  string `json:"bindingLevelAfter"`
	}
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatal(err)
	}
	if res.BindingLevelBefore == "" || res.BindingLevelBefore != res.BindingLevelAfter {
		t.Fatalf("diff -json binding levels (%q, %q), want identical non-empty", res.BindingLevelBefore, res.BindingLevelAfter)
	}

	// Without -hierarchy the same training stays flat: no hierarchy in
	// the analyze output, byte for byte the pre-hierarchy contract.
	flatModel := filepath.Join(dir, "flat.json")
	if _, stderr, code := runSpire(t, "train", "-o", flatModel, dataset); code != 0 {
		t.Fatalf("train exited %d: %s", code, stderr)
	}
	stdout, stderr, code = runSpire(t, "analyze", "-model", flatModel, "-json", dataset)
	if code != 0 {
		t.Fatalf("flat analyze exited %d: %s", code, stderr)
	}
	if strings.Contains(stdout, "hierarchy") {
		t.Fatalf("flat model output mentions a hierarchy: %s", stdout)
	}
}
