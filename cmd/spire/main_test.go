package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spire/internal/core"
	"spire/internal/perfstat"
	"spire/internal/sim"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

// writeSamples collects a small dataset from a suite workload and writes
// it to dir.
func writeSamples(t *testing.T, dir, workload string) string {
	t.Helper()
	spec, err := workloads.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(uarch.Default(), spec.Build(0.02), 3)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := perfstat.Collect(s, workload, perfstat.Options{
		IntervalCycles: 10_000,
		MaxCycles:      300_000,
		Multiplex:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, workload+".json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := core.WriteDataset(f, data); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrainAnalyzeInfoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d1 := writeSamples(t, dir, "fftw")
	d2 := writeSamples(t, dir, "remhos")
	target := writeSamples(t, dir, "onnx")
	model := filepath.Join(dir, "model.json")

	if err := cmdTrain([]string{"-o", model, d1, d2}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}
	htmlPath := filepath.Join(dir, "report.html")
	if err := cmdAnalyze([]string{"-model", model, "-top", "5", "-interpret", "-timeline", "-html", htmlPath, target}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatalf("html report not written: %v", err)
	}
	if !strings.Contains(string(html), "<svg") {
		t.Error("html report missing plots")
	}
	if err := cmdInfo([]string{"-model", model}); err != nil {
		t.Fatalf("info: %v", err)
	}
}

// TestTrainWorkersDeterministic: the -workers flag must not change the
// model file, and -v prints the skip summary.
func TestTrainWorkersDeterministic(t *testing.T) {
	dir := t.TempDir()
	d1 := writeSamples(t, dir, "fftw")
	d2 := writeSamples(t, dir, "remhos")

	serial := filepath.Join(dir, "serial.json")
	if err := cmdTrain([]string{"-o", serial, "-workers", "1", d1, d2}); err != nil {
		t.Fatalf("train -workers 1: %v", err)
	}
	want, err := os.ReadFile(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"0", "4", "13"} {
		out := filepath.Join(dir, "par"+w+".json")
		if err := cmdTrain([]string{"-o", out, "-workers", w, "-v", d1, d2}); err != nil {
			t.Fatalf("train -workers %s: %v", w, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("-workers %s produced a different model than -workers 1", w)
		}
	}

	// Analyze must accept the flag too.
	if err := cmdAnalyze([]string{"-model", serial, "-workers", "3", d1}); err != nil {
		t.Fatalf("analyze -workers 3: %v", err)
	}
}

func TestTrainNoDatasets(t *testing.T) {
	if err := cmdTrain([]string{"-o", filepath.Join(t.TempDir(), "m.json")}); err == nil {
		t.Error("expected error with no dataset files")
	}
}

func TestAnalyzeMissingModel(t *testing.T) {
	dir := t.TempDir()
	d := writeSamples(t, dir, "fftw")
	if err := cmdAnalyze([]string{"-model", filepath.Join(dir, "missing.json"), d}); err == nil {
		t.Error("expected error for missing model")
	}
}

func TestReadDatasetsBadFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readDatasets([]string{bad}); err == nil {
		t.Error("expected decode error")
	}
	if _, err := readDatasets([]string{filepath.Join(dir, "nope.json")}); err == nil {
		t.Error("expected open error")
	}
	if _, err := readDatasets(nil); err == nil {
		t.Error("expected error for empty path list")
	}
}

func TestDiffCommand(t *testing.T) {
	dir := t.TempDir()
	d1 := writeSamples(t, dir, "fftw")
	d2 := writeSamples(t, dir, "remhos")
	before := writeSamples(t, dir, "onnx")
	after := writeSamples(t, dir, "qmcpack") // stand-in for "optimized"
	model := filepath.Join(dir, "model.json")
	if err := cmdTrain([]string{"-o", model, d1, d2}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := cmdDiff([]string{"-model", model, "-top", "5", before, after}); err != nil {
		t.Fatalf("diff: %v", err)
	}
	if err := cmdDiff([]string{"-model", model, before}); err == nil {
		t.Error("diff with one dataset should fail")
	}
	if err := cmdDiff([]string{"-model", filepath.Join(dir, "none.json"), before, after}); err == nil {
		t.Error("diff with missing model should fail")
	}
}
