// Command spire trains and applies SPIRE models from the command line.
//
// Usage:
//
//	spire ingest -o dataset.json perf-interval.csv
//	spire train -o model.json sample1.json sample2.json ...
//	spire analyze -model model.json -top 10 workload.json
//	spire watch -model model.json -follow perf-live.csv
//	spire serve -addr :9090 -model model.json
//	spire route -addr :9091 -shards a=http://127.0.0.1:9090
//	spire info -model model.json
//
// Exit codes are uniform across subcommands: 0 success, 1 error, 2 usage
// error, 3 partial success (a lenient ingest lost input to severe
// anomalies but still produced a dataset). Data goes to stdout (or the
// -o file); every diagnostic, warning and log line goes to stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"spire/internal/analysis"
	"spire/internal/buildinfo"
	"spire/internal/core"
	"spire/internal/engine"
	"spire/internal/htmlreport"
	"spire/internal/pmu"
	"spire/internal/report"
)

// The uniform exit-code contract (tested black-box in e2e_test.go).
const (
	exitOK      = 0
	exitErr     = 1
	exitUsage   = 2
	exitPartial = 3
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches one subcommand and maps its error to an exit code.
func run(args []string) int {
	if len(args) < 1 {
		usage()
		return exitUsage
	}
	var err error
	switch args[0] {
	case "ingest":
		err = cmdIngest(args[1:])
	case "train":
		err = cmdTrain(args[1:])
	case "analyze":
		err = cmdAnalyze(args[1:])
	case "watch":
		err = cmdWatch(args[1:])
	case "diff":
		err = cmdDiff(args[1:])
	case "info":
		err = cmdInfo(args[1:])
	case "serve":
		err = cmdServe(args[1:])
	case "route":
		err = cmdRoute(args[1:])
	case "version", "-version", "--version":
		fmt.Println(buildinfo.String())
		return exitOK
	case "-h", "--help", "help":
		usage()
		return exitOK
	default:
		fmt.Fprintf(os.Stderr, "spire: unknown command %q\n", args[0])
		usage()
		return exitUsage
	}
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, errPartialIngest):
		fmt.Fprintln(os.Stderr, "spire:", err)
		return exitPartial
	default:
		fmt.Fprintln(os.Stderr, "spire:", err)
		return exitErr
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `spire - statistical piecewise linear roofline ensemble

commands:
  ingest   [-strict|-lenient] [-format auto|csv|json] [-min-run-pct P] [-o dataset.json] perf.csv...
  train    -o model.json [-min-samples N] [-workers N] [-hierarchy] [-v] dataset.json...
  analyze  -model model.json [-top K] [-workers N] [-json] [-interpret] [-timeline] [-html out.html]
           [-remote URL [-tenant T] [-wire json|bin]] dataset.json...
  watch    -model model.json [-window N] [-top K] [-json] [-follow] [-poll D] [-strict] [-v] perf.csv|-
  serve    [-addr HOST:PORT] [-model model.json] [-model-dir DIR] [-cache N] [-pprof]
           [-max-inflight N] [-admission-queue N] [-queue-wait D] [-tenant-rate R] [-tenant-burst B] [-degraded-cache N]
  route    [-addr HOST:PORT] (-shards name=URL,... | -config cluster.json) [-model model.json]
           [-vnodes N] [-load-factor F] [-health-interval D] [-sync-interval D]
  diff     -model model.json [-top K] [-workers N] [-json] [-remote URL [-tenant T] [-wire json|bin]] before.json after.json
  info     -model model.json
  version

exit codes: 0 ok, 1 error, 2 usage, 3 partial (lenient ingest lost input)`)
}

func readDatasets(paths []string) (core.Dataset, error) {
	var all core.Dataset
	if len(paths) == 0 {
		return all, fmt.Errorf("no dataset files given")
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return all, err
		}
		d, err := core.ReadDataset(f)
		f.Close()
		if err != nil {
			return all, fmt.Errorf("%s: %w", p, err)
		}
		all.Merge(d)
	}
	return all, nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("o", "model.json", "output model file")
	minSamples := fs.Int("min-samples", 0, "drop metrics with fewer training samples")
	workers := fs.Int("workers", 0, "concurrent per-metric fits (0 = GOMAXPROCS; output is identical for any count)")
	verbose := fs.Bool("v", false, "report metrics that were skipped during training and why")
	hierarchy := fs.Bool("hierarchy", false, "attach the default L1/L2/L3/DRAM hierarchy so analyze reports the binding memory level")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := readDatasets(fs.Args())
	if err != nil {
		return err
	}
	ens, rep, err := core.TrainContext(context.Background(), data, core.TrainOptions{
		WorkUnit:   "instructions",
		TimeUnit:   "cycles",
		MinSamples: *minSamples,
		Workers:    *workers,
	})
	if err != nil {
		if rep != nil {
			fmt.Fprintln(os.Stderr, "spire:", rep.Summary())
		}
		return err
	}
	if *verbose {
		// The skip report is a diagnostic, not output: stderr.
		fmt.Fprintln(os.Stderr, "spire train:", rep.Summary())
	}
	if *hierarchy {
		// The level mapping is evaluation-time metadata: levels whose
		// traffic metric the model (or a workload) never measured simply
		// don't report, so attaching the default map is always safe.
		ens.Hierarchy = &core.HierarchyModel{Levels: core.DefaultHierarchyLevels()}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ens.Save(f); err != nil {
		return err
	}
	fmt.Printf("trained %d rooflines from %d samples -> %s\n", len(ens.Rooflines), data.Len(), *out)
	return f.Close()
}

func loadModel(path string) (*core.Ensemble, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadEnsemble(f)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model file")
	top := fs.Int("top", 10, "number of candidate bottleneck metrics to print")
	jsonOut := fs.Bool("json", false, "print the estimation as compact JSON and nothing else")
	interpret := fs.Bool("interpret", false, "print the interpreted bottleneck-pool report")
	timeline := fs.Bool("timeline", false, "print the per-window bottleneck timeline")
	htmlOut := fs.String("html", "", "write a self-contained HTML report to this file")
	workers := fs.Int("workers", 0, "concurrent per-metric estimators (0 = GOMAXPROCS)")
	remote := fs.String("remote", "", "estimate via a running `spire serve` at this base URL instead of a local model")
	tenant := fs.String("tenant", "", "tenant identity sent with -remote requests (X-Spire-Tenant)")
	wireFmt := fs.String("wire", "json", "transport encoding for -remote requests: json or bin (SPB1 binary)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		ens     *core.Ensemble
		est     *core.Estimation
		modelID string
		err     error
	)
	if *remote != "" {
		// Remote mode ships the samples to the service; the reports that
		// need the model's internals stay local-only.
		if *interpret || *timeline || *htmlOut != "" {
			return fmt.Errorf("-interpret, -timeline and -html need the local model; they are not available with -remote")
		}
		data, rerr := readDatasets(fs.Args())
		if rerr != nil {
			return rerr
		}
		c, cerr := newRemoteClient(*remote, *tenant)
		if cerr != nil {
			return cerr
		}
		est, modelID, err = remoteEstimate(context.Background(), c, data, *workers, *wireFmt)
		if err != nil {
			return err
		}
		if *jsonOut {
			// Same contract as local -json: exactly the core.Estimation
			// encoding, byte for byte (the service serves the identical
			// bytes the local engine computes for the same model).
			raw, merr := json.Marshal(est)
			if merr != nil {
				return merr
			}
			fmt.Println(string(raw))
			return nil
		}
		fmt.Printf("measured throughput: %.3f (served by model %s)\n", est.MeasuredThroughput, modelID[:min(12, len(modelID))])
		fmt.Printf("SPIRE max-throughput estimate: %.3f (min over %d metrics)\n\n",
			est.MaxThroughput, len(est.PerMetric))
		printHierarchy(est)
		if err := renderRanking(est, *top); err != nil {
			return err
		}
		return printCombined(est)
	}

	ens, err = loadModel(*modelPath)
	if err != nil {
		return err
	}
	data, err := readDatasets(fs.Args())
	if err != nil {
		return err
	}
	est, err = engine.Default().Estimate(context.Background(), ens, data,
		core.EstimateOptions{Workers: *workers})
	if err != nil {
		return err
	}
	// Datasets carrying scheduler events get the partitioned on/off-CPU
	// view merged in — before -json so local and served bytes agree.
	if len(data.Sched) > 0 {
		combined, cerr := analysis.Combine(est, data.Sched)
		if cerr != nil {
			return cerr
		}
		est.Combined = combined
	}
	if *jsonOut {
		// Machine-readable mode: exactly the core.Estimation JSON, byte
		// for byte what `spire serve` returns in its "estimation" field
		// for the same samples and model.
		raw, err := json.Marshal(est)
		if err != nil {
			return err
		}
		fmt.Println(string(raw))
		return nil
	}
	fmt.Printf("measured throughput: %.3f %s/%s\n", est.MeasuredThroughput, ens.WorkUnit, ens.TimeUnit)
	fmt.Printf("SPIRE max-throughput estimate: %.3f (min over %d metrics)\n\n",
		est.MaxThroughput, len(est.PerMetric))
	printHierarchy(est)
	if err := renderRanking(est, *top); err != nil {
		return err
	}
	if err := printCombined(est); err != nil {
		return err
	}
	if *interpret {
		rep, err := analysis.Analyze(est, analysis.Options{MaxPool: *top, Model: ens})
		if err != nil {
			return err
		}
		fmt.Println()
		if err := rep.Render(os.Stdout); err != nil {
			return err
		}
		if best, ok := analysis.BestSingleRelief(est); ok {
			fmt.Printf("\nwhat-if: relieving %s alone would raise the bound to %.3f (%+.0f%%)\n",
				best.Metric, best.NewBound, 100*best.Uplift)
		} else {
			fmt.Println("\nwhat-if: no single-metric relief raises the bound (several metrics tie at the bound)")
		}
	}
	if *timeline {
		tl, err := analysis.Timeline(ens, data)
		if err != nil {
			return err
		}
		fmt.Println()
		if err := analysis.RenderTimeline(os.Stdout, tl); err != nil {
			return err
		}
	}
	if *htmlOut != "" {
		page, err := htmlreport.AnalysisPage("SPIRE analysis", ens, data, *top)
		if err != nil {
			return err
		}
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		if err := page.Render(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote HTML report to %s\n", *htmlOut)
	}
	return nil
}

// printHierarchy prints the memory-hierarchy verdict when the model
// carried one and the workload measured at least two levels.
func printHierarchy(est *core.Estimation) {
	h := est.Hierarchy
	if h == nil {
		return
	}
	fmt.Printf("memory hierarchy: bound at %s (%s, est %.3f across %d measured levels)\n",
		h.BindingLevel, h.BindingMetric, h.BindingEstimate, len(h.Levels))
	for _, s := range h.Surfaces {
		if s.Binding {
			fmt.Printf("  surface %s binds: ceiling %.3f at %s = %.4g\n",
				s.Name, s.Ceiling, s.Param, s.ParamValue)
		}
	}
	if h.BoundThroughput < est.MaxThroughput {
		fmt.Printf("  hierarchy-refined bound: %.3f (flat bound %.3f)\n", h.BoundThroughput, est.MaxThroughput)
	}
	fmt.Println()
}

// printCombined prints the on/off-CPU partition and merged bottleneck
// ranking when the estimation carries one (the dataset had scheduler
// events). A nil Combined prints nothing, so counter-only analyses keep
// their exact historical output.
func printCombined(est *core.Estimation) error {
	if est.Combined == nil {
		return nil
	}
	fmt.Println()
	return analysis.RenderCombined(os.Stdout, est.Combined)
}

// renderRanking prints the candidate-bottleneck table shared by local
// and remote analyze modes.
func renderRanking(est *core.Estimation, top int) error {
	t := report.Table{
		Title:   fmt.Sprintf("Top %d candidate bottleneck metrics (lowest estimates first)", top),
		Headers: []string{"Rank", "Mean est.", "Abbr", "Metric", "Closest TMA area", "Samples"},
	}
	for i, m := range est.TopMetrics(top) {
		abbr, area := "?", "?"
		if ev, ok := pmu.Lookup(m.Metric); ok {
			abbr, area = ev.Abbr, ev.Area.String()
		}
		t.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%.3f", m.MeanEstimate),
			abbr, m.Metric, area, fmt.Sprintf("%d", m.Samples))
	}
	return t.Render(os.Stdout)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ens, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	fmt.Printf("SPIRE ensemble: %d rooflines, throughput unit %s/%s\n",
		len(ens.Rooflines), ens.WorkUnit, ens.TimeUnit)
	t := report.Table{
		Headers: []string{"Metric", "Train samples", "Peak I", "Peak P", "Left pts", "Right pts", "Tail"},
	}
	for _, name := range ens.Metrics() {
		r := ens.Rooflines[name]
		peak := r.Peak()
		t.AddRow(name,
			fmt.Sprintf("%d", r.TrainingSamples),
			fmt.Sprintf("%.3g", peak.X),
			fmt.Sprintf("%.3g", peak.Y),
			fmt.Sprintf("%d", len(r.Left)),
			fmt.Sprintf("%d", len(r.Right)),
			fmt.Sprintf("%.3g", r.TailY),
		)
	}
	return t.Render(os.Stdout)
}
