package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"spire/internal/analysis"
	"spire/internal/core"
	"spire/internal/engine"
	"spire/internal/pmu"
	"spire/internal/report"
)

// diffResult is the -json output of `spire diff`: both estimations in
// core's canonical encoding plus the derived movement summary, so scripts
// do not have to recompute speedups or re-rank.
type diffResult struct {
	Model   string           `json:"model,omitempty"`
	Before  *core.Estimation `json:"before"`
	After   *core.Estimation `json:"after"`
	Speedup float64          `json:"speedup"`
	// BindingBefore/After are the head of each ranking; Relieved reports
	// whether the binding metric moved.
	BindingBefore string `json:"bindingBefore,omitempty"`
	BindingAfter  string `json:"bindingAfter,omitempty"`
	Relieved      bool   `json:"relieved"`
	// BindingLevelBefore/After name the binding memory-hierarchy level
	// when the model carries a hierarchy and the workload measured it
	// (mirrors each estimation's hierarchy verdict; absent otherwise).
	BindingLevelBefore string `json:"bindingLevelBefore,omitempty"`
	BindingLevelAfter  string `json:"bindingLevelAfter,omitempty"`
}

// cmdDiff compares two analyses of (presumably) the same workload before
// and after a change: throughput movement, bound movement, and how the
// bottleneck ranking shifted. This is the workflow the paper motivates —
// relieve the top metric, re-measure, see what binds next. Both
// estimations run on the shared engine under a signal-aware context, so
// ^C during a huge diff aborts promptly with a clean error instead of
// finishing the second estimate.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model file")
	top := fs.Int("top", 10, "number of ranked metrics to compare")
	workers := fs.Int("workers", 0, "concurrent per-metric estimators (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "print both estimations and the movement summary as compact JSON")
	remote := fs.String("remote", "", "estimate via a running `spire serve` at this base URL instead of a local model")
	tenant := fs.String("tenant", "", "tenant identity sent with -remote requests (X-Spire-Tenant)")
	wireFmt := fs.String("wire", "json", "transport encoding for -remote requests: json or bin (SPB1 binary)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two dataset files (before, after)")
	}
	before, err := readDatasets(fs.Args()[:1])
	if err != nil {
		return err
	}
	after, err := readDatasets(fs.Args()[1:])
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		estB, estA *core.Estimation
		modelID    string
	)
	if *remote != "" {
		// Both estimations run against the same serving instance; the
		// results are byte-identical to local runs under that model, so
		// diffing remotely means diffing the same numbers.
		c, cerr := newRemoteClient(*remote, *tenant)
		if cerr != nil {
			return cerr
		}
		estB, modelID, err = remoteEstimate(ctx, c, before, *workers, *wireFmt)
		if err != nil {
			return fmt.Errorf("before: %w", err)
		}
		var idA string
		estA, idA, err = remoteEstimate(ctx, c, after, *workers, *wireFmt)
		if err != nil {
			return fmt.Errorf("after: %w", err)
		}
		if idA != modelID {
			return fmt.Errorf("model hot-swapped mid-diff (%s -> %s); re-run against a stable model", modelID, idA)
		}
	} else {
		ens, lerr := loadModel(*modelPath)
		if lerr != nil {
			return lerr
		}
		if id, ferr := ens.Fingerprint(); ferr == nil {
			modelID = id
		}
		eng := engine.Default()
		opts := core.EstimateOptions{Workers: *workers}
		estB, err = eng.Estimate(ctx, ens, before, opts)
		if err != nil {
			return fmt.Errorf("before: %w", err)
		}
		estA, err = eng.Estimate(ctx, ens, after, opts)
		if err != nil {
			return fmt.Errorf("after: %w", err)
		}
		// Mirror analyze: datasets with scheduler events diff their
		// combined on/off-CPU views too.
		if len(before.Sched) > 0 {
			if estB.Combined, err = analysis.Combine(estB, before.Sched); err != nil {
				return fmt.Errorf("before: %w", err)
			}
		}
		if len(after.Sched) > 0 {
			if estA.Combined, err = analysis.Combine(estA, after.Sched); err != nil {
				return fmt.Errorf("after: %w", err)
			}
		}
	}

	speedup := 0.0
	if estB.MeasuredThroughput > 0 {
		speedup = estA.MeasuredThroughput / estB.MeasuredThroughput
	}

	if *jsonOut {
		res := diffResult{Model: modelID, Before: estB, After: estA, Speedup: speedup}
		if len(estB.PerMetric) > 0 {
			res.BindingBefore = estB.PerMetric[0].Metric
		}
		if len(estA.PerMetric) > 0 {
			res.BindingAfter = estA.PerMetric[0].Metric
		}
		res.Relieved = res.BindingBefore != "" && res.BindingAfter != "" &&
			res.BindingBefore != res.BindingAfter
		if estB.Hierarchy != nil {
			res.BindingLevelBefore = estB.Hierarchy.BindingLevel
		}
		if estA.Hierarchy != nil {
			res.BindingLevelAfter = estA.Hierarchy.BindingLevel
		}
		raw, err := json.Marshal(res)
		if err != nil {
			return err
		}
		fmt.Println(string(raw))
		return nil
	}

	fmt.Printf("measured: %.3f -> %.3f (%.2fx)\n", estB.MeasuredThroughput, estA.MeasuredThroughput, speedup)
	fmt.Printf("SPIRE bound: %.3f -> %.3f\n\n", estB.MaxThroughput, estA.MaxThroughput)

	t := report.Table{
		Title:   fmt.Sprintf("Ranking movement (top %d of the 'after' run)", *top),
		Headers: []string{"After rank", "Before rank", "Abbr", "Metric", "Bound before", "Bound after"},
	}
	beforeBy := make(map[string]core.MetricEstimate, len(estB.PerMetric))
	for _, m := range estB.PerMetric {
		beforeBy[m.Metric] = m
	}
	for i, m := range estA.TopMetrics(*top) {
		abbr := m.Metric
		if ev, ok := pmu.Lookup(m.Metric); ok {
			abbr = ev.Abbr
		}
		beforeRank := "-"
		beforeBound := "-"
		if r := estB.Rank(m.Metric); r > 0 {
			beforeRank = fmt.Sprintf("%d", r)
			beforeBound = fmt.Sprintf("%.3f", beforeBy[m.Metric].MeanEstimate)
		}
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			beforeRank,
			abbr,
			m.Metric,
			beforeBound,
			fmt.Sprintf("%.3f", m.MeanEstimate),
		)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	// Call out the binding-metric change explicitly.
	if len(estB.PerMetric) > 0 && len(estA.PerMetric) > 0 {
		b0, a0 := estB.PerMetric[0].Metric, estA.PerMetric[0].Metric
		if b0 == a0 {
			fmt.Printf("\nbinding metric unchanged: %s — the change did not relieve the bottleneck\n", b0)
		} else {
			fmt.Printf("\nbinding metric moved: %s -> %s — the original bottleneck was relieved\n", b0, a0)
		}
	}
	// And the hierarchy-level movement, when both runs have a verdict.
	if estB.Hierarchy != nil && estA.Hierarchy != nil {
		bl, al := estB.Hierarchy.BindingLevel, estA.Hierarchy.BindingLevel
		if bl == al {
			fmt.Printf("binding level unchanged: %s\n", bl)
		} else {
			fmt.Printf("binding level moved: %s -> %s\n", bl, al)
		}
	}
	// Off-CPU movement, when both runs carried scheduler events.
	if cb, ca := estB.Combined, estA.Combined; cb != nil && ca != nil {
		fmt.Printf("off-CPU share: %.1f%% -> %.1f%%\n",
			100*cb.Partition.OffShare(), 100*ca.Partition.OffShare())
		tb, ta := cb.Top(), ca.Top()
		if tb != nil && ta != nil {
			if tb.Detail == ta.Detail {
				fmt.Printf("combined top bottleneck unchanged: %s\n", ta.Detail)
			} else {
				fmt.Printf("combined top bottleneck moved: %s -> %s\n", tb.Detail, ta.Detail)
			}
		}
	}
	return nil
}
