package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spire/internal/cluster"
)

// cmdRoute runs the stateless cluster router: consistent-hash placement
// of estimate traffic across N `spire serve` shards, with health-checked
// failover and content-addressed model replication. It blocks until
// SIGINT/SIGTERM, then drains like serve does.
func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9091", "listen address (use :0 for an ephemeral port)")
	shards := fs.String("shards", "", "comma-separated shard list: name=http://host:port,...")
	configPath := fs.String("config", "", "JSON cluster config file (alternative to -shards)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = 64)")
	loadFactor := fs.Float64("load-factor", 0, "bounded-load factor over the fair share (0 = 1.25)")
	healthEvery := fs.Duration("health-interval", 0, "shard /readyz probe period (0 = 1s)")
	syncEvery := fs.Duration("sync-interval", 0, "model convergence sweep period (0 = 2s)")
	modelPath := fs.String("model", "", "model file to replicate to all shards at startup")
	drain := fs.Duration("drain", 10*time.Second, "max time to drain in-flight requests on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("route takes no positional arguments (got %q)", fs.Args())
	}
	if (*shards == "") == (*configPath == "") {
		return fmt.Errorf("route needs exactly one of -shards or -config")
	}

	var cfg cluster.Config
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		parsed, perr := cluster.ParseConfig(f)
		f.Close()
		if perr != nil {
			return perr
		}
		cfg = *parsed
	} else {
		list, err := cluster.ParseShardList(*shards)
		if err != nil {
			return err
		}
		cfg.Shards = list
	}
	// Flags override file values when set explicitly; zero means "keep".
	if *vnodes != 0 {
		cfg.VNodes = *vnodes
	}
	if *loadFactor != 0 {
		cfg.LoadFactor = *loadFactor
	}
	if *healthEvery != 0 {
		cfg.HealthInterval = cluster.Duration(*healthEvery)
	}
	if *syncEvery != 0 {
		cfg.SyncInterval = cluster.Duration(*syncEvery)
	}

	rt, err := cluster.NewRouter(cfg, cluster.RouterOptions{})
	if err != nil {
		return err
	}
	if *modelPath != "" {
		blob, err := os.ReadFile(*modelPath)
		if err != nil {
			return err
		}
		id, err := rt.SetModel(blob)
		if err != nil {
			return fmt.Errorf("loading %s: %w", *modelPath, err)
		}
		fmt.Fprintf(os.Stderr, "spire route: replicating model %s from %s\n", id[:12], *modelPath)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The e2e harness scrapes this line for the bound port, so keep the
	// "listening on" phrasing stable (same contract as serve).
	fmt.Fprintf(os.Stderr, "spire route: listening on %s (%d shards)\n", ln.Addr(), len(cfg.Shards))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := rt.Serve(ctx, ln, *drain); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "spire route: drained, shutting down")
	return nil
}
