package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"spire/internal/buildinfo"
	"spire/internal/testutil"
)

// update regenerates golden files instead of comparing against them:
//
//	go test ./cmd/spire/ -run TestE2EPipeline -update
var update = flag.Bool("update", false, "rewrite golden files")

// spireBin is the binary built once by TestMain for the black-box tests.
var spireBin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "spire-e2e-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e: mktemp:", err)
		os.Exit(1)
	}
	spireBin = filepath.Join(dir, "spire")
	build := exec.Command("go", "build", "-o", spireBin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "e2e: building spire binary:", err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runSpire executes the built binary and returns stdout, stderr and the
// exit code.
func runSpire(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(spireBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("spire %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// syncBuffer is a bytes.Buffer safe to write from the stderr-draining
// goroutine while the test goroutine reads it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) WriteString(s string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.WriteString(s)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// spireServer is one running `spire serve` process.
type spireServer struct {
	cmd     *exec.Cmd
	base    string // http://127.0.0.1:<port>
	stderr  *syncBuffer
	drained chan struct{} // closed once the stderr drain goroutine hits EOF
}

// startServe launches `spire serve -addr 127.0.0.1:0 <extra...>` and
// scrapes the bound port from the "listening on" stderr line.
func startServe(t *testing.T, extra ...string) *spireServer {
	t.Helper()
	return startSpire(t, append([]string{"serve", "-addr", "127.0.0.1:0"}, extra...)...)
}

// startRoute launches `spire route -addr 127.0.0.1:0 <extra...>` — the
// router shares serve's "listening on" stderr contract, so the same
// scrape works.
func startRoute(t *testing.T, extra ...string) *spireServer {
	t.Helper()
	return startSpire(t, append([]string{"route", "-addr", "127.0.0.1:0"}, extra...)...)
}

func startSpire(t *testing.T, args ...string) *spireServer {
	t.Helper()
	cmd := exec.Command(spireBin, args...)
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := &syncBuffer{}
	cmd.Stderr = pw
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	// Scrape stderr for the listen address, then keep draining it in the
	// background so the child never blocks on a full pipe.
	linec := make(chan string, 1)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			line := sc.Text()
			saved.WriteString(line + "\n")
			if strings.Contains(line, "listening on") {
				select {
				case linec <- line:
				default:
				}
			}
		}
	}()
	// Generous deadline: `go test ./...` runs this alongside CPU-heavy
	// simulator packages, and the child has to cold-start under that load.
	var listenLine string
	select {
	case listenLine = <-linec:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("spire %v never reported its listen address; stderr:\n%s", args, saved.String())
	}
	// Route's line carries a trailing "(N shards)", so no end anchor.
	m := regexp.MustCompile(`listening on (\S+)`).FindStringSubmatch(listenLine)
	if m == nil {
		cmd.Process.Kill()
		t.Fatalf("unparsable listen line %q", listenLine)
	}
	s := &spireServer{cmd: cmd, base: "http://" + m[1], stderr: saved, drained: drained}
	t.Cleanup(func() {
		if s.cmd.ProcessState == nil {
			s.cmd.Process.Kill()
			s.cmd.Wait()
		}
	})
	return s
}

// stop sends SIGTERM and waits, returning the exit code.
func (s *spireServer) stop(t *testing.T) int {
	t.Helper()
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signaling serve: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		s.cmd.Process.Kill()
		t.Fatal("serve did not exit within 30s of SIGTERM")
	}
	// Wait for the drain goroutine to consume everything the child wrote
	// before it exited, so callers can assert on s.stderr right away.
	select {
	case <-s.drained:
	case <-time.After(10 * time.Second):
		t.Fatal("stderr drain did not finish after serve exited")
	}
	return s.cmd.ProcessState.ExitCode()
}

// TestE2EPipeline drives the full workflow through the real binary:
// ingest a perf CSV, train a model, serve it, and estimate over HTTP. The
// estimate response must be byte-stable across requests, match the golden
// file, and agree byte for byte with `spire analyze -json` on the same
// data — the service and the CLI are the same estimator.
func TestE2EPipeline(t *testing.T) {
	dir := t.TempDir()
	dataset := filepath.Join(dir, "dataset.json")
	model := filepath.Join(dir, "model.json")

	stdout, stderr, code := runSpire(t, "ingest", "-o", dataset, "testdata/e2e_clean.csv")
	if code != 0 {
		t.Fatalf("ingest exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "wrote 48 samples") {
		t.Errorf("ingest stdout: %q", stdout)
	}

	if _, stderr, code := runSpire(t, "train", "-o", model, dataset); code != 0 {
		t.Fatalf("train exit %d\nstderr: %s", code, stderr)
	}

	// The dataset file is itself a valid estimate request body
	// ({"samples":[...]}).
	body, err := os.ReadFile(dataset)
	if err != nil {
		t.Fatal(err)
	}

	srv := startServe(t, "-model", model)

	status, hdr, first := testutil.HTTPPost(t, srv.base+"/v1/estimate", "application/json", body)
	if status != http.StatusOK {
		t.Fatalf("estimate status %d: %s", status, first)
	}
	if got := hdr.Get("X-Spire-Cache"); got != "miss" {
		t.Errorf("first request cache header = %q, want miss", got)
	}

	// Byte-stable: the same request served again (now cached) must return
	// the identical body.
	status, hdr, second := testutil.HTTPPost(t, srv.base+"/v1/estimate", "application/json", body)
	if status != http.StatusOK {
		t.Fatalf("second estimate status %d", status)
	}
	if got := hdr.Get("X-Spire-Cache"); got != "hit" {
		t.Errorf("second request cache header = %q, want hit", got)
	}
	if !bytes.Equal(first, second) {
		t.Error("estimate responses are not byte-identical across a cache hit")
	}

	// Golden: the estimation field is pinned to a checked-in fixture.
	var resp struct {
		Model      string          `json:"model"`
		Estimation json.RawMessage `json:"estimation"`
	}
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatalf("estimate response is not JSON: %v\n%s", err, first)
	}
	golden := filepath.Join("testdata", "golden_estimate.json")
	testutil.Golden(t, golden, append(resp.Estimation, '\n'), *update)

	// Parity: `spire analyze -json` prints the same estimation bytes.
	cliOut, stderr, code := runSpire(t, "analyze", "-model", model, "-json", dataset)
	if code != 0 {
		t.Fatalf("analyze -json exit %d\nstderr: %s", code, stderr)
	}
	if strings.TrimRight(cliOut, "\n") != string(resp.Estimation) {
		t.Errorf("analyze -json disagrees with serve\ncli:   %s\nserve: %s", cliOut, resp.Estimation)
	}

	// Non-trivial metrics: two estimates served, one hit, one miss.
	status, metricsText := testutil.HTTPGet(t, srv.base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	text := string(metricsText)
	if v := testutil.MustMetric(t, text, "spire_estimates_served_total"); v != 2 {
		t.Errorf("spire_estimates_served_total = %g, want 2", v)
	}
	if v := testutil.MustMetric(t, text, "spire_estimate_cache_hits_total"); v != 1 {
		t.Errorf("spire_estimate_cache_hits_total = %g, want 1", v)
	}
	if v := testutil.MustMetric(t, text, "spire_estimate_cache_misses_total"); v != 1 {
		t.Errorf("spire_estimate_cache_misses_total = %g, want 1", v)
	}
	if v := testutil.MustMetric(t, text, "spire_model_metrics"); v != 3 {
		t.Errorf("spire_model_metrics = %g, want 3", v)
	}

	// Clean SIGTERM drain.
	if code := srv.stop(t); code != 0 {
		t.Errorf("serve exit code %d after SIGTERM, want 0\nstderr:\n%s", code, srv.stderr.String())
	}
	if !strings.Contains(srv.stderr.String(), "drained") {
		t.Errorf("serve stderr missing drain confirmation:\n%s", srv.stderr.String())
	}
}

// TestE2EExitCodes pins the exit-code/stream contract: 0 ok, 1 error,
// 2 usage, 3 partial. Diagnostics go to stderr; stdout carries data only.
func TestE2EExitCodes(t *testing.T) {
	dir := t.TempDir()

	t.Run("unknown command", func(t *testing.T) {
		stdout, stderr, code := runSpire(t, "frobnicate")
		if code != 2 {
			t.Errorf("exit %d, want 2", code)
		}
		if stdout != "" {
			t.Errorf("usage errors must not write stdout: %q", stdout)
		}
		if !strings.Contains(stderr, "unknown command") {
			t.Errorf("stderr: %q", stderr)
		}
	})

	t.Run("missing input file", func(t *testing.T) {
		stdout, stderr, code := runSpire(t, "ingest", "-o", filepath.Join(dir, "x.json"), "no-such-file.csv")
		if code != 1 {
			t.Errorf("exit %d, want 1", code)
		}
		if stdout != "" {
			t.Errorf("errors must not write stdout: %q", stdout)
		}
		if !strings.Contains(stderr, "no-such-file.csv") {
			t.Errorf("stderr must name the missing file: %q", stderr)
		}
	})

	t.Run("lenient corrupt input is partial", func(t *testing.T) {
		out := filepath.Join(dir, "partial.json")
		stdout, stderr, code := runSpire(t, "ingest", "-o", out, "testdata/e2e_corrupt.csv")
		if code != 3 {
			t.Errorf("exit %d, want 3 (partial)", code)
		}
		// stdout carries only the data summary; every diagnostic is stderr.
		for _, line := range strings.Split(strings.TrimRight(stdout, "\n"), "\n") {
			if !strings.HasPrefix(line, "wrote ") {
				t.Errorf("unexpected stdout line %q", line)
			}
		}
		if !strings.Contains(stderr, "garbled") {
			t.Errorf("stderr must carry the diagnostics summary: %q", stderr)
		}
		if !strings.Contains(stderr, "severe anomalies quarantined") {
			t.Errorf("stderr must explain the partial exit: %q", stderr)
		}
		// The dataset was still written and is usable.
		if _, err := os.Stat(out); err != nil {
			t.Errorf("partial ingest must still write the dataset: %v", err)
		}
	})

	t.Run("strict corrupt input is an error", func(t *testing.T) {
		stdout, _, code := runSpire(t, "ingest", "-strict", "-o", filepath.Join(dir, "y.json"), "testdata/e2e_corrupt.csv")
		if code != 1 {
			t.Errorf("exit %d, want 1", code)
		}
		if stdout != "" {
			t.Errorf("strict failure must not write stdout: %q", stdout)
		}
	})

	t.Run("clean input is ok", func(t *testing.T) {
		_, _, code := runSpire(t, "ingest", "-o", filepath.Join(dir, "z.json"), "testdata/e2e_clean.csv")
		if code != 0 {
			t.Errorf("exit %d, want 0", code)
		}
	})
}

// TestE2EDiff drives `spire diff` black-box: -json output must embed both
// estimations in core's canonical encoding (so diffing the same dataset
// against itself reproduces the golden estimate byte for byte), the text
// mode must call out the binding metric, and usage errors keep the
// exit-code contract.
func TestE2EDiff(t *testing.T) {
	dir := t.TempDir()
	dataset := filepath.Join(dir, "dataset.json")
	model := filepath.Join(dir, "model.json")
	if _, stderr, code := runSpire(t, "ingest", "-o", dataset, "testdata/e2e_clean.csv"); code != 0 {
		t.Fatalf("ingest exit %d: %s", code, stderr)
	}
	if _, stderr, code := runSpire(t, "train", "-o", model, dataset); code != 0 {
		t.Fatalf("train exit %d: %s", code, stderr)
	}

	stdout, stderr, code := runSpire(t, "diff", "-model", model, "-json", "-workers", "2", dataset, dataset)
	if code != 0 {
		t.Fatalf("diff -json exit %d\nstderr: %s", code, stderr)
	}
	var res struct {
		Model    string          `json:"model"`
		Before   json.RawMessage `json:"before"`
		After    json.RawMessage `json:"after"`
		Speedup  float64         `json:"speedup"`
		Relieved bool            `json:"relieved"`
	}
	if err := json.Unmarshal([]byte(stdout), &res); err != nil {
		t.Fatalf("diff -json output is not JSON: %v\n%s", err, stdout)
	}
	if !bytes.Equal(res.Before, res.After) {
		t.Error("identical inputs must produce identical before/after estimations")
	}
	if res.Speedup != 1 {
		t.Errorf("speedup = %g, want exactly 1 for identical inputs", res.Speedup)
	}
	if res.Relieved {
		t.Error("identical inputs cannot relieve the bottleneck")
	}
	if res.Model == "" {
		t.Error("diff -json missing the model fingerprint")
	}
	// The embedded estimation is the same canonical encoding analyze and
	// serve emit, pinned by the checked-in golden file.
	want, err := os.ReadFile(filepath.Join("testdata", "golden_estimate.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := append(res.Before, '\n'); !bytes.Equal(got, want) {
		t.Errorf("diff -json estimation diverges from golden file\ngot:  %s\nwant: %s", got, want)
	}

	// Text mode names the unchanged binding metric.
	stdout, stderr, code = runSpire(t, "diff", "-model", model, dataset, dataset)
	if code != 0 {
		t.Fatalf("diff exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "binding metric unchanged") {
		t.Errorf("diff text output missing binding-metric callout:\n%s", stdout)
	}

	// Contract: wrong arity is an error on stderr, nothing on stdout.
	stdout, stderr, code = runSpire(t, "diff", "-model", model, dataset)
	if code != 1 {
		t.Errorf("diff with one dataset: exit %d, want 1", code)
	}
	if stdout != "" {
		t.Errorf("diff error must not write stdout: %q", stdout)
	}
	if !strings.Contains(stderr, "exactly two dataset files") {
		t.Errorf("stderr: %q", stderr)
	}
}

// TestSmokeServe is the `make smoke` target: start the service with a
// freshly trained model, check /healthz, serve one estimate, and shut
// down cleanly.
func TestSmokeServe(t *testing.T) {
	dir := t.TempDir()
	dataset := filepath.Join(dir, "dataset.json")
	model := filepath.Join(dir, "model.json")
	if _, stderr, code := runSpire(t, "ingest", "-o", dataset, "testdata/e2e_clean.csv"); code != 0 {
		t.Fatalf("ingest exit %d: %s", code, stderr)
	}
	if _, stderr, code := runSpire(t, "train", "-o", model, dataset); code != 0 {
		t.Fatalf("train exit %d: %s", code, stderr)
	}

	srv := startServe(t, "-model", model)

	status, raw := testutil.HTTPGet(t, srv.base+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	var health struct {
		Status    string `json:"status"`
		Ready     bool   `json:"ready"`
		Version   string `json:"version"`
		GoVersion string `json:"goVersion"`
	}
	if err := json.Unmarshal(raw, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || !health.Ready {
		t.Fatalf("healthz = %s", raw)
	}
	// Build info rides on every health probe so operators can audit
	// version skew from probes alone.
	if health.Version != buildinfo.Version {
		t.Errorf("healthz version = %q, want %q", health.Version, buildinfo.Version)
	}
	if !strings.HasPrefix(health.GoVersion, "go") {
		t.Errorf("healthz goVersion = %q, want a go toolchain string", health.GoVersion)
	}

	body, err := os.ReadFile(dataset)
	if err != nil {
		t.Fatal(err)
	}
	status, _, resp := testutil.HTTPPost(t, srv.base+"/v1/estimate", "application/json", body)
	if status != http.StatusOK {
		t.Fatalf("estimate status %d: %s", status, resp)
	}
	var est struct {
		Estimation struct {
			PerMetric []json.RawMessage `json:"perMetric"`
		} `json:"estimation"`
	}
	if err := json.Unmarshal(resp, &est); err != nil {
		t.Fatal(err)
	}
	if len(est.Estimation.PerMetric) == 0 {
		t.Error("estimate returned no per-metric results")
	}

	if code := srv.stop(t); code != 0 {
		t.Errorf("serve exit %d after SIGTERM, want 0\nstderr:\n%s", code, srv.stderr.String())
	}
}

// TestSmokeVersion pins the `spire version` contract: exit 0, the
// one-line build banner on stdout, nothing on stderr. The flag spellings
// -version/--version answer identically.
func TestSmokeVersion(t *testing.T) {
	for _, arg := range []string{"version", "-version", "--version"} {
		stdout, stderr, code := runSpire(t, arg)
		if code != 0 {
			t.Fatalf("spire %s exit %d\nstderr: %s", arg, code, stderr)
		}
		want := "spire " + buildinfo.Version + " ("
		if !strings.HasPrefix(stdout, want) {
			t.Errorf("spire %s stdout = %q, want prefix %q", arg, stdout, want)
		}
		if !strings.Contains(stdout, "go") {
			t.Errorf("spire %s banner omits the toolchain: %q", arg, stdout)
		}
		if stderr != "" {
			t.Errorf("spire %s wrote stderr: %q", arg, stderr)
		}
	}
}

// TestSmokeRoute starts a real serve shard plus a router in front of it
// and checks the router's health probe carries the shard count and the
// same build info the shard reports — the fleet-skew audit contract.
func TestSmokeRoute(t *testing.T) {
	dir := t.TempDir()
	dataset := filepath.Join(dir, "dataset.json")
	model := filepath.Join(dir, "model.json")
	if _, stderr, code := runSpire(t, "ingest", "-o", dataset, "testdata/e2e_clean.csv"); code != 0 {
		t.Fatalf("ingest exit %d: %s", code, stderr)
	}
	if _, stderr, code := runSpire(t, "train", "-o", model, dataset); code != 0 {
		t.Fatalf("train exit %d: %s", code, stderr)
	}

	shard := startServe(t, "-model", model)
	router := startRoute(t, "-shards", "s0="+shard.base)

	status, raw := testutil.HTTPGet(t, router.base+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("router healthz status %d", status)
	}
	var health struct {
		Status    string `json:"status"`
		Shards    int    `json:"shards"`
		Version   string `json:"version"`
		GoVersion string `json:"goVersion"`
	}
	if err := json.Unmarshal(raw, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Shards != 1 {
		t.Fatalf("router healthz = %s", raw)
	}
	if health.Version != buildinfo.Version {
		t.Errorf("router healthz version = %q, want %q", health.Version, buildinfo.Version)
	}
	if !strings.HasPrefix(health.GoVersion, "go") {
		t.Errorf("router healthz goVersion = %q, want a go toolchain string", health.GoVersion)
	}

	// The router relays estimates to the shard it fronts.
	body, err := os.ReadFile(dataset)
	if err != nil {
		t.Fatal(err)
	}
	status, _, resp := testutil.HTTPPost(t, router.base+"/v1/estimate", "application/json", body)
	if status != http.StatusOK {
		t.Fatalf("routed estimate status %d: %s", status, resp)
	}

	if code := router.stop(t); code != 0 {
		t.Errorf("route exit %d after SIGTERM, want 0\nstderr:\n%s", code, router.stderr.String())
	}
	if code := shard.stop(t); code != 0 {
		t.Errorf("serve exit %d after SIGTERM, want 0\nstderr:\n%s", code, shard.stderr.String())
	}
}
