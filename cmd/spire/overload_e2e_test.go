package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"spire/internal/core"

	"spire/internal/testutil"
)

// buildE2EModel runs ingest+train through the real binary and returns
// (dataset path, model path).
func buildE2EModel(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	dataset := filepath.Join(dir, "dataset.json")
	model := filepath.Join(dir, "model.json")
	if _, stderr, code := runSpire(t, "ingest", "-o", dataset, "testdata/e2e_clean.csv"); code != 0 {
		t.Fatalf("ingest exit %d\nstderr: %s", code, stderr)
	}
	if _, stderr, code := runSpire(t, "train", "-o", model, dataset); code != 0 {
		t.Fatalf("train exit %d\nstderr: %s", code, stderr)
	}
	return dataset, model
}

// TestE2ERemoteParity: `analyze -remote` and `diff -remote` route the
// estimation through a running server and print byte-for-byte what the
// local model path prints — the client, the service and the CLI are the
// same estimator.
func TestE2ERemoteParity(t *testing.T) {
	dataset, model := buildE2EModel(t)
	srv := startServe(t, "-model", model)

	localOut, stderr, code := runSpire(t, "analyze", "-model", model, "-json", dataset)
	if code != 0 {
		t.Fatalf("analyze -json exit %d\nstderr: %s", code, stderr)
	}
	remoteOut, stderr, code := runSpire(t, "analyze", "-remote", srv.base, "-tenant", "e2e", "-json", dataset)
	if code != 0 {
		t.Fatalf("analyze -remote -json exit %d\nstderr: %s", code, stderr)
	}
	if remoteOut != localOut {
		t.Errorf("analyze -remote -json diverges from local\nremote: %s\nlocal:  %s", remoteOut, localOut)
	}

	// diff parity, model fingerprint included: the server's model ID is
	// the same content hash the local path prints.
	localDiff, stderr, code := runSpire(t, "diff", "-model", model, "-json", dataset, dataset)
	if code != 0 {
		t.Fatalf("diff -json exit %d\nstderr: %s", code, stderr)
	}
	remoteDiff, stderr, code := runSpire(t, "diff", "-remote", srv.base, "-json", dataset, dataset)
	if code != 0 {
		t.Fatalf("diff -remote -json exit %d\nstderr: %s", code, stderr)
	}
	if remoteDiff != localDiff {
		t.Errorf("diff -remote -json diverges from local\nremote: %s\nlocal:  %s", remoteDiff, localDiff)
	}

	// The model-internal reports honestly refuse remote mode.
	_, stderr, code = runSpire(t, "analyze", "-remote", srv.base, "-interpret", "-json", dataset)
	if code != 1 {
		t.Errorf("analyze -remote -interpret exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "not available with -remote") {
		t.Errorf("stderr should explain the -remote restriction: %q", stderr)
	}

	if code := srv.stop(t); code != 0 {
		t.Errorf("serve exit %d, want 0", code)
	}
}

// TestE2EGracefulDrain: SIGTERM with an active SSE subscriber and a
// mid-flight estimate. The estimate completes with 200, the stream
// closes cleanly (EOF, not a reset), readiness flips, and the process
// exits 0.
func TestE2EGracefulDrain(t *testing.T) {
	dataset, model := buildE2EModel(t)
	srv := startServe(t, "-model", model, "-max-body", "67108864")

	// Readiness holds while the server is healthy.
	if status, body := testutil.HTTPGet(t, srv.base+"/readyz"); status != http.StatusOK {
		t.Fatalf("readyz %d: %s", status, body)
	}

	// Inflate the 48-sample dataset into a workload big enough to still
	// be estimating when the signal lands.
	raw, err := os.ReadFile(dataset)
	if err != nil {
		t.Fatal(err)
	}
	var d core.Dataset
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	base := d.Samples
	for len(d.Samples) < 120_000 {
		d.Samples = append(d.Samples, base...)
	}
	bigBody, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}

	// Subscriber: hold GET /v1/stream open; its body must end with a
	// clean EOF when the drain detaches it.
	subResp, err := http.Get(srv.base + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer subResp.Body.Close()
	if subResp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", subResp.StatusCode)
	}
	sseDone := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, subResp.Body)
		sseDone <- err
	}()

	// Mid-flight estimate, launched just before the signal.
	estDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.base+"/v1/estimate", "application/json", bytes.NewReader(bigBody))
		if err != nil {
			estDone <- err
			return
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case rerr != nil:
			estDone <- fmt.Errorf("reading estimate response: %w", rerr)
		case resp.StatusCode != http.StatusOK:
			estDone <- fmt.Errorf("estimate status %d: %s", resp.StatusCode, body)
		case !json.Valid(body):
			estDone <- fmt.Errorf("estimate response is not complete JSON")
		default:
			estDone <- nil
		}
	}()

	// Give the estimate a moment to reach the engine, then pull the plug.
	time.Sleep(50 * time.Millisecond)
	if err := srv.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-estDone:
		if err != nil {
			t.Errorf("mid-flight estimate not drained cleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("mid-flight estimate never completed during drain")
	}
	select {
	case err := <-sseDone:
		// A clean server-side close surfaces as EOF (nil from io.Copy):
		// the hub detached the subscriber before the listener died.
		if err != nil {
			t.Errorf("SSE stream did not close cleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE subscriber still hanging after SIGTERM")
	}

	done := make(chan error, 1)
	go func() { done <- srv.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		srv.cmd.Process.Kill()
		t.Fatal("serve did not exit after drain")
	}
	if code := srv.cmd.ProcessState.ExitCode(); code != 0 {
		t.Errorf("serve exit %d after graceful drain, want 0\nstderr:\n%s", code, srv.stderr.String())
	}
	select {
	case <-srv.drained:
	case <-time.After(10 * time.Second):
		t.Fatal("stderr drain never finished")
	}
	if !strings.Contains(srv.stderr.String(), "drained") {
		t.Errorf("serve stderr missing drain confirmation:\n%s", srv.stderr.String())
	}
}

// TestE2EOverloadFlags: a serve started with a tiny gate sheds with
// 429 + Retry-After under concurrent offered load, and per-tenant
// quotas bite via the CLI flags.
func TestE2EOverloadFlags(t *testing.T) {
	dataset, model := buildE2EModel(t)
	srv := startServe(t, "-model", model, "-max-body", "67108864",
		"-max-inflight", "1", "-admission-queue", "-1", "-queue-wait", "1ms",
		"-degraded-cache", "-1",
		"-tenant-rate", "0.001", "-tenant-burst", "2")

	raw, err := os.ReadFile(dataset)
	if err != nil {
		t.Fatal(err)
	}
	var d core.Dataset
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	base := d.Samples
	for len(d.Samples) < 60_000 {
		d.Samples = append(d.Samples, base...)
	}
	bigBody, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}

	// Tenant quota: burst 2 at a negligible refill rate means the third
	// request from the same tenant is rejected before it ever touches
	// the gate.
	post := func(tenant string, body []byte) (int, http.Header) {
		req, err := http.NewRequest("POST", srv.base+"/v1/estimate", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Spire-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}
	small := raw
	for i := 0; i < 2; i++ {
		if status, _ := post("greedy", small); status != http.StatusOK {
			t.Fatalf("tenant warmup %d status %d, want 200", i, status)
		}
	}
	status, hdr := post("greedy", small)
	if status != http.StatusTooManyRequests {
		t.Fatalf("third tenant request status %d, want 429", status)
	}
	if ra := hdr.Get("Retry-After"); ra == "" {
		t.Error("quota rejection missing Retry-After")
	}
	if status, _ := post("frugal", small); status != http.StatusOK {
		t.Error("a different tenant must not be affected by greedy's quota")
	}

	// Gate: with one slot and no waiting room, a concurrent burst sheds
	// the overflow with 429 — never 5xx.
	type outcome struct {
		status     int
		retryAfter string
	}
	const offered = 6
	results := make(chan outcome, offered)
	for i := 0; i < offered; i++ {
		go func(i int) {
			status, hdr := post(fmt.Sprintf("burst-%d", i), bigBody)
			results <- outcome{status, hdr.Get("Retry-After")}
		}(i)
	}
	served, shed := 0, 0
	for i := 0; i < offered; i++ {
		r := <-results
		switch r.status {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			shed++
			if r.retryAfter == "" {
				t.Error("shed response missing Retry-After")
			}
		default:
			t.Errorf("overload produced status %d; only 200/429 are allowed", r.status)
		}
	}
	if served == 0 || shed == 0 {
		t.Errorf("burst of %d: served %d, shed %d — want both > 0", offered, served, shed)
	}

	if code := srv.stop(t); code != 0 {
		t.Errorf("serve exit %d, want 0", code)
	}
}
