package main

import (
	"context"
	"fmt"

	"spire/internal/client"
	"spire/internal/core"
)

// newRemoteClient builds the retrying client for -remote subcommand
// modes. The defaults (5 attempts, 100ms base, 5s cap, full jitter,
// Retry-After honored) are the client package's; the CLI only supplies
// identity.
func newRemoteClient(baseURL, tenant string) (*client.Client, error) {
	c, err := client.New(client.Config{BaseURL: baseURL, Tenant: tenant})
	if err != nil {
		return nil, fmt.Errorf("-remote: %w", err)
	}
	return c, nil
}

// remoteEstimate runs one estimation against a spire serve instance and
// returns the estimation plus the serving model's ID. The result is
// byte-for-byte what a local analyze with the same model would compute —
// the service contract the e2e suite pins. wireFmt selects the transport
// ("json"/"" or "bin"); the decoded estimation is identical either way.
// Datasets carrying scheduler events ship them too, so the server
// attaches the combined on/off-CPU report exactly as a local run would.
func remoteEstimate(ctx context.Context, c *client.Client, data core.Dataset, workers int, wireFmt string) (*core.Estimation, string, error) {
	res, err := c.Estimate(ctx, data.Samples, client.EstimateOptions{Workers: workers, Wire: wireFmt, Sched: data.Sched})
	if err != nil {
		return nil, "", err
	}
	if res.Estimation == nil {
		return nil, "", fmt.Errorf("remote returned no estimation (model %s)", res.Model)
	}
	return res.Estimation, res.Model, nil
}
