package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spire/internal/serve"
)

// cmdServe runs the long-running estimation service. It blocks until
// SIGINT/SIGTERM, then drains in-flight requests before returning.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address (use :0 for an ephemeral port)")
	modelPath := fs.String("model", "", "model file to serve at startup")
	modelDir := fs.String("model-dir", "", "persist accepted uploads here and resume the latest at startup")
	cache := fs.Int("cache", 128, "workload-index cache entries (negative disables)")
	maxWorkers := fs.Int("max-workers", 0, "cap per-request estimation workers (0 = GOMAXPROCS)")
	maxBody := fs.Int64("max-body", 8<<20, "max request body bytes")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request estimation timeout")
	drain := fs.Duration("drain", 10*time.Second, "max time to drain in-flight requests on shutdown")
	pprofFlag := fs.Bool("pprof", false, "expose /debug/pprof/ (local debugging only)")
	maxInflight := fs.Int("max-inflight", 0, "cap concurrently running estimations (0 = 4x GOMAXPROCS, negative disables the gate)")
	admissionQueue := fs.Int("admission-queue", 0, "requests allowed to wait for an estimation slot (0 = 8x max-inflight, negative = no waiting room)")
	queueWait := fs.Duration("queue-wait", 0, "max time one request may wait in the admission queue (0 = 1s)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant request quota in requests/second (0 disables quotas)")
	tenantBurst := fs.Float64("tenant-burst", 0, "per-tenant burst capacity (0 = max(1, 2x tenant-rate))")
	degradedCache := fs.Int("degraded-cache", 0, "cached responses servable while the gate is saturated (0 = 64, negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments (got %q)", fs.Args())
	}

	srv := serve.New(serve.Config{
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		MaxWorkers:     *maxWorkers,
		CacheEntries:   *cache,
		ModelDir:       *modelDir,
		EnablePprof:    *pprofFlag,
		MaxConcurrent:  *maxInflight,
		AdmissionQueue: *admissionQueue,
		QueueWait:      *queueWait,
		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
		DegradedCache:  *degradedCache,
	})

	// Resume the newest persisted model first so an explicit -model always
	// wins (it loads second and becomes current).
	if *modelDir != "" {
		info, err := srv.Models().LoadLatestFromDir()
		if err != nil {
			return fmt.Errorf("resuming model from %s: %w", *modelDir, err)
		}
		if info != nil {
			fmt.Fprintf(os.Stderr, "spire serve: resumed model %s (%d metrics) from %s\n",
				info.ID[:12], info.Metrics, *modelDir)
		}
	}
	if *modelPath != "" {
		info, err := srv.Models().LoadFile(*modelPath)
		if err != nil {
			return fmt.Errorf("loading %s: %w", *modelPath, err)
		}
		fmt.Fprintf(os.Stderr, "spire serve: loaded model %s (%d metrics) from %s\n",
			info.ID[:12], info.Metrics, *modelPath)
	}
	if _, info := srv.Models().Current(); info == nil {
		fmt.Fprintln(os.Stderr, "spire serve: no model loaded; serving will return 503 until one is POSTed to /v1/models")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The e2e harness scrapes this line for the bound port, so keep the
	// "listening on" phrasing stable.
	fmt.Fprintf(os.Stderr, "spire serve: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, ln, *drain); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "spire serve: drained, shutting down")
	return nil
}
