package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixturePath = "../../internal/ingest/testdata/skylake_interval.csv"

// captureStderr runs fn with os.Stderr redirected to a pipe and returns
// what was written.
func captureStderr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	fnErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), fnErr
}

// TestIngestRoundTrip is the acceptance path: a real-format perf stat CSV
// fixture ingests into a dataset that spire train accepts, with the
// quarantine summary on stderr. The fixture contains garbled and
// duplicate rows, so the lenient run must report partial success.
func TestIngestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ingested.json")
	stderr, err := captureStderr(t, func() error {
		return cmdIngest([]string{"-o", out, fixturePath})
	})
	if !errors.Is(err, errPartialIngest) {
		t.Fatalf("lenient ingest of a corrupted fixture must report partial success, got %v", err)
	}
	for _, want := range []string{"94 samples", "24 intervals", "garbled:", "not-counted:", "duplicate:"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr summary missing %q:\n%s", want, stderr)
		}
	}
	model := filepath.Join(dir, "model.json")
	if err := cmdTrain([]string{"-o", model, out}); err != nil {
		t.Fatalf("train on ingested dataset: %v", err)
	}
	if err := cmdAnalyze([]string{"-model", model, "-top", "3", out}); err != nil {
		t.Fatalf("analyze ingested dataset against its own model: %v", err)
	}
}

func TestIngestStrictFailsOnFixture(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.json")
	_, err := captureStderr(t, func() error {
		return cmdIngest([]string{"-strict", "-o", out, fixturePath})
	})
	if err == nil {
		t.Error("strict ingest of the corrupted fixture must fail")
	}
}

func TestIngestFlagValidation(t *testing.T) {
	if err := cmdIngest([]string{"-strict", "-lenient", fixturePath}); err == nil {
		t.Error("-strict -lenient must conflict")
	}
	if err := cmdIngest([]string{}); err == nil {
		t.Error("no inputs must error")
	}
	if _, err := captureStderr(t, func() error {
		return cmdIngest([]string{"-format", "xml", fixturePath})
	}); err == nil {
		t.Error("unknown format must error")
	}
}

// TestIngestMergesWindows: multiple inputs must land in disjoint window
// ranges so merged intervals stay distinct periods.
func TestIngestMergesWindows(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "merged.json")
	_, err := captureStderr(t, func() error {
		return cmdIngest([]string{"-o", out, fixturePath, fixturePath})
	})
	if !errors.Is(err, errPartialIngest) {
		t.Fatalf("merged ingest of corrupted fixtures must report partial success, got %v", err)
	}
	data, err := readDatasets([]string{out})
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 2*94 {
		t.Errorf("merged samples = %d, want 188", data.Len())
	}
	maxW := 0
	for _, s := range data.Samples {
		if s.Window > maxW {
			maxW = s.Window
		}
	}
	if maxW != 48 {
		t.Errorf("max window = %d, want 48 (two offset runs of 24)", maxW)
	}
}

// TestIngestCarriesSchedEvents pins the off-CPU ingestion contract:
// scheduler-event rows in a perf CSV survive `spire ingest` into the
// written dataset (with window tags offset per input file, like counter
// samples), and analyze's combined partition becomes reachable from the
// CLI alone.
func TestIngestCarriesSchedEvents(t *testing.T) {
	dir := t.TempDir()
	base, err := os.ReadFile("testdata/e2e_clean.csv")
	if err != nil {
		t.Fatal(err)
	}
	schedRows := "23.0,sched.switch_in,100,0,0,,-1\n" +
		"23.0,sched.block_lock,4100,0,0,hot,-1\n" +
		"23.1,sched.unblock_lock,9800,0,0,hot,-1\n" +
		"23.1,sched.switch_in,9800,0,0,,-1\n" +
		"23.2,sched.switch_out,20000,0,0,,-1\n"
	src := filepath.Join(dir, "sched.csv")
	if err := os.WriteFile(src, append(base, schedRows...), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "dataset.json")
	if _, err := captureStderr(t, func() error {
		return cmdIngest([]string{"-o", out, src, src})
	}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	data, err := readDatasets([]string{out})
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Sched) != 2*5 {
		t.Fatalf("dataset carries %d sched events, want 10 (5 per input file)", len(data.Sched))
	}
	// The second file's events sit in later windows than the first's.
	first, last := data.Sched[0].Window, data.Sched[len(data.Sched)-1].Window
	if first <= 0 || last <= first {
		t.Errorf("sched windows not offset per file: first %d, last %d", first, last)
	}
}

func TestIngestJSONInput(t *testing.T) {
	dir := t.TempDir()
	src := writeSamples(t, dir, "fftw")
	out := filepath.Join(dir, "revalidated.json")
	stderr, err := captureStderr(t, func() error {
		return cmdIngest([]string{"-format", "json", "-o", out, src})
	})
	// The simulated workloads include throughput outliers that get
	// quarantined, so the lenient run is a partial success by contract.
	if !errors.Is(err, errPartialIngest) {
		t.Fatalf("json ingest: want partial success, got %v\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "ingested") {
		t.Errorf("missing summary on stderr: %q", stderr)
	}
}
