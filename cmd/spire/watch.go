package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spire/internal/ingest"
	"spire/internal/stream"
)

// cmdWatch tails a live `perf stat -x, -I` CSV stream — a growing file or
// stdin — and prints one sliding-window bottleneck estimation per
// completed interval. The output is byte-stable: the same input bytes
// produce the same lines regardless of how reads chunk them, so the
// command is scriptable (and golden-testable) despite being "live".
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model file")
	window := fs.Int("window", stream.DefaultWindowIntervals, "sliding window span in intervals")
	top := fs.Int("top", 5, "candidate bottleneck metrics kept per window (0 = all)")
	jsonOut := fs.Bool("json", false, "print one compact JSON result per line instead of text")
	follow := fs.Bool("follow", false, "keep watching for growth after EOF, like tail -f")
	poll := fs.Duration("poll", 500*time.Millisecond, "how often -follow re-checks for new input")
	workers := fs.Int("workers", 0, "concurrent per-metric estimators (0 = GOMAXPROCS)")
	strict := fs.Bool("strict", false, "abort on the first severe anomaly instead of quarantining")
	verbose := fs.Bool("v", false, "print every retained diagnostic to stderr as it happens")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf(`watch takes exactly one input: a CSV file or "-" for stdin`)
	}

	ens, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	id, err := ens.Fingerprint()
	if err != nil {
		return err
	}

	in := os.Stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	opts := ingest.Options{Mode: ingest.Lenient}
	if *strict {
		opts.Mode = ingest.Strict
	}
	p := stream.NewPipeline(stream.Config{
		WindowIntervals: *window,
		Top:             *top,
		Workers:         *workers,
		Ingest:          opts,
		Model:           stream.StaticModel(ens, id),
	})

	// SIGINT/SIGTERM ends the watch but still flushes the final open
	// interval, so an interrupted live session keeps its last window.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The blocking Reads happen in their own goroutine so a signal
	// interrupts the watch immediately even while a pipe/stdin Read is
	// parked with no data (a plain read loop would only notice ctx after
	// the Read returned). The goroutine owns the buffer handoff: it sends
	// a chunk, then waits for the main loop to hand the buffer back before
	// reusing it, so no copying is needed. On EOF it either finishes or,
	// with -follow, polls for growth itself. It may stay parked in one
	// last Read after cancellation — fine for a process about to exit.
	type chunk struct {
		data []byte
		err  error
	}
	chunks := make(chan chunk)
	bufBack := make(chan []byte, 1)
	go func() {
		defer close(chunks)
		buf := make([]byte, 64<<10)
		for {
			n, rerr := in.Read(buf)
			if rerr == io.EOF && *follow {
				if n > 0 {
					select {
					case chunks <- chunk{data: buf[:n]}:
					case <-ctx.Done():
						return
					}
					select {
					case buf = <-bufBack:
					case <-ctx.Done():
						return
					}
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(*poll):
				}
				continue
			}
			select {
			case chunks <- chunk{data: buf[:n], err: rerr}:
			case <-ctx.Done():
				return
			}
			if rerr != nil {
				return
			}
			select {
			case buf = <-bufBack:
			case <-ctx.Done():
				return
			}
		}
	}()

	interrupted := false
read:
	for {
		var ck chunk
		var ok bool
		select {
		case <-ctx.Done():
			interrupted = true
			break read
		case ck, ok = <-chunks:
			if !ok {
				interrupted = true // reader exited on cancellation
				break read
			}
		}
		if len(ck.data) > 0 {
			results, err := p.Feed(ctx, ck.data)
			if eerr := emitWatch(results, *jsonOut); eerr != nil {
				return eerr
			}
			drainDiags(p, *verbose)
			if err != nil && !errors.Is(err, context.Canceled) {
				return err // sticky strict-mode abort
			}
		}
		switch {
		case ck.err == io.EOF:
			break read
		case ck.err != nil:
			return ck.err
		default:
			bufBack <- ck.data[:cap(ck.data)]
		}
	}

	// Flush the trailing partial line and final open interval. After an
	// interrupt the watch ctx is already cancelled, so flush on a fresh
	// one — the stream is over either way.
	flushCtx := ctx
	if interrupted {
		flushCtx = context.Background()
	}
	results, ferr := p.Close(flushCtx)
	if eerr := emitWatch(results, *jsonOut); eerr != nil {
		return eerr
	}
	drainDiags(p, *verbose)
	if ferr != nil && !errors.Is(ferr, context.Canceled) {
		return ferr
	}

	st := p.Stats()
	fmt.Fprintf(os.Stderr, "spire watch: %d lines, %d intervals, %d samples\n",
		st.Lines, st.Intervals, st.Samples)
	if severe := st.SevereDiags(); severe > 0 {
		return fmt.Errorf("%w: %d severe anomalies quarantined (details on stderr)", errPartialIngest, severe)
	}
	return nil
}

// emitWatch prints window results to stdout: compact JSON lines (exactly
// the /v1/stream SSE data payloads) or a one-line text digest per window.
func emitWatch(results []stream.Result, jsonOut bool) error {
	for _, res := range results {
		if jsonOut {
			raw, err := json.Marshal(res)
			if err != nil {
				return err
			}
			fmt.Println(string(raw))
			continue
		}
		if res.Error != "" {
			fmt.Printf("window %d  [%.3f..%.3f]  intervals %d  samples %d  error: %s\n",
				res.Seq, res.StartTS, res.EndTS, res.Intervals, res.Samples, res.Error)
			continue
		}
		est := res.Estimation
		head := "-"
		if len(est.PerMetric) > 0 {
			head = est.PerMetric[0].Metric
		}
		fmt.Printf("window %d  [%.3f..%.3f]  samples %d  measured %.3f  bound %.3f  bottleneck %s\n",
			res.Seq, res.StartTS, res.EndTS, res.Samples,
			est.MeasuredThroughput, est.MaxThroughput, head)
	}
	return nil
}

// drainDiags empties the pipeline's retained diagnostics, printing them
// when verbose. Draining even when quiet keeps retention bounded on
// endless streams; the final stats line still carries the per-class
// totals.
func drainDiags(p *stream.Pipeline, verbose bool) {
	diags := p.TakeDiags()
	if !verbose {
		return
	}
	for _, d := range diags {
		if d.Line > 0 {
			fmt.Fprintf(os.Stderr, "spire watch: line %d [%s] %s\n", d.Line, d.ClassName, d.Msg)
		} else {
			fmt.Fprintf(os.Stderr, "spire watch: [%s] %s\n", d.ClassName, d.Msg)
		}
	}
}
