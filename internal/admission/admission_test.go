package admission

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spire/internal/metrics"
)

// reject asserts err is a *RejectError with the given reason and returns
// it.
func reject(t *testing.T, err error, reason string) *RejectError {
	t.Helper()
	var re *RejectError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RejectError", err)
	}
	if re.Reason != reason {
		t.Fatalf("reason = %q, want %q", re.Reason, reason)
	}
	if re.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %s, want >= 1s", re.RetryAfter)
	}
	return re
}

func TestGateFastPath(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, MaxQueue: -1})
	r1, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Saturated() {
		t.Fatal("gate with both slots held should be saturated")
	}
	// Third request has no waiting room: immediate queue_full.
	if _, err := c.Acquire(context.Background()); err == nil {
		t.Fatal("third acquire should be rejected")
	} else {
		reject(t, err, ReasonQueueFull)
	}
	r1()
	r1() // double release must be a no-op, not a second freed slot
	if c.Saturated() {
		t.Fatal("gate should have a free slot after release")
	}
	r3, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2()
	r3()
	if got := c.mAdmitted.Value(); got != 3 {
		t.Fatalf("admitted_total = %g, want 3", got)
	}
	if got := c.mRejQueue.Value(); got != 1 {
		t.Fatalf("rejected{queue_full} = %g, want 1", got)
	}
}

func TestGateQueueWaitAndHandoff(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 1, QueueWait: 5 * time.Second})
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A second request queues; releasing the slot must admit it.
	got := make(chan error, 1)
	go func() {
		r, err := c.Acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	// Wait for it to be queued, then release.
	for i := 0; i < 1000 && c.gQueue.Value() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if c.gQueue.Value() != 1 {
		t.Fatal("second acquire never queued")
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire = %v, want admitted after release", err)
	}
	if d := c.gQueue.Value(); d != 0 {
		t.Fatalf("queue_depth = %g after drain, want 0", d)
	}
}

func TestGateQueueDeadline(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 4, QueueWait: 10 * time.Millisecond})
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, err = c.Acquire(context.Background())
	reject(t, err, ReasonDeadline)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline rejection took %s, want ~QueueWait", elapsed)
	}
	if got := c.mRejDeadln.Value(); got != 1 {
		t.Fatalf("rejected{deadline} = %g, want 1", got)
	}
}

func TestGateContextCancel(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 4, QueueWait: time.Minute})
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := c.Acquire(ctx); err == nil {
		t.Fatal("canceled acquire should be rejected")
	} else {
		reject(t, err, ReasonDeadline)
	}
}

func TestGateDisabled(t *testing.T) {
	c := New(Config{MaxConcurrent: -1})
	for i := 0; i < 100; i++ {
		r, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer r()
	}
	if c.Saturated() {
		t.Fatal("disabled gate can never saturate")
	}
}

func TestQuotaTokenBucket(t *testing.T) {
	clock := time.Unix(1000, 0)
	c := New(Config{TenantRate: 1, TenantBurst: 2, Now: func() time.Time { return clock }})
	// Burst of 2, then empty.
	if err := c.Quota("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Quota("a"); err != nil {
		t.Fatal(err)
	}
	err := c.Quota("a")
	re := reject(t, err, ReasonQuota)
	if re.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %s, want 1s at rate 1/s", re.RetryAfter)
	}
	// Tenants are isolated.
	if err := c.Quota("b"); err != nil {
		t.Fatal(err)
	}
	// One second refills exactly one token.
	clock = clock.Add(time.Second)
	if err := c.Quota("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Quota("a"); err == nil {
		t.Fatal("second request after 1s refill should be rejected")
	}
	// Refill never exceeds burst.
	clock = clock.Add(time.Hour)
	if err := c.Quota("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Quota("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Quota("a"); err == nil {
		t.Fatal("burst cap exceeded after long idle")
	}
	if got := c.mRejQuota.Value(); got != 3 {
		t.Fatalf("rejected{quota} = %g, want 3", got)
	}
}

func TestQuotaDisabled(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 1000; i++ {
		if err := c.Quota("x"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuotaTenantEviction(t *testing.T) {
	clock := time.Unix(1000, 0)
	c := New(Config{TenantRate: 1, TenantBurst: 1, MaxTenants: 2, Now: func() time.Time { return clock }})
	if err := c.Quota("old"); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Millisecond)
	if err := c.Quota("mid"); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Millisecond)
	// Third tenant evicts "old" (stalest). "old" then returns with a
	// fresh burst instead of its drained bucket.
	if err := c.Quota("new"); err != nil {
		t.Fatal(err)
	}
	if err := c.Quota("old"); err != nil {
		t.Fatalf("evicted tenant should restart with a full burst: %v", err)
	}
	if len(c.quota.m) > 2 {
		t.Fatalf("bucket map grew to %d, cap 2", len(c.quota.m))
	}
}

// TestMetricsExposition pins the exposition names and label shape the
// serving tier's /metrics documents: all three rejection reasons render
// even at zero.
func TestMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	New(Config{Metrics: reg})
	var b strings.Builder
	if err := reg.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE spire_admission_admitted_total counter",
		"# TYPE spire_admission_rejected_total counter",
		`spire_admission_rejected_total{reason="quota"} 0`,
		`spire_admission_rejected_total{reason="queue_full"} 0`,
		`spire_admission_rejected_total{reason="deadline"} 0`,
		"# TYPE spire_admission_queue_depth gauge",
		"spire_admission_queue_depth 0",
		"# TYPE spire_admission_inflight gauge",
		"spire_admission_inflight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestAccountingConservation hammers the controller from many goroutines
// and checks the books balance exactly: every Acquire is admitted or
// rejected with exactly one reason, and the gauges return to zero.
func TestAccountingConservation(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, MaxQueue: 2, QueueWait: 2 * time.Millisecond})
	const goroutines = 16
	const perG = 50
	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				release, err := c.Acquire(context.Background())
				if err != nil {
					var re *RejectError
					if !errors.As(err, &re) || (re.Reason != ReasonQueueFull && re.Reason != ReasonDeadline) {
						t.Errorf("unexpected error %v", err)
						return
					}
					rejected.Add(1)
					continue
				}
				admitted.Add(1)
				time.Sleep(50 * time.Microsecond)
				release()
			}
		}()
	}
	wg.Wait()
	if total := admitted.Load() + rejected.Load(); total != goroutines*perG {
		t.Fatalf("admitted %d + rejected %d = %d, want %d",
			admitted.Load(), rejected.Load(), total, goroutines*perG)
	}
	if got := c.mAdmitted.Value(); got != float64(admitted.Load()) {
		t.Fatalf("admitted_total = %g, callers saw %d", got, admitted.Load())
	}
	if got := c.mRejQueue.Value() + c.mRejDeadln.Value(); got != float64(rejected.Load()) {
		t.Fatalf("rejected_total = %g, callers saw %d", got, rejected.Load())
	}
	if d := c.gQueue.Value(); d != 0 {
		t.Fatalf("queue_depth = %g at rest, want 0", d)
	}
	if d := c.gInflight.Value(); d != 0 {
		t.Fatalf("inflight = %g at rest, want 0", d)
	}
}
