// Package admission is the overload-safety layer in front of SPIRE's
// estimation path: a bounded-concurrency gate with a short,
// deadline-aware wait queue, and per-tenant token-bucket quotas. It
// exists so `spire serve` degrades deterministically under overload —
// excess offered load is shed early with 429 + Retry-After instead of
// queueing unboundedly inside net/http and failing non-deterministically
// on memory or timeouts.
//
// The two mechanisms compose but are independently optional:
//
//   - The gate caps how many requests run the (CPU-heavy) estimation
//     path at once. A request that cannot start immediately waits in a
//     bounded queue for at most QueueWait (or its own context deadline,
//     whichever is sooner); when the queue itself is full the request is
//     rejected instantly with reason "queue_full", and a queued request
//     whose wait expires is rejected with reason "deadline". The queue
//     is intentionally short: its job is absorbing microbursts, not
//     hiding sustained overload.
//
//   - Quotas meter request *rate* per tenant with a classic token
//     bucket (rate tokens/second, burst capacity). Rejections carry the
//     exact time until the next token as Retry-After, so a well-behaved
//     client converges on the sustainable rate instead of hammering.
//
// Every decision is counted on an internal/metrics registry:
// spire_admission_admitted_total, spire_admission_rejected_total{reason}
// (reason ∈ quota, queue_full, deadline — all three pre-registered so
// they render at 0), spire_admission_queue_depth and
// spire_admission_inflight gauges. The serving tier reconciles its
// request totals against these exactly: every request that reaches an
// admission check is admitted, degraded-served, or rejected with exactly
// one reason.
package admission

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"spire/internal/metrics"
)

// Rejection reasons, the `reason` label of
// spire_admission_rejected_total.
const (
	ReasonQuota     = "quota"      // tenant token bucket empty
	ReasonQueueFull = "queue_full" // gate saturated and the wait queue is full
	ReasonDeadline  = "deadline"   // queued, but QueueWait (or the caller's context) expired first
)

// RejectError reports one shed request: why, and when retrying is worth
// it. The serving tier maps it to 429 with a Retry-After header.
type RejectError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("admission rejected (%s), retry after %s", e.Reason, e.RetryAfter)
}

// Config tunes a Controller. The zero value enables the gate with
// defaults and disables quotas.
type Config struct {
	// MaxConcurrent caps concurrently admitted requests. 0 selects
	// 4×GOMAXPROCS; negative disables the gate entirely.
	MaxConcurrent int
	// MaxQueue bounds how many requests may wait for a slot. 0 selects
	// 8×MaxConcurrent; negative means no waiting room (immediate
	// queue_full when saturated).
	MaxQueue int
	// QueueWait caps how long one request may wait in the queue.
	// 0 selects 1s.
	QueueWait time.Duration
	// TenantRate is the sustained per-tenant request rate in
	// requests/second. 0 disables quotas.
	TenantRate float64
	// TenantBurst is the token-bucket capacity. 0 selects
	// max(1, 2×TenantRate).
	TenantBurst float64
	// MaxTenants bounds the tenant-bucket map; the stalest bucket is
	// evicted at the cap (a returning tenant restarts with a full
	// burst, which only ever errs in the tenant's favor). 0 selects
	// 4096.
	MaxTenants int
	// Metrics receives the admission counters and gauges. Nil keeps
	// them on a private registry.
	Metrics *metrics.Registry
	// Now is the clock, for tests. Nil selects time.Now.
	Now func() time.Time
}

func (c *Config) setDefaults() {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8 * c.MaxConcurrent
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueWait == 0 {
		c.QueueWait = time.Second
	}
	if c.TenantBurst == 0 {
		c.TenantBurst = math.Max(1, 2*c.TenantRate)
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 4096
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Controller is the combined admission decision-maker. All methods are
// safe for concurrent use.
type Controller struct {
	cfg Config

	sem    chan struct{} // nil = gate disabled
	queued chan struct{} // nil = no waiting room; capacity MaxQueue

	quota *buckets // nil = quotas disabled

	mAdmitted  *metrics.Counter
	mRejQuota  *metrics.Counter
	mRejQueue  *metrics.Counter
	mRejDeadln *metrics.Counter
	gQueue     *metrics.Gauge
	gInflight  *metrics.Gauge
}

// New builds a Controller from cfg.
func New(cfg Config) *Controller {
	gateOff := cfg.MaxConcurrent < 0
	cfg.setDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Controller{
		cfg: cfg,

		mAdmitted: reg.Counter("spire_admission_admitted_total",
			"Requests admitted past the concurrency gate and quotas."),
		mRejQuota: reg.Counter("spire_admission_rejected_total",
			"Requests shed by admission control, by reason.", metrics.L("reason", ReasonQuota)),
		mRejQueue: reg.Counter("spire_admission_rejected_total",
			"Requests shed by admission control, by reason.", metrics.L("reason", ReasonQueueFull)),
		mRejDeadln: reg.Counter("spire_admission_rejected_total",
			"Requests shed by admission control, by reason.", metrics.L("reason", ReasonDeadline)),
		gQueue: reg.Gauge("spire_admission_queue_depth",
			"Requests currently waiting for an admission slot."),
		gInflight: reg.Gauge("spire_admission_inflight",
			"Requests currently holding an admission slot."),
	}
	if !gateOff {
		c.sem = make(chan struct{}, cfg.MaxConcurrent)
		if cfg.MaxQueue > 0 {
			c.queued = make(chan struct{}, cfg.MaxQueue)
		}
	}
	if cfg.TenantRate > 0 {
		c.quota = newBuckets(cfg.TenantRate, cfg.TenantBurst, cfg.MaxTenants, cfg.Now)
	}
	return c
}

// Quota spends one token from tenant's bucket. A nil error admits; a
// *RejectError (reason quota) carries the wait until the next token.
// Quotas disabled always admits. Quota does NOT count toward
// admitted_total — use it for routes metered by rate alone, or ahead of
// Acquire which does the counting.
func (c *Controller) Quota(tenant string) error {
	if c.quota == nil {
		return nil
	}
	ok, wait := c.quota.take(tenant)
	if ok {
		return nil
	}
	c.mRejQuota.Inc()
	return &RejectError{Reason: ReasonQuota, RetryAfter: ceilSecond(wait)}
}

// Acquire claims a concurrency slot, waiting in the bounded queue for at
// most QueueWait or ctx's deadline. On admission it returns a release
// function that MUST be called exactly once; on rejection it returns a
// *RejectError with reason queue_full or deadline.
func (c *Controller) Acquire(ctx context.Context) (release func(), err error) {
	if c.sem == nil {
		c.mAdmitted.Inc()
		return func() {}, nil
	}
	select {
	case c.sem <- struct{}{}:
		return c.admitted(), nil
	default:
	}
	// Saturated: try to join the bounded wait queue.
	if c.queued == nil {
		c.mRejQueue.Inc()
		return nil, &RejectError{Reason: ReasonQueueFull, RetryAfter: ceilSecond(c.cfg.QueueWait)}
	}
	select {
	case c.queued <- struct{}{}:
	default:
		c.mRejQueue.Inc()
		return nil, &RejectError{Reason: ReasonQueueFull, RetryAfter: ceilSecond(c.cfg.QueueWait)}
	}
	c.gQueue.Add(1)
	defer func() {
		<-c.queued
		c.gQueue.Add(-1)
	}()
	timer := time.NewTimer(c.cfg.QueueWait)
	defer timer.Stop()
	select {
	case c.sem <- struct{}{}:
		return c.admitted(), nil
	case <-timer.C:
	case <-ctx.Done():
	}
	c.mRejDeadln.Inc()
	return nil, &RejectError{Reason: ReasonDeadline, RetryAfter: ceilSecond(c.cfg.QueueWait)}
}

// admitted counts one admission and builds its once-only release.
func (c *Controller) admitted() func() {
	c.mAdmitted.Inc()
	c.gInflight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			<-c.sem
			c.gInflight.Add(-1)
		})
	}
}

// Saturated reports whether the gate is at capacity right now — the
// signal the serving tier uses to prefer its degraded cache-only fast
// path without waiting.
func (c *Controller) Saturated() bool {
	return c.sem != nil && len(c.sem) == cap(c.sem)
}

// ceilSecond rounds a wait up to whole seconds (HTTP Retry-After has
// one-second resolution), never below 1s.
func ceilSecond(d time.Duration) time.Duration {
	if d <= time.Second {
		return time.Second
	}
	return time.Duration(math.Ceil(d.Seconds())) * time.Second
}

// buckets is the per-tenant token-bucket table.
type buckets struct {
	mu    sync.Mutex
	m     map[string]*bucket
	rate  float64 // tokens per second
	burst float64
	max   int
	now   func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newBuckets(rate, burst float64, max int, now func() time.Time) *buckets {
	return &buckets{m: make(map[string]*bucket), rate: rate, burst: burst, max: max, now: now}
}

// take spends one token from tenant's bucket, refilling lazily. When the
// bucket is empty it reports how long until one token accrues.
func (b *buckets) take(tenant string) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	bk := b.m[tenant]
	if bk == nil {
		if len(b.m) >= b.max {
			b.evictStalest()
		}
		bk = &bucket{tokens: b.burst, last: now}
		b.m[tenant] = bk
	} else {
		elapsed := now.Sub(bk.last).Seconds()
		if elapsed > 0 {
			bk.tokens = math.Min(b.burst, bk.tokens+elapsed*b.rate)
			bk.last = now
		}
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	need := (1 - bk.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// evictStalest drops the bucket with the oldest refill time. Called with
// b.mu held.
func (b *buckets) evictStalest() {
	var victim string
	var oldest time.Time
	first := true
	for k, bk := range b.m {
		if first || bk.last.Before(oldest) {
			victim, oldest, first = k, bk.last, false
		}
	}
	if !first {
		delete(b.m, victim)
	}
}
