// Package engine is SPIRE's unified estimation engine: the one place
// every frontend — the CLI (analyze, diff, watch), the HTTP service, the
// streaming pipeline, the experiment harness, the examples — runs the
// paper's ensemble estimation (§III-C, Eq. 1 + Fig. 4) through.
//
// The Engine owns the machinery that used to be duplicated or rebuilt per
// call across those frontends:
//
//   - workload indexing, memoized in a content-hash-keyed LRU (the serve
//     tier's cache, promoted here so every consumer benefits);
//   - the precompiled per-roofline segment tables (core's chainEval,
//     built once per ensemble and shared);
//   - a bounded worker pool sized once per Engine — in practice once per
//     process via Default() — instead of a goroutine set per call;
//   - scratch-buffer reuse for the per-metric partial sums (core's
//     sync.Pool scratch, driven hardest by this hot path);
//   - optional internal/metrics instrumentation: estimates served,
//     estimation latency, samples evaluated, index-cache hits/misses.
//
// Results are byte-identical to core's historical serial Estimate for
// every worker count and pool state; the differential suite in this
// package pins that equivalence against the pre-refactor implementation.
package engine

import (
	"context"
	"sync"
	"time"

	"spire/internal/core"
	"spire/internal/metrics"
)

// DefaultCacheEntries is the index-LRU capacity when Options.CacheEntries
// is zero.
const DefaultCacheEntries = 128

// Options configures an Engine. The zero value is production-safe.
type Options struct {
	// CacheEntries bounds the workload-index LRU. Zero selects
	// DefaultCacheEntries; negative disables caching.
	CacheEntries int
	// PoolSize is the worker-pool size. Zero or negative selects
	// GOMAXPROCS. Per-call concurrency is additionally bounded by
	// core.EstimateOptions.Workers.
	PoolSize int
	// Metrics, when non-nil, receives the engine's counters and
	// histograms. Nil keeps instrumentation on a private registry.
	Metrics *metrics.Registry
}

// Engine evaluates workloads against trained ensembles. It is safe for
// concurrent use by any number of goroutines; construct one per process
// (or use Default) so the pool and cache are actually shared.
type Engine struct {
	pool  *pool
	cache *indexCache

	mEstimates   *metrics.Counter
	mSamples     *metrics.Counter
	mCacheHits   *metrics.Counter
	mCacheMisses *metrics.Counter
	mLatency     *metrics.Histogram
}

// New builds an Engine from opts.
func New(opts Options) *Engine {
	if opts.CacheEntries == 0 {
		opts.CacheEntries = DefaultCacheEntries
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Engine{
		pool:  newPool(opts.PoolSize),
		cache: newIndexCache(opts.CacheEntries),

		mEstimates:   reg.Counter("spire_engine_estimates_total", "Estimations completed by the engine."),
		mSamples:     reg.Counter("spire_engine_samples_total", "Indexed samples evaluated by completed estimations."),
		mCacheHits:   reg.Counter("spire_estimate_cache_hits_total", "Workload-index cache hits."),
		mCacheMisses: reg.Counter("spire_estimate_cache_misses_total", "Workload-index cache misses."),
		mLatency:     reg.Histogram("spire_engine_estimate_seconds", "Estimation latency.", nil),
	}
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide shared engine, building it on first
// use with default options. CLI commands, examples and library code that
// have no reason to own a pool should all share this one.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(Options{}) })
	return defaultEngine
}

// Index returns the immutable pre-built index for samples, serving
// repeats from the content-hash LRU. The second result reports whether
// the lookup hit.
func (e *Engine) Index(samples []core.Sample) (*core.WorkloadIndex, bool) {
	key := workloadKey(samples)
	ix, hit := e.cache.get(key)
	if hit {
		e.mCacheHits.Inc()
		return ix, true
	}
	e.mCacheMisses.Inc()
	ix = core.IndexWorkload(core.Dataset{Samples: samples})
	e.cache.put(key, ix)
	return ix, false
}

// Estimate runs the Eq. 1 estimation of workload against ens: index
// (cache-memoized), evaluate all shared metrics on the shared pool, merge
// deterministically. Identical inputs produce identical outputs for any
// worker count, pool size, and cache state.
func (e *Engine) Estimate(ctx context.Context, ens *core.Ensemble, workload core.Dataset, opts core.EstimateOptions) (*core.Estimation, error) {
	ix, _ := e.Index(workload.Samples)
	return e.EstimateIndexed(ctx, ens, ix, opts)
}

// EstimateIndexed is Estimate for callers that already hold an index —
// the serve handler (which needs the cache-hit flag for its response
// headers) and the streaming tier (whose sliding windows maintain
// incremental index snapshots).
func (e *Engine) EstimateIndexed(ctx context.Context, ens *core.Ensemble, ix *core.WorkloadIndex, opts core.EstimateOptions) (*core.Estimation, error) {
	opts.Runner = e.pool.run
	start := time.Now()
	est, err := ens.BatchEstimate(ctx, ix, opts)
	e.mLatency.Observe(time.Since(start).Seconds())
	if err == nil {
		e.mEstimates.Inc()
		e.mSamples.Add(float64(ix.Len()))
	}
	return est, err
}

// CacheLen reports how many workload indexes are currently cached.
func (e *Engine) CacheLen() int { return e.cache.len() }

// WorkloadKey is the engine's content hash of a sample set — the same
// key the index LRU uses. The serving tier keys its degraded-mode
// response cache on it (plus the model ID) so "same workload" means
// exactly what it means here: identical field values, any provenance.
func WorkloadKey(samples []core.Sample) string { return workloadKey(samples) }
