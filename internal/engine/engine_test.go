package engine

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"spire/internal/core"
	"spire/internal/metrics"
)

// testModel trains a small two-metric ensemble.
func testModel(t testing.TB) *core.Ensemble {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var d core.Dataset
	for i := 0; i < 300; i++ {
		iA := 1 + rng.Float64()*40
		p := 4 * iA / (iA + 6)
		w := p * 1000
		d.Add(core.Sample{Metric: "a", T: 1000, W: w, M: w / iA})
		iB := 1 + rng.Float64()*20
		p2 := 3.0 / (1 + 0.1*iB)
		w2 := p2 * 1000
		d.Add(core.Sample{Metric: "b", T: 1000, W: w2, M: w2 / iB})
	}
	ens, err := core.Train(d, core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ens
}

// testWorkload builds a deterministic mixed workload with window tags and
// some invalid/edge samples.
func testWorkload(seed int64, n int) core.Dataset {
	rng := rand.New(rand.NewSource(seed))
	var d core.Dataset
	for i := 0; i < n; i++ {
		w := 500 + rng.Float64()*1000
		d.Add(
			core.Sample{Metric: "a", T: 1000, W: w, M: w / (1 + rng.Float64()*30), Window: i / 3},
			core.Sample{Metric: "b", T: 1000, W: w, M: w / (1 + rng.Float64()*15), Window: i / 3},
		)
		if i%7 == 0 {
			d.Add(core.Sample{Metric: "a", T: 1000, W: w, M: 0, Window: i / 3}) // +Inf intensity
		}
		if i%11 == 0 {
			d.Add(core.Sample{Metric: "b", T: -1, W: w, M: 1}) // invalid, dropped by indexing
		}
	}
	return d
}

func TestEstimateMatchesCore(t *testing.T) {
	ens := testModel(t)
	d := testWorkload(1, 40)
	want, err := ens.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{})
	for workers := 0; workers <= 5; workers++ {
		got, err := e.Estimate(context.Background(), ens, d, core.EstimateOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: engine estimate diverges from core", workers)
		}
	}
}

func TestIndexCacheHitsAndReuse(t *testing.T) {
	d := testWorkload(2, 20)
	e := New(Options{})
	ix1, hit1 := e.Index(d.Samples)
	if hit1 {
		t.Fatal("first Index must miss")
	}
	ix2, hit2 := e.Index(d.Samples)
	if !hit2 {
		t.Fatal("second Index must hit")
	}
	if ix1 != ix2 {
		t.Fatal("cache hit must return the same index")
	}
	// A value-identical copy of the samples shares the key.
	cp := append([]core.Sample(nil), d.Samples...)
	if _, hit := e.Index(cp); !hit {
		t.Fatal("value-identical samples must share a cache key")
	}
	// Different samples miss.
	cp[0].W++
	if _, hit := e.Index(cp); hit {
		t.Fatal("different samples must not share a cache key")
	}
	if e.CacheLen() != 2 {
		t.Fatalf("CacheLen = %d, want 2", e.CacheLen())
	}
}

func TestCacheDisabled(t *testing.T) {
	e := New(Options{CacheEntries: -1})
	d := testWorkload(3, 5)
	e.Index(d.Samples)
	if _, hit := e.Index(d.Samples); hit {
		t.Fatal("disabled cache must never hit")
	}
	if e.CacheLen() != 0 {
		t.Fatalf("CacheLen = %d, want 0", e.CacheLen())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newIndexCache(2)
	ix := core.IndexWorkload(testWorkload(4, 3))
	c.put("k1", ix)
	c.put("k2", ix)
	if _, ok := c.get("k1"); !ok {
		t.Fatal("k1 should be cached")
	}
	c.put("k3", ix) // evicts k2 (k1 was refreshed by the get)
	if _, ok := c.get("k2"); ok {
		t.Fatal("k2 should have been evicted")
	}
	if _, ok := c.get("k1"); !ok {
		t.Fatal("k1 should have survived")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestWorkloadKeyFraming(t *testing.T) {
	// The length-framed encoding must distinguish metric-name boundaries.
	a := []core.Sample{{Metric: "ab", T: 1, W: 1, M: 1}}
	b := []core.Sample{{Metric: "a", T: 1, W: 1, M: 1}}
	if workloadKey(a) == workloadKey(b) {
		t.Fatal("different metric names must hash differently")
	}
	if workloadKey(a) != workloadKey(append([]core.Sample(nil), a...)) {
		t.Fatal("equal samples must hash identically")
	}
}

func TestEstimateCancellation(t *testing.T) {
	ens := testModel(t)
	d := testWorkload(5, 50)
	e := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Estimate(ctx, ens, d, core.EstimateOptions{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEstimateNoSamples(t *testing.T) {
	ens := testModel(t)
	e := New(Options{})
	var empty core.Dataset
	if _, err := e.Estimate(context.Background(), ens, empty, core.EstimateOptions{}); err != core.ErrNoSamples {
		t.Fatalf("err = %v, want ErrNoSamples", err)
	}
	unmodeled := core.Dataset{Samples: []core.Sample{{Metric: "zzz", T: 1, W: 1, M: 1}}}
	if _, err := e.Estimate(context.Background(), ens, unmodeled, core.EstimateOptions{}); err != core.ErrNoSamples {
		t.Fatalf("err = %v, want ErrNoSamples", err)
	}
}

// TestConcurrentEstimates hammers one engine from many goroutines — the
// serve pattern — and checks every result is identical. Run with -race.
func TestConcurrentEstimates(t *testing.T) {
	ens := testModel(t)
	d := testWorkload(6, 30)
	e := New(Options{PoolSize: 4})
	want, err := e.Estimate(context.Background(), ens, d, core.EstimateOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, _ := json.Marshal(want)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, err := e.Estimate(context.Background(), ens, d, core.EstimateOptions{Workers: 1 + g%5})
				if err != nil {
					errs <- err
					return
				}
				raw, _ := json.Marshal(got)
				if string(raw) != string(wantRaw) {
					errs <- errDiverged
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errDiverged = &divergeError{}

type divergeError struct{}

func (*divergeError) Error() string { return "concurrent estimate diverged" }

func TestPoolRunCoversAllTasks(t *testing.T) {
	p := newPool(3)
	for _, n := range []int{0, 1, 2, 7, 100} {
		for _, workers := range []int{0, 1, 2, 8} {
			hits := make([]int32, n)
			var mu sync.Mutex
			p.run(context.Background(), workers, n, func(i int) {
				mu.Lock()
				hits[i]++
				mu.Unlock()
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: task %d ran %d times", n, workers, i, h)
				}
			}
		}
	}
}

// TestPoolSaturation runs more concurrent pool.run calls than the pool
// has workers; the inline slots must keep everything progressing.
func TestPoolSaturation(t *testing.T) {
	p := newPool(2)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done := make([]bool, 50)
			p.run(context.Background(), 4, len(done), func(i int) { done[i] = true })
			for i, d := range done {
				if !d {
					t.Errorf("task %d never ran", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestEngineMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	e := New(Options{Metrics: reg})
	ens := testModel(t)
	d := testWorkload(7, 10)
	if _, err := e.Estimate(context.Background(), ens, d, core.EstimateOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(context.Background(), ens, d, core.EstimateOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("spire_engine_estimates_total", "").Value(); got != 2 {
		t.Fatalf("estimates counter = %g, want 2", got)
	}
	if got := reg.Counter("spire_estimate_cache_hits_total", "").Value(); got != 1 {
		t.Fatalf("cache hits = %g, want 1", got)
	}
	if got := reg.Counter("spire_estimate_cache_misses_total", "").Value(); got != 1 {
		t.Fatalf("cache misses = %g, want 1", got)
	}
	if got := reg.Counter("spire_engine_samples_total", "").Value(); got <= 0 {
		t.Fatalf("samples counter = %g, want > 0", got)
	}
}

func TestDefaultIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return one shared engine")
	}
}
