package engine

// Differential suite for the columnar estimation core and the SPB1
// binary wire format. The frozen referenceEstimate in
// differential_test.go stays the oracle; this file widens the set of
// implementations pinned against it — the columnar batch path with and
// without result reuse, the engine's indexed entry point, incremental
// windowed snapshots, and a binary-wire round trip of the result — over
// >= 2000 fresh randomized model/workload pairs. Byte-identical JSON is
// the bar everywhere; run under -race in the verify gate.

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"spire/internal/core"
	"spire/internal/wire"
)

// checkColumnarIdentical pins every columnar consumer of one
// model/workload pair against the frozen serial reference.
func checkColumnarIdentical(t *testing.T, e *Engine, ens *core.Ensemble, d core.Dataset, reused *core.Estimation, tag string) {
	t.Helper()
	want, werr := referenceEstimate(ens, d)
	ix := core.IndexWorkload(d)

	// Batch path across worker counts (1 is the inline serial loop, >1
	// the fan-out runner).
	for workers := 1; workers <= 4; workers++ {
		got, gerr := ens.BatchEstimate(context.Background(), ix, core.EstimateOptions{Workers: workers})
		if (werr != nil) != (gerr != nil) {
			t.Fatalf("%s workers=%d: reference err=%v, batch err=%v", tag, workers, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if gotJSON, wantJSON := estJSON(t, got), estJSON(t, want); gotJSON != wantJSON {
			t.Fatalf("%s workers=%d: BatchEstimate diverges\ngot:  %s\nwant: %s", tag, workers, gotJSON, wantJSON)
		}
	}

	// The zero-allocation reuse path: the SAME Estimation value is handed
	// back in across every pair of the run, so stale per-metric rows,
	// coverage lists and mins from the previous workload must all be
	// overwritten.
	rerr := ens.BatchEstimateInto(context.Background(), ix, core.EstimateOptions{Workers: 1}, reused)
	if (werr != nil) != (rerr != nil) {
		t.Fatalf("%s: reference err=%v, reuse err=%v", tag, werr, rerr)
	}
	if werr == nil {
		if gotJSON, wantJSON := estJSON(t, reused), estJSON(t, want); gotJSON != wantJSON {
			t.Fatalf("%s: BatchEstimateInto (reused) diverges\ngot:  %s\nwant: %s", tag, gotJSON, wantJSON)
		}
	}

	// Engine indexed path — the serving tier's hot loop.
	eix, _ := e.Index(d.Samples)
	got, gerr := e.EstimateIndexed(context.Background(), ens, eix, core.EstimateOptions{})
	if (werr != nil) != (gerr != nil) {
		t.Fatalf("%s: reference err=%v, indexed err=%v", tag, werr, gerr)
	}
	if werr == nil {
		if gotJSON, wantJSON := estJSON(t, got), estJSON(t, want); gotJSON != wantJSON {
			t.Fatalf("%s: EstimateIndexed diverges\ngot:  %s\nwant: %s", tag, gotJSON, wantJSON)
		}
	}

	// Incremental path: build the same workload by appending in chunks,
	// snapshot, estimate. The snapshot merge path dedups measured periods
	// with the map fallback rather than contribution IDs — the
	// differential pins both dedup implementations to the same bytes.
	inc := core.NewIncrementalIndex()
	for off := 0; off < len(d.Samples); {
		n := 1 + off%3
		if off+n > len(d.Samples) {
			n = len(d.Samples) - off
		}
		inc.Add(d.Samples[off : off+n]...)
		off += n
	}
	sgot, serr := ens.BatchEstimate(context.Background(), inc.Snapshot(), core.EstimateOptions{Workers: 1})
	if (werr != nil) != (serr != nil) {
		t.Fatalf("%s: reference err=%v, snapshot err=%v", tag, werr, serr)
	}
	if werr == nil {
		if gotJSON, wantJSON := estJSON(t, sgot), estJSON(t, want); gotJSON != wantJSON {
			t.Fatalf("%s: incremental snapshot diverges\ngot:  %s\nwant: %s", tag, gotJSON, wantJSON)
		}
	}

	if werr != nil {
		return
	}

	// Binary wire round trip: an estimation that crosses SPB1 and comes
	// back must re-marshal to the identical JSON the server would have
	// sent — the client's -wire bin mode changes transport bytes only.
	frame := wire.AppendEstimateResponse(nil, &wire.EstimateResponse{Model: "m", Estimation: want})
	back, err := wire.DecodeEstimateResponse(frame)
	if err != nil {
		t.Fatalf("%s: wire round trip: %v", tag, err)
	}
	if gotJSON, wantJSON := estJSON(t, back.Estimation), estJSON(t, want); gotJSON != wantJSON {
		t.Fatalf("%s: wire round trip diverges\ngot:  %s\nwant: %s", tag, gotJSON, wantJSON)
	}
}

// checkWindowedIdentical slices the workload per window and pins the
// incremental eviction path: after evicting everything before window w,
// the snapshot estimate must match the reference over the surviving
// samples.
func checkWindowedIdentical(t *testing.T, ens *core.Ensemble, d core.Dataset, tag string) {
	t.Helper()
	// EvictBefore's binary search relies on nondecreasing window tags,
	// the order the streaming pipeline feeds by construction — replay the
	// workload in that order (stable, so same-window samples keep their
	// arrival order and the reference sees the same per-metric sequences).
	samples := append([]core.Sample(nil), d.Samples...)
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].Window < samples[j].Window })
	maxW := 0
	for _, s := range samples {
		if s.Window > maxW {
			maxW = s.Window
		}
	}
	inc := core.NewIncrementalIndex()
	inc.Add(samples...)
	for w := 0; w <= maxW+1; w++ {
		inc.EvictBefore(w)
		var wd core.Dataset
		for _, s := range samples {
			if s.Window >= w {
				wd.Add(s)
			}
		}
		want, werr := referenceEstimate(ens, wd)
		got, gerr := ens.BatchEstimate(context.Background(), inc.Snapshot(), core.EstimateOptions{Workers: 1})
		if (werr != nil) != (gerr != nil) {
			t.Fatalf("%s w=%d: reference err=%v, evicted snapshot err=%v", tag, w, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if gotJSON, wantJSON := estJSON(t, got), estJSON(t, want); gotJSON != wantJSON {
			t.Fatalf("%s w=%d: evicted snapshot diverges\ngot:  %s\nwant: %s", tag, w, gotJSON, wantJSON)
		}
	}
}

// TestDifferentialColumnarRandomized is the columnar-core differential:
// >= 2000 randomized model/workload pairs, every columnar entry point
// byte-identical to the frozen scalar reference.
func TestDifferentialColumnarRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(13371337))
	e := New(Options{})
	var reused core.Estimation
	pairs := 0
	for pairs < 2000 {
		ens := randEstimationModel(t, rng)
		if ens == nil {
			continue
		}
		d := randEstimationWorkload(rng)
		checkColumnarIdentical(t, e, ens, d, &reused, "columnar")
		if pairs%50 == 0 {
			checkWindowedIdentical(t, ens, d, "windowed")
		}
		pairs++
	}
}

// TestDifferentialColumnarRequestRoundTrip pins the other direction of
// the wire: a workload that crosses SPB1 as an estimate request must
// produce the byte-identical estimation after decode.
func TestDifferentialColumnarRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	pairs := 0
	for pairs < 200 {
		ens := randEstimationModel(t, rng)
		if ens == nil {
			continue
		}
		d := randEstimationWorkload(rng)
		want, werr := referenceEstimate(ens, d)

		frame := wire.AppendEstimateRequest(nil, &wire.EstimateRequest{Samples: d.Samples})
		req, err := wire.DecodeEstimateRequest(frame)
		if err != nil {
			t.Fatalf("request round trip: %v", err)
		}
		var rd core.Dataset
		rd.Add(req.Samples...)
		got, gerr := referenceEstimate(ens, rd)
		if (werr != nil) != (gerr != nil) {
			t.Fatalf("round-tripped workload err=%v, want %v", gerr, werr)
		}
		if werr == nil {
			if gotJSON, wantJSON := estJSON(t, got), estJSON(t, want); gotJSON != wantJSON {
				t.Fatalf("round-tripped workload diverges\ngot:  %s\nwant: %s", gotJSON, wantJSON)
			}
		}
		pairs++
	}
}
