package engine

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"spire/internal/core"
)

// indexCache is a bounded LRU of pre-indexed workloads keyed by the
// content hash of their sample set. Estimations that resend the same
// workload (dashboards polling a service, diff loops, per-window timeline
// passes, retries) skip the group-and-derive indexing pass entirely; the
// cached *core.WorkloadIndex is immutable and shared by concurrent
// readers. The key is independent of any model, so cached indexes survive
// model hot-swaps.
type indexCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recent
	items map[string]*list.Element // key -> element whose Value is *cacheEntry
}

type cacheEntry struct {
	key string
	ix  *core.WorkloadIndex
}

// newIndexCache returns an LRU holding at most capacity indexes; a
// non-positive capacity disables caching (every lookup misses).
func newIndexCache(capacity int) *indexCache {
	return &indexCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// workloadKey content-hashes a sample set by its field values directly —
// no JSON round-trip — so two sample slices with identical values share a
// key no matter where they came from. Field and length framing make the
// encoding injective; NaNs hash by bit pattern.
func workloadKey(samples []core.Sample) string {
	h := sha256.New()
	var buf [8]byte
	for _, s := range samples {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s.Metric)))
		h.Write(buf[:])
		h.Write([]byte(s.Metric))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(s.T))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(s.W))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(s.M))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(s.Window)))
		h.Write(buf[:])
	}
	return string(h.Sum(nil))
}

// get returns the cached index for key, marking it most recently used.
func (c *indexCache) get(key string) (*core.WorkloadIndex, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).ix, true
}

// put inserts an index, evicting the least recently used entry past
// capacity.
func (c *indexCache) put(key string, ix *core.WorkloadIndex) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).ix = ix
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, ix: ix})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached indexes.
func (c *indexCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
