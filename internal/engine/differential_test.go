package engine

// Differential suite for the unified estimation engine: the pre-refactor
// serial implementation of the paper's Eq. 1 merge (the loop that lived
// in core's Ensemble.Estimate before internal/engine existed) is kept
// here, verbatim, as the reference. Both the public shim
// (core.Ensemble.Estimate) and Engine.Estimate must produce byte-identical
// JSON against it — across the golden model under internal/core/testdata
// and thousands of randomized model/workload pairs in the style of core's
// oracle-driven fitting suite. Any divergence is a regression in the
// unified path.

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"spire/internal/core"
	"spire/internal/stats"
)

// referenceEstimate is the pre-refactor serial Eq. 1 implementation,
// copied from core.Ensemble.Estimate as of the commit that introduced
// internal/engine, with one change: metrics iterate in sorted-name order
// instead of Go map order. The old code's only order dependence was the
// float accumulation of the measured-throughput sums, which made its
// last-ULP output depend on map iteration order run to run; the sorted
// order is the deterministic member of that family and is exactly the
// order the unified merge uses.
func referenceEstimate(e *core.Ensemble, workload core.Dataset) (*core.Estimation, error) {
	groups := workload.ByMetric()
	est := &core.Estimation{MaxThroughput: math.Inf(1)}
	est.Coverage = referenceCoverage(e, groups)

	metrics := make([]string, 0, len(groups))
	for metric := range groups {
		metrics = append(metrics, metric)
	}
	sort.Strings(metrics)

	type measureKey struct {
		t, w   float64
		window int
	}
	var totT, totW float64
	seenMeasured := make(map[measureKey]bool)
	for _, metric := range metrics {
		samples := groups[metric]
		r, ok := e.Rooflines[metric]
		if !ok {
			continue
		}
		var ws []stats.Weighted
		var intensityNum, intensityDen float64
		infIntensity := false
		for _, s := range samples {
			p := r.Eval(s.Intensity())
			if math.IsNaN(p) {
				continue
			}
			ws = append(ws, stats.Weighted{Value: p, Weight: s.T})
			if math.IsInf(s.Intensity(), 1) {
				infIntensity = true
			} else {
				intensityNum += s.T * s.Intensity()
				intensityDen += s.T
			}
			k := measureKey{t: s.T, w: s.W, window: s.Window}
			if !seenMeasured[k] {
				seenMeasured[k] = true
				totT += s.T
				totW += s.W
			}
		}
		if len(ws) == 0 {
			continue
		}
		mean, err := stats.WeightedMean(ws)
		if err != nil {
			continue
		}
		me := core.MetricEstimate{
			Metric:       metric,
			MeanEstimate: mean,
			Samples:      len(ws),
		}
		switch {
		case intensityDen > 0:
			me.MeanIntensity = intensityNum / intensityDen
		case infIntensity:
			me.MeanIntensity = math.Inf(1)
		default:
			me.MeanIntensity = math.NaN()
		}
		est.PerMetric = append(est.PerMetric, me)
		if mean < est.MaxThroughput {
			est.MaxThroughput = mean
		}
	}
	if len(est.PerMetric) == 0 {
		return nil, core.ErrNoSamples
	}
	sort.Slice(est.PerMetric, func(i, j int) bool {
		a, b := est.PerMetric[i], est.PerMetric[j]
		if a.MeanEstimate != b.MeanEstimate {
			return a.MeanEstimate < b.MeanEstimate
		}
		return a.Metric < b.Metric
	})
	if totT > 0 {
		est.MeasuredThroughput = totW / totT
	} else {
		est.MeasuredThroughput = math.NaN()
	}
	return est, nil
}

// referenceCoverage mirrors the old serial path's coverage computation.
func referenceCoverage(e *core.Ensemble, groups map[string][]core.Sample) core.CoverageReport {
	cov := core.CoverageReport{
		ModelMetrics: len(e.Rooflines),
		DataMetrics:  len(groups),
	}
	for metric := range groups {
		if _, ok := e.Rooflines[metric]; ok {
			cov.Shared++
		} else {
			cov.DataOnly = append(cov.DataOnly, metric)
		}
	}
	for metric := range e.Rooflines {
		if _, ok := groups[metric]; !ok {
			cov.ModelOnly = append(cov.ModelOnly, metric)
		}
	}
	sort.Strings(cov.DataOnly)
	sort.Strings(cov.ModelOnly)
	return cov
}

// estJSON marshals an estimation through core's total JSON encoding, the
// same bytes `spire analyze -json` and /v1/estimate emit.
func estJSON(t *testing.T, est *core.Estimation) string {
	t.Helper()
	raw, err := json.Marshal(est)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// checkByteIdentical pins the shim and the engine against the reference
// on one model/workload pair.
func checkByteIdentical(t *testing.T, e *Engine, ens *core.Ensemble, d core.Dataset, tag string) {
	t.Helper()
	want, werr := referenceEstimate(ens, d)
	shim, serr := ens.Estimate(d)
	if (werr != nil) != (serr != nil) {
		t.Fatalf("%s: reference err=%v, shim err=%v", tag, werr, serr)
	}
	for workers := 1; workers <= 4; workers++ {
		got, gerr := e.Estimate(context.Background(), ens, d, core.EstimateOptions{Workers: workers})
		if (werr != nil) != (gerr != nil) {
			t.Fatalf("%s: reference err=%v, engine err=%v", tag, werr, gerr)
		}
		if werr != nil {
			continue
		}
		wantJSON := estJSON(t, want)
		if gotJSON := estJSON(t, got); gotJSON != wantJSON {
			t.Fatalf("%s workers=%d: engine diverges from pre-refactor serial output\ngot:  %s\nwant: %s",
				tag, workers, gotJSON, wantJSON)
		}
	}
	if werr != nil {
		return
	}
	wantJSON := estJSON(t, want)
	if shimJSON := estJSON(t, shim); shimJSON != wantJSON {
		t.Fatalf("%s: Ensemble.Estimate shim diverges from pre-refactor serial output\ngot:  %s\nwant: %s",
			tag, shimJSON, wantJSON)
	}
}

// TestDifferentialGoldenModel pins the refactor against the checked-in
// golden model and dataset under internal/core/testdata.
func TestDifferentialGoldenModel(t *testing.T) {
	mf, err := os.Open(filepath.Join("..", "core", "testdata", "golden_model.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	ens, err := core.LoadEnsemble(mf)
	if err != nil {
		t.Fatal(err)
	}
	df, err := os.Open(filepath.Join("..", "core", "testdata", "golden_dataset.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	d, err := core.ReadDataset(df)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{})
	checkByteIdentical(t, e, ens, d, "golden")

	// Per-window slices too — the timeline pattern.
	byWindow := make(map[int][]core.Sample)
	for _, s := range d.Samples {
		byWindow[s.Window] = append(byWindow[s.Window], s)
	}
	for w, samples := range byWindow {
		var wd core.Dataset
		wd.Add(samples...)
		checkByteIdentical(t, e, ens, wd, "golden-window")
		_ = w
	}
}

// randEstimationModel trains an ensemble on a randomized multi-metric
// dataset (grid mode provokes duplicates, ties and +Inf intensities, the
// same adversarial families core's oracle-driven fitting suite uses).
func randEstimationModel(t *testing.T, rng *rand.Rand) *core.Ensemble {
	t.Helper()
	nMetrics := 1 + rng.Intn(5)
	var d core.Dataset
	for m := 0; m < nMetrics; m++ {
		metric := string(rune('a' + m))
		n := 3 + rng.Intn(40)
		grid := rng.Intn(2) == 0
		for i := 0; i < n; i++ {
			var s core.Sample
			if grid {
				s = core.Sample{
					Metric: metric,
					T:      float64(1 + rng.Intn(4)),
					W:      float64(rng.Intn(24)),
					M:      float64(rng.Intn(8)),
				}
			} else {
				s = core.Sample{
					Metric: metric,
					T:      1 + rng.Float64()*4,
					W:      rng.Float64() * 24,
					M:      rng.Float64() * 8,
				}
			}
			d.Add(s)
		}
	}
	ens, err := core.Train(d, core.TrainOptions{})
	if err != nil {
		return nil
	}
	return ens
}

// randEstimationWorkload draws a workload over a superset of the model's
// metric alphabet (some metrics unmodeled), with window tags, shared
// (T, W) periods across metrics, invalid samples, and zero-M rows.
func randEstimationWorkload(rng *rand.Rand) core.Dataset {
	var d core.Dataset
	nPeriods := 1 + rng.Intn(12)
	alphabet := []string{"a", "b", "c", "d", "e", "f", "zz"}
	for p := 0; p < nPeriods; p++ {
		T := float64(1 + rng.Intn(5))
		W := float64(rng.Intn(30))
		window := 0
		if rng.Intn(2) == 0 {
			window = 1 + p/2
		}
		for _, metric := range alphabet {
			if rng.Intn(3) == 0 {
				continue
			}
			s := core.Sample{Metric: metric, T: T, W: W, M: float64(rng.Intn(9)), Window: window}
			switch rng.Intn(12) {
			case 0:
				s.T = -s.T // invalid
			case 1:
				s.M = 0 // +Inf or NaN intensity
			case 2:
				s.W = math.NaN() // invalid
			}
			d.Add(s)
		}
	}
	return d
}

// TestDifferentialRandomized runs the randomized estimation differential:
// >= 1000 model/workload pairs, byte-identical JSON among the reference
// serial path, the Estimate shim, and the engine. Run under -race in the
// verify gate.
func TestDifferentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	e := New(Options{})
	pairs := 0
	for pairs < 1000 {
		ens := randEstimationModel(t, rng)
		if ens == nil {
			continue
		}
		d := randEstimationWorkload(rng)
		checkByteIdentical(t, e, ens, d, "randomized")
		pairs++
	}
}
