package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// pool is a bounded set of worker goroutines shared by every estimation
// an Engine runs. It is sized once (at Engine construction, typically
// once per process) instead of spawning a fresh goroutine set per
// estimate call, so a serving tier handling thousands of concurrent
// estimations keeps a fixed goroutine population.
//
// Scheduling is work-conserving and deadlock-free by construction: the
// calling goroutine always runs one slot inline, and the extra slots are
// offered to the pool with a non-blocking send. When the pool is
// saturated by other calls, the offer is withdrawn and the inline slot
// simply processes those task indices too — correctness never depends on
// a pool goroutine being free.
type pool struct {
	size  int
	tasks chan func()
}

// newPool starts size resident workers (0 or negative selects
// GOMAXPROCS).
func newPool(size int) *pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &pool{size: size, tasks: make(chan func())}
	for i := 0; i < size; i++ {
		go func() {
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// run executes task(i) exactly once for every i in [0, n), using at most
// workers concurrent slots (clamped to the pool size; <= 0 selects the
// pool size). It returns once every started task has finished. Canceling
// ctx stops unstarted tasks; run still waits for in-flight ones, so no
// task touches caller state after run returns. Task results are
// deterministic regardless of which slot runs which index.
func (p *pool) run(ctx context.Context, workers, n int, task func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 || workers > p.size {
		workers = p.size
	}
	if workers > n {
		workers = n
	}
	var cursor atomic.Int64
	loop := func() {
		for {
			if ctx.Err() != nil {
				return
			}
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			task(i)
		}
	}
	var wg sync.WaitGroup
	for s := 1; s < workers; s++ {
		wg.Add(1)
		f := func() {
			defer wg.Done()
			loop()
		}
		select {
		case p.tasks <- f:
		default:
			// Pool saturated: skip the extra slot; the inline loop
			// below covers its share.
			wg.Done()
		}
	}
	loop()
	wg.Wait()
}
