package roofline

import (
	"math"
	"testing"
)

func model(t *testing.T) *Model {
	t.Helper()
	m, err := New(4, 16,
		Ceiling{Name: "DRAM", Kind: Bandwidth, Value: 8},
		Ceiling{Name: "scalar", Kind: Compute, Value: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Error("zero throughput should fail")
	}
	if _, err := New(4, -1); err == nil {
		t.Error("negative bandwidth should fail")
	}
	if _, err := New(4, 8, Ceiling{Name: "bad", Value: 0}); err == nil {
		t.Error("zero ceiling should fail")
	}
	if _, err := New(math.NaN(), 8); err == nil {
		t.Error("NaN throughput should fail")
	}
}

func TestAttainable(t *testing.T) {
	m := model(t)
	cases := []struct{ i, want float64 }{
		{0, 0},
		{0.1, 1.6},
		{0.25, 4}, // exactly the ridge point
		{1, 4},    // compute roof
		{100, 4},
	}
	for _, c := range cases {
		if got := m.Attainable(c.i); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Attainable(%g) = %g, want %g", c.i, got, c.want)
		}
	}
	if got := m.Attainable(math.Inf(1)); got != 4 {
		t.Errorf("Attainable(+Inf) = %g, want 4", got)
	}
	if got := m.Attainable(-1); got != 0 {
		t.Errorf("Attainable(-1) = %g, want 0 (clamped)", got)
	}
	if got := m.Attainable(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Attainable(NaN) = %g, want NaN", got)
	}
}

func TestRidgeAndClassify(t *testing.T) {
	m := model(t)
	if got := m.RidgePoint(); got != 0.25 {
		t.Errorf("ridge = %g, want 0.25", got)
	}
	if m.Classify(0.1) != MemoryBound {
		t.Error("low intensity should be memory-bound")
	}
	if m.Classify(1) != ComputeBound {
		t.Error("high intensity should be compute-bound")
	}
	if MemoryBound.String() != "memory-bound" || ComputeBound.String() != "compute-bound" {
		t.Error("bound names wrong")
	}
}

func TestAttainableUnder(t *testing.T) {
	m := model(t)
	got, err := m.AttainableUnder("DRAM", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("DRAM ceiling at 0.25 = %g, want 2", got)
	}
	got, err = m.AttainableUnder("scalar", 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("scalar ceiling = %g, want 1", got)
	}
	if _, err := m.AttainableUnder("nope", 1); err == nil {
		t.Error("unknown ceiling should fail")
	}
}

func TestSeries(t *testing.T) {
	m := model(t)
	pts, err := m.Series(0.01, 100, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 32 {
		t.Fatalf("series length %d", len(pts))
	}
	if math.Abs(pts[0].I-0.01) > 1e-9 || math.Abs(pts[31].I-100) > 1e-6 {
		t.Errorf("endpoints: %g .. %g", pts[0].I, pts[31].I)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].I <= pts[i-1].I {
			t.Fatal("series not increasing in I")
		}
		if pts[i].P < pts[i-1].P-1e-9 {
			t.Fatal("roofline curve must be non-decreasing")
		}
	}
	if _, err := m.Series(0, 1, 8); err == nil {
		t.Error("lo=0 should fail (log spacing)")
	}
	if _, err := m.Series(1, 1, 8); err == nil {
		t.Error("hi<=lo should fail")
	}
	if _, err := m.Series(1, 2, 1); err == nil {
		t.Error("n<2 should fail")
	}
}

func TestEfficiencyAndSort(t *testing.T) {
	m := model(t)
	a := App{Name: "a", Intensity: 1, Throughput: 2}
	if got := m.Efficiency(a); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("efficiency = %g, want 0.5", got)
	}
	apps := []App{{Name: "x", Intensity: 3}, {Name: "y", Intensity: 1}}
	SortApps(apps)
	if apps[0].Name != "y" {
		t.Error("SortApps should order by intensity")
	}
}
