// Package roofline implements the classic single-processor roofline model
// (Williams et al.) that SPIRE generalizes: attainable throughput
// P(I) = min(π, β·I) with optional extra ceilings (paper Fig. 2). In this
// repository the instruction-roofline variant is used: throughput in
// instructions per cycle and operational intensity in instructions per
// byte of DRAM traffic.
package roofline

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CeilingKind distinguishes horizontal compute ceilings from diagonal
// bandwidth ceilings.
type CeilingKind uint8

const (
	// Compute ceilings bound throughput directly (e.g. "scalar only").
	Compute CeilingKind = iota
	// Bandwidth ceilings bound throughput as Value * I (e.g. "DRAM").
	Bandwidth
)

// Ceiling is an additional bound below the model's peak.
type Ceiling struct {
	Name  string
	Kind  CeilingKind
	Value float64
}

// Model is a classic roofline: peak throughput π, peak bandwidth β, and
// optional lower ceilings.
type Model struct {
	// PeakThroughput is π in work/time units (IPC here).
	PeakThroughput float64
	// PeakBandwidth is β in bytes/time units (bytes per cycle here).
	PeakBandwidth float64
	// Ceilings are extra bounds plotted below the peak.
	Ceilings []Ceiling
}

// New validates and builds a model.
func New(peakThroughput, peakBandwidth float64, ceilings ...Ceiling) (*Model, error) {
	if peakThroughput <= 0 || math.IsNaN(peakThroughput) || math.IsInf(peakThroughput, 0) {
		return nil, errors.New("roofline: peak throughput must be positive and finite")
	}
	if peakBandwidth <= 0 || math.IsNaN(peakBandwidth) || math.IsInf(peakBandwidth, 0) {
		return nil, errors.New("roofline: peak bandwidth must be positive and finite")
	}
	for _, c := range ceilings {
		if c.Value <= 0 || math.IsNaN(c.Value) {
			return nil, fmt.Errorf("roofline: ceiling %q must be positive", c.Name)
		}
	}
	return &Model{PeakThroughput: peakThroughput, PeakBandwidth: peakBandwidth, Ceilings: ceilings}, nil
}

// Attainable returns min(π, β·I) for operational intensity I.
func (m *Model) Attainable(i float64) float64 {
	if math.IsNaN(i) {
		return math.NaN()
	}
	if i < 0 {
		i = 0
	}
	bw := m.PeakBandwidth * i
	if math.IsInf(i, 1) {
		bw = math.Inf(1)
	}
	return math.Min(m.PeakThroughput, bw)
}

// AttainableUnder applies one named ceiling in place of the corresponding
// peak. Unknown names return an error.
func (m *Model) AttainableUnder(name string, i float64) (float64, error) {
	for _, c := range m.Ceilings {
		if c.Name != name {
			continue
		}
		switch c.Kind {
		case Compute:
			return math.Min(c.Value, m.PeakBandwidth*i), nil
		case Bandwidth:
			return math.Min(m.PeakThroughput, c.Value*i), nil
		}
	}
	return 0, fmt.Errorf("roofline: unknown ceiling %q", name)
}

// RidgePoint returns the operational intensity where the memory and
// compute roofs meet (π/β): below it workloads are memory-bound.
func (m *Model) RidgePoint() float64 {
	return m.PeakThroughput / m.PeakBandwidth
}

// Bound classifies a workload with operational intensity i as
// memory-bound or compute-bound.
type Bound uint8

// Bound kinds.
const (
	MemoryBound Bound = iota
	ComputeBound
)

// String names the bound.
func (b Bound) String() string {
	if b == MemoryBound {
		return "memory-bound"
	}
	return "compute-bound"
}

// Classify returns the workload's bound per the basic model.
func (m *Model) Classify(i float64) Bound {
	if i < m.RidgePoint() {
		return MemoryBound
	}
	return ComputeBound
}

// SeriesPoint is one (I, P) pair of a plottable roofline curve.
type SeriesPoint struct {
	I float64
	P float64
}

// Series samples the model's attainable curve at n log-spaced intensities
// in [lo, hi] for plotting (paper Fig. 2's roof).
func (m *Model) Series(lo, hi float64, n int) ([]SeriesPoint, error) {
	if lo <= 0 || hi <= lo || n < 2 {
		return nil, errors.New("roofline: need 0 < lo < hi and n >= 2")
	}
	out := make([]SeriesPoint, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for k := 0; k < n; k++ {
		out[k] = SeriesPoint{I: x, P: m.Attainable(x)}
		x *= ratio
	}
	return out, nil
}

// App is a measured application point on the roofline plot.
type App struct {
	Name string
	// Intensity is measured work per byte of memory traffic.
	Intensity float64
	// Throughput is the measured performance.
	Throughput float64
}

// Efficiency returns the app's achieved fraction of its attainable bound.
func (m *Model) Efficiency(a App) float64 {
	att := m.Attainable(a.Intensity)
	if att <= 0 {
		return 0
	}
	return a.Throughput / att
}

// SortApps orders apps by ascending operational intensity, the
// conventional plot order.
func SortApps(apps []App) {
	sort.Slice(apps, func(i, j int) bool { return apps[i].Intensity < apps[j].Intensity })
}
