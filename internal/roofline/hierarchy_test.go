package roofline

import (
	"math"
	"testing"
)

func testHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(4,
		LevelCeiling{Level: "L1", BytesPerCycle: 64},
		LevelCeiling{Level: "L2", BytesPerCycle: 16},
		LevelCeiling{Level: "L3", BytesPerCycle: 8},
		LevelCeiling{Level: "DRAM", BytesPerCycle: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHierarchyValidation(t *testing.T) {
	l1 := LevelCeiling{Level: "L1", BytesPerCycle: 64}
	cases := []struct {
		name   string
		peak   float64
		levels []LevelCeiling
	}{
		{"zero peak", 0, []LevelCeiling{l1}},
		{"negative peak", -1, []LevelCeiling{l1}},
		{"NaN peak", math.NaN(), []LevelCeiling{l1}},
		{"infinite peak", math.Inf(1), []LevelCeiling{l1}},
		{"no levels", 4, nil},
		{"unnamed level", 4, []LevelCeiling{{BytesPerCycle: 1}}},
		{"duplicate level", 4, []LevelCeiling{l1, l1}},
		{"zero bandwidth", 4, []LevelCeiling{{Level: "L1"}}},
		{"NaN bandwidth", 4, []LevelCeiling{{Level: "L1", BytesPerCycle: math.NaN()}}},
		{"infinite bandwidth", 4, []LevelCeiling{{Level: "L1", BytesPerCycle: math.Inf(1)}}},
	}
	for _, c := range cases {
		if _, err := NewHierarchy(c.peak, c.levels...); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	if _, err := NewHierarchy(4, l1); err != nil {
		t.Errorf("valid hierarchy rejected: %v", err)
	}
}

func TestHierarchyAttainable(t *testing.T) {
	h := testHierarchy(t)
	cases := []struct {
		level string
		i     float64
		want  float64
	}{
		{"DRAM", 1, 2},           // bandwidth-bound: 2 B/cy * 1
		{"DRAM", 100, 4},         // past the ridge: compute roof
		{"L1", 0.01, 0.64},       // L1 diagonal
		{"L2", 0, 0},             // no work per byte: zero
		{"L2", -3, 0},            // negative clamps to zero
		{"L3", math.Inf(1), 4},   // infinite intensity: compute roof
		{"DRAM", 2, 4},           // exactly at the ridge
	}
	for _, c := range cases {
		got, err := h.Attainable(c.level, c.i)
		if err != nil {
			t.Fatalf("%s@%g: %v", c.level, c.i, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s@%g = %g, want %g", c.level, c.i, got, c.want)
		}
	}
	if got, _ := h.Attainable("L1", math.NaN()); !math.IsNaN(got) {
		t.Errorf("NaN intensity: got %g, want NaN", got)
	}
	if _, err := h.Attainable("HBM", 1); err == nil {
		t.Error("unknown level: want error")
	}
}

func TestHierarchyLevelAndRidge(t *testing.T) {
	h := testHierarchy(t)
	l, err := h.Level("L3")
	if err != nil || l.BytesPerCycle != 8 {
		t.Fatalf("Level(L3) = %+v, %v", l, err)
	}
	if _, err := h.Level("HBM"); err == nil {
		t.Error("unknown level: want error")
	}
	r, err := h.RidgePoint("DRAM")
	if err != nil || r != 2 {
		t.Fatalf("RidgePoint(DRAM) = %g, %v; want 2", r, err)
	}
	if _, err := h.RidgePoint("HBM"); err == nil {
		t.Error("unknown ridge level: want error")
	}
}

func TestHierarchyBinding(t *testing.T) {
	h := testHierarchy(t)

	// DRAM traffic dominant: low intensity there, high elsewhere.
	level, att, err := h.Binding([]float64{100, 100, 100, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if level != "DRAM" || att != 1 {
		t.Errorf("got %s/%g, want DRAM/1", level, att)
	}

	// All intensities past every ridge: tie resolves to the fastest.
	level, att, err = h.Binding([]float64{100, 100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if level != "L1" || att != 4 {
		t.Errorf("compute-bound tie: got %s/%g, want L1/4", level, att)
	}

	// NaN levels are skipped.
	nan := math.NaN()
	level, _, err = h.Binding([]float64{nan, nan, 0.5, nan})
	if err != nil || level != "L3" {
		t.Errorf("NaN skip: got %s, %v; want L3", level, err)
	}

	// All NaN: no verdict.
	if _, _, err := h.Binding([]float64{nan, nan, nan, nan}); err == nil {
		t.Error("all-NaN intensities: want error")
	}
	// Length mismatch.
	if _, _, err := h.Binding([]float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestHierarchyLevelSeries(t *testing.T) {
	h := testHierarchy(t)
	pts, err := h.LevelSeries("L2", 0.01, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 16 {
		t.Fatalf("got %d points", len(pts))
	}
	for k, p := range pts {
		want := math.Min(4, 16*p.I)
		if math.Abs(p.P-want) > 1e-9 {
			t.Errorf("point %d: P(%g) = %g, want %g", k, p.I, p.P, want)
		}
		if k > 0 && p.I <= pts[k-1].I {
			t.Errorf("intensities not increasing at %d", k)
		}
	}
	if _, err := h.LevelSeries("HBM", 0.01, 10, 16); err == nil {
		t.Error("unknown level: want error")
	}
	if _, err := h.LevelSeries("L1", 0, 10, 16); err == nil {
		t.Error("lo=0: want error")
	}
	if _, err := h.LevelSeries("L1", 1, 1, 16); err == nil {
		t.Error("hi=lo: want error")
	}
	if _, err := h.LevelSeries("L1", 0.01, 10, 1); err == nil {
		t.Error("n=1: want error")
	}
}

func TestNewSurfaceValidation(t *testing.T) {
	cases := []struct {
		name   string
		sname  string
		points []SurfacePoint
	}{
		{"no name", "", []SurfacePoint{{0, 4}}},
		{"no points", "sparsity", nil},
		{"NaN param", "s", []SurfacePoint{{math.NaN(), 4}}},
		{"infinite param", "s", []SurfacePoint{{math.Inf(1), 4}}},
		{"NaN ceiling", "s", []SurfacePoint{{0, math.NaN()}}},
		{"negative ceiling", "s", []SurfacePoint{{0, -1}}},
		{"descending params", "s", []SurfacePoint{{1, 4}, {0, 2}}},
	}
	for _, c := range cases {
		if _, err := NewSurface(c.sname, c.points...); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	// Duplicate abscissae are allowed (step discontinuity).
	if _, err := NewSurface("s", SurfacePoint{0, 4}, SurfacePoint{0, 2}); err != nil {
		t.Errorf("duplicate params rejected: %v", err)
	}
}

func TestSurfaceEval(t *testing.T) {
	s, err := NewSurface("sparsity",
		SurfacePoint{Param: 0.1, Ceiling: 4},
		SurfacePoint{Param: 0.5, Ceiling: 2},
		SurfacePoint{Param: 0.9, Ceiling: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ p, want float64 }{
		{0, 4},    // below range clamps to the first ceiling
		{0.1, 4},  // at the first breakpoint
		{0.3, 3},  // interpolated
		{0.5, 2},  // at a breakpoint
		{0.7, 1.5},
		{0.9, 1},  // at the last breakpoint
		{5, 1},    // above range clamps to the last ceiling
	}
	for _, c := range cases {
		if got := s.Eval(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsNaN(s.Eval(math.NaN())) {
		t.Error("NaN parameter should propagate")
	}
	if got := (&Surface{Name: "empty"}).Eval(1); !math.IsNaN(got) {
		t.Errorf("empty surface: got %g, want NaN", got)
	}
	// A zero-width segment steps to the later ceiling.
	step, err := NewSurface("step", SurfacePoint{0, 4}, SurfacePoint{0.5, 4}, SurfacePoint{0.5, 1}, SurfacePoint{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly at the discontinuity the left segment wins; past it the
	// right one does.
	if got := step.Eval(0.5); got != 4 {
		t.Errorf("step at duplicate abscissa: got %g, want 4", got)
	}
	if got := step.Eval(0.6); got != 1 {
		t.Errorf("step past duplicate abscissa: got %g, want 1", got)
	}
}
