package roofline

// The hierarchical extension of the classic model ("Hierarchical Roofline
// Analysis", Yang): instead of a single memory roof, one diagonal
// bandwidth ceiling per memory-hierarchy level (L1/L2/L3/DRAM), each with
// its own operational intensity measured against that level's traffic.
// A workload sits on every level's roofline at once; the binding level is
// the one whose ceiling admits the least throughput. The file also adds
// parameterized roofline surfaces ("The Sparsity Roofline", Shinn et
// al.): a ceiling that is a piecewise-linear function of a workload
// parameter such as density or vector-width mix, instead of a constant.

import (
	"errors"
	"fmt"
	"math"
)

// LevelCeiling is one stacked bandwidth ceiling of a hierarchical
// roofline: the deliverable bandwidth of one memory level.
type LevelCeiling struct {
	// Level names the memory level ("L1", "L2", "L3", "DRAM").
	Level string
	// BytesPerCycle is the level's deliverable bandwidth β_ℓ.
	BytesPerCycle float64
}

// Hierarchy is a hierarchical roofline: a shared peak compute throughput
// π and a stack of per-level bandwidth ceilings. Levels are ordered from
// the closest (fastest) to the farthest (slowest) memory.
type Hierarchy struct {
	// PeakThroughput is π in work/time units (IPC here).
	PeakThroughput float64
	// Levels are the stacked bandwidth ceilings, fastest first.
	Levels []LevelCeiling
}

// NewHierarchy validates and builds a hierarchical roofline.
func NewHierarchy(peakThroughput float64, levels ...LevelCeiling) (*Hierarchy, error) {
	if peakThroughput <= 0 || math.IsNaN(peakThroughput) || math.IsInf(peakThroughput, 0) {
		return nil, errors.New("roofline: peak throughput must be positive and finite")
	}
	if len(levels) == 0 {
		return nil, errors.New("roofline: hierarchy needs at least one level")
	}
	seen := make(map[string]bool, len(levels))
	for _, l := range levels {
		if l.Level == "" {
			return nil, errors.New("roofline: hierarchy level without a name")
		}
		if seen[l.Level] {
			return nil, fmt.Errorf("roofline: duplicate hierarchy level %q", l.Level)
		}
		seen[l.Level] = true
		if l.BytesPerCycle <= 0 || math.IsNaN(l.BytesPerCycle) || math.IsInf(l.BytesPerCycle, 0) {
			return nil, fmt.Errorf("roofline: level %q bandwidth must be positive and finite", l.Level)
		}
	}
	return &Hierarchy{PeakThroughput: peakThroughput, Levels: levels}, nil
}

// Level returns the ceiling for the named level, or an error.
func (h *Hierarchy) Level(name string) (LevelCeiling, error) {
	for _, l := range h.Levels {
		if l.Level == name {
			return l, nil
		}
	}
	return LevelCeiling{}, fmt.Errorf("roofline: unknown hierarchy level %q", name)
}

// Attainable returns min(π, β_ℓ·i) for the named level, where i is the
// workload's operational intensity against that level's traffic (work per
// byte moved from that level).
func (h *Hierarchy) Attainable(level string, i float64) (float64, error) {
	l, err := h.Level(level)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(i) {
		return math.NaN(), nil
	}
	if i < 0 {
		i = 0
	}
	bw := l.BytesPerCycle * i
	if math.IsInf(i, 1) {
		bw = math.Inf(1)
	}
	return math.Min(h.PeakThroughput, bw), nil
}

// RidgePoint returns π/β_ℓ for the named level: below it the workload is
// bound by that level's bandwidth.
func (h *Hierarchy) RidgePoint(level string) (float64, error) {
	l, err := h.Level(level)
	if err != nil {
		return 0, err
	}
	return h.PeakThroughput / l.BytesPerCycle, nil
}

// Binding returns the binding level for a workload described by its
// per-level operational intensities (parallel to h.Levels; work per byte
// of each level's traffic) and the attainable throughput there — the
// minimum across the stacked ceilings. NaN intensities are skipped; ties
// resolve to the fastest (earliest) level, so an entirely compute-bound
// workload reports the closest memory as vacuously binding.
func (h *Hierarchy) Binding(intens []float64) (string, float64, error) {
	if len(intens) != len(h.Levels) {
		return "", 0, fmt.Errorf("roofline: %d intensities for %d levels", len(intens), len(h.Levels))
	}
	best := ""
	bestAtt := math.Inf(1)
	for k, l := range h.Levels {
		att, err := h.Attainable(l.Level, intens[k])
		if err != nil {
			return "", 0, err
		}
		if math.IsNaN(att) {
			continue
		}
		if att < bestAtt {
			best, bestAtt = l.Level, att
		}
	}
	if best == "" {
		return "", 0, errors.New("roofline: no usable level intensity")
	}
	return best, bestAtt, nil
}

// LevelSeries samples one level's attainable curve at n log-spaced
// intensities in [lo, hi] for plotting the stacked roofs.
func (h *Hierarchy) LevelSeries(level string, lo, hi float64, n int) ([]SeriesPoint, error) {
	if _, err := h.Level(level); err != nil {
		return nil, err
	}
	if lo <= 0 || hi <= lo || n < 2 {
		return nil, errors.New("roofline: need 0 < lo < hi and n >= 2")
	}
	out := make([]SeriesPoint, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for k := 0; k < n; k++ {
		att, _ := h.Attainable(level, x)
		out[k] = SeriesPoint{I: x, P: att}
		x *= ratio
	}
	return out, nil
}

// SurfacePoint is one breakpoint of a parameterized roofline surface:
// the achievable ceiling at one workload-parameter value.
type SurfacePoint struct {
	// Param is the workload-parameter value (e.g. density, mismatch rate).
	Param float64
	// Ceiling is the achievable throughput ceiling at that value.
	Ceiling float64
}

// Surface is a parameterized roofline: the ceiling as a piecewise-linear
// function of a scalar workload parameter, clamped to the end ceilings
// outside the swept range.
type Surface struct {
	// Name labels the parameter ("sparsity", "vec-width-mix").
	Name string
	// Points are the swept breakpoints in ascending Param order.
	Points []SurfacePoint
}

// NewSurface validates and builds a surface.
func NewSurface(name string, points ...SurfacePoint) (*Surface, error) {
	if name == "" {
		return nil, errors.New("roofline: surface without a name")
	}
	if len(points) == 0 {
		return nil, errors.New("roofline: surface needs at least one point")
	}
	for k, p := range points {
		if math.IsNaN(p.Param) || math.IsInf(p.Param, 0) {
			return nil, fmt.Errorf("roofline: surface %q point %d has non-finite parameter", name, k)
		}
		if math.IsNaN(p.Ceiling) || math.IsInf(p.Ceiling, 0) || p.Ceiling < 0 {
			return nil, fmt.Errorf("roofline: surface %q point %d ceiling must be finite and non-negative", name, k)
		}
		if k > 0 && p.Param < points[k-1].Param {
			return nil, fmt.Errorf("roofline: surface %q points not ascending at %d", name, k)
		}
	}
	return &Surface{Name: name, Points: points}, nil
}

// Eval returns the ceiling at parameter value p: linear interpolation
// between breakpoints, clamped to the first/last ceiling outside the
// swept range. NaN propagates.
func (s *Surface) Eval(p float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	pts := s.Points
	if len(pts) == 0 {
		return math.NaN()
	}
	if p <= pts[0].Param {
		return pts[0].Ceiling
	}
	last := pts[len(pts)-1]
	if p >= last.Param {
		return last.Ceiling
	}
	for k := 1; k < len(pts); k++ {
		if p > pts[k].Param {
			continue
		}
		x0, y0 := pts[k-1].Param, pts[k-1].Ceiling
		x1, y1 := pts[k].Param, pts[k].Ceiling
		if x1 == x0 {
			return y1
		}
		t := (p - x0) / (x1 - x0)
		return y0 + t*(y1-y0)
	}
	return last.Ceiling
}
