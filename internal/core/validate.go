package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Reason classifies why a sample was quarantined by Validate.
type Reason uint8

const (
	// ReasonNone marks a sample that passed validation.
	ReasonNone Reason = iota
	// ReasonMissingMetric: empty metric name.
	ReasonMissingMetric
	// ReasonNaN: NaN in T, W or M.
	ReasonNaN
	// ReasonInf: ±Inf in T, W or M.
	ReasonInf
	// ReasonNonPositiveTime: measurement period T <= 0.
	ReasonNonPositiveTime
	// ReasonNegativeWork: negative work count W.
	ReasonNegativeWork
	// ReasonNegativeMetric: negative metric count M.
	ReasonNegativeMetric
	// ReasonCounterWrap: a value at or beyond the physical counter range,
	// indicating an unrecovered counter wraparound upstream.
	ReasonCounterWrap
	// ReasonThroughputOutlier: the sample's throughput W/T is implausibly
	// far from the dataset's robust central throughput (clock skew,
	// truncated periods, scaling glitches on the fixed counters).
	ReasonThroughputOutlier

	numReasons
)

// String names the reason for reports.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "ok"
	case ReasonMissingMetric:
		return "missing-metric"
	case ReasonNaN:
		return "nan"
	case ReasonInf:
		return "inf"
	case ReasonNonPositiveTime:
		return "non-positive-time"
	case ReasonNegativeWork:
		return "negative-work"
	case ReasonNegativeMetric:
		return "negative-metric"
	case ReasonCounterWrap:
		return "counter-wrap"
	case ReasonThroughputOutlier:
		return "throughput-outlier"
	}
	return fmt.Sprintf("reason-%d", uint8(r))
}

// ValidateOptions tunes dataset validation.
type ValidateOptions struct {
	// MaxCounter is the largest value a genuine counter delta can take;
	// values at or beyond it are classified as unrecovered wraparounds.
	// Defaults to 2^48, the physical PMU counter range.
	MaxCounter float64
	// OutlierZ is the robust z-score (median/MAD based) beyond which a
	// sample's throughput is quarantined as an outlier. Zero selects the
	// default of 12; negative disables outlier screening.
	OutlierZ float64
	// MaxDetail caps the number of quarantined samples retained verbatim
	// in the report (counts are always complete). Zero selects the
	// default of 64; negative retains none.
	MaxDetail int
}

func (o *ValidateOptions) setDefaults() {
	if o.MaxCounter == 0 {
		o.MaxCounter = float64(uint64(1) << 48)
	}
	if o.OutlierZ == 0 {
		o.OutlierZ = 12
	}
	if o.MaxDetail == 0 {
		o.MaxDetail = 64
	}
}

// QuarantinedSample records one rejected sample and why.
type QuarantinedSample struct {
	// Index is the sample's position in the validated dataset.
	Index int `json:"index"`
	// Reason classifies the rejection.
	Reason Reason `json:"-"`
	// ReasonName is Reason's string form (stable across versions).
	ReasonName string `json:"reason"`
	// Sample is the offending sample verbatim.
	Sample Sample `json:"sample"`
}

// ValidationReport summarizes a Validate pass: how many samples survived,
// per-reason quarantine counts, and the cleaned dataset.
type ValidationReport struct {
	// Total, Kept and Quarantined count samples (Total = Kept +
	// Quarantined).
	Total       int `json:"total"`
	Kept        int `json:"kept"`
	Quarantined int `json:"quarantined"`
	// ByReason maps reason name to quarantine count; reasons with zero
	// count are omitted.
	ByReason map[string]int `json:"byReason,omitempty"`
	// Detail holds up to MaxDetail quarantined samples verbatim.
	Detail []QuarantinedSample `json:"detail,omitempty"`
	// Clean is the surviving dataset, in input order.
	Clean Dataset `json:"-"`
}

// Summary renders a one-line human-readable digest, e.g.
// "1200 samples: 1187 kept, 13 quarantined (nan:4 counter-wrap:9)".
func (rep ValidationReport) Summary() string {
	if rep.Quarantined == 0 {
		return fmt.Sprintf("%d samples: all kept", rep.Total)
	}
	reasons := make([]string, 0, len(rep.ByReason))
	for name := range rep.ByReason {
		reasons = append(reasons, name)
	}
	sort.Strings(reasons)
	parts := make([]string, 0, len(reasons))
	for _, name := range reasons {
		parts = append(parts, fmt.Sprintf("%s:%d", name, rep.ByReason[name]))
	}
	return fmt.Sprintf("%d samples: %d kept, %d quarantined (%s)",
		rep.Total, rep.Kept, rep.Quarantined, strings.Join(parts, " "))
}

// classify performs the structural (per-sample) checks; outlier screening
// needs the whole dataset and happens in Validate.
func classify(s Sample, maxCounter float64) Reason {
	switch {
	case s.Metric == "":
		return ReasonMissingMetric
	case math.IsNaN(s.T) || math.IsNaN(s.W) || math.IsNaN(s.M):
		return ReasonNaN
	case math.IsInf(s.T, 0) || math.IsInf(s.W, 0) || math.IsInf(s.M, 0):
		return ReasonInf
	case s.T <= 0:
		return ReasonNonPositiveTime
	case s.W < 0:
		return ReasonNegativeWork
	case s.M < 0:
		return ReasonNegativeMetric
	case s.T >= maxCounter || s.W >= maxCounter || s.M >= maxCounter:
		return ReasonCounterWrap
	}
	return ReasonNone
}

// Validate screens every sample in the dataset, quarantining those that
// cannot safely participate in training or estimation: structurally broken
// values (NaN/Inf, non-positive periods, negative counts), values outside
// the physical counter range (unrecovered wraparounds), and measurement
// periods whose throughput is implausibly far from the dataset's robust
// center (clock skew, truncation). The surviving samples are returned in
// rep.Clean; nothing ever panics, and an empty or fully corrupt dataset
// yields an empty Clean with complete counts.
func Validate(d Dataset, opts ValidateOptions) ValidationReport {
	opts.setDefaults()
	rep := ValidationReport{
		Total:    d.Len(),
		ByReason: make(map[string]int),
	}
	reasons := make([]Reason, d.Len())

	// Pass 1: structural per-sample checks.
	for i, s := range d.Samples {
		reasons[i] = classify(s, opts.MaxCounter)
	}

	// Pass 2: robust throughput-outlier screening over the structurally
	// sound samples. Periods are deduplicated (all metric samples from
	// one collection interval share T and W) so a long run of identical
	// periods doesn't drown the statistics.
	if opts.OutlierZ > 0 {
		var periods []float64
		seen := make(map[measureKey]bool)
		for i, s := range d.Samples {
			if reasons[i] != ReasonNone {
				continue
			}
			k := measureKey{t: s.T, w: s.W, window: s.Window}
			if !seen[k] {
				seen[k] = true
				periods = append(periods, s.Throughput())
			}
		}
		if med, scale, ok := robustCenter(periods); ok && scale > 0 {
			for i, s := range d.Samples {
				if reasons[i] != ReasonNone {
					continue
				}
				z := math.Abs(s.Throughput()-med) / scale
				if z > opts.OutlierZ {
					reasons[i] = ReasonThroughputOutlier
				}
			}
		}
	}

	for i, s := range d.Samples {
		if reasons[i] == ReasonNone {
			rep.Kept++
			rep.Clean.Add(s)
			continue
		}
		rep.Quarantined++
		rep.ByReason[reasons[i].String()]++
		if opts.MaxDetail > 0 && len(rep.Detail) < opts.MaxDetail {
			rep.Detail = append(rep.Detail, QuarantinedSample{
				Index:      i,
				Reason:     reasons[i],
				ReasonName: reasons[i].String(),
				Sample:     s,
			})
		}
	}
	return rep
}

// robustCenter returns the median and a MAD-derived scale estimate
// (normalized to be comparable to a standard deviation) of xs. ok is false
// when xs is empty. A zero MAD (more than half the values identical) falls
// back to a small relative scale so that genuinely wild values still stand
// out while exact repeats never get flagged.
func robustCenter(xs []float64) (med, scale float64, ok bool) {
	if len(xs) == 0 {
		return 0, 0, false
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	med = sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		med = (med + sorted[len(sorted)/2-1]) / 2
	}
	devs := make([]float64, len(sorted))
	for i, x := range sorted {
		devs[i] = math.Abs(x - med)
	}
	sort.Float64s(devs)
	mad := devs[len(devs)/2]
	if len(devs)%2 == 0 {
		mad = (mad + devs[len(devs)/2-1]) / 2
	}
	scale = 1.4826 * mad // consistent with σ under normality
	if scale == 0 {
		scale = 0.01 * math.Abs(med)
	}
	return med, scale, true
}

// TrainValidated validates the dataset, trains on the surviving samples
// only, and returns the fitted ensemble together with the validation
// report. Training on a dataset whose every sample is quarantined returns
// ErrNoSamples with a complete report, never a panic.
func TrainValidated(data Dataset, topts TrainOptions, vopts ValidateOptions) (*Ensemble, ValidationReport, error) {
	rep := Validate(data, vopts)
	ens, err := Train(rep.Clean, topts)
	return ens, rep, err
}
