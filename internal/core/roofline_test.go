package core

import (
	"math"
	"math/rand"
	"testing"

	"spire/internal/geom"
)

// mkSamples converts (I, P) pairs into samples with T = 1, W = P, M = W/I.
func mkSamples(metric string, pts []geom.Point) []Sample {
	out := make([]Sample, 0, len(pts))
	for _, p := range pts {
		s := Sample{Metric: metric, T: 1, W: p.Y}
		if math.IsInf(p.X, 1) {
			s.M = 0
		} else if p.X == 0 {
			// I = 0 requires W = 0 with M > 0.
			s.W = 0
			s.M = 1
		} else {
			s.M = p.Y / p.X
		}
		out = append(out, s)
	}
	return out
}

func TestSampleDerivedValues(t *testing.T) {
	s := Sample{Metric: "stalls", T: 4, W: 8, M: 2}
	if got := s.Throughput(); got != 2 {
		t.Errorf("Throughput = %g, want 2", got)
	}
	if got := s.Intensity(); got != 4 {
		t.Errorf("Intensity = %g, want 4", got)
	}
	zeroM := Sample{Metric: "stalls", T: 1, W: 5, M: 0}
	if got := zeroM.Intensity(); !math.IsInf(got, 1) {
		t.Errorf("Intensity with M=0 = %g, want +Inf", got)
	}
	zeroBoth := Sample{Metric: "stalls", T: 1, W: 0, M: 0}
	if got := zeroBoth.Intensity(); !math.IsNaN(got) {
		t.Errorf("Intensity with W=M=0 = %g, want NaN", got)
	}
	if (Sample{Metric: "x", T: 0, W: 1, M: 1}).Valid() {
		t.Error("T=0 sample should be invalid")
	}
	if (Sample{Metric: "", T: 1, W: 1, M: 1}).Valid() {
		t.Error("unnamed sample should be invalid")
	}
	if (Sample{Metric: "x", T: 1, W: -1, M: 1}).Valid() {
		t.Error("negative work should be invalid")
	}
	if (Sample{Metric: "x", T: 1, W: math.NaN(), M: 1}).Valid() {
		t.Error("NaN work should be invalid")
	}
}

func TestFitRooflineNoSamples(t *testing.T) {
	if _, err := FitRoofline("m", nil); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
	invalid := []Sample{{Metric: "m", T: 0, W: 1, M: 1}}
	if _, err := FitRoofline("m", invalid); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestFitRooflineSingleSample(t *testing.T) {
	r, err := FitRoofline("m", mkSamples("m", []geom.Point{{X: 2, Y: 3}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Left of the sample: the line from the origin through it.
	if got := r.Eval(1); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Eval(1) = %g, want 1.5", got)
	}
	// At and right of the sample: flat.
	for _, i := range []float64{2, 5, math.Inf(1)} {
		if got := r.Eval(i); math.Abs(got-3) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want 3", i, got)
		}
	}
}

func TestFitRooflineLeftIncreasingConcave(t *testing.T) {
	// Negative metric behaviour (paper Fig 5): throughput rises with I.
	pts := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 1.6}, {X: 4, Y: 2.2}, {X: 8, Y: 2.5}, {X: 3, Y: 1.0}}
	r, err := FitRoofline("stalls", mkSamples("stalls", pts))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := r.Peak(); got != (geom.Point{X: 8, Y: 2.5}) {
		t.Errorf("peak = %v, want (8, 2.5)", got)
	}
	// Monotone non-decreasing over the left region.
	prev := -1.0
	for i := 0.0; i <= 8.0; i += 0.25 {
		v := r.Eval(i)
		if v < prev-1e-12 {
			t.Fatalf("left region decreasing at I=%g: %g < %g", i, v, prev)
		}
		prev = v
	}
}

func TestFitRooflineRightChoosesZeroErrorPath(t *testing.T) {
	// Constructed so that the concave-up rule forbids following all
	// Pareto samples without the special horizontal segment: best fit is
	// horizontal at the peak until (2,7.9), then through (3,4), (4,1).
	pts := []geom.Point{{X: 1, Y: 8}, {X: 2, Y: 7.9}, {X: 3, Y: 4}, {X: 4, Y: 1}}
	r, err := FitRoofline("m", mkSamples("m", pts))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := []geom.Point{{X: 2, Y: 7.9}, {X: 3, Y: 4}, {X: 4, Y: 1}}
	if len(r.Right) != len(want) {
		t.Fatalf("right chain = %v, want %v", r.Right, want)
	}
	for i := range want {
		if math.Abs(r.Right[i].X-want[i].X) > 1e-12 || math.Abs(r.Right[i].Y-want[i].Y) > 1e-12 {
			t.Fatalf("right chain = %v, want %v", r.Right, want)
		}
	}
	// The horizontal peak segment spans (1, 2).
	if got := r.Eval(1.5); got != 8 {
		t.Errorf("Eval(1.5) = %g, want 8 (horizontal peak segment)", got)
	}
	if got := r.Eval(2); math.Abs(got-7.9) > 1e-12 {
		t.Errorf("Eval(2) = %g, want 7.9", got)
	}
	if got := r.Eval(3.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Eval(3.5) = %g, want 2.5", got)
	}
	if got := r.Eval(100); math.Abs(got-1) > 1e-12 {
		t.Errorf("Eval(100) = %g, want tail 1", got)
	}
}

func TestFitRooflineRightAllAdjacent(t *testing.T) {
	// Slopes steepen leftward, so following every Pareto sample is valid
	// and has zero error: the fit must touch every sample.
	pts := []geom.Point{{X: 1, Y: 8}, {X: 2, Y: 4}, {X: 3, Y: 2}, {X: 4, Y: 1.9}}
	r, err := FitRoofline("m", mkSamples("m", pts))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Right) != 4 {
		t.Fatalf("right chain = %v, want all 4 samples", r.Right)
	}
	for _, p := range pts {
		if got := r.Eval(p.X); math.Abs(got-p.Y) > 1e-9 {
			t.Errorf("Eval(%g) = %g, want %g", p.X, got, p.Y)
		}
	}
}

func TestFitRooflineInfinitySample(t *testing.T) {
	// A sample with M = 0 (I = +Inf) anchors the tail.
	pts := []geom.Point{{X: 1, Y: 8}, {X: 4, Y: 4}, {X: math.Inf(1), Y: 1}}
	r, err := FitRoofline("m", mkSamples("m", pts))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := r.Eval(math.Inf(1)); got < 1 {
		t.Errorf("Eval(+Inf) = %g must bound the I=Inf sample (P=1)", got)
	}
	if got := r.Eval(4); got < 4-1e-9 {
		t.Errorf("Eval(4) = %g undercuts sample", got)
	}
}

func TestFitRooflineInfinitySampleIsBest(t *testing.T) {
	// The best-throughput sample never fires the metric: the bound right
	// of the peak jumps to that sample's throughput.
	pts := []geom.Point{{X: 1, Y: 2}, {X: math.Inf(1), Y: 5}}
	r, err := FitRoofline("m", mkSamples("m", pts))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Eval(math.Inf(1)); got != 5 {
		t.Errorf("Eval(+Inf) = %g, want 5", got)
	}
	if got := r.Eval(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("Eval(0.5) = %g, want 1 (left chord)", got)
	}
}

func TestFitRooflineAllInfinity(t *testing.T) {
	pts := []geom.Point{{X: math.Inf(1), Y: 2}, {X: math.Inf(1), Y: 5}}
	r, err := FitRoofline("m", mkSamples("m", pts))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []float64{0, 1, math.Inf(1)} {
		if got := r.Eval(i); got != 5 {
			t.Errorf("Eval(%g) = %g, want constant 5", i, got)
		}
	}
}

func TestRooflineEvalEdgeCases(t *testing.T) {
	r, err := FitRoofline("m", mkSamples("m", []geom.Point{{X: 2, Y: 3}, {X: 4, Y: 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Eval(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Eval(NaN) = %g, want NaN", got)
	}
	if got := r.Eval(-5); got != 0 {
		t.Errorf("Eval(-5) = %g, want 0 (clamped to origin)", got)
	}
	var empty Roofline
	if got := empty.Eval(1); !math.IsNaN(got) {
		t.Errorf("empty roofline Eval = %g, want NaN", got)
	}
}

// TestFitRooflineUpperBoundProperty is the central invariant from the
// paper: the fitted function lies on or above every training sample.
func TestFitRooflineUpperBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(60)
		samples := make([]Sample, n)
		for i := range samples {
			T := 1 + rng.Float64()*9
			W := rng.Float64() * 100
			var M float64
			switch rng.Intn(4) {
			case 0:
				M = 0 // I = +Inf
			default:
				M = rng.Float64() * 50
			}
			samples[i] = Sample{Metric: "m", T: T, W: W, M: M}
		}
		r, err := FitRoofline("m", samples)
		if err != nil {
			// Only possible if every sample was invalid; with T>0 and
			// W,M >= 0 the only degenerate case is all W=M=0.
			continue
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, s := range samples {
			p := s.Point()
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			got := r.Eval(p.X)
			if got < p.Y-1e-9*(1+p.Y) {
				t.Fatalf("trial %d: fit undercuts sample %v: Eval(%g)=%g < %g\nleft=%v\nright=%v tail=%g",
					trial, s, p.X, got, p.Y, r.Left, r.Right, r.TailY)
			}
		}
	}
}

// TestFitRooflineDroopBehaviour documents the paper's observed BP.1
// defect: sparse high-intensity samples with lower throughput pull the
// right region down even when the metric is genuinely "negative".
func TestFitRooflineDroopBehaviour(t *testing.T) {
	pts := []geom.Point{
		{X: 1, Y: 0.5}, {X: 10, Y: 1.5}, {X: 100, Y: 2.8},
		{X: 1000, Y: 3.0}, // peak
		{X: 5000, Y: 1.2}, // sparse high-I sample with poor throughput
	}
	r, err := FitRoofline("bp1", mkSamples("bp1", pts))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Eval(20000); got > 1.2+1e-9 {
		t.Errorf("expected the right fit to droop to 1.2 beyond the last sample, got %g", got)
	}
	if got := r.Eval(100); got < 2.8-1e-9 {
		t.Errorf("left region must still bound the training samples, got %g at I=100", got)
	}
}

func TestRooflineRegion(t *testing.T) {
	r, err := FitRoofline("m", mkSamples("m", []geom.Point{
		{X: 1, Y: 1}, {X: 10, Y: 3}, {X: 100, Y: 1},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Region(1); got != RegionLeft {
		t.Errorf("Region(1) = %v, want left", got)
	}
	if got := r.Region(10); got != RegionPeak {
		t.Errorf("Region(10) = %v, want peak", got)
	}
	if got := r.Region(50); got != RegionRight {
		t.Errorf("Region(50) = %v, want right", got)
	}
	if got := r.Region(math.Inf(1)); got != RegionRight {
		t.Errorf("Region(+Inf) = %v, want right", got)
	}
	if got := r.Region(math.NaN()); got != RegionPeak {
		t.Errorf("Region(NaN) = %v, want peak fallback", got)
	}
	var empty Roofline
	if got := empty.Region(1); got != RegionPeak {
		t.Errorf("empty Region = %v, want peak fallback", got)
	}
	if RegionLeft.String() != "left" || RegionRight.String() != "right" || RegionPeak.String() != "peak" || Region(9).String() != "?" {
		t.Error("region names wrong")
	}
}
