package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// TrainOptions configures ensemble training.
type TrainOptions struct {
	// WorkUnit and TimeUnit label the throughput definition.
	WorkUnit string
	TimeUnit string
	// MinSamples drops metrics with fewer valid training samples than
	// this; zero means keep all metrics with at least one sample.
	MinSamples int
	// Workers bounds the number of per-metric fits running concurrently.
	// Zero or negative selects GOMAXPROCS. The trained ensemble is
	// identical for every worker count: fits are pure per-metric
	// functions and results are merged in metric-name order.
	Workers int
}

// workers resolves the effective worker count for n independent jobs.
func (o TrainOptions) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SkippedMetric records one metric group that Train could not fit and why.
type SkippedMetric struct {
	// Metric names the skipped metric group.
	Metric string `json:"metric"`
	// Reason is Err's message (stable, JSON-friendly form).
	Reason string `json:"reason"`
	// Err is the underlying fit error.
	Err error `json:"-"`
}

// TrainReport accounts for every metric group Train considered, so skipped
// metrics are visible instead of silently absent from the ensemble.
type TrainReport struct {
	// Metrics counts the metric groups present in the (valid) training
	// data.
	Metrics int `json:"metrics"`
	// Fitted counts the rooflines that made it into the ensemble.
	Fitted int `json:"fitted"`
	// Skipped lists the metrics that were dropped, sorted by name.
	Skipped []SkippedMetric `json:"skipped,omitempty"`
}

// Summary renders a one-line digest, e.g.
// "fitted 12/14 metrics (skipped bad.event: core: no usable samples)".
func (rep *TrainReport) Summary() string {
	if len(rep.Skipped) == 0 {
		return fmt.Sprintf("fitted %d/%d metrics", rep.Fitted, rep.Metrics)
	}
	parts := make([]string, 0, len(rep.Skipped))
	for _, s := range rep.Skipped {
		parts = append(parts, fmt.Sprintf("%s: %s", s.Metric, s.Reason))
	}
	return fmt.Sprintf("fitted %d/%d metrics (skipped %s)",
		rep.Fitted, rep.Metrics, strings.Join(parts, "; "))
}

// Train fits one roofline per metric found in the dataset (paper Fig. 3).
// Metrics whose samples are all invalid are skipped; use TrainContext to
// see why. ErrNoSamples is returned when nothing could be fitted.
func Train(data Dataset, opts TrainOptions) (*Ensemble, error) {
	e, _, err := TrainContext(context.Background(), data, opts)
	return e, err
}

// TrainContext fits one roofline per metric concurrently on a bounded
// worker pool (opts.Workers goroutines, default GOMAXPROCS) and reports
// every metric it had to skip. The result is deterministic: per-metric
// fitting is a pure function and rooflines are merged in metric-name
// order, so any worker count produces a bit-identical encoded ensemble.
//
// Cancelling ctx aborts the remaining fits and returns ctx.Err(); no
// partial ensemble is returned. ErrNoSamples is returned (with a complete
// report) when no metric could be fitted.
func TrainContext(ctx context.Context, data Dataset, opts TrainOptions) (*Ensemble, *TrainReport, error) {
	groups := data.ByMetric()
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)

	rep := &TrainReport{Metrics: len(names)}
	e := &Ensemble{
		Rooflines: make(map[string]*Roofline, len(names)),
		WorkUnit:  opts.WorkUnit,
		TimeUnit:  opts.TimeUnit,
	}

	type outcome struct {
		r   *Roofline
		err error
	}
	outs := make([]outcome, len(names))

	// Bounded pool pulling jobs off a shared atomic cursor: cheap, no
	// channel bookkeeping, and trivially deterministic because outs is
	// indexed by the sorted metric position, not by completion order.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := opts.workers(len(names)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(names) {
					return
				}
				name := names[i]
				samples := groups[name]
				if opts.MinSamples > 0 && len(samples) < opts.MinSamples {
					outs[i].err = fmt.Errorf("%d samples below min-samples %d",
						len(samples), opts.MinSamples)
					continue
				}
				outs[i].r, outs[i].err = FitRoofline(name, samples)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	for i, name := range names {
		switch {
		case outs[i].err != nil:
			rep.Skipped = append(rep.Skipped, SkippedMetric{
				Metric: name,
				Reason: outs[i].err.Error(),
				Err:    outs[i].err,
			})
		default:
			e.Rooflines[name] = outs[i].r
			rep.Fitted++
		}
	}
	if len(e.Rooflines) == 0 {
		return nil, rep, ErrNoSamples
	}
	return e, rep, nil
}
