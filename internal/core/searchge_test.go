package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spire/internal/geom"
)

// TestSearchGEMatchesSortSearch is the property pinning the whole
// columnar fast path: on sorted input, searchGE must return the
// identical index to sort.SearchFloat64s for every query — the two are
// the same monotone-predicate search, differing only in probe choice.
func TestSearchGEMatchesSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	queries := 0
	check := func(xs []float64, x float64) {
		t.Helper()
		got, want := searchGE(xs, x), sort.SearchFloat64s(xs, x)
		if got != want {
			t.Fatalf("searchGE(%v, %v) = %d, want %d", xs, x, got, want)
		}
		queries++
	}

	// Random arrays across the sizes where the probe strategy changes
	// (pure bisection at <= 4 elements, interpolation above), with value
	// distributions interpolation likes (uniform) and hates (clustered).
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 16, 100, 1000} {
		for rep := 0; rep < 8; rep++ {
			xs := make([]float64, n)
			for i := range xs {
				switch rep % 3 {
				case 0:
					xs[i] = rng.Float64() * 1e6
				case 1:
					xs[i] = math.Exp(rng.Float64() * 40) // wildly skewed
				default:
					xs[i] = float64(rng.Intn(4)) // heavy duplicates
				}
			}
			sort.Float64s(xs)
			for q := 0; q < 120; q++ {
				var x float64
				switch q % 4 {
				case 0:
					x = rng.Float64() * 1e6
				case 1:
					x = math.Exp(rng.Float64() * 40)
				case 2:
					x = float64(rng.Intn(5))
				default:
					if n > 0 {
						x = xs[rng.Intn(n)] // exact hits, including duplicates
					}
				}
				check(xs, x)
			}
		}
	}
	if queries < 10000 {
		t.Fatalf("property test ran only %d queries, want >= 10000", queries)
	}
}

// TestSearchGEExtremeValues drives the interpolation probe's arithmetic
// through denormals, extreme magnitudes, and infinities, where the
// (x-a)/(b-a) estimate can overflow, underflow, or go NaN — the clamp
// must keep every probe in range and the result identical to binary
// search.
func TestSearchGEExtremeValues(t *testing.T) {
	arrays := [][]float64{
		{math.SmallestNonzeroFloat64},
		{5e-324, 1e-308, 2e-308, 1e-300, 1, 1e300, 1e308, math.MaxFloat64},
		{math.Inf(-1), -1e308, 0, 1e308, math.Inf(1)},
		{0, 0, 0, 0, 0, 0, 0, 0},
		{-math.MaxFloat64, math.MaxFloat64}, // b-a overflows to +Inf
	}
	queries := []float64{
		math.Inf(-1), -1e308, -1, math.Copysign(0, -1), 0, 5e-324, 1e-308,
		0.5, 1, 1e300, 1e308, math.MaxFloat64, math.Inf(1),
	}
	for _, xs := range arrays {
		sort.Float64s(xs)
		for _, x := range queries {
			got, want := searchGE(xs, x), sort.SearchFloat64s(xs, x)
			if got != want {
				t.Fatalf("searchGE(%v, %v) = %d, want %d", xs, x, got, want)
			}
		}
	}
}

// TestSearchGEGarbageInput feeds unsorted and NaN-laden arrays: the
// contract is "some index in [0, len], no panic" — the same
// garbage-tolerance binary search has.
func TestSearchGEGarbageInput(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for rep := 0; rep < 200; rep++ {
		n := rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			switch rng.Intn(4) {
			case 0:
				xs[i] = math.NaN()
			case 1:
				xs[i] = math.Inf(1 - 2*rng.Intn(2))
			default:
				xs[i] = rng.NormFloat64() * 1e10
			}
		}
		// Deliberately NOT sorted.
		for q := 0; q < 20; q++ {
			x := rng.NormFloat64() * 1e10
			if q%5 == 0 {
				x = math.NaN()
			}
			if k := searchGE(xs, x); k < 0 || k > n {
				t.Fatalf("searchGE returned %d outside [0, %d]", k, n)
			}
		}
	}
}

// bitsEqual treats NaN == NaN (any payload-to-payload difference still
// fails: the columnar path must reproduce Eval's exact bits).
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || (math.IsNaN(a) && math.IsNaN(b))
}

// checkEvalAgreement sweeps the given queries through both evaluators.
func checkEvalAgreement(t *testing.T, r *Roofline, queries []float64) {
	t.Helper()
	ce := newChainEval(r)
	for _, i := range queries {
		got, want := ce.eval(i), r.Eval(i)
		if !bitsEqual(got, want) {
			t.Fatalf("eval(%v) = %v (bits %x), Roofline.Eval = %v (bits %x)",
				i, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// standardQueries are the boundary-heavy probe points for a chain:
// every breakpoint exactly, either side of each via Nextafter, plus the
// global extremes.
func standardQueries(r *Roofline) []float64 {
	qs := []float64{
		math.NaN(), math.Inf(-1), -1, math.Copysign(0, -1), 0,
		math.SmallestNonzeroFloat64, 1e-308, 0.5, 1e308, math.MaxFloat64, math.Inf(1),
	}
	for _, p := range append(append([]geom.Point(nil), r.Left...), r.Right...) {
		qs = append(qs, p.X, math.Nextafter(p.X, math.Inf(-1)), math.Nextafter(p.X, math.Inf(1)))
	}
	return qs
}

func TestChainEvalSingleSegment(t *testing.T) {
	for _, r := range []*Roofline{
		{Metric: "m", Left: []geom.Point{{X: 2, Y: 10}}, TailY: 10},
		{Metric: "m", Left: []geom.Point{{X: 0, Y: 3}}, TailY: 3}, // degenerate: peak at origin
		{Metric: "m", Left: []geom.Point{{X: 2, Y: 10}}, Right: []geom.Point{{X: 8, Y: 6}}, TailY: 6},
	} {
		checkEvalAgreement(t, r, standardQueries(r))
	}
}

func TestChainEvalDuplicateBreakpoints(t *testing.T) {
	// Zero-width segments in both chains, including runs longer than two;
	// fitted models never produce these, but loaded JSON can, and the
	// two evaluators must agree on the garbage.
	rs := []*Roofline{
		{Metric: "m", Left: []geom.Point{{X: 1, Y: 2}, {X: 1, Y: 5}, {X: 3, Y: 7}}, TailY: 7},
		{Metric: "m",
			Left:  []geom.Point{{X: 2, Y: 10}},
			Right: []geom.Point{{X: 4, Y: 9}, {X: 4, Y: 8}, {X: 4, Y: 7}, {X: 6, Y: 5}},
			TailY: 4},
		{Metric: "m",
			Left:  []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 4}, {X: 2, Y: 10}},
			Right: []geom.Point{{X: 5, Y: 8}, {X: 5, Y: 6}},
			TailY: 5},
	}
	for _, r := range rs {
		checkEvalAgreement(t, r, standardQueries(r))
	}
}

func TestChainEvalExtremeChains(t *testing.T) {
	rs := []*Roofline{
		// Denormal and near-max abscissae: interpolation probes overflow.
		{Metric: "m",
			Left:  []geom.Point{{X: 5e-324, Y: 1}, {X: 1e-300, Y: 2}, {X: 1, Y: 9}},
			Right: []geom.Point{{X: 1e300, Y: 8}, {X: 1e308, Y: 3}},
			TailY: 2},
		// Infinite throughput plateau (the zero-intensity special fit).
		{Metric: "m", Left: []geom.Point{{X: 0, Y: math.Inf(1)}}, TailY: math.Inf(1)},
		// Empty left chain: both must answer NaN everywhere.
		{Metric: "m", TailY: 1},
	}
	for _, r := range rs {
		checkEvalAgreement(t, r, standardQueries(r))
	}
}

// TestChainEvalRandomAgainstEval is the randomized sweep: fitted-shape
// chains, ~10k queries, bit-identical outputs.
func TestChainEvalRandomAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	total := 0
	for rep := 0; rep < 60; rep++ {
		nl, nr := 1+rng.Intn(8), rng.Intn(8)
		r := &Roofline{Metric: "m"}
		x := 0.0
		for i := 0; i < nl; i++ {
			x += rng.Float64() * 10
			r.Left = append(r.Left, geom.Point{X: x, Y: rng.Float64() * 100})
		}
		for i := 0; i < nr; i++ {
			x += rng.Float64() * 10
			r.Right = append(r.Right, geom.Point{X: x, Y: rng.Float64() * 100})
		}
		r.TailY = rng.Float64() * 50
		ce := newChainEval(r)
		for q := 0; q < 170; q++ {
			i := rng.Float64() * (x + 5)
			if q%7 == 0 {
				i = -i
			}
			got, want := ce.eval(i), r.Eval(i)
			if !bitsEqual(got, want) {
				t.Fatalf("rep %d: eval(%v) = %v, Roofline.Eval = %v", rep, i, got, want)
			}
			total++
		}
	}
	if total < 10000 {
		t.Fatalf("random sweep ran only %d queries, want >= 10000", total)
	}
}
