package core

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"
)

// trainGoldenEnsemble trains a model from the checked-in golden dataset.
func trainGoldenEnsemble(t *testing.T) *Ensemble {
	t.Helper()
	f, err := os.Open("testdata/golden_dataset.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := ReadDataset(f)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := Train(data, TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	return ens
}

// TestSaveLoadRoundTripStable is the serialization guarantee the serving
// tier's model registry depends on: Save -> LoadEnsemble -> Save must be
// byte-identical, the fingerprint must survive the round trip, and the
// reloaded model must estimate identically to the original.
func TestSaveLoadRoundTripStable(t *testing.T) {
	ens := trainGoldenEnsemble(t)

	var first bytes.Buffer
	if err := ens.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEnsemble(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("reloading saved model: %v", err)
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("Save -> Load -> Save is not byte-identical")
	}

	fp1, err := ens.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := loaded.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Errorf("fingerprint changed across round trip: %s vs %s", fp1, fp2)
	}
	if len(fp1) != 64 {
		t.Errorf("fingerprint %q is not a hex sha256", fp1)
	}

	if err := loaded.CheckInvariants(); err != nil {
		t.Errorf("reloaded trained model violates invariants: %v", err)
	}

	// Same estimates, bit for bit, on a reloaded model.
	f, err := os.Open("testdata/golden_dataset.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := ReadDataset(f)
	if err != nil {
		t.Fatal(err)
	}
	estA, err := ens.Estimate(data)
	if err != nil {
		t.Fatal(err)
	}
	estB, err := loaded.Estimate(data)
	if err != nil {
		t.Fatal(err)
	}
	if estA.MaxThroughput != estB.MaxThroughput || len(estA.PerMetric) != len(estB.PerMetric) {
		t.Error("reloaded model estimates differently")
	}
	for i := range estA.PerMetric {
		if estA.PerMetric[i] != estB.PerMetric[i] {
			t.Errorf("per-metric estimate %d differs: %+v vs %+v", i, estA.PerMetric[i], estB.PerMetric[i])
		}
	}
}

// TestEstimationJSONTotal: estimation marshaling must never fail, even
// on the non-finite values estimations legitimately carry, and must
// round-trip them exactly.
func TestEstimationJSONTotal(t *testing.T) {
	est := Estimation{
		PerMetric: []MetricEstimate{
			{Metric: "finite", MeanEstimate: 1.5, Samples: 3, MeanIntensity: 2.25},
			{Metric: "inf.intensity", MeanEstimate: 0.5, Samples: 1, MeanIntensity: math.Inf(1)},
			{Metric: "nan.intensity", MeanEstimate: math.Inf(1), Samples: 2, MeanIntensity: math.NaN()},
		},
		MaxThroughput:      0.5,
		MeasuredThroughput: math.NaN(),
		Coverage:           CoverageReport{ModelMetrics: 3, DataMetrics: 3, Shared: 3},
	}
	raw, err := json.Marshal(est)
	if err != nil {
		t.Fatalf("marshaling a non-finite estimation must not fail: %v", err)
	}
	if !strings.Contains(string(raw), `"+Inf"`) || !strings.Contains(string(raw), `"NaN"`) {
		t.Errorf("non-finite values not spelled out: %s", raw)
	}
	var back Estimation
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.MeasuredThroughput) {
		t.Error("NaN measured throughput lost in round trip")
	}
	if !math.IsInf(back.PerMetric[1].MeanIntensity, 1) || !math.IsInf(back.PerMetric[2].MeanEstimate, 1) {
		t.Error("+Inf lost in round trip")
	}
	if !math.IsNaN(back.PerMetric[2].MeanIntensity) {
		t.Error("NaN intensity lost in round trip")
	}
	if back.PerMetric[0] != est.PerMetric[0] {
		t.Errorf("finite estimate changed: %+v vs %+v", back.PerMetric[0], est.PerMetric[0])
	}
	// Finite-only documents stay plain numbers (byte-stability for the
	// serving tier's golden responses).
	finite := Estimation{PerMetric: []MetricEstimate{{Metric: "m", MeanEstimate: 1, Samples: 1, MeanIntensity: 2}}, MaxThroughput: 1, MeasuredThroughput: 3}
	raw, err = json.Marshal(finite)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"meanEstimate":"`) {
		t.Errorf("finite values must stay numeric: %s", raw)
	}

	// Rejects non-numeric strings.
	var bad Estimation
	if err := json.Unmarshal([]byte(`{"maxThroughput":"huge"}`), &bad); err == nil {
		t.Error("decoding a junk number string must fail")
	}
}

func TestEnsembleCheckInvariants(t *testing.T) {
	ens := trainGoldenEnsemble(t)
	if err := ens.CheckInvariants(); err != nil {
		t.Errorf("trained model must satisfy invariants: %v", err)
	}

	empty := &Ensemble{}
	if err := empty.CheckInvariants(); err == nil {
		t.Error("empty ensemble must fail invariants")
	}

	nilRoof := &Ensemble{Rooflines: map[string]*Roofline{"m": nil}}
	if err := nilRoof.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "nil") {
		t.Errorf("nil roofline must fail invariants, got %v", err)
	}

	// A decreasing left chain decodes fine but must be rejected here.
	bad := `{"format":"spire-ensemble","version":1,"model":{"rooflines":{"m":{"metric":"m","left":[{"x":1,"y":5},{"x":2,"y":1}],"tailY":1}}}}`
	loaded, err := LoadEnsemble(strings.NewReader(bad))
	if err != nil {
		t.Fatalf("loader should tolerate structurally bad chains: %v", err)
	}
	if err := loaded.CheckInvariants(); err == nil {
		t.Error("structurally bad roofline must fail CheckInvariants")
	}
}
