// Package core implements the SPIRE performance model (paper §III): samples
// collected from hardware performance counters, per-metric piecewise-linear
// roofline models with the left (convex hull) and right (Pareto + Dijkstra)
// fitting algorithms, and the ensemble that combines them to estimate a
// workload's maximum attainable throughput and rank likely bottlenecks.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"spire/internal/geom"
)

// Sample is one measurement period for one performance metric (paper
// §III-A). T and W must use consistent units across all samples (e.g.
// cycles and instructions so that throughput is IPC); M's unit is specific
// to the metric.
type Sample struct {
	// Metric names the performance counter event this sample measured.
	Metric string `json:"metric"`
	// T is the length of the measurement period (e.g. core cycles).
	T float64 `json:"t"`
	// W is the work completed during the period (e.g. retired
	// instructions).
	W float64 `json:"w"`
	// M is the increase of the metric during the period.
	M float64 `json:"m"`
	// Window optionally identifies the collection interval the sample
	// came from; samples sharing a window were measured over the same
	// period. Zero when the collector does not track windows.
	Window int `json:"window,omitempty"`
}

// Throughput returns P = W/T. It returns NaN when T is zero or negative.
func (s Sample) Throughput() float64 {
	if s.T <= 0 {
		return math.NaN()
	}
	return s.W / s.T
}

// Intensity returns the metric-specific operational intensity I = W/M.
// When the metric never fired (M == 0) the intensity is +Inf, matching the
// paper's treatment of samples with M_x = 0; when both W and M are zero it
// returns NaN (no information).
func (s Sample) Intensity() float64 {
	if s.M == 0 {
		if s.W == 0 {
			return math.NaN()
		}
		return math.Inf(1)
	}
	return s.W / s.M
}

// Valid reports whether the sample can participate in fitting or
// estimation: positive period, non-negative work and metric count, and no
// NaNs.
func (s Sample) Valid() bool {
	if s.Metric == "" {
		return false
	}
	if math.IsNaN(s.T) || math.IsNaN(s.W) || math.IsNaN(s.M) {
		return false
	}
	if math.IsInf(s.T, 0) || math.IsInf(s.W, 0) || math.IsInf(s.M, 0) {
		return false
	}
	return s.T > 0 && s.W >= 0 && s.M >= 0
}

// Point converts the sample to the (intensity, throughput) plane used by
// roofline fitting.
func (s Sample) Point() geom.Point {
	return geom.Point{X: s.Intensity(), Y: s.Throughput()}
}

// String renders the sample with its derived values for diagnostics.
func (s Sample) String() string {
	return fmt.Sprintf("%s{T=%g W=%g M=%g P=%g I=%g}",
		s.Metric, s.T, s.W, s.M, s.Throughput(), s.Intensity())
}

// Dataset is a collection of samples, typically gathered by a perf-stat
// style sampler over one or more workload executions.
type Dataset struct {
	Samples []Sample `json:"samples"`
	// Sched holds scheduler events collected alongside the counter
	// samples, in time order. Empty for single-threaded CPU-resident
	// collections, and omitted from encodings so such datasets are
	// byte-identical to pre-scheduler ones.
	Sched []SchedEvent `json:"sched,omitempty"`
}

// Add appends samples to the dataset.
func (d *Dataset) Add(samples ...Sample) {
	d.Samples = append(d.Samples, samples...)
}

// AddSched appends scheduler events to the dataset.
func (d *Dataset) AddSched(events ...SchedEvent) {
	d.Sched = append(d.Sched, events...)
}

// Merge appends all samples and scheduler events from other.
func (d *Dataset) Merge(other Dataset) {
	d.Samples = append(d.Samples, other.Samples...)
	d.Sched = append(d.Sched, other.Sched...)
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Metrics returns the sorted set of metric names present in the dataset.
func (d *Dataset) Metrics() []string {
	set := make(map[string]bool)
	for _, s := range d.Samples {
		set[s.Metric] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByMetric groups samples by metric name (paper Fig. 3, middle). Invalid
// samples are dropped; the per-metric order follows the dataset order.
func (d *Dataset) ByMetric() map[string][]Sample {
	groups := make(map[string][]Sample)
	for _, s := range d.Samples {
		if !s.Valid() {
			continue
		}
		groups[s.Metric] = append(groups[s.Metric], s)
	}
	return groups
}

// Filter returns a new dataset containing the samples for which keep
// returns true.
func (d *Dataset) Filter(keep func(Sample) bool) Dataset {
	var out Dataset
	for _, s := range d.Samples {
		if keep(s) {
			out.Add(s)
		}
	}
	return out
}

// ErrNoSamples is returned when fitting or estimating with no usable
// samples.
var ErrNoSamples = errors.New("core: no usable samples")
