package core

import "sort"

// IncrementalIndex grows a workload index sample by sample, so a
// streaming consumer can extend its window without re-grouping or
// re-sorting the whole workload (paper §III collects samples as a
// continuous `perf stat -I` feed). It maintains exactly the structures
// IndexWorkload builds — per-metric columnar sample groups in arrival
// order with precomputed intensities and a sorted metric list — which
// makes Snapshot()+BatchEstimate bit-identical to
// IndexWorkload+BatchEstimate over the same samples in the same order.
// (Snapshots carry no contribution-ID tables — under eviction those
// would grow without bound — so the merge dedups measured throughput
// through its map fallback, which visits periods in the same order.)
//
// An IncrementalIndex is not safe for concurrent mutation, but snapshots
// taken from it remain safe to read while the index keeps growing:
// appends only ever write beyond every previously published snapshot's
// visible range, and evictions only move slice headers forward.
type IncrementalIndex struct {
	metrics []string // sorted metric names with >= 1 live sample
	groups  map[string]*indexedMetric
	n       int // live samples across all groups
}

// NewIncrementalIndex returns an empty index.
func NewIncrementalIndex() *IncrementalIndex {
	return &IncrementalIndex{groups: make(map[string]*indexedMetric)}
}

// Add appends samples to their metric groups' columns, dropping invalid
// ones exactly as Dataset.ByMetric drops them, and returns how many were
// kept. Within one metric, samples must arrive in the order the batch
// path would see them (the dataset order); the streaming pipeline feeds
// intervals in window order, which satisfies this by construction.
func (ix *IncrementalIndex) Add(samples ...Sample) int {
	added := 0
	for _, s := range samples {
		if !s.Valid() {
			continue
		}
		g, ok := ix.groups[s.Metric]
		if !ok {
			g = &indexedMetric{}
			ix.groups[s.Metric] = g
			k := sort.SearchStrings(ix.metrics, s.Metric)
			ix.metrics = append(ix.metrics, "")
			copy(ix.metrics[k+1:], ix.metrics[k:])
			ix.metrics[k] = s.Metric
		}
		g.t = append(g.t, s.T)
		g.w = append(g.w, s.W)
		g.intens = append(g.intens, s.Intensity())
		g.window = append(g.window, s.Window)
		ix.n++
		added++
	}
	return added
}

// EvictBefore drops every sample whose Window tag is below window and
// returns how many were dropped. It relies on windows being
// nondecreasing within each metric group (true whenever Add is fed
// intervals in window order). Metrics left without samples disappear
// from the index, so coverage reporting matches a fresh index over the
// surviving samples. Eviction never writes to the evicted region, so
// previously taken snapshots stay valid.
func (ix *IncrementalIndex) EvictBefore(window int) int {
	evicted := 0
	for metric, g := range ix.groups {
		k := sort.Search(len(g.window), func(i int) bool {
			return g.window[i] >= window
		})
		if k == 0 {
			continue
		}
		g.t = g.t[k:]
		g.w = g.w[k:]
		g.intens = g.intens[k:]
		g.window = g.window[k:]
		evicted += k
		ix.n -= k
		if len(g.window) == 0 {
			delete(ix.groups, metric)
		}
	}
	if evicted > 0 && len(ix.groups) < len(ix.metrics) {
		live := ix.metrics[:0]
		for _, m := range ix.metrics {
			if _, ok := ix.groups[m]; ok {
				live = append(live, m)
			}
		}
		ix.metrics = live
	}
	return evicted
}

// Snapshot publishes the current contents as an immutable WorkloadIndex
// that stays correct while the IncrementalIndex keeps mutating. The
// snapshot shares column storage with the live index: full-slice
// expressions cap each column at its current length, later Adds write
// only beyond that cap, and EvictBefore only advances the live slice
// headers — so no write ever lands inside a snapshot's visible range.
func (ix *IncrementalIndex) Snapshot() *WorkloadIndex {
	out := &WorkloadIndex{
		metrics: append([]string(nil), ix.metrics...),
		groups:  make(map[string]*indexedMetric, len(ix.groups)),
	}
	for metric, g := range ix.groups {
		out.groups[metric] = &indexedMetric{
			t:      g.t[:len(g.t):len(g.t)],
			w:      g.w[:len(g.w):len(g.w)],
			intens: g.intens[:len(g.intens):len(g.intens)],
			window: g.window[:len(g.window):len(g.window)],
		}
	}
	return out
}

// Len returns the number of live (valid, unevicted) samples.
func (ix *IncrementalIndex) Len() int { return ix.n }

// Metrics returns the sorted metric names with at least one live sample.
func (ix *IncrementalIndex) Metrics() []string {
	return append([]string(nil), ix.metrics...)
}
