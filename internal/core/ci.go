package core

import (
	"math"
	"math/rand"
	"sort"
)

// CIOptions configures bootstrap confidence intervals.
type CIOptions struct {
	// Resamples is the number of bootstrap resamples (default 200).
	Resamples int
	// Confidence is the interval mass (default 0.90).
	Confidence float64
	// Seed drives the resampling (default 1).
	Seed int64
}

func (o *CIOptions) setDefaults() {
	if o.Resamples <= 0 {
		o.Resamples = 200
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.90
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// MetricEstimateCI is a per-metric estimate with a bootstrap confidence
// interval on the time-weighted mean. The interval captures sampling
// noise — the paper's §III-C concern that "measurement noise and
// imperfect modeling may cause some uncertainty in these values".
type MetricEstimateCI struct {
	MetricEstimate
	// Lo and Hi bound the time-weighted mean estimate at the requested
	// confidence.
	Lo, Hi float64
}

// EstimationCI is an estimation with per-metric uncertainty.
type EstimationCI struct {
	// PerMetric is sorted ascending by MeanEstimate, like Estimation.
	PerMetric []MetricEstimateCI
	// MaxThroughput and MeasuredThroughput mirror Estimation.
	MaxThroughput      float64
	MeasuredThroughput float64
}

// EstimateWithCI estimates a workload and bootstraps a confidence
// interval for each metric's time-weighted mean by resampling that
// metric's samples with replacement.
func (e *Ensemble) EstimateWithCI(workload Dataset, opts CIOptions) (*EstimationCI, error) {
	opts.setDefaults()
	base, err := e.Estimate(workload)
	if err != nil {
		return nil, err
	}
	groups := workload.ByMetric()
	rng := rand.New(rand.NewSource(opts.Seed))

	out := &EstimationCI{
		MaxThroughput:      base.MaxThroughput,
		MeasuredThroughput: base.MeasuredThroughput,
	}
	alpha := (1 - opts.Confidence) / 2
	for _, m := range base.PerMetric {
		r := e.Rooflines[m.Metric]
		samples := groups[m.Metric]
		// Precompute (estimate, weight) pairs once; resampling is then
		// index shuffling only.
		type ew struct{ est, w float64 }
		var pairs []ew
		for _, s := range samples {
			p := r.Eval(s.Intensity())
			if math.IsNaN(p) {
				continue
			}
			pairs = append(pairs, ew{est: p, w: s.T})
		}
		ci := MetricEstimateCI{MetricEstimate: m, Lo: m.MeanEstimate, Hi: m.MeanEstimate}
		if len(pairs) >= 2 {
			means := make([]float64, 0, opts.Resamples)
			for b := 0; b < opts.Resamples; b++ {
				var num, den float64
				for range pairs {
					p := pairs[rng.Intn(len(pairs))]
					num += p.est * p.w
					den += p.w
				}
				if den > 0 {
					means = append(means, num/den)
				}
			}
			if len(means) > 0 {
				sort.Float64s(means)
				ci.Lo = quantileSorted(means, alpha)
				ci.Hi = quantileSorted(means, 1-alpha)
			}
		}
		out.PerMetric = append(out.PerMetric, ci)
	}
	return out, nil
}

// quantileSorted interpolates the q-th quantile of an ascending slice.
func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 1 {
		return xs[0]
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// BindingPool returns the metrics whose confidence interval overlaps the
// binding (lowest-estimate) metric's interval — the statistically
// justified version of the paper's "pool of low-valued metrics". The
// binding metric itself is always included.
func (est *EstimationCI) BindingPool() []MetricEstimateCI {
	if len(est.PerMetric) == 0 {
		return nil
	}
	binding := est.PerMetric[0]
	var pool []MetricEstimateCI
	for _, m := range est.PerMetric {
		if m.Lo <= binding.Hi {
			pool = append(pool, m)
		}
	}
	return pool
}
