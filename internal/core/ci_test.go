package core

import (
	"math"
	"math/rand"
	"testing"
)

// noisyWorkload builds a workload whose "noisy" metric has high-variance
// intensities and whose "steady" metric is constant.
func noisyWorkload(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	var d Dataset
	for i := 0; i < n; i++ {
		iNoisy := 1 + rng.Float64()*30
		d.Add(
			Sample{Metric: "noisy", T: 100, W: 100, M: 100 / iNoisy},
			Sample{Metric: "steady", T: 100, W: 100, M: 100 / 8.0},
		)
	}
	return d
}

func trainCIEnsemble(t *testing.T) *Ensemble {
	t.Helper()
	var train Dataset
	for i := 1.0; i <= 64; i *= 2 {
		w := 100 * 3 * i / (i + 8)
		train.Add(
			Sample{Metric: "noisy", T: 100, W: w, M: w / i},
			Sample{Metric: "steady", T: 100, W: w, M: w / i},
		)
	}
	ens, err := Train(train, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ens
}

func TestEstimateWithCIBasics(t *testing.T) {
	ens := trainCIEnsemble(t)
	est, err := ens.EstimateWithCI(noisyWorkload(60, 2), CIOptions{Resamples: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.PerMetric) != 2 {
		t.Fatalf("metrics = %d", len(est.PerMetric))
	}
	for _, m := range est.PerMetric {
		if m.Lo > m.MeanEstimate+1e-9 || m.Hi < m.MeanEstimate-1e-9 {
			t.Errorf("%s: point estimate %.4f outside CI [%.4f, %.4f]",
				m.Metric, m.MeanEstimate, m.Lo, m.Hi)
		}
		if m.Lo > m.Hi {
			t.Errorf("%s: inverted interval", m.Metric)
		}
	}
}

func TestCIWidthReflectsNoise(t *testing.T) {
	ens := trainCIEnsemble(t)
	est, err := ens.EstimateWithCI(noisyWorkload(60, 3), CIOptions{Resamples: 300})
	if err != nil {
		t.Fatal(err)
	}
	width := map[string]float64{}
	for _, m := range est.PerMetric {
		width[m.Metric] = m.Hi - m.Lo
	}
	if width["noisy"] <= width["steady"] {
		t.Errorf("noisy metric CI width %.4f should exceed steady %.4f",
			width["noisy"], width["steady"])
	}
	// A constant-input metric has (almost) no bootstrap variance.
	if width["steady"] > 1e-9 {
		t.Errorf("steady metric CI width %.6f, want ~0", width["steady"])
	}
}

func TestCIDeterministicForSeed(t *testing.T) {
	ens := trainCIEnsemble(t)
	w := noisyWorkload(40, 4)
	a, err := ens.EstimateWithCI(w, CIOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ens.EstimateWithCI(w, CIOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerMetric {
		if a.PerMetric[i].Lo != b.PerMetric[i].Lo || a.PerMetric[i].Hi != b.PerMetric[i].Hi {
			t.Fatal("same seed must reproduce identical intervals")
		}
	}
}

func TestCISingleSampleDegenerate(t *testing.T) {
	ens := trainCIEnsemble(t)
	var w Dataset
	w.Add(Sample{Metric: "noisy", T: 1, W: 5, M: 1})
	est, err := ens.EstimateWithCI(w, CIOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := est.PerMetric[0]
	if m.Lo != m.MeanEstimate || m.Hi != m.MeanEstimate {
		t.Errorf("single sample should collapse the interval: %+v", m)
	}
}

func TestBindingPool(t *testing.T) {
	ens := trainCIEnsemble(t)
	est, err := ens.EstimateWithCI(noisyWorkload(60, 5), CIOptions{Resamples: 300})
	if err != nil {
		t.Fatal(err)
	}
	pool := est.BindingPool()
	if len(pool) == 0 {
		t.Fatal("pool must include the binding metric")
	}
	if pool[0].Metric != est.PerMetric[0].Metric {
		t.Error("pool must start with the binding metric")
	}
	// Every pool member's interval overlaps the binding interval.
	binding := est.PerMetric[0]
	for _, m := range pool {
		if m.Lo > binding.Hi {
			t.Errorf("%s in pool without overlap", m.Metric)
		}
	}
	empty := &EstimationCI{}
	if empty.BindingPool() != nil {
		t.Error("empty estimation should yield nil pool")
	}
}

func TestEstimateWithCIErrors(t *testing.T) {
	ens := trainCIEnsemble(t)
	if _, err := ens.EstimateWithCI(Dataset{}, CIOptions{}); err == nil {
		t.Error("expected error for empty workload")
	}
}

func TestQuantileSorted(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := quantileSorted(xs, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := quantileSorted(xs, 1); got != 4 {
		t.Errorf("q1 = %g", got)
	}
	if got := quantileSorted(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("q0.5 = %g", got)
	}
	if got := quantileSorted([]float64{7}, 0.3); got != 7 {
		t.Errorf("single = %g", got)
	}
}
