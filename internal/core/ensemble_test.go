package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// trainTwoMetricEnsemble builds a model where metric "slow" bounds
// throughput at 1 and metric "fast" at 10, over a wide intensity range.
func trainTwoMetricEnsemble(t *testing.T) *Ensemble {
	t.Helper()
	var d Dataset
	for i := 1.0; i <= 64; i *= 2 {
		d.Add(Sample{Metric: "slow", T: 1, W: 1, M: 1 / i})
		d.Add(Sample{Metric: "fast", T: 1, W: 10, M: 10 / i})
	}
	e, err := Train(d, TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTrainBasics(t *testing.T) {
	e := trainTwoMetricEnsemble(t)
	if got := e.Metrics(); len(got) != 2 || got[0] != "fast" || got[1] != "slow" {
		t.Fatalf("Metrics = %v", got)
	}
	for _, m := range e.Metrics() {
		if err := e.Rooflines[m].CheckInvariants(); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
	if e.WorkUnit != "instructions" || e.TimeUnit != "cycles" {
		t.Errorf("units not recorded: %q/%q", e.WorkUnit, e.TimeUnit)
	}
}

func TestTrainEmpty(t *testing.T) {
	if _, err := Train(Dataset{}, TrainOptions{}); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestTrainMinSamples(t *testing.T) {
	var d Dataset
	d.Add(Sample{Metric: "rare", T: 1, W: 1, M: 1})
	for i := 0; i < 5; i++ {
		d.Add(Sample{Metric: "common", T: 1, W: 1, M: 1})
	}
	e, err := Train(d, TrainOptions{MinSamples: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Rooflines["rare"]; ok {
		t.Error("metric below MinSamples should be dropped")
	}
	if _, ok := e.Rooflines["common"]; !ok {
		t.Error("metric above MinSamples should be kept")
	}
}

func TestEstimateMinOfMeans(t *testing.T) {
	e := trainTwoMetricEnsemble(t)
	var w Dataset
	w.Add(
		Sample{Metric: "slow", T: 2, W: 1.6, M: 0.2}, // I = 8
		Sample{Metric: "fast", T: 2, W: 1.6, M: 0.4}, // I = 4
	)
	est, err := e.Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.PerMetric) != 2 {
		t.Fatalf("PerMetric = %v", est.PerMetric)
	}
	// Ranking is ascending, so the binding metric comes first.
	if est.PerMetric[0].Metric != "slow" {
		t.Errorf("top metric = %s, want slow", est.PerMetric[0].Metric)
	}
	if est.MaxThroughput != est.PerMetric[0].MeanEstimate {
		t.Errorf("MaxThroughput %g != lowest per-metric mean %g",
			est.MaxThroughput, est.PerMetric[0].MeanEstimate)
	}
	for _, m := range est.PerMetric {
		if est.MaxThroughput > m.MeanEstimate {
			t.Errorf("ensemble min %g exceeds per-metric mean %g (%s)",
				est.MaxThroughput, m.MeanEstimate, m.Metric)
		}
	}
	// Measured throughput dedupes the shared (T, W) period: 1.6/2.
	if math.Abs(est.MeasuredThroughput-0.8) > 1e-12 {
		t.Errorf("MeasuredThroughput = %g, want 0.8", est.MeasuredThroughput)
	}
}

func TestEstimateTimeWeighting(t *testing.T) {
	// One metric, two samples with very different T: the long sample
	// must dominate the mean (paper Eq. 1).
	var train Dataset
	for i := 1.0; i <= 32; i *= 2 {
		train.Add(Sample{Metric: "m", T: 1, W: i, M: 1})
	}
	e, err := Train(train, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var w Dataset
	w.Add(
		Sample{Metric: "m", T: 100, W: 100, M: 100}, // I = 1, low estimate
		Sample{Metric: "m", T: 1, W: 32, M: 1},      // I = 32, high estimate
	)
	est, err := e.Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	lowEst := e.Rooflines["m"].Eval(1)
	highEst := e.Rooflines["m"].Eval(32)
	want := (100*lowEst + 1*highEst) / 101
	got := est.PerMetric[0].MeanEstimate
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("TWA = %g, want %g (low=%g high=%g)", got, want, lowEst, highEst)
	}
}

func TestEstimateUnknownMetric(t *testing.T) {
	e := trainTwoMetricEnsemble(t)
	var w Dataset
	w.Add(Sample{Metric: "mystery", T: 1, W: 1, M: 1})
	if _, err := e.Estimate(w); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestEstimateSkipsInvalidSamples(t *testing.T) {
	e := trainTwoMetricEnsemble(t)
	var w Dataset
	w.Add(
		Sample{Metric: "slow", T: 0, W: 1, M: 1}, // invalid
		Sample{Metric: "slow", T: 1, W: 1, M: 1},
	)
	est, err := e.Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	if est.PerMetric[0].Samples != 1 {
		t.Errorf("Samples = %d, want 1 (invalid dropped)", est.PerMetric[0].Samples)
	}
}

func TestTopMetricsAndRank(t *testing.T) {
	e := trainTwoMetricEnsemble(t)
	var w Dataset
	w.Add(
		Sample{Metric: "slow", T: 1, W: 0.8, M: 0.1},
		Sample{Metric: "fast", T: 1, W: 0.8, M: 0.2},
	)
	est, err := e.Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	top := est.TopMetrics(1)
	if len(top) != 1 || top[0].Metric != "slow" {
		t.Errorf("TopMetrics(1) = %v", top)
	}
	if got := est.TopMetrics(10); len(got) != 2 {
		t.Errorf("TopMetrics(10) should clamp to 2, got %d", len(got))
	}
	if r := est.Rank("slow"); r != 1 {
		t.Errorf("Rank(slow) = %d, want 1", r)
	}
	if r := est.Rank("fast"); r != 2 {
		t.Errorf("Rank(fast) = %d, want 2", r)
	}
	if r := est.Rank("nope"); r != 0 {
		t.Errorf("Rank(nope) = %d, want 0", r)
	}
}

func TestEstimateInfIntensityWorkload(t *testing.T) {
	e := trainTwoMetricEnsemble(t)
	var w Dataset
	w.Add(Sample{Metric: "slow", T: 1, W: 1, M: 0}) // I = +Inf
	est, err := e.Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(est.PerMetric[0].MeanIntensity, 1) {
		t.Errorf("MeanIntensity = %g, want +Inf", est.PerMetric[0].MeanIntensity)
	}
	if est.PerMetric[0].MeanEstimate <= 0 {
		t.Errorf("estimate at +Inf should be the tail bound, got %g", est.PerMetric[0].MeanEstimate)
	}
}

func TestEstimate1(t *testing.T) {
	e := trainTwoMetricEnsemble(t)
	v, err := e.Estimate1("slow", 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Errorf("Estimate1(slow, 64) = %g, want 1", v)
	}
	if _, err := e.Estimate1("nope", 1); err == nil {
		t.Error("expected error for unknown metric")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := trainTwoMetricEnsemble(t)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEnsemble(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Rooflines) != len(e.Rooflines) {
		t.Fatalf("roofline count mismatch: %d vs %d", len(loaded.Rooflines), len(e.Rooflines))
	}
	for name, orig := range e.Rooflines {
		got, ok := loaded.Rooflines[name]
		if !ok {
			t.Fatalf("missing roofline %s after load", name)
		}
		for _, i := range []float64{0, 0.5, 1, 7, 64, 1000} {
			a, b := orig.Eval(i), got.Eval(i)
			if math.Abs(a-b) > 1e-12 {
				t.Errorf("%s: Eval(%g) differs after round trip: %g vs %g", name, i, a, b)
			}
		}
	}
}

func TestLoadEnsembleRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       "hello",
		"wrong format":   `{"format":"other","version":1,"model":{"rooflines":{"m":{"metric":"m","left":[{"X":1,"Y":1}]}}}}`,
		"wrong version":  `{"format":"spire-ensemble","version":99,"model":{"rooflines":{"m":{"metric":"m","left":[{"X":1,"Y":1}]}}}}`,
		"empty model":    `{"format":"spire-ensemble","version":1,"model":{"rooflines":{}}}`,
		"empty roofline": `{"format":"spire-ensemble","version":1,"model":{"rooflines":{"m":{"metric":"m"}}}}`,
	}
	for name, payload := range cases {
		if _, err := LoadEnsemble(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: expected load error", name)
		}
	}
}

func TestDatasetHelpers(t *testing.T) {
	var d Dataset
	d.Add(
		Sample{Metric: "b", T: 1, W: 1, M: 1},
		Sample{Metric: "a", T: 1, W: 1, M: 1},
		Sample{Metric: "a", T: 0, W: 1, M: 1}, // invalid
	)
	if got := d.Len(); got != 3 {
		t.Errorf("Len = %d", got)
	}
	if m := d.Metrics(); len(m) != 2 || m[0] != "a" || m[1] != "b" {
		t.Errorf("Metrics = %v", m)
	}
	groups := d.ByMetric()
	if len(groups["a"]) != 1 {
		t.Errorf("invalid sample not dropped: %v", groups["a"])
	}
	var other Dataset
	other.Add(Sample{Metric: "c", T: 1, W: 1, M: 1})
	d.Merge(other)
	if d.Len() != 4 {
		t.Errorf("Merge: Len = %d, want 4", d.Len())
	}
	f := d.Filter(func(s Sample) bool { return s.Metric == "a" })
	if f.Len() != 2 {
		t.Errorf("Filter: Len = %d, want 2", f.Len())
	}
	roundTrip := func(d Dataset) Dataset {
		var buf bytes.Buffer
		if err := WriteDataset(&buf, d); err != nil {
			t.Fatal(err)
		}
		out, err := ReadDataset(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got := roundTrip(d); got.Len() != d.Len() {
		t.Errorf("dataset round trip lost samples: %d vs %d", got.Len(), d.Len())
	}
	if _, err := ReadDataset(strings.NewReader("garbage")); err == nil {
		t.Error("expected dataset decode error")
	}
}

func TestMeasuredThroughputCountsDistinctWindows(t *testing.T) {
	e := trainTwoMetricEnsemble(t)
	var w Dataset
	// Two windows with identical (T, W): both periods must count, so the
	// measured throughput is still W/T but over both (a regression test
	// for the value-based dedupe collapsing distinct periods).
	w.Add(
		Sample{Metric: "slow", T: 2, W: 1.6, M: 0.2, Window: 1},
		Sample{Metric: "fast", T: 2, W: 1.6, M: 0.4, Window: 1},
		Sample{Metric: "slow", T: 2, W: 1.6, M: 0.3, Window: 2},
		Sample{Metric: "fast", T: 2, W: 1.6, M: 0.5, Window: 2},
	)
	est, err := e.Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.MeasuredThroughput-0.8) > 1e-12 {
		t.Errorf("MeasuredThroughput = %g, want 0.8", est.MeasuredThroughput)
	}
	// Per-metric sample counts must see both windows.
	for _, m := range est.PerMetric {
		if m.Samples != 2 {
			t.Errorf("%s: samples = %d, want 2", m.Metric, m.Samples)
		}
	}
}
