package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// randMultiMetricDataset builds a dataset spread over several metrics,
// including metrics destined to be skipped (all samples with W = M = 0
// survive validity screening but have no fittable point).
func randMultiMetricDataset(rng *rand.Rand, metrics int) Dataset {
	var d Dataset
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for m := 0; m < metrics && m < len(names); m++ {
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			d.Add(Sample{
				Metric: names[m],
				T:      float64(1 + rng.Intn(8)),
				W:      float64(rng.Intn(40)),
				M:      float64(rng.Intn(10)),
			})
		}
	}
	return d
}

// encodeEnsemble renders the ensemble via Save for byte-level comparison.
func encodeEnsemble(t *testing.T, e *Ensemble) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// TestTrainParallelMatchesSerial: for random datasets and a spread of
// worker counts (including counts above the metric count), the encoded
// ensemble is byte-identical to the serial fit and the reports agree.
func TestTrainParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	ctx := context.Background()
	for it := 0; it < 60; it++ {
		d := randMultiMetricDataset(rng, 1+rng.Intn(8))
		serial, srep, serr := TrainContext(ctx, d, TrainOptions{Workers: 1})
		for _, workers := range []int{0, 2, 3, 4, 7, 16, 64} {
			par, prep, perr := TrainContext(ctx, d, TrainOptions{Workers: workers})
			if (serr == nil) != (perr == nil) {
				t.Fatalf("workers=%d: error mismatch: serial %v parallel %v", workers, serr, perr)
			}
			if serr != nil {
				if !errors.Is(perr, ErrNoSamples) {
					t.Fatalf("workers=%d: unexpected error %v", workers, perr)
				}
				continue
			}
			if got, want := encodeEnsemble(t, par), encodeEnsemble(t, serial); !bytes.Equal(got, want) {
				t.Fatalf("workers=%d: encoded ensemble differs from serial:\n%s\nvs\n%s",
					workers, got, want)
			}
			if prep.Fitted != srep.Fitted || prep.Metrics != srep.Metrics ||
				len(prep.Skipped) != len(srep.Skipped) {
				t.Fatalf("workers=%d: report mismatch: %+v vs %+v", workers, prep, srep)
			}
			for i := range prep.Skipped {
				if prep.Skipped[i].Metric != srep.Skipped[i].Metric ||
					prep.Skipped[i].Reason != srep.Skipped[i].Reason {
					t.Fatalf("workers=%d: skip %d differs: %+v vs %+v",
						workers, i, prep.Skipped[i], srep.Skipped[i])
				}
			}
		}
	}
}

// TestTrainReportSkipReasons: metrics that cannot be fitted are reported
// with a reason instead of silently vanishing.
func TestTrainReportSkipReasons(t *testing.T) {
	var d Dataset
	d.Add(mkPlausible("good", 12)...)
	// Valid samples (T > 0, W = M = 0) that yield no fittable point:
	// intensity is NaN, so FitRoofline sees zero usable samples.
	d.Add(
		Sample{Metric: "idle", T: 5, W: 0, M: 0},
		Sample{Metric: "idle", T: 7, W: 0, M: 0},
	)
	// A thin metric to be dropped by MinSamples.
	d.Add(Sample{Metric: "thin", T: 1, W: 4, M: 2})

	ens, rep, err := TrainContext(context.Background(), d, TrainOptions{MinSamples: 2})
	if err != nil {
		t.Fatalf("TrainContext: %v", err)
	}
	if len(ens.Rooflines) != 1 || ens.Rooflines["good"] == nil {
		t.Fatalf("Rooflines = %v, want just good", ens.Metrics())
	}
	if rep.Metrics != 3 || rep.Fitted != 1 || len(rep.Skipped) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Skipped[0].Metric != "idle" || !errors.Is(rep.Skipped[0].Err, ErrNoSamples) {
		t.Errorf("idle skip = %+v, want ErrNoSamples", rep.Skipped[0])
	}
	if rep.Skipped[1].Metric != "thin" || !strings.Contains(rep.Skipped[1].Reason, "min-samples") {
		t.Errorf("thin skip = %+v, want min-samples reason", rep.Skipped[1])
	}
	sum := rep.Summary()
	if !strings.Contains(sum, "fitted 1/3") || !strings.Contains(sum, "idle") {
		t.Errorf("Summary() = %q", sum)
	}
}

// TestTrainReportAllFitted: the no-skip summary stays terse.
func TestTrainReportAllFitted(t *testing.T) {
	var d Dataset
	d.Add(mkPlausible("good", 8)...)
	_, rep, err := TrainContext(context.Background(), d, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Summary(); got != "fitted 1/1 metrics" {
		t.Errorf("Summary() = %q", got)
	}
}

// TestTrainContextCancellation: a cancelled context aborts training with
// ctx.Err() and no partial ensemble.
func TestTrainContextCancellation(t *testing.T) {
	var d Dataset
	for _, m := range []string{"a", "b", "c", "d"} {
		d.Add(mkPlausible(m, 50)...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ens, rep, err := TrainContext(ctx, d, TrainOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ens != nil || rep != nil {
		t.Errorf("got partial result after cancellation: %v %v", ens, rep)
	}
}

// TestTrainAllMetricsUnfittable: an ensemble-wide failure still carries a
// complete report naming every skipped metric.
func TestTrainAllMetricsUnfittable(t *testing.T) {
	var d Dataset
	d.Add(
		Sample{Metric: "idle1", T: 5, W: 0, M: 0},
		Sample{Metric: "idle2", T: 5, W: 0, M: 0},
	)
	ens, rep, err := TrainContext(context.Background(), d, TrainOptions{})
	if !errors.Is(err, ErrNoSamples) {
		t.Fatalf("err = %v, want ErrNoSamples", err)
	}
	if ens != nil {
		t.Error("got ensemble despite total failure")
	}
	if rep == nil || rep.Metrics != 2 || rep.Fitted != 0 || len(rep.Skipped) != 2 {
		t.Errorf("report = %+v", rep)
	}
}
