package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"spire/internal/geom"
)

// mkPlausible builds a plausible dataset: n periods of IPC ~1.5 sweeping
// the metric's intensity.
func mkPlausible(metric string, n int) []Sample {
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		m := 10 + 40*float64(i)
		out = append(out, Sample{Metric: metric, T: 1000, W: 1500, M: m, Window: i + 1})
	}
	return out
}

func TestValidateClassification(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	wrap := float64(uint64(1) << 48)
	var d Dataset
	d.Add(mkPlausible("stalls", 20)...)
	bad := []struct {
		s    Sample
		want Reason
	}{
		{Sample{Metric: "", T: 1000, W: 1500, M: 5}, ReasonMissingMetric},
		{Sample{Metric: "stalls", T: nan, W: 1500, M: 5}, ReasonNaN},
		{Sample{Metric: "stalls", T: 1000, W: inf, M: 5}, ReasonInf},
		{Sample{Metric: "stalls", T: 0, W: 1500, M: 5}, ReasonNonPositiveTime},
		{Sample{Metric: "stalls", T: -3, W: 1500, M: 5}, ReasonNonPositiveTime},
		{Sample{Metric: "stalls", T: 1000, W: -1, M: 5}, ReasonNegativeWork},
		{Sample{Metric: "stalls", T: 1000, W: 1500, M: -5}, ReasonNegativeMetric},
		{Sample{Metric: "stalls", T: 1000, W: 1500, M: wrap + 12}, ReasonCounterWrap},
		// Clock-skew flavoured outlier: T far too small for its W.
		{Sample{Metric: "stalls", T: 1, W: 150000, M: 5, Window: 99}, ReasonThroughputOutlier},
	}
	for _, b := range bad {
		d.Add(b.s)
	}
	rep := Validate(d, ValidateOptions{})
	if rep.Total != 20+len(bad) {
		t.Fatalf("Total = %d, want %d", rep.Total, 20+len(bad))
	}
	if rep.Kept != 20 || rep.Clean.Len() != 20 {
		t.Errorf("Kept = %d (clean %d), want 20; report: %s", rep.Kept, rep.Clean.Len(), rep.Summary())
	}
	if rep.Quarantined != len(bad) {
		t.Errorf("Quarantined = %d, want %d", rep.Quarantined, len(bad))
	}
	for _, b := range bad {
		if rep.ByReason[b.want.String()] == 0 {
			t.Errorf("reason %s not counted; report: %s", b.want, rep.Summary())
		}
	}
	if len(rep.Detail) != len(bad) {
		t.Errorf("Detail has %d entries, want %d", len(rep.Detail), len(bad))
	}
	for _, q := range rep.Detail {
		if q.ReasonName != q.Reason.String() {
			t.Errorf("detail reason name %q != %v", q.ReasonName, q.Reason)
		}
	}
	if !strings.Contains(rep.Summary(), "quarantined") {
		t.Errorf("Summary() = %q", rep.Summary())
	}
}

func TestValidateEmptyAndAllClean(t *testing.T) {
	rep := Validate(Dataset{}, ValidateOptions{})
	if rep.Total != 0 || rep.Quarantined != 0 || rep.Clean.Len() != 0 {
		t.Errorf("empty dataset report: %+v", rep)
	}
	if !strings.Contains(rep.Summary(), "all kept") {
		t.Errorf("Summary() = %q", rep.Summary())
	}
	var d Dataset
	d.Add(mkPlausible("x", 5)...)
	rep = Validate(d, ValidateOptions{})
	if rep.Quarantined != 0 || rep.Kept != 5 {
		t.Errorf("clean dataset report: %s", rep.Summary())
	}
}

func TestValidateOutlierDisabledAndDetailCap(t *testing.T) {
	var d Dataset
	d.Add(mkPlausible("x", 10)...)
	d.Add(Sample{Metric: "x", T: 1, W: 1e7, M: 5}) // wild throughput
	rep := Validate(d, ValidateOptions{OutlierZ: -1})
	if rep.Quarantined != 0 {
		t.Errorf("outlier screening not disabled: %s", rep.Summary())
	}
	// Detail is capped but counts stay complete.
	var d2 Dataset
	for i := 0; i < 10; i++ {
		d2.Add(Sample{Metric: "x", T: math.NaN(), W: 1, M: 1})
	}
	rep = Validate(d2, ValidateOptions{MaxDetail: 3})
	if rep.Quarantined != 10 || len(rep.Detail) != 3 {
		t.Errorf("quarantined %d, detail %d; want 10, 3", rep.Quarantined, len(rep.Detail))
	}
	// Negative MaxDetail keeps no verbatim samples.
	rep = Validate(d2, ValidateOptions{MaxDetail: -1})
	if rep.Quarantined != 10 || len(rep.Detail) != 0 {
		t.Errorf("quarantined %d, detail %d; want 10, 0", rep.Quarantined, len(rep.Detail))
	}
}

func TestTrainValidatedSkipsQuarantined(t *testing.T) {
	var d Dataset
	d.Add(mkPlausible("stalls", 30)...)
	// Corruption that plain Train would happily fold into the model
	// (counter wrap produces a huge but "valid" M).
	d.Add(Sample{Metric: "stalls", T: 1000, W: 1500, M: float64(uint64(1)<<48) + 99})
	ens, rep, err := TrainValidated(d, TrainOptions{}, ValidateOptions{})
	if err != nil {
		t.Fatalf("TrainValidated: %v", err)
	}
	if rep.ByReason[ReasonCounterWrap.String()] != 1 {
		t.Errorf("wraparound not quarantined: %s", rep.Summary())
	}
	r := ens.Rooflines["stalls"]
	if r == nil {
		t.Fatal("no roofline trained")
	}
	if r.TrainingSamples != 30 {
		t.Errorf("trained on %d samples, want 30 (quarantine skipped)", r.TrainingSamples)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestTrainValidatedAllCorrupt(t *testing.T) {
	var d Dataset
	for i := 0; i < 5; i++ {
		d.Add(Sample{Metric: "x", T: -1, W: 1, M: 1})
	}
	ens, rep, err := TrainValidated(d, TrainOptions{}, ValidateOptions{})
	if !errors.Is(err, ErrNoSamples) {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
	if ens != nil {
		t.Error("expected nil ensemble")
	}
	if rep.Quarantined != 5 {
		t.Errorf("report: %s", rep.Summary())
	}
}

func TestFitRooflineStrictRejectsCorrupt(t *testing.T) {
	samples := mkPlausible("stalls", 5)
	samples = append(samples, Sample{Metric: "stalls", T: 1000, W: math.NaN(), M: 5})
	_, err := FitRooflineStrict("stalls", samples)
	var cse *CorruptSampleError
	if !errors.As(err, &cse) {
		t.Fatalf("err = %v, want *CorruptSampleError", err)
	}
	if cse.Index != 5 || cse.Metric != "stalls" {
		t.Errorf("error detail = %+v", cse)
	}
	if !strings.Contains(cse.Error(), "stalls") {
		t.Errorf("Error() = %q", cse.Error())
	}
	// The lenient path still fits by dropping the corrupt sample.
	r, err := FitRoofline("stalls", samples)
	if err != nil {
		t.Fatalf("FitRoofline: %v", err)
	}
	if r.TrainingSamples != 5 {
		t.Errorf("trained on %d, want 5", r.TrainingSamples)
	}
	// And an all-valid slice passes strict fitting.
	if _, err := FitRooflineStrict("stalls", mkPlausible("stalls", 5)); err != nil {
		t.Errorf("strict fit of valid samples: %v", err)
	}
}

func TestFitRightGuardsNonFinite(t *testing.T) {
	cases := [][]geom.Point{
		{{X: 1, Y: math.NaN()}},
		{{X: math.NaN(), Y: 1}},
		{{X: 1, Y: math.Inf(1)}},
		{{X: math.Inf(1), Y: 1}}, // finite slice must hold finite X
	}
	for i, right := range cases {
		if _, _, err := fitRight(right, nil); !errors.Is(err, ErrNonFinite) {
			t.Errorf("case %d: err = %v, want ErrNonFinite", i, err)
		}
	}
	if _, _, err := fitRight(nil, &geom.Point{X: math.Inf(1), Y: math.NaN()}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("inf-sample guard: err = %v, want ErrNonFinite", err)
	}
	// Sane inputs still fit.
	if _, _, err := fitRight([]geom.Point{{X: 1, Y: 2}, {X: 3, Y: 1}}, nil); err != nil {
		t.Errorf("valid fit errored: %v", err)
	}
}
