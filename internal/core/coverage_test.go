package core

import (
	"errors"
	"math"
	"testing"
)

// trainTwoMetric fits a small ensemble over two metrics.
func trainTwoMetric(t *testing.T) *Ensemble {
	t.Helper()
	var d Dataset
	d.Add(mkPlausible("stalls", 20)...)
	d.Add(mkPlausible("misses", 20)...)
	ens, err := Train(d, TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	return ens
}

func TestEstimatePartialCoverageDataOnlyMetric(t *testing.T) {
	ens := trainTwoMetric(t)
	// Workload measures one modeled metric plus one the model has never
	// seen: estimation must proceed on the shared metric and report the
	// unmodeled one, not silently zero anything.
	var w Dataset
	w.Add(mkPlausible("stalls", 8)...)
	w.Add(mkPlausible("some.unknown.event", 8)...)
	est, err := ens.Estimate(w)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if len(est.PerMetric) != 1 || est.PerMetric[0].Metric != "stalls" {
		t.Fatalf("PerMetric = %+v, want just stalls", est.PerMetric)
	}
	if est.PerMetric[0].MeanEstimate <= 0 || math.IsNaN(est.PerMetric[0].MeanEstimate) {
		t.Errorf("stalls estimate = %g, want positive", est.PerMetric[0].MeanEstimate)
	}
	cov := est.Coverage
	if cov.ModelMetrics != 2 || cov.DataMetrics != 2 || cov.Shared != 1 {
		t.Errorf("coverage = %+v", cov)
	}
	if len(cov.DataOnly) != 1 || cov.DataOnly[0] != "some.unknown.event" {
		t.Errorf("DataOnly = %v", cov.DataOnly)
	}
	if len(cov.ModelOnly) != 1 || cov.ModelOnly[0] != "misses" {
		t.Errorf("ModelOnly = %v", cov.ModelOnly)
	}
}

func TestEstimatePartialCoverageModelOnlyMetrics(t *testing.T) {
	ens := trainTwoMetric(t)
	// Workload only measured one of the two modeled metrics: the bound
	// comes from that metric alone.
	var w Dataset
	w.Add(mkPlausible("misses", 8)...)
	est, err := ens.Estimate(w)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if len(est.PerMetric) != 1 || est.PerMetric[0].Metric != "misses" {
		t.Fatalf("PerMetric = %+v, want just misses", est.PerMetric)
	}
	if est.MaxThroughput != est.PerMetric[0].MeanEstimate {
		t.Errorf("MaxThroughput %g != sole metric estimate %g",
			est.MaxThroughput, est.PerMetric[0].MeanEstimate)
	}
	cov := est.Coverage
	if cov.Shared != 1 || len(cov.ModelOnly) != 1 || cov.ModelOnly[0] != "stalls" {
		t.Errorf("coverage = %+v", cov)
	}
	if len(cov.DataOnly) != 0 {
		t.Errorf("DataOnly = %v, want empty", cov.DataOnly)
	}
}

func TestEstimateNoOverlapReturnsErrNoSamples(t *testing.T) {
	ens := trainTwoMetric(t)
	var w Dataset
	w.Add(mkPlausible("other.event", 4)...)
	_, err := ens.Estimate(w)
	if !errors.Is(err, ErrNoSamples) {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestEstimateCorruptSamplesDoNotPoison(t *testing.T) {
	ens := trainTwoMetric(t)
	var clean Dataset
	clean.Add(mkPlausible("stalls", 8)...)
	base, err := ens.Estimate(clean)
	if err != nil {
		t.Fatal(err)
	}
	// The same workload plus corrupt rows: invalid samples are dropped by
	// ByMetric, so the estimate must be unchanged and finite.
	dirty := clean
	dirty.Samples = append([]Sample(nil), clean.Samples...)
	dirty.Add(
		Sample{Metric: "stalls", T: math.NaN(), W: 1, M: 1},
		Sample{Metric: "stalls", T: -5, W: 1, M: 1},
		Sample{Metric: "misses", T: 0, W: 0, M: math.Inf(1)},
	)
	got, err := ens.Estimate(dirty)
	if err != nil {
		t.Fatalf("Estimate with corrupt rows: %v", err)
	}
	if got.MaxThroughput != base.MaxThroughput {
		t.Errorf("corrupt rows moved the bound: %g -> %g", base.MaxThroughput, got.MaxThroughput)
	}
	if math.IsNaN(got.MeasuredThroughput) {
		t.Error("measured throughput became NaN")
	}
}
