package core

import (
	"errors"
	"math"

	"spire/internal/geom"
	"spire/internal/graphalg"
)

// ErrNonFinite reports that non-finite coordinates reached a fitting
// routine whose callers should have screened them out; it guards the
// Dijkstra fit against NaN/Inf edge weights that would corrupt the chosen
// path silently.
var ErrNonFinite = errors.New("core: non-finite sample coordinates reached fitting")

// isFinite reports whether x is neither NaN nor ±Inf.
func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// fitRight implements the right-region fitting algorithm (paper §III-D,
// Fig. 6). It receives the finite samples at or beyond the peak intensity
// (the peak included) and, optionally, the best sample at I = +Inf, and
// returns the chosen breakpoints (ascending, finite) plus the tail level
// that bounds intensities beyond the last breakpoint.
//
// The algorithm:
//  1. Extract the Pareto front maximizing intensity and throughput; other
//     samples cannot be touched by a valid decreasing concave-up fit.
//  2. Build a graph whose vertices are ordered front pairs (J, I) — "the
//     segment from J down-right of I" — with edges (J,I) -> (I,H) when the
//     I->H segment is steeper (keeping the fit concave-up), weighted by the
//     squared overestimation error of the I->H segment over skipped front
//     members. Start feeds the rightmost node (the I=+Inf sample, or the
//     rightmost finite front member standing in for the paper's "dummy S");
//     every vertex has an edge to End, representing the special horizontal
//     segment at the peak level that reaches the leftmost front member E —
//     the paper's "minor exception to the concave-up rule".
//  3. Dijkstra's shortest path from Start to End selects the minimum
//     total-squared-error fit.
func fitRight(right []geom.Point, inf *geom.Point) (chain []geom.Point, tail float64, err error) {
	// Entry guard: every finite input must have finite coordinates and the
	// optional +Inf sample a finite throughput. NaN/Inf here would become
	// NaN edge weights inside Dijkstra and silently corrupt the fit.
	for _, p := range right {
		if !isFinite(p.X) || !isFinite(p.Y) {
			return nil, 0, ErrNonFinite
		}
	}
	if inf != nil && !isFinite(inf.Y) {
		return nil, 0, ErrNonFinite
	}
	front := geom.ParetoFront(right)
	if len(front) == 0 {
		if inf != nil {
			return nil, inf.Y, nil
		}
		return nil, math.NaN(), nil
	}
	peakY := front[0].Y
	if inf != nil && inf.Y >= peakY {
		// The best sample overall never fired the metric: the bound
		// beyond the peak is that sample's throughput.
		return nil, inf.Y, nil
	}
	if inf != nil {
		// Front members dominated by the I=+Inf sample are unreachable
		// by a decreasing fit that must also stay above it.
		kept := front[:0]
		for _, p := range front {
			if p.Y > inf.Y {
				kept = append(kept, p)
			}
		}
		front = kept
		if len(front) == 0 {
			return nil, inf.Y, nil
		}
	}
	if len(front) == 1 && inf == nil {
		return nil, front[0].Y, nil
	}

	m := len(front) // finite front members, ascending X
	nNodes := m     // node ids 0..m-1 are front members
	infNode := -1   // id of the +Inf node, when present
	if inf != nil {
		infNode = m
		nNodes = m + 1
	}
	rightmost := nNodes - 1

	// Precompute per-ordered-pair (j > i) chord validity, error, and
	// slope. A chord from the +Inf node is horizontal at the finite
	// endpoint's level.
	type chordInfo struct {
		valid bool
		err   float64
		slope float64
	}
	tol := 1e-9 * (1 + math.Abs(peakY))
	chords := make([][]chordInfo, nNodes)
	for j := 1; j < nNodes; j++ {
		chords[j] = make([]chordInfo, j)
		for i := 0; i < j; i++ {
			ci := &chords[j][i]
			if j == infNode {
				// Horizontal segment at front[i].Y covering
				// [front[i].X, +Inf). Always on or above the
				// descending front; error counts skipped members
				// plus the +Inf sample itself.
				ci.valid = true
				ci.slope = 0
				for k := i + 1; k < m; k++ {
					d := front[i].Y - front[k].Y
					ci.err += d * d
				}
				d := front[i].Y - inf.Y
				ci.err += d * d
				continue
			}
			a, b := front[i], front[j]
			slope := geom.Slope(a, b)
			valid := true
			var errSum float64
			for k := i + 1; k < j; k++ {
				lineY := a.Y + slope*(front[k].X-a.X)
				d := lineY - front[k].Y
				if d < -tol {
					valid = false
					break
				}
				errSum += d * d
			}
			ci.valid = valid
			ci.err = errSum
			ci.slope = slope
		}
	}

	// Horizontal "End" segment error: the peak-level horizontal line
	// from E = front[0] to front[i] overestimates the skipped members and
	// the sample it drops down to; counting the latter makes ties resolve
	// toward continuous fits that actually reach E with a segment.
	endErr := func(i int) float64 {
		var e float64
		for k := 1; k <= i; k++ {
			d := peakY - front[k].Y
			e += d * d
		}
		return e
	}

	// Vertex layout: id(j,i) = j*nNodes + i for j > i, plus Start/End.
	start := nNodes * nNodes
	end := start + 1
	g := graphalg.NewGraph(end + 1)
	vid := func(j, i int) int { return j*nNodes + i }

	for i := 0; i < rightmost; i++ {
		if chords[rightmost][i].valid {
			g.AddEdge(start, vid(rightmost, i), chords[rightmost][i].err)
		}
	}
	for j := 1; j < nNodes; j++ {
		for i := 0; i < j; i++ {
			if !chords[j][i].valid {
				continue
			}
			v := vid(j, i)
			// Continue leftward with a steeper (or equal) segment.
			for h := 0; h < i; h++ {
				if chords[i][h].valid && chords[i][h].slope <= chords[j][i].slope+tol {
					g.AddEdge(v, vid(i, h), chords[i][h].err)
				}
			}
			// Finish via the horizontal peak segment (free if the
			// path already reached E).
			if i == 0 {
				g.AddEdge(v, end, 0)
			} else {
				g.AddEdge(v, end, endErr(i))
			}
		}
	}

	path, _, sperr := g.ShortestPath(start, end)
	if sperr != nil {
		// Unreachable only if the rightmost node has no valid chord,
		// which cannot happen (adjacent chords are always valid), but
		// fall back to a flat bound defensively.
		if inf != nil {
			return nil, front[m-1].Y, nil
		}
		return nil, peakY, nil
	}

	// path = [Start, (rightmost,i1), (i1,i2), ..., (ik-1,ik), End].
	// Chosen nodes descending: rightmost, i1, ..., ik.
	var nodes []int
	for idx, v := range path {
		if v == start || v == end {
			continue
		}
		j, i := v/nNodes, v%nNodes
		if idx == 1 {
			nodes = append(nodes, j)
		}
		nodes = append(nodes, i)
	}
	// Convert to ascending finite breakpoints.
	for k := len(nodes) - 1; k >= 0; k-- {
		if nodes[k] == infNode {
			continue
		}
		chain = append(chain, front[nodes[k]])
	}
	if len(chain) == 0 {
		if inf != nil {
			return nil, inf.Y, nil
		}
		return nil, peakY, nil
	}
	return chain, chain[len(chain)-1].Y, nil
}
