package core

import (
	"fmt"
	"math"

	"spire/internal/geom"
)

// Roofline is one metric's piecewise-linear throughput upper bound
// (paper §III-B). It is split at the highest-throughput training sample
// ("the peak"): to the left the bound is increasing and concave-down (the
// metric behaves as negatively associated with performance), to the right
// it is decreasing and concave-up (positively associated), except for the
// special horizontal segment at the peak allowed by the right-fitting
// algorithm.
type Roofline struct {
	// Metric names the performance counter event this roofline bounds.
	Metric string `json:"metric"`

	// Left holds the left-region breakpoints, ascending in intensity,
	// ending at the peak. The bound is evaluated from the origin (0,0)
	// through these points. Always non-empty for a fitted model.
	Left []geom.Point `json:"left"`

	// Right holds the right-region breakpoints chosen by the Pareto +
	// shortest-path fit, ascending in intensity, all finite. It may be
	// empty (no samples beyond the peak), and its first point may be the
	// peak itself (fully continuous fit) or lie beyond it, in which case
	// the bound is the horizontal peak level until the first right
	// breakpoint is reached (the paper's "special horizontal segment").
	Right []geom.Point `json:"right"`

	// TailY is the bound for intensities beyond the last right
	// breakpoint, including I = +Inf. It equals the last right
	// breakpoint's throughput, or the peak throughput when Right is
	// empty.
	TailY float64 `json:"tailY"`

	// TrainingSamples is the number of valid samples the model was
	// fitted on.
	TrainingSamples int `json:"trainingSamples"`
}

// Peak returns the split point: the highest-throughput training sample.
func (r *Roofline) Peak() geom.Point {
	if len(r.Left) == 0 {
		return geom.Point{}
	}
	return r.Left[len(r.Left)-1]
}

// Eval returns the maximum-throughput estimate for operational intensity
// i. NaN inputs yield NaN. Negative intensities are clamped to zero.
func (r *Roofline) Eval(i float64) float64 {
	if math.IsNaN(i) {
		return math.NaN()
	}
	if len(r.Left) == 0 {
		return math.NaN()
	}
	if i < 0 {
		i = 0
	}
	peak := r.Peak()
	if i <= peak.X {
		return evalChainFromOrigin(r.Left, i)
	}
	if len(r.Right) == 0 {
		return r.TailY
	}
	first := r.Right[0]
	if i < first.X {
		// Horizontal segment at peak level up to the first chosen
		// right-region sample (right-continuous step at first.X).
		return peak.Y
	}
	last := r.Right[len(r.Right)-1]
	if i >= last.X {
		return r.TailY
	}
	// Interpolate within the right chain.
	lo, hi := 0, len(r.Right)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if r.Right[mid].X <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := r.Right[lo], r.Right[hi]
	return lerpSeg(a.X, a.Y, b.X, b.Y, i)
}

// lerpSeg interpolates one segment at i and clamps the result into the
// segment's endpoint range. With t in [0,1] the true value always lies
// between the endpoints, but when |y1-y0| dwarfs the result the final
// add cancels catastrophically and can escape the range entirely —
// FuzzSurfaceParams found a surface whose ceiling evaluated to 0
// against an envelope floor of 48, which would have clipped the
// reported bound to garbage. The clamp is a no-op whenever the
// arithmetic stays in range, so normal outputs are bit-unchanged, and
// NaN results pass through (comparisons with NaN are false).
func lerpSeg(x0, y0, x1, y1, i float64) float64 {
	t := (i - x0) / (x1 - x0)
	y := y0 + t*(y1-y0)
	lo, hi := y0, y1
	if lo > hi {
		lo, hi = hi, lo
	}
	if y < lo {
		return lo
	}
	if y > hi {
		return hi
	}
	return y
}

// evalChainFromOrigin interpolates the left chain with an implicit (0,0)
// origin breakpoint.
func evalChainFromOrigin(chain []geom.Point, i float64) float64 {
	prev := geom.Point{X: 0, Y: 0}
	for _, p := range chain {
		if i <= p.X {
			if p.X == prev.X {
				return p.Y
			}
			return lerpSeg(prev.X, prev.Y, p.X, p.Y, i)
		}
		prev = p
	}
	return prev.Y
}

// CorruptSampleError identifies a sample rejected by strict fitting: one
// whose values (NaN/Inf, non-positive period, negative counts) would
// poison a fitted model.
type CorruptSampleError struct {
	// Metric is the metric being fitted.
	Metric string
	// Index is the sample's position in the slice passed to fitting.
	Index int
	// Sample is the offending sample verbatim.
	Sample Sample
}

// Error renders the rejection with the sample's values.
func (e *CorruptSampleError) Error() string {
	return fmt.Sprintf("core: corrupt sample for metric %q at index %d: %s",
		e.Metric, e.Index, e.Sample)
}

// FitRooflineStrict fits like FitRoofline but rejects the whole fit with a
// *CorruptSampleError naming the first invalid sample, instead of silently
// dropping invalid samples. Use it when corrupt input should be surfaced
// rather than tolerated (the CLI's -strict ingestion mode).
func FitRooflineStrict(metric string, samples []Sample) (*Roofline, error) {
	for i, s := range samples {
		if !s.Valid() {
			return nil, &CorruptSampleError{Metric: metric, Index: i, Sample: s}
		}
	}
	return FitRoofline(metric, samples)
}

// FitRoofline trains a roofline for one metric from its samples (paper
// §III-D). Invalid samples (NaN/Inf values, non-positive periods, negative
// counts) are dropped so a single corrupt sample cannot poison the model;
// use FitRooflineStrict to reject them loudly instead. ErrNoSamples is
// returned when no valid sample remains.
func FitRoofline(metric string, samples []Sample) (*Roofline, error) {
	var finite []geom.Point
	infY := math.Inf(-1) // best throughput among I = +Inf samples
	hasInf := false
	n := 0
	for _, s := range samples {
		if !s.Valid() {
			continue
		}
		p := s.Point()
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			continue
		}
		n++
		if math.IsInf(p.X, 1) {
			hasInf = true
			if p.Y > infY {
				infY = p.Y
			}
			continue
		}
		finite = append(finite, p)
	}
	if n == 0 {
		return nil, ErrNoSamples
	}
	r := &Roofline{Metric: metric, TrainingSamples: n}
	if len(finite) == 0 {
		// All samples had M = 0: the metric never fired. The bound is
		// the constant best observed throughput.
		r.Left = []geom.Point{{X: 0, Y: infY}}
		r.TailY = infY
		return r, nil
	}

	// Split at the highest-throughput finite sample.
	peak := finite[geom.MaxY(finite)]

	// Left region: convex-hull fit from the origin (paper Fig. 5).
	r.Left = geom.UpperHullFromOrigin(finite)

	// Right region: Pareto + shortest-path fit (paper Fig. 6) over the
	// samples at or beyond the peak, plus any I = +Inf samples.
	var right []geom.Point
	for _, p := range finite {
		if p.X >= peak.X {
			right = append(right, p)
		}
	}
	var inf *geom.Point
	if hasInf {
		inf = &geom.Point{X: math.Inf(1), Y: infY}
	}
	chain, tail, err := fitRight(right, inf)
	if err != nil {
		return nil, fmt.Errorf("core: fitting right region of %q: %w", metric, err)
	}
	r.Right = chain
	r.TailY = tail
	return r, nil
}

// CheckInvariants verifies the structural properties the paper requires of
// a fitted roofline and returns a descriptive error on the first
// violation. Used heavily by tests.
func (r *Roofline) CheckInvariants() error {
	if len(r.Left) == 0 {
		return fmt.Errorf("roofline %s: empty left chain", r.Metric)
	}
	prev := geom.Point{X: 0, Y: 0}
	prevSlope := math.Inf(1)
	for i, p := range r.Left {
		if p.X < prev.X || (p.X == prev.X && i > 0) {
			return fmt.Errorf("roofline %s: left chain not ascending at %d", r.Metric, i)
		}
		if p.Y < prev.Y {
			return fmt.Errorf("roofline %s: left chain decreasing at %d", r.Metric, i)
		}
		if p.X > prev.X {
			s := geom.Slope(prev, p)
			if s > prevSlope+1e-9*(1+math.Abs(prevSlope)) {
				return fmt.Errorf("roofline %s: left chain not concave-down at %d (slope %g after %g)", r.Metric, i, s, prevSlope)
			}
			prevSlope = s
		}
		prev = p
	}
	peak := r.Peak()
	if len(r.Right) > 0 {
		if r.Right[0].X < peak.X {
			return fmt.Errorf("roofline %s: right chain starts before peak", r.Metric)
		}
		if r.Right[0].Y > peak.Y+1e-9*(1+peak.Y) {
			return fmt.Errorf("roofline %s: right chain starts above peak", r.Metric)
		}
		prev = r.Right[0]
		prevSlope = math.Inf(-1)
		for i, p := range r.Right[1:] {
			if p.X <= prev.X {
				return fmt.Errorf("roofline %s: right chain not ascending at %d", r.Metric, i+1)
			}
			if p.Y > prev.Y+1e-9*(1+math.Abs(prev.Y)) {
				return fmt.Errorf("roofline %s: right chain increasing at %d", r.Metric, i+1)
			}
			s := geom.Slope(prev, p)
			if s < prevSlope-1e-9*(1+math.Abs(prevSlope)) {
				return fmt.Errorf("roofline %s: right chain not concave-up at %d (slope %g after %g)", r.Metric, i+1, s, prevSlope)
			}
			prevSlope = s
			prev = p
		}
		if math.Abs(r.TailY-r.Right[len(r.Right)-1].Y) > 1e-9*(1+math.Abs(r.TailY)) {
			return fmt.Errorf("roofline %s: tail %g does not match last right breakpoint %g", r.Metric, r.TailY, r.Right[len(r.Right)-1].Y)
		}
	}
	return nil
}

// Region identifies where an operational intensity falls relative to a
// roofline's peak, which determines how the metric relates to
// performance there (paper §III-B's qualitative trends).
type Region uint8

const (
	// RegionLeft: below the peak intensity — the metric behaves as
	// negatively associated with performance (more work per event
	// raises the bound), so reducing the event's rate should help.
	RegionLeft Region = iota
	// RegionPeak: at (or very near) the peak.
	RegionPeak
	// RegionRight: beyond the peak — the metric behaves as positively
	// associated with performance (the event accompanies fast
	// execution); the event becoming rarer accompanies lower bounds.
	RegionRight
)

// String names the region.
func (r Region) String() string {
	switch r {
	case RegionLeft:
		return "left"
	case RegionPeak:
		return "peak"
	case RegionRight:
		return "right"
	}
	return "?"
}

// Region classifies an operational intensity against the fitted peak,
// with a 2% relative band counted as "at the peak". NaN maps to the
// peak (no information).
func (r *Roofline) Region(i float64) Region {
	if len(r.Left) == 0 || math.IsNaN(i) {
		return RegionPeak
	}
	peak := r.Peak()
	lo := peak.X * 0.98
	hi := peak.X * 1.02
	switch {
	case i < lo:
		return RegionLeft
	case i > hi:
		return RegionRight
	default:
		return RegionPeak
	}
}
