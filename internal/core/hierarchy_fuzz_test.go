package core

// Fuzzers for the hierarchy extension. FuzzHierarchyEval throws hostile
// hierarchies (duplicate/empty levels, unmodeled metrics) and hostile
// workloads (raw float bit patterns: NaN, infinities, denormals) at the
// estimation path and re-derives every reported invariant from scratch.
// FuzzSurfaceParams does the same for parameterized surfaces: hostile
// breakpoint orderings, crossing ceilings, duplicate abscissae, and
// degenerate parameter recoveries.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"math"
	"testing"
)

// fuzzReader walks raw bytes, yielding values for model construction.
type fuzzReader struct {
	raw []byte
	i   int
}

func (r *fuzzReader) byte() byte {
	if r.i >= len(r.raw) {
		return 0
	}
	b := r.raw[r.i]
	r.i++
	return b
}

// float yields a hostile float64: raw bit patterns produce NaNs,
// infinities and denormals for free; short tails degrade to small ints.
func (r *fuzzReader) float() float64 {
	if r.i+8 <= len(r.raw) {
		v := math.Float64frombits(binary.LittleEndian.Uint64(r.raw[r.i:]))
		r.i += 8
		return v
	}
	return float64(r.byte())
}

var fuzzLevelNames = []string{"L1", "L2", "L3", "DRAM", "", "L1"}
var fuzzLevelMetrics = []string{"lvl.a", "lvl.b", "lvl.c", "lvl.d", "unmodeled.event", "lvl.a"}

// fuzzHierarchy decodes a (possibly structurally invalid) hierarchy.
func fuzzHierarchy(r *fuzzReader) *HierarchyModel {
	h := &HierarchyModel{}
	nLevels := int(r.byte()) % 6
	for i := 0; i < nLevels; i++ {
		h.Levels = append(h.Levels, HierarchyLevel{
			Level:  fuzzLevelNames[int(r.byte())%len(fuzzLevelNames)],
			Metric: fuzzLevelMetrics[int(r.byte())%len(fuzzLevelMetrics)],
		})
	}
	nSurf := int(r.byte()) % 3
	for i := 0; i < nSurf; i++ {
		s := Surface{Param: []string{"param.p", "lvl.a", "param.p"}[int(r.byte())%3]}
		nPts := int(r.byte()) % 4
		for j := 0; j < nPts; j++ {
			s.Points = append(s.Points, SurfacePoint{Param: r.float(), Ceiling: r.float()})
		}
		h.Surfaces = append(h.Surfaces, s)
	}
	return h
}

// fuzzWorkload decodes a workload whose values are hostile floats.
func fuzzWorkload(r *fuzzReader) Dataset {
	pool := append(append([]string(nil), fuzzLevelMetrics...), "param.p")
	var d Dataset
	n := int(r.byte()) % 12
	for i := 0; i < n; i++ {
		d.Add(Sample{
			Metric: pool[int(r.byte())%len(pool)],
			T:      r.float(),
			W:      r.float(),
			M:      r.float(),
		})
	}
	return d
}

// fuzzFlatEnsemble trains a flat model over the level metrics from
// byte-derived (but well-formed) samples; nil if the fitter rejects it.
func fuzzFlatEnsemble(r *fuzzReader) *Ensemble {
	var d Dataset
	n := 4 + int(r.byte())%12
	for i := 0; i < n; i++ {
		d.Add(Sample{
			Metric: fuzzLevelMetrics[i%4],
			T:      1 + float64(r.byte()%8),
			W:      float64(r.byte()) * 1.5,
			M:      float64(r.byte()) / 3,
		})
	}
	ens, err := Train(d, TrainOptions{})
	if err != nil {
		return nil
	}
	return ens
}

// FuzzHierarchyEval: hostile hierarchies and workloads must never panic,
// never perturb the flat estimation fields, honor the degenerate rule,
// and report a binding level and refined bound that re-derive exactly
// from the per-level rows.
func FuzzHierarchyEval(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 0, 1, 1, 2, 2, 0, 4, 10, 20, 3, 1, 30, 2, 2, 8, 15, 1, 3, 9, 40, 2})
	// NaN workload values: a quiet-NaN bit pattern inside the sample region.
	f.Add(append([]byte{0, 0, 2, 4, 10, 2, 1, 20, 1, 2, 5, 3, 0, 3, 0},
		0, 0, 0, 0, 0, 0, 0xf8, 0x7f, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0x40))
	// Duplicate levels and an unmodeled metric.
	f.Add([]byte{4, 0, 0, 0, 0, 1, 4, 2, 2, 0, 6, 10, 2, 1, 20, 1, 2, 5, 3, 1, 30, 1, 4, 2, 2, 5, 1, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := &fuzzReader{raw: raw}
		flat := fuzzFlatEnsemble(r)
		if flat == nil {
			return
		}
		h := fuzzHierarchy(r)
		hier := &Ensemble{
			Rooflines: flat.Rooflines,
			WorkUnit:  flat.WorkUnit,
			TimeUnit:  flat.TimeUnit,
			Hierarchy: h,
		}
		w := fuzzWorkload(r)
		workers := 1 + int(r.byte())%4

		wantEst, wantErr := flat.Estimate(w)
		gotEst, gotErr := hier.Estimate(w)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: hier %v, flat %v", gotErr, wantErr)
		}
		if gotErr != nil {
			return
		}

		// The flat fields are untouched: strip the hierarchy and compare
		// bytes against the flat model's estimation.
		stripped := *gotEst
		stripped.Hierarchy = nil
		gb, _ := json.Marshal(&stripped)
		wb, _ := json.Marshal(wantEst)
		if !bytes.Equal(gb, wb) {
			t.Fatalf("hierarchy perturbed flat fields:\nhier: %s\nflat: %s", gb, wb)
		}

		// The batch path agrees with the scalar path byte for byte.
		var batch Estimation
		if err := hier.BatchEstimateInto(context.Background(), IndexWorkload(w),
			EstimateOptions{Workers: workers}, &batch); err != nil {
			t.Fatalf("batch errored where scalar succeeded: %v", err)
		}
		bb, _ := json.Marshal(&batch)
		sb, _ := json.Marshal(gotEst)
		if !bytes.Equal(bb, sb) {
			t.Fatalf("batch (workers=%d) diverged:\nbatch:  %s\nscalar: %s", workers, bb, sb)
		}

		// Degenerate rule: a hierarchy appears iff >= 2 level rows matched
		// the ranking (duplicate level entries count twice, as the
		// implementation defines).
		found := 0
		for _, lv := range h.Levels {
			if findPerMetric(gotEst.PerMetric, lv.Metric) >= 0 {
				found++
			}
		}
		he := gotEst.Hierarchy
		if (found >= 2) != (he != nil) {
			t.Fatalf("degenerate rule violated: %d level rows matched, hierarchy=%v", found, he != nil)
		}
		if he == nil {
			return
		}

		// Binding re-derivation: strict less-than over the reported rows,
		// first-row fallback when nothing compares below +Inf — or when
		// the winner carries an empty level name (only reachable through
		// hierarchies that fail Validate; estimation tolerates them).
		bits := math.Float64bits
		bind := -1
		bindEst := math.Inf(1)
		for i, lv := range he.Levels {
			if lv.MeanEstimate < bindEst {
				bindEst = lv.MeanEstimate
				bind = i
			}
		}
		if bind < 0 || he.Levels[bind].Level == "" {
			bind = 0
			bindEst = he.Levels[0].MeanEstimate
		}
		if he.BindingLevel != he.Levels[bind].Level || he.BindingMetric != he.Levels[bind].Metric ||
			bits(he.BindingEstimate) != bits(bindEst) {
			t.Fatalf("binding re-derivation: got (%s, %s, %v), want row %d of %+v",
				he.BindingLevel, he.BindingMetric, he.BindingEstimate, bind, he.Levels)
		}

		// Bound re-derivation: MaxThroughput clipped by every reported
		// surface ceiling that compares below it (NaN never does).
		bound := gotEst.MaxThroughput
		for _, s := range he.Surfaces {
			if s.Ceiling < bound {
				bound = s.Ceiling
			}
		}
		if bits(he.BoundThroughput) != bits(bound) {
			t.Fatalf("bound re-derivation: got %v, want %v", he.BoundThroughput, bound)
		}
	})
}

// FuzzSurfaceParams: hostile surface shapes must never panic validation
// or estimation; surfaces that pass validation must evaluate inside
// their own ceiling envelope, propagate NaN parameters as NaN ceilings,
// and survive a model save/load byte-identically.
func FuzzSurfaceParams(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 3, 10, 0, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0, 20, 3, 2, 1, 5, 9, 2})
	// Duplicate breakpoints at the same abscissa with crossing ceilings.
	f.Add(append([]byte{1, 0, 2},
		0, 0, 0, 0, 0, 0, 0xe0, 0x3f, 0, 0, 0, 0, 0, 0, 0x10, 0x40, // (0.5, 4)
		0, 0, 0, 0, 0, 0, 0xe0, 0x3f, 0, 0, 0, 0, 0, 0, 0xf0, 0x3f, // (0.5, 1)
		3, 2, 1, 5))
	// Descending params (invalid) and a NaN ceiling.
	f.Add(append([]byte{2, 0, 2,
		0, 0, 0, 0, 0, 0, 0xf0, 0x3f, 0, 0, 0, 0, 0, 0, 0, 0x40,
		0, 0, 0, 0, 0, 0, 0xe0, 0x3f, 0, 0, 0, 0, 0, 0, 0xf8, 0x7f,
		2, 1},
		1, 0, 0, 0, 0, 0, 0, 0))
	f.Fuzz(func(t *testing.T, raw []byte) {
		r := &fuzzReader{raw: raw}
		h := &HierarchyModel{Levels: []HierarchyLevel{
			{Level: "L1", Metric: "lvl.a"},
			{Level: "L2", Metric: "lvl.b"},
		}}
		nSurf := 1 + int(r.byte())%2
		for i := 0; i < nSurf; i++ {
			s := Surface{Param: []string{"param.p", "param.q"}[i]}
			if r.byte()%4 == 0 {
				s.Param = "param.p" // hostile: duplicate param metric
			}
			nPts := int(r.byte()) % 5
			for j := 0; j < nPts; j++ {
				s.Points = append(s.Points, SurfacePoint{Param: r.float(), Ceiling: r.float()})
			}
			h.Surfaces = append(h.Surfaces, s)
		}
		valid := h.Validate() == nil

		ens := &Ensemble{
			Rooflines: map[string]*Roofline{},
			WorkUnit:  "instructions",
			TimeUnit:  "cycles",
			Hierarchy: h,
		}
		for metric, beta := range map[string]float64{"lvl.a": 64, "lvl.b": 16} {
			rl, err := BandwidthRoofline(metric, 4, beta, 64)
			if err != nil {
				t.Fatal(err)
			}
			ens.Rooflines[metric] = rl
		}

		// Both level metrics carry traffic so the hierarchy attaches; the
		// param samples are hostile.
		d := Dataset{}
		d.Add(
			Sample{Metric: "lvl.a", T: 1e6, W: 2e6, M: 1000},
			Sample{Metric: "lvl.b", T: 1e6, W: 2e6, M: 4e5},
		)
		nParam := int(r.byte()) % 4
		for i := 0; i < nParam; i++ {
			d.Add(Sample{
				Metric: []string{"param.p", "param.q"}[int(r.byte())%2],
				T:      r.float(),
				W:      r.float(),
				M:      r.float(),
			})
		}

		est, err := ens.Estimate(d)
		if err != nil {
			t.Fatalf("estimate errored: %v", err)
		}
		he := est.Hierarchy
		if he == nil {
			t.Fatal("two measured levels but no hierarchy attached")
		}
		for _, se := range he.Surfaces {
			var src *Surface
			for i := range h.Surfaces {
				if h.Surfaces[i].Param == se.Param {
					src = &h.Surfaces[i]
					break
				}
			}
			if src == nil {
				t.Fatalf("surface estimate for unknown param %q", se.Param)
			}
			if !valid {
				continue
			}
			if math.IsNaN(se.ParamValue) {
				if !math.IsNaN(se.Ceiling) {
					t.Fatalf("NaN parameter produced ceiling %v", se.Ceiling)
				}
				continue
			}
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, p := range src.Points {
				lo = math.Min(lo, p.Ceiling)
				hi = math.Max(hi, p.Ceiling)
			}
			if math.IsNaN(se.Ceiling) || se.Ceiling < lo-1e-9 || se.Ceiling > hi+1e-9 {
				t.Fatalf("ceiling %v escapes surface envelope [%v, %v] at param %v",
					se.Ceiling, lo, hi, se.ParamValue)
			}
		}

		// A structurally valid model survives save/load with its surfaces
		// intact and estimates byte-identically afterwards.
		if !valid {
			return
		}
		var buf bytes.Buffer
		if err := ens.Save(&buf); err != nil {
			t.Fatalf("valid hierarchy failed to save: %v", err)
		}
		back, err := LoadEnsemble(&buf)
		if err != nil {
			t.Fatalf("valid hierarchy failed to load: %v", err)
		}
		if back.Hierarchy == nil || len(back.Hierarchy.Surfaces) != len(h.Surfaces) {
			t.Fatalf("surfaces lost in round trip: %+v", back.Hierarchy)
		}
		est2, err := back.Estimate(d)
		if err != nil {
			t.Fatal(err)
		}
		b1, _ := json.Marshal(est)
		b2, _ := json.Marshal(est2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("reloaded model estimates differently:\nbefore: %s\nafter:  %s", b1, b2)
		}
	})
}
