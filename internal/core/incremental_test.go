package core

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// windowedWorkload builds a workload whose samples carry nondecreasing
// window tags 1..windows, mimicking interval ingestion.
func windowedWorkload(rng *rand.Rand, windows int) Dataset {
	names := []string{"alpha", "beta", "gamma", "delta", "unmodeled.event"}
	var d Dataset
	for w := 1; w <= windows; w++ {
		n := rng.Intn(8)
		for i := 0; i < n; i++ {
			s := Sample{
				Metric: names[rng.Intn(len(names))],
				T:      float64(1 + rng.Intn(6)),
				W:      float64(rng.Intn(30)),
				M:      float64(rng.Intn(6)),
				Window: w,
			}
			if rng.Intn(12) == 0 {
				s.T = -s.T // invalid, must be dropped
			}
			d.Add(s)
		}
	}
	return d
}

// indexesEqual asserts that two workload indexes hold identical contents.
func indexesEqual(t *testing.T, got, want *WorkloadIndex) {
	t.Helper()
	if !reflect.DeepEqual(got.Metrics(), want.Metrics()) {
		t.Fatalf("metrics %v != %v", got.Metrics(), want.Metrics())
	}
	for _, m := range want.Metrics() {
		g, w := got.groups[m], want.groups[m]
		if !reflect.DeepEqual(g.t, w.t) || !reflect.DeepEqual(g.w, w.w) ||
			!reflect.DeepEqual(g.window, w.window) {
			t.Fatalf("metric %s columns diverge:\n got %+v %+v %+v\nwant %+v %+v %+v",
				m, g.t, g.w, g.window, w.t, w.w, w.window)
		}
		for i := range w.intens {
			if g.intens[i] != w.intens[i] &&
				!(math.IsNaN(g.intens[i]) && math.IsNaN(w.intens[i])) {
				t.Fatalf("metric %s intensity[%d] %g != %g", m, i, g.intens[i], w.intens[i])
			}
		}
	}
}

// TestIncrementalIndexMatchesIndexWorkload: adding samples in dataset
// order must reproduce IndexWorkload exactly, for many random workloads.
func TestIncrementalIndexMatchesIndexWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for it := 0; it < 200; it++ {
		d := windowedWorkload(rng, 1+rng.Intn(6))
		inc := NewIncrementalIndex()
		added := inc.Add(d.Samples...)
		want := IndexWorkload(d)
		if added != want.Len() || inc.Len() != want.Len() {
			t.Fatalf("Add kept %d (Len %d), IndexWorkload holds %d", added, inc.Len(), want.Len())
		}
		indexesEqual(t, inc.Snapshot(), want)
	}
}

// TestIncrementalIndexEviction: evicting a window prefix must leave
// exactly the index a fresh IndexWorkload builds over the survivors, and
// metrics without survivors must vanish.
func TestIncrementalIndexEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for it := 0; it < 200; it++ {
		d := windowedWorkload(rng, 2+rng.Intn(8))
		inc := NewIncrementalIndex()
		inc.Add(d.Samples...)
		cut := 1 + rng.Intn(8)
		before := inc.Len()
		evicted := inc.EvictBefore(cut)
		keep := d.Filter(func(s Sample) bool { return s.Window >= cut })
		want := IndexWorkload(keep)
		if inc.Len() != want.Len() || before-evicted != want.Len() {
			t.Fatalf("cut=%d: Len %d (evicted %d of %d), want %d",
				cut, inc.Len(), evicted, before, want.Len())
		}
		indexesEqual(t, inc.Snapshot(), want)
	}
}

// TestIncrementalIndexSnapshotImmutable: a snapshot taken mid-stream must
// keep estimating identically while the live index grows and evicts.
func TestIncrementalIndexSnapshotImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ens, err := Train(randMultiMetricDataset(rng, 4), TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	d := windowedWorkload(rng, 4)
	inc := NewIncrementalIndex()
	inc.Add(d.Samples...)
	snap := inc.Snapshot()
	baseline, err := ens.BatchEstimate(ctx, snap, EstimateOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for w := 5; w <= 40; w++ {
		more := windowedWorkload(rng, 1)
		for i := range more.Samples {
			more.Samples[i].Window = w
		}
		inc.Add(more.Samples...)
		inc.EvictBefore(w - 2)
		est, err := ens.BatchEstimate(ctx, snap, EstimateOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(est)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("window %d mutated a published snapshot:\n got %s\nwant %s", w, got, want)
		}
	}
}

// TestIncrementalIndexInvalidAndAccessors: invalid samples are dropped on
// Add, and the accessors stay consistent through eviction to empty.
func TestIncrementalIndexInvalidAndAccessors(t *testing.T) {
	inc := NewIncrementalIndex()
	kept := inc.Add(
		Sample{Metric: "b", T: 1, W: 2, M: 1, Window: 1},
		Sample{Metric: "a", T: -1, W: 2, M: 1, Window: 1},
		Sample{Metric: "a", T: 2, W: math.NaN(), M: 1, Window: 1},
		Sample{Metric: "a", T: 1, W: 4, M: 2, Window: 2},
	)
	if kept != 2 || inc.Len() != 2 {
		t.Fatalf("kept %d (Len %d), want 2", kept, inc.Len())
	}
	if got := inc.Metrics(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("metrics %v, want [a b]", got)
	}
	if n := inc.EvictBefore(2); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if got := inc.Metrics(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("metrics after eviction %v, want [a]", got)
	}
	if n := inc.EvictBefore(100); n != 1 || inc.Len() != 0 || len(inc.Metrics()) != 0 {
		t.Fatalf("final eviction: n=%d Len=%d metrics=%v", n, inc.Len(), inc.Metrics())
	}
	if inc.Add(Sample{Metric: "c", T: 1, W: 1, M: 1, Window: 101}) != 1 {
		t.Fatal("index unusable after draining")
	}
}
