package core

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenDataset deterministically builds the golden fixture dataset: three
// metrics with distinct shapes (a full left+right roofline, a never-fires
// metric, a thin metric) plus a couple of corrupt rows that training must
// drop. It uses a hand-rolled LCG so the fixture can be regenerated
// identically forever, independent of math/rand.
func goldenDataset() Dataset {
	var d Dataset
	state := uint32(0xC0FFEE)
	next := func(n int) float64 {
		state = state*1664525 + 1013904223
		return float64((state >> 16) % uint32(n))
	}
	for i := 0; i < 48; i++ {
		d.Add(Sample{
			Metric: "cache.misses",
			T:      1000,
			W:      600 + 25*next(40),
			M:      1 + next(200),
			Window: i + 1,
		})
	}
	for i := 0; i < 24; i++ {
		d.Add(Sample{
			Metric: "port5.uops",
			T:      1000,
			W:      400 + 30*next(30),
			M:      0, // never fires: I = +Inf throughout
			Window: i + 1,
		})
	}
	for i := 0; i < 8; i++ {
		d.Add(Sample{
			Metric: "dtlb.walks",
			T:      500 + 100*next(5),
			W:      300 + 40*next(20),
			M:      2 + next(30),
			Window: i + 1,
		})
	}
	// Corrupt rows: dropped by validity screening, must not shift the fit.
	d.Add(
		Sample{Metric: "cache.misses", T: -4, W: 100, M: 3},
		Sample{Metric: "dtlb.walks", T: 0, W: 7, M: 1},
	)
	return d
}

// TestGoldenTrainReproducesModel trains on the checked-in fixture dataset
// and asserts the encoded ensemble is byte-identical to the checked-in
// golden model — for the serial fit and for several parallel worker
// counts. This pins the entire fit path (grouping, hull, Pareto,
// shortest-path, serialization); run with -update to regenerate after an
// intentional model change.
func TestGoldenTrainReproducesModel(t *testing.T) {
	datasetPath := filepath.Join("testdata", "golden_dataset.json")
	modelPath := filepath.Join("testdata", "golden_model.json")

	if *updateGolden {
		var db bytes.Buffer
		if err := WriteDataset(&db, goldenDataset()); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(datasetPath, db.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		ens, err := Train(goldenDataset(), TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
		if err != nil {
			t.Fatal(err)
		}
		var mb bytes.Buffer
		if err := ens.Save(&mb); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(modelPath, mb.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	df, err := os.Open(datasetPath)
	if err != nil {
		t.Fatalf("open fixture dataset (run with -update to create): %v", err)
	}
	data, err := ReadDataset(df)
	df.Close()
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatalf("read golden model: %v", err)
	}

	for _, workers := range []int{1, 2, 4, 9} {
		ens, rep, err := TrainContext(context.Background(), data,
			TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles", Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Fitted != 3 {
			t.Fatalf("workers=%d: fitted %d metrics, want 3 (%s)", workers, rep.Fitted, rep.Summary())
		}
		var got bytes.Buffer
		if err := ens.Save(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("workers=%d: trained model deviates from golden file.\nIf the fit "+
				"path changed intentionally, regenerate with: go test ./internal/core -run Golden -update\ngot:\n%s\nwant:\n%s",
				workers, got.Bytes(), want)
		}
	}
}

// TestGoldenFixtureIsCurrent guards the fixture generator itself: the
// checked-in dataset must equal what goldenDataset() produces, so the
// golden pair stays regenerable.
func TestGoldenFixtureIsCurrent(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDataset(&buf, goldenDataset()); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_dataset.json"))
	if err != nil {
		t.Fatalf("read fixture dataset (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("goldenDataset() no longer matches testdata/golden_dataset.json; regenerate with -update")
	}
}
