//go:build !race

package core

const raceEnabled = false
