package core

// Backward-compat differential suite for the hierarchy extension: a model
// carrying a single-level hierarchy is semantically a flat roofline model
// (a binding level needs at least two levels to compare), so its output
// must be BYTE-identical to the same model with no hierarchy at all, on
// every workload, through both the scalar and the columnar batch paths.
// This is the freeze that lets hierarchical models roll out without
// perturbing a single existing consumer.

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"
)

// singleLevelHierarchy attaches a randomized one-level hierarchy (and
// sometimes surfaces, which a degenerate estimate must ignore) to a copy
// of the flat ensemble. The copy shares the fitted rooflines but has its
// own lazy evaluator state.
func singleLevelHierarchy(rng *rand.Rand, flat *Ensemble) *Ensemble {
	metrics := append(flat.Metrics(), "unmodeled.event")
	h := &HierarchyModel{
		Levels: []HierarchyLevel{{
			Level:  []string{"L1", "L2", "DRAM", "HBM"}[rng.Intn(4)],
			Metric: metrics[rng.Intn(len(metrics))],
		}},
	}
	if rng.Intn(2) == 0 {
		h.Surfaces = []Surface{{
			Name:  "sparsity",
			Param: metrics[rng.Intn(len(metrics))],
			Points: []SurfacePoint{
				{Param: 0, Ceiling: rng.Float64() * 4},
				{Param: rng.Float64(), Ceiling: rng.Float64()},
			},
		}}
	}
	return &Ensemble{
		Rooflines: flat.Rooflines,
		WorkUnit:  flat.WorkUnit,
		TimeUnit:  flat.TimeUnit,
		Hierarchy: h,
	}
}

func marshalEstimation(t *testing.T, est *Estimation) []byte {
	t.Helper()
	buf, err := json.Marshal(est)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestSingleLevelHierarchyByteParity is the ≥2000-model freeze: across
// randomized trained models, random single-level hierarchies and random
// workloads, the hierarchical model's estimation must serialize to
// exactly the bytes the flat model produces — via Estimate and via
// BatchEstimateInto at every worker count 1–4, including reused
// Estimation values.
func TestSingleLevelHierarchyByteParity(t *testing.T) {
	rng := rand.New(rand.NewSource(20250808))
	ctx := context.Background()

	var hierEst, flatEst Estimation
	models := 0
	for models < 2000 {
		flat, err := Train(randMultiMetricDataset(rng, 1+rng.Intn(4)), TrainOptions{})
		if err != nil {
			continue
		}
		models++
		hier := singleLevelHierarchy(rng, flat)
		w := randWorkload(rng)
		ix := IndexWorkload(w)

		wantEst, wantErr := flat.Estimate(w)
		gotEst, gotErr := hier.Estimate(w)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("model %d: Estimate error mismatch: %v vs %v", models, gotErr, wantErr)
		}
		if wantErr == nil {
			if gotEst.Hierarchy != nil {
				t.Fatalf("model %d: single-level hierarchy leaked into the estimate", models)
			}
			want := marshalEstimation(t, wantEst)
			got := marshalEstimation(t, gotEst)
			if !bytes.Equal(got, want) {
				t.Fatalf("model %d: Estimate bytes diverged\n hier: %s\n flat: %s", models, got, want)
			}
		}

		workers := 1 + models%4
		hErr := hier.BatchEstimateInto(ctx, ix, EstimateOptions{Workers: workers}, &hierEst)
		fErr := flat.BatchEstimateInto(ctx, ix, EstimateOptions{Workers: workers}, &flatEst)
		if (hErr == nil) != (fErr == nil) {
			t.Fatalf("model %d: batch error mismatch: %v vs %v", models, hErr, fErr)
		}
		if hErr != nil {
			continue
		}
		got := marshalEstimation(t, &hierEst)
		want := marshalEstimation(t, &flatEst)
		if !bytes.Equal(got, want) {
			t.Fatalf("model %d (workers %d): batch bytes diverged\n hier: %s\n flat: %s", models, workers, got, want)
		}
	}
}

// TestSingleLevelHierarchyModelRoundTrip: a single-level hierarchy
// survives model save/load (the model keeps its hierarchy — only the
// estimation output degenerates to flat).
func TestSingleLevelHierarchyModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	flat, err := Train(randMultiMetricDataset(rng, 3), TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hier := singleLevelHierarchy(rng, flat)
	var buf bytes.Buffer
	if err := hier.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEnsemble(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hierarchy == nil || len(back.Hierarchy.Levels) != 1 {
		t.Fatalf("hierarchy lost in round trip: %+v", back.Hierarchy)
	}
}
