package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Ensemble is a trained SPIRE model: one roofline per performance metric
// (paper §III-C, Fig. 3). Rooflines are immutable once trained (or
// loaded): every method on a trained ensemble is safe for concurrent use.
type Ensemble struct {
	// Rooflines maps metric name to its fitted roofline.
	Rooflines map[string]*Roofline `json:"rooflines"`
	// WorkUnit and TimeUnit document the throughput units the model was
	// trained with (e.g. "instructions" / "cycles" for IPC). They are
	// informational; SPIRE itself is unit-agnostic as long as training
	// and estimation agree.
	WorkUnit string `json:"workUnit"`
	TimeUnit string `json:"timeUnit"`
	// Hierarchy optionally maps memory-hierarchy levels onto traffic
	// metrics and carries parameterized roofline surfaces (hierarchy.go).
	// Flat models omit it and estimate byte-identically to models that
	// never had the field.
	Hierarchy *HierarchyModel `json:"hierarchy,omitempty"`

	// evalOnce/evals lazily memoize the flattened segment tables
	// BatchEstimate evaluates rooflines through (see batch.go), plus the
	// sorted metric-name list the coverage merge-walk scans and the
	// surface segment tables for the hierarchy's parameterized ceilings.
	evalOnce    sync.Once
	evals       map[string]*chainEval
	sortedNames []string
	surfEvals   []*chainEval
}

// Metrics returns the sorted metric names the ensemble models.
func (e *Ensemble) Metrics() []string {
	names := make([]string, 0, len(e.Rooflines))
	for n := range e.Rooflines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MetricEstimate is a per-metric aggregate over a workload's samples: the
// time-weighted average of the per-sample roofline estimations (paper
// Eq. 1), plus bookkeeping for analysis output.
type MetricEstimate struct {
	Metric string `json:"metric"`
	// MeanEstimate is P̄_x: the time-weighted average max-throughput
	// estimate for this metric.
	MeanEstimate float64 `json:"meanEstimate"`
	// Samples is the number of workload samples that contributed.
	Samples int `json:"samples"`
	// MeanIntensity is the time-weighted average operational intensity
	// of the contributing samples (+Inf allowed), useful when
	// interpreting the ranking.
	MeanIntensity float64 `json:"meanIntensity"`
}

// CoverageReport describes the metric overlap between a trained model and
// a workload dataset, so partial-coverage estimations (real collections
// rarely carry the exact training event set) are visible instead of
// silent.
type CoverageReport struct {
	// ModelMetrics and DataMetrics count the metrics each side knows.
	ModelMetrics int `json:"modelMetrics"`
	DataMetrics  int `json:"dataMetrics"`
	// Shared counts metrics present on both sides — the ones that
	// contributed to the estimation.
	Shared int `json:"shared"`
	// DataOnly lists workload metrics the model has no roofline for
	// (their samples were skipped), sorted.
	DataOnly []string `json:"dataOnly,omitempty"`
	// ModelOnly lists modeled metrics the workload never measured
	// (they did not constrain the estimate), sorted.
	ModelOnly []string `json:"modelOnly,omitempty"`
}

// Estimation is the result of running a workload's dataset through a
// trained ensemble (paper Fig. 4).
type Estimation struct {
	// PerMetric holds one entry per metric that had both a roofline and
	// at least one valid workload sample, sorted ascending by
	// MeanEstimate — the paper's bottleneck ranking order.
	PerMetric []MetricEstimate `json:"perMetric"`
	// MaxThroughput is the ensemble-wide estimate: the minimum of the
	// per-metric means.
	MaxThroughput float64 `json:"maxThroughput"`
	// MeasuredThroughput is the workload's actual time-weighted
	// throughput over all samples (e.g. its measured IPC).
	MeasuredThroughput float64 `json:"measuredThroughput"`
	// Coverage reports how well the model's metric set and the
	// workload's overlapped.
	Coverage CoverageReport `json:"coverage"`
	// Hierarchy reports the binding memory-hierarchy level when the model
	// carries a hierarchy and at least two levels had measured traffic;
	// nil otherwise (hierarchy.go). Purely additive: the flat fields
	// above are identical with and without it.
	Hierarchy *HierarchyEstimate `json:"hierarchy,omitempty"`
	// Combined partitions wall time into on-CPU vs off-CPU and merges
	// roofline verdicts with wait-for-graph verdicts (sched.go). Only
	// set when the workload carried scheduler events; nil otherwise, so
	// scheduler-free estimations encode byte-identically to before.
	Combined *CombinedReport `json:"combined,omitempty"`
}

// Estimate runs the ensemble-level estimation process of paper Fig. 4:
// group the workload's samples by metric, estimate each sample with its
// metric's roofline, merge per metric with a time-weighted average, and
// take the minimum across metrics. ErrNoSamples is returned when no sample
// matches a modeled metric.
//
// Estimate is a convenience shim over the one estimation implementation in
// this package: it indexes the workload and delegates to BatchEstimate
// (engine callers index once and reuse). The output is byte-identical to
// the historical serial implementation; the differential suite in
// internal/engine pins that equivalence.
func (e *Ensemble) Estimate(workload Dataset) (*Estimation, error) {
	return e.BatchEstimate(context.Background(), IndexWorkload(workload), EstimateOptions{Workers: 1})
}

type measureKey struct {
	t, w   float64
	window int
}

// coverageOf computes the metric overlap between the model and a
// workload's measured metric set.
func (e *Ensemble) coverageOf(metrics []string) CoverageReport {
	e.evaluators() // memoize sortedNames
	var cov CoverageReport
	e.coverageInto(metrics, &cov)
	return cov
}

// coverageInto writes the metric overlap between the model and a
// workload's sorted measured metric set into cov, reusing its slice
// capacities. Both inputs are sorted, so one merge walk produces the
// sorted DataOnly/ModelOnly lists with no per-call maps. The caller must
// have run evaluators() (which memoizes e.sortedNames).
func (e *Ensemble) coverageInto(metrics []string, cov *CoverageReport) {
	model := e.sortedNames
	cov.ModelMetrics = len(e.Rooflines)
	cov.DataMetrics = len(metrics)
	cov.Shared = 0
	cov.DataOnly = cov.DataOnly[:0]
	cov.ModelOnly = cov.ModelOnly[:0]
	i, j := 0, 0
	for i < len(model) && j < len(metrics) {
		switch {
		case model[i] == metrics[j]:
			cov.Shared++
			i++
			j++
		case model[i] < metrics[j]:
			cov.ModelOnly = append(cov.ModelOnly, model[i])
			i++
		default:
			cov.DataOnly = append(cov.DataOnly, metrics[j])
			j++
		}
	}
	cov.ModelOnly = append(cov.ModelOnly, model[i:]...)
	cov.DataOnly = append(cov.DataOnly, metrics[j:]...)
}

// TopMetrics returns the k lowest-estimate metrics — the paper's candidate
// bottleneck pool (§III-C, "Performance analysis"). Fewer than k entries
// are returned when the estimation covers fewer metrics.
func (est *Estimation) TopMetrics(k int) []MetricEstimate {
	if k > len(est.PerMetric) {
		k = len(est.PerMetric)
	}
	out := make([]MetricEstimate, k)
	copy(out, est.PerMetric[:k])
	return out
}

// Rank returns the 1-based rank of the metric in the ascending estimate
// ordering, or 0 when the metric is absent.
func (est *Estimation) Rank(metric string) int {
	for i, m := range est.PerMetric {
		if m.Metric == metric {
			return i + 1
		}
	}
	return 0
}

// Estimate1 estimates a single metric's bound for one intensity value; a
// convenience for exploratory use and plotting.
func (e *Ensemble) Estimate1(metric string, intensity float64) (float64, error) {
	r, ok := e.Rooflines[metric]
	if !ok {
		return 0, fmt.Errorf("core: no roofline for metric %q", metric)
	}
	return r.Eval(intensity), nil
}
