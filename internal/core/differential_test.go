package core

// Differential suite: the optimized fitting pipeline (convex-hull left
// fit, Pareto + Dijkstra right fit) is checked against the
// slow-but-obviously-correct reference implementations in internal/oracle
// on thousands of randomized datasets. Any disagreement is a bug in the
// fast path (or, symmetrically, in the reference — either way a bug).

import (
	"math"
	"math/rand"
	"testing"

	"spire/internal/geom"
	"spire/internal/oracle"
)

// randDiffSamples generates a small random training set. Grid mode draws
// coordinates from a small integer lattice to provoke duplicates, exact
// collinearity and slope ties; continuous mode stresses general position.
// A few invalid samples ride along to exercise filtering.
func randDiffSamples(rng *rand.Rand, grid bool) []Sample {
	n := 1 + rng.Intn(24)
	out := make([]Sample, 0, n+2)
	for i := 0; i < n; i++ {
		var s Sample
		if grid {
			s = Sample{
				Metric: "m",
				T:      float64(1 + rng.Intn(4)),
				W:      float64(rng.Intn(24)),
				M:      float64(rng.Intn(8)), // zero M => I = +Inf
			}
		} else {
			s = Sample{
				Metric: "m",
				T:      1 + rng.Float64()*4,
				W:      rng.Float64() * 24,
				M:      rng.Float64() * 8,
			}
		}
		out = append(out, s)
	}
	if rng.Intn(3) == 0 {
		out = append(out,
			Sample{Metric: "m", T: -1, W: 3, M: 1},
			Sample{Metric: "m", T: 2, W: math.NaN(), M: 1},
		)
	}
	return out
}

// finitePoints reproduces FitRoofline's screening: valid samples with
// finite intensity and throughput.
func finitePoints(samples []Sample) []geom.Point {
	var pts []geom.Point
	for _, s := range samples {
		if !s.Valid() {
			continue
		}
		p := s.Point()
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) || math.IsInf(p.X, 1) {
			continue
		}
		pts = append(pts, p)
	}
	return pts
}

// TestDifferentialLeftFitMatchesOracle checks, on >= 1000 random
// datasets, that the fitted left-region bound equals the oracle's least
// concave majorant at every training abscissa, segment midpoint, and a
// spread of interior probes — and that it upper-bounds every training
// sample (paper property P̂_x(I) >= P).
func TestDifferentialLeftFitMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	datasets := 0
	for datasets < 1000 {
		samples := randDiffSamples(rng, datasets%2 == 0)
		r, err := FitRoofline("m", samples)
		if err != nil {
			if err != ErrNoSamples {
				t.Fatalf("FitRoofline: %v", err)
			}
			continue
		}
		datasets++
		pts := finitePoints(samples)
		if len(pts) == 0 {
			continue // all-Inf model: no left region to compare
		}
		peak := r.Peak()

		var probes []float64
		for _, p := range pts {
			if p.X <= peak.X {
				probes = append(probes, p.X)
			}
		}
		probes = append(probes, 0, peak.X, peak.X/3, peak.X*0.77)
		for i := 0; i < 8; i++ {
			probes = append(probes, rng.Float64()*peak.X)
		}
		for _, x := range probes {
			want := oracle.LeftEval(pts, x)
			got := r.Eval(x)
			if math.IsNaN(want) || math.IsNaN(got) {
				t.Fatalf("NaN bound at x=%g: fast %g oracle %g (samples %v)", x, got, want, samples)
			}
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("left bound mismatch at x=%g: fast %g, oracle %g (samples %v)",
					x, got, want, samples)
			}
		}
		for _, s := range samples {
			if !s.Valid() {
				continue
			}
			p := s.Point()
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			if r.Eval(p.X) < p.Y-1e-9*(1+p.Y) {
				t.Fatalf("fit undercuts training sample %v: bound %g", s, r.Eval(p.X))
			}
		}
	}
}

// randFront generates a small right-region input: a handful of points
// (grid or continuous) and, half the time, an I=+Inf sample whose level
// sometimes dominates the whole front.
func randFront(rng *rand.Rand, grid bool) ([]geom.Point, *geom.Point) {
	n := 1 + rng.Intn(8)
	pts := make([]geom.Point, n)
	for i := range pts {
		if grid {
			pts[i] = geom.Point{
				X: float64(1 + rng.Intn(12)),
				Y: float64(1 + rng.Intn(10)),
			}
		} else {
			pts[i] = geom.Point{X: 1 + rng.Float64()*12, Y: rng.Float64() * 10}
		}
	}
	var inf *geom.Point
	if rng.Intn(2) == 0 {
		inf = &geom.Point{X: math.Inf(1), Y: float64(rng.Intn(12))}
	}
	return pts, inf
}

// TestDifferentialRightFitMatchesOracle checks, on >= 1000 random fronts,
// that the Dijkstra-based right fit attains exactly the minimum cost the
// exhaustive-enumeration oracle finds over the segment-compatibility
// graph, and that the two agree on every pre-enumeration short-circuit.
func TestDifferentialRightFitMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for it := 0; it < 1200; it++ {
		pts, inf := randFront(rng, it%2 == 0)
		fastChain, fastTail, err := fitRight(pts, inf)
		if err != nil {
			t.Fatalf("fitRight: %v (pts %v inf %v)", err, pts, inf)
		}
		oChain, oTail := oracle.RightFit(pts, inf)
		if (len(fastChain) == 0) != (len(oChain) == 0) {
			t.Fatalf("chain emptiness disagrees: fast %v oracle %v (pts %v inf %v)",
				fastChain, oChain, pts, inf)
		}
		if len(fastChain) == 0 {
			same := fastTail == oTail || (math.IsNaN(fastTail) && math.IsNaN(oTail))
			if !same {
				t.Fatalf("empty-chain tails disagree: fast %g oracle %g (pts %v inf %v)",
					fastTail, oTail, pts, inf)
			}
			continue
		}
		fastCost := oracle.ChainCost(pts, fastChain, inf)
		if math.IsNaN(fastCost) {
			t.Fatalf("fast chain %v is not a valid front selection (pts %v inf %v)",
				fastChain, pts, inf)
		}
		bestCost, done := oracle.BestRightCost(pts, inf)
		if done {
			t.Fatalf("oracle short-circuited but fast enumerated (pts %v inf %v)", pts, inf)
		}
		tol := 1e-9 * (1 + math.Abs(bestCost))
		if fastCost > bestCost+tol {
			t.Fatalf("fast fit suboptimal: cost %g > oracle optimum %g (pts %v inf %v chain %v)",
				fastCost, bestCost, pts, inf, fastChain)
		}
		if bestCost > fastCost+tol {
			t.Fatalf("oracle worse than fast path — oracle bug: %g > %g (pts %v inf %v)",
				bestCost, fastCost, pts, inf)
		}
		if fastTail != fastChain[len(fastChain)-1].Y {
			t.Fatalf("fast tail %g != last breakpoint %g", fastTail, fastChain[len(fastChain)-1].Y)
		}
	}
}

// TestDifferentialParetoFront checks the optimized sweep against the
// naive pairwise-domination oracle on >= 1000 random point sets.
func TestDifferentialParetoFront(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for it := 0; it < 1000; it++ {
		n := rng.Intn(20)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{
				X: float64(rng.Intn(10)),
				Y: float64(rng.Intn(10)),
			}
		}
		fast := geom.ParetoFront(pts)
		slow := oracle.ParetoFront(pts)
		if len(fast) != len(slow) {
			t.Fatalf("front sizes differ: fast %v oracle %v (pts %v)", fast, slow, pts)
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("front member %d differs: fast %v oracle %v (pts %v)", i, fast, slow, pts)
			}
		}
	}
}

// TestDifferentialShapeProperties re-checks the paper's qualitative shape
// guarantees with dense probing on random fits: the left region is
// non-decreasing and concave-down (midpoint test), the right region
// non-increasing beyond the first chosen breakpoint.
func TestDifferentialShapeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	fits := 0
	for fits < 1000 {
		samples := randDiffSamples(rng, fits%2 == 1)
		r, err := FitRoofline("m", samples)
		if err != nil {
			continue
		}
		fits++
		peak := r.Peak()

		// Left: non-decreasing, concave-down.
		prev := -1.0
		for i := 0; i <= 24; i++ {
			x := peak.X * float64(i) / 24
			v := r.Eval(x)
			if v < prev-1e-9*(1+math.Abs(prev)) {
				t.Fatalf("left bound decreasing at x=%g (samples %v)", x, samples)
			}
			prev = v
		}
		for i := 0; i < 12; i++ {
			a := rng.Float64() * peak.X
			b := rng.Float64() * peak.X
			mid := (a + b) / 2
			lhs := r.Eval(mid)
			rhs := (r.Eval(a) + r.Eval(b)) / 2
			if lhs < rhs-1e-9*(1+math.Abs(rhs)) {
				t.Fatalf("left bound not concave-down between %g and %g: f(mid)=%g < %g (samples %v)",
					a, b, lhs, rhs, samples)
			}
		}

		// Right: non-increasing beyond the first breakpoint.
		if len(r.Right) == 0 {
			continue
		}
		lo := r.Right[0].X
		hi := r.Right[len(r.Right)-1].X*1.5 + 1
		prev = math.Inf(1)
		for i := 0; i <= 24; i++ {
			x := lo + (hi-lo)*float64(i)/24
			v := r.Eval(x)
			if v > prev+1e-9*(1+math.Abs(prev)) {
				t.Fatalf("right bound increasing at x=%g (samples %v)", x, samples)
			}
			prev = v
		}
	}
}
