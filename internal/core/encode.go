package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// modelEnvelope wraps an ensemble with a format version so that saved
// models can be rejected cleanly if the format ever changes.
type modelEnvelope struct {
	Format  string    `json:"format"`
	Version int       `json:"version"`
	Model   *Ensemble `json:"model"`
}

const (
	modelFormat  = "spire-ensemble"
	modelVersion = 1
)

// Save writes the trained ensemble as versioned JSON.
func (e *Ensemble) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(modelEnvelope{Format: modelFormat, Version: modelVersion, Model: e})
}

// LoadEnsemble reads an ensemble previously written with Save.
func LoadEnsemble(r io.Reader) (*Ensemble, error) {
	var env modelEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if env.Format != modelFormat {
		return nil, fmt.Errorf("core: unexpected model format %q", env.Format)
	}
	if env.Version != modelVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", env.Version)
	}
	if env.Model == nil || len(env.Model.Rooflines) == 0 {
		return nil, fmt.Errorf("core: model contains no rooflines")
	}
	for name, r := range env.Model.Rooflines {
		if r == nil || len(r.Left) == 0 {
			return nil, fmt.Errorf("core: roofline %q is empty", name)
		}
	}
	return env.Model, nil
}

// jsonNum is a float64 whose JSON encoding is total: the non-finite
// values encoding/json rejects are rendered as the strings "+Inf",
// "-Inf" and "NaN", and accepted back on decode. Finite values encode as
// plain numbers, so documents containing only finite values are
// unchanged. Estimations legitimately carry non-finite values
// (MeanIntensity is +Inf for never-firing metrics), so the serving tier
// depends on this encoding never failing.
type jsonNum float64

func (n jsonNum) MarshalJSON() ([]byte, error) {
	f := float64(n)
	switch {
	case math.IsInf(f, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(f, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(f):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(f)
}

func (n *jsonNum) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*n = jsonNum(math.Inf(1))
		case "-Inf":
			*n = jsonNum(math.Inf(-1))
		case "NaN":
			*n = jsonNum(math.NaN())
		default:
			return fmt.Errorf("core: %q is not a number", s)
		}
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*n = jsonNum(f)
	return nil
}

// metricEstimateJSON mirrors MetricEstimate with total float encoding.
type metricEstimateJSON struct {
	Metric        string  `json:"metric"`
	MeanEstimate  jsonNum `json:"meanEstimate"`
	Samples       int     `json:"samples"`
	MeanIntensity jsonNum `json:"meanIntensity"`
}

// MarshalJSON encodes the estimate with non-finite values spelled as
// strings so that marshaling never fails.
func (m MetricEstimate) MarshalJSON() ([]byte, error) {
	return json.Marshal(metricEstimateJSON{
		Metric:        m.Metric,
		MeanEstimate:  jsonNum(m.MeanEstimate),
		Samples:       m.Samples,
		MeanIntensity: jsonNum(m.MeanIntensity),
	})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (m *MetricEstimate) UnmarshalJSON(b []byte) error {
	var raw metricEstimateJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	*m = MetricEstimate{
		Metric:        raw.Metric,
		MeanEstimate:  float64(raw.MeanEstimate),
		Samples:       raw.Samples,
		MeanIntensity: float64(raw.MeanIntensity),
	}
	return nil
}

// levelEstimateJSON mirrors LevelEstimate with total float encoding.
type levelEstimateJSON struct {
	Level         string  `json:"level"`
	Metric        string  `json:"metric"`
	MeanEstimate  jsonNum `json:"meanEstimate"`
	Samples       int     `json:"samples"`
	MeanIntensity jsonNum `json:"meanIntensity"`
}

// MarshalJSON encodes the level estimate with non-finite values spelled
// as strings so that marshaling never fails.
func (l LevelEstimate) MarshalJSON() ([]byte, error) {
	return json.Marshal(levelEstimateJSON{
		Level:         l.Level,
		Metric:        l.Metric,
		MeanEstimate:  jsonNum(l.MeanEstimate),
		Samples:       l.Samples,
		MeanIntensity: jsonNum(l.MeanIntensity),
	})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (l *LevelEstimate) UnmarshalJSON(b []byte) error {
	var raw levelEstimateJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	*l = LevelEstimate{
		Level:         raw.Level,
		Metric:        raw.Metric,
		MeanEstimate:  float64(raw.MeanEstimate),
		Samples:       raw.Samples,
		MeanIntensity: float64(raw.MeanIntensity),
	}
	return nil
}

// surfaceEstimateJSON mirrors SurfaceEstimate with total float encoding.
type surfaceEstimateJSON struct {
	Name       string  `json:"name,omitempty"`
	Param      string  `json:"param"`
	ParamValue jsonNum `json:"paramValue"`
	Ceiling    jsonNum `json:"ceiling"`
	Binding    bool    `json:"binding"`
}

// MarshalJSON encodes the surface estimate with non-finite values spelled
// as strings so that marshaling never fails.
func (s SurfaceEstimate) MarshalJSON() ([]byte, error) {
	return json.Marshal(surfaceEstimateJSON{
		Name:       s.Name,
		Param:      s.Param,
		ParamValue: jsonNum(s.ParamValue),
		Ceiling:    jsonNum(s.Ceiling),
		Binding:    s.Binding,
	})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (s *SurfaceEstimate) UnmarshalJSON(b []byte) error {
	var raw surfaceEstimateJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	*s = SurfaceEstimate{
		Name:       raw.Name,
		Param:      raw.Param,
		ParamValue: float64(raw.ParamValue),
		Ceiling:    float64(raw.Ceiling),
		Binding:    raw.Binding,
	}
	return nil
}

// hierarchyEstimateJSON mirrors HierarchyEstimate with total float
// encoding.
type hierarchyEstimateJSON struct {
	BindingLevel    string            `json:"bindingLevel"`
	BindingMetric   string            `json:"bindingMetric"`
	BindingEstimate jsonNum           `json:"bindingEstimate"`
	BoundThroughput jsonNum           `json:"boundThroughput"`
	Levels          []LevelEstimate   `json:"levels"`
	Surfaces        []SurfaceEstimate `json:"surfaces,omitempty"`
}

// MarshalJSON encodes the hierarchy estimate with non-finite values
// spelled as strings so that marshaling never fails.
func (h HierarchyEstimate) MarshalJSON() ([]byte, error) {
	return json.Marshal(hierarchyEstimateJSON{
		BindingLevel:    h.BindingLevel,
		BindingMetric:   h.BindingMetric,
		BindingEstimate: jsonNum(h.BindingEstimate),
		BoundThroughput: jsonNum(h.BoundThroughput),
		Levels:          h.Levels,
		Surfaces:        h.Surfaces,
	})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (h *HierarchyEstimate) UnmarshalJSON(b []byte) error {
	var raw hierarchyEstimateJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	*h = HierarchyEstimate{
		BindingLevel:    raw.BindingLevel,
		BindingMetric:   raw.BindingMetric,
		BindingEstimate: float64(raw.BindingEstimate),
		BoundThroughput: float64(raw.BoundThroughput),
		Levels:          raw.Levels,
		Surfaces:        raw.Surfaces,
	}
	return nil
}

// estimationJSON mirrors Estimation with total float encoding. Hierarchy
// and Combined are additive and omitted when nil, so flat estimations
// encode exactly as they did before either field existed. Combined's own
// floats are cycle counts and shares, finite by construction, so the
// report nests without a jsonNum mirror of its own.
type estimationJSON struct {
	PerMetric          []MetricEstimate   `json:"perMetric"`
	MaxThroughput      jsonNum            `json:"maxThroughput"`
	MeasuredThroughput jsonNum            `json:"measuredThroughput"`
	Coverage           CoverageReport     `json:"coverage"`
	Hierarchy          *HierarchyEstimate `json:"hierarchy,omitempty"`
	Combined           *CombinedReport    `json:"combined,omitempty"`
}

// MarshalJSON encodes the estimation with non-finite values spelled as
// strings so that marshaling never fails.
func (est Estimation) MarshalJSON() ([]byte, error) {
	return json.Marshal(estimationJSON{
		PerMetric:          est.PerMetric,
		MaxThroughput:      jsonNum(est.MaxThroughput),
		MeasuredThroughput: jsonNum(est.MeasuredThroughput),
		Coverage:           est.Coverage,
		Hierarchy:          est.Hierarchy,
		Combined:           est.Combined,
	})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (est *Estimation) UnmarshalJSON(b []byte) error {
	var raw estimationJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	*est = Estimation{
		PerMetric:          raw.PerMetric,
		MaxThroughput:      float64(raw.MaxThroughput),
		MeasuredThroughput: float64(raw.MeasuredThroughput),
		Coverage:           raw.Coverage,
		Hierarchy:          raw.Hierarchy,
		Combined:           raw.Combined,
	}
	return nil
}

// CheckInvariants verifies every roofline in the ensemble against the
// structural properties the paper requires (Roofline.CheckInvariants),
// reporting the first violation. LoadEnsemble deliberately tolerates
// structurally odd chains (Eval never panics on them); callers accepting
// models from untrusted sources — the serving tier's model registry in
// particular — gate uploads on this check instead.
func (e *Ensemble) CheckInvariants() error {
	if len(e.Rooflines) == 0 {
		return fmt.Errorf("core: ensemble has no rooflines")
	}
	names := make([]string, 0, len(e.Rooflines))
	for name := range e.Rooflines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := e.Rooflines[name]
		if r == nil {
			return fmt.Errorf("core: roofline %q is nil", name)
		}
		if err := r.CheckInvariants(); err != nil {
			return fmt.Errorf("core: roofline %q: %w", name, err)
		}
	}
	if e.Hierarchy != nil {
		if err := e.Hierarchy.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Fingerprint returns the hex SHA-256 of the ensemble's canonical Save
// encoding. Save output is deterministic (encoding/json sorts map keys),
// so equal models — including a model round-tripped through
// Save/LoadEnsemble — share a fingerprint, and the serving tier can use
// it as a content-addressed model version ID.
func (e *Ensemble) Fingerprint() (string, error) {
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// WriteDataset writes a dataset as JSON.
func WriteDataset(w io.Writer, d Dataset) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// ReadDataset reads a dataset previously written with WriteDataset.
func ReadDataset(r io.Reader) (Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return Dataset{}, fmt.Errorf("core: decoding dataset: %w", err)
	}
	return d, nil
}
