package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelEnvelope wraps an ensemble with a format version so that saved
// models can be rejected cleanly if the format ever changes.
type modelEnvelope struct {
	Format  string    `json:"format"`
	Version int       `json:"version"`
	Model   *Ensemble `json:"model"`
}

const (
	modelFormat  = "spire-ensemble"
	modelVersion = 1
)

// Save writes the trained ensemble as versioned JSON.
func (e *Ensemble) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(modelEnvelope{Format: modelFormat, Version: modelVersion, Model: e})
}

// LoadEnsemble reads an ensemble previously written with Save.
func LoadEnsemble(r io.Reader) (*Ensemble, error) {
	var env modelEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if env.Format != modelFormat {
		return nil, fmt.Errorf("core: unexpected model format %q", env.Format)
	}
	if env.Version != modelVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", env.Version)
	}
	if env.Model == nil || len(env.Model.Rooflines) == 0 {
		return nil, fmt.Errorf("core: model contains no rooflines")
	}
	for name, r := range env.Model.Rooflines {
		if r == nil || len(r.Left) == 0 {
			return nil, fmt.Errorf("core: roofline %q is empty", name)
		}
	}
	return env.Model, nil
}

// WriteDataset writes a dataset as JSON.
func WriteDataset(w io.Writer, d Dataset) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// ReadDataset reads a dataset previously written with WriteDataset.
func ReadDataset(r io.Reader) (Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return Dataset{}, fmt.Errorf("core: decoding dataset: %w", err)
	}
	return d, nil
}
