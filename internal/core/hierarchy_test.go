package core

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// hierEnsemble builds a four-level bandwidth-roofline ensemble, optionally
// with surfaces.
func hierEnsemble(t *testing.T, surfaces ...Surface) *Ensemble {
	t.Helper()
	betas := map[string]float64{"L1": 64, "L2": 16, "L3": 8, "DRAM": 2}
	ens := &Ensemble{
		Rooflines: map[string]*Roofline{},
		WorkUnit:  "instructions",
		TimeUnit:  "cycles",
		Hierarchy: &HierarchyModel{Levels: DefaultHierarchyLevels(), Surfaces: surfaces},
	}
	for _, lv := range ens.Hierarchy.Levels {
		r, err := BandwidthRoofline(lv.Metric, 4, betas[lv.Level], 64)
		if err != nil {
			t.Fatal(err)
		}
		ens.Rooflines[lv.Metric] = r
	}
	return ens
}

// levelSamples builds one sample per hierarchy level with the given load
// counts over a fixed run.
func levelSamples(loads map[string]float64) Dataset {
	var d Dataset
	const cycles, insts = 1e6, 2e6
	for _, lv := range DefaultHierarchyLevels() {
		if n, ok := loads[lv.Level]; ok {
			d.Samples = append(d.Samples, Sample{Metric: lv.Metric, T: cycles, W: insts, M: n})
		}
	}
	return d
}

func TestBandwidthRoofline(t *testing.T) {
	r, err := BandwidthRoofline("m", 4, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Ridge at I = peak*line/beta = 16; diagonal below, flat above.
	cases := []struct{ i, want float64 }{
		{0, 0}, {4, 1}, {16, 4}, {100, 4},
	}
	for _, c := range cases {
		if got := r.Eval(c.i); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", c.i, got, c.want)
		}
	}
	for _, bad := range []struct{ peak, beta, line float64 }{
		{0, 16, 64}, {-1, 16, 64}, {math.NaN(), 16, 64}, {math.Inf(1), 16, 64},
		{4, 0, 64}, {4, math.NaN(), 64}, {4, 16, 0}, {4, 16, math.Inf(1)},
	} {
		if _, err := BandwidthRoofline("m", bad.peak, bad.beta, bad.line); err == nil {
			t.Errorf("peak=%g beta=%g line=%g: want error", bad.peak, bad.beta, bad.line)
		}
	}
}

func TestHierarchyModelValidate(t *testing.T) {
	lv := DefaultHierarchyLevels()
	ok := HierarchyModel{Levels: lv, Surfaces: []Surface{
		{Name: "s", Param: "p", Points: []SurfacePoint{{0, 4}, {1, 1}}},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := []HierarchyModel{
		{},
		{Levels: []HierarchyLevel{{Level: "", Metric: "m"}}},
		{Levels: []HierarchyLevel{{Level: "L1", Metric: ""}}},
		{Levels: []HierarchyLevel{{Level: "L1", Metric: "a"}, {Level: "L1", Metric: "b"}}},
		{Levels: []HierarchyLevel{{Level: "L1", Metric: "a"}, {Level: "L2", Metric: "a"}}},
		{Levels: lv, Surfaces: []Surface{{Param: ""}}},
		{Levels: lv, Surfaces: []Surface{{Param: "p"}}},
		{Levels: lv, Surfaces: []Surface{{Param: "p", Points: []SurfacePoint{{0, 1}}}, {Param: "p", Points: []SurfacePoint{{0, 1}}}}},
		{Levels: lv, Surfaces: []Surface{{Param: "p", Points: []SurfacePoint{{math.NaN(), 1}}}}},
		{Levels: lv, Surfaces: []Surface{{Param: "p", Points: []SurfacePoint{{0, math.Inf(1)}}}}},
		{Levels: lv, Surfaces: []Surface{{Param: "p", Points: []SurfacePoint{{0, -1}}}}},
		{Levels: lv, Surfaces: []Surface{{Param: "p", Points: []SurfacePoint{{1, 1}, {0, 1}}}}},
	}
	for k, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted: %+v", k, m)
		}
	}
}

func TestHierarchyBindingLevel(t *testing.T) {
	ens := hierEnsemble(t)
	cases := []struct {
		loads map[string]float64
		want  string
	}{
		// Dominant traffic at one level drags its estimate down.
		{map[string]float64{"L1": 1e6, "L2": 100, "L3": 100, "DRAM": 100}, "L1"},
		{map[string]float64{"L1": 1000, "L2": 4e5, "L3": 100, "DRAM": 100}, "L2"},
		{map[string]float64{"L1": 1000, "L2": 1000, "L3": 3e5, "DRAM": 100}, "L3"},
		{map[string]float64{"L1": 1000, "L2": 1000, "L3": 1000, "DRAM": 1e5}, "DRAM"},
		// Negligible traffic everywhere: every level clamps to the peak,
		// and the tie resolves to the fastest level.
		{map[string]float64{"L1": 1, "L2": 1, "L3": 1, "DRAM": 1}, "L1"},
	}
	for _, c := range cases {
		est, err := ens.Estimate(levelSamples(c.loads))
		if err != nil {
			t.Fatal(err)
		}
		if est.Hierarchy == nil {
			t.Fatalf("loads %v: no hierarchy estimate", c.loads)
		}
		h := est.Hierarchy
		if h.BindingLevel != c.want {
			t.Errorf("loads %v: binding %s, want %s", c.loads, h.BindingLevel, c.want)
		}
		if len(h.Levels) != 4 {
			t.Errorf("loads %v: %d level estimates", c.loads, len(h.Levels))
		}
		// The binding estimate is the minimum across reported levels and
		// matches the flat per-metric estimate for the binding metric.
		for _, le := range h.Levels {
			if le.MeanEstimate < h.BindingEstimate {
				t.Errorf("level %s estimate %g below binding %g", le.Level, le.MeanEstimate, h.BindingEstimate)
			}
			k := findPerMetric(est.PerMetric, le.Metric)
			if k < 0 || est.PerMetric[k].MeanEstimate != le.MeanEstimate {
				t.Errorf("level %s estimate diverges from flat ranking", le.Level)
			}
		}
		if h.BoundThroughput != est.MaxThroughput {
			t.Errorf("no surfaces: bound %g should equal flat max %g", h.BoundThroughput, est.MaxThroughput)
		}
	}
}

func TestHierarchySurfaces(t *testing.T) {
	surf := Surface{
		Name:  "sparsity",
		Param: "br_misp_retired.all_branches",
		Points: []SurfacePoint{
			{Param: 0, Ceiling: 4},
			{Param: 0.1, Ceiling: 1},
		},
	}
	ens := hierEnsemble(t, surf)

	// Workload with two lightly-loaded hierarchy levels (flat estimate at
	// the peak) and a mispredict rate of 0.05 events per instruction: the
	// surface interpolates to 2.5, below the flat roof, so it binds.
	d := levelSamples(map[string]float64{"L1": 1e5, "L2": 100})
	d.Samples = append(d.Samples, Sample{
		Metric: surf.Param, T: 1e6, W: 2e6, M: 1e5, // M/W = 0.05
	})
	est, err := ens.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	h := est.Hierarchy
	if h == nil || len(h.Surfaces) != 1 {
		t.Fatalf("hierarchy %+v", h)
	}
	se := h.Surfaces[0]
	if se.Name != "sparsity" || se.Param != surf.Param {
		t.Errorf("surface identity %+v", se)
	}
	if math.Abs(se.ParamValue-0.05) > 1e-9 {
		t.Errorf("recovered param %g, want 0.05", se.ParamValue)
	}
	if math.Abs(se.Ceiling-2.5) > 1e-9 {
		t.Errorf("ceiling %g, want 2.5", se.Ceiling)
	}
	if !se.Binding {
		t.Error("ceiling below the flat max should be binding")
	}
	if math.Abs(h.BoundThroughput-2.5) > 1e-9 {
		t.Errorf("bound %g, want 2.5", h.BoundThroughput)
	}
	// Flat fields are untouched by the surface.
	if est.MaxThroughput <= h.BoundThroughput-1e-12 {
		t.Errorf("flat max %g should sit above the surface bound", est.MaxThroughput)
	}

	// Without the param metric the surface is skipped entirely.
	est2, err := ens.Estimate(levelSamples(map[string]float64{"L1": 1e5, "L2": 100}))
	if err != nil {
		t.Fatal(err)
	}
	if est2.Hierarchy == nil || len(est2.Hierarchy.Surfaces) != 0 {
		t.Fatalf("missing param metric: surfaces %+v", est2.Hierarchy)
	}
	if est2.Hierarchy.BoundThroughput != est2.MaxThroughput {
		t.Error("no evaluated surfaces: bound should equal flat max")
	}
}

// TestHierarchyDegenerateIsFlat: a workload measuring fewer than two
// hierarchy levels reports no hierarchy at all, and its JSON output is
// byte-identical to the same model without a hierarchy.
func TestHierarchyDegenerateIsFlat(t *testing.T) {
	hier := hierEnsemble(t)
	flat := hierEnsemble(t)
	flat.Hierarchy = nil

	single := levelSamples(map[string]float64{"L2": 5e5})
	hEst, err := hier.Estimate(single)
	if err != nil {
		t.Fatal(err)
	}
	if hEst.Hierarchy != nil {
		t.Fatalf("single-level workload grew a hierarchy: %+v", hEst.Hierarchy)
	}
	fEst, err := flat.Estimate(single)
	if err != nil {
		t.Fatal(err)
	}
	hj, err := json.Marshal(hEst)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := json.Marshal(fEst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hj, fj) {
		t.Errorf("degenerate JSON diverged:\n hier: %s\n flat: %s", hj, fj)
	}
}

// TestHierarchyEstimationReuse: BatchEstimateInto reuses the hierarchy
// allocation across calls and resets it on degenerate workloads.
func TestHierarchyEstimationReuse(t *testing.T) {
	surf := Surface{Param: "p", Points: []SurfacePoint{{0, 4}, {1, 1}}}
	ens := hierEnsemble(t, surf)
	ctx := context.Background()

	multi := levelSamples(map[string]float64{"L1": 1e6, "L2": 4e5, "L3": 100, "DRAM": 100})
	multi.Samples = append(multi.Samples, Sample{Metric: "p", T: 1e6, W: 2e6, M: 1e5})
	ixMulti := IndexWorkload(multi)
	ixSingle := IndexWorkload(levelSamples(map[string]float64{"L1": 1e6}))

	var est Estimation
	if err := ens.BatchEstimateInto(ctx, ixMulti, EstimateOptions{}, &est); err != nil {
		t.Fatal(err)
	}
	if est.Hierarchy == nil || est.Hierarchy.BindingLevel != "L2" {
		t.Fatalf("hierarchy %+v", est.Hierarchy)
	}
	first := est.Hierarchy

	if err := ens.BatchEstimateInto(ctx, ixSingle, EstimateOptions{}, &est); err != nil {
		t.Fatal(err)
	}
	if est.Hierarchy != nil {
		t.Fatalf("degenerate workload kept a hierarchy: %+v", est.Hierarchy)
	}

	if err := ens.BatchEstimateInto(ctx, ixMulti, EstimateOptions{}, &est); err != nil {
		t.Fatal(err)
	}
	if est.Hierarchy == nil || est.Hierarchy.BindingLevel != "L2" || len(est.Hierarchy.Surfaces) != 1 {
		t.Fatalf("hierarchy after reuse %+v", est.Hierarchy)
	}
	_ = first

	// Steady state on a stable workload allocates nothing. The race
	// detector's instrumentation allocates on its own, so the count is
	// only meaningful in uninstrumented builds.
	if raceEnabled {
		t.Skip("alloc counting is unreliable under the race detector")
	}
	if err := ens.BatchEstimateInto(ctx, ixMulti, EstimateOptions{}, &est); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := ens.BatchEstimateInto(ctx, ixMulti, EstimateOptions{}, &est); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state hierarchical estimation allocates %.1f/op", allocs)
	}
}

func TestHierarchyEncodeRoundTrip(t *testing.T) {
	surf := Surface{Name: "sparsity", Param: "p", Points: []SurfacePoint{{0, 4}, {0.5, 1}}}
	ens := hierEnsemble(t, surf)
	d := levelSamples(map[string]float64{"L1": 1e6, "L2": 4e5})
	d.Samples = append(d.Samples, Sample{Metric: "p", T: 1e6, W: 2e6, M: 1e5})
	est, err := ens.Estimate(d)
	if err != nil {
		t.Fatal(err)
	}
	if est.Hierarchy == nil {
		t.Fatal("no hierarchy")
	}
	buf, err := json.Marshal(est)
	if err != nil {
		t.Fatal(err)
	}
	var back Estimation
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(est.Hierarchy, back.Hierarchy) {
		t.Errorf("hierarchy round trip:\n in:  %+v\n out: %+v", est.Hierarchy, back.Hierarchy)
	}
	// The ensemble itself round-trips its hierarchy too.
	ebuf, err := json.Marshal(ens)
	if err != nil {
		t.Fatal(err)
	}
	var ensBack Ensemble
	if err := json.Unmarshal(ebuf, &ensBack); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ens.Hierarchy, ensBack.Hierarchy) {
		t.Errorf("ensemble hierarchy round trip:\n in:  %+v\n out: %+v", ens.Hierarchy, ensBack.Hierarchy)
	}
	if err := ensBack.CheckInvariants(); err != nil {
		t.Errorf("round-tripped ensemble fails invariants: %v", err)
	}

	// A hostile hierarchy fails the ensemble invariant gate.
	bad := hierEnsemble(t)
	bad.Hierarchy.Levels[1].Level = bad.Hierarchy.Levels[0].Level
	if err := bad.CheckInvariants(); err == nil {
		t.Error("duplicate hierarchy level passed CheckInvariants")
	}
}

func TestSurfaceParamRecovery(t *testing.T) {
	// Two samples with different rates: time-weighted average.
	var d Dataset
	d.Samples = append(d.Samples,
		Sample{Metric: "p", T: 1, W: 100, M: 10}, // rate 0.1, weight 1
		Sample{Metric: "p", T: 3, W: 100, M: 2},  // rate 0.02, weight 3
	)
	ix := IndexWorkload(d)
	im := ix.groups["p"]
	if im == nil {
		t.Fatal("no indexed group")
	}
	got := surfaceParam(im)
	want := (1*0.1 + 3*0.02) / 4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("param %g, want %g", got, want)
	}

	// Never-firing samples (M=0, intensity +Inf) contribute rate zero.
	var z Dataset
	z.Samples = append(z.Samples, Sample{Metric: "p", T: 1, W: 100, M: 0})
	izx := IndexWorkload(z)
	if got := surfaceParam(izx.groups["p"]); got != 0 {
		t.Errorf("never-firing param %g, want 0", got)
	}
}
