package core

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"spire/internal/geom"
	"spire/internal/stats"
)

// WorkloadIndex is a workload dataset pre-indexed for repeated estimation:
// samples are grouped by metric once and per-sample operational
// intensities are precomputed, so that BatchEstimate does no re-grouping
// or re-derivation work per call. An index is immutable and safe for
// concurrent use by any number of estimators.
type WorkloadIndex struct {
	metrics []string // sorted metric names with >= 1 valid sample
	groups  map[string]*indexedMetric
}

// indexedMetric holds one metric's valid samples plus derived values.
type indexedMetric struct {
	samples []Sample
	intens  []float64 // Intensity() per sample, precomputed
}

// IndexWorkload groups the workload's valid samples by metric and
// precomputes each sample's operational intensity. Invalid samples are
// dropped exactly as Dataset.ByMetric drops them.
func IndexWorkload(d Dataset) *WorkloadIndex {
	groups := d.ByMetric()
	ix := &WorkloadIndex{
		metrics: make([]string, 0, len(groups)),
		groups:  make(map[string]*indexedMetric, len(groups)),
	}
	for metric, samples := range groups {
		im := &indexedMetric{
			samples: samples,
			intens:  make([]float64, len(samples)),
		}
		for i, s := range samples {
			im.intens[i] = s.Intensity()
		}
		ix.metrics = append(ix.metrics, metric)
		ix.groups[metric] = im
	}
	sort.Strings(ix.metrics)
	return ix
}

// Metrics returns the sorted metric names with at least one valid sample.
func (ix *WorkloadIndex) Metrics() []string {
	return append([]string(nil), ix.metrics...)
}

// Len returns the number of indexed (valid) samples.
func (ix *WorkloadIndex) Len() int {
	n := 0
	for _, im := range ix.groups {
		n += len(im.samples)
	}
	return n
}

// EstimateOptions configures BatchEstimate.
type EstimateOptions struct {
	// Workers bounds the number of metrics estimated concurrently. Zero
	// or negative selects GOMAXPROCS. Results are identical for every
	// worker count.
	Workers int
	// Runner, when non-nil, executes the per-metric estimation tasks:
	// it must call task(i) exactly once for every i in [0, n) unless ctx
	// is canceled, and return only when all started tasks have finished.
	// The engine supplies its process-wide shared worker pool here; nil
	// spawns up to Workers goroutines for this call.
	Runner func(ctx context.Context, workers, n int, task func(int))
}

// spawnRun is the default Runner: it spawns up to workers goroutines for
// this one call, each pulling task indices from a shared cursor.
func spawnRun(ctx context.Context, workers, n int, task func(int)) {
	if workers > n {
		workers = n
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}

// chainEval is a precomputed evaluator for one roofline: breakpoint
// abscissae are laid out for binary search so segment lookup is O(log n)
// on the left chain too (Roofline.Eval walks it linearly). Its arithmetic
// mirrors Roofline.Eval segment for segment, so the two produce
// bit-identical values.
type chainEval struct {
	left   []geom.Point
	leftX  []float64
	peak   geom.Point
	right  []geom.Point
	rightX []float64
	tail   float64
}

// newChainEval builds the segment table for r. It tolerates structurally
// odd chains (it never panics); garbage chains yield the same garbage
// values Roofline.Eval would.
func newChainEval(r *Roofline) *chainEval {
	ce := &chainEval{
		left:  r.Left,
		right: r.Right,
		peak:  r.Peak(),
		tail:  r.TailY,
	}
	ce.leftX = make([]float64, len(r.Left))
	for i, p := range r.Left {
		ce.leftX[i] = p.X
	}
	ce.rightX = make([]float64, len(r.Right))
	for i, p := range r.Right {
		ce.rightX[i] = p.X
	}
	return ce
}

// eval is the binary-search twin of Roofline.Eval.
func (ce *chainEval) eval(i float64) float64 {
	if math.IsNaN(i) {
		return math.NaN()
	}
	if len(ce.left) == 0 {
		return math.NaN()
	}
	if i < 0 {
		i = 0
	}
	if i <= ce.peak.X {
		// First breakpoint at or beyond i, as evalChainFromOrigin's
		// linear walk finds it.
		k := sort.SearchFloat64s(ce.leftX, i)
		if k >= len(ce.left) {
			return ce.left[len(ce.left)-1].Y
		}
		prev := geom.Point{X: 0, Y: 0}
		if k > 0 {
			prev = ce.left[k-1]
		}
		p := ce.left[k]
		if p.X == prev.X {
			return p.Y
		}
		t := (i - prev.X) / (p.X - prev.X)
		return prev.Y + t*(p.Y-prev.Y)
	}
	if len(ce.right) == 0 {
		return ce.tail
	}
	if i < ce.right[0].X {
		return ce.peak.Y
	}
	last := ce.right[len(ce.right)-1]
	if i >= last.X {
		return ce.tail
	}
	// Rightmost segment start with right[lo].X <= i: SearchFloat64s
	// returns the first index with rightX[k] >= i, so step back when the
	// hit is strictly beyond i.
	k := sort.SearchFloat64s(ce.rightX, i)
	if k >= len(ce.right) || ce.rightX[k] > i {
		k--
	}
	if k < 0 {
		return ce.peak.Y
	}
	if k+1 >= len(ce.right) {
		return ce.tail
	}
	a, b := ce.right[k], ce.right[k+1]
	t := (i - a.X) / (b.X - a.X)
	return a.Y + t*(b.Y-a.Y)
}

// evaluators returns the memoized segment tables, building them on first
// use. Safe for concurrent callers; rooflines must not be mutated after
// the first estimation (trained and loaded ensembles never are).
func (e *Ensemble) evaluators() map[string]*chainEval {
	e.evalOnce.Do(func() {
		m := make(map[string]*chainEval, len(e.Rooflines))
		for name, r := range e.Rooflines {
			m[name] = newChainEval(r)
		}
		e.evals = m
	})
	return e.evals
}

// metricBatch is one metric's contribution to a batch estimation.
type metricBatch struct {
	ok      bool
	me      MetricEstimate
	contrib []measureKey // measured-throughput keys, in sample order
}

// weightedScratch pools the per-metric partial-sum buffers handed to
// stats.WeightedMean, so the hot path stops allocating one slice per
// metric per estimation. Buffers keep their grown capacity across uses.
var weightedScratch = sync.Pool{
	New: func() any {
		ws := make([]stats.Weighted, 0, 256)
		return &ws
	},
}

// estimateMetric evaluates one metric's samples against its memoized
// roofline table, writing the result into out (whose contrib slice is
// reused across calls). This is the single implementation of the paper's
// Eq. 1 per-metric time-weighted merge.
func estimateMetric(metric string, im *indexedMetric, ce *chainEval, out *metricBatch) {
	out.ok = false
	out.me = MetricEstimate{}
	out.contrib = out.contrib[:0]

	wsp := weightedScratch.Get().(*[]stats.Weighted)
	ws := (*wsp)[:0]
	defer func() {
		*wsp = ws[:0]
		weightedScratch.Put(wsp)
	}()

	var intensityNum, intensityDen float64
	infIntensity := false
	for i, s := range im.samples {
		intensity := im.intens[i]
		p := ce.eval(intensity)
		if math.IsNaN(p) {
			continue
		}
		ws = append(ws, stats.Weighted{Value: p, Weight: s.T})
		if math.IsInf(intensity, 1) {
			infIntensity = true
		} else {
			intensityNum += s.T * intensity
			intensityDen += s.T
		}
		// When multiple metrics share one period's T and W (the common
		// collection setup), that period must count once in the
		// measured-throughput aggregate. Dedupe by window when the
		// collector tagged one, else by (T, W) value — at merge time.
		out.contrib = append(out.contrib, measureKey{t: s.T, w: s.W, window: s.Window})
	}
	if len(ws) == 0 {
		return
	}
	mean, err := stats.WeightedMean(ws)
	if err != nil {
		return
	}
	out.ok = true
	out.me = MetricEstimate{
		Metric:       metric,
		MeanEstimate: mean,
		Samples:      len(ws),
	}
	switch {
	case intensityDen > 0:
		out.me.MeanIntensity = intensityNum / intensityDen
	case infIntensity:
		out.me.MeanIntensity = math.Inf(1)
	default:
		out.me.MeanIntensity = math.NaN()
	}
}

// batchScratch pools the per-call merge state: the shared-metric list,
// the per-metric result slots (whose contrib slices keep their capacity),
// and the measured-throughput dedup set. Repeated estimations — the serve
// and timeline pattern — reach a steady state with no per-call heap
// growth beyond the returned Estimation itself.
type batchScratch struct {
	shared  []string
	results []metricBatch
	seen    map[measureKey]bool
}

var batchScratchPool = sync.Pool{
	New: func() any {
		return &batchScratch{seen: make(map[measureKey]bool, 64)}
	},
}

// grab readies the scratch for a call needing up to n metric slots.
func (sc *batchScratch) grab(n int) {
	sc.shared = sc.shared[:0]
	if cap(sc.results) < n {
		grown := make([]metricBatch, n)
		copy(grown, sc.results)
		sc.results = grown
	}
	sc.results = sc.results[:0]
	clear(sc.seen)
}

// BatchEstimate runs the Fig. 4 estimation process against a pre-built
// workload index, evaluating all shared metrics concurrently on a bounded
// worker pool (opts.Workers goroutines, default GOMAXPROCS). Per-metric
// results are merged in metric-name order, so the estimation is
// deterministic for every worker count and agrees with Ensemble.Estimate
// (exactly, except MeasuredThroughput which can differ in the last bits
// because Estimate accumulates periods in map order).
//
// Cancelling ctx aborts the remaining metric evaluations and returns
// ctx.Err(). ErrNoSamples is returned when no indexed metric overlaps the
// model.
func (e *Ensemble) BatchEstimate(ctx context.Context, ix *WorkloadIndex, opts EstimateOptions) (*Estimation, error) {
	est := &Estimation{MaxThroughput: math.Inf(1)}
	est.Coverage = e.coverageOf(ix.metrics)

	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	sc.grab(len(ix.metrics))
	for _, metric := range ix.metrics {
		if _, ok := e.Rooflines[metric]; ok {
			sc.shared = append(sc.shared, metric)
		}
	}
	shared := sc.shared
	if len(shared) == 0 {
		return nil, ErrNoSamples
	}
	evals := e.evaluators()
	results := sc.results[:len(shared)]
	sc.results = results

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shared) {
		workers = len(shared)
	}
	run := opts.Runner
	if run == nil {
		run = spawnRun
	}
	run(ctx, workers, len(shared), func(i int) {
		metric := shared[i]
		estimateMetric(metric, ix.groups[metric], evals[metric], &results[i])
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Deterministic merge in metric-name order: per-metric estimates,
	// the ensemble minimum, and the period-deduplicated measured
	// throughput.
	var totT, totW float64
	seen := sc.seen
	for i := range results {
		res := &results[i]
		for _, k := range res.contrib {
			if !seen[k] {
				seen[k] = true
				totT += k.t
				totW += k.w
			}
		}
		if !res.ok {
			continue
		}
		est.PerMetric = append(est.PerMetric, res.me)
		if res.me.MeanEstimate < est.MaxThroughput {
			est.MaxThroughput = res.me.MeanEstimate
		}
	}
	if len(est.PerMetric) == 0 {
		return nil, ErrNoSamples
	}
	sort.Slice(est.PerMetric, func(i, j int) bool {
		a, b := est.PerMetric[i], est.PerMetric[j]
		if a.MeanEstimate != b.MeanEstimate {
			return a.MeanEstimate < b.MeanEstimate
		}
		return a.Metric < b.Metric
	})
	if totT > 0 {
		est.MeasuredThroughput = totW / totT
	} else {
		est.MeasuredThroughput = math.NaN()
	}
	return est, nil
}
