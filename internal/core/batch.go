package core

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// WorkloadIndex is a workload dataset pre-indexed for repeated estimation:
// samples are grouped by metric once, laid out as contiguous per-metric
// columns (structure-of-arrays), and per-sample operational intensities
// are precomputed, so that BatchEstimate does no re-grouping or
// re-derivation work per call and streams each metric's samples as flat
// []float64 scans. An index is immutable and safe for concurrent use by
// any number of estimators.
type WorkloadIndex struct {
	metrics []string // sorted metric names with >= 1 valid sample
	groups  map[string]*indexedMetric

	// uniqT/uniqW are the period-deduplication tables: one entry per
	// distinct measureKey across the whole index, holding that period's
	// (T, W) contribution to the measured-throughput aggregate. Each
	// sample's contribID column points into them, so the merge can dedup
	// with an epoch-stamped array instead of a map. They are nil for
	// indexes built incrementally (IncrementalIndex snapshots), where the
	// merge falls back to the map path.
	uniqT, uniqW []float64
}

// indexedMetric holds one metric's valid samples as parallel columns, in
// dataset arrival order.
type indexedMetric struct {
	t, w      []float64 // Sample.T / Sample.W
	intens    []float64 // Intensity() per sample, precomputed
	window    []int     // Sample.Window
	contribID []uint32  // index into WorkloadIndex.uniqT/uniqW; nil on snapshots
}

// sampleCount returns the number of samples in the group's columns.
func (im *indexedMetric) sampleCount() int { return len(im.t) }

// IndexWorkload groups the workload's valid samples by metric into
// columnar storage and precomputes each sample's operational intensity
// plus the measured-throughput dedup tables. Invalid samples are dropped
// exactly as Dataset.ByMetric drops them; per-metric order is dataset
// order.
func IndexWorkload(d Dataset) *WorkloadIndex {
	ix := &WorkloadIndex{
		groups: make(map[string]*indexedMetric, 16),
	}
	ids := make(map[measureKey]uint32, len(d.Samples))
	for _, s := range d.Samples {
		if !s.Valid() {
			continue
		}
		im, ok := ix.groups[s.Metric]
		if !ok {
			im = &indexedMetric{}
			ix.groups[s.Metric] = im
			ix.metrics = append(ix.metrics, s.Metric)
		}
		im.t = append(im.t, s.T)
		im.w = append(im.w, s.W)
		im.intens = append(im.intens, s.Intensity())
		im.window = append(im.window, s.Window)
		k := measureKey{t: s.T, w: s.W, window: s.Window}
		id, ok := ids[k]
		if !ok {
			id = uint32(len(ix.uniqT))
			ids[k] = id
			ix.uniqT = append(ix.uniqT, s.T)
			ix.uniqW = append(ix.uniqW, s.W)
		}
		im.contribID = append(im.contribID, id)
	}
	sort.Strings(ix.metrics)
	return ix
}

// Metrics returns the sorted metric names with at least one valid sample.
func (ix *WorkloadIndex) Metrics() []string {
	return append([]string(nil), ix.metrics...)
}

// Len returns the number of indexed (valid) samples.
func (ix *WorkloadIndex) Len() int {
	n := 0
	for _, im := range ix.groups {
		n += im.sampleCount()
	}
	return n
}

// EstimateOptions configures BatchEstimate.
type EstimateOptions struct {
	// Workers bounds the number of metrics estimated concurrently. Zero
	// or negative selects GOMAXPROCS. Results are identical for every
	// worker count.
	Workers int
	// Runner, when non-nil, executes the per-metric estimation tasks:
	// it must call task(i) exactly once for every i in [0, n) unless ctx
	// is canceled, and return only when all started tasks have finished.
	// The engine supplies its process-wide shared worker pool here; nil
	// spawns up to Workers goroutines for this call (or runs inline when
	// one worker is requested).
	Runner func(ctx context.Context, workers, n int, task func(int))
}

// spawnRun is the default Runner: it spawns up to workers goroutines for
// this one call, each pulling task indices from a shared cursor.
func spawnRun(ctx context.Context, workers, n int, task func(int)) {
	if workers > n {
		workers = n
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}

// chainEval is a precomputed evaluator for one roofline: the chain is
// flattened into parallel breakpoint columns plus a per-segment start
// table, and segment lookup runs by interpolation search over the
// breakpoint abscissae. The segment table stores endpoints — not a
// precomputed slope — because evaluating y0 + ((i-x0)/(x1-x0))*(y1-y0)
// with the division done at eval time reproduces Roofline.Eval's rounding
// bit for bit, which a premultiplied dy/dx would not. Its arithmetic
// mirrors Roofline.Eval segment for segment, so the two produce
// bit-identical values.
type chainEval struct {
	// Left chain: breakpoint k ends segment k, which starts at
	// (lx0[k], ly0[k]) — the origin for k == 0, breakpoint k-1 otherwise.
	leftX, leftY []float64
	lx0, ly0     []float64
	peakX, peakY float64
	// Right chain breakpoints; segment k spans breakpoints k..k+1.
	rightX, rightY []float64
	tail           float64
}

// newChainEval builds the segment table for r. It tolerates structurally
// odd chains (it never panics); garbage chains yield the same garbage
// values Roofline.Eval would.
func newChainEval(r *Roofline) *chainEval {
	peak := r.Peak()
	ce := &chainEval{
		peakX: peak.X,
		peakY: peak.Y,
		tail:  r.TailY,
	}
	ce.leftX = make([]float64, len(r.Left))
	ce.leftY = make([]float64, len(r.Left))
	ce.lx0 = make([]float64, len(r.Left))
	ce.ly0 = make([]float64, len(r.Left))
	for i, p := range r.Left {
		ce.leftX[i] = p.X
		ce.leftY[i] = p.Y
		if i > 0 {
			ce.lx0[i] = r.Left[i-1].X
			ce.ly0[i] = r.Left[i-1].Y
		}
	}
	ce.rightX = make([]float64, len(r.Right))
	ce.rightY = make([]float64, len(r.Right))
	for i, p := range r.Right {
		ce.rightX[i] = p.X
		ce.rightY[i] = p.Y
	}
	return ce
}

// searchGE returns the smallest k with xs[k] >= x, or len(xs) when every
// element is smaller — exactly sort.SearchFloat64s's contract. On sorted
// input it is guaranteed to return the identical index: every probe only
// narrows [lo, hi] under the same monotone predicate, so the fixpoint is
// the same boundary regardless of how probes are chosen. Probes alternate
// between interpolation (which lands near the target in O(log log n) on
// evenly distributed abscissae — the common shape of fitted breakpoints)
// and bisection (which bounds the worst case at O(log n) on adversarial
// ones). Unsorted or NaN-laden input yields some index without panicking,
// matching binary search's garbage-in behavior.
func searchGE(xs []float64, x float64) int {
	lo, hi := 0, len(xs)
	interpolate := true
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if interpolate && hi-lo > 4 {
			a, b := xs[lo], xs[hi-1]
			if b > a && x > a && x < b {
				k := lo + int((x-a)/(b-a)*float64(hi-1-lo))
				// Clamp: on garbage input the estimate can land anywhere.
				if k >= lo && k < hi {
					mid = k
				}
			}
		}
		if xs[mid] >= x {
			hi = mid
		} else {
			lo = mid + 1
		}
		interpolate = !interpolate
	}
	return lo
}

// eval is the interpolation-search twin of Roofline.Eval.
func (ce *chainEval) eval(i float64) float64 {
	if math.IsNaN(i) {
		return math.NaN()
	}
	nl := len(ce.leftX)
	if nl == 0 {
		return math.NaN()
	}
	if i < 0 {
		i = 0
	}
	if i <= ce.peakX {
		// First breakpoint at or beyond i, as evalChainFromOrigin's
		// linear walk finds it.
		k := searchGE(ce.leftX, i)
		if k >= nl {
			return ce.leftY[nl-1]
		}
		x0, y0 := ce.lx0[k], ce.ly0[k]
		x1, y1 := ce.leftX[k], ce.leftY[k]
		if x1 == x0 {
			return y1
		}
		return lerpSeg(x0, y0, x1, y1, i)
	}
	nr := len(ce.rightX)
	if nr == 0 {
		return ce.tail
	}
	if i < ce.rightX[0] {
		return ce.peakY
	}
	if i >= ce.rightX[nr-1] {
		return ce.tail
	}
	// Rightmost segment start with rightX[k] <= i, the index Eval's
	// bisection converges to. searchGE returns the FIRST index with
	// rightX[k] >= i; on an exact hit that may be the head of a
	// duplicate-X run whose zero-width segment Eval never selects, so
	// walk the run of equal abscissae to its end before stepping back.
	k := searchGE(ce.rightX, i)
	for k < nr && ce.rightX[k] <= i {
		k++
	}
	k--
	if k < 0 {
		return ce.peakY
	}
	if k+1 >= nr {
		return ce.tail
	}
	x0, y0 := ce.rightX[k], ce.rightY[k]
	x1, y1 := ce.rightX[k+1], ce.rightY[k+1]
	return lerpSeg(x0, y0, x1, y1, i)
}

// evaluators returns the memoized segment tables, building them on first
// use. Safe for concurrent callers; rooflines must not be mutated after
// the first estimation (trained and loaded ensembles never are).
func (e *Ensemble) evaluators() map[string]*chainEval {
	e.evalOnce.Do(func() {
		m := make(map[string]*chainEval, len(e.Rooflines))
		names := make([]string, 0, len(e.Rooflines))
		for name, r := range e.Rooflines {
			m[name] = newChainEval(r)
			names = append(names, name)
		}
		sort.Strings(names)
		e.evals = m
		e.sortedNames = names
		if h := e.Hierarchy; h != nil && len(h.Surfaces) > 0 {
			e.surfEvals = make([]*chainEval, len(h.Surfaces))
			for i := range h.Surfaces {
				e.surfEvals[i] = surfaceChain(&h.Surfaces[i])
			}
		}
	})
	return e.evals
}

// surfaceEvals returns the memoized surface segment tables, parallel to
// e.Hierarchy.Surfaces (nil for models without surfaces).
func (e *Ensemble) surfaceEvals() []*chainEval {
	e.evaluators()
	return e.surfEvals
}

// metricBatch is one metric's contribution to a batch estimation.
type metricBatch struct {
	ok      bool
	me      MetricEstimate
	contrib []uint32 // contributing sample indices (into the metric's columns)
}

// estimateMetric evaluates one metric's sample columns against its
// memoized roofline table, writing the result into out (whose contrib
// slice is reused across calls). This is the single implementation of the
// paper's Eq. 1 per-metric time-weighted merge. The weighted mean is
// accumulated inline in column order — term for term the same sums
// stats.WeightedMean computes, whose error paths are unreachable here
// because every indexed sample has T > 0 (Sample.Valid).
func estimateMetric(metric string, im *indexedMetric, ce *chainEval, out *metricBatch) {
	out.ok = false
	out.me = MetricEstimate{}
	out.contrib = out.contrib[:0]

	var num, den float64
	var intensityNum, intensityDen float64
	infIntensity := false
	for j, intensity := range im.intens {
		p := ce.eval(intensity)
		if math.IsNaN(p) {
			continue
		}
		t := im.t[j]
		num += t * p
		den += t
		if math.IsInf(intensity, 1) {
			infIntensity = true
		} else {
			intensityNum += t * intensity
			intensityDen += t
		}
		// When multiple metrics share one period's T and W (the common
		// collection setup), that period must count once in the
		// measured-throughput aggregate. Record the contributing sample;
		// the merge dedupes by window when the collector tagged one, else
		// by (T, W) value.
		out.contrib = append(out.contrib, uint32(j))
	}
	if len(out.contrib) == 0 || den == 0 {
		return
	}
	out.ok = true
	out.me = MetricEstimate{
		Metric:       metric,
		MeanEstimate: num / den,
		Samples:      len(out.contrib),
	}
	switch {
	case intensityDen > 0:
		out.me.MeanIntensity = intensityNum / intensityDen
	case infIntensity:
		out.me.MeanIntensity = math.Inf(1)
	default:
		out.me.MeanIntensity = math.NaN()
	}
}

// perMetricSorter orders the ranking ascending by MeanEstimate with the
// metric name as tiebreak — a total order (names are unique), so every
// sorting algorithm yields the same permutation. It lives in the pooled
// scratch so sort.Sort sees an already-heap-allocated interface value and
// the hot path stays allocation-free.
type perMetricSorter struct{ ms []MetricEstimate }

func (s *perMetricSorter) Len() int      { return len(s.ms) }
func (s *perMetricSorter) Swap(i, j int) { s.ms[i], s.ms[j] = s.ms[j], s.ms[i] }
func (s *perMetricSorter) Less(i, j int) bool {
	a, b := s.ms[i], s.ms[j]
	if a.MeanEstimate != b.MeanEstimate {
		return a.MeanEstimate < b.MeanEstimate
	}
	return a.Metric < b.Metric
}

// batchScratch pools the per-call merge state: the shared-metric list,
// the per-metric result slots (whose contrib slices keep their capacity),
// the measured-throughput dedup state — an epoch-stamped array over the
// index's contribution IDs, plus the map fallback for indexes without ID
// tables — and the ranking sorter. Repeated estimations — the serve and
// timeline pattern — reach a steady state with no per-call heap growth.
type batchScratch struct {
	shared  []string
	results []metricBatch
	seen    map[measureKey]bool
	stamp   []uint32
	epoch   uint32
	sorter  perMetricSorter
}

var batchScratchPool = sync.Pool{
	New: func() any {
		return &batchScratch{seen: make(map[measureKey]bool, 64)}
	},
}

// grab readies the scratch for a call needing up to n metric slots.
func (sc *batchScratch) grab(n int) {
	sc.shared = sc.shared[:0]
	if cap(sc.results) < n {
		grown := make([]metricBatch, n)
		copy(grown, sc.results)
		sc.results = grown
	}
	sc.results = sc.results[:0]
}

// stampTable readies the epoch-stamp dedup array for n contribution IDs
// and returns it along with the epoch value that marks "seen this call".
func (sc *batchScratch) stampTable(n int) ([]uint32, uint32) {
	if cap(sc.stamp) < n {
		sc.stamp = make([]uint32, n)
		sc.epoch = 0
	}
	sc.stamp = sc.stamp[:cap(sc.stamp)]
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could alias, wipe them
		clear(sc.stamp)
		sc.epoch = 1
	}
	return sc.stamp, sc.epoch
}

// BatchEstimate runs the Fig. 4 estimation process against a pre-built
// workload index. It allocates a fresh Estimation; steady-state callers
// (serving, streaming re-estimation) use BatchEstimateInto to reuse one.
func (e *Ensemble) BatchEstimate(ctx context.Context, ix *WorkloadIndex, opts EstimateOptions) (*Estimation, error) {
	est := &Estimation{}
	if err := e.BatchEstimateInto(ctx, ix, opts, est); err != nil {
		return nil, err
	}
	return est, nil
}

// BatchEstimateInto runs the Fig. 4 estimation process against a
// pre-built workload index, evaluating all shared metrics concurrently on
// a bounded worker pool (opts.Workers goroutines, default GOMAXPROCS; a
// single worker runs inline with no goroutines). Per-metric results are
// merged in metric-name order, so the estimation is deterministic for
// every worker count and agrees with Ensemble.Estimate.
//
// The result is written into est, reusing its slice capacities: a caller
// that keeps one Estimation per loop reaches zero allocations per call in
// steady state. On error est's contents are unspecified.
//
// Cancelling ctx aborts the remaining metric evaluations and returns
// ctx.Err(). ErrNoSamples is returned when no indexed metric overlaps the
// model.
func (e *Ensemble) BatchEstimateInto(ctx context.Context, ix *WorkloadIndex, opts EstimateOptions, est *Estimation) error {
	evals := e.evaluators()
	est.PerMetric = est.PerMetric[:0]
	est.MaxThroughput = math.Inf(1)
	est.MeasuredThroughput = 0
	e.coverageInto(ix.metrics, &est.Coverage)

	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	sc.grab(len(ix.metrics))
	for _, metric := range ix.metrics {
		if _, ok := e.Rooflines[metric]; ok {
			sc.shared = append(sc.shared, metric)
		}
	}
	shared := sc.shared
	if len(shared) == 0 {
		return ErrNoSamples
	}
	results := sc.results[:len(shared)]
	sc.results = results

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shared) {
		workers = len(shared)
	}
	if run := opts.Runner; run != nil || workers > 1 {
		if run == nil {
			run = spawnRun
		}
		run(ctx, workers, len(shared), func(i int) {
			metric := shared[i]
			estimateMetric(metric, ix.groups[metric], evals[metric], &results[i])
		})
	} else {
		// Inline serial path: no goroutine handoff, no closure.
		for i := range shared {
			if ctx.Err() != nil {
				break
			}
			estimateMetric(shared[i], ix.groups[shared[i]], evals[shared[i]], &results[i])
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Deterministic merge in metric-name order: per-metric estimates,
	// the ensemble minimum, and the period-deduplicated measured
	// throughput. Indexes built by IndexWorkload carry contribution-ID
	// tables, so dedup is an epoch-stamped array scan; incremental
	// snapshots fall back to the key map. Both visit periods in the same
	// order, so the float accumulation is bit-identical.
	var totT, totW float64
	if ix.uniqT != nil {
		stamp, epoch := sc.stampTable(len(ix.uniqT))
		for i := range results {
			res := &results[i]
			ids := ix.groups[shared[i]].contribID
			for _, j := range res.contrib {
				id := ids[j]
				if stamp[id] != epoch {
					stamp[id] = epoch
					totT += ix.uniqT[id]
					totW += ix.uniqW[id]
				}
			}
			mergeMetric(est, res)
		}
	} else {
		seen := sc.seen
		clear(seen)
		for i := range results {
			res := &results[i]
			im := ix.groups[shared[i]]
			for _, j := range res.contrib {
				k := measureKey{t: im.t[j], w: im.w[j], window: im.window[j]}
				if !seen[k] {
					seen[k] = true
					totT += k.t
					totW += k.w
				}
			}
			mergeMetric(est, res)
		}
	}
	if len(est.PerMetric) == 0 {
		return ErrNoSamples
	}
	sc.sorter.ms = est.PerMetric
	sort.Sort(&sc.sorter)
	sc.sorter.ms = nil
	if totT > 0 {
		est.MeasuredThroughput = totW / totT
	} else {
		est.MeasuredThroughput = math.NaN()
	}
	e.applyHierarchy(ix, est)
	return nil
}

// mergeMetric folds one metric's result into the estimation.
func mergeMetric(est *Estimation, res *metricBatch) {
	if !res.ok {
		return
	}
	est.PerMetric = append(est.PerMetric, res.me)
	if res.me.MeanEstimate < est.MaxThroughput {
		est.MaxThroughput = res.me.MeanEstimate
	}
}
