package core

// Hierarchical multi-resource estimation: a trained ensemble may carry a
// HierarchyModel that maps named memory levels (L1/L2/L3/DRAM) onto the
// per-level traffic metrics the ensemble already models, plus
// parameterized roofline surfaces whose ceiling is a function of a
// workload parameter (sparsity, vector-width mix). Estimation then
// reports the *binding level* — which memory level's roofline admits the
// least throughput — alongside the flat Eq. 1 ranking, and tightens the
// overall bound with the surface ceilings. The hierarchy refines an
// estimation but never mutates the flat fields (PerMetric,
// MaxThroughput, MeasuredThroughput, Coverage), so a model without a
// hierarchy — and the degenerate single-level case — produce output
// byte-identical to the flat rooflines.

import (
	"fmt"
	"math"

	"spire/internal/geom"
)

// HierarchyLevel binds one named memory-hierarchy level to the counter
// metric that carries its traffic (e.g. "L2" → "mem_load_retired.l2_hit").
type HierarchyLevel struct {
	Level  string `json:"level"`
	Metric string `json:"metric"`
}

// SurfacePoint is one trained breakpoint of a parameterized roofline
// surface: the achievable ceiling at one workload-parameter value.
type SurfacePoint struct {
	Param   float64 `json:"param"`
	Ceiling float64 `json:"ceiling"`
}

// Surface is a parameterized roofline surface: the achievable ceiling as
// a piecewise-linear function of a workload parameter, trained by
// calibration sweeps. At estimation time the parameter value is recovered
// from the workload's own samples of the Param metric — its time-weighted
// event rate per unit of work — and the ceiling is evaluated through the
// same flattened segment tables the rooflines use.
type Surface struct {
	// Name labels the parameter ("sparsity", "vec-width-mix").
	Name string `json:"name,omitempty"`
	// Param is the counter metric whose per-work rate parameterizes the
	// ceiling.
	Param string `json:"param"`
	// Points are the swept breakpoints in ascending Param order.
	Points []SurfacePoint `json:"points"`
}

// HierarchyModel is the optional hierarchical extension of a trained
// ensemble.
type HierarchyModel struct {
	// Levels maps hierarchy levels to traffic metrics, fastest first.
	Levels []HierarchyLevel `json:"levels"`
	// Surfaces are the parameterized ceilings, if any were trained.
	Surfaces []Surface `json:"surfaces,omitempty"`
}

// DefaultHierarchyLevels returns the standard four-level mapping onto the
// per-level load-retirement events the pmu registry defines: a level's
// traffic metric is the loads *served by* that level, with DRAM carried
// by the L3 miss count.
func DefaultHierarchyLevels() []HierarchyLevel {
	return []HierarchyLevel{
		{Level: "L1", Metric: "mem_load_retired.l1_hit"},
		{Level: "L2", Metric: "mem_load_retired.l2_hit"},
		{Level: "L3", Metric: "mem_load_retired.l3_hit"},
		{Level: "DRAM", Metric: "mem_load_retired.l3_miss"},
	}
}

// Validate checks the hierarchy's structure: at least one level, unique
// non-empty level names and metrics, and well-formed surfaces (non-empty
// param metric, ascending finite breakpoints, finite non-negative
// ceilings). Estimation itself never panics on a hostile hierarchy; this
// gate is for model load/upload paths.
func (h *HierarchyModel) Validate() error {
	if len(h.Levels) == 0 {
		return fmt.Errorf("core: hierarchy has no levels")
	}
	names := make(map[string]bool, len(h.Levels))
	metrics := make(map[string]bool, len(h.Levels))
	for k, lv := range h.Levels {
		if lv.Level == "" {
			return fmt.Errorf("core: hierarchy level %d has no name", k)
		}
		if lv.Metric == "" {
			return fmt.Errorf("core: hierarchy level %q has no metric", lv.Level)
		}
		if names[lv.Level] {
			return fmt.Errorf("core: duplicate hierarchy level %q", lv.Level)
		}
		if metrics[lv.Metric] {
			return fmt.Errorf("core: hierarchy metric %q mapped twice", lv.Metric)
		}
		names[lv.Level] = true
		metrics[lv.Metric] = true
	}
	params := make(map[string]bool, len(h.Surfaces))
	for k, s := range h.Surfaces {
		if s.Param == "" {
			return fmt.Errorf("core: surface %d has no param metric", k)
		}
		if params[s.Param] {
			return fmt.Errorf("core: surface param %q mapped twice", s.Param)
		}
		params[s.Param] = true
		if len(s.Points) == 0 {
			return fmt.Errorf("core: surface %q has no points", s.Param)
		}
		for j, p := range s.Points {
			if math.IsNaN(p.Param) || math.IsInf(p.Param, 0) {
				return fmt.Errorf("core: surface %q point %d has non-finite param", s.Param, j)
			}
			if math.IsNaN(p.Ceiling) || math.IsInf(p.Ceiling, 0) || p.Ceiling < 0 {
				return fmt.Errorf("core: surface %q point %d ceiling must be finite and non-negative", s.Param, j)
			}
			if j > 0 && p.Param < s.Points[j-1].Param {
				return fmt.Errorf("core: surface %q points not ascending at %d", s.Param, j)
			}
		}
	}
	return nil
}

// LevelEstimate is one hierarchy level's slice of an estimation: the
// level's Eq. 1 roofline estimate on its traffic metric.
type LevelEstimate struct {
	Level         string  `json:"level"`
	Metric        string  `json:"metric"`
	MeanEstimate  float64 `json:"meanEstimate"`
	Samples       int     `json:"samples"`
	MeanIntensity float64 `json:"meanIntensity"`
}

// SurfaceEstimate is one surface's evaluation against a workload: the
// recovered parameter value and the ceiling there.
type SurfaceEstimate struct {
	Name string `json:"name,omitempty"`
	// Param is the surface's parameter metric.
	Param string `json:"param"`
	// ParamValue is the workload's recovered parameter: the time-weighted
	// average of the metric's event count per unit of work.
	ParamValue float64 `json:"paramValue"`
	// Ceiling is the surface's achievable ceiling at ParamValue.
	Ceiling float64 `json:"ceiling"`
	// Binding reports whether this ceiling is below the flat Eq. 1
	// estimate — the surface, not a counter roofline, bounds the workload.
	Binding bool `json:"binding"`
}

// HierarchyEstimate reports which memory-hierarchy level binds a workload.
// It is attached to an Estimation only when the model carries a hierarchy
// and at least two levels had measured traffic; the single-level
// degenerate case is indistinguishable from a flat roofline and reports
// nothing, keeping flat output byte-identical.
type HierarchyEstimate struct {
	// BindingLevel is the level whose roofline admits the least
	// throughput; BindingMetric is its traffic metric.
	BindingLevel  string `json:"bindingLevel"`
	BindingMetric string `json:"bindingMetric"`
	// BindingEstimate is the Eq. 1 estimate at the binding level.
	BindingEstimate float64 `json:"bindingEstimate"`
	// BoundThroughput is the hierarchy-refined overall bound:
	// min(MaxThroughput, every surface ceiling).
	BoundThroughput float64 `json:"boundThroughput"`
	// Levels holds one entry per hierarchy level with measured traffic,
	// in model level order (fastest first).
	Levels []LevelEstimate `json:"levels"`
	// Surfaces holds one entry per surface whose param metric the
	// workload measured.
	Surfaces []SurfaceEstimate `json:"surfaces,omitempty"`
}

// BandwidthRoofline builds the roofline of one memory level from its
// deliverable bandwidth: P(I) = min(peak, (β/lineBytes)·I) where I is
// work per line-granular traffic event at that level. The chain is the
// two-segment left hull [origin → ridge → flat tail], which the columnar
// evaluator reproduces exactly.
func BandwidthRoofline(metric string, peak, bytesPerCycle, lineBytes float64) (*Roofline, error) {
	if peak <= 0 || math.IsNaN(peak) || math.IsInf(peak, 0) {
		return nil, fmt.Errorf("core: bandwidth roofline %q: peak must be positive and finite", metric)
	}
	if bytesPerCycle <= 0 || math.IsNaN(bytesPerCycle) || math.IsInf(bytesPerCycle, 0) {
		return nil, fmt.Errorf("core: bandwidth roofline %q: bandwidth must be positive and finite", metric)
	}
	if lineBytes <= 0 || math.IsNaN(lineBytes) || math.IsInf(lineBytes, 0) {
		return nil, fmt.Errorf("core: bandwidth roofline %q: line size must be positive and finite", metric)
	}
	ridge := peak * lineBytes / bytesPerCycle
	return &Roofline{
		Metric: metric,
		Left:   []geom.Point{{X: ridge, Y: peak}},
		TailY:  peak,
	}, nil
}

// surfaceChain builds the flattened segment table that evaluates a
// surface through the same columnar machinery as a roofline left chain:
// the ceiling clamps to the first breakpoint below the swept range (a
// zero-width lead-in segment pins x=0 to the first ceiling) and to the
// last breakpoint above it (TailY).
func surfaceChain(s *Surface) *chainEval {
	pts := make([]geom.Point, 0, len(s.Points)+1)
	if len(s.Points) > 0 && s.Points[0].Param > 0 {
		pts = append(pts, geom.Point{X: 0, Y: s.Points[0].Ceiling})
	}
	for _, p := range s.Points {
		pts = append(pts, geom.Point{X: p.Param, Y: p.Ceiling})
	}
	r := &Roofline{Metric: s.Param, Left: pts}
	if len(pts) > 0 {
		r.TailY = pts[len(pts)-1].Y
	}
	return newChainEval(r)
}

// surfaceParam recovers a surface's workload-parameter value from the
// param metric's sample columns: the time-weighted average event count
// per unit of work, Σ t_j·(m_j/w_j) / Σ t_j. The per-sample rate is the
// reciprocal of the indexed operational intensity, so never-firing
// samples (intensity +Inf) contribute rate 0.
func surfaceParam(im *indexedMetric) float64 {
	var num, den float64
	for j, intensity := range im.intens {
		rate := 1 / intensity
		if math.IsNaN(rate) {
			continue
		}
		t := im.t[j]
		num += t * rate
		den += t
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// findPerMetric locates a metric in the (estimate-sorted) ranking.
func findPerMetric(ms []MetricEstimate, metric string) int {
	for i := range ms {
		if ms[i].Metric == metric {
			return i
		}
	}
	return -1
}

// applyHierarchy fills est.Hierarchy from the model's hierarchy, reusing
// est's previous HierarchyEstimate allocation and slice capacities so the
// steady-state BatchEstimateInto loop stays allocation-free. Models
// without a hierarchy — and workloads where fewer than two hierarchy
// levels had measured traffic (the flat-equivalent degenerate case) —
// reset est.Hierarchy to nil. Flat estimation fields are never touched.
func (e *Ensemble) applyHierarchy(ix *WorkloadIndex, est *Estimation) {
	h := e.Hierarchy
	if h == nil {
		est.Hierarchy = nil
		return
	}
	found := 0
	for _, lv := range h.Levels {
		if findPerMetric(est.PerMetric, lv.Metric) >= 0 {
			found++
		}
	}
	if found < 2 {
		est.Hierarchy = nil
		return
	}

	he := est.Hierarchy
	if he == nil {
		he = &HierarchyEstimate{}
		est.Hierarchy = he
	}
	he.Levels = he.Levels[:0]
	he.Surfaces = he.Surfaces[:0]
	he.BindingLevel, he.BindingMetric = "", ""
	he.BindingEstimate = math.Inf(1)
	for _, lv := range h.Levels {
		k := findPerMetric(est.PerMetric, lv.Metric)
		if k < 0 {
			continue
		}
		me := &est.PerMetric[k]
		he.Levels = append(he.Levels, LevelEstimate{
			Level:         lv.Level,
			Metric:        lv.Metric,
			MeanEstimate:  me.MeanEstimate,
			Samples:       me.Samples,
			MeanIntensity: me.MeanIntensity,
		})
		// Strict less-than: ties resolve to the fastest (earliest) level.
		if me.MeanEstimate < he.BindingEstimate {
			he.BindingEstimate = me.MeanEstimate
			he.BindingLevel = lv.Level
			he.BindingMetric = lv.Metric
		}
	}
	if he.BindingLevel == "" {
		// Every level estimate was +Inf (or NaN-free comparison failed):
		// fall back to the fastest measured level.
		lv := he.Levels[0]
		he.BindingLevel, he.BindingMetric = lv.Level, lv.Metric
		he.BindingEstimate = lv.MeanEstimate
	}

	bound := est.MaxThroughput
	surfEvals := e.surfaceEvals()
	for si := range h.Surfaces {
		s := &h.Surfaces[si]
		im, ok := ix.groups[s.Param]
		if !ok {
			continue
		}
		p := surfaceParam(im)
		ceiling := surfEvals[si].eval(p)
		he.Surfaces = append(he.Surfaces, SurfaceEstimate{
			Name:       s.Name,
			Param:      s.Param,
			ParamValue: p,
			Ceiling:    ceiling,
			Binding:    ceiling < est.MaxThroughput,
		})
		if ceiling < bound {
			bound = ceiling
		}
	}
	he.BoundThroughput = bound
}
