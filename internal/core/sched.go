package core

import (
	"fmt"
	"math"
)

// Off-CPU time accounting types. SchedEvent is the serialized form of a
// scheduler event (internal/pmu holds the compact in-memory form);
// CombinedReport is the strictly-additive result of merging roofline
// verdicts (on-CPU) with wait-for-graph verdicts (off-CPU). All fields
// added to existing types are omitempty so datasets and estimations with
// zero scheduler events encode byte-identically to before.

// SchedEvent is one scheduler event: a thread switched in or out,
// blocked on a lock or device, or became runnable. Time is in the same
// unit as Sample.T (cycles).
type SchedEvent struct {
	// Time is the event timestamp in cycles since the run started.
	Time float64 `json:"time"`
	// Class is the canonical event class name ("sched.switch_in", ...).
	Class string `json:"class"`
	// Thread is the subject thread id (>= 0).
	Thread int `json:"thread"`
	// Hart is the hart the event occurred on, for running-state classes.
	Hart int `json:"hart,omitempty"`
	// Obj names the lock or device for block/unblock classes.
	Obj string `json:"obj,omitempty"`
	// Waker is the thread that made this one runnable (the releasing
	// lock holder, the waking producer); -1 when not applicable.
	Waker int `json:"waker"`
	// Window optionally ties the event to a collection interval, like
	// Sample.Window. Zero when the collector does not track windows.
	Window int `json:"window,omitempty"`
}

// Valid reports whether the event is structurally usable: finite
// non-negative time, a non-empty class, a non-negative thread, and a
// waker of -1 or a valid thread id.
func (e SchedEvent) Valid() bool {
	if e.Class == "" || e.Thread < 0 || e.Waker < -1 || e.Hart < 0 {
		return false
	}
	if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) || e.Time < 0 {
		return false
	}
	return true
}

// String renders the event for diagnostics.
func (e SchedEvent) String() string {
	return fmt.Sprintf("%s{t=%g thread=%d hart=%d obj=%q waker=%d}",
		e.Class, e.Time, e.Thread, e.Hart, e.Obj, e.Waker)
}

// TimePartition splits a workload's wall time (summed across threads)
// into on-CPU and off-CPU components. By construction OffCPU ==
// LockWait + IOWait + RunnableWait and Wall == OnCPU + OffCPU, exactly:
// the sums are built from the same float64 additions.
type TimePartition struct {
	// Wall is total thread-time: for each thread, last event time minus
	// first event time, summed.
	Wall float64 `json:"wall"`
	// OnCPU is time threads spent running on a hart.
	OnCPU float64 `json:"onCPU"`
	// OffCPU is time threads spent not running: blocked or runnable.
	OffCPU float64 `json:"offCPU"`
	// LockWait is time blocked acquiring locks.
	LockWait float64 `json:"lockWait"`
	// IOWait is time blocked on device I/O.
	IOWait float64 `json:"ioWait"`
	// RunnableWait is time spent runnable but not running (waiting for
	// a free hart).
	RunnableWait float64 `json:"runnableWait"`
	// Threads is the number of distinct threads observed.
	Threads int `json:"threads"`
}

// OffShare returns OffCPU / Wall, or 0 when Wall is 0.
func (p TimePartition) OffShare() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return p.OffCPU / p.Wall
}

// WaitVerdict is one off-CPU bottleneck candidate from the wait-for
// graph: a contended lock, a saturated device, run-queue pressure, or a
// knot (a group of threads waiting only on each other).
type WaitVerdict struct {
	// Kind is "lock", "io", "runnable", or "knot".
	Kind string `json:"kind"`
	// Object names the lock or device; for "knot" it lists the member
	// threads ("threads 1,2,3"); empty for "runnable".
	Object string `json:"object,omitempty"`
	// Wait is the total time threads spent waiting on this cause.
	Wait float64 `json:"wait"`
	// Share is Wait / Wall.
	Share float64 `json:"share"`
	// Waiters is the number of distinct threads that waited.
	Waiters int `json:"waiters"`
	// Threads lists the member threads for "knot" verdicts, ascending.
	Threads []int `json:"threads,omitempty"`
}

// CombinedBottleneck is one entry of the merged ranking. Exactly one of
// the two sides is populated: roofline entries carry Metric, wait
// entries carry Wait.
type CombinedBottleneck struct {
	// Source is "roofline" or "wait".
	Source string `json:"source"`
	// Score is the fraction of wall time this bottleneck explains;
	// the ranking sorts descending by Score.
	Score float64 `json:"score"`
	// Detail is a one-line human description.
	Detail string `json:"detail"`
	// Metric is the roofline metric name (Source == "roofline").
	Metric string `json:"metric,omitempty"`
	// Wait is the wait verdict (Source == "wait").
	Wait *WaitVerdict `json:"wait,omitempty"`
}

// CombinedReport merges the roofline estimation (on-CPU) with the
// wait-for-graph analysis (off-CPU) into a single partitioned view and
// one ranked bottleneck list. It is strictly additive: it only appears
// when scheduler events were present.
type CombinedReport struct {
	// Partition is the exact on-CPU/off-CPU wall-time split.
	Partition TimePartition `json:"partition"`
	// Waits are the off-CPU verdicts, sorted descending by Wait.
	Waits []WaitVerdict `json:"waits,omitempty"`
	// Knot is true when the wait-for graph contains at least one knot.
	Knot bool `json:"knot,omitempty"`
	// Ranked is the merged bottleneck list, descending by Score.
	Ranked []CombinedBottleneck `json:"ranked"`
}

// Top returns the highest-scored bottleneck, or nil when empty.
func (r *CombinedReport) Top() *CombinedBottleneck {
	if r == nil || len(r.Ranked) == 0 {
		return nil
	}
	return &r.Ranked[0]
}
