package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// estimationsEquivalent compares two estimations field by field. Every
// field must match exactly except MeasuredThroughput, which may differ in
// the last bits because Ensemble.Estimate accumulates deduplicated
// periods in map-iteration order while BatchEstimate merges them in
// metric-name order.
func estimationsEquivalent(t *testing.T, got, want *Estimation) {
	t.Helper()
	if !reflect.DeepEqual(got.PerMetric, want.PerMetric) {
		// NaN-tolerant per-metric comparison: DeepEqual is false for
		// NaN MeanIntensity even when both sides agree.
		if len(got.PerMetric) != len(want.PerMetric) {
			t.Fatalf("PerMetric length %d != %d", len(got.PerMetric), len(want.PerMetric))
		}
		for i := range got.PerMetric {
			g, w := got.PerMetric[i], want.PerMetric[i]
			if g.Metric != w.Metric || g.MeanEstimate != w.MeanEstimate || g.Samples != w.Samples {
				t.Fatalf("PerMetric[%d] = %+v, want %+v", i, g, w)
			}
			if g.MeanIntensity != w.MeanIntensity &&
				!(math.IsNaN(g.MeanIntensity) && math.IsNaN(w.MeanIntensity)) {
				t.Fatalf("PerMetric[%d].MeanIntensity = %g, want %g", i, g.MeanIntensity, w.MeanIntensity)
			}
		}
	}
	if got.MaxThroughput != want.MaxThroughput {
		t.Fatalf("MaxThroughput %g != %g", got.MaxThroughput, want.MaxThroughput)
	}
	if !reflect.DeepEqual(got.Coverage, want.Coverage) {
		t.Fatalf("Coverage %+v != %+v", got.Coverage, want.Coverage)
	}
	gm, wm := got.MeasuredThroughput, want.MeasuredThroughput
	if math.IsNaN(gm) != math.IsNaN(wm) {
		t.Fatalf("MeasuredThroughput NaN-ness differs: %g vs %g", gm, wm)
	}
	if !math.IsNaN(gm) && math.Abs(gm-wm) > 1e-9*(1+math.Abs(wm)) {
		t.Fatalf("MeasuredThroughput %g != %g", gm, wm)
	}
}

// randWorkload builds a workload over a random subset of metric names,
// with occasional corrupt rows, shared windows and M = 0 (I = +Inf)
// samples.
func randWorkload(rng *rand.Rand) Dataset {
	names := []string{"alpha", "beta", "gamma", "delta", "unmodeled.event"}
	var d Dataset
	n := rng.Intn(60)
	for i := 0; i < n; i++ {
		s := Sample{
			Metric: names[rng.Intn(len(names))],
			T:      float64(1 + rng.Intn(6)),
			W:      float64(rng.Intn(30)),
			M:      float64(rng.Intn(6)),
			Window: rng.Intn(4),
		}
		if rng.Intn(12) == 0 {
			s.T = -s.T // invalid, must be dropped by indexing
		}
		d.Add(s)
	}
	return d
}

// TestBatchEstimateMatchesEstimate: for random models and workloads, the
// pre-indexed concurrent path reproduces Ensemble.Estimate for every
// worker count.
func TestBatchEstimateMatchesEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ctx := context.Background()
	checked := 0
	for checked < 120 {
		train := randMultiMetricDataset(rng, 4)
		ens, err := Train(train, TrainOptions{})
		if err != nil {
			continue
		}
		w := randWorkload(rng)
		want, werr := ens.Estimate(w)
		ix := IndexWorkload(w)
		for _, workers := range []int{0, 1, 2, 5, 33} {
			got, gerr := ens.BatchEstimate(ctx, ix, EstimateOptions{Workers: workers})
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("workers=%d: error mismatch: %v vs %v", workers, gerr, werr)
			}
			if werr != nil {
				if !errors.Is(gerr, ErrNoSamples) {
					t.Fatalf("workers=%d: unexpected error %v", workers, gerr)
				}
				continue
			}
			estimationsEquivalent(t, got, want)
		}
		checked++
	}
}

// TestBatchEstimateDeterministicAcrossCalls: repeated batch estimations
// are bit-identical (including MeasuredThroughput, which the non-indexed
// path does not guarantee).
func TestBatchEstimateDeterministicAcrossCalls(t *testing.T) {
	ens := trainTwoMetric(t)
	var w Dataset
	w.Add(mkPlausible("stalls", 16)...)
	w.Add(mkPlausible("misses", 16)...)
	ix := IndexWorkload(w)
	ctx := context.Background()
	first, err := ens.BatchEstimate(ctx, ix, EstimateOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := ens.BatchEstimate(ctx, ix, EstimateOptions{Workers: 1 + i%5})
		if err != nil {
			t.Fatal(err)
		}
		if again.MeasuredThroughput != first.MeasuredThroughput {
			t.Fatalf("MeasuredThroughput drifted: %g vs %g", again.MeasuredThroughput, first.MeasuredThroughput)
		}
		if !reflect.DeepEqual(again.PerMetric, first.PerMetric) {
			t.Fatalf("PerMetric drifted: %+v vs %+v", again.PerMetric, first.PerMetric)
		}
	}
}

// TestBatchEstimateCancellation: a cancelled context aborts estimation.
func TestBatchEstimateCancellation(t *testing.T) {
	ens := trainTwoMetric(t)
	var w Dataset
	w.Add(mkPlausible("stalls", 32)...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ens.BatchEstimate(ctx, IndexWorkload(w), EstimateOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBatchEstimateEmptyWorkload: an empty (or fully invalid) workload
// yields ErrNoSamples from both paths.
func TestBatchEstimateEmptyWorkload(t *testing.T) {
	ens := trainTwoMetric(t)
	ctx := context.Background()
	var empty Dataset
	if _, err := ens.BatchEstimate(ctx, IndexWorkload(empty), EstimateOptions{}); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("empty: err = %v, want ErrNoSamples", err)
	}
	var invalid Dataset
	invalid.Add(Sample{Metric: "stalls", T: -1, W: 2, M: 1})
	if _, err := ens.BatchEstimate(ctx, IndexWorkload(invalid), EstimateOptions{}); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("invalid-only: err = %v, want ErrNoSamples", err)
	}
	var unmodeled Dataset
	unmodeled.Add(mkPlausible("other.event", 4)...)
	if _, err := ens.BatchEstimate(ctx, IndexWorkload(unmodeled), EstimateOptions{}); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("no-overlap: err = %v, want ErrNoSamples", err)
	}
}

// TestBatchEstimateSingleSample: a one-sample workload estimates exactly
// like the non-indexed path.
func TestBatchEstimateSingleSample(t *testing.T) {
	ens := trainTwoMetric(t)
	var w Dataset
	w.Add(Sample{Metric: "stalls", T: 1000, W: 1500, M: 50})
	want, err := ens.Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ens.BatchEstimate(context.Background(), IndexWorkload(w), EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	estimationsEquivalent(t, got, want)
	if got.PerMetric[0].Samples != 1 {
		t.Errorf("Samples = %d, want 1", got.PerMetric[0].Samples)
	}
}

// TestBatchEstimateAllInfIntensity: a workload whose metric never fires
// (M = 0 throughout, I = +Inf) estimates at the roofline tail, exactly
// like the non-indexed path.
func TestBatchEstimateAllInfIntensity(t *testing.T) {
	ens := trainTwoMetric(t)
	var w Dataset
	for i := 0; i < 6; i++ {
		w.Add(Sample{Metric: "stalls", T: 1000, W: 1200 + 10*float64(i), M: 0})
	}
	want, err := ens.Estimate(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ens.BatchEstimate(context.Background(), IndexWorkload(w), EstimateOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	estimationsEquivalent(t, got, want)
	if !math.IsInf(got.PerMetric[0].MeanIntensity, 1) {
		t.Errorf("MeanIntensity = %g, want +Inf", got.PerMetric[0].MeanIntensity)
	}
	if got.PerMetric[0].MeanEstimate != ens.Rooflines["stalls"].TailY {
		t.Errorf("MeanEstimate = %g, want tail %g", got.PerMetric[0].MeanEstimate, ens.Rooflines["stalls"].TailY)
	}
}

// TestChainEvalMatchesRooflineEval: the binary-search segment table is
// bit-identical to Roofline.Eval across random fits and probes, including
// the boundaries (0, breakpoints, peak, beyond-tail, +Inf, NaN).
func TestChainEvalMatchesRooflineEval(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	fits := 0
	for fits < 300 {
		samples := randDiffSamples(rng, fits%2 == 0)
		r, err := FitRoofline("m", samples)
		if err != nil {
			continue
		}
		fits++
		ce := newChainEval(r)
		probes := []float64{0, -1, r.Peak().X, r.TailY, math.Inf(1), math.NaN()}
		for _, p := range r.Left {
			probes = append(probes, p.X, p.X*0.5, p.X*1.0001)
		}
		for _, p := range r.Right {
			probes = append(probes, p.X, p.X*0.9999, p.X*1.5)
		}
		for i := 0; i < 24; i++ {
			probes = append(probes, rng.Float64()*r.Peak().X*3)
		}
		for _, x := range probes {
			want := r.Eval(x)
			got := ce.eval(x)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("eval(%g) = %g, want %g (roofline %+v)", x, got, want, r)
			}
		}
	}
}

// TestConcurrentEstimatorsStress hammers one trained ensemble from 32
// concurrent estimators mixing BatchEstimate, Estimate and Eval. Run
// under -race (make race) this proves ensembles are read-safe after
// training, including the lazy evaluator memoization.
func TestConcurrentEstimatorsStress(t *testing.T) {
	ens := trainTwoMetric(t)
	var w Dataset
	w.Add(mkPlausible("stalls", 24)...)
	w.Add(mkPlausible("misses", 24)...)
	ix := IndexWorkload(w)
	ctx := context.Background()

	ref, err := ens.BatchEstimate(ctx, ix, EstimateOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch g % 3 {
				case 0:
					got, err := ens.BatchEstimate(ctx, ix, EstimateOptions{Workers: 1 + g%4})
					if err != nil {
						errs <- err
						return
					}
					if got.MaxThroughput != ref.MaxThroughput {
						errs <- errors.New("concurrent BatchEstimate diverged")
						return
					}
				case 1:
					if _, err := ens.Estimate(w); err != nil {
						errs <- err
						return
					}
				default:
					for _, r := range ens.Rooflines {
						_ = r.Eval(float64(i))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWorkloadIndexAccessors covers the index's introspection helpers.
func TestWorkloadIndexAccessors(t *testing.T) {
	var d Dataset
	d.Add(mkPlausible("b.metric", 3)...)
	d.Add(mkPlausible("a.metric", 2)...)
	d.Add(Sample{Metric: "bad", T: -1, W: 1, M: 1})
	ix := IndexWorkload(d)
	if got := ix.Metrics(); len(got) != 2 || got[0] != "a.metric" || got[1] != "b.metric" {
		t.Errorf("Metrics() = %v", got)
	}
	if ix.Len() != 5 {
		t.Errorf("Len() = %d, want 5 (invalid sample dropped)", ix.Len())
	}
}
