//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it, since instrumentation
// inflates testing.AllocsPerRun.
const raceEnabled = true
