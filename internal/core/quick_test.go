package core

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"spire/internal/geom"
)

// quickSamples decodes raw fuzz bytes into a plausible sample set. Values
// are kept small and varied: T in [1,16], W in [0,255], M in [0,63] with
// occasional zeros (I = +Inf).
func quickSamples(raw []byte) []Sample {
	var out []Sample
	for i := 0; i+2 < len(raw); i += 3 {
		out = append(out, Sample{
			Metric: "m",
			T:      float64(raw[i]%16 + 1),
			W:      float64(raw[i+1]),
			M:      float64(raw[i+2] % 64),
		})
	}
	return out
}

// TestQuickFitUpperBound: for arbitrary sample sets, the fitted roofline
// lies on or above every valid training sample.
func TestQuickFitUpperBound(t *testing.T) {
	f := func(raw []byte) bool {
		samples := quickSamples(raw)
		r, err := FitRoofline("m", samples)
		if err != nil {
			return err == ErrNoSamples
		}
		for _, s := range samples {
			p := s.Point()
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			if r.Eval(p.X) < p.Y-1e-9*(1+p.Y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFitInvariants: structural invariants hold for arbitrary inputs.
func TestQuickFitInvariants(t *testing.T) {
	f := func(raw []byte) bool {
		samples := quickSamples(raw)
		r, err := FitRoofline("m", samples)
		if err != nil {
			return err == ErrNoSamples
		}
		return r.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLeftRegionMonotone: the bound is non-decreasing from 0 up to
// the peak intensity.
func TestQuickLeftRegionMonotone(t *testing.T) {
	f := func(raw []byte) bool {
		samples := quickSamples(raw)
		r, err := FitRoofline("m", samples)
		if err != nil {
			return err == ErrNoSamples
		}
		peak := r.Peak()
		prev := -1.0
		for i := 0; i <= 32; i++ {
			x := peak.X * float64(i) / 32
			v := r.Eval(x)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRightRegionMonotone: beyond the first right-region breakpoint
// the bound is non-increasing (the horizontal peak segment ends there).
func TestQuickRightRegionMonotone(t *testing.T) {
	f := func(raw []byte) bool {
		samples := quickSamples(raw)
		r, err := FitRoofline("m", samples)
		if err != nil {
			return err == ErrNoSamples
		}
		if len(r.Right) == 0 {
			return true
		}
		lo := r.Right[0].X
		hi := r.Right[len(r.Right)-1].X * 1.5
		if hi <= lo {
			return true
		}
		prev := math.Inf(1)
		for i := 0; i <= 32; i++ {
			x := lo + (hi-lo)*float64(i)/32
			v := r.Eval(x)
			if v > prev+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSaveLoadEval: serialization round-trips preserve the model's
// predictions for arbitrary training sets and probe points.
func TestQuickSaveLoadEval(t *testing.T) {
	f := func(raw []byte, probes []uint16) bool {
		samples := quickSamples(raw)
		var d Dataset
		d.Add(samples...)
		ens, err := Train(d, TrainOptions{})
		if err != nil {
			return err == ErrNoSamples
		}
		var buf bytes.Buffer
		if err := ens.Save(&buf); err != nil {
			return false
		}
		loaded, err := LoadEnsemble(&buf)
		if err != nil {
			return false
		}
		r1 := ens.Rooflines["m"]
		r2 := loaded.Rooflines["m"]
		for _, p := range probes {
			x := float64(p) / 16
			a, b := r1.Eval(x), r2.Eval(x)
			if math.IsNaN(a) != math.IsNaN(b) {
				return false
			}
			if !math.IsNaN(a) && math.Abs(a-b) > 1e-12*(1+math.Abs(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnsembleMinProperty: the ensemble estimate equals the minimum
// per-metric mean, and every per-metric mean is within the range of the
// roofline values of its samples.
func TestQuickEnsembleMinProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 12 {
			return true
		}
		// Split raw into two metrics' training and a shared workload.
		half := len(raw) / 2
		train := quickSamples(raw[:half])
		for i := range train {
			if i%2 == 1 {
				train[i].Metric = "n"
			}
		}
		var d Dataset
		d.Add(train...)
		ens, err := Train(d, TrainOptions{})
		if err != nil {
			return true
		}
		wl := quickSamples(raw[half:])
		for i := range wl {
			if i%2 == 1 {
				wl[i].Metric = "n"
			}
		}
		var w Dataset
		w.Add(wl...)
		est, err := ens.Estimate(w)
		if err != nil {
			return true
		}
		minMean := math.Inf(1)
		for _, m := range est.PerMetric {
			if m.MeanEstimate < minMean {
				minMean = m.MeanEstimate
			}
		}
		return est.MaxThroughput == minMean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFitDeterminism: fitting is a pure function of its input.
func TestQuickFitDeterminism(t *testing.T) {
	f := func(raw []byte) bool {
		samples := quickSamples(raw)
		r1, err1 := FitRoofline("m", samples)
		r2, err2 := FitRoofline("m", samples)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if len(r1.Left) != len(r2.Left) || len(r1.Right) != len(r2.Right) {
			return false
		}
		for i := range r1.Left {
			if r1.Left[i] != r2.Left[i] {
				return false
			}
		}
		for i := range r1.Right {
			if r1.Right[i] != r2.Right[i] {
				return false
			}
		}
		return r1.TailY == r2.TailY || (math.IsNaN(r1.TailY) && math.IsNaN(r2.TailY))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRightChainOnParetoFront: every right-region breakpoint is one
// of the Pareto-optimal training points (the fit only touches samples it
// is allowed to touch).
func TestQuickRightChainOnParetoFront(t *testing.T) {
	f := func(raw []byte) bool {
		samples := quickSamples(raw)
		r, err := FitRoofline("m", samples)
		if err != nil {
			return true
		}
		if len(r.Right) == 0 {
			return true
		}
		var pts []geom.Point
		for _, s := range samples {
			p := s.Point()
			if s.Valid() && !math.IsNaN(p.X) && !math.IsNaN(p.Y) && !math.IsInf(p.X, 1) {
				pts = append(pts, p)
			}
		}
		front := geom.ParetoFront(pts)
		onFront := make(map[geom.Point]bool, len(front))
		for _, p := range front {
			onFront[p] = true
		}
		for _, p := range r.Right {
			if !onFront[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
