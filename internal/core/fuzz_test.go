package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// FuzzFitRoofline: arbitrary (T, W, M) triples must never panic the
// fitter, and any fit produced must satisfy the structural invariants and
// bound its own training samples.
func FuzzFitRoofline(f *testing.F) {
	f.Add([]byte{1, 10, 2, 1, 20, 1, 1, 5, 0})
	f.Add([]byte{})
	f.Add([]byte{255, 255, 255, 0, 0, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var samples []Sample
		for i := 0; i+2 < len(raw); i += 3 {
			samples = append(samples, Sample{
				Metric: "m",
				T:      float64(raw[i]), // zero T possible -> invalid sample
				W:      float64(raw[i+1]) * 1.5,
				M:      float64(raw[i+2]) / 3,
			})
		}
		r, err := FitRoofline("m", samples)
		if err != nil {
			if err != ErrNoSamples {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for _, s := range samples {
			if !s.Valid() {
				continue
			}
			p := s.Point()
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			if r.Eval(p.X) < p.Y-1e-9*(1+p.Y) {
				t.Fatalf("fit undercuts sample %v", s)
			}
		}
	})
}

// FuzzTrainParallel: arbitrary dataset shapes and worker counts must
// never panic the parallel trainer, and every worker count must produce a
// byte-identical encoded ensemble (and an identical report) to the serial
// fit.
func FuzzTrainParallel(f *testing.F) {
	f.Add([]byte{1, 10, 2, 1, 20, 1, 1, 5, 0, 3, 3, 3}, uint8(4))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{255, 255, 255, 0, 0, 0, 9, 9, 9, 1, 0, 0}, uint8(255))
	f.Fuzz(func(t *testing.T, raw []byte, workers uint8) {
		metrics := [...]string{"a", "b", "c", "d", "e"}
		var d Dataset
		for i := 0; i+2 < len(raw); i += 3 {
			d.Add(Sample{
				Metric: metrics[(i/3)%len(metrics)],
				T:      float64(raw[i]), // zero T possible -> invalid sample
				W:      float64(raw[i+1]) * 1.5,
				M:      float64(raw[i+2]) / 3,
			})
		}
		ctx := context.Background()
		serial, srep, serr := TrainContext(ctx, d, TrainOptions{Workers: 1})
		par, prep, perr := TrainContext(ctx, d, TrainOptions{Workers: int(workers)})
		if (serr == nil) != (perr == nil) {
			t.Fatalf("error mismatch: serial %v, %d workers %v", serr, workers, perr)
		}
		if serr != nil {
			if !errors.Is(perr, ErrNoSamples) {
				t.Fatalf("unexpected error: %v", perr)
			}
			return
		}
		var sb, pb bytes.Buffer
		if err := serial.Save(&sb); err != nil {
			t.Fatal(err)
		}
		if err := par.Save(&pb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
			t.Fatalf("workers=%d produced a different ensemble:\n%s\nvs serial:\n%s",
				workers, pb.Bytes(), sb.Bytes())
		}
		if srep.Fitted != prep.Fitted || len(srep.Skipped) != len(prep.Skipped) {
			t.Fatalf("reports differ: %+v vs %+v", srep, prep)
		}
	})
}

// FuzzLoadEnsemble: arbitrary JSON must never panic the loader, and a
// loaded model must evaluate without panicking.
func FuzzLoadEnsemble(f *testing.F) {
	// Seed with a genuine model.
	var d Dataset
	for i := 1.0; i <= 8; i *= 2 {
		d.Add(Sample{Metric: "m", T: 1, W: i, M: 1})
	}
	ens, err := Train(d, TrainOptions{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("{}")
	f.Add(`{"format":"spire-ensemble","version":1,"model":{"rooflines":{"m":{"metric":"m","left":[{"X":1,"Y":1}],"tailY":"NaN"}}}}`)
	f.Add(strings.Replace(buf.String(), "1", "-1", 5))

	f.Fuzz(func(t *testing.T, payload string) {
		got, err := LoadEnsemble(strings.NewReader(payload))
		if err != nil {
			return
		}
		for _, r := range got.Rooflines {
			_ = r.Eval(0)
			_ = r.Eval(1)
			_ = r.Eval(math.Inf(1))
		}
	})
}

// fuzzMergeModel lazily trains one deterministic 4-metric ensemble shared
// by every FuzzWindowMerge execution (training per input would dominate
// the fuzz budget).
var fuzzMergeModel = struct {
	once sync.Once
	ens  *Ensemble
	err  error
}{}

func mergeModel() (*Ensemble, error) {
	fuzzMergeModel.once.Do(func() {
		rng := rand.New(rand.NewSource(9001))
		fuzzMergeModel.ens, fuzzMergeModel.err = Train(randMultiMetricDataset(rng, 4), TrainOptions{})
	})
	return fuzzMergeModel.ens, fuzzMergeModel.err
}

// FuzzWindowMerge: a sliding IncrementalIndex (add new window, evict the
// expired one) must estimate byte-identically to a fresh
// IndexWorkload+BatchEstimate over exactly the in-window samples, for
// arbitrary sample streams and window spans. This is the window-merge
// correctness gate behind internal/stream: Eq. 1's time-weighted mean
// over a window must not depend on how the window was assembled.
func FuzzWindowMerge(f *testing.F) {
	f.Add([]byte{0, 3, 10, 2, 0, 1, 4, 20, 1, 1, 2, 5, 9, 3, 0}, uint64(2))
	f.Add([]byte{4, 1, 1, 1, 1}, uint64(1))
	f.Add([]byte{}, uint64(7))
	f.Add([]byte{0, 0, 0, 0, 2, 1, 255, 255, 255, 0}, uint64(3))
	f.Fuzz(func(t *testing.T, raw []byte, span uint64) {
		ens, err := mergeModel()
		if err != nil {
			t.Skip("model training failed on this build")
		}
		w := int(span%8) + 1
		names := []string{"alpha", "beta", "gamma", "delta", "unmodeled.event"}

		// Decode the byte stream into windowed samples: 5 bytes per
		// sample, the fifth advancing the window counter.
		var all []Sample
		window := 1
		for i := 0; i+4 < len(raw) && len(all) < 400; i += 5 {
			window += int(raw[i+4] % 3)
			all = append(all, Sample{
				Metric: names[int(raw[i])%len(names)],
				T:      float64(raw[i+1]), // zero => invalid, must be dropped
				W:      float64(raw[i+2]) * 1.5,
				M:      float64(raw[i+3]) / 3,
				Window: window,
			})
		}

		ctx := context.Background()
		inc := NewIncrementalIndex()
		next := 0
		for cur := 1; cur <= window; cur++ {
			for next < len(all) && all[next].Window == cur {
				inc.Add(all[next])
				next++
			}
			inc.EvictBefore(cur - w + 1)

			var d Dataset
			for _, s := range all[:next] {
				if s.Window > cur-w {
					d.Add(s)
				}
			}
			want, werr := ens.BatchEstimate(ctx, IndexWorkload(d), EstimateOptions{Workers: 1})
			got, gerr := ens.BatchEstimate(ctx, inc.Snapshot(), EstimateOptions{Workers: 1})
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("window %d span %d: error mismatch: batch=%v inc=%v", cur, w, werr, gerr)
			}
			if werr != nil {
				if !errors.Is(gerr, ErrNoSamples) {
					t.Fatalf("window %d span %d: unexpected error %v", cur, w, gerr)
				}
				continue
			}
			wb, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			gb, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wb, gb) {
				t.Fatalf("window %d span %d: streaming estimation diverges:\nbatch: %s\ninc:   %s", cur, w, wb, gb)
			}
		}
	})
}
