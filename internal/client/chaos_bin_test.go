package client_test

// Chaos coverage for the SPB1 binary wire path: the same fault families
// the JSON soak survives must leave binary-mode callers with either a
// byte-identical success or a classified error — a truncated binary
// frame must surface as a decode/transport error, never a hang and
// never a partial-success 200.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spire/internal/client"
	"spire/internal/faultinject"
	"spire/internal/testutil"
	"spire/internal/wire"
)

// TestChaosBinTransport drives binary-wire estimates through the chaos
// RoundTripper. Every success must be byte-identical to the fault-free
// binary golden, and the binary golden must decode to the same
// estimation JSON mode returns — chaos or not, the transport encoding
// never changes the numbers.
func TestChaosBinTransport(t *testing.T) {
	s := newSoakServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		goroutines = 6
		iterations = 10
		workloads  = 4
	)

	plain, err := client.New(client.Config{BaseURL: ts.URL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	binGoldens := make([][]byte, workloads)
	for k := range binGoldens {
		jres, err := plain.Estimate(context.Background(), testutil.Workload(k), client.EstimateOptions{})
		if err != nil {
			t.Fatalf("json golden %d: %v", k, err)
		}
		bres, err := plain.Estimate(context.Background(), testutil.Workload(k), client.EstimateOptions{Wire: client.WireBin})
		if err != nil {
			t.Fatalf("bin golden %d: %v", k, err)
		}
		if !wire.IsBinMedia(http.DetectContentType(bres.Raw)) {
			// DetectContentType can't know SPB1; just check the frame shape.
			if n, ferr := wire.FrameSize(bres.Raw); ferr != nil || n != len(bres.Raw) {
				t.Fatalf("bin golden %d is not one SPB1 frame (n=%d err=%v)", k, n, ferr)
			}
		}
		// Cross-encoding agreement: the decoded binary estimation
		// re-marshals to exactly the JSON-mode estimation.
		var jbody struct {
			Estimation json.RawMessage `json:"estimation"`
		}
		if err := json.Unmarshal(jres.Raw, &jbody); err != nil {
			t.Fatal(err)
		}
		bin, err := json.Marshal(bres.Estimation)
		if err != nil {
			t.Fatal(err)
		}
		if string(bin) != string(jbody.Estimation) {
			t.Fatalf("workload %d: bin estimation != json estimation\nbin:  %s\njson: %s", k, bin, jbody.Estimation)
		}
		binGoldens[k] = bres.Raw
	}

	chaos := faultinject.NewChaos(faultinject.ChaosConfig{
		Seed:          3,
		StallRate:     0.10,
		Stall:         time.Millisecond,
		ResetRate:     0.12,
		SlowriteRate:  0.08,
		ChunkSize:     256,
		ChunkDelay:    50 * time.Microsecond,
		TruncateRate:  0.12,
		TruncateAfter: 48,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	var calls, failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.New(client.Config{
				BaseURL: ts.URL,
				Tenant:  fmt.Sprintf("tenant-%d", g%3),
				HTTPClient: &http.Client{
					Transport: chaos.Transport(nil),
					Timeout:   20 * time.Second,
				},
				MaxAttempts: 6,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(g + 1),
			})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iterations; i++ {
				k := (g + i) % workloads
				calls.Add(1)
				res, err := c.Estimate(ctx, testutil.Workload(k), client.EstimateOptions{Wire: client.WireBin})
				if err != nil {
					failures.Add(1)
					var ae *client.APIError
					if errors.As(err, &ae) && ae.Status != http.StatusTooManyRequests {
						t.Errorf("goroutine %d: non-overload API failure: %v", g, err)
					}
					continue
				}
				if !bytes.Equal(res.Raw, binGoldens[k]) {
					t.Errorf("goroutine %d iter %d: binary estimate diverged from golden (%d vs %d bytes)",
						g, i, len(res.Raw), len(binGoldens[k]))
				}
			}
		}(g)
	}
	wg.Wait()
	if ctx.Err() != nil {
		t.Fatal("binary soak hit its deadline — something hung")
	}
	total, failed := calls.Load(), failures.Load()
	t.Logf("bin soak: %d calls, %d failed, faults %v", total, failed, chaos.Counts())
	if chaos.Total() == 0 {
		t.Fatal("chaos injected nothing — the soak tested a clean network")
	}
	if failed*10 > total {
		t.Fatalf("error rate too high: %d/%d calls failed", failed, total)
	}
	testutil.AssertServeBooksBalance(t, testutil.ScrapeMetrics(t, ts.URL))
}

// TestChaosBinFeedTruncation pins the feed-side failure contract: a
// binary feed whose last frame is cut off (or whose bytes are garbage)
// must come back as a prompt 400 decode error — single-shot, never
// retried, never a partial-success 200 — while frames decoded before
// the damage still advance the stream, exactly like whole CSV lines
// before a bad one.
func TestChaosBinFeedTruncation(t *testing.T) {
	s := newSoakServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c, err := client.New(client.Config{BaseURL: ts.URL, Seed: 1, MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	batch := func(w int) *wire.SampleBatch {
		return &wire.SampleBatch{TS: float64(w), Window: w, Samples: testutil.Workload(w % 4)[:20]}
	}

	// A clean two-frame feed succeeds and accounts both intervals.
	var feed []byte
	feed = wire.AppendSampleBatch(feed, batch(1))
	feed = wire.AppendSampleBatch(feed, batch(2))
	res, err := c.FeedStreamBin(ctx, bytes.NewReader(feed))
	if err != nil {
		t.Fatalf("clean bin feed: %v", err)
	}
	if res.Bytes != int64(len(feed)) {
		t.Fatalf("fed %d bytes, server reports %d", len(feed), res.Bytes)
	}
	var st struct {
		Intervals int `json:"intervals"`
		Samples   int `json:"samples"`
	}
	if err := json.Unmarshal(res.Stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Intervals != 2 || st.Samples != 40 {
		t.Fatalf("stats after clean feed: %+v, want 2 intervals / 40 samples", st)
	}

	wantAPIStatus := func(err error, status int, frag string) {
		t.Helper()
		if err == nil {
			t.Fatalf("damaged feed succeeded, want %d with %q", status, frag)
		}
		var ae *client.APIError
		if !errors.As(err, &ae) {
			t.Fatalf("damaged feed error %v, want *APIError", err)
		}
		if ae.Status != status || !strings.Contains(ae.Message, frag) {
			t.Fatalf("damaged feed: got status %d message %q, want %d containing %q",
				ae.Status, ae.Message, status, frag)
		}
	}

	// One good frame followed by a truncated one: 400, with the explicit
	// truncation diagnostic. The good frame still landed (interval 3).
	good := wire.AppendSampleBatch(nil, batch(3))
	cut := wire.AppendSampleBatch(nil, batch(4))
	_, err = c.FeedStreamBin(ctx, bytes.NewReader(append(append([]byte(nil), good...), cut[:len(cut)-7]...)))
	wantAPIStatus(err, http.StatusBadRequest, "truncated frame")

	// Garbage where a frame header should be: 400 before buffering junk.
	_, err = c.FeedStreamBin(ctx, bytes.NewReader([]byte("perf,csv,is,not,spb1\n")))
	wantAPIStatus(err, http.StatusBadRequest, "bad stream frame")

	// A frame whose declared type is unknown: 400 from frame validation.
	bad := wire.AppendSampleBatch(nil, batch(5))
	bad[4] = 0x7F
	_, err = c.FeedStreamBin(ctx, bytes.NewReader(bad))
	wantAPIStatus(err, http.StatusBadRequest, "bad stream frame")

	// The good frame before the truncation advanced the stream; the
	// damaged tails did not land as partial intervals.
	res, err = c.FeedStreamBin(ctx, bytes.NewReader(wire.AppendSampleBatch(nil, batch(6))))
	if err != nil {
		t.Fatalf("follow-up feed: %v", err)
	}
	if err := json.Unmarshal(res.Stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Intervals != 4 || st.Samples != 80 {
		t.Fatalf("stats after damaged feeds: %+v, want exactly 4 intervals / 80 samples", st)
	}
	if ctx.Err() != nil {
		t.Fatal("feed test hit its deadline — something hung")
	}
}
