package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// This file is the relay-grade API the cluster router (internal/cluster)
// builds on: unlike Estimate/Ingest, which decode the response and map
// non-200s to errors, DoRaw hands back whatever definitive answer the
// upstream produced — status, headers and exact body bytes — so a
// relaying caller can forward it unchanged (byte-parity is the cluster
// tier's core invariant). Only transport-level failures, where no
// definitive response exists, are retried or surfaced as errors.

// RawRequest describes one relayable exchange.
type RawRequest struct {
	// Method defaults to POST.
	Method string
	// Path is the URL path, e.g. "/v1/estimate".
	Path string
	// Query is the raw query string, without the leading '?'.
	Query string
	// Body is the exact request body; nil sends none.
	Body []byte
	// ContentType / Accept are set verbatim when non-empty.
	ContentType string
	Accept      string
	// Tenant overrides the client's configured tenant for this call
	// (routers forward each caller's own X-Spire-Tenant).
	Tenant string
	// Idempotent marks the exchange safe to retry after a transport
	// failure. Non-idempotent exchanges are single-shot, like
	// FeedStream.
	Idempotent bool
}

// RawResponse is the definitive upstream answer. Body is the exact byte
// sequence received; a relaying caller forwards it unmodified.
type RawResponse struct {
	Status int
	Header http.Header
	Body   []byte
	// RetryAfter is the parsed Retry-After header, 0 if absent.
	RetryAfter time.Duration
}

// DoRaw runs one exchange for a relaying caller. Every received HTTP
// response — 200 or 429 alike — is definitive and returned with nil
// error; classification (relay, reject, fail over to another shard) is
// the caller's job. Transport failures are retried with the client's
// full-jitter backoff while req.Idempotent and attempts remain; when no
// definitive response can be obtained the last transport error is
// returned.
func (c *Client) DoRaw(ctx context.Context, req RawRequest) (*RawResponse, error) {
	method := req.Method
	if method == "" {
		method = http.MethodPost
	}
	url := c.cfg.BaseURL + req.Path
	if req.Query != "" {
		url += "?" + req.Query
	}
	for attempt := 1; ; attempt++ {
		res := c.rawAttempt(ctx, method, url, req)
		if res.err == nil {
			return &RawResponse{Status: res.status, Header: res.header, Body: res.body, RetryAfter: res.retryAfter}, nil
		}
		switch {
		case ctx.Err() != nil:
			return nil, ctx.Err()
		case !req.Idempotent:
			return nil, fmt.Errorf("client: %s %s (not retried: non-idempotent): %w", method, req.Path, res.err)
		case attempt >= c.cfg.MaxAttempts:
			return nil, fmt.Errorf("client: %s %s: gave up after %d attempts: %w", method, req.Path, attempt, res.err)
		}
		delay := c.backoff(attempt, 0)
		if c.cfg.OnRetry != nil {
			c.cfg.OnRetry(RetryInfo{Attempt: attempt, Delay: delay, Err: res.err})
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
}

// rawAttempt is one exchange with per-call header overrides.
func (c *Client) rawAttempt(ctx context.Context, method, url string, rr RawRequest) *result {
	var req *http.Request
	var err error
	if rr.Body != nil {
		req, err = http.NewRequestWithContext(ctx, method, url, bytes.NewReader(rr.Body))
	} else {
		req, err = http.NewRequestWithContext(ctx, method, url, nil)
	}
	if err != nil {
		return &result{err: err}
	}
	if rr.ContentType != "" {
		req.Header.Set("Content-Type", rr.ContentType)
	}
	if rr.Accept != "" {
		req.Header.Set("Accept", rr.Accept)
	}
	tenant := rr.Tenant
	if tenant == "" {
		tenant = c.cfg.Tenant
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return &result{err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return &result{err: fmt.Errorf("reading response: %w", err)}
	}
	return &result{status: resp.StatusCode, header: resp.Header, body: raw, retryAfter: retryAfterOf(resp)}
}
