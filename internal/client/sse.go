package client

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Event is one Server-Sent Event from GET /v1/stream.
type Event struct {
	// ID is the `id:` field — the window sequence number. A gap between
	// consecutive IDs means the hub dropped windows under backpressure.
	ID int64
	// Type is the `event:` field ("window" for live results).
	Type string
	// Data is the raw `data:` payload — a JSON stream.Result for window
	// events. Unmarshal into the caller's preferred shape.
	Data []byte
}

// SubscribeOptions tune a stream subscription.
type SubscribeOptions struct {
	// Top truncates each window's rankings server-side; 0 keeps all.
	Top int
	// MaxReconnects caps consecutive failed connection attempts before
	// Subscribe gives up. A delivered event resets the count. Default 5.
	MaxReconnects int
}

// Subscribe attaches to the live window stream and calls fn for every
// event until ctx is cancelled, fn returns an error, or too many
// consecutive reconnects fail. Dropped connections (resets, truncated
// frames) reconnect with the same jittered backoff as request retries,
// resuming with Last-Event-ID so the subscriber can account for windows
// it missed while away. Subscribing is read-only, hence always safe to
// retry. A definitive rejection (4xx other than 429) is returned
// immediately — reconnecting cannot fix a bad request or a spent quota
// window any faster than Retry-After allows.
func (c *Client) Subscribe(ctx context.Context, opts SubscribeOptions, fn func(Event) error) error {
	if fn == nil {
		return fmt.Errorf("client: Subscribe needs a callback")
	}
	maxRe := opts.MaxReconnects
	if maxRe <= 0 {
		maxRe = 5
	}
	url := c.cfg.BaseURL + "/v1/stream"
	if opts.Top > 0 {
		url += "?top=" + strconv.Itoa(opts.Top)
	}

	lastID := int64(-1)
	failures := 0
	for attempt := 1; ; attempt++ {
		delivered, err := c.subscribeOnce(ctx, url, lastID, &lastID, fn)
		switch {
		case err == nil:
			// The server closed the stream cleanly (shutdown/drain).
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case isCallbackErr(err):
			return err.(*callbackErr).err
		}
		var retryAfter time.Duration
		if ae, ok := err.(*APIError); ok {
			if !retryableStatus(ae.Status) {
				return err
			}
			retryAfter = ae.RetryAfter
		}
		if delivered {
			failures = 0
		}
		failures++
		if failures > maxRe {
			return fmt.Errorf("client: stream lost after %d consecutive reconnect failures: %w", failures-1, err)
		}
		delay := c.backoff(failures, retryAfter)
		if c.cfg.OnRetry != nil {
			c.cfg.OnRetry(RetryInfo{Attempt: attempt, Delay: delay, RetryAfter: retryAfter, Err: err})
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// callbackErr marks an error that came from the caller's fn, which must
// stop the subscription rather than trigger a reconnect.
type callbackErr struct{ err error }

func (e *callbackErr) Error() string { return e.err.Error() }

func isCallbackErr(err error) bool {
	_, ok := err.(*callbackErr)
	return ok
}

// subscribeOnce runs one connection lifetime. It reports whether any
// event was delivered (resets the reconnect budget) and the terminal
// error: nil for a clean server close, *APIError for an HTTP rejection,
// *callbackErr for fn failures, anything else for transport faults.
func (c *Client) subscribeOnce(ctx context.Context, url string, lastID int64, lastOut *int64, fn func(Event) error) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if c.cfg.Tenant != "" {
		req.Header.Set(TenantHeader, c.cfg.Tenant)
	}
	if lastID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastID, 10))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return false, &APIError{Status: resp.StatusCode, Message: string(bytes.TrimSpace(raw)), RetryAfter: retryAfterOf(resp)}
	}

	delivered := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	var ev Event
	flush := func() error {
		if len(ev.Data) == 0 {
			ev = Event{}
			return nil
		}
		// Strip the trailing newline the `data:` accumulator appends.
		ev.Data = bytes.TrimSuffix(ev.Data, []byte("\n"))
		if ev.ID > *lastOut {
			*lastOut = ev.ID
		}
		err := fn(ev)
		ev = Event{}
		if err != nil {
			return &callbackErr{err: err}
		}
		delivered = true
		return nil
	}
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(line) == 0:
			if err := flush(); err != nil {
				return delivered, err
			}
		case bytes.HasPrefix(line, []byte("id:")):
			if id, err := strconv.ParseInt(string(bytes.TrimSpace(line[3:])), 10, 64); err == nil {
				ev.ID = id
			}
		case bytes.HasPrefix(line, []byte("event:")):
			ev.Type = string(bytes.TrimSpace(line[6:]))
		case bytes.HasPrefix(line, []byte("data:")):
			ev.Data = append(ev.Data, bytes.TrimSpace(line[5:])...)
			ev.Data = append(ev.Data, '\n')
		case line[0] == ':':
			// Comment/keepalive: ignore.
		}
	}
	if err := sc.Err(); err != nil {
		// Mid-stream death: a truncated frame never reached its blank
		// line, so flush() never ran on it — partial events are dropped,
		// not delivered.
		return delivered, err
	}
	// EOF without a scanner error: the server ended the stream on
	// purpose (drain). Treat as clean close.
	return delivered, nil
}
