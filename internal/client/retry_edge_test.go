package client

// Edge-case coverage for the retry plumbing's two pure pieces:
// retryAfterOf (header parsing — delta-seconds, HTTP-date, and the long
// tail of malformed values real servers emit) and backoff (jitter
// bounds, overflow ceilings, and the Retry-After floor/cap). In-package
// because both are unexported by design.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// respWithRetryAfter builds a minimal response carrying one header value.
func respWithRetryAfter(v string) *http.Response {
	h := http.Header{}
	if v != "" {
		h.Set("Retry-After", v)
	}
	return &http.Response{StatusCode: http.StatusTooManyRequests, Header: h}
}

func TestRetryAfterOfEdgeCases(t *testing.T) {
	httpDate := func(d time.Duration) string {
		return time.Now().Add(d).UTC().Format(http.TimeFormat)
	}
	cases := []struct {
		name  string
		value string
		// exact expected duration, used when tolerance == 0
		want time.Duration
		// for HTTP-date forms the parse races the clock: accept
		// [want-tolerance, want]
		tolerance time.Duration
	}{
		{name: "absent", value: "", want: 0},
		{name: "zero seconds", value: "0", want: 0},
		{name: "small delta seconds", value: "7", want: 7 * time.Second},
		{name: "huge delta seconds", value: "1000000", want: 1000000 * time.Second},
		{name: "negative delta", value: "-5", want: 0},
		{name: "float delta", value: "1.5", want: 0},
		{name: "garbage", value: "soon", want: 0},
		{name: "delta with whitespace", value: " 7 ", want: 0},
		{name: "overflow int", value: "99999999999999999999", want: 0},
		{name: "future http date", value: httpDate(30 * time.Second), want: 30 * time.Second, tolerance: 5 * time.Second},
		{name: "past http date", value: httpDate(-30 * time.Second), want: 0},
		{name: "epoch http date", value: "Thu, 01 Jan 1970 00:00:00 GMT", want: 0},
		{name: "malformed http date", value: "Thu, 32 Jan 2026 00:00:00 GMT", want: 0},
		{name: "rfc3339 not accepted", value: time.Now().Add(time.Hour).Format(time.RFC3339), want: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := retryAfterOf(respWithRetryAfter(tc.value))
			if tc.tolerance == 0 {
				if got != tc.want {
					t.Fatalf("retryAfterOf(%q) = %v, want %v", tc.value, got, tc.want)
				}
				return
			}
			if got > tc.want || got < tc.want-tc.tolerance {
				t.Fatalf("retryAfterOf(%q) = %v, want within (%v-%v, %v]",
					tc.value, got, tc.want, tc.tolerance, tc.want)
			}
		})
	}
}

// TestBackoffJitterBounds pins the full-jitter envelope: for attempt k,
// 0 <= d < min(BaseDelay<<(k-1), MaxDelay), across many draws.
func TestBackoffJitterBounds(t *testing.T) {
	c, err := New(Config{
		BaseURL:   "http://example.invalid",
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  80 * time.Millisecond,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 12; attempt++ {
		ceil := c.cfg.BaseDelay << uint(attempt-1)
		if ceil > c.cfg.MaxDelay || ceil <= 0 {
			ceil = c.cfg.MaxDelay
		}
		for draw := 0; draw < 200; draw++ {
			d := c.backoff(attempt, 0)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d draw %d: backoff %v outside [0, %v)", attempt, draw, d, ceil)
			}
		}
	}
}

// TestBackoffOverflowAttempt: a shift big enough to overflow int64 must
// land on the MaxDelay ceiling, not go negative or explode.
func TestBackoffOverflowAttempt(t *testing.T) {
	c, err := New(Config{BaseURL: "http://example.invalid", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, attempt := range []int{40, 63, 64, 100} {
		for draw := 0; draw < 100; draw++ {
			d := c.backoff(attempt, 0)
			if d < 0 || d >= c.cfg.MaxDelay {
				t.Fatalf("attempt %d: backoff %v outside [0, %v)", attempt, d, c.cfg.MaxDelay)
			}
		}
	}
}

// TestBackoffRetryAfterFloor: a server-supplied wait floors the sleep at
// retryAfter and caps the desync slice at BaseDelay.
func TestBackoffRetryAfterFloor(t *testing.T) {
	c, err := New(Config{
		BaseURL:   "http://example.invalid",
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  80 * time.Millisecond,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	const retryAfter = 200 * time.Millisecond // beyond MaxDelay on purpose
	for draw := 0; draw < 200; draw++ {
		d := c.backoff(1, retryAfter)
		if d < retryAfter || d >= retryAfter+c.cfg.BaseDelay {
			t.Fatalf("draw %d: backoff %v outside [%v, %v)", draw, d, retryAfter, retryAfter+c.cfg.BaseDelay)
		}
	}
}

// TestBackoffRetryAfterCap: a huge (buggy/hostile) Retry-After is capped
// at MaxRetryAfter instead of wedging the caller for days.
func TestBackoffRetryAfterCap(t *testing.T) {
	c, err := New(Config{
		BaseURL:       "http://example.invalid",
		BaseDelay:     10 * time.Millisecond,
		MaxRetryAfter: 150 * time.Millisecond,
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	huge := 1000000 * time.Second
	for draw := 0; draw < 200; draw++ {
		d := c.backoff(1, huge)
		lo, hi := c.cfg.MaxRetryAfter, c.cfg.MaxRetryAfter+c.cfg.BaseDelay
		if d < lo || d >= hi {
			t.Fatalf("draw %d: capped backoff %v outside [%v, %v)", draw, d, lo, hi)
		}
	}
	// The default cap is 60s — sanity-check New's defaulting so a huge
	// header can never exceed a bounded sleep out of the box.
	def, err := New(Config{BaseURL: "http://example.invalid", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if def.cfg.MaxRetryAfter != 60*time.Second {
		t.Fatalf("default MaxRetryAfter = %v, want 60s", def.cfg.MaxRetryAfter)
	}
}

// TestDoRawDefinitiveAndRetry pins DoRaw's contract: any received HTTP
// response (even a 429) returns with nil error and exact bytes/headers,
// transport failures retry only when Idempotent, and per-call tenant
// overrides the configured one.
func TestDoRawDefinitiveAndRetry(t *testing.T) {
	var hits atomic.Int64
	var lastTenant atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lastTenant.Store(r.Header.Get(TenantHeader))
		switch hits.Add(1) {
		case 1:
			// Kill the first exchange at the transport layer.
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
		case 2:
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"quota"}`))
		default:
			w.Write([]byte("ok-body"))
		}
	}))
	defer srv.Close()

	c, err := New(Config{
		BaseURL:     srv.URL,
		Tenant:      "cfg-tenant",
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Attempt 1 dies on the wire, attempt 2's 429 is definitive: DoRaw
	// must return it (status, Retry-After, body) with nil error.
	res, err := c.DoRaw(context.Background(), RawRequest{
		Path: "/v1/estimate", Body: []byte("x"), Idempotent: true, Tenant: "override",
	})
	if err != nil {
		t.Fatalf("DoRaw: %v", err)
	}
	if res.Status != http.StatusTooManyRequests || res.RetryAfter != 3*time.Second {
		t.Fatalf("definitive 429 not relayed: status %d retryAfter %v", res.Status, res.RetryAfter)
	}
	if string(res.Body) != `{"error":"quota"}` {
		t.Fatalf("429 body not byte-exact: %q", res.Body)
	}
	if got := lastTenant.Load().(string); got != "override" {
		t.Fatalf("tenant header %q, want per-call override", got)
	}

	// A success relays exact bytes too.
	res, err = c.DoRaw(context.Background(), RawRequest{Path: "/v1/estimate", Idempotent: true})
	if err != nil || string(res.Body) != "ok-body" || res.Status != 200 {
		t.Fatalf("success relay: %v %d %q", err, res.Status, res.Body)
	}

	// Non-idempotent exchanges are single-shot: a transport failure
	// surfaces immediately, with no retries burned.
	srv.Close()
	before := hits.Load()
	_, err = c.DoRaw(context.Background(), RawRequest{Path: "/v1/stream", Idempotent: false})
	if err == nil {
		t.Fatal("transport failure on closed server returned nil error")
	}
	if hits.Load() != before {
		t.Fatal("non-idempotent exchange was retried")
	}

	// Idempotent exchanges give up after MaxAttempts with the last error.
	_, err = c.DoRaw(context.Background(), RawRequest{Path: "/v1/estimate", Idempotent: true})
	if err == nil {
		t.Fatal("exhausted retries returned nil error")
	}

	// Context cancellation cuts the backoff sleep short.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = c.DoRaw(ctx, RawRequest{Path: "/v1/estimate", Idempotent: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled DoRaw error = %v, want context.Canceled", err)
	}
}

// TestRetryableStatusTable pins the retry classification set exactly.
func TestRetryableStatusTable(t *testing.T) {
	want := map[int]bool{429: true, 502: true, 503: true, 504: true}
	for code := 100; code < 600; code++ {
		if got := retryableStatus(code); got != want[code] {
			t.Fatalf("retryableStatus(%d) = %v, want %v", code, got, want[code])
		}
	}
}
