package client_test

// The chaos soak: N retrying clients hammer a live server through the
// faultinject chaos transport/listener under -race, asserting the
// overload contract end to end —
//
//   - bounded error rates: retries absorb injected faults, and the few
//     calls that still fail do so with classified errors, never hangs;
//   - byte-identical estimates: every successful /v1/estimate body
//     (degraded or not) equals the fault-free golden for its workload;
//   - accounting conservation: the server's books balance exactly,
//     requests == admitted + Σ rejected{reason} + degraded-served,
//     with the queue and inflight gauges back at zero;
//   - SSE integrity: a subscriber fed truncated frames never delivers a
//     partial event.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spire/internal/client"
	"spire/internal/faultinject"
	"spire/internal/serve"
	"spire/internal/testutil"
)

// newSoakServer builds a serve.Server with a deliberately small gate so
// the soak exercises admission, loads the model, and returns the server.
func newSoakServer(t testing.TB) *serve.Server {
	t.Helper()
	s := serve.New(serve.Config{
		MaxConcurrent:  4,
		AdmissionQueue: 16,
	})
	t.Cleanup(s.Close)
	_, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "soak"); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestChaosSoakTransport drives retrying clients through a chaos
// RoundTripper (stalls, resets, truncations) at a live server.
func TestChaosSoakTransport(t *testing.T) {
	s := newSoakServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		goroutines = 8
		iterations = 12
		workloads  = 4
	)

	// Fault-free goldens, one per workload, via a plain client.
	plain, err := client.New(client.Config{BaseURL: ts.URL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	goldens := make([][]byte, workloads)
	for k := range goldens {
		res, err := plain.Estimate(context.Background(), testutil.Workload(k), client.EstimateOptions{})
		if err != nil {
			t.Fatalf("golden %d: %v", k, err)
		}
		goldens[k] = res.Raw
	}

	chaos := faultinject.NewChaos(faultinject.ChaosConfig{
		Seed:          1,
		StallRate:     0.10,
		Stall:         time.Millisecond,
		ResetRate:     0.12,
		SlowriteRate:  0.08,
		ChunkSize:     256,
		ChunkDelay:    50 * time.Microsecond,
		TruncateRate:  0.12,
		TruncateAfter: 48,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	var calls, failures, degraded atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.New(client.Config{
				BaseURL: ts.URL,
				Tenant:  fmt.Sprintf("tenant-%d", g%3),
				HTTPClient: &http.Client{
					Transport: chaos.Transport(nil),
					Timeout:   20 * time.Second,
				},
				MaxAttempts: 6,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(g + 1),
			})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iterations; i++ {
				k := (g + i) % workloads
				calls.Add(1)
				res, err := c.Estimate(ctx, testutil.Workload(k), client.EstimateOptions{})
				if err != nil {
					// A surviving failure must be classified chaos damage
					// (transport fault or an honest 429 after retries) —
					// never a 5xx and never a hang.
					failures.Add(1)
					var ae *client.APIError
					if errors.As(err, &ae) && ae.Status != http.StatusTooManyRequests {
						t.Errorf("goroutine %d: non-overload API failure: %v", g, err)
					}
					continue
				}
				if res.Degraded {
					degraded.Add(1)
				}
				if !bytes.Equal(res.Raw, goldens[k]) {
					t.Errorf("goroutine %d iter %d: estimate diverged from golden (%d vs %d bytes)",
						g, i, len(res.Raw), len(goldens[k]))
				}
			}
		}(g)
	}
	wg.Wait()
	if ctx.Err() != nil {
		t.Fatal("soak hit its deadline — something hung")
	}

	total := calls.Load()
	failed := failures.Load()
	t.Logf("soak: %d calls, %d failed, %d degraded, %s, faults %v",
		total, failed, degraded.Load(), chaos, chaos.Counts())
	if chaos.Total() == 0 {
		t.Fatal("chaos injected nothing — the soak tested a clean network")
	}
	// Bounded error rate: retries should absorb nearly all injected
	// faults at these rates; one in ten surviving is already generous.
	if failed*10 > total {
		t.Fatalf("error rate too high: %d/%d calls failed", failed, total)
	}
	testutil.AssertServeBooksBalance(t, testutil.ScrapeMetrics(t, ts.URL))
}

// TestChaosSoakListener is the server-side mirror: the chaos listener
// breaks accepted connections while plain retrying clients keep calling.
func TestChaosSoakListener(t *testing.T) {
	s := newSoakServer(t)

	// Golden through a clean listener against the same server state.
	clean := httptest.NewServer(s.Handler())
	defer clean.Close()
	plain, err := client.New(client.Config{BaseURL: clean.URL, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := plain.Estimate(context.Background(), testutil.Workload(0), client.EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chaos := faultinject.NewChaos(faultinject.ChaosConfig{
		Seed:          2,
		StallRate:     0.10,
		Stall:         time.Millisecond,
		ResetRate:     0.15,
		SlowriteRate:  0.10,
		ChunkSize:     128,
		ChunkDelay:    50 * time.Microsecond,
		TruncateRate:  0.10,
		TruncateAfter: 32,
	})
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(chaos.Listener(ln))
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	const goroutines, iterations = 6, 10
	var calls, failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.New(client.Config{
				BaseURL:     base,
				HTTPClient:  &http.Client{Timeout: 20 * time.Second},
				MaxAttempts: 6,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(100 + g),
			})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iterations; i++ {
				calls.Add(1)
				res, err := c.Estimate(ctx, testutil.Workload(0), client.EstimateOptions{})
				if err != nil {
					failures.Add(1)
					continue
				}
				if !bytes.Equal(res.Raw, golden.Raw) {
					t.Errorf("goroutine %d iter %d: body diverged through chaos listener", g, i)
				}
			}
		}(g)
	}
	wg.Wait()
	if ctx.Err() != nil {
		t.Fatal("soak hit its deadline — something hung")
	}
	total, failed := calls.Load(), failures.Load()
	t.Logf("listener soak: %d calls, %d failed, faults %v", total, failed, chaos.Counts())
	if chaos.Total() == 0 {
		t.Fatal("chaos injected nothing")
	}
	if failed*5 > total {
		t.Fatalf("error rate too high: %d/%d calls failed", failed, total)
	}
	// Books balance even though many requests died on the wire: the
	// identity only counts exchanges the server actually admitted.
	testutil.AssertServeBooksBalance(t, testutil.ScrapeMetrics(t, clean.URL))
}

// streamIntervalCSV renders one complete perf-stat interval over the
// soak model's metrics.
func streamIntervalCSV(ts int) string {
	return fmt.Sprintf("%d.0,100,,cycles,1,100.00,,\n%d.0,50,,instructions,1,100.00,,\n"+
		"%d.0,10,,m1,1,25.00,,\n%d.0,7,,m2,1,25.00,,\n", ts, ts, ts, ts)
}

// TestChaosSSESubscription: a subscriber whose transport truncates SSE
// frames reconnects and never delivers a partial event.
func TestChaosSSESubscription(t *testing.T) {
	s := newSoakServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	chaos := faultinject.NewChaos(faultinject.ChaosConfig{
		Seed:          3,
		TruncateRate:  1,    // every subscriber connection dies mid-frame...
		TruncateAfter: 2048, // ...after a few whole frames got through
	})
	sub, err := client.New(client.Config{
		BaseURL:     ts.URL,
		HTTPClient:  &http.Client{Transport: chaos.Transport(nil)},
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		Seed:        9,
		MaxAttempts: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	feeder, err := client.New(client.Config{BaseURL: ts.URL, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const want = 8
	var got atomic.Int64
	subErr := make(chan error, 1)
	go func() {
		subErr <- sub.Subscribe(ctx, client.SubscribeOptions{MaxReconnects: 50}, func(ev client.Event) error {
			if ev.Type != "window" {
				return fmt.Errorf("unexpected event type %q", ev.Type)
			}
			if !json.Valid(ev.Data) {
				return fmt.Errorf("partial frame delivered: %q", ev.Data)
			}
			if got.Add(1) >= want {
				return io.EOF // sentinel: seen enough
			}
			return nil
		})
	}()

	// Feed intervals until the subscriber has seen enough windows. Each
	// feed closes the previous interval, so windows keep flowing even as
	// the subscriber's connection keeps dying.
	for i := 1; got.Load() < want && ctx.Err() == nil; i++ {
		if _, err := feeder.FeedStream(ctx, strings.NewReader(streamIntervalCSV(i))); err != nil {
			t.Fatalf("feed %d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	select {
	case err := <-subErr:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("subscription ended with %v, want the io.EOF sentinel after %d clean events", err, want)
		}
	case <-ctx.Done():
		t.Fatal("subscriber never accumulated enough events")
	}
	if chaos.Total() == 0 {
		t.Fatal("chaos injected nothing")
	}
	t.Logf("sse soak: %d clean events through faults %v", got.Load(), chaos.Counts())
}
