// Package client is the zero-dependency Go client for a `spire serve`
// instance: /v1/estimate, /v1/ingest, the /v1/stream feed and its SSE
// subscription. It encodes the retry contract the serving tier's
// admission layer (internal/admission) assumes of well-behaved callers:
//
//   - Capped exponential backoff with full jitter. Retry delays are
//     drawn uniformly from [0, min(MaxDelay, BaseDelay·2^attempt)], so a
//     fleet of clients shedding together does not re-arrive together
//     (no thundering herd). The jitter PRNG is seedable for reproducible
//     tests.
//
//   - Retry-After honoring. A 429 (or 503) carrying Retry-After waits at
//     least that long, plus a jittered slice of BaseDelay so synchronized
//     rejections desynchronize.
//
//   - Idempotency-safe classification. A request is retried only when it
//     is replayable (its body can be rebuilt from scratch) AND
//     idempotent on the server. Estimation is a pure function — always
//     retriable. Ingest parses and returns; it is retriable only when
//     the caller supplies a rebuildable body. A stream feed ADVANCES the
//     server's sliding window; the client never blindly retries one,
//     because a transport error cannot prove the server didn't consume
//     the bytes. Callers that want feed retries must re-send explicitly
//     with their own dedup (the stream's interval accounting surfaces
//     drops).
//
//   - Context cancellation everywhere, including mid-backoff.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"spire/internal/core"
	"spire/internal/wire"
)

// TenantHeader is the header the admission layer reads quotas tenants
// from.
const TenantHeader = "X-Spire-Tenant"

// Config tunes a Client. Only BaseURL is required.
type Config struct {
	// BaseURL locates the service, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// Tenant, when set, is sent as X-Spire-Tenant on every request.
	Tenant string
	// HTTPClient overrides the transport (tests inject chaos here).
	// Nil selects a plain &http.Client{}.
	HTTPClient *http.Client
	// MaxAttempts caps total tries per call, first included. Default 5.
	MaxAttempts int
	// BaseDelay scales the backoff. Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps any one backoff sleep. Default 5s.
	MaxDelay time.Duration
	// MaxRetryAfter caps how much server-supplied Retry-After is
	// honored: a huge (buggy or hostile) value delays the retry by at
	// most this much instead of wedging the caller. Default 60s.
	MaxRetryAfter time.Duration
	// Seed drives the jitter PRNG; 0 seeds from the wall clock.
	Seed int64
	// OnRetry, when set, observes every backoff decision (tests assert
	// jitter statistics through it; metrics hooks fit too).
	OnRetry func(RetryInfo)
}

// RetryInfo describes one scheduled retry.
type RetryInfo struct {
	// Attempt is the attempt that just failed, 1-based.
	Attempt int
	// Delay is the backoff chosen before the next attempt.
	Delay time.Duration
	// Status is the HTTP status that failed the attempt, 0 for
	// transport errors.
	Status int
	// RetryAfter is the server's Retry-After, 0 if absent.
	RetryAfter time.Duration
	// Err is the failure being retried.
	Err error
}

// APIError is a non-2xx response from the service.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the parsed Retry-After header, 0 if absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("spire api: status %d: %s", e.Status, e.Message)
}

// Client talks to one spire serve instance. Safe for concurrent use.
type Client struct {
	cfg  Config
	http *http.Client

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Client. The only error is a missing/invalid BaseURL.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: BaseURL required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if !strings.HasPrefix(cfg.BaseURL, "http://") && !strings.HasPrefix(cfg.BaseURL, "https://") {
		return nil, fmt.Errorf("client: BaseURL %q must be http(s)", cfg.BaseURL)
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 100 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Second
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 60 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{cfg: cfg, http: hc, rng: rand.New(rand.NewSource(seed))}, nil
}

// jitter draws uniformly from [0, d).
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(d)))
}

// backoff computes the sleep before retrying attempt (1-based): full
// jitter over the capped exponential, floored by the server's
// Retry-After when present.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	ceil := c.cfg.BaseDelay << uint(attempt-1)
	if ceil > c.cfg.MaxDelay || ceil <= 0 {
		ceil = c.cfg.MaxDelay
	}
	d := c.jitter(ceil)
	if retryAfter > 0 {
		// Honor the server's wait, desynchronized by a jittered slice of
		// BaseDelay so a synchronized shed doesn't re-arrive
		// synchronized — but never beyond MaxRetryAfter, so a huge
		// Retry-After cannot wedge the caller.
		if retryAfter > c.cfg.MaxRetryAfter {
			retryAfter = c.cfg.MaxRetryAfter
		}
		d = retryAfter + c.jitter(c.cfg.BaseDelay)
	}
	return d
}

// retryAfterOf parses a Retry-After header: delta-seconds or HTTP-date.
func retryAfterOf(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// retryableStatus reports whether a status is worth retrying for an
// idempotent request.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// result is one attempt's outcome: the read body on success, or the
// classified failure.
type result struct {
	status     int
	header     http.Header
	body       []byte
	err        error // transport error, nil if a response arrived
	retryAfter time.Duration
}

// do runs one call with the retry loop. getBody rebuilds the request
// body from scratch for each attempt; nil getBody means the request has
// no body. A nil getBody on a bodied method, or idempotent=false, makes
// the call single-shot: it is never retried after the bytes may have
// reached the server.
func (c *Client) do(ctx context.Context, method, path string, query string,
	getBody func() (io.Reader, error), contentType, accept string, idempotent bool) (*result, error) {

	url := c.cfg.BaseURL + path
	if query != "" {
		url += "?" + query
	}
	replayable := getBody != nil || method == http.MethodGet
	for attempt := 1; ; attempt++ {
		res := c.attempt(ctx, method, url, getBody, contentType, accept)
		if res.err == nil && !retryableStatus(res.status) {
			return res, nil // success or a definitive (non-retryable) answer
		}
		// Decide whether a retry is safe and useful.
		err := res.err
		if err == nil {
			err = &APIError{Status: res.status, Message: strings.TrimSpace(string(res.body)), RetryAfter: res.retryAfter}
		}
		switch {
		case ctx.Err() != nil:
			return nil, ctx.Err()
		case !idempotent || !replayable:
			// The bytes may have reached the server; retrying could
			// apply a non-idempotent effect twice. Fail fast.
			return nil, fmt.Errorf("client: %s %s (not retried: non-idempotent): %w", method, path, err)
		case attempt >= c.cfg.MaxAttempts:
			return nil, fmt.Errorf("client: %s %s: gave up after %d attempts: %w", method, path, attempt, err)
		}
		delay := c.backoff(attempt, res.retryAfter)
		if c.cfg.OnRetry != nil {
			c.cfg.OnRetry(RetryInfo{Attempt: attempt, Delay: delay, Status: res.status, RetryAfter: res.retryAfter, Err: err})
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
}

// attempt runs exactly one HTTP exchange.
func (c *Client) attempt(ctx context.Context, method, url string,
	getBody func() (io.Reader, error), contentType, accept string) *result {

	var body io.Reader
	if getBody != nil {
		b, err := getBody()
		if err != nil {
			return &result{err: fmt.Errorf("building request body: %w", err)}
		}
		body = b
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return &result{err: err}
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if c.cfg.Tenant != "" {
		req.Header.Set(TenantHeader, c.cfg.Tenant)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return &result{err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		// The response died mid-body (truncation, reset): a transport
		// failure, not a server answer.
		return &result{err: fmt.Errorf("reading response: %w", err)}
	}
	return &result{status: resp.StatusCode, header: resp.Header, body: raw, retryAfter: retryAfterOf(resp)}
}

// decodeAPI unmarshals a definitive response, mapping non-200s to
// *APIError with the server's error message.
func decodeAPI(res *result, v any) error {
	if res.status != http.StatusOK {
		msg := strings.TrimSpace(string(res.body))
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(res.body, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &APIError{Status: res.status, Message: msg, RetryAfter: res.retryAfter}
	}
	if v == nil {
		return nil
	}
	if err := json.Unmarshal(res.body, v); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	return nil
}

// Wire formats selectable on calls that support binary transport.
const (
	// WireJSON is the default JSON encoding.
	WireJSON = "json"
	// WireBin selects the SPB1 binary wire format (internal/wire) for
	// both the request body and, via Accept, the response.
	WireBin = "bin"
)

// EstimateOptions tune one estimation call.
type EstimateOptions struct {
	// Top truncates the returned ranking; 0 returns all metrics.
	Top int
	// Workers requests a server-side worker budget; 0 is the server
	// default. Results are byte-identical for any value.
	Workers int
	// Wire selects the transport encoding: "" or WireJSON for JSON,
	// WireBin for the SPB1 binary format. The decoded Estimation is
	// byte-identical either way; only the bytes on the wire differ. A
	// server predating the binary format answers a WireBin request's
	// Accept with JSON, which this client still decodes.
	Wire string
	// Sched optionally ships the workload's scheduler events; the server
	// then attaches the combined on/off-CPU report to the estimation.
	Sched []core.SchedEvent
}

// EstimateResult is one successful estimation.
type EstimateResult struct {
	// Model is the serving model's content-addressed ID.
	Model string
	// Estimation is the full result, identical to `spire analyze -json`
	// under the same model.
	Estimation *core.Estimation
	// Degraded reports the response came from the server's
	// saturated-mode cache (X-Spire-Degraded).
	Degraded bool
	// Raw is the exact response body (byte-identity checks, caching).
	Raw []byte
}

// Estimate runs one estimation. Estimation is a pure function of
// (model, samples), so it retries freely on overload and transport
// faults, honoring Retry-After.
func (c *Client) Estimate(ctx context.Context, samples []core.Sample, opts EstimateOptions) (*EstimateResult, error) {
	var (
		reqBody []byte
		ct      = "application/json"
		accept  string
		err     error
	)
	switch opts.Wire {
	case "", WireJSON:
		reqBody, err = json.Marshal(struct {
			Samples []core.Sample     `json:"samples"`
			Top     int               `json:"top,omitempty"`
			Workers int               `json:"workers,omitempty"`
			Sched   []core.SchedEvent `json:"sched,omitempty"`
		}{samples, opts.Top, opts.Workers, opts.Sched})
		if err != nil {
			return nil, err
		}
	case WireBin:
		reqBody = wire.AppendEstimateRequest(nil, &wire.EstimateRequest{
			Top: opts.Top, Workers: opts.Workers, Samples: samples, Sched: opts.Sched,
		})
		ct = wire.ContentTypeBin
		accept = wire.ContentTypeBin
	default:
		return nil, fmt.Errorf("client: unknown wire format %q (want %q or %q)", opts.Wire, WireJSON, WireBin)
	}
	res, err := c.do(ctx, http.MethodPost, "/v1/estimate", "",
		func() (io.Reader, error) { return bytes.NewReader(reqBody), nil },
		ct, accept, true)
	if err != nil {
		return nil, err
	}
	degraded := res.header.Get("X-Spire-Degraded") != ""
	if res.status == http.StatusOK && wire.IsBinMedia(res.header.Get("Content-Type")) {
		wres, err := wire.DecodeEstimateResponse(res.body)
		if err != nil {
			return nil, fmt.Errorf("decoding binary response: %w", err)
		}
		return &EstimateResult{
			Model:      wres.Model,
			Estimation: wres.Estimation,
			Degraded:   degraded,
			Raw:        res.body,
		}, nil
	}
	// JSON response: the default, and also every error body (errors are
	// JSON regardless of the negotiated wire format).
	var body struct {
		Model      string           `json:"model"`
		Estimation *core.Estimation `json:"estimation"`
	}
	if err := decodeAPI(res, &body); err != nil {
		return nil, err
	}
	return &EstimateResult{
		Model:      body.Model,
		Estimation: body.Estimation,
		Degraded:   degraded,
		Raw:        res.body,
	}, nil
}

// IngestOptions tune one ingest call.
type IngestOptions struct {
	// Strict selects mode=strict (any severe anomaly fails the call).
	Strict bool
	// MinRunPct forwards the multiplexing floor, 0 omits it.
	MinRunPct float64
}

// IngestResult mirrors the service's /v1/ingest response.
type IngestResult struct {
	Samples     []core.Sample   `json:"samples"`
	Quarantined int             `json:"quarantined"`
	Diags       json.RawMessage `json:"diags,omitempty"`
}

// Ingest parses raw perf-stat CSV / simulator JSON server-side. Parsing
// is pure, but the body can be huge and streamed — so retries happen
// only when the caller provides a rebuildable body via getBody (e.g.
// reopening a file). Pass BytesBody for in-memory payloads.
func (c *Client) Ingest(ctx context.Context, getBody func() (io.Reader, error), opts IngestOptions) (*IngestResult, error) {
	if getBody == nil {
		return nil, errors.New("client: Ingest needs a body factory (use BytesBody for in-memory data)")
	}
	q := ""
	if opts.Strict {
		q = "mode=strict"
	}
	if opts.MinRunPct > 0 {
		if q != "" {
			q += "&"
		}
		q += "min_run_pct=" + strconv.FormatFloat(opts.MinRunPct, 'g', -1, 64)
	}
	res, err := c.do(ctx, http.MethodPost, "/v1/ingest", q, getBody, "text/plain", "", true)
	if err != nil {
		return nil, err
	}
	var out IngestResult
	if err := decodeAPI(res, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FeedResult mirrors the service's POST /v1/stream response.
type FeedResult struct {
	Bytes int64           `json:"bytes"`
	Stats json.RawMessage `json:"stats"`
}

// FeedStream pushes interval text into the live sliding-window stream.
// Feeding is NOT idempotent — the server's window advances as bytes
// arrive — so this call is single-shot by design: any failure after the
// body may have been consumed is returned to the caller, never blindly
// retried. (A quota 429 is also returned un-retried: re-sending is the
// caller's dedup decision.)
func (c *Client) FeedStream(ctx context.Context, body io.Reader) (*FeedResult, error) {
	return c.feedStream(ctx, body, "text/plain")
}

// FeedStreamBin pushes pre-encoded SPB1 sample-batch frames
// (wire.AppendSampleBatch) into the live stream. Same single-shot,
// never-retried contract as FeedStream: the server's window advances as
// frames decode, so a failure after bytes may have been consumed is the
// caller's dedup decision.
func (c *Client) FeedStreamBin(ctx context.Context, body io.Reader) (*FeedResult, error) {
	return c.feedStream(ctx, body, wire.ContentTypeBin)
}

func (c *Client) feedStream(ctx context.Context, body io.Reader, contentType string) (*FeedResult, error) {
	res, err := c.do(ctx, http.MethodPost, "/v1/stream", "",
		func() (io.Reader, error) { return body, nil }, contentType, "", false)
	if err != nil {
		return nil, err
	}
	var out FeedResult
	if err := decodeAPI(res, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BytesBody adapts an in-memory payload to a rebuildable body factory.
func BytesBody(b []byte) func() (io.Reader, error) {
	return func() (io.Reader, error) { return bytes.NewReader(b), nil }
}

// Readyz reports whether the instance is ready for traffic (GET
// /readyz). Single attempt: readiness probes are themselves the retry
// loop.
func (c *Client) Readyz(ctx context.Context) (bool, error) {
	res := c.attempt(ctx, http.MethodGet, c.cfg.BaseURL+"/readyz", nil, "", "")
	if res.err != nil {
		return false, res.err
	}
	return res.status == http.StatusOK, nil
}
