package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spire/internal/core"
)

func testSamples() []core.Sample {
	return []core.Sample{
		{Metric: "l2_misses", T: 1000, W: 500, M: 120},
		{Metric: "l2_misses", T: 2000, W: 900, M: 260},
		{Metric: "dram_bw", T: 1000, W: 500, M: 80},
	}
}

// fastClient builds a client with near-zero backoff so retry tests run
// in milliseconds.
func fastClient(t *testing.T, url string, mut func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		BaseURL:   url,
		Seed:      1,
		BaseDelay: 100 * time.Microsecond,
		MaxDelay:  time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidatesBaseURL(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty BaseURL should fail")
	}
	if _, err := New(Config{BaseURL: "ftp://x"}); err == nil {
		t.Fatal("non-http BaseURL should fail")
	}
	c, err := New(Config{BaseURL: "http://x/"})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.BaseURL != "http://x" {
		t.Fatalf("trailing slash not trimmed: %q", c.cfg.BaseURL)
	}
}

// TestEstimateRetriesOverload: 429s with Retry-After are retried until
// the server relents, and the chosen delays honor the server's floor.
func TestEstimateRetriesOverload(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, `{"model":"m1","estimation":null}`+"\n")
	}))
	defer ts.Close()

	var retries []RetryInfo
	c := fastClient(t, ts.URL, func(cfg *Config) {
		cfg.Tenant = "alice"
		cfg.OnRetry = func(ri RetryInfo) { retries = append(retries, ri) }
		// Keep the test quick despite the 1s Retry-After contract: shrink
		// what "honor" costs while still asserting the floor relation.
		cfg.BaseDelay = 50 * time.Microsecond
	})
	// Patch the server's declared wait down by intercepting via OnRetry
	// assertions only; actually sleeping 2x1s would slow the suite, so
	// run the call in a goroutine with a generous timeout.
	done := make(chan error, 1)
	go func() {
		_, err := c.Estimate(context.Background(), testSamples(), EstimateOptions{})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Estimate: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Estimate hung")
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server hits = %d, want 3", got)
	}
	if len(retries) != 2 {
		t.Fatalf("OnRetry calls = %d, want 2", len(retries))
	}
	for i, ri := range retries {
		if ri.Status != http.StatusTooManyRequests {
			t.Fatalf("retry %d status = %d, want 429", i, ri.Status)
		}
		if ri.RetryAfter != time.Second {
			t.Fatalf("retry %d RetryAfter = %v, want 1s", i, ri.RetryAfter)
		}
		if ri.Delay < ri.RetryAfter {
			t.Fatalf("retry %d delay %v below the server's Retry-After floor %v", i, ri.Delay, ri.RetryAfter)
		}
	}
}

// TestEstimateRetriesTransportError: connection failures on the
// idempotent estimate path are retried.
func TestEstimateRetriesTransportError(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// Kill the connection mid-response.
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		io.WriteString(w, `{"model":"m1","estimation":null}`+"\n")
	}))
	defer ts.Close()

	c := fastClient(t, ts.URL, nil)
	res, err := c.Estimate(context.Background(), testSamples(), EstimateOptions{})
	if err != nil {
		t.Fatalf("Estimate after transport fault: %v", err)
	}
	if res.Model != "m1" {
		t.Fatalf("model = %q, want m1", res.Model)
	}
	if hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2", hits.Load())
	}
}

// TestEstimateDoesNotRetryBadRequest: a definitive 4xx is returned
// immediately as *APIError, never retried.
func TestEstimateDoesNotRetryBadRequest(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"no samples"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := fastClient(t, ts.URL, nil)
	_, err := c.Estimate(context.Background(), testSamples(), EstimateOptions{})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want *APIError 400", err)
	}
	if ae.Message != "no samples" {
		t.Fatalf("message = %q, want server's error field", ae.Message)
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d, want 1 (400 must not be retried)", hits.Load())
	}
}

// TestEstimateGivesUpAfterMaxAttempts bounds the retry loop.
func TestEstimateGivesUpAfterMaxAttempts(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := fastClient(t, ts.URL, func(cfg *Config) { cfg.MaxAttempts = 3 })
	_, err := c.Estimate(context.Background(), testSamples(), EstimateOptions{})
	if err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("err = %v, want give-up after 3", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("hits = %d, want exactly MaxAttempts", hits.Load())
	}
}

// TestFeedStreamNeverRetries: the non-idempotent feed path is
// single-shot — a retryable-looking failure is surfaced, not replayed.
func TestFeedStreamNeverRetries(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.ReadAll(r.Body) // the server may well have consumed the feed
		http.Error(w, "shed", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := fastClient(t, ts.URL, nil)
	_, err := c.FeedStream(context.Background(), strings.NewReader("interval data\n"))
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "not retried: non-idempotent") {
		t.Fatalf("err = %v, want non-idempotent classification", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d; a stream feed must never be blindly retried", hits.Load())
	}
}

// TestIngestRetriesWithReplayableBody: ingest retries because BytesBody
// rebuilds the payload per attempt — each attempt must see the full body.
func TestIngestRetriesWithReplayableBody(t *testing.T) {
	payload := "ts,metric,t,w,m\n"
	var bodies []string
	var mu sync.Mutex
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, string(raw))
		mu.Unlock()
		if hits.Add(1) == 1 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, `{"samples":[],"quarantined":0}`)
	}))
	defer ts.Close()

	c := fastClient(t, ts.URL, nil)
	if _, err := c.Ingest(context.Background(), BytesBody([]byte(payload)), IngestOptions{}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 2 {
		t.Fatalf("attempts = %d, want 2", len(bodies))
	}
	for i, b := range bodies {
		if b != payload {
			t.Fatalf("attempt %d body = %q, want full payload (replayed from scratch)", i, b)
		}
	}
}

func TestIngestRequiresBodyFactory(t *testing.T) {
	c := fastClient(t, "http://127.0.0.1:1", nil)
	if _, err := c.Ingest(context.Background(), nil, IngestOptions{}); err == nil {
		t.Fatal("nil body factory should be rejected client-side")
	}
}

// TestContextCancelsBackoff: cancellation mid-backoff unblocks
// immediately with ctx.Err, not after the scheduled delay.
func TestContextCancelsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "shed", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := fastClient(t, ts.URL, func(cfg *Config) {
		cfg.OnRetry = func(RetryInfo) { cancel() } // cancel once the 30s backoff is scheduled
	})
	start := time.Now()
	_, err := c.Estimate(ctx, testSamples(), EstimateOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the 30s Retry-After backoff was not interrupted", elapsed)
	}
}

// TestBackoffJitterStatistics is the thundering-herd assertion: over a
// seeded run the chosen delays are spread across [0, ceil), not bunched
// at any fixed point, and the draw is reproducible by seed.
func TestBackoffJitterStatistics(t *testing.T) {
	const n = 400
	draw := func(seed int64) []time.Duration {
		c, err := New(Config{BaseURL: "http://x", Seed: seed, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = c.backoff(1, 0) // attempt 1 → uniform over [0, 100ms)
		}
		return out
	}

	a := draw(42)

	// 1. Bounds: full jitter stays inside [0, ceil).
	ceil := 100 * time.Millisecond
	for i, d := range a {
		if d < 0 || d >= ceil {
			t.Fatalf("draw %d = %v outside [0, %v)", i, d, ceil)
		}
	}

	// 2. Dispersion: the mean of U[0,ceil) is ceil/2; a herd of clients
	// all backing off the same fixed amount would fail this band.
	var sum time.Duration
	distinct := make(map[time.Duration]struct{}, n)
	for _, d := range a {
		sum += d
		distinct[d] = struct{}{}
	}
	mean := sum / n
	if mean < ceil*35/100 || mean > ceil*65/100 {
		t.Fatalf("mean jitter %v outside [35%%, 65%%] of %v — distribution is not uniform-ish", mean, ceil)
	}
	if len(distinct) < n*9/10 {
		t.Fatalf("only %d/%d distinct delays — jitter is collapsing onto fixed points", len(distinct), n)
	}

	// 3. Quartile occupancy: every quarter of the range gets draws, so no
	// synchronized re-arrival window exists.
	var buckets [4]int
	for _, d := range a {
		buckets[int(d*4/ceil)]++
	}
	for q, c := range buckets {
		if c < n/10 {
			t.Fatalf("quartile %d holds %d/%d draws — jitter leaves re-arrival windows", q, c, n)
		}
	}

	// 4. Reproducibility: same seed, same sequence; different seed,
	// different sequence.
	b := draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter not reproducible at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c2 := draw(43)
	same := 0
	for i := range a {
		if a[i] == c2[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds drew identical jitter sequences")
	}
}

// TestBackoffExponentialCeiling: the jitter ceiling doubles per attempt
// and clamps at MaxDelay.
func TestBackoffExponentialCeiling(t *testing.T) {
	c, err := New(Config{BaseURL: "http://x", Seed: 7, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(attempt int) time.Duration {
		var max time.Duration
		for i := 0; i < 300; i++ {
			if d := c.backoff(attempt, 0); d > max {
				max = d
			}
		}
		return max
	}
	m1, m4, m20 := maxOf(1), maxOf(4), maxOf(20)
	if m1 >= 10*time.Millisecond {
		t.Fatalf("attempt 1 max %v should stay under BaseDelay", m1)
	}
	if m4 <= 40*time.Millisecond || m4 >= 80*time.Millisecond {
		t.Fatalf("attempt 4 max %v should roam (40ms, 80ms)", m4)
	}
	if m20 >= 80*time.Millisecond {
		t.Fatalf("attempt 20 max %v must clamp under MaxDelay", m20)
	}
}

// TestSubscribeParsesAndReconnects: the SSE subscriber parses frames,
// survives a mid-stream connection drop, and resumes with Last-Event-ID.
func TestSubscribeParsesAndReconnects(t *testing.T) {
	var conns atomic.Int32
	var lastEventIDs []string
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := conns.Add(1)
		mu.Lock()
		lastEventIDs = append(lastEventIDs, r.Header.Get("Last-Event-ID"))
		mu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		switch n {
		case 1:
			fmt.Fprintf(w, "id: 1\nevent: window\ndata: {\"seq\":1}\n\n")
			fmt.Fprintf(w, "id: 2\nevent: window\ndata: {\"seq\":2}\n\n")
			fl.Flush()
			// Drop the connection mid-frame: a truncated event the
			// subscriber must discard, not deliver.
			fmt.Fprintf(w, "id: 3\nevent: window\ndata: {\"se")
			fl.Flush()
			hj, _ := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
		case 2:
			fmt.Fprintf(w, "id: 3\nevent: window\ndata: {\"seq\":3}\n\n")
			fl.Flush()
			// Clean close: subscription ends without error.
		}
	}))
	defer ts.Close()

	c := fastClient(t, ts.URL, func(cfg *Config) { cfg.Tenant = "alice" })
	var got []Event
	err := c.Subscribe(context.Background(), SubscribeOptions{}, func(ev Event) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("events = %d, want 3 (truncated frame must not be delivered)", len(got))
	}
	for i, want := range []int64{1, 2, 3} {
		if got[i].ID != want || got[i].Type != "window" {
			t.Fatalf("event %d = {id %d, type %q}, want {id %d, type window}", i, got[i].ID, got[i].Type, want)
		}
	}
	if string(got[2].Data) != `{"seq":3}` {
		t.Fatalf("event 3 data = %q", got[2].Data)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lastEventIDs) != 2 || lastEventIDs[0] != "" || lastEventIDs[1] != "2" {
		t.Fatalf("Last-Event-ID per connection = %q, want [\"\", \"2\"]", lastEventIDs)
	}
}

// TestSubscribeCallbackErrorStops: fn failing ends the subscription with
// that error; no reconnect happens.
func TestSubscribeCallbackErrorStops(t *testing.T) {
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "id: 1\nevent: window\ndata: {}\n\n")
	}))
	defer ts.Close()

	c := fastClient(t, ts.URL, nil)
	sentinel := errors.New("enough")
	err := c.Subscribe(context.Background(), SubscribeOptions{}, func(Event) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the callback's sentinel", err)
	}
	if conns.Load() != 1 {
		t.Fatalf("conns = %d; a callback error must not reconnect", conns.Load())
	}
}

// TestSubscribeGivesUpAfterConsecutiveFailures bounds the reconnect loop
// when the server is gone.
func TestSubscribeGivesUpAfterConsecutiveFailures(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, _ := w.(http.Hijacker)
		conn, _, _ := hj.Hijack()
		conn.Close()
	}))
	defer ts.Close()

	c := fastClient(t, ts.URL, nil)
	err := c.Subscribe(context.Background(), SubscribeOptions{MaxReconnects: 3}, func(Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "consecutive reconnect failures") {
		t.Fatalf("err = %v, want reconnect give-up", err)
	}
}

// TestSubscribeRejectedByQuota: a 429 on subscribe is retried with the
// backoff, then surfaces once the budget runs out.
func TestSubscribeRejectedByQuota(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"tenant over quota"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := fastClient(t, ts.URL, func(cfg *Config) {
		cfg.OnRetry = func(RetryInfo) { cancel() } // don't actually wait out Retry-After
	})
	err := c.Subscribe(ctx, SubscribeOptions{MaxReconnects: 2}, func(Event) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want cancellation during the honored backoff", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d, want 1 before backoff", hits.Load())
	}
}

// TestSubscribeBadRequestNotRetried: a definitive 4xx ends the
// subscription immediately.
func TestSubscribeBadRequestNotRetried(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"bad top"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := fastClient(t, ts.URL, nil)
	err := c.Subscribe(context.Background(), SubscribeOptions{}, func(Event) error { return nil })
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want *APIError 400", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("hits = %d, want no retry on 400", hits.Load())
	}
}

// TestRetryAfterHTTPDate: the date form of Retry-After parses into a
// forward-looking duration.
func TestRetryAfterHTTPDate(t *testing.T) {
	resp := &http.Response{Header: http.Header{}}
	resp.Header.Set("Retry-After", time.Now().Add(3*time.Second).UTC().Format(http.TimeFormat))
	if d := retryAfterOf(resp); d <= 0 || d > 3*time.Second {
		t.Fatalf("date Retry-After = %v, want (0s, 3s]", d)
	}
	resp.Header.Set("Retry-After", "garbage")
	if d := retryAfterOf(resp); d != 0 {
		t.Fatalf("garbage Retry-After = %v, want 0", d)
	}
}
