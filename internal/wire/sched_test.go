package wire

import (
	"bytes"
	"reflect"
	"testing"

	"spire/internal/core"
)

func schedFixture() []core.SchedEvent {
	return []core.SchedEvent{
		{Time: 0, Class: "sched.wakeup", Thread: 0, Waker: -1},
		{Time: 10, Class: "sched.switch_in", Thread: 0, Hart: 1, Waker: -1, Window: 1},
		{Time: 40, Class: "sched.block_lock", Thread: 0, Hart: 1, Obj: "mu", Waker: 2, Window: 1},
		{Time: 90, Class: "sched.unblock_io", Thread: 3, Obj: "nvme0", Waker: -1, Window: 2},
	}
}

func combinedFixture() *core.CombinedReport {
	return &core.CombinedReport{
		Partition: core.TimePartition{
			Wall: 400, OnCPU: 250, OffCPU: 150,
			LockWait: 100, IOWait: 30, RunnableWait: 20, Threads: 4,
		},
		Waits: []core.WaitVerdict{
			{Kind: "lock", Object: "mu", Wait: 100, Share: 0.25, Waiters: 3},
			{Kind: "knot", Object: "threads 0,1,2", Wait: 80, Share: 0.2, Waiters: 3, Threads: []int{0, 1, 2}},
		},
		Knot: true,
		Ranked: []core.CombinedBottleneck{
			{Source: "wait", Score: 0.25, Detail: "lock mu: 3 threads blocked",
				Wait: &core.WaitVerdict{Kind: "lock", Object: "mu", Wait: 100, Share: 0.25, Waiters: 3}},
			{Source: "roofline", Score: 0.2, Detail: "memory bound", Metric: "longest_lat_cache.miss"},
		},
	}
}

func TestEstimateRequestSchedRoundTrip(t *testing.T) {
	req := &EstimateRequest{
		Top:     3,
		Workers: 2,
		Samples: []core.Sample{{Metric: "m", T: 100, W: 50, M: 3, Window: 1}},
		Sched:   schedFixture(),
	}
	got, err := DecodeEstimateRequest(AppendEstimateRequest(nil, req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, req)
	}
}

func TestEstimateRequestZeroSchedBytesUnchanged(t *testing.T) {
	// The freeze: a request without scheduler events must encode
	// byte-identically to one that never had a Sched field.
	with := &EstimateRequest{Top: 3, Samples: []core.Sample{{Metric: "m", T: 1, W: 1, M: 1}}}
	frame := AppendEstimateRequest(nil, with)
	withEmpty := *with
	withEmpty.Sched = []core.SchedEvent{}
	if !bytes.Equal(frame, AppendEstimateRequest(nil, &withEmpty)) {
		t.Fatal("empty sched slice changed the frame bytes")
	}
	got, err := DecodeEstimateRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sched != nil {
		t.Fatalf("decoded sched = %+v, want nil", got.Sched)
	}
}

func TestSampleBatchSchedRoundTrip(t *testing.T) {
	sb := &SampleBatch{
		TS:      2.5,
		Window:  2,
		Samples: []core.Sample{{Metric: "m", T: 10, W: 5, M: 1, Window: 2}},
		Sched:   schedFixture(),
	}
	got, err := DecodeSampleBatch(AppendSampleBatch(nil, sb))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sb) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, sb)
	}
	// Sched-only batch (no counter samples) also round-trips.
	only := &SampleBatch{TS: 1, Window: 1, Sched: schedFixture()}
	got, err = DecodeSampleBatch(AppendSampleBatch(nil, only))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, only) {
		t.Fatalf("sched-only round trip: got %+v", got)
	}
}

func TestEstimateResponseCombinedRoundTrip(t *testing.T) {
	est := &core.Estimation{
		PerMetric:     []core.MetricEstimate{{Metric: "m", MeanEstimate: 2, Samples: 4, MeanIntensity: 1}},
		MaxThroughput: 2,
		Combined:      combinedFixture(),
	}
	res := &EstimateResponse{Model: "v1", Estimation: est}
	got, err := DecodeEstimateResponse(AppendEstimateResponse(nil, res))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got.Estimation.Combined, res.Estimation.Combined)
	}
}

func TestEstimateResponseCombinedWithHierarchy(t *testing.T) {
	// Both trailing sections present: hierarchy first, combined after.
	est := &core.Estimation{
		MaxThroughput: 1,
		Hierarchy: &core.HierarchyEstimate{
			BindingLevel: "L2", BindingMetric: "m", BindingEstimate: 3, BoundThroughput: 1,
			Levels: []core.LevelEstimate{{Level: "L2", Metric: "m", MeanEstimate: 3, Samples: 2, MeanIntensity: 1}},
		},
		Combined: combinedFixture(),
	}
	res := &EstimateResponse{Model: "v1", Estimation: est}
	got, err := DecodeEstimateResponse(AppendEstimateResponse(nil, res))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatal("hierarchy+combined round trip mismatch")
	}
}

func TestEstimateResponseNoCombinedBytesUnchanged(t *testing.T) {
	est := &core.Estimation{
		PerMetric:     []core.MetricEstimate{{Metric: "m", MeanEstimate: 2, Samples: 4}},
		MaxThroughput: 2,
	}
	frame := AppendEstimateResponse(nil, &EstimateResponse{Model: "v1", Estimation: est})
	got, err := DecodeEstimateResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimation.Combined != nil {
		t.Fatal("combined materialized from a flat frame")
	}
}

func TestDecodeHostileSchedSection(t *testing.T) {
	req := &EstimateRequest{Samples: []core.Sample{{Metric: "m", T: 1, W: 1, M: 1}}, Sched: schedFixture()}
	frame := AppendEstimateRequest(nil, req)

	// Truncation anywhere in the sched section must error, never panic.
	for n := len(frame) - 1; n >= HeaderSize; n-- {
		cut := make([]byte, n)
		copy(cut, frame[:n])
		// Patch the length so the header matches the truncated body.
		cut[5] = byte(n - HeaderSize)
		cut[6], cut[7], cut[8] = byte((n-HeaderSize)>>8), byte((n-HeaderSize)>>16), byte((n-HeaderSize)>>24)
		if _, err := DecodeEstimateRequest(cut); err == nil && n < len(frame) {
			// Some prefixes are self-consistent frames (e.g. cutting the
			// whole sched section back to the flat encoding) — those must
			// decode to fewer events, not garbage.
			got, err2 := DecodeEstimateRequest(cut)
			if err2 != nil {
				t.Fatal(err2)
			}
			if len(got.Sched) >= len(req.Sched) && n < len(frame) {
				t.Fatalf("truncated frame %d decoded all events", n)
			}
		}
	}

	// Unknown section tag fails.
	bad := make([]byte, len(frame))
	copy(bad, frame)
	// The sched tag byte sits right after the samples; find it by
	// re-encoding without sched.
	flat := AppendEstimateRequest(nil, &EstimateRequest{Samples: req.Samples})
	bad[len(flat)] = 99
	if _, err := DecodeEstimateRequest(bad); err == nil {
		t.Fatal("unknown section tag decoded")
	}

	// Hostile count: claim 2^31 events in a tiny section.
	hostile := append([]byte(nil), flat...)
	hostile = append(hostile[:len(hostile)], byte(secSched), 0xff, 0xff, 0xff, 0x7f)
	hostile[5] = byte(len(hostile) - HeaderSize)
	if _, err := DecodeEstimateRequest(hostile); err == nil {
		t.Fatal("hostile sched count decoded")
	}
}

func TestDecodeDuplicateCombinedSection(t *testing.T) {
	est := &core.Estimation{MaxThroughput: 1, Combined: combinedFixture()}
	frame := AppendEstimateResponse(nil, &EstimateResponse{Model: "v", Estimation: est})
	flatLen := len(AppendEstimateResponse(nil, &EstimateResponse{Model: "v", Estimation: &core.Estimation{MaxThroughput: 1}}))
	section := frame[flatLen:]
	dup := append([]byte(nil), frame...)
	dup = append(dup, section...)
	newLen := len(dup) - HeaderSize
	dup[5], dup[6], dup[7], dup[8] = byte(newLen), byte(newLen>>8), byte(newLen>>16), byte(newLen>>24)
	if _, err := DecodeEstimateResponse(dup); err == nil {
		t.Fatal("duplicate combined section decoded")
	}
}
