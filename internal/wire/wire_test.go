package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"strings"
	"testing"

	"spire/internal/core"
)

// sampleSet covers the value edges the format must carry losslessly:
// NaN payloads, infinities, signed zero, denormals, negative windows.
func sampleSet() []core.Sample {
	nanPayload := math.Float64frombits(0x7ff8_dead_beef_0001)
	return []core.Sample{
		{Metric: "cycles", T: 1.5, W: 3e9, M: 0.25, Window: 0},
		{Metric: "instructions", T: 1.5, W: 4.2e9, M: 1.75, Window: 1},
		{Metric: "cycles", T: math.SmallestNonzeroFloat64, W: math.MaxFloat64, M: math.Inf(1), Window: -7},
		{Metric: "llc-misses", T: math.Copysign(0, -1), W: math.Inf(-1), M: nanPayload, Window: 1 << 40},
		{Metric: "", T: 0, W: 0, M: 0, Window: 0}, // empty metric name is legal on the wire
	}
}

// samplesEqual compares bit patterns, so NaN payloads and -0.0 count.
func samplesEqual(t *testing.T, got, want []core.Sample) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Metric != w.Metric || g.Window != w.Window ||
			math.Float64bits(g.T) != math.Float64bits(w.T) ||
			math.Float64bits(g.W) != math.Float64bits(w.W) ||
			math.Float64bits(g.M) != math.Float64bits(w.M) {
			t.Fatalf("sample %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestEstimateRequestRoundTrip(t *testing.T) {
	cases := []EstimateRequest{
		{},
		{Top: 10, Workers: 4, Samples: sampleSet()},
		{Top: -1, Workers: -3, Samples: sampleSet()[:1]},
	}
	for i, in := range cases {
		b := AppendEstimateRequest(nil, &in)
		out, err := DecodeEstimateRequest(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if out.Top != in.Top || out.Workers != in.Workers {
			t.Fatalf("case %d: got top=%d workers=%d, want %d/%d", i, out.Top, out.Workers, in.Top, in.Workers)
		}
		samplesEqual(t, out.Samples, in.Samples)
		if again := AppendEstimateRequest(nil, out); !bytes.Equal(again, b) {
			t.Fatalf("case %d: re-encode differs from original encode", i)
		}
	}
}

func TestEstimateResponseRoundTrip(t *testing.T) {
	est := &core.Estimation{
		PerMetric: []core.MetricEstimate{
			{Metric: "llc-misses", MeanEstimate: 1.25e9, Samples: 12, MeanIntensity: math.NaN()},
			{Metric: "cycles", MeanEstimate: math.Inf(1), Samples: 0, MeanIntensity: -0.0},
		},
		MaxThroughput:      1.25e9,
		MeasuredThroughput: math.NaN(),
	}
	est.Coverage.ModelMetrics = 5
	est.Coverage.DataMetrics = 3
	est.Coverage.Shared = 2
	est.Coverage.DataOnly = []string{"weird-counter"}
	est.Coverage.ModelOnly = []string{"dram-reads", "dram-writes", ""}
	cases := []EstimateResponse{
		{},
		{Model: "sha256:abc", Estimation: nil},
		{Model: "sha256:abc", Estimation: &core.Estimation{}},
		{Model: strings.Repeat("m", 100), Estimation: est},
	}
	for i, in := range cases {
		b := AppendEstimateResponse(nil, &in)
		out, err := DecodeEstimateResponse(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if out.Model != in.Model {
			t.Fatalf("case %d: model %q, want %q", i, out.Model, in.Model)
		}
		if (out.Estimation == nil) != (in.Estimation == nil) {
			t.Fatalf("case %d: estimation presence mismatch", i)
		}
		if again := AppendEstimateResponse(nil, out); !bytes.Equal(again, b) {
			t.Fatalf("case %d: re-encode differs from original encode", i)
		}
		if in.Estimation == nil {
			continue
		}
		// Field-level check through the JSON view, which is the byte
		// contract the differential harness pins; NaNs are compared by
		// bits above via re-encode equality.
		if got, want := len(out.Estimation.PerMetric), len(in.Estimation.PerMetric); got != want {
			t.Fatalf("case %d: %d per-metric rows, want %d", i, got, want)
		}
		if !reflect.DeepEqual(out.Estimation.Coverage, in.Estimation.Coverage) {
			t.Fatalf("case %d: coverage %+v, want %+v", i, out.Estimation.Coverage, in.Estimation.Coverage)
		}
	}
}

func TestSampleBatchRoundTrip(t *testing.T) {
	in := SampleBatch{TS: 12.75, Window: 42, Samples: sampleSet()}
	b := AppendSampleBatch(nil, &in)
	out, err := DecodeSampleBatch(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if math.Float64bits(out.TS) != math.Float64bits(in.TS) || out.Window != in.Window {
		t.Fatalf("got ts=%v window=%d, want %v/%d", out.TS, out.Window, in.TS, in.Window)
	}
	samplesEqual(t, out.Samples, in.Samples)
	if again := AppendSampleBatch(nil, out); !bytes.Equal(again, b) {
		t.Fatal("re-encode differs from original encode")
	}
}

func TestFrameSize(t *testing.T) {
	frame := AppendSampleBatch(nil, &SampleBatch{TS: 1, Window: 2, Samples: sampleSet()})

	// Too short to tell: 0, nil — for every prefix shorter than the header.
	for i := 0; i < HeaderSize; i++ {
		n, err := FrameSize(frame[:i])
		if i >= 4 || err == nil {
			// Prefixes of a valid frame never error.
			if n != 0 || err != nil {
				t.Fatalf("prefix %d: got (%d, %v), want (0, nil)", i, n, err)
			}
		}
	}
	if n, err := FrameSize(frame); err != nil || n != len(frame) {
		t.Fatalf("full frame: got (%d, %v), want (%d, nil)", n, err, len(frame))
	}
	// Frame followed by more bytes still reports the first frame's size.
	if n, err := FrameSize(append(append([]byte(nil), frame...), frame...)); err != nil || n != len(frame) {
		t.Fatalf("two frames: got (%d, %v), want (%d, nil)", n, err, len(frame))
	}

	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, err := FrameSize(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bad magic is reported as soon as 4 bytes are visible, before a full
	// header arrives — a garbage stream fails fast instead of buffering.
	if _, err := FrameSize(bad[:4]); err == nil {
		t.Fatal("bad magic not reported at 4 bytes")
	}

	bad = append([]byte(nil), frame...)
	bad[4] = 99
	if _, err := FrameSize(bad); err == nil {
		t.Fatal("unknown message type accepted")
	}

	bad = append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(bad[5:9], MaxPayload+1)
	if _, err := FrameSize(bad); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestDecodeRejectsFraming(t *testing.T) {
	frame := AppendEstimateRequest(nil, &EstimateRequest{Top: 3, Samples: sampleSet()})

	// Every strict prefix fails — truncation is always an error, never a
	// partial decode.
	for i := 0; i < len(frame); i++ {
		if _, err := DecodeEstimateRequest(frame[:i]); err == nil {
			t.Fatalf("prefix %d of %d decoded", i, len(frame))
		}
	}
	// Trailing bytes fail: one body is one frame.
	if _, err := DecodeEstimateRequest(append(append([]byte(nil), frame...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Wrong message type fails.
	if _, err := DecodeSampleBatch(frame); err == nil {
		t.Fatal("estimate-request frame decoded as sample batch")
	}
	if _, err := DecodeEstimateResponse(frame); err == nil {
		t.Fatal("estimate-request frame decoded as estimate response")
	}
}

// TestDecodeHostileCounts plants counts far beyond the payload and
// checks the decoder refuses before sizing any allocation from them.
func TestDecodeHostileCounts(t *testing.T) {
	// A sample batch whose dictionary count claims 2^31 entries.
	var p []byte
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(1)) // TS
	p = binary.LittleEndian.AppendUint64(p, 1)                   // window
	p = binary.LittleEndian.AppendUint32(p, 1<<31)               // hostile dict count
	frame, start := appendHeader(nil, MsgSampleBatch)
	frame = append(frame, p...)
	frame = finishFrame(frame, start)
	if _, err := DecodeSampleBatch(frame); err == nil {
		t.Fatal("hostile dictionary count accepted")
	}

	// A sample row referencing a metric index outside the dictionary.
	sb := SampleBatch{TS: 1, Window: 1, Samples: []core.Sample{{Metric: "m", T: 1, W: 1}}}
	frame = AppendSampleBatch(nil, &sb)
	// The row's dict index lives right after TS(8)+window(8)+dictcount(4)+
	// dict entry(2+1)+samplecount(4) in the payload.
	off := HeaderSize + 8 + 8 + 4 + 3 + 4
	binary.LittleEndian.PutUint32(frame[off:], 7)
	if _, err := DecodeSampleBatch(frame); err == nil {
		t.Fatal("out-of-range dictionary index accepted")
	}
}

func TestIsBinMedia(t *testing.T) {
	yes := []string{
		ContentTypeBin,
		" application/x-spire-bin ",
		"application/x-spire-bin; charset=utf-8",
	}
	no := []string{"", "*/*", "application/json", "application/x-spire-bin2", "text/plain"}
	for _, v := range yes {
		if !IsBinMedia(v) {
			t.Errorf("IsBinMedia(%q) = false, want true", v)
		}
	}
	for _, v := range no {
		if IsBinMedia(v) {
			t.Errorf("IsBinMedia(%q) = true, want false", v)
		}
	}
}
