package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"spire/internal/core"
)

// hierEstimation builds an estimation whose hierarchy exercises the value
// edges the wire must carry losslessly.
func hierEstimation() *core.Estimation {
	est := &core.Estimation{
		PerMetric: []core.MetricEstimate{
			{Metric: "mem_load_retired.l2_hit", MeanEstimate: 0.5, Samples: 3, MeanIntensity: 2},
		},
		MaxThroughput:      4,
		MeasuredThroughput: 1.5,
		Hierarchy: &core.HierarchyEstimate{
			BindingLevel:    "L2",
			BindingMetric:   "mem_load_retired.l2_hit",
			BindingEstimate: 0.5,
			BoundThroughput: math.Inf(1),
			Levels: []core.LevelEstimate{
				{Level: "L1", Metric: "mem_load_retired.l1_hit", MeanEstimate: 4, Samples: 2, MeanIntensity: math.Inf(1)},
				{Level: "L2", Metric: "mem_load_retired.l2_hit", MeanEstimate: 0.5, Samples: -3, MeanIntensity: math.NaN()},
			},
			Surfaces: []core.SurfaceEstimate{
				{Name: "sparsity", Param: "br_misp_retired.all_branches", ParamValue: 0.05, Ceiling: 2.5, Binding: true},
				{Name: "", Param: "p", ParamValue: math.NaN(), Ceiling: math.Inf(-1), Binding: false},
			},
		},
	}
	return est
}

// hierarchiesEqual compares bit patterns so NaN round-trips count.
func hierarchiesEqual(t *testing.T, got, want *core.HierarchyEstimate) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("hierarchy presence: got %v, want %v", got != nil, want != nil)
	}
	if got == nil {
		return
	}
	f := func(x float64) uint64 { return math.Float64bits(x) }
	if got.BindingLevel != want.BindingLevel || got.BindingMetric != want.BindingMetric ||
		f(got.BindingEstimate) != f(want.BindingEstimate) || f(got.BoundThroughput) != f(want.BoundThroughput) {
		t.Fatalf("hierarchy header: got %+v, want %+v", got, want)
	}
	if len(got.Levels) != len(want.Levels) || len(got.Surfaces) != len(want.Surfaces) {
		t.Fatalf("hierarchy shape: got %d/%d, want %d/%d",
			len(got.Levels), len(got.Surfaces), len(want.Levels), len(want.Surfaces))
	}
	for i := range want.Levels {
		g, w := got.Levels[i], want.Levels[i]
		if g.Level != w.Level || g.Metric != w.Metric || g.Samples != w.Samples ||
			f(g.MeanEstimate) != f(w.MeanEstimate) || f(g.MeanIntensity) != f(w.MeanIntensity) {
			t.Fatalf("level %d: got %+v, want %+v", i, g, w)
		}
	}
	for i := range want.Surfaces {
		g, w := got.Surfaces[i], want.Surfaces[i]
		if g.Name != w.Name || g.Param != w.Param || g.Binding != w.Binding ||
			f(g.ParamValue) != f(w.ParamValue) || f(g.Ceiling) != f(w.Ceiling) {
			t.Fatalf("surface %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestEstimateResponseHierarchyRoundTrip(t *testing.T) {
	cases := []*core.Estimation{
		hierEstimation(),
		{Hierarchy: &core.HierarchyEstimate{BindingLevel: "DRAM"}}, // empty level/surface lists
	}
	for i, est := range cases {
		in := EstimateResponse{Model: "sha256:h", Estimation: est}
		b := AppendEstimateResponse(nil, &in)
		out, err := DecodeEstimateResponse(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		hierarchiesEqual(t, out.Estimation.Hierarchy, est.Hierarchy)
		if again := AppendEstimateResponse(nil, out); !bytes.Equal(again, b) {
			t.Fatalf("case %d: re-encode differs", i)
		}
	}
}

// TestFlatFrameHasNoHierarchySection pins the backward-compat guarantee
// at the byte level: an estimation without a hierarchy encodes to exactly
// the bytes of the pre-hierarchy format — the hierarchical frame is a
// strict extension of the flat one.
func TestFlatFrameHasNoHierarchySection(t *testing.T) {
	hier := hierEstimation()
	flat := *hier
	flat.Hierarchy = nil

	hb := AppendEstimateResponse(nil, &EstimateResponse{Model: "m", Estimation: hier})
	fb := AppendEstimateResponse(nil, &EstimateResponse{Model: "m", Estimation: &flat})
	if len(hb) <= len(fb) {
		t.Fatalf("hierarchy section added no bytes: %d vs %d", len(hb), len(fb))
	}
	// The flat frame is a strict prefix of the hierarchical frame's
	// payload region (they differ only in the frame length field and the
	// trailing section).
	out, err := DecodeEstimateResponse(fb)
	if err != nil {
		t.Fatal(err)
	}
	if out.Estimation.Hierarchy != nil {
		t.Fatal("flat frame decoded a hierarchy")
	}
	if !reflect.DeepEqual(out.Estimation.PerMetric, flat.PerMetric) {
		t.Fatal("flat decode perturbed per-metric rows")
	}
}

// TestHierarchySectionHostileDecode: corrupt hierarchy sections must fail
// cleanly, never panic or mis-parse.
func TestHierarchySectionHostileDecode(t *testing.T) {
	good := AppendEstimateResponse(nil, &EstimateResponse{Model: "m", Estimation: hierEstimation()})

	// Truncations anywhere inside the hierarchy section fail. The flat
	// payload ends where the section begins; find it by re-encoding the
	// flat twin.
	flatEst := *hierEstimation()
	flatEst.Hierarchy = nil
	flatLen := len(AppendEstimateResponse(nil, &EstimateResponse{Model: "m", Estimation: &flatEst}))
	for cut := flatLen + 1; cut < len(good); cut++ {
		b := append([]byte(nil), good[:cut]...)
		if _, err := DecodeEstimateResponse(b); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}

	// An unknown section tag is rejected.
	bad := append([]byte(nil), good...)
	bad[flatLen] = 7
	if _, err := DecodeEstimateResponse(bad); err == nil {
		t.Fatal("unknown hierarchy tag decoded")
	}

	// Trailing garbage after a complete hierarchy section is rejected.
	if _, err := DecodeEstimateResponse(append(append([]byte(nil), good...), 0xEE)); err == nil {
		t.Fatal("trailing bytes after hierarchy section decoded")
	}
}
