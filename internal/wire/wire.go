// Package wire implements SPB1, spire's compact length-prefixed binary
// wire format for the estimation API and the stream feed. It exists for
// the hot serving loop: a JSON estimate request re-encodes every float
// in decimal and repeats every metric name per sample, while SPB1 ships
// raw IEEE-754 bits (NaN payloads preserved) against a per-message
// metric dictionary, decoding with two small allocations and no
// reflection.
//
// Framing, all integers little-endian:
//
//	offset  size  field
//	0       4     magic "SPB1"
//	4       1     message type (MsgEstimateRequest | MsgEstimateResponse | MsgSampleBatch)
//	5       4     payload length (uint32, <= MaxPayload)
//	9       n     payload
//
// Payload primitives: strings are uint16-length-prefixed UTF-8 bytes;
// floats are math.Float64bits little-endian; sample rows reference a
// uint32-indexed metric dictionary written in first-appearance order.
// Every count is validated against the bytes remaining before any
// allocation is sized from it, so adversarial lengths cannot make the
// decoder over-allocate: allocations are bounded by the input size.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"spire/internal/core"
)

// ContentTypeBin is the HTTP content type negotiating SPB1 bodies on
// /v1/estimate and /v1/stream. JSON remains the default; a request opts
// in per message (Content-Type) and per response (Accept).
const ContentTypeBin = "application/x-spire-bin"

// IsBinMedia reports whether one HTTP media-type value (one Accept
// element or a Content-Type) selects SPB1. Parameters after ';' are
// ignored. Anything else — including */* — is not binary: the format is
// strictly opt-in.
func IsBinMedia(v string) bool {
	if i := strings.IndexByte(v, ';'); i >= 0 {
		v = v[:i]
	}
	return strings.TrimSpace(v) == ContentTypeBin
}

// Msg identifies a frame's message type.
type Msg byte

const (
	// MsgEstimateRequest is a POST /v1/estimate request body: top,
	// workers, and the workload samples.
	MsgEstimateRequest Msg = 1
	// MsgEstimateResponse is a 200 /v1/estimate response body: the
	// serving model ID and the estimation.
	MsgEstimateResponse Msg = 2
	// MsgSampleBatch is one pre-parsed stream-feed interval: timestamp,
	// window tag, and the interval's samples.
	MsgSampleBatch Msg = 3
)

// magic opens every frame.
var magic = [4]byte{'S', 'P', 'B', '1'}

// HeaderSize is the fixed frame prefix: magic, type, payload length.
const HeaderSize = 9

// MaxPayload bounds a single frame's payload. It caps decoder buffering
// for streamed frames; one estimate body is bounded far lower by the
// server's request-size limit.
const MaxPayload = 64 << 20

// EstimateRequest mirrors the JSON estimate request body.
type EstimateRequest struct {
	Top     int
	Workers int
	Samples []core.Sample
	Sched   []core.SchedEvent
}

// EstimateResponse mirrors the JSON estimate response body.
type EstimateResponse struct {
	Model      string
	Estimation *core.Estimation
}

// SampleBatch is one stream-feed interval, the binary twin of the CSV
// interval the text feed path parses.
type SampleBatch struct {
	TS      float64
	Window  int
	Samples []core.Sample
	Sched   []core.SchedEvent
}

// FrameSize inspects the start of buf and reports the total byte length
// of the first frame (header + payload). It returns 0 with a nil error
// when buf is too short to tell, and an error when the prefix cannot be
// a valid frame (bad magic, unknown type, oversized payload) — streamed
// feeds use it to split frames without buffering unbounded garbage.
func FrameSize(buf []byte) (int, error) {
	if len(buf) >= 4 && [4]byte(buf[:4]) != magic {
		return 0, fmt.Errorf("wire: bad magic %q", buf[:4])
	}
	if len(buf) < HeaderSize {
		return 0, nil
	}
	switch Msg(buf[4]) {
	case MsgEstimateRequest, MsgEstimateResponse, MsgSampleBatch:
	default:
		return 0, fmt.Errorf("wire: unknown message type %d", buf[4])
	}
	n := binary.LittleEndian.Uint32(buf[5:9])
	if n > MaxPayload {
		return 0, fmt.Errorf("wire: payload length %d exceeds cap %d", n, MaxPayload)
	}
	return HeaderSize + int(n), nil
}

// appendHeader reserves a frame header; finishFrame patches the payload
// length once the payload is in place.
func appendHeader(dst []byte, t Msg) ([]byte, int) {
	dst = append(dst, magic[:]...)
	dst = append(dst, byte(t))
	dst = append(dst, 0, 0, 0, 0)
	return dst, len(dst)
}

func finishFrame(dst []byte, payloadStart int) []byte {
	binary.LittleEndian.PutUint32(dst[payloadStart-4:payloadStart], uint32(len(dst)-payloadStart))
	return dst
}

func appendString(dst []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// appendSamples writes the metric dictionary (first-appearance order)
// followed by the sample rows. Dictionary indices are uint32, so any
// sample count a frame can physically hold is representable — there is
// no silent-truncation edge.
func appendSamples(dst []byte, samples []core.Sample) []byte {
	idx := make(map[string]uint32, 16)
	var dict []string
	for _, s := range samples {
		if _, ok := idx[s.Metric]; !ok {
			idx[s.Metric] = uint32(len(dict))
			dict = append(dict, s.Metric)
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(dict)))
	for _, m := range dict {
		dst = appendString(dst, m)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(samples)))
	for _, s := range samples {
		dst = binary.LittleEndian.AppendUint32(dst, idx[s.Metric])
		dst = appendF64(dst, s.T)
		dst = appendF64(dst, s.W)
		dst = appendF64(dst, s.M)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(s.Window)))
	}
	return dst
}

// appendSchedEvents writes a scheduler-event list. Class names are
// written per event rather than dictionary-encoded: sched sections are
// optional extras on otherwise sample-dominated frames, and keeping the
// row self-contained keeps the section trivially skippable.
func appendSchedEvents(dst []byte, events []core.SchedEvent) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(events)))
	for _, ev := range events {
		dst = appendF64(dst, ev.Time)
		dst = appendString(dst, ev.Class)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(ev.Thread)))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(ev.Hart)))
		dst = appendString(dst, ev.Obj)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(ev.Waker)))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(ev.Window)))
	}
	return dst
}

// schedEventMinSize is the smallest encodable event row: time + two
// empty strings + thread, hart, waker, window.
const schedEventMinSize = 8 + 2 + 8 + 8 + 2 + 8 + 8

func (r *reader) schedEvents() []core.SchedEvent {
	n := r.count32(schedEventMinSize)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]core.SchedEvent, n)
	for i := range out {
		out[i] = core.SchedEvent{
			Time:   r.f64(),
			Class:  r.str(),
			Thread: int(r.i64()),
			Hart:   int(r.i64()),
			Obj:    r.str(),
			Waker:  int(r.i64()),
			Window: int(r.i64()),
		}
	}
	return out
}

// Trailing-section tags. A frame body may be followed by zero or more
// tagged sections; a frame with no sections is byte-identical to the
// encoding before that section existed, which is what pins the
// zero-sched freeze.
const (
	secSched    = 1 // request / sample-batch: scheduler events
	secCombined = 2 // response: combined on/off-CPU report
)

// AppendEstimateRequest appends req as one SPB1 frame and returns the
// extended slice.
func AppendEstimateRequest(dst []byte, req *EstimateRequest) []byte {
	dst, start := appendHeader(dst, MsgEstimateRequest)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(req.Top)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(req.Workers)))
	dst = appendSamples(dst, req.Samples)
	// Sched section: optional and strictly trailing, so requests without
	// scheduler events stay byte-identical to the pre-sched encoding.
	if len(req.Sched) > 0 {
		dst = append(dst, secSched)
		dst = appendSchedEvents(dst, req.Sched)
	}
	return finishFrame(dst, start)
}

// AppendEstimateResponse appends res as one SPB1 frame and returns the
// extended slice.
func AppendEstimateResponse(dst []byte, res *EstimateResponse) []byte {
	dst, start := appendHeader(dst, MsgEstimateResponse)
	dst = appendString(dst, res.Model)
	est := res.Estimation
	if est == nil {
		dst = append(dst, 0)
		return finishFrame(dst, start)
	}
	dst = append(dst, 1)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(est.PerMetric)))
	for _, m := range est.PerMetric {
		dst = appendString(dst, m.Metric)
		dst = appendF64(dst, m.MeanEstimate)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(m.Samples)))
		dst = appendF64(dst, m.MeanIntensity)
	}
	dst = appendF64(dst, est.MaxThroughput)
	dst = appendF64(dst, est.MeasuredThroughput)
	cov := est.Coverage
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(cov.ModelMetrics)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(cov.DataMetrics)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(cov.Shared)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cov.DataOnly)))
	for _, m := range cov.DataOnly {
		dst = appendString(dst, m)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cov.ModelOnly)))
	for _, m := range cov.ModelOnly {
		dst = appendString(dst, m)
	}
	// Hierarchy section: optional and strictly trailing. Flat estimations
	// append nothing, so their frames are byte-identical to the pre-
	// hierarchy encoding; decoders treat an exhausted payload here as "no
	// hierarchy".
	if h := est.Hierarchy; h != nil {
		dst = append(dst, 1)
		dst = appendString(dst, h.BindingLevel)
		dst = appendString(dst, h.BindingMetric)
		dst = appendF64(dst, h.BindingEstimate)
		dst = appendF64(dst, h.BoundThroughput)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(h.Levels)))
		for _, l := range h.Levels {
			dst = appendString(dst, l.Level)
			dst = appendString(dst, l.Metric)
			dst = appendF64(dst, l.MeanEstimate)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(l.Samples)))
			dst = appendF64(dst, l.MeanIntensity)
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(h.Surfaces)))
		for _, s := range h.Surfaces {
			dst = appendString(dst, s.Name)
			dst = appendString(dst, s.Param)
			dst = appendF64(dst, s.ParamValue)
			dst = appendF64(dst, s.Ceiling)
			if s.Binding {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	// Combined section: like hierarchy, optional and strictly trailing.
	// Sections are self-identifying by tag, so a combined report on a
	// flat (no-hierarchy) estimation needs no placeholder.
	if c := est.Combined; c != nil {
		dst = append(dst, secCombined)
		dst = appendCombined(dst, c)
	}
	return finishFrame(dst, start)
}

func appendWaitVerdict(dst []byte, v *core.WaitVerdict) []byte {
	dst = appendString(dst, v.Kind)
	dst = appendString(dst, v.Object)
	dst = appendF64(dst, v.Wait)
	dst = appendF64(dst, v.Share)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(v.Waiters)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v.Threads)))
	for _, t := range v.Threads {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(t)))
	}
	return dst
}

// waitVerdictMinSize is the smallest encodable verdict: two empty
// strings, wait, share, waiters, empty thread list.
const waitVerdictMinSize = 2 + 2 + 8 + 8 + 8 + 4

func (r *reader) waitVerdict() core.WaitVerdict {
	v := core.WaitVerdict{
		Kind:    r.str(),
		Object:  r.str(),
		Wait:    r.f64(),
		Share:   r.f64(),
		Waiters: int(r.i64()),
	}
	n := r.count32(8)
	if r.err == nil && n > 0 {
		v.Threads = make([]int, n)
		for i := range v.Threads {
			v.Threads[i] = int(r.i64())
		}
	}
	return v
}

func appendCombined(dst []byte, c *core.CombinedReport) []byte {
	p := c.Partition
	dst = appendF64(dst, p.Wall)
	dst = appendF64(dst, p.OnCPU)
	dst = appendF64(dst, p.OffCPU)
	dst = appendF64(dst, p.LockWait)
	dst = appendF64(dst, p.IOWait)
	dst = appendF64(dst, p.RunnableWait)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(p.Threads)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Waits)))
	for i := range c.Waits {
		dst = appendWaitVerdict(dst, &c.Waits[i])
	}
	if c.Knot {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(c.Ranked)))
	for i := range c.Ranked {
		b := &c.Ranked[i]
		dst = appendString(dst, b.Source)
		dst = appendF64(dst, b.Score)
		dst = appendString(dst, b.Detail)
		dst = appendString(dst, b.Metric)
		if b.Wait != nil {
			dst = append(dst, 1)
			dst = appendWaitVerdict(dst, b.Wait)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

func (r *reader) combined() *core.CombinedReport {
	c := &core.CombinedReport{}
	c.Partition = core.TimePartition{
		Wall:         r.f64(),
		OnCPU:        r.f64(),
		OffCPU:       r.f64(),
		LockWait:     r.f64(),
		IOWait:       r.f64(),
		RunnableWait: r.f64(),
		Threads:      int(r.i64()),
	}
	nw := r.count32(waitVerdictMinSize)
	if r.err == nil && nw > 0 {
		c.Waits = make([]core.WaitVerdict, nw)
		for i := range c.Waits {
			c.Waits[i] = r.waitVerdict()
		}
	}
	c.Knot = r.u8() == 1
	nr := r.count32(2 + 8 + 2 + 2 + 1)
	if r.err == nil && nr > 0 {
		c.Ranked = make([]core.CombinedBottleneck, nr)
		for i := range c.Ranked {
			b := &c.Ranked[i]
			b.Source = r.str()
			b.Score = r.f64()
			b.Detail = r.str()
			b.Metric = r.str()
			if r.u8() == 1 {
				v := r.waitVerdict()
				if r.err == nil {
					b.Wait = &v
				}
			}
		}
	}
	if r.err != nil {
		return nil
	}
	return c
}

// AppendSampleBatch appends sb as one SPB1 frame and returns the
// extended slice.
func AppendSampleBatch(dst []byte, sb *SampleBatch) []byte {
	dst, start := appendHeader(dst, MsgSampleBatch)
	dst = appendF64(dst, sb.TS)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(sb.Window)))
	dst = appendSamples(dst, sb.Samples)
	if len(sb.Sched) > 0 {
		dst = append(dst, secSched)
		dst = appendSchedEvents(dst, sb.Sched)
	}
	return finishFrame(dst, start)
}

// reader walks a payload with saturating error tracking: the first
// underflow poisons every later read, so decode paths check err once at
// the end of each structure.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *reader) rem() int { return len(r.b) - r.off }

func (r *reader) take(n int) []byte {
	if r.err != nil || r.rem() < n {
		r.fail("truncated: need %d bytes at offset %d, have %d", n, r.off, r.rem())
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *reader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *reader) str() string {
	n := int(r.u16())
	return string(r.take(n))
}

// count reads an element count and validates it against the bytes
// remaining at minimum element size, so a hostile count cannot size an
// allocation beyond the input itself.
func (r *reader) count32(minElem int) int {
	n := int(r.u32())
	if r.err == nil && n > r.rem()/minElem {
		r.fail("count %d exceeds remaining %d bytes (min element %d)", n, r.rem(), minElem)
		return 0
	}
	return n
}

// strings reads a length-prefixed string list (uint32 count).
func (r *reader) strings() []string {
	n := r.count32(2)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.str()
	}
	return out
}

// sampleRowSize is one encoded sample row: dict index + T, W, M + window.
const sampleRowSize = 4 + 8 + 8 + 8 + 8

// samples reads a dictionary plus sample rows.
func (r *reader) samples() []core.Sample {
	nd := r.count32(2)
	if r.err != nil {
		return nil
	}
	dict := make([]string, nd)
	for i := range dict {
		dict[i] = r.str()
	}
	n := r.count32(sampleRowSize)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]core.Sample, n)
	for i := range out {
		k := int(r.u32())
		if r.err == nil && k >= len(dict) {
			r.fail("sample %d references metric %d of a %d-entry dictionary", i, k, len(dict))
			return nil
		}
		if r.err != nil {
			return nil
		}
		out[i] = core.Sample{
			Metric: dict[k],
			T:      r.f64(),
			W:      r.f64(),
			M:      r.f64(),
			Window: int(r.i64()),
		}
	}
	return out
}

// payload validates b's frame header against the wanted type and returns
// the payload bytes. Trailing bytes beyond the declared payload are an
// error: one HTTP body is one frame.
func payload(b []byte, want Msg) ([]byte, error) {
	n, err := FrameSize(b)
	if err != nil {
		return nil, err
	}
	if n == 0 || len(b) < n {
		return nil, fmt.Errorf("wire: truncated frame: have %d bytes of %d", len(b), n)
	}
	if len(b) > n {
		return nil, fmt.Errorf("wire: %d trailing bytes after frame", len(b)-n)
	}
	if got := Msg(b[4]); got != want {
		return nil, fmt.Errorf("wire: message type %d, want %d", got, want)
	}
	return b[HeaderSize:n], nil
}

// DecodeEstimateRequest decodes one MsgEstimateRequest frame.
func DecodeEstimateRequest(b []byte) (*EstimateRequest, error) {
	p, err := payload(b, MsgEstimateRequest)
	if err != nil {
		return nil, err
	}
	r := &reader{b: p}
	req := &EstimateRequest{
		Top:     int(r.i64()),
		Workers: int(r.i64()),
	}
	req.Samples = r.samples()
	// Optional trailing sections; an exhausted payload is the flat
	// (zero-sched) encoding.
	sawSched := false
	for r.err == nil && r.rem() > 0 {
		switch tag := r.u8(); tag {
		case secSched:
			if sawSched {
				r.fail("duplicate sched section")
				break
			}
			sawSched = true
			req.Sched = r.schedEvents()
		default:
			r.fail("unknown request section tag %d", tag)
		}
	}
	if r.err == nil && r.rem() != 0 {
		r.fail("%d trailing payload bytes", r.rem())
	}
	if r.err != nil {
		return nil, r.err
	}
	return req, nil
}

// DecodeEstimateResponse decodes one MsgEstimateResponse frame.
func DecodeEstimateResponse(b []byte) (*EstimateResponse, error) {
	p, err := payload(b, MsgEstimateResponse)
	if err != nil {
		return nil, err
	}
	r := &reader{b: p}
	res := &EstimateResponse{Model: r.str()}
	if r.u8() == 1 {
		est := &core.Estimation{}
		n := r.count32(2 + 8 + 8 + 8)
		if r.err == nil && n > 0 {
			est.PerMetric = make([]core.MetricEstimate, n)
			for i := range est.PerMetric {
				est.PerMetric[i] = core.MetricEstimate{
					Metric:       r.str(),
					MeanEstimate: r.f64(),
					Samples:      int(r.i64()),
				}
				est.PerMetric[i].MeanIntensity = r.f64()
			}
		}
		est.MaxThroughput = r.f64()
		est.MeasuredThroughput = r.f64()
		est.Coverage.ModelMetrics = int(r.i64())
		est.Coverage.DataMetrics = int(r.i64())
		est.Coverage.Shared = int(r.i64())
		est.Coverage.DataOnly = r.strings()
		est.Coverage.ModelOnly = r.strings()
		// Optional trailing sections, each self-identifying by tag; their
		// absence (payload exhausted) is the flat encoding. Tag 0 is the
		// legacy explicit "no hierarchy" placeholder.
		sawHierarchy, sawCombined := false, false
		for r.err == nil && r.rem() > 0 {
			switch tag := r.u8(); tag {
			case 0:
			case 1:
				if sawHierarchy {
					r.fail("duplicate hierarchy section")
					break
				}
				sawHierarchy = true
				h := &core.HierarchyEstimate{
					BindingLevel:    r.str(),
					BindingMetric:   r.str(),
					BindingEstimate: r.f64(),
					BoundThroughput: r.f64(),
				}
				nl := r.count32(2 + 2 + 8 + 8 + 8)
				if r.err == nil && nl > 0 {
					h.Levels = make([]core.LevelEstimate, nl)
					for i := range h.Levels {
						h.Levels[i] = core.LevelEstimate{
							Level:        r.str(),
							Metric:       r.str(),
							MeanEstimate: r.f64(),
							Samples:      int(r.i64()),
						}
						h.Levels[i].MeanIntensity = r.f64()
					}
				}
				ns := r.count32(2 + 2 + 8 + 8 + 1)
				if r.err == nil && ns > 0 {
					h.Surfaces = make([]core.SurfaceEstimate, ns)
					for i := range h.Surfaces {
						h.Surfaces[i] = core.SurfaceEstimate{
							Name:       r.str(),
							Param:      r.str(),
							ParamValue: r.f64(),
							Ceiling:    r.f64(),
							Binding:    r.u8() == 1,
						}
					}
				}
				if r.err == nil {
					est.Hierarchy = h
				}
			case secCombined:
				if sawCombined {
					r.fail("duplicate combined section")
					break
				}
				sawCombined = true
				est.Combined = r.combined()
			default:
				r.fail("unknown hierarchy tag %d", tag)
			}
		}
		res.Estimation = est
	}
	if r.err == nil && r.rem() != 0 {
		r.fail("%d trailing payload bytes", r.rem())
	}
	if r.err != nil {
		return nil, r.err
	}
	return res, nil
}

// DecodeSampleBatch decodes one MsgSampleBatch frame.
func DecodeSampleBatch(b []byte) (*SampleBatch, error) {
	p, err := payload(b, MsgSampleBatch)
	if err != nil {
		return nil, err
	}
	r := &reader{b: p}
	sb := &SampleBatch{
		TS:     r.f64(),
		Window: int(r.i64()),
	}
	sb.Samples = r.samples()
	sawSched := false
	for r.err == nil && r.rem() > 0 {
		switch tag := r.u8(); tag {
		case secSched:
			if sawSched {
				r.fail("duplicate sched section")
				break
			}
			sawSched = true
			sb.Sched = r.schedEvents()
		default:
			r.fail("unknown batch section tag %d", tag)
		}
	}
	if r.err == nil && r.rem() != 0 {
		r.fail("%d trailing payload bytes", r.rem())
	}
	if r.err != nil {
		return nil, r.err
	}
	return sb, nil
}
