package wire

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"spire/internal/core"
)

// fuzzSeeds are the frames (and near-frames) both fuzz targets start
// from; TestRegenSeedCorpus mirrors them into testdata/fuzz so the
// corpus is checked in and `go test -fuzz` starts warm.
func fuzzSeeds() [][]byte {
	est := &core.Estimation{
		PerMetric: []core.MetricEstimate{
			{Metric: "llc-misses", MeanEstimate: 1.25e9, Samples: 12, MeanIntensity: 0.5},
			{Metric: "cycles", MeanEstimate: math.Inf(1), Samples: 3, MeanIntensity: math.NaN()},
		},
		MaxThroughput:      1.25e9,
		MeasuredThroughput: 9.5e8,
	}
	est.Coverage.ModelMetrics = 4
	est.Coverage.DataMetrics = 3
	est.Coverage.Shared = 2
	est.Coverage.DataOnly = []string{"weird"}
	est.Coverage.ModelOnly = []string{"dram-reads", ""}

	seeds := [][]byte{
		AppendEstimateRequest(nil, &EstimateRequest{}),
		AppendEstimateRequest(nil, &EstimateRequest{Top: 5, Workers: 2, Samples: sampleSet()}),
		AppendEstimateResponse(nil, &EstimateResponse{}),
		AppendEstimateResponse(nil, &EstimateResponse{Model: "sha256:abc", Estimation: est}),
		AppendSampleBatch(nil, &SampleBatch{TS: 1.5, Window: 3, Samples: sampleSet()}),
		[]byte("SPB1"),
		[]byte("not a frame at all"),
		{},
	}
	// A truncated and a trailing-garbage variant of a real frame.
	full := AppendSampleBatch(nil, &SampleBatch{TS: 2, Window: 1, Samples: sampleSet()[:2]})
	seeds = append(seeds, full[:len(full)/2], append(append([]byte(nil), full...), 0xFF))
	return seeds
}

// FuzzBinDecodeEstimate throws arbitrary bytes at every decoder: none
// may panic, and none may allocate beyond the input (the count-vs-
// remaining validation; a violation shows up as the fuzzer OOMing).
// Whatever decodes must re-encode without error.
func FuzzBinDecodeEstimate(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		if _, err := FrameSize(b); err != nil {
			// FrameSize rejecting the prefix means every decoder must too.
			if _, derr := DecodeEstimateRequest(b); derr == nil {
				t.Fatal("FrameSize rejected but DecodeEstimateRequest accepted")
			}
		}
		if req, err := DecodeEstimateRequest(b); err == nil {
			AppendEstimateRequest(nil, req)
		}
		if res, err := DecodeEstimateResponse(b); err == nil {
			AppendEstimateResponse(nil, res)
		}
		if sb, err := DecodeSampleBatch(b); err == nil {
			AppendSampleBatch(nil, sb)
		}
	})
}

// FuzzBinRoundTrip pins canonical-form idempotence: for any input that
// decodes, re-encoding the decoded value and decoding that again must
// succeed and re-encode to the identical bytes. (The first re-encode may
// differ from a hand-crafted input — e.g. an unreferenced dictionary
// entry is dropped — but the canonical form is a fixed point.)
func FuzzBinRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		if req, err := DecodeEstimateRequest(b); err == nil {
			y := AppendEstimateRequest(nil, req)
			req2, err := DecodeEstimateRequest(y)
			if err != nil {
				t.Fatalf("canonical request failed to decode: %v", err)
			}
			if again := AppendEstimateRequest(nil, req2); !bytes.Equal(again, y) {
				t.Fatal("request canonical form is not a fixed point")
			}
		}
		if res, err := DecodeEstimateResponse(b); err == nil {
			y := AppendEstimateResponse(nil, res)
			res2, err := DecodeEstimateResponse(y)
			if err != nil {
				t.Fatalf("canonical response failed to decode: %v", err)
			}
			if again := AppendEstimateResponse(nil, res2); !bytes.Equal(again, y) {
				t.Fatal("response canonical form is not a fixed point")
			}
		}
		if sb, err := DecodeSampleBatch(b); err == nil {
			y := AppendSampleBatch(nil, sb)
			sb2, err := DecodeSampleBatch(y)
			if err != nil {
				t.Fatalf("canonical batch failed to decode: %v", err)
			}
			if again := AppendSampleBatch(nil, sb2); !bytes.Equal(again, y) {
				t.Fatal("batch canonical form is not a fixed point")
			}
		}
	})
}

// TestRegenSeedCorpus rewrites the checked-in seed corpora under
// testdata/fuzz from fuzzSeeds. Run with WIRE_REGEN_CORPUS=1 after
// changing the seeds or the format; otherwise it verifies the corpus
// files exist so a stale checkout fails loudly.
func TestRegenSeedCorpus(t *testing.T) {
	regen := os.Getenv("WIRE_REGEN_CORPUS") != ""
	for _, target := range []string{"FuzzBinDecodeEstimate", "FuzzBinRoundTrip"} {
		dir := filepath.Join("testdata", "fuzz", target)
		if regen {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		for i, s := range fuzzSeeds() {
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			if regen {
				if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing seed corpus %s (regenerate with WIRE_REGEN_CORPUS=1): %v", path, err)
			}
			if string(got) != body {
				t.Fatalf("stale seed corpus %s (regenerate with WIRE_REGEN_CORPUS=1)", path)
			}
		}
	}
}
