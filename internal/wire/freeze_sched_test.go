package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"spire/internal/core"
)

// This file pins the zero-sched freeze invariant: a frame carrying no
// scheduler events and no combined report must be byte-identical to the
// encoding that existed before either concept did. The frozen reference
// encoders below are verbatim copies of that earlier code; the
// differential suite runs thousands of randomized messages through both
// paths and fails on the first diverging byte. If a future change makes
// sched or combined sections leak into flat frames — a placeholder tag,
// an unconditional count, a reordered section — this suite is what
// catches it.

// frozenAppendEstimateRequest is the pre-sched request encoder, frozen.
func frozenAppendEstimateRequest(dst []byte, req *EstimateRequest) []byte {
	dst, start := appendHeader(dst, MsgEstimateRequest)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(req.Top)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(req.Workers)))
	dst = appendSamples(dst, req.Samples)
	return finishFrame(dst, start)
}

// frozenAppendSampleBatch is the pre-sched batch encoder, frozen.
func frozenAppendSampleBatch(dst []byte, sb *SampleBatch) []byte {
	dst, start := appendHeader(dst, MsgSampleBatch)
	dst = appendF64(dst, sb.TS)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(sb.Window)))
	dst = appendSamples(dst, sb.Samples)
	return finishFrame(dst, start)
}

// frozenAppendEstimateResponse is the pre-combined response encoder,
// frozen: flat fields, then the optional hierarchy section, nothing else.
func frozenAppendEstimateResponse(dst []byte, res *EstimateResponse) []byte {
	dst, start := appendHeader(dst, MsgEstimateResponse)
	dst = appendString(dst, res.Model)
	est := res.Estimation
	if est == nil {
		dst = append(dst, 0)
		return finishFrame(dst, start)
	}
	dst = append(dst, 1)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(est.PerMetric)))
	for _, m := range est.PerMetric {
		dst = appendString(dst, m.Metric)
		dst = appendF64(dst, m.MeanEstimate)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(m.Samples)))
		dst = appendF64(dst, m.MeanIntensity)
	}
	dst = appendF64(dst, est.MaxThroughput)
	dst = appendF64(dst, est.MeasuredThroughput)
	cov := est.Coverage
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(cov.ModelMetrics)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(cov.DataMetrics)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(cov.Shared)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cov.DataOnly)))
	for _, m := range cov.DataOnly {
		dst = appendString(dst, m)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cov.ModelOnly)))
	for _, m := range cov.ModelOnly {
		dst = appendString(dst, m)
	}
	if h := est.Hierarchy; h != nil {
		dst = append(dst, 1)
		dst = appendString(dst, h.BindingLevel)
		dst = appendString(dst, h.BindingMetric)
		dst = appendF64(dst, h.BindingEstimate)
		dst = appendF64(dst, h.BoundThroughput)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(h.Levels)))
		for _, l := range h.Levels {
			dst = appendString(dst, l.Level)
			dst = appendString(dst, l.Metric)
			dst = appendF64(dst, l.MeanEstimate)
			dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(l.Samples)))
			dst = appendF64(dst, l.MeanIntensity)
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(h.Surfaces)))
		for _, s := range h.Surfaces {
			dst = appendString(dst, s.Name)
			dst = appendString(dst, s.Param)
			dst = appendF64(dst, s.ParamValue)
			dst = appendF64(dst, s.Ceiling)
			if s.Binding {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	}
	return finishFrame(dst, start)
}

// Frozen JSON mirrors: the exact field-and-tag sets core's types carried
// before Sched/Combined existed. Marshalling a flat value through the
// live type and through its mirror must produce identical bytes — which
// is only true while the additive fields stay omitempty pointers/slices.

type frozenMetricEstimate struct {
	Metric        string  `json:"metric"`
	MeanEstimate  float64 `json:"meanEstimate"`
	Samples       int     `json:"samples"`
	MeanIntensity float64 `json:"meanIntensity"`
}

type frozenCoverage struct {
	ModelMetrics int      `json:"modelMetrics"`
	DataMetrics  int      `json:"dataMetrics"`
	Shared       int      `json:"shared"`
	DataOnly     []string `json:"dataOnly,omitempty"`
	ModelOnly    []string `json:"modelOnly,omitempty"`
}

type frozenLevelEstimate struct {
	Level         string  `json:"level"`
	Metric        string  `json:"metric"`
	MeanEstimate  float64 `json:"meanEstimate"`
	Samples       int     `json:"samples"`
	MeanIntensity float64 `json:"meanIntensity"`
}

type frozenSurfaceEstimate struct {
	Name       string  `json:"name,omitempty"`
	Param      string  `json:"param"`
	ParamValue float64 `json:"paramValue"`
	Ceiling    float64 `json:"ceiling"`
	Binding    bool    `json:"binding"`
}

type frozenHierarchy struct {
	BindingLevel    string                  `json:"bindingLevel"`
	BindingMetric   string                  `json:"bindingMetric"`
	BindingEstimate float64                 `json:"bindingEstimate"`
	BoundThroughput float64                 `json:"boundThroughput"`
	Levels          []frozenLevelEstimate   `json:"levels"`
	Surfaces        []frozenSurfaceEstimate `json:"surfaces,omitempty"`
}

type frozenEstimation struct {
	PerMetric          []frozenMetricEstimate `json:"perMetric"`
	MaxThroughput      float64                `json:"maxThroughput"`
	MeasuredThroughput float64                `json:"measuredThroughput"`
	Coverage           frozenCoverage         `json:"coverage"`
	Hierarchy          *frozenHierarchy       `json:"hierarchy,omitempty"`
}

func mirrorEstimation(est *core.Estimation) *frozenEstimation {
	f := &frozenEstimation{
		MaxThroughput:      est.MaxThroughput,
		MeasuredThroughput: est.MeasuredThroughput,
		Coverage: frozenCoverage{
			ModelMetrics: est.Coverage.ModelMetrics,
			DataMetrics:  est.Coverage.DataMetrics,
			Shared:       est.Coverage.Shared,
			DataOnly:     est.Coverage.DataOnly,
			ModelOnly:    est.Coverage.ModelOnly,
		},
	}
	for _, m := range est.PerMetric {
		f.PerMetric = append(f.PerMetric, frozenMetricEstimate(m))
	}
	if h := est.Hierarchy; h != nil {
		fh := &frozenHierarchy{
			BindingLevel:    h.BindingLevel,
			BindingMetric:   h.BindingMetric,
			BindingEstimate: h.BindingEstimate,
			BoundThroughput: h.BoundThroughput,
		}
		for _, l := range h.Levels {
			fh.Levels = append(fh.Levels, frozenLevelEstimate(l))
		}
		for _, s := range h.Surfaces {
			fh.Surfaces = append(fh.Surfaces, frozenSurfaceEstimate(s))
		}
		f.Hierarchy = fh
	}
	return f
}

// Randomized message generators. Deterministic seed: a failure
// reproduces exactly, and the suite is content-addressable across runs.

var freezeMetrics = []string{
	"cycles", "instructions", "l1d.miss", "l2.miss", "llc.miss",
	"branch.mispredict", "dram.bw", "tlb.walk", "uops.retired", "",
}

func randFreezeSamples(rng *rand.Rand) []core.Sample {
	n := rng.Intn(40)
	if n == 0 {
		return nil
	}
	out := make([]core.Sample, n)
	for i := range out {
		out[i] = core.Sample{
			Metric: freezeMetrics[rng.Intn(len(freezeMetrics))],
			T:      rng.NormFloat64() * 100,
			W:      rng.Float64() * 1e6,
			M:      float64(rng.Intn(1 << 20)),
			Window: rng.Intn(8) - 1,
		}
		if rng.Intn(16) == 0 {
			out[i].T = math.Inf(1)
		}
		if rng.Intn(16) == 0 {
			out[i].M = math.NaN()
		}
	}
	return out
}

func randFreezeEstimation(rng *rand.Rand) *core.Estimation {
	est := &core.Estimation{
		MaxThroughput:      rng.Float64() * 8,
		MeasuredThroughput: rng.Float64() * 8,
	}
	for i, n := 0, rng.Intn(8); i < n; i++ {
		est.PerMetric = append(est.PerMetric, core.MetricEstimate{
			Metric:        freezeMetrics[rng.Intn(len(freezeMetrics))],
			MeanEstimate:  rng.Float64() * 16,
			Samples:       rng.Intn(1000),
			MeanIntensity: rng.ExpFloat64(),
		})
	}
	est.Coverage = core.CoverageReport{
		ModelMetrics: rng.Intn(32),
		DataMetrics:  rng.Intn(32),
		Shared:       rng.Intn(32),
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		est.Coverage.DataOnly = append(est.Coverage.DataOnly, freezeMetrics[rng.Intn(len(freezeMetrics))])
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		est.Coverage.ModelOnly = append(est.Coverage.ModelOnly, freezeMetrics[rng.Intn(len(freezeMetrics))])
	}
	if rng.Intn(2) == 0 {
		h := &core.HierarchyEstimate{
			BindingLevel:    "L2",
			BindingMetric:   freezeMetrics[rng.Intn(len(freezeMetrics))],
			BindingEstimate: rng.Float64() * 4,
			BoundThroughput: rng.Float64() * 4,
		}
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			h.Levels = append(h.Levels, core.LevelEstimate{
				Level:         "L" + string(rune('1'+i)),
				Metric:        freezeMetrics[rng.Intn(len(freezeMetrics))],
				MeanEstimate:  rng.Float64() * 8,
				Samples:       rng.Intn(500),
				MeanIntensity: rng.ExpFloat64(),
			})
		}
		for i, n := 0, rng.Intn(3); i < n; i++ {
			h.Surfaces = append(h.Surfaces, core.SurfaceEstimate{
				Name:       "surf",
				Param:      freezeMetrics[rng.Intn(len(freezeMetrics))],
				ParamValue: rng.Float64(),
				Ceiling:    rng.Float64() * 8,
				Binding:    rng.Intn(2) == 0,
			})
		}
		est.Hierarchy = h
	}
	return est
}

func randFreezeSched(rng *rand.Rand) []core.SchedEvent {
	n := 1 + rng.Intn(6)
	out := make([]core.SchedEvent, n)
	for i := range out {
		out[i] = core.SchedEvent{
			Time:   rng.Float64() * 10,
			Class:  "sched.switch_in",
			Thread: rng.Intn(8),
			Hart:   rng.Intn(4),
			Waker:  -1,
			Window: -1,
		}
	}
	return out
}

// TestZeroSchedFreezeDifferential is the tentpole freeze suite: 2048
// randomized request/response/batch triples, each encoded by the live
// encoder and the frozen pre-sched reference, compared byte-for-byte.
// It runs under -race in `make verify` via the package race pass.
func TestZeroSchedFreezeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5f1e2e))
	const cases = 2048
	for i := 0; i < cases; i++ {
		// Requests: zero sched events must freeze. Both the nil slice and
		// the empty non-nil slice are "zero".
		req := &EstimateRequest{
			Top:     rng.Intn(64) - 1,
			Workers: rng.Intn(16),
			Samples: randFreezeSamples(rng),
		}
		if rng.Intn(2) == 0 {
			req.Sched = []core.SchedEvent{}
		}
		live := AppendEstimateRequest(nil, req)
		frozen := frozenAppendEstimateRequest(nil, req)
		if !bytes.Equal(live, frozen) {
			t.Fatalf("case %d: zero-sched request encoding drifted from frozen reference\n live: %x\nfrozen: %x", i, live, frozen)
		}
		dec, err := DecodeEstimateRequest(live)
		if err != nil {
			t.Fatalf("case %d: decode flat request: %v", i, err)
		}
		if dec.Sched != nil {
			t.Fatalf("case %d: flat request decoded with non-nil sched", i)
		}

		// Batches: same invariant on the stream feed path.
		sb := &SampleBatch{
			TS:      rng.Float64() * 1000,
			Window:  rng.Intn(8) - 1,
			Samples: randFreezeSamples(rng),
		}
		if rng.Intn(2) == 0 {
			sb.Sched = []core.SchedEvent{}
		}
		live = AppendSampleBatch(nil, sb)
		frozen = frozenAppendSampleBatch(nil, sb)
		if !bytes.Equal(live, frozen) {
			t.Fatalf("case %d: zero-sched batch encoding drifted from frozen reference", i)
		}
		if dec, err := DecodeSampleBatch(live); err != nil || dec.Sched != nil {
			t.Fatalf("case %d: flat batch decode: sched=%v err=%v", i, dec.Sched, err)
		}

		// Responses: an estimation without a combined report must freeze,
		// with and without a hierarchy section in front.
		res := &EstimateResponse{Model: "sha256:deadbeef"}
		if rng.Intn(8) != 0 {
			res.Estimation = randFreezeEstimation(rng)
		}
		live = AppendEstimateResponse(nil, res)
		frozen = frozenAppendEstimateResponse(nil, res)
		if !bytes.Equal(live, frozen) {
			t.Fatalf("case %d: no-combined response encoding drifted from frozen reference", i)
		}
		rdec, err := DecodeEstimateResponse(live)
		if err != nil {
			t.Fatalf("case %d: decode flat response: %v", i, err)
		}
		if rdec.Estimation != nil && rdec.Estimation.Combined != nil {
			t.Fatalf("case %d: flat response decoded with non-nil combined", i)
		}

		// The JSON tier freezes too: a flat estimation marshals to the
		// same bytes as its pre-sched mirror type.
		if res.Estimation != nil {
			liveJSON, err := json.Marshal(res.Estimation)
			if err != nil {
				t.Fatal(err)
			}
			frozenJSON, err := json.Marshal(mirrorEstimation(res.Estimation))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(liveJSON, frozenJSON) {
				t.Fatalf("case %d: flat estimation JSON drifted from frozen mirror\n live: %s\nfrozen: %s", i, liveJSON, frozenJSON)
			}
		}

		// Sanity on a sample of cases: a request that DOES carry sched
		// events must diverge from the frozen encoding (the section is
		// really there) and round-trip losslessly.
		if i%64 == 0 {
			req.Sched = randFreezeSched(rng)
			withSched := AppendEstimateRequest(nil, req)
			if bytes.Equal(withSched, frozenAppendEstimateRequest(nil, req)) {
				t.Fatalf("case %d: sched-bearing request encoded identically to flat frame", i)
			}
			back, err := DecodeEstimateRequest(withSched)
			if err != nil {
				t.Fatalf("case %d: decode sched request: %v", i, err)
			}
			if !reflect.DeepEqual(back.Sched, req.Sched) {
				t.Fatalf("case %d: sched events did not round-trip", i)
			}
		}
	}
}

// TestZeroSchedFreezeDataset pins the dataset JSON contract: a dataset
// whose Sched slice is empty serializes without a "sched" key at all.
func TestZeroSchedFreezeDataset(t *testing.T) {
	raw, err := json.Marshal(core.Dataset{Samples: []core.Sample{{Metric: "cycles", T: 1, W: 2, M: 3, Window: -1}}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(`"sched"`)) {
		t.Fatalf("sched-free dataset JSON leaked a sched key: %s", raw)
	}
	if bytes.Contains(raw, []byte(`"combined"`)) {
		t.Fatalf("dataset JSON leaked a combined key: %s", raw)
	}
}
