// Package metrics is a zero-dependency instrumentation library for the
// SPIRE serving tier: counters, gauges and histograms with optional
// labels, rendered in the Prometheus text exposition format. All
// instruments are safe for concurrent use and lock-free on the hot path
// (atomic float64 bit operations); the registry itself takes a mutex only
// on instrument creation and rendering. Output is deterministic: families
// sort by name, children by label signature, so two renders of the same
// state are byte-identical.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to an instrument.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct {
	v atomicFloat
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds v; negative deltas are ignored to keep the counter monotonic.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.v.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.value() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomicFloat
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.set(v) }

// Add adjusts the gauge by v (negative allowed).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.value() }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound contains v; observations beyond the
	// last bound land only in the implicit +Inf bucket (count/sum).
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// DefBuckets are latency-shaped default bounds in seconds.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family groups all children (label combinations) of one metric name.
type family struct {
	name, help, typ string
	bounds          []float64 // histograms only
	children        map[string]any
}

// Registry holds a set of metric families and renders them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSig renders labels into the canonical child key / exposition form,
// e.g. `{code="200",route="/v1/estimate"}`. Empty for no labels.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the child instrument for (name, labels),
// enforcing one type and help string per family.
func (r *Registry) lookup(name, help, typ string, bounds []float64, labels []Label, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, bounds: bounds, children: make(map[string]any)}
		r.families[name] = fam
	} else if fam.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, fam.typ, typ))
	}
	sig := labelSig(labels)
	child, ok := fam.children[sig]
	if !ok {
		child = mk()
		fam.children[sig] = child
	}
	return child
}

// Counter returns the counter for (name, labels), creating it on first
// use. Calling again with the same name and labels returns the same
// instrument.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, typeCounter, nil, labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, typeGauge, nil, labels, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the histogram for (name, labels), creating it on
// first use with the given ascending bucket upper bounds (nil selects
// DefBuckets). Bounds are fixed by the first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.lookup(name, help, typeHistogram, bounds, labels, func() any {
		return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
	}).(*Histogram)
}

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels splices extra labels (e.g. le) into a child signature.
func mergeSig(sig, extra string) string {
	if sig == "" {
		return "{" + extra + "}"
	}
	return sig[:len(sig)-1] + "," + extra + "}"
}

// Render writes every family in the Prometheus text exposition format,
// sorted by family name then child label signature.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot family/child structure under the lock; instrument reads
	// are atomic and happen after release.
	type childSnap struct {
		sig  string
		inst any
	}
	type famSnap struct {
		*family
		kids []childSnap
	}
	fams := make([]famSnap, 0, len(names))
	for _, n := range names {
		fam := r.families[n]
		fs := famSnap{family: fam}
		sigs := make([]string, 0, len(fam.children))
		for s := range fam.children {
			sigs = append(sigs, s)
		}
		sort.Strings(sigs)
		for _, s := range sigs {
			fs.kids = append(fs.kids, childSnap{sig: s, inst: fam.children[s]})
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, fam := range fams {
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, fam.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, kid := range fam.kids {
			switch inst := kid.inst.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %s\n", fam.name, kid.sig, fmtFloat(inst.Value()))
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", fam.name, kid.sig, fmtFloat(inst.Value()))
			case *Histogram:
				cum := uint64(0)
				for i, bound := range inst.bounds {
					cum += inst.counts[i].Load()
					le := fmt.Sprintf("le=%q", fmtFloat(bound))
					fmt.Fprintf(&b, "%s_bucket%s %d\n", fam.name, mergeSig(kid.sig, le), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", fam.name, mergeSig(kid.sig, `le="+Inf"`), inst.Count())
				fmt.Fprintf(&b, "%s_sum%s %s\n", fam.name, kid.sig, fmtFloat(inst.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", fam.name, kid.sig, inst.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
