package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %g, want 3.5", got)
	}
	if again := r.Counter("requests_total", "total requests"); again != c {
		t.Error("re-registration must return the same counter")
	}

	g := r.Gauge("inflight", "in-flight requests")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %g, want 3", got)
	}
}

func TestLabelsSeparateChildren(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("http_total", "h", L("route", "/a"), L("code", "200"))
	b := r.Counter("http_total", "h", L("route", "/b"), L("code", "200"))
	if a == b {
		t.Fatal("different labels must yield different children")
	}
	// Label order must not matter.
	a2 := r.Counter("http_total", "h", L("code", "200"), L("route", "/a"))
	if a2 != a {
		t.Error("label order changed the child identity")
	}
	a.Inc()
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `http_total{code="200",route="/a"} 1`) {
		t.Errorf("labeled sample missing or keys unsorted:\n%s", out)
	}
	if !strings.Contains(out, `http_total{code="200",route="/b"} 0`) {
		t.Errorf("zero-valued child missing:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "request latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.1 + 0.5 + 5 + 100; math.Abs(h.Sum()-want) > 1e-12 {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 2`, // 0.05 and the inclusive 0.1
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
		"# TYPE latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("zebra_total", "z").Inc()
	r.Gauge("alpha", "a").Set(1)
	r.Histogram("mid_seconds", "m", []float64{1}).Observe(0.5)
	var one, two strings.Builder
	if err := r.Render(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("two renders of the same state differ")
	}
	if strings.Index(one.String(), "alpha") > strings.Index(one.String(), "zebra_total") {
		t.Error("families are not sorted by name")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("registering x_total as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestConcurrentUse hammers one registry from many goroutines; run under
// -race this is the package's data-race gate, and the final counts must
// be exact (no lost updates).
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("spin_total", "s")
			h := r.Histogram("spin_seconds", "s", nil)
			g := r.Gauge("spin_gauge", "s")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.01)
				g.Add(1)
				var sb strings.Builder
				if i%100 == 0 {
					if err := r.Render(&sb); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("spin_total", "s").Value(); got != workers*per {
		t.Errorf("counter = %g, want %d", got, workers*per)
	}
	if got := r.Histogram("spin_seconds", "s", nil).Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := r.Gauge("spin_gauge", "s").Value(); got != workers*per {
		t.Errorf("gauge = %g, want %d", got, workers*per)
	}
}
