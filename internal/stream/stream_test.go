package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"spire/internal/core"
	"spire/internal/ingest"
	"spire/internal/metrics"
)

// iv builds a synthetic interval with one sample per given metric.
func iv(window int, names ...string) ingest.Interval {
	out := ingest.Interval{TS: float64(window), Window: window}
	for i, m := range names {
		out.Samples = append(out.Samples, core.Sample{
			Metric: m, T: 2, W: float64(4 + i), M: 2, Window: window,
		})
	}
	return out
}

func TestWindowerSliding(t *testing.T) {
	w := NewWindower(2)
	first := w.Push(iv(1, "alpha"))
	if first.Seq != 1 || first.Intervals != 1 || first.StartTS != 1 || first.EndTS != 1 || first.Samples != 1 {
		t.Fatalf("first window: %+v", first)
	}
	second := w.Push(iv(2, "beta"))
	if second.Seq != 2 || second.Intervals != 2 || second.StartTS != 1 || second.Samples != 2 {
		t.Fatalf("second window: %+v", second)
	}
	third := w.Push(iv(3, "gamma"))
	if third.Seq != 3 || third.Intervals != 2 || third.StartTS != 2 || third.EndTS != 3 || third.Samples != 2 {
		t.Fatalf("third window did not slide: %+v", third)
	}
	if got := third.Index.Metrics(); !reflect.DeepEqual(got, []string{"beta", "gamma"}) {
		t.Fatalf("window 1 not evicted: metrics %v", got)
	}
	// Earlier snapshots must be untouched by the slide.
	if got := second.Index.Metrics(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Fatalf("published snapshot mutated: metrics %v", got)
	}
}

func TestResultTruncate(t *testing.T) {
	est := &core.Estimation{PerMetric: []core.MetricEstimate{
		{Metric: "a"}, {Metric: "b"}, {Metric: "c"},
	}}
	r := Result{Seq: 9, Estimation: est}
	cut := r.Truncate(2)
	if len(cut.Estimation.PerMetric) != 2 || cut.Seq != 9 {
		t.Fatalf("truncate: %+v", cut)
	}
	if len(r.Estimation.PerMetric) != 3 {
		t.Fatal("Truncate mutated the original")
	}
	if same := r.Truncate(0); same.Estimation != est {
		t.Fatal("n<=0 must be a no-op")
	}
	none := Result{Error: "no model loaded"}
	if got := none.Truncate(1); got.Estimation != nil {
		t.Fatalf("truncating an errored result: %+v", got)
	}
}

// testEnsemble trains a deterministic model over the diffNames metrics.
func testEnsemble(t testing.TB) *core.Ensemble {
	t.Helper()
	return trainStreamEnsemble(t, rand.New(rand.NewSource(4242)))
}

func TestPipelineChunkInvariance(t *testing.T) {
	ens := testEnsemble(t)
	input := csvStream(rand.New(rand.NewSource(7)), 12)
	ctx := context.Background()
	run := func(chunk int) []Result {
		p := NewPipeline(Config{WindowIntervals: 3, Model: StaticModel(ens, "m")})
		var out []Result
		rest := []byte(input)
		if chunk <= 0 {
			chunk = len(rest)
		}
		for len(rest) > 0 {
			n := chunk
			if n > len(rest) {
				n = len(rest)
			}
			rs, err := p.Feed(ctx, rest[:n])
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rs...)
			rest = rest[n:]
		}
		rs, err := p.Close(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return append(out, rs...)
	}
	want := marshal(t, run(0))
	for _, chunk := range []int{1, 7, 113} {
		if got := marshal(t, run(chunk)); got != want {
			t.Fatalf("chunk=%d changed the emitted results", chunk)
		}
	}
}

func TestPipelineInBandErrors(t *testing.T) {
	ctx := context.Background()
	input := "1.0,100,,cycles,1,100.00,,\n1.0,50,,instructions,1,100.00,,\n" +
		"1.0,10,,alpha,1,25.00,,\n2.0,100,,cycles,1,100.00,,\n"

	// No model loaded: the stream keeps flowing, the result says why.
	p := NewPipeline(Config{})
	rs, err := p.Feed(ctx, []byte(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Error != "no model loaded" || rs[0].Estimation != nil {
		t.Fatalf("no-model result: %+v", rs)
	}

	// A model that shares no metric with the stream.
	var d core.Dataset
	for i := 1.0; i <= 8; i *= 2 {
		d.Add(core.Sample{Metric: "other", T: 1, W: i, M: 1})
	}
	ens, err := core.Train(d, core.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p = NewPipeline(Config{Model: StaticModel(ens, "m")})
	rs, err = p.Feed(ctx, []byte(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Error != "no sample matches a modeled metric" {
		t.Fatalf("no-overlap result: %+v", rs)
	}
}

func TestPipelineStrictAbort(t *testing.T) {
	p := NewPipeline(Config{Ingest: ingest.Options{Mode: ingest.Strict}})
	if _, err := p.Feed(context.Background(), []byte("garbage\n")); err == nil {
		t.Fatal("strict pipeline swallowed a garbled line")
	}
	if _, err := p.Close(context.Background()); err == nil {
		t.Fatal("strict abort must stick through Close")
	}
}

func TestPipelineTopAndInstruments(t *testing.T) {
	reg := metrics.NewRegistry()
	ens := testEnsemble(t)
	p := NewPipeline(Config{WindowIntervals: 2, Top: 1, Model: StaticModel(ens, "m"), Metrics: reg})
	input := csvStream(rand.New(rand.NewSource(11)), 6)
	rs, err := p.Feed(context.Background(), []byte(input))
	if err != nil {
		t.Fatal(err)
	}
	tail, err := p.Close(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rs = append(rs, tail...)
	for _, r := range rs {
		if r.Estimation != nil && len(r.Estimation.PerMetric) > 1 {
			t.Fatalf("Top=1 not applied: %+v", r)
		}
	}
	if got := p.inst.windows.Value(); got != float64(len(rs)) {
		t.Fatalf("windows counter %g, want %d", got, len(rs))
	}
	if p.inst.latency.Count() == 0 {
		t.Fatal("latency histogram never observed")
	}
}

// feedCSV pushes a whole CSV string into a hub.
func feedCSV(t *testing.T, h *Hub, input string) {
	t.Helper()
	if err := h.Feed([]byte(input)); err != nil {
		t.Fatal(err)
	}
}

func TestHubBroadcastOrder(t *testing.T) {
	ens := testEnsemble(t)
	h := NewHub(Config{WindowIntervals: 3, SubBuffer: 64, Model: StaticModel(ens, "m")})
	defer h.Close()
	sub := h.Subscribe()
	feedCSV(t, h, csvStream(rand.New(rand.NewSource(21)), 13))
	// 12 completed intervals (the 13th is still open).
	var got []Result
	for len(got) < 12 {
		select {
		case r := <-sub.C():
			got = append(got, r)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d results", len(got))
		}
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("result %d has seq %d", i, r.Seq)
		}
		if r.Error != "" {
			t.Fatalf("unexpected in-band error: %+v", r)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("drops on an idle stream: %d", sub.Dropped())
	}
}

// intervalCSV renders one interval's rows: fixed counters plus alpha.
func intervalCSV(i int) string {
	ts := float64(i)
	return fmt.Sprintf("%.1f,100,,cycles,1,100.00,,\n%.1f,50,,instructions,1,100.00,,\n%.1f,%d,,alpha,1,25.00,,\n",
		ts, ts, ts, 10+i)
}

func TestHubQueueDropOldest(t *testing.T) {
	ens := testEnsemble(t)
	entered := make(chan struct{}, 32)
	gate := make(chan struct{})
	h := NewHub(Config{
		WindowIntervals: 4,
		MaxPending:      2,
		SubBuffer:       64,
		Model: func() (*core.Ensemble, string) {
			entered <- struct{}{}
			<-gate
			return ens, "gated"
		},
	})
	defer h.Close()
	sub := h.Subscribe()

	// Complete interval 1 and wait for the run loop to stall on it
	// inside the model provider.
	feedCSV(t, h, intervalCSV(1)+intervalCSV(2))
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("run loop never started estimating")
	}
	// Ten more completed intervals against a stalled loop: the queue
	// holds two, the other eight are shed oldest-first.
	for i := 3; i <= 12; i++ {
		feedCSV(t, h, intervalCSV(i))
	}
	if got := h.inst.winDropped.Value(); got != 8 {
		t.Fatalf("dropped %g intervals, want 8", got)
	}
	if h.inst.smpDropped.Value() != 8 {
		t.Fatalf("sample-drop counter %g, want 8", h.inst.smpDropped.Value())
	}
	close(gate)
	var got []Result
	for len(got) < 3 {
		select {
		case r := <-sub.C():
			got = append(got, r)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d results", len(got))
		}
	}
	// Window seq stays monotone and contiguous even though input was
	// shed: drops happen before windowing, never inside it.
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("result %d has seq %d", i, r.Seq)
		}
	}
}

func TestHubSubscriberDropOldest(t *testing.T) {
	ens := testEnsemble(t)
	h := NewHub(Config{WindowIntervals: 3, SubBuffer: 2, Model: StaticModel(ens, "m")})
	defer h.Close()
	sub := h.Subscribe() // never read until the end
	feedCSV(t, h, csvStream(rand.New(rand.NewSource(41)), 8))
	deadline := time.Now().Add(5 * time.Second)
	for sub.Dropped() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber dropped %d results, want 5", sub.Dropped())
		}
		time.Sleep(time.Millisecond)
	}
	// The two newest results survive: the gap in seq reveals the loss.
	first := <-sub.C()
	second := <-sub.C()
	if first.Seq != 6 || second.Seq != 7 {
		t.Fatalf("surviving seqs %d, %d; want 6, 7", first.Seq, second.Seq)
	}
	if h.inst.subDropped.Value() != 5 {
		t.Fatalf("subscriber-drop counter %g, want 5", h.inst.subDropped.Value())
	}
}

func TestHubCloseLifecycle(t *testing.T) {
	h := NewHub(Config{})
	sub := h.Subscribe()
	done := make(chan struct{})
	go func() {
		for range sub.C() {
		}
		close(done)
	}()
	h.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber not released by Close")
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("Done not closed")
	}
	if err := h.Feed([]byte("x")); err != ErrClosed {
		t.Fatalf("Feed after close: %v", err)
	}
	if late := h.Subscribe(); late.C() == nil {
		t.Fatal("late subscription must still return a (closed) channel")
	} else if _, ok := <-late.C(); ok {
		t.Fatal("late subscription channel must be closed")
	}
	h.Close() // idempotent
}

func TestHubSubscriptionClose(t *testing.T) {
	ens := testEnsemble(t)
	h := NewHub(Config{Model: StaticModel(ens, "m")})
	defer h.Close()
	sub := h.Subscribe()
	sub.Close()
	sub.Close() // idempotent
	if _, ok := <-sub.C(); ok {
		t.Fatal("closed subscription still delivering")
	}
	// A detached subscriber must not break broadcasting to others.
	live := h.Subscribe()
	feedCSV(t, h, csvStream(rand.New(rand.NewSource(51)), 3))
	select {
	case r := <-live.C():
		if r.Seq != 1 {
			t.Fatalf("live subscriber got seq %d", r.Seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live subscriber starved after another closed")
	}
}

func TestHubStatsAndDiags(t *testing.T) {
	h := NewHub(Config{})
	defer h.Close()
	if err := h.Feed([]byte("garbage line\n1.0,100,,cycles,1,100.00,,\n")); err != nil {
		t.Fatal(err)
	}
	if h.Stats().Lines != 2 {
		t.Fatalf("stats lines %d, want 2", h.Stats().Lines)
	}
	if ds := h.Diags(); len(ds) != 1 || ds[0].Class != ingest.DiagGarbled {
		t.Fatalf("diags %+v", ds)
	}
	if ds := h.Diags(); len(ds) != 0 {
		t.Fatalf("diags not drained: %+v", ds)
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.setDefaults()
	if cfg.WindowIntervals != DefaultWindowIntervals ||
		cfg.MaxPending != DefaultMaxPending || cfg.SubBuffer != DefaultSubBuffer {
		t.Fatalf("defaults: %+v", cfg)
	}
	if ens, id := cfg.Model(); ens != nil || id != "" {
		t.Fatal("default model provider must report no model")
	}
}

// TestHubStatsRace: the feed response path marshals Hub.Stats() to JSON
// after feedMu is released, so the snapshot's ByClass map must be
// independent of the parser's live map. Garbled lines mutate ByClass on
// every Feed; under -race this catches any live-map leak as a concurrent
// map read/write.
func TestHubStatsRace(t *testing.T) {
	h := NewHub(Config{})
	defer h.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := h.Feed([]byte("garbage line\n")); err != nil {
					t.Errorf("feed: %v", err)
					return
				}
				st := h.Stats()
				if _, err := json.Marshal(st); err != nil {
					t.Errorf("marshal: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Stats().ByClass[ingest.DiagGarbled.String()]; got != 800 {
		t.Fatalf("garbled count = %d, want 800", got)
	}
}
