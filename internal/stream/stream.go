// Package stream turns SPIRE's batch estimation pipeline into an online
// one: it tails `perf stat -I`-style CSV from any reader, maintains a
// sliding window of recent intervals per metric via core.IncrementalIndex,
// and emits one bottleneck estimation per completed interval (paper §III
// treats counter collection as a continuous feed; Eq. 1's time-weighted
// mean is evaluated over only the in-window samples).
//
// Two consumption styles are provided. Pipeline is synchronous: the
// caller's reads are the flow control, nothing is ever dropped, and the
// emitted results are byte-stable — this backs `spire watch`. Hub is
// asynchronous: feeders enqueue intervals into a bounded queue and any
// number of subscribers receive results over bounded channels, with
// explicit drop-oldest backpressure on both sides — this backs the
// /v1/stream SSE endpoint. Memory is bounded everywhere: the sliding
// index evicts expired windows, queues are fixed-capacity, and drops are
// counted, never buffered.
package stream

import (
	"context"
	"errors"
	"time"

	"spire/internal/analysis"
	"spire/internal/core"
	"spire/internal/engine"
	"spire/internal/ingest"
	"spire/internal/metrics"
)

// Defaults for Config fields left zero.
const (
	DefaultWindowIntervals = 8
	DefaultMaxPending      = 64
	DefaultSubBuffer       = 16
)

// ModelProvider supplies the current ensemble and an identifier for it.
// It is called once per window, so an atomically hot-swapped model (e.g.
// the serve registry) takes effect on the next window after a swap. A nil
// ensemble means no model is loaded yet.
type ModelProvider func() (*core.Ensemble, string)

// StaticModel wraps one fixed ensemble as a ModelProvider.
func StaticModel(e *core.Ensemble, id string) ModelProvider {
	return func() (*core.Ensemble, string) { return e, id }
}

// Config parameterizes a Pipeline or Hub.
type Config struct {
	// WindowIntervals is the sliding-window span in intervals (default
	// DefaultWindowIntervals).
	WindowIntervals int
	// Top truncates each result's ranking to the N tightest bounds
	// (0 = keep all).
	Top int
	// Workers bounds per-window estimation concurrency (see
	// core.EstimateOptions.Workers).
	Workers int
	// MaxPending bounds the Hub's interval queue (default
	// DefaultMaxPending). Ignored by Pipeline.
	MaxPending int
	// SubBuffer bounds each Hub subscriber's channel (default
	// DefaultSubBuffer). Ignored by Pipeline.
	SubBuffer int
	// Ingest configures the tolerant CSV parser.
	Ingest ingest.Options
	// Model supplies the ensemble per window. Required.
	Model ModelProvider
	// Metrics receives stream instrumentation; nil means a private
	// throwaway registry.
	Metrics *metrics.Registry
	// Engine runs each window's estimation (shared worker pool,
	// instrumentation). Nil selects the process-wide engine.Default().
	Engine *engine.Engine
}

func (cfg *Config) setDefaults() {
	if cfg.WindowIntervals <= 0 {
		cfg.WindowIntervals = DefaultWindowIntervals
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.SubBuffer <= 0 {
		cfg.SubBuffer = DefaultSubBuffer
	}
	if cfg.Model == nil {
		cfg.Model = func() (*core.Ensemble, string) { return nil, "" }
	}
	if cfg.Engine == nil {
		cfg.Engine = engine.Default()
	}
}

// Result is one window's estimation, emitted once per completed interval.
// Seq increases by exactly 1 per window within a stream; subscribers that
// observe a gap lost the intervening windows to backpressure.
type Result struct {
	Seq       uint64  `json:"seq"`
	Model     string  `json:"model,omitempty"`
	StartTS   float64 `json:"startTs"`
	EndTS     float64 `json:"endTs"`
	Intervals int     `json:"intervals"`
	Samples   int     `json:"samples"`
	// Estimation is the windowed ranking (PerMetric ascending by bound —
	// the head is the inferred bottleneck). Nil when Error is set.
	Estimation *core.Estimation `json:"estimation,omitempty"`
	Error      string           `json:"error,omitempty"`
}

// Truncate returns a copy of r whose ranking keeps only the top-n
// tightest bounds (n <= 0 keeps all). The estimation is copied shallowly
// so the original remains intact for other consumers.
func (r Result) Truncate(n int) Result {
	if n <= 0 || r.Estimation == nil || len(r.Estimation.PerMetric) <= n {
		return r
	}
	est := *r.Estimation
	est.PerMetric = est.PerMetric[:n:n]
	r.Estimation = &est
	return r
}

// Estimator evaluates windows against the provider's current model,
// running each window's Eq. 1 evaluation on the shared estimation engine.
type Estimator struct {
	model   ModelProvider
	eng     *engine.Engine
	top     int
	workers int
	inst    *Instruments
}

// NewEstimator builds an estimator from cfg (which must have defaults
// applied) and the stream instruments.
func NewEstimator(cfg Config, inst *Instruments) *Estimator {
	cfg.setDefaults()
	return &Estimator{model: cfg.Model, eng: cfg.Engine, top: cfg.Top, workers: cfg.Workers, inst: inst}
}

// Estimate produces the Result for one window. Estimation failures are
// reported in-band (Result.Error) so a stream survives model gaps and
// windows with no modeled samples; only ctx cancellation is terminal for
// the caller's loop and still yields a filled-in Result.
func (e *Estimator) Estimate(ctx context.Context, win Window) Result {
	res := Result{
		Seq:       win.Seq,
		StartTS:   win.StartTS,
		EndTS:     win.EndTS,
		Intervals: win.Intervals,
		Samples:   win.Samples,
	}
	ens, id := e.model()
	if ens == nil {
		res.Error = "no model loaded"
		e.inst.window()
		return res
	}
	res.Model = id
	start := time.Now()
	est, err := e.eng.EstimateIndexed(ctx, ens, win.Index, core.EstimateOptions{Workers: e.workers})
	e.inst.estimated(time.Since(start))
	switch {
	case errors.Is(err, core.ErrNoSamples):
		res.Error = "no sample matches a modeled metric"
	case err != nil:
		res.Error = err.Error()
	default:
		if e.top > 0 && len(est.PerMetric) > e.top {
			est.PerMetric = est.PerMetric[:e.top:e.top]
		}
		// Combined on/off-CPU report for windows whose intervals carried
		// scheduler events; mirrors the /v1/estimate contract (combined
		// rides on a successful estimation, zero-sched windows are
		// untouched).
		if len(win.Sched) > 0 {
			if combined, cerr := analysis.Combine(est, win.Sched); cerr == nil {
				est.Combined = combined
			}
		}
		res.Estimation = est
	}
	e.inst.window()
	return res
}
