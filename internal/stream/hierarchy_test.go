package stream

// Stream-tier hierarchy differentials: a window estimated against a
// hierarchical model carries the same verdict the batch path computes
// over the in-window samples, Truncate never perturbs it, and a
// single-level hierarchy streams results byte-identical to the flat
// model on every window.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"spire/internal/core"
	"spire/internal/ingest"
)

// hierStreamModel builds the four-level bandwidth-roofline ensemble;
// levels trims the hierarchy (0 = flat).
func hierStreamModel(t testing.TB, levels int) *core.Ensemble {
	t.Helper()
	betas := map[string]float64{"L1": 64, "L2": 16, "L3": 8, "DRAM": 2}
	ens := &core.Ensemble{
		Rooflines: map[string]*core.Roofline{},
		WorkUnit:  "instructions",
		TimeUnit:  "cycles",
	}
	all := core.DefaultHierarchyLevels()
	for _, lv := range all {
		r, err := core.BandwidthRoofline(lv.Metric, 4, betas[lv.Level], 64)
		if err != nil {
			t.Fatal(err)
		}
		ens.Rooflines[lv.Metric] = r
	}
	if levels > 0 {
		ens.Hierarchy = &core.HierarchyModel{Levels: all[:levels]}
	}
	return ens
}

// hierIntervalSamples emits one interval of hierarchy-level counters
// with randomized magnitudes (occasionally dropping a level entirely).
func hierIntervalSamples(rng *rand.Rand, window int) []core.Sample {
	const cycles, insts = 1e6, 2e6
	out := make([]core.Sample, 0, 4)
	for _, lv := range core.DefaultHierarchyLevels() {
		if rng.Intn(5) == 0 {
			continue
		}
		out = append(out, core.Sample{
			Metric: lv.Metric,
			T:      cycles,
			W:      insts,
			M:      float64(rng.Intn(500_000)),
			Window: window,
		})
	}
	return out
}

// TestStreamHierarchyMatchesBatch slides randomized windows over a
// hierarchical model and requires every emitted estimation — binding
// verdict included — to equal the batch one byte for byte.
func TestStreamHierarchyMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	ctx := context.Background()
	ens := hierStreamModel(t, 4)
	hierarchical := 0
	for si := 0; si < 8; si++ {
		span := 1 + rng.Intn(6)
		est := NewEstimator(Config{
			WindowIntervals: span,
			Workers:         1 + rng.Intn(4),
			Model:           StaticModel(ens, fmt.Sprintf("hier-%d", si)),
		}, NewInstruments(nil))
		w := NewWindower(span)
		var history []ingest.Interval
		for i := 1; i <= 25; i++ {
			iv := ingest.Interval{TS: float64(i), Window: i, Samples: hierIntervalSamples(rng, i)}
			history = append(history, iv)
			got := est.Estimate(ctx, w.Push(iv))

			var d core.Dataset
			for _, p := range history {
				if p.Window > i-span {
					d.Add(p.Samples...)
				}
			}
			want, werr := ens.BatchEstimate(ctx, core.IndexWorkload(d), core.EstimateOptions{Workers: 1})
			if werr != nil {
				if got.Estimation != nil {
					t.Fatalf("stream %d window %d: batch says %v, stream emitted %+v", si, i, werr, got)
				}
				continue
			}
			if got.Estimation == nil {
				t.Fatalf("stream %d window %d: stream errored (%q) where batch succeeded", si, i, got.Error)
			}
			if gb, wb := marshal(t, got.Estimation), marshal(t, want); gb != wb {
				t.Fatalf("stream %d window %d: estimation diverges:\nstream: %s\nbatch:  %s", si, i, gb, wb)
			}
			if h := got.Estimation.Hierarchy; h != nil {
				hierarchical++
				// Truncating the ranking must not perturb the verdict.
				tr := got.Truncate(1)
				if tr.Estimation.Hierarchy != h {
					t.Fatalf("stream %d window %d: Truncate rewrote the hierarchy", si, i)
				}
			}
		}
	}
	if hierarchical < 50 {
		t.Fatalf("only %d hierarchical windows exercised, need >= 50", hierarchical)
	}
}

// TestStreamSingleLevelParity: the degenerate freeze at the stream tier.
// A single-level hierarchy model must emit results byte-identical to the
// flat model on every window of every stream.
func TestStreamSingleLevelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1606))
	ctx := context.Background()
	for si := 0; si < 10; si++ {
		flat := trainStreamEnsemble(t, rng)
		one := &core.Ensemble{
			Rooflines: flat.Rooflines,
			WorkUnit:  flat.WorkUnit,
			TimeUnit:  flat.TimeUnit,
			Hierarchy: &core.HierarchyModel{Levels: []core.HierarchyLevel{{
				Level:  "L2",
				Metric: diffNames[rng.Intn(len(diffNames))],
			}}},
		}
		span := 1 + rng.Intn(6)
		cfg := Config{WindowIntervals: span, Workers: 1 + rng.Intn(4)}
		fCfg, oCfg := cfg, cfg
		fCfg.Model = StaticModel(flat, "m")
		oCfg.Model = StaticModel(one, "m")
		fEst := NewEstimator(fCfg, NewInstruments(nil))
		oEst := NewEstimator(oCfg, NewInstruments(nil))
		fw, ow := NewWindower(span), NewWindower(span)
		for i := 1; i <= 30; i++ {
			iv := ingest.Interval{TS: float64(i), Window: i, Samples: randIntervalSamples(rng, i)}
			fGot := fEst.Estimate(ctx, fw.Push(iv))
			oGot := oEst.Estimate(ctx, ow.Push(iv))
			if oGot.Estimation != nil && oGot.Estimation.Hierarchy != nil {
				t.Fatalf("stream %d window %d: single-level hierarchy leaked into the stream", si, i)
			}
			if fb, ob := marshal(t, fGot), marshal(t, oGot); fb != ob {
				t.Fatalf("stream %d window %d: single-level result diverged:\nflat: %s\none:  %s", si, i, ob, fb)
			}
		}
	}
}
