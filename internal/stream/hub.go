package stream

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"spire/internal/ingest"
)

// ErrClosed is returned by Hub.Feed after Close.
var ErrClosed = errors.New("stream: hub closed")

// Hub is the asynchronous streaming path: any number of feeders push CSV
// bytes in, one estimation loop turns completed intervals into window
// results, and any number of subscribers receive those results. Both
// hand-offs are bounded with drop-oldest backpressure — a slow estimator
// sheds the oldest pending intervals, a slow subscriber sheds its oldest
// undelivered results — and every drop is counted. Subscribers detect
// their own losses as gaps in Result.Seq; the sequence itself stays
// monotone because a single goroutine owns the windower.
type Hub struct {
	cfg  Config
	inst *Instruments

	feedMu sync.Mutex // parser is not concurrent-safe; serializes feeders
	in     *ingest.Incremental
	// binIntervals/binSamples account intervals fed pre-parsed through
	// FeedInterval (the binary wire path), which bypass the CSV parser's
	// own counters. Guarded by feedMu.
	binIntervals int
	binSamples   int

	queue chan ingest.Interval

	subMu  sync.Mutex
	subs   map[*Subscription]struct{}
	sealed bool // no new subscribers; set during Close

	closed atomic.Bool
	cancel context.CancelFunc
	done   chan struct{}
}

// NewHub starts a hub's estimation loop.
func NewHub(cfg Config) *Hub {
	cfg.setDefaults()
	inst := NewInstruments(cfg.Metrics)
	ctx, cancel := context.WithCancel(context.Background())
	h := &Hub{
		cfg:    cfg,
		inst:   inst,
		in:     ingest.NewIncremental(cfg.Ingest),
		queue:  make(chan ingest.Interval, cfg.MaxPending),
		subs:   make(map[*Subscription]struct{}),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go h.run(ctx)
	return h
}

// Feed parses one chunk of CSV bytes and enqueues any completed
// intervals for estimation, shedding the oldest pending intervals when
// the queue is full. Safe for concurrent feeders. The returned error is
// ErrClosed after Close, or the parser's sticky strict-mode abort.
func (h *Hub) Feed(chunk []byte) error {
	h.feedMu.Lock()
	defer h.feedMu.Unlock()
	if h.closed.Load() {
		return ErrClosed
	}
	ivs, err := h.in.Feed(chunk)
	for _, iv := range ivs {
		h.enqueue(iv)
	}
	return err
}

// FeedInterval enqueues one pre-parsed interval — the binary wire feed
// path, where frames arrive already decoded and skip the CSV parser
// (invalid samples are still dropped at indexing time by the windower).
// Window tags must be nondecreasing across a feeder's intervals, the
// same contract the parser's numbering satisfies by construction. Safe
// for concurrent feeders; returns ErrClosed after Close.
func (h *Hub) FeedInterval(iv ingest.Interval) error {
	h.feedMu.Lock()
	defer h.feedMu.Unlock()
	if h.closed.Load() {
		return ErrClosed
	}
	h.binIntervals++
	h.binSamples += len(iv.Samples)
	h.enqueue(iv)
	return nil
}

// enqueue inserts one interval, dropping the oldest pending interval
// while the queue is full. Called with feedMu held, so there is exactly
// one producer and the retry loop terminates as soon as a slot opens.
func (h *Hub) enqueue(iv ingest.Interval) {
	for {
		select {
		case h.queue <- iv:
			return
		default:
		}
		select {
		case old := <-h.queue:
			h.inst.droppedInterval(len(old.Samples))
		default:
		}
	}
}

// Diags drains the parser diagnostics retained since the last drain.
func (h *Hub) Diags() []ingest.Diag {
	h.feedMu.Lock()
	defer h.feedMu.Unlock()
	return h.in.TakeDiags()
}

// Stats reports ingestion accounting so far: the CSV parser's counters
// plus the pre-parsed intervals fed through FeedInterval.
func (h *Hub) Stats() ingest.Stats {
	h.feedMu.Lock()
	defer h.feedMu.Unlock()
	st := h.in.Stats()
	st.Intervals += h.binIntervals
	st.Samples += h.binSamples
	return st
}

// run is the single owner of the windower: it turns queued intervals
// into windows, estimates each against the provider's current model, and
// broadcasts the results.
func (h *Hub) run(ctx context.Context) {
	defer close(h.done)
	win := NewWindower(h.cfg.WindowIntervals)
	est := NewEstimator(h.cfg, h.inst)
	for {
		select {
		case <-ctx.Done():
			return
		case iv := <-h.queue:
			h.broadcast(est.Estimate(ctx, win.Push(iv)))
		}
	}
}

func (h *Hub) broadcast(res Result) {
	h.subMu.Lock()
	defer h.subMu.Unlock()
	for sub := range h.subs {
		sub.offer(res, h.inst)
	}
}

// Done is closed once the estimation loop has exited; subscribers use it
// to unblock promptly on shutdown.
func (h *Hub) Done() <-chan struct{} { return h.done }

// Close stops the estimation loop, detaches every subscriber (their
// channels are closed), and makes further Feed calls fail. The open
// interval still being assembled is discarded: a live monitor has no
// consumer left for it. Safe to call more than once.
func (h *Hub) Close() {
	if !h.closed.CompareAndSwap(false, true) {
		return
	}
	h.cancel()
	<-h.done
	h.subMu.Lock()
	defer h.subMu.Unlock()
	h.sealed = true
	for sub := range h.subs {
		close(sub.ch)
		delete(h.subs, sub)
	}
}

// Subscription is one subscriber's bounded result feed. Receive from C;
// the channel closes when the subscription or the hub closes.
type Subscription struct {
	hub     *Hub
	ch      chan Result
	dropped atomic.Uint64
	once    sync.Once
}

// Subscribe attaches a new subscriber. After Close the returned
// subscription's channel is already closed.
func (h *Hub) Subscribe() *Subscription {
	sub := &Subscription{hub: h, ch: make(chan Result, h.cfg.SubBuffer)}
	h.subMu.Lock()
	defer h.subMu.Unlock()
	if h.sealed || h.closed.Load() {
		close(sub.ch)
		return sub
	}
	h.subs[sub] = struct{}{}
	return sub
}

// C is the result channel.
func (s *Subscription) C() <-chan Result { return s.ch }

// Dropped reports how many results this subscriber lost to backpressure.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription and closes its channel. Safe to call
// more than once and concurrently with hub shutdown.
func (s *Subscription) Close() {
	s.hub.subMu.Lock()
	defer s.hub.subMu.Unlock()
	if _, ok := s.hub.subs[s]; ok {
		delete(s.hub.subs, s)
		close(s.ch)
	}
}

// offer delivers res without ever blocking the broadcaster: when the
// buffer is full the oldest undelivered result is dropped. Called with
// subMu held (single sender); the subscriber may receive concurrently,
// which only opens slots faster.
func (s *Subscription) offer(res Result, inst *Instruments) {
	for {
		select {
		case s.ch <- res:
			return
		default:
		}
		select {
		case <-s.ch:
			s.dropped.Add(1)
			inst.droppedResult()
		default:
		}
	}
}
