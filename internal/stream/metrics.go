package stream

import (
	"time"

	"spire/internal/metrics"
)

// Instruments is the stream package's instrumentation bundle.
type Instruments struct {
	windows    *metrics.Counter
	winDropped *metrics.Counter
	smpDropped *metrics.Counter
	subDropped *metrics.Counter
	latency    *metrics.Histogram
}

// NewInstruments registers the stream metrics on reg (nil selects a
// private registry, keeping callers free of nil checks).
func NewInstruments(reg *metrics.Registry) *Instruments {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Instruments{
		windows:    reg.Counter("spire_stream_windows_total", "Windows estimated across all streams."),
		winDropped: reg.Counter("spire_stream_windows_dropped_total", "Intervals dropped from the pending queue under backpressure."),
		smpDropped: reg.Counter("spire_stream_samples_dropped_total", "Samples inside dropped intervals."),
		subDropped: reg.Counter("spire_stream_subscriber_dropped_total", "Results dropped on slow subscriber channels."),
		latency:    reg.Histogram("spire_stream_estimate_seconds", "Per-window estimation latency.", nil),
	}
}

func (i *Instruments) window()                   { i.windows.Inc() }
func (i *Instruments) estimated(d time.Duration) { i.latency.Observe(d.Seconds()) }
func (i *Instruments) droppedInterval(samples int) {
	i.winDropped.Inc()
	i.smpDropped.Add(float64(samples))
}
func (i *Instruments) droppedResult() { i.subDropped.Inc() }
