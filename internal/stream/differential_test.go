package stream

// Differential suite: every window the streaming path emits must be
// byte-identical (as JSON) to a from-scratch batch estimation —
// IndexWorkload + BatchEstimate — over exactly the in-window samples.
// Any divergence means the incremental index, the eviction logic or the
// window bookkeeping changed the arithmetic of paper Eq. 1.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"spire/internal/core"
	"spire/internal/ingest"
)

var diffNames = []string{"alpha", "beta", "gamma", "delta", "unmodeled.event"}

// trainStreamEnsemble trains a small random 4-metric model, retrying
// shapes the fitter rejects.
func trainStreamEnsemble(t testing.TB, rng *rand.Rand) *core.Ensemble {
	t.Helper()
	for {
		var d core.Dataset
		for m := 0; m < 4; m++ {
			n := 4 + rng.Intn(24)
			for i := 0; i < n; i++ {
				d.Add(core.Sample{
					Metric: diffNames[m],
					T:      float64(1 + rng.Intn(8)),
					W:      float64(rng.Intn(40)),
					M:      float64(rng.Intn(10)),
				})
			}
		}
		ens, err := core.Train(d, core.TrainOptions{})
		if err == nil {
			return ens
		}
	}
}

// randIntervalSamples builds one interval's samples: random metrics,
// occasional invalid rows (dropped identically by both paths), and
// occasional M = 0 rows (I = +Inf).
func randIntervalSamples(rng *rand.Rand, window int) []core.Sample {
	n := rng.Intn(8)
	out := make([]core.Sample, 0, n)
	for i := 0; i < n; i++ {
		s := core.Sample{
			Metric: diffNames[rng.Intn(len(diffNames))],
			T:      float64(1 + rng.Intn(6)),
			W:      float64(rng.Intn(30)),
			M:      float64(rng.Intn(6)),
			Window: window,
		}
		if rng.Intn(14) == 0 {
			s.T = -s.T
		}
		out = append(out, s)
	}
	return out
}

// marshal renders v for byte comparison.
func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDifferentialStreamingMatchesBatch slides >= 1000 randomized
// windows (40 streams x 30 intervals, random spans, worker counts and
// sample shapes) and requires the streaming estimation to equal the
// batch one byte for byte.
func TestDifferentialStreamingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8042))
	ctx := context.Background()
	windows := 0
	for si := 0; si < 40; si++ {
		ens := trainStreamEnsemble(t, rng)
		span := 1 + rng.Intn(10)
		cfg := Config{
			WindowIntervals: span,
			Workers:         1 + rng.Intn(4),
			Model:           StaticModel(ens, fmt.Sprintf("model-%d", si)),
		}
		w := NewWindower(span)
		est := NewEstimator(cfg, NewInstruments(nil))
		var history []ingest.Interval
		for i := 1; i <= 30; i++ {
			iv := ingest.Interval{TS: float64(i), Window: i, Samples: randIntervalSamples(rng, i)}
			history = append(history, iv)
			got := est.Estimate(ctx, w.Push(iv))
			windows++

			if got.Seq != uint64(i) || got.EndTS != iv.TS {
				t.Fatalf("stream %d window %d: bookkeeping off: %+v", si, i, got)
			}
			var d core.Dataset
			for _, p := range history {
				if p.Window > i-span {
					d.Add(p.Samples...)
				}
			}
			want, werr := ens.BatchEstimate(ctx, core.IndexWorkload(d), core.EstimateOptions{Workers: 1})
			if werr != nil {
				if got.Estimation != nil || got.Error != "no sample matches a modeled metric" {
					t.Fatalf("stream %d window %d: batch says %v, stream says %+v", si, i, werr, got)
				}
				continue
			}
			if got.Error != "" || got.Estimation == nil {
				t.Fatalf("stream %d window %d: stream errored (%q) where batch succeeded", si, i, got.Error)
			}
			if gb, wb := marshal(t, got.Estimation), marshal(t, want); gb != wb {
				t.Fatalf("stream %d window %d (span %d): estimation diverges:\nstream: %s\nbatch:  %s",
					si, i, span, gb, wb)
			}
		}
	}
	if windows < 1000 {
		t.Fatalf("only %d windows exercised, need >= 1000", windows)
	}
}

// csvStream renders intervals as perf-stat CSV rows over the modeled
// event names, with plausible fixed-counter magnitudes.
func csvStream(rng *rand.Rand, intervals int) string {
	var b []byte
	for i := 1; i <= intervals; i++ {
		ts := float64(i)
		b = fmt.Appendf(b, "%.9f,%d,,cycles,1000000000,100.00,,\n", ts, 3_000_000+rng.Intn(1_000_000))
		b = fmt.Appendf(b, "%.9f,%d,,instructions,1000000000,100.00,,\n", ts, 4_000_000+rng.Intn(1_000_000))
		for _, ev := range diffNames[:4] {
			if rng.Intn(4) == 0 {
				continue // events drop out of intervals now and then
			}
			b = fmt.Appendf(b, "%.9f,%d,,%s,250000000,25.00,,\n", ts, rng.Intn(100_000), ev)
		}
	}
	return string(b)
}

// TestDifferentialPipelineCSV drives the whole synchronous path — CSV
// bytes through incremental ingestion, windowing and estimation — under
// random chunking, and checks every emitted Result (bookkeeping fields
// included) against a batch reference computed from the same parse.
func TestDifferentialPipelineCSV(t *testing.T) {
	rng := rand.New(rand.NewSource(9099))
	ctx := context.Background()
	for si := 0; si < 6; si++ {
		ens := trainStreamEnsemble(t, rng)
		span := 1 + rng.Intn(6)
		input := csvStream(rng, 40)

		// Reference: parse once, slide by hand, batch-estimate.
		refIn := ingest.NewIncremental(ingest.Options{})
		ivs, err := refIn.Feed([]byte(input))
		if err != nil {
			t.Fatal(err)
		}
		tail, err := refIn.Close()
		if err != nil {
			t.Fatal(err)
		}
		ivs = append(ivs, tail...)

		p := NewPipeline(Config{
			WindowIntervals: span,
			Workers:         1 + rng.Intn(3),
			Model:           StaticModel(ens, "csv-model"),
		})
		var got []Result
		rest := []byte(input)
		for len(rest) > 0 {
			n := 1 + rng.Intn(97)
			if n > len(rest) {
				n = len(rest)
			}
			rs, err := p.Feed(ctx, rest[:n])
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, rs...)
			rest = rest[n:]
		}
		rs, err := p.Close(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)

		if len(got) != len(ivs) {
			t.Fatalf("stream %d: %d results for %d intervals", si, len(got), len(ivs))
		}
		for i, res := range got {
			iv := ivs[i]
			lo := iv.Window - span
			var d core.Dataset
			start := iv.TS
			count := 0
			for _, pv := range ivs[:i+1] {
				if pv.Window > lo {
					if count == 0 {
						start = pv.TS
					}
					count++
					d.Add(pv.Samples...)
				}
			}
			if res.Seq != uint64(i+1) || res.EndTS != iv.TS || res.StartTS != start ||
				res.Intervals != count || res.Model != "csv-model" {
				t.Fatalf("stream %d result %d: bookkeeping off: %+v", si, i, res)
			}
			want, werr := ens.BatchEstimate(ctx, core.IndexWorkload(d), core.EstimateOptions{Workers: 1})
			if werr != nil {
				if res.Error != "no sample matches a modeled metric" {
					t.Fatalf("stream %d result %d: batch says %v, stream says %+v", si, i, werr, res)
				}
				continue
			}
			if gb, wb := marshal(t, res.Estimation), marshal(t, want); gb != wb {
				t.Fatalf("stream %d result %d: estimation diverges:\nstream: %s\nbatch:  %s", si, i, gb, wb)
			}
		}
	}
}
