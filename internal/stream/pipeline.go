package stream

import (
	"context"

	"spire/internal/ingest"
)

// Pipeline is the synchronous streaming path: feed bytes in, get window
// results out, in strict order with nothing dropped — the caller's read
// loop is the flow control. Results are byte-stable: feeding the same
// bytes through any chunking yields the same results, each identical to
// a batch estimation over the same in-window samples. Not safe for
// concurrent use.
type Pipeline struct {
	in   *ingest.Incremental
	win  *Windower
	est  *Estimator
	inst *Instruments
}

// NewPipeline assembles a synchronous pipeline from cfg.
func NewPipeline(cfg Config) *Pipeline {
	cfg.setDefaults()
	inst := NewInstruments(cfg.Metrics)
	return &Pipeline{
		in:   ingest.NewIncremental(cfg.Ingest),
		win:  NewWindower(cfg.WindowIntervals),
		est:  NewEstimator(cfg, inst),
		inst: inst,
	}
}

// Feed pushes one chunk of CSV bytes (any boundary, including mid-line)
// and returns the results for every window the chunk completed. A non-nil
// error is a strict-mode abort and is sticky.
func (p *Pipeline) Feed(ctx context.Context, chunk []byte) ([]Result, error) {
	ivs, err := p.in.Feed(chunk)
	out := p.estimate(ctx, ivs)
	if err != nil {
		return out, err
	}
	return out, ctx.Err()
}

// Close flushes the trailing partial line and the final open interval,
// returning any last results.
func (p *Pipeline) Close(ctx context.Context) ([]Result, error) {
	ivs, err := p.in.Close()
	out := p.estimate(ctx, ivs)
	if err != nil {
		return out, err
	}
	return out, ctx.Err()
}

func (p *Pipeline) estimate(ctx context.Context, ivs []ingest.Interval) []Result {
	var out []Result
	for _, iv := range ivs {
		if ctx.Err() != nil {
			return out
		}
		out = append(out, p.est.Estimate(ctx, p.win.Push(iv)))
	}
	return out
}

// Stats reports ingestion accounting so far.
func (p *Pipeline) Stats() ingest.Stats { return p.in.Stats() }

// TakeDiags drains the diagnostics retained since the last drain.
func (p *Pipeline) TakeDiags() []ingest.Diag { return p.in.TakeDiags() }
