package stream

import (
	"spire/internal/core"
	"spire/internal/ingest"
)

// Window is one completed sliding window, ready for estimation. Index is
// an immutable snapshot: it stays valid while the Windower keeps sliding,
// so estimation may proceed concurrently with further pushes.
type Window struct {
	Seq       uint64
	StartTS   float64 // earliest in-window interval timestamp
	EndTS     float64 // the just-arrived interval's timestamp
	Intervals int     // intervals currently in the window (<= span)
	Samples   int     // valid samples across the window
	Index     *core.WorkloadIndex
	// Sched holds the scheduler events of all in-window intervals, in
	// arrival order. Nil when no in-window interval carried any.
	Sched []core.SchedEvent
}

// ivSpan remembers one in-window interval's identity for eviction.
type ivSpan struct {
	ts     float64
	window int
	sched  []core.SchedEvent
}

// Windower maintains the sliding window over incoming intervals: each
// push extends the incremental index with the new interval's samples,
// evicts the interval that slid out, and publishes a snapshot. Memory is
// bounded by the span regardless of stream length. Not safe for
// concurrent use; Pipeline and Hub serialize pushes.
type Windower struct {
	span  int
	idx   *core.IncrementalIndex
	spans []ivSpan
	seq   uint64
}

// NewWindower returns a windower spanning the given number of intervals
// (<= 0 selects DefaultWindowIntervals).
func NewWindower(span int) *Windower {
	if span <= 0 {
		span = DefaultWindowIntervals
	}
	return &Windower{span: span, idx: core.NewIncrementalIndex()}
}

// Span returns the configured window span in intervals.
func (w *Windower) Span() int { return w.span }

// Push slides the window forward by one interval and returns the
// resulting window. The interval's Window tags must be nondecreasing
// across pushes, which ingestion guarantees.
func (w *Windower) Push(iv ingest.Interval) Window {
	w.idx.Add(iv.Samples...)
	w.spans = append(w.spans, ivSpan{ts: iv.TS, window: iv.Window, sched: iv.Sched})
	if len(w.spans) > w.span {
		w.spans = w.spans[1:]
		w.idx.EvictBefore(w.spans[0].window)
	}
	w.seq++
	// Flatten in-window scheduler events into an immutable snapshot.
	// Zero-sched streams never take this path and keep Sched nil.
	var sched []core.SchedEvent
	for _, sp := range w.spans {
		if len(sp.sched) > 0 {
			sched = append(sched, sp.sched...)
		}
	}
	return Window{
		Seq:       w.seq,
		StartTS:   w.spans[0].ts,
		EndTS:     iv.TS,
		Intervals: len(w.spans),
		Samples:   w.idx.Len(),
		Index:     w.idx.Snapshot(),
		Sched:     sched,
	}
}
