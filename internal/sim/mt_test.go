package sim

import (
	"reflect"
	"testing"

	"spire/internal/pmu"
)

func convoyThreads(n int) []MTThread {
	var ts []MTThread
	for i := 0; i < n; i++ {
		ts = append(ts, MTThread{
			Ops: []MTOp{
				{Kind: OpLock, Obj: "hot"},
				{Kind: OpCompute, Cycles: 100},
				{Kind: OpUnlock, Obj: "hot"},
				{Kind: OpCompute, Cycles: 10},
			},
			Loop: 5,
		})
	}
	return ts
}

func TestMTRunCompletes(t *testing.T) {
	m, err := NewMT(MTConfig{Harts: 4}, convoyThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("run did not complete")
	}
	if len(res.Events) == 0 {
		t.Fatal("no scheduler events emitted")
	}
	// The hot lock serializes the 100-cycle critical sections: wall time
	// is at least 4 threads x 5 iters x 100 cycles.
	if res.Cycles < 2000 {
		t.Fatalf("wall = %d, want >= 2000 (serialized critical sections)", res.Cycles)
	}
	// Lock wait must dominate for all but the luckiest thread.
	var lockWait uint64
	for _, st := range res.PerThread {
		lockWait += st.LockWait
	}
	if lockWait == 0 {
		t.Fatal("convoy produced no lock wait")
	}
}

func TestMTDeterministic(t *testing.T) {
	run := func() MTResult {
		m, err := NewMT(MTConfig{Harts: 2, TimeSlice: 50}, convoyThreads(3))
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical runs diverged")
	}
}

func TestMTAccountingSumsToWall(t *testing.T) {
	// Per thread: OnCPU + LockWait + IOWait + RunnableWait == End - Start.
	threads := []MTThread{
		{Ops: []MTOp{{Kind: OpCompute, Cycles: 400}}, Loop: 3},
		{Ops: []MTOp{{Kind: OpCompute, Cycles: 30}, {Kind: OpIO, Obj: "disk", Cycles: 200}}, Loop: 4},
		{Ops: []MTOp{
			{Kind: OpLock, Obj: "l"}, {Kind: OpCompute, Cycles: 80},
			{Kind: OpUnlock, Obj: "l"}}, Loop: 4},
		{Ops: []MTOp{
			{Kind: OpLock, Obj: "l"}, {Kind: OpCompute, Cycles: 80},
			{Kind: OpUnlock, Obj: "l"}}, Loop: 4},
	}
	m, err := NewMT(MTConfig{Harts: 2, TimeSlice: 64}, threads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("not done")
	}
	for ti, st := range res.PerThread {
		sum := st.OnCPU + st.LockWait + st.IOWait + st.RunnableWait
		wall := st.End - st.Start
		if sum != wall {
			t.Fatalf("thread %d: OnCPU %d + lock %d + io %d + runnable %d = %d, wall = %d",
				ti, st.OnCPU, st.LockWait, st.IOWait, st.RunnableWait, sum, wall)
		}
	}
}

func TestMTIOSerialDevice(t *testing.T) {
	// Two threads hammering one serial device: total IO wait exceeds the
	// raw service time because requests queue.
	threads := []MTThread{
		{Ops: []MTOp{{Kind: OpCompute, Cycles: 10}, {Kind: OpIO, Obj: "disk", Cycles: 100}}, Loop: 3},
		{Ops: []MTOp{{Kind: OpCompute, Cycles: 10}, {Kind: OpIO, Obj: "disk", Cycles: 100}}, Loop: 3},
	}
	m, err := NewMT(MTConfig{Harts: 2}, threads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	var ioWait uint64
	for _, st := range res.PerThread {
		ioWait += st.IOWait
	}
	if ioWait <= 600 {
		t.Fatalf("ioWait = %d, want > 600 (queueing on serial device)", ioWait)
	}
}

func TestMTDeadlock(t *testing.T) {
	threads := []MTThread{
		{Ops: []MTOp{
			{Kind: OpLock, Obj: "a"}, {Kind: OpCompute, Cycles: 10},
			{Kind: OpLock, Obj: "b"}, {Kind: OpUnlock, Obj: "b"}, {Kind: OpUnlock, Obj: "a"}}},
		{Ops: []MTOp{
			{Kind: OpLock, Obj: "b"}, {Kind: OpCompute, Cycles: 10},
			{Kind: OpLock, Obj: "a"}, {Kind: OpUnlock, Obj: "a"}, {Kind: OpUnlock, Obj: "b"}}},
	}
	m, err := NewMT(MTConfig{Harts: 2}, threads)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err != ErrDeadlock {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestMTMaxCyclesCutoff(t *testing.T) {
	m, err := NewMT(MTConfig{Harts: 1}, []MTThread{
		{Ops: []MTOp{{Kind: OpCompute, Cycles: 1000}}, Loop: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done {
		t.Fatal("expected incomplete run")
	}
	if res.Cycles != 500 {
		t.Fatalf("cycles = %d, want 500", res.Cycles)
	}
}

func TestMTValidation(t *testing.T) {
	if _, err := NewMT(MTConfig{Harts: 0}, convoyThreads(1)); err == nil {
		t.Fatal("harts=0 accepted")
	}
	if _, err := NewMT(MTConfig{Harts: 1}, nil); err == nil {
		t.Fatal("no threads accepted")
	}
	if _, err := NewMT(MTConfig{Harts: 1}, []MTThread{{Ops: []MTOp{{Kind: OpCompute}}}}); err == nil {
		t.Fatal("zero-cycle compute accepted")
	}
	if _, err := NewMT(MTConfig{Harts: 1}, []MTThread{{Ops: []MTOp{{Kind: OpLock}}}}); err == nil {
		t.Fatal("lock without object accepted")
	}
	// Unlocking a lock you don't hold is a runtime error.
	m, err := NewMT(MTConfig{Harts: 1}, []MTThread{{Ops: []MTOp{{Kind: OpUnlock, Obj: "x"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err == nil {
		t.Fatal("foreign unlock accepted")
	}
}

func TestMTEventsOrdered(t *testing.T) {
	m, err := NewMT(MTConfig{Harts: 2, TimeSlice: 32}, convoyThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i, ev := range res.Events {
		if ev.Cycle < prev {
			t.Fatalf("event %d at cycle %d before previous %d", i, ev.Cycle, prev)
		}
		prev = ev.Cycle
		if ev.Class >= pmu.NumSchedClasses {
			t.Fatalf("event %d has unknown class %d", i, ev.Class)
		}
	}
}
