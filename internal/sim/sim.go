// Package sim is a cycle-approximate model of an out-of-order CPU core.
// It executes isa.Program instruction streams against the mem hierarchy
// and emits a detailed hardware-event stream into a pmu.PMU.
//
// The model substitutes for the paper's physical Xeon Gold 6126: SPIRE
// consumes only performance counter values, so the simulator's job is to
// reproduce the *relationships* between microarchitectural behaviour and
// counters — front-end supply (DSB vs legacy decode vs microcode
// sequencer), branch misprediction recovery, back-end resource and port
// contention, the divider, SIMD width transitions, and the cache/DRAM
// hierarchy — not absolute Xeon performance.
package sim

import (
	"errors"
	"fmt"
	"math"

	"spire/internal/isa"
	"spire/internal/mem"
	"spire/internal/pmu"
	"spire/internal/uarch"
)

// fePath identifies which front-end pipe delivered a uop.
type fePath uint8

const (
	pathNone fePath = iota
	pathDSB
	pathMITE
	pathMS
)

// uop is a micro-op in flight. ROB slots are reused ring-buffer style.
type uop struct {
	op         isa.Op
	dst        isa.Reg
	src1, src2 isa.Reg
	addr       uint64
	vw         uint16
	size       uint8

	lastOfInst bool
	chainPrev  bool // microcode expansion: depends on the previous uop
	isBranch   bool
	brMisp     bool
	locked     bool
	srcPath    fePath
	feBubbles  uint8

	seq              uint64
	src1Seq, src2Seq uint64
	dispatched       bool
	doneAt           uint64
	hitLevel         mem.Level
}

// Sim is one simulated core running one program.
type Sim struct {
	cfg  *uarch.Config
	hier *mem.Hierarchy
	ctr  *pmu.PMU
	pred *predictor
	prog isa.Program

	cycle uint64

	// Front end.
	dsb             *mem.Cache
	itlb            *mem.Cache
	dtlb            *mem.Cache
	hold            isa.Inst
	holdValid       bool
	progDone        bool
	pending         []uop // decoded uops awaiting IDQ space
	pendingHead     int
	idq             []uop
	idqHead         int
	lastFetchLine   uint64
	curWindow       uint64
	curWindowInDSB  bool
	fetchStallUntil uint64
	icacheStall     bool // current fetch stall is an L1I miss (vs a switch penalty)
	recoveryUntil   uint64
	feBlockedBranch bool
	mispBranchSeq   uint64
	prevPath        fePath
	msFromDSB       bool
	feBubbleRun     uint64
	pendingBubbles  uint8
	instCount       uint64

	// Back end.
	rob               []uop
	headSeq           uint64 // seq of oldest un-retired uop
	tailSeq           uint64 // next seq to allocate
	waiting           []uint64
	regProd           [isa.NumRegs]uint64
	portBusy          []uint64
	portUsed          []bool
	issueBlockedUntil uint64
	lastVecWidth      uint16
	memLockUntil      uint64
	divBusyUntil      uint64

	// Outstanding-memory tracking (completion cycles).
	loadsOut      []uint64
	l1MissOut     []uint64
	l2MissOut     []uint64
	l3MissOut     []uint64
	sbOut         []uint64
	mshrOut       []uint64
	lastDRAMQueue uint64

	// perturbIdx rotates the sampling agent's cache footprint.
	perturbIdx int
}

// New builds a simulator for prog with the given configuration and resets
// the program with seed.
func New(cfg *uarch.Config, prog isa.Program, seed int64) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prog == nil {
		return nil, errors.New("sim: nil program")
	}
	prog.Reset(seed)
	s := &Sim{
		cfg:      cfg,
		hier:     mem.NewHierarchy(cfg.Mem),
		ctr:      pmu.New(),
		pred:     newPredictor(cfg),
		prog:     prog,
		rob:      make([]uop, cfg.ROBSize),
		portBusy: make([]uint64, cfg.NumPorts),
		portUsed: make([]bool, cfg.NumPorts),
		dsb: mem.NewCache(mem.CacheConfig{
			Name:          "DSB",
			SizeBytes:     cfg.DSBWindows * cfg.DSBWindowBytes,
			LineBytes:     cfg.DSBWindowBytes,
			Ways:          cfg.DSBWays,
			LatencyCycles: 1,
			// Random replacement keeps a partial hit rate for loops a
			// bit larger than the DSB instead of LRU's cyclic-thrash
			// cliff, matching observed decoded-uop cache behaviour.
			Replacement: mem.ReplRandom,
		}),
		itlb: mem.NewCache(mem.CacheConfig{
			Name:          "ITLB",
			SizeBytes:     cfg.ITLBEntries * cfg.PageBytes,
			LineBytes:     cfg.PageBytes,
			Ways:          cfg.ITLBEntries,
			LatencyCycles: 1,
		}),
		dtlb: mem.NewCache(mem.CacheConfig{
			Name:          "DTLB",
			SizeBytes:     cfg.DTLBEntries * cfg.PageBytes,
			LineBytes:     cfg.PageBytes,
			Ways:          cfg.DTLBEntries,
			LatencyCycles: 1,
		}),
		headSeq:       1,
		tailSeq:       1,
		lastFetchLine: math.MaxUint64,
		curWindow:     math.MaxUint64,
	}
	return s, nil
}

// PMU exposes the counter block for samplers.
func (s *Sim) PMU() *pmu.PMU { return s.ctr }

// Hierarchy exposes the memory system (for stats and tests).
func (s *Sim) Hierarchy() *mem.Hierarchy { return s.hier }

// Cycle returns the current cycle number.
func (s *Sim) Cycle() uint64 { return s.cycle }

// Instructions returns the number of retired instructions.
func (s *Sim) Instructions() uint64 { return s.instCount }

// Done reports whether the program has fully drained.
func (s *Sim) Done() bool {
	return s.progDone && !s.holdValid && s.pendingLen() == 0 &&
		s.idqLen() == 0 && s.headSeq == s.tailSeq
}

func (s *Sim) pendingLen() int { return len(s.pending) - s.pendingHead }
func (s *Sim) idqLen() int     { return len(s.idq) - s.idqHead }

// Step advances the simulation by at most maxCycles, stopping early when
// the program drains. It returns the number of cycles actually simulated.
func (s *Sim) Step(maxCycles uint64) uint64 {
	var ran uint64
	for ran < maxCycles && !s.Done() {
		s.tick()
		ran++
	}
	return ran
}

// Result summarizes a completed run.
type Result struct {
	Cycles       uint64
	Instructions uint64
	IPC          float64
	Counts       pmu.Counts
	// Drained is false when the run hit the cycle limit before the
	// program finished.
	Drained bool
}

// Run executes the program to completion or until maxCycles, whichever
// comes first.
func (s *Sim) Run(maxCycles uint64) Result {
	for s.cycle < maxCycles && !s.Done() {
		s.tick()
	}
	ipc := 0.0
	if s.cycle > 0 {
		ipc = float64(s.instCount) / float64(s.cycle)
	}
	return Result{
		Cycles:       s.cycle,
		Instructions: s.instCount,
		IPC:          ipc,
		Counts:       s.ctr.Snapshot(),
		Drained:      s.Done(),
	}
}

// tick advances one cycle: retire -> dispatch/execute -> issue ->
// front end -> per-cycle activity counters.
func (s *Sim) tick() {
	s.retire()
	executed, portsUsed := s.dispatch()
	s.issue()
	s.frontEnd()
	s.activity(executed, portsUsed)
	s.cycle++
}

// --- retire ---------------------------------------------------------------

func (s *Sim) retire() int {
	retired := 0
	for retired < s.cfg.RetireWidth && s.headSeq < s.tailSeq {
		u := &s.rob[s.headSeq%uint64(len(s.rob))]
		if !u.dispatched || u.doneAt > s.cycle {
			break
		}
		s.ctr.Inc(pmu.EvUopsRetiredSlots)
		if u.lastOfInst {
			s.ctr.Inc(pmu.EvInstRetired)
			s.instCount++
			if u.srcPath == pathMITE {
				s.ctr.Inc(pmu.EvDSBMissRetired)
			}
			if u.feBubbles >= 2 {
				s.ctr.Inc(pmu.EvFEBubbles1)
			}
			if u.feBubbles >= 4 {
				s.ctr.Inc(pmu.EvFEBubbles2)
			}
			if u.feBubbles >= 6 {
				s.ctr.Inc(pmu.EvFEBubbles3)
			}
		}
		if u.isBranch {
			s.ctr.Inc(pmu.EvBrInstRetired)
			if u.brMisp {
				s.ctr.Inc(pmu.EvBrMispRetired)
			}
		}
		switch u.op {
		case isa.OpLoad, isa.OpLoadLocked:
			if u.locked {
				s.ctr.Inc(pmu.EvLockLoads)
			}
			switch u.hitLevel {
			case mem.LevelL1:
				s.ctr.Inc(pmu.EvLoadL1Hit)
			case mem.LevelL2:
				s.ctr.Inc(pmu.EvLoadL1Miss)
				s.ctr.Inc(pmu.EvLoadL2Hit)
			case mem.LevelL3:
				s.ctr.Inc(pmu.EvLoadL1Miss)
				s.ctr.Inc(pmu.EvLoadL2Miss)
				s.ctr.Inc(pmu.EvLoadL3Hit)
			case mem.LevelDRAM:
				s.ctr.Inc(pmu.EvLoadL1Miss)
				s.ctr.Inc(pmu.EvLoadL2Miss)
				s.ctr.Inc(pmu.EvLoadL3Miss)
			}
		}
		s.headSeq++
		retired++
	}
	if retired == 0 {
		s.ctr.Inc(pmu.EvUopsRetiredStallCycles)
	}
	return retired
}

// --- dispatch / execute ----------------------------------------------------

func (s *Sim) seqReady(seq uint64) bool {
	if seq == 0 || seq < s.headSeq {
		return true
	}
	u := &s.rob[seq%uint64(len(s.rob))]
	return u.dispatched && u.doneAt <= s.cycle
}

func (s *Sim) dispatch() (executed, portsUsed int) {
	for p := range s.portUsed {
		s.portUsed[p] = false
	}
	kept := s.waiting[:0]
	for _, seq := range s.waiting {
		u := &s.rob[seq%uint64(len(s.rob))]
		if !s.tryDispatch(u) {
			kept = append(kept, seq)
		} else {
			executed++
		}
	}
	s.waiting = kept
	for _, used := range s.portUsed {
		if used {
			portsUsed++
		}
	}
	s.ctr.Add(pmu.EvUopsExecutedThread, uint64(executed))
	return executed, portsUsed
}

func (s *Sim) tryDispatch(u *uop) bool {
	if !s.seqReady(u.src1Seq) || !s.seqReady(u.src2Seq) {
		return false
	}
	isMem := u.op.IsMemory()
	if isMem && s.cycle < s.memLockUntil {
		return false
	}
	if u.op == isa.OpLoad || u.op == isa.OpLoadLocked {
		// A load that misses L1D needs an MSHR; with all of them busy,
		// no further load may start (this is what bounds memory-level
		// parallelism). Checked before the cache access because probing
		// mutates cache state.
		s.expire(&s.mshrOut)
		if len(s.mshrOut) >= s.cfg.MSHRs {
			return false
		}
	}
	cls := s.cfg.Ops[u.op]
	port := -1
	for p := 0; p < s.cfg.NumPorts; p++ {
		if cls.Ports.Has(p) && !s.portUsed[p] && s.portBusy[p] <= s.cycle {
			port = p
			break
		}
	}
	if port < 0 {
		return false
	}
	s.portUsed[port] = true
	if port < 8 {
		s.ctr.Inc(pmu.EvPort0 + pmu.EventID(port))
	}
	if cls.Unpipelined {
		s.portBusy[port] = s.cycle + cls.Latency
		if u.op == isa.OpIntDiv || u.op == isa.OpFPDiv {
			if end := s.cycle + cls.Latency; end > s.divBusyUntil {
				s.divBusyUntil = end
			}
		}
	}

	switch u.op {
	case isa.OpLoad, isa.OpLoadLocked:
		walk := s.dtlbWalk(u.addr)
		res := s.hier.AccessData(u.addr, s.cycle+walk)
		s.countHierarchy(res.Level)
		done := res.DoneAt
		if res.Level != mem.LevelL1 {
			s.mshrOut = append(s.mshrOut, done)
			s.l1MissOut = append(s.l1MissOut, done)
			if res.Level >= mem.LevelL3 {
				s.l2MissOut = append(s.l2MissOut, done)
			}
			if res.Level == mem.LevelDRAM {
				s.l3MissOut = append(s.l3MissOut, done)
			}
		}
		if u.locked {
			done += s.cfg.LockLatency
			s.memLockUntil = done
		}
		u.doneAt = done
		u.hitLevel = res.Level
		s.loadsOut = append(s.loadsOut, done)
	case isa.OpStore:
		walk := s.dtlbWalk(u.addr)
		res := s.hier.AccessData(u.addr, s.cycle+walk)
		s.countHierarchy(res.Level)
		// Dependents see the store complete quickly; the store buffer
		// entry drains when the hierarchy access finishes.
		u.doneAt = s.cycle + cls.Latency
		u.hitLevel = res.Level
		s.sbOut = append(s.sbOut, res.DoneAt)
	default:
		u.doneAt = s.cycle + cls.Latency
	}
	u.dispatched = true
	if u.brMisp && s.mispBranchSeq == u.seq {
		// The mispredicted branch now has a resolution time: the front
		// end restarts after the recovery penalty.
		s.recoveryUntil = u.doneAt + s.cfg.BranchMispredictPenalty
		s.feBlockedBranch = false
		s.mispBranchSeq = 0
	}
	return true
}

// dtlbWalk translates a data address, charging a page walk on a miss.
func (s *Sim) dtlbWalk(addr uint64) uint64 {
	if s.dtlb.Access(addr) {
		return 0
	}
	s.ctr.Inc(pmu.EvDTLBWalk)
	return s.cfg.TLBWalkLatency
}

func (s *Sim) countHierarchy(level mem.Level) {
	if level >= mem.LevelL3 {
		s.ctr.Inc(pmu.EvL3Ref)
	}
	if level == mem.LevelDRAM {
		s.ctr.Inc(pmu.EvL3Miss)
	}
}

// --- issue ------------------------------------------------------------

func (s *Sim) robFull() bool {
	return s.tailSeq-s.headSeq >= uint64(len(s.rob))
}

func (s *Sim) issue() int {
	issued := 0
	backendBlocked := false
	sbBlocked := false
	vecBlocked := false
	for issued < s.cfg.IssueWidth && s.idqLen() > 0 {
		if s.cycle < s.issueBlockedUntil {
			backendBlocked = true
			vecBlocked = true
			break
		}
		u := s.idq[s.idqHead]
		if s.robFull() || len(s.waiting) >= s.cfg.SchedSize {
			backendBlocked = true
			break
		}
		if (u.op == isa.OpLoad || u.op == isa.OpLoadLocked) && len(s.loadsOut) >= s.cfg.LoadBufSize {
			backendBlocked = true
			break
		}
		if u.op == isa.OpStore && len(s.sbOut) >= s.cfg.StoreBufSize {
			backendBlocked = true
			sbBlocked = true
			break
		}
		vecMismatch := false
		if u.op.IsVector() {
			if s.lastVecWidth != 0 && u.vw != s.lastVecWidth {
				vecMismatch = true
				s.ctr.Inc(pmu.EvVecWidthMismatch)
			}
			s.lastVecWidth = u.vw
		}
		s.idqHead++

		seq := s.tailSeq
		s.tailSeq++
		slot := &s.rob[seq%uint64(len(s.rob))]
		*slot = u
		slot.seq = seq
		slot.dispatched = false
		if u.chainPrev {
			slot.src1Seq = seq - 1
		} else if u.src1 != 0 {
			slot.src1Seq = s.regProd[u.src1]
		}
		if u.src2 != 0 {
			slot.src2Seq = s.regProd[u.src2]
		}
		if u.dst != 0 {
			s.regProd[u.dst] = seq
		}
		if u.lastOfInst && s.pendingBubbles > 0 {
			slot.feBubbles = s.pendingBubbles
			s.pendingBubbles = 0
		}
		if u.brMisp {
			s.mispBranchSeq = seq
		}
		s.waiting = append(s.waiting, seq)
		issued++
		if vecMismatch {
			s.issueBlockedUntil = s.cycle + s.cfg.VecWidthSwitchPenalty
			break
		}
	}
	if s.idqHead > 1024 && s.idqHead*2 >= len(s.idq) {
		n := copy(s.idq, s.idq[s.idqHead:])
		s.idq = s.idq[:n]
		s.idqHead = 0
	}

	s.ctr.Add(pmu.EvUopsIssuedAny, uint64(issued))
	if issued == 0 {
		s.ctr.Inc(pmu.EvUopsIssuedStallCycles)
	}
	switch {
	case backendBlocked && issued == 0:
		// The front end had uops but the back end could not accept
		// them.
		s.ctr.Inc(pmu.EvUopsNotDeliveredFEWasOK)
		if !vecBlocked {
			s.ctr.Inc(pmu.EvResourceStallsAny)
		}
		if sbBlocked {
			s.ctr.Inc(pmu.EvResourceStallsSB)
		}
	case !backendBlocked:
		// Delivery slots lost to branch recovery belong to bad
		// speculation (int_misc.recovery_cycles), not to the front-end
		// bound counters — otherwise a flush-heavy workload would look
		// front-end bound to Top-Down Analysis.
		if s.feBlockedBranch || s.cycle < s.recoveryUntil {
			break
		}
		if missed := s.cfg.IssueWidth - issued; missed > 0 {
			s.ctr.Add(pmu.EvUopsNotDeliveredCore, uint64(missed))
			if issued <= 1 {
				s.ctr.Inc(pmu.EvUopsNotDeliveredLE1)
			}
			if issued <= 2 {
				s.ctr.Inc(pmu.EvUopsNotDeliveredLE2)
			}
			if issued <= 3 {
				s.ctr.Inc(pmu.EvUopsNotDeliveredLE3)
			}
		}
		if issued == 0 {
			s.feBubbleRun++
		} else {
			if s.feBubbleRun >= 2 {
				b := s.feBubbleRun
				if b > 250 {
					b = 250
				}
				s.pendingBubbles = uint8(b)
			}
			s.feBubbleRun = 0
		}
	}
	return issued
}

// --- front end --------------------------------------------------------

func (s *Sim) peek() bool {
	if s.holdValid {
		return true
	}
	if s.progDone {
		return false
	}
	in, ok := s.prog.Next()
	if !ok {
		s.progDone = true
		return false
	}
	s.hold = in
	s.holdValid = true
	return true
}

func (s *Sim) pathWidth(p fePath) int {
	switch p {
	case pathDSB:
		return s.cfg.DSBWidth
	case pathMS:
		return s.cfg.MSWidth
	default:
		return s.cfg.MITEWidth
	}
}

func (s *Sim) frontEnd() {
	if s.feBlockedBranch && s.pendingLen() == 0 {
		// Waiting for a mispredicted branch to resolve; the recovery
		// window proper starts once it executes. Already-decoded uops
		// (including the branch itself) still drain into the IDQ below.
		s.ctr.Inc(pmu.EvRecoveryCycles)
		s.ctr.Inc(pmu.EvRecoveryCyclesAny)
		return
	}
	if s.cycle < s.recoveryUntil {
		s.ctr.Inc(pmu.EvRecoveryCycles)
		s.ctr.Inc(pmu.EvRecoveryCyclesAny)
		return
	}
	if s.cycle < s.fetchStallUntil {
		if s.icacheStall {
			s.ctr.Inc(pmu.EvICacheStall)
		}
		return
	}

	delivered := 0
	width := 0
	path := pathNone
	stopAfterPending := s.feBlockedBranch
	for {
		if s.idqLen() >= s.cfg.IDQCapacity {
			break
		}
		if s.pendingLen() > 0 {
			if width == 0 {
				// Resume a partially delivered instruction (e.g. a
				// long microcode expansion) on its original path.
				path = s.pending[s.pendingHead].srcPath
				width = s.pathWidth(path)
				if path == pathMS && s.prevPath == pathDSB {
					s.msFromDSB = true
				}
			}
			if delivered >= width {
				break
			}
			s.idq = append(s.idq, s.pending[s.pendingHead])
			s.pendingHead++
			if s.pendingHead == len(s.pending) {
				s.pending = s.pending[:0]
				s.pendingHead = 0
			}
			delivered++
			continue
		}
		if stopAfterPending {
			break
		}
		if width != 0 && delivered >= width {
			break
		}
		if !s.peek() {
			break
		}
		inst := s.hold

		// Instruction cache: probe on each new line.
		line := inst.PC >> 6
		if line != s.lastFetchLine {
			s.lastFetchLine = line
			fetchAt := s.cycle
			if !s.itlb.Access(inst.PC) {
				// Instruction page walk stalls fetch before the cache
				// probe even begins.
				s.ctr.Inc(pmu.EvITLBWalk)
				fetchAt += s.cfg.TLBWalkLatency
			}
			res := s.hier.AccessInst(inst.PC, fetchAt)
			if res.Level != mem.LevelL1 || fetchAt > s.cycle {
				s.fetchStallUntil = res.DoneAt
				s.icacheStall = true
				break
			}
		}

		// Choose the delivery path for this instruction. The DSB verdict
		// is per code window: a window being decoded for the first time
		// goes entirely through the legacy pipeline (and is installed in
		// the DSB for its next visit).
		p := pathMITE
		if inst.Op == isa.OpMicrocoded {
			p = pathMS
		} else {
			window := inst.PC &^ uint64(s.cfg.DSBWindowBytes-1)
			if window != s.curWindow {
				s.curWindow = window
				s.curWindowInDSB = s.dsb.Access(window)
			}
			if s.curWindowInDSB {
				p = pathDSB
			}
		}
		if width == 0 {
			// First instruction this cycle fixes the path; switching
			// into MS or from DSB back to legacy decode costs bubbles.
			if p == pathMS && s.prevPath != pathMS {
				s.ctr.Inc(pmu.EvMSSwitches)
				s.msFromDSB = s.prevPath == pathDSB
				if s.cfg.MSSwitchPenalty > 0 {
					s.fetchStallUntil = s.cycle + s.cfg.MSSwitchPenalty
					s.icacheStall = false
					s.prevPath = pathMS
					s.expandInst(inst, p)
					s.holdValid = false
					return
				}
			}
			if p == pathMITE && s.prevPath == pathDSB {
				s.ctr.Add(pmu.EvDSB2MITESwitchCycles, 2)
				s.fetchStallUntil = s.cycle + 2
				s.icacheStall = false
				s.prevPath = pathMITE
				s.expandInst(inst, p)
				s.holdValid = false
				return
			}
			path = p
			width = s.pathWidth(p)
		} else if p != path {
			// Different pipe: deliver it next cycle.
			break
		}

		s.expandInst(inst, p)
		s.holdValid = false
		if inst.Op == isa.OpBranch {
			misp := s.pred.predictAndUpdate(inst.PC, inst.Taken, inst.Target)
			if misp {
				s.pending[len(s.pending)-1].brMisp = true
				s.feBlockedBranch = true
				stopAfterPending = true
			}
		}
	}

	if delivered > 0 {
		switch path {
		case pathDSB:
			s.ctr.Inc(pmu.EvDSBCycles)
			s.ctr.Inc(pmu.EvAllDSBCyclesAnyUops)
			s.ctr.Add(pmu.EvDSBUops, uint64(delivered))
		case pathMITE:
			s.ctr.Inc(pmu.EvMITECycles)
			s.ctr.Add(pmu.EvMITEUops, uint64(delivered))
		case pathMS:
			s.ctr.Inc(pmu.EvMSCycles)
			s.ctr.Add(pmu.EvMSUops, uint64(delivered))
			if s.msFromDSB {
				s.ctr.Inc(pmu.EvMSDSBCycles)
			}
		}
		s.prevPath = path
	}
}

// expandInst decodes inst into pending uops tagged with the delivery
// path.
func (s *Sim) expandInst(inst isa.Inst, p fePath) {
	n := inst.Uops()
	for i := 0; i < n; i++ {
		u := uop{
			op:      inst.Op,
			srcPath: p,
			vw:      inst.VecWidth,
			size:    inst.Size,
		}
		if inst.Op == isa.OpMicrocoded {
			u.op = isa.OpMicrocoded
			if i > 0 {
				u.chainPrev = true
			} else {
				u.src1, u.src2 = inst.Src1, inst.Src2
			}
			if i == n-1 {
				u.dst = inst.Dst
			}
		} else {
			u.dst = inst.Dst
			u.src1, u.src2 = inst.Src1, inst.Src2
			u.addr = inst.Addr
			u.isBranch = inst.Op == isa.OpBranch
			u.locked = inst.Op == isa.OpLoadLocked
		}
		u.lastOfInst = i == n-1
		s.pending = append(s.pending, u)
	}
}

// --- per-cycle activity ------------------------------------------------

func (s *Sim) expire(list *[]uint64) {
	l := *list
	kept := l[:0]
	for _, t := range l {
		if t > s.cycle {
			kept = append(kept, t)
		}
	}
	*list = kept
}

func (s *Sim) activity(executed, portsUsed int) {
	s.ctr.Inc(pmu.EvCycles)

	s.expire(&s.loadsOut)
	s.expire(&s.l1MissOut)
	s.expire(&s.l2MissOut)
	s.expire(&s.l3MissOut)
	s.expire(&s.sbOut)
	s.expire(&s.mshrOut)

	stalled := executed == 0
	if stalled {
		s.ctr.Inc(pmu.EvStallsTotal)
		s.ctr.Inc(pmu.EvUopsExecutedStallCycles)
		if len(s.waiting) > 0 {
			s.ctr.Inc(pmu.EvExeBound0Ports)
		}
	} else {
		s.ctr.Inc(pmu.EvUopsExecCyclesGE1)
		s.ctr.Inc(pmu.EvUopsExecCoreCyclesGE1)
		if executed >= 2 {
			s.ctr.Inc(pmu.EvUopsExecCyclesGE2)
		}
	}
	switch portsUsed {
	case 1:
		s.ctr.Inc(pmu.EvExe1PortUtil)
	case 2:
		s.ctr.Inc(pmu.EvExe2PortUtil)
	}
	if len(s.loadsOut) > 0 {
		s.ctr.Inc(pmu.EvCyclesMemAny)
		if stalled {
			s.ctr.Inc(pmu.EvStallsMemAny)
		}
	}
	if len(s.l1MissOut) > 0 {
		s.ctr.Inc(pmu.EvCyclesL1DMiss)
		s.ctr.Inc(pmu.EvL1DPendMissCycles)
		if stalled {
			s.ctr.Inc(pmu.EvStallsL1DMiss)
		}
	}
	if stalled && len(s.l2MissOut) > 0 {
		s.ctr.Inc(pmu.EvStallsL2Miss)
	}
	if stalled && len(s.l3MissOut) > 0 {
		s.ctr.Inc(pmu.EvStallsL3Miss)
	}
	if s.divBusyUntil > s.cycle {
		s.ctr.Inc(pmu.EvDividerActive)
	}
	if q := s.hier.DRAM.QueueCycles(); q > s.lastDRAMQueue {
		s.ctr.Add(pmu.EvDRAMQueueCycles, q-s.lastDRAMQueue)
		s.lastDRAMQueue = q
	}
}

// Perturb models the cache side effects of a sampling agent (perf's
// interrupt handler and counter reprogramming) running on the core: it
// touches n distinct cache lines in a reserved address region, evicting
// workload data from the L1/L2 the way a real sampler's code and stack
// do. Samplers call it at group-switch points.
func (s *Sim) Perturb(n int) {
	const samplerBase = 0xFFFF_0000_0000
	for i := 0; i < n; i++ {
		s.perturbIdx++
		addr := samplerBase + uint64(s.perturbIdx%512)*64
		s.hier.AccessData(addr, s.cycle)
	}
}

// Validate checks a whole program by streaming it once; used by tests and
// tools to fail fast on malformed generators. The program is reset with
// the given seed and must be Reset again before simulation.
func Validate(prog isa.Program, seed int64, maxInsts int) error {
	prog.Reset(seed)
	for i := 0; i < maxInsts; i++ {
		in, ok := prog.Next()
		if !ok {
			return nil
		}
		if err := in.Validate(); err != nil {
			return fmt.Errorf("sim: %s inst %d: %w", prog.Name(), i, err)
		}
	}
	return nil
}
