package sim

import "spire/internal/uarch"

// predictor is a gshare direction predictor with 2-bit saturating
// counters plus a direct-mapped branch target buffer for taken-branch
// targets.
type predictor struct {
	table   []uint8 // 2-bit counters, weakly-taken initialized
	mask    uint64
	history uint64
	btb     []uint64
	btbMask uint64
}

func newPredictor(cfg *uarch.Config) *predictor {
	n := 1 << uint(cfg.GShareBits)
	t := make([]uint8, n)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	btbSize := cfg.BTBEntries
	// Round BTB size up to a power of two for cheap masking.
	sz := 1
	for sz < btbSize {
		sz <<= 1
	}
	return &predictor{
		table:   t,
		mask:    uint64(n - 1),
		btb:     make([]uint64, sz),
		btbMask: uint64(sz - 1),
	}
}

// predict returns the predicted direction and target for the branch at pc
// and then updates the predictor with the actual outcome, reporting
// whether the prediction was wrong.
func (p *predictor) predictAndUpdate(pc uint64, taken bool, target uint64) (mispredict bool) {
	idx := ((pc >> 2) ^ p.history) & p.mask
	ctr := p.table[idx]
	predTaken := ctr >= 2

	predTarget := p.btb[(pc>>2)&p.btbMask]

	mispredict = predTaken != taken
	if taken && !mispredict && predTarget != target {
		// Direction right but target wrong (indirect branch or BTB
		// conflict): still a misprediction.
		mispredict = true
	}

	// Update direction counter.
	if taken {
		if ctr < 3 {
			p.table[idx] = ctr + 1
		}
	} else {
		if ctr > 0 {
			p.table[idx] = ctr - 1
		}
	}
	// Update history and BTB.
	p.history = ((p.history << 1) | b2u(taken)) & p.mask
	if taken {
		p.btb[(pc>>2)&p.btbMask] = target
	}
	return mispredict
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
