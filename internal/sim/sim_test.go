package sim

import (
	"math/rand"
	"testing"

	"spire/internal/isa"
	"spire/internal/pmu"
	"spire/internal/uarch"
)

// loopProgram generates n copies of a fixed basic block, mimicking a tight
// loop at a small PC footprint.
type loopProgram struct {
	name  string
	block []isa.Inst
	iters int
	pos   int
}

func (p *loopProgram) Name() string     { return p.name }
func (p *loopProgram) Reset(seed int64) { p.pos = 0 }
func (p *loopProgram) Next() (isa.Inst, bool) {
	total := len(p.block) * p.iters
	if p.pos >= total {
		return isa.Inst{}, false
	}
	in := p.block[p.pos%len(p.block)]
	p.pos++
	return in, true
}

// aluBlock builds a block of independent single-cycle ALU ops in a tiny
// code footprint.
func aluBlock(n int) []isa.Inst {
	block := make([]isa.Inst, n)
	for i := range block {
		block[i] = isa.Inst{
			PC:  uint64(0x1000 + 4*i),
			Op:  isa.OpIntALU,
			Dst: isa.Reg(1 + i%8),
		}
	}
	return block
}

func run(t *testing.T, prog isa.Program, maxCycles uint64) Result {
	t.Helper()
	s, err := New(uarch.Default(), prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(maxCycles)
	if !res.Drained {
		t.Fatalf("%s did not drain in %d cycles (retired %d)", prog.Name(), maxCycles, res.Instructions)
	}
	return res
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(uarch.Default(), nil, 0); err == nil {
		t.Error("expected error for nil program")
	}
	bad := uarch.Default()
	bad.IssueWidth = 0
	if _, err := New(bad, &loopProgram{name: "x", block: aluBlock(1), iters: 1}, 0); err == nil {
		t.Error("expected error for invalid config")
	}
}

func TestALULoopHighIPC(t *testing.T) {
	prog := &loopProgram{name: "alu", block: aluBlock(16), iters: 2000}
	res := run(t, prog, 1_000_000)
	if res.Instructions != 32000 {
		t.Fatalf("retired %d instructions, want 32000", res.Instructions)
	}
	// Independent ALU ops in a DSB-resident loop should sustain close to
	// the 4-wide issue limit.
	if res.IPC < 3.0 {
		t.Errorf("ALU loop IPC = %.2f, want >= 3.0", res.IPC)
	}
	// The loop body fits one DSB window, so after warmup the DSB supplies
	// almost all uops.
	dsb := res.Counts.Read(pmu.EvDSBUops)
	mite := res.Counts.Read(pmu.EvMITEUops)
	if dsb < 10*mite {
		t.Errorf("DSB uops %d should dominate MITE uops %d in a tight loop", dsb, mite)
	}
}

func TestDependencyChainLowIPC(t *testing.T) {
	// A serial chain of multiplies: IPC limited by latency (3), so ~1/3.
	block := make([]isa.Inst, 8)
	for i := range block {
		block[i] = isa.Inst{PC: uint64(0x2000 + 4*i), Op: isa.OpIntMul, Dst: 1, Src1: 1}
	}
	prog := &loopProgram{name: "chain", block: block, iters: 1000}
	res := run(t, prog, 1_000_000)
	if res.IPC > 0.5 {
		t.Errorf("dependency chain IPC = %.2f, want <= 0.5", res.IPC)
	}
	indep := &loopProgram{name: "indep", block: aluBlock(8), iters: 1000}
	resI := run(t, indep, 1_000_000)
	if resI.IPC < 2*res.IPC {
		t.Errorf("independent ops (%.2f) should be much faster than a chain (%.2f)", resI.IPC, res.IPC)
	}
}

func TestDividerSerializes(t *testing.T) {
	block := []isa.Inst{
		{PC: 0x3000, Op: isa.OpIntDiv, Dst: 1, Src1: 1},
	}
	prog := &loopProgram{name: "div", block: block, iters: 500}
	res := run(t, prog, 1_000_000)
	// Non-pipelined 24-cycle divider with a dependency chain: at most one
	// instruction every 24 cycles.
	if res.IPC > 1.0/20 {
		t.Errorf("div chain IPC = %.3f, want <= 0.05", res.IPC)
	}
	if res.Counts.Read(pmu.EvDividerActive) < res.Cycles/2 {
		t.Errorf("divider active %d of %d cycles, want majority", res.Counts.Read(pmu.EvDividerActive), res.Cycles)
	}
}

// chaseProgram emits a pointer chase over a large footprint: each load
// feeds the next load's address register.
type chaseProgram struct {
	n      int
	stride uint64
	span   uint64
	pos    int
	addr   uint64
}

func (p *chaseProgram) Name() string     { return "chase" }
func (p *chaseProgram) Reset(seed int64) { p.pos, p.addr = 0, 0 }
func (p *chaseProgram) Next() (isa.Inst, bool) {
	if p.pos >= p.n {
		return isa.Inst{}, false
	}
	p.pos++
	p.addr = (p.addr + p.stride) % p.span
	return isa.Inst{
		PC: 0x4000, Op: isa.OpLoad, Dst: 1, Src1: 1,
		Addr: 0x10_0000 + p.addr, Size: 8,
	}, true
}

func TestPointerChaseMemoryBound(t *testing.T) {
	prog := &chaseProgram{n: 3000, stride: 64 * 131, span: 64 << 20}
	res := run(t, prog, 5_000_000)
	if res.IPC > 0.05 {
		t.Errorf("DRAM pointer chase IPC = %.3f, want <= 0.05", res.IPC)
	}
	if res.Counts.Read(pmu.EvL3Miss) < 2000 {
		t.Errorf("L3 misses = %d, want most of 3000 loads", res.Counts.Read(pmu.EvL3Miss))
	}
	if res.Counts.Read(pmu.EvStallsMemAny) < res.Cycles/2 {
		t.Errorf("memory stalls %d of %d cycles, want majority", res.Counts.Read(pmu.EvStallsMemAny), res.Cycles)
	}
}

// branchyProgram emits data-dependent unpredictable branches.
type branchyProgram struct {
	n   int
	pos int
	rng *rand.Rand
}

func (p *branchyProgram) Name() string     { return "branchy" }
func (p *branchyProgram) Reset(seed int64) { p.pos = 0; p.rng = rand.New(rand.NewSource(seed)) }
func (p *branchyProgram) Next() (isa.Inst, bool) {
	if p.pos >= p.n {
		return isa.Inst{}, false
	}
	p.pos++
	if p.pos%2 == 0 {
		taken := p.rng.Intn(2) == 0
		return isa.Inst{PC: 0x5000, Op: isa.OpBranch, Taken: taken, Target: 0x5100}, true
	}
	return isa.Inst{PC: 0x5004, Op: isa.OpIntALU, Dst: 2}, true
}

func TestUnpredictableBranchesCauseRecovery(t *testing.T) {
	prog := &branchyProgram{n: 8000}
	res := run(t, prog, 5_000_000)
	misp := res.Counts.Read(pmu.EvBrMispRetired)
	branches := res.Counts.Read(pmu.EvBrInstRetired)
	if branches != 4000 {
		t.Fatalf("retired branches = %d, want 4000", branches)
	}
	if misp < branches/4 {
		t.Errorf("mispredicts = %d of %d, want a large fraction for random outcomes", misp, branches)
	}
	if res.Counts.Read(pmu.EvRecoveryCycles) < misp*8 {
		t.Errorf("recovery cycles %d too low for %d mispredicts", res.Counts.Read(pmu.EvRecoveryCycles), misp)
	}
	if res.IPC > 1.0 {
		t.Errorf("branchy IPC = %.2f, want < 1.0", res.IPC)
	}
}

func TestPredictableBranchesAreFast(t *testing.T) {
	// Alternating never-taken branch in a tight loop: gshare learns it.
	block := []isa.Inst{
		{PC: 0x6000, Op: isa.OpIntALU, Dst: 1},
		{PC: 0x6004, Op: isa.OpBranch, Taken: false},
	}
	prog := &loopProgram{name: "predictable", block: block, iters: 4000}
	res := run(t, prog, 1_000_000)
	misp := res.Counts.Read(pmu.EvBrMispRetired)
	if misp > 100 {
		t.Errorf("mispredicts = %d, want few for an always-not-taken branch", misp)
	}
	if res.IPC < 2.0 {
		t.Errorf("predictable-branch IPC = %.2f, want >= 2.0", res.IPC)
	}
}

// bigCodeProgram touches a large code footprint so the DSB and L1I thrash.
type bigCodeProgram struct {
	n     int
	insts int
	pos   int
}

func (p *bigCodeProgram) Name() string     { return "bigcode" }
func (p *bigCodeProgram) Reset(seed int64) { p.pos = 0 }
func (p *bigCodeProgram) Next() (isa.Inst, bool) {
	if p.pos >= p.n {
		return isa.Inst{}, false
	}
	pc := 0x10000 + uint64(p.pos%p.insts)*4
	p.pos++
	return isa.Inst{PC: pc, Op: isa.OpIntALU, Dst: isa.Reg(1 + p.pos%8)}, true
}

func TestLargeCodeFootprintHurtsFrontEnd(t *testing.T) {
	small := &bigCodeProgram{n: 20000, insts: 64}
	// 512 KiB of straight-line code: misses L1I (32K) every pass.
	big := &bigCodeProgram{n: 20000, insts: 128 * 1024}
	resSmall := run(t, small, 2_000_000)
	resBig := run(t, big, 20_000_000)
	if resBig.IPC >= resSmall.IPC {
		t.Errorf("big-code IPC %.2f should be below small-code IPC %.2f", resBig.IPC, resSmall.IPC)
	}
	if resBig.Counts.Read(pmu.EvICacheStall) == 0 {
		t.Error("expected I-cache stall cycles for a 512 KiB footprint")
	}
	// Large footprint cannot live in the DSB: MITE should dominate.
	if resBig.Counts.Read(pmu.EvMITEUops) < resBig.Counts.Read(pmu.EvDSBUops) {
		t.Errorf("big code should be MITE-fed: mite=%d dsb=%d",
			resBig.Counts.Read(pmu.EvMITEUops), resBig.Counts.Read(pmu.EvDSBUops))
	}
}

func TestMicrocodedOpsUseMS(t *testing.T) {
	block := []isa.Inst{
		{PC: 0x7000, Op: isa.OpMicrocoded, Dst: 1, UopCount: 12},
		{PC: 0x7004, Op: isa.OpIntALU, Dst: 2},
	}
	prog := &loopProgram{name: "ms", block: block, iters: 500}
	res := run(t, prog, 1_000_000)
	if res.Counts.Read(pmu.EvMSSwitches) < 400 {
		t.Errorf("MS switches = %d, want ~500 (one per microcoded inst)", res.Counts.Read(pmu.EvMSSwitches))
	}
	if res.Counts.Read(pmu.EvMSUops) < 500*12 {
		t.Errorf("MS uops = %d, want >= 6000", res.Counts.Read(pmu.EvMSUops))
	}
	// Retired uops = 500*12 + 500*1.
	if got := res.Counts.Read(pmu.EvUopsRetiredSlots); got != 6500 {
		t.Errorf("retired uops = %d, want 6500", got)
	}
}

func TestLockedLoadsSerialize(t *testing.T) {
	mk := func(op isa.Op) *loopProgram {
		return &loopProgram{
			name: "lock",
			block: []isa.Inst{
				{PC: 0x8000, Op: op, Dst: 1, Addr: 0x9000, Size: 8},
				{PC: 0x8004, Op: isa.OpIntALU, Dst: 2},
			},
			iters: 1000,
		}
	}
	locked := run(t, mk(isa.OpLoadLocked), 1_000_000)
	plain := run(t, mk(isa.OpLoad), 1_000_000)
	if locked.IPC > plain.IPC/2 {
		t.Errorf("locked loads IPC %.3f should be far below plain loads %.3f", locked.IPC, plain.IPC)
	}
	if got := locked.Counts.Read(pmu.EvLockLoads); got != 1000 {
		t.Errorf("lock_loads = %d, want 1000", got)
	}
}

func TestVectorWidthMixingPenalty(t *testing.T) {
	mixed := &loopProgram{
		name: "vwmix",
		block: []isa.Inst{
			{PC: 0xa000, Op: isa.OpVecFMA, Dst: 1, VecWidth: 256},
			{PC: 0xa004, Op: isa.OpVecFMA, Dst: 2, VecWidth: 512},
		},
		iters: 1000,
	}
	uniform := &loopProgram{
		name: "vwuni",
		block: []isa.Inst{
			{PC: 0xa000, Op: isa.OpVecFMA, Dst: 1, VecWidth: 512},
			{PC: 0xa004, Op: isa.OpVecFMA, Dst: 2, VecWidth: 512},
		},
		iters: 1000,
	}
	resM := run(t, mixed, 1_000_000)
	resU := run(t, uniform, 1_000_000)
	if resM.Counts.Read(pmu.EvVecWidthMismatch) < 1000 {
		t.Errorf("width mismatches = %d, want >= 1000", resM.Counts.Read(pmu.EvVecWidthMismatch))
	}
	if resU.Counts.Read(pmu.EvVecWidthMismatch) != 0 {
		t.Errorf("uniform widths should not mismatch, got %d", resU.Counts.Read(pmu.EvVecWidthMismatch))
	}
	if resM.IPC > resU.IPC/1.5 {
		t.Errorf("mixed-width IPC %.2f should trail uniform %.2f", resM.IPC, resU.IPC)
	}
}

func TestCountersAreConsistent(t *testing.T) {
	prog := &loopProgram{name: "consistency", block: aluBlock(32), iters: 500}
	res := run(t, prog, 1_000_000)
	c := res.Counts
	if c.Read(pmu.EvCycles) != res.Cycles {
		t.Errorf("cycle counter %d != simulated cycles %d", c.Read(pmu.EvCycles), res.Cycles)
	}
	if c.Read(pmu.EvInstRetired) != res.Instructions {
		t.Errorf("inst counter %d != retired %d", c.Read(pmu.EvInstRetired), res.Instructions)
	}
	// Every issued uop retires (no wrong-path issue in this model).
	if c.Read(pmu.EvUopsIssuedAny) != c.Read(pmu.EvUopsRetiredSlots) {
		t.Errorf("issued %d != retired uops %d", c.Read(pmu.EvUopsIssuedAny), c.Read(pmu.EvUopsRetiredSlots))
	}
	if c.Read(pmu.EvUopsExecutedThread) != c.Read(pmu.EvUopsRetiredSlots) {
		t.Errorf("executed %d != retired uops %d", c.Read(pmu.EvUopsExecutedThread), c.Read(pmu.EvUopsRetiredSlots))
	}
	// Front-end source uops account for every issued uop.
	src := c.Read(pmu.EvDSBUops) + c.Read(pmu.EvMITEUops) + c.Read(pmu.EvMSUops)
	if src != c.Read(pmu.EvUopsIssuedAny) {
		t.Errorf("source uops %d != issued %d", src, c.Read(pmu.EvUopsIssuedAny))
	}
	// Nested delivery events.
	if c.Read(pmu.EvUopsNotDeliveredLE1) > c.Read(pmu.EvUopsNotDeliveredLE2) ||
		c.Read(pmu.EvUopsNotDeliveredLE2) > c.Read(pmu.EvUopsNotDeliveredLE3) {
		t.Error("idq_uops_not_delivered.cycles_le_N must be nested")
	}
	// Stall cycles cannot exceed total cycles.
	for _, ev := range []pmu.EventID{pmu.EvStallsTotal, pmu.EvStallsMemAny, pmu.EvStallsL1DMiss, pmu.EvRecoveryCycles} {
		if c.Read(ev) > res.Cycles {
			t.Errorf("%s = %d exceeds cycles %d", pmu.Describe(ev).Name, c.Read(ev), res.Cycles)
		}
	}
}

func TestStepResumesExactly(t *testing.T) {
	mk := func() *loopProgram { return &loopProgram{name: "step", block: aluBlock(16), iters: 1000} }
	s1, err := New(uarch.Default(), mk(), 1)
	if err != nil {
		t.Fatal(err)
	}
	full := s1.Run(1_000_000)

	s2, err := New(uarch.Default(), mk(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for !s2.Done() {
		s2.Step(137)
	}
	if s2.Cycle() != full.Cycles || s2.Instructions() != full.Instructions {
		t.Errorf("stepped run (%d cy, %d inst) != full run (%d cy, %d inst)",
			s2.Cycle(), s2.Instructions(), full.Cycles, full.Instructions)
	}
	d := s2.PMU().Snapshot().Delta(pmu.Counts{})
	for ev := pmu.EventID(0); ev < pmu.NumEvents; ev++ {
		if d.Read(ev) != full.Counts.Read(ev) {
			t.Errorf("event %s: stepped %d != full %d", pmu.Describe(ev).Name, d.Read(ev), full.Counts.Read(ev))
		}
	}
}

func TestValidateProgram(t *testing.T) {
	bad := &isa.SlicePlayer{Insts: []isa.Inst{{Op: isa.OpLoad, Size: 0}}}
	if err := Validate(bad, 0, 10); err == nil {
		t.Error("expected validation error for zero-size load")
	}
	good := &loopProgram{name: "ok", block: aluBlock(4), iters: 2}
	if err := Validate(good, 0, 100); err != nil {
		t.Errorf("unexpected validation error: %v", err)
	}
}

func TestRunRespectsCycleLimit(t *testing.T) {
	prog := &loopProgram{name: "limit", block: aluBlock(16), iters: 1_000_000}
	s, err := New(uarch.Default(), prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(10_000)
	if res.Drained {
		t.Error("run should have hit the cycle limit")
	}
	if res.Cycles != 10_000 {
		t.Errorf("cycles = %d, want exactly 10000", res.Cycles)
	}
}

func TestPortDispatchCounters(t *testing.T) {
	// Divides bind to port 0 only; stores to port 4 only.
	prog := &loopProgram{
		name: "ports",
		block: []isa.Inst{
			{PC: 0xb000, Op: isa.OpIntDiv, Dst: 1},
			{PC: 0xb004, Op: isa.OpStore, Addr: 0xc000, Size: 8},
		},
		iters: 200,
	}
	res := run(t, prog, 1_000_000)
	if got := res.Counts.Read(pmu.EvPort0); got != 200 {
		t.Errorf("port0 dispatches = %d, want 200 (all divides)", got)
	}
	if got := res.Counts.Read(pmu.EvPort4); got != 200 {
		t.Errorf("port4 dispatches = %d, want 200 (all stores)", got)
	}
	// Total port dispatches equals executed uops.
	var total uint64
	for ev := pmu.EvPort0; ev <= pmu.EvPort7; ev++ {
		total += res.Counts.Read(ev)
	}
	if total != res.Counts.Read(pmu.EvUopsExecutedThread) {
		t.Errorf("port sum %d != executed %d", total, res.Counts.Read(pmu.EvUopsExecutedThread))
	}
}

func TestMSHRLimitThrottlesMLP(t *testing.T) {
	// Independent streaming loads to DRAM: more MSHRs means more memory
	// parallelism and a faster run.
	mkProg := func() isa.Program {
		return &chaseProgram{n: 1500, stride: 64 * 131, span: 64 << 20}
	}
	ipc := func(mshrs int) float64 {
		cfg := uarch.Default()
		cfg.MSHRs = mshrs
		prog := &independentChase{inner: mkProg().(*chaseProgram)}
		s, err := New(cfg, prog, 1)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(50_000_000)
		if !res.Drained {
			t.Fatal("did not drain")
		}
		return res.IPC
	}
	narrow := ipc(1)
	wide := ipc(10)
	if wide < 2*narrow {
		t.Errorf("10 MSHRs (%.4f IPC) should be much faster than 1 (%.4f IPC)", wide, narrow)
	}
}

// independentChase strips the register dependence from chaseProgram so
// loads can overlap.
type independentChase struct{ inner *chaseProgram }

func (p *independentChase) Name() string     { return "indep-chase" }
func (p *independentChase) Reset(seed int64) { p.inner.Reset(seed) }
func (p *independentChase) Next() (isa.Inst, bool) {
	in, ok := p.inner.Next()
	in.Src1 = 0
	in.Dst = isa.Reg(1 + p.inner.pos%4)
	return in, ok
}

func TestStoreBufferPressure(t *testing.T) {
	// A dense store stream to DRAM backs up the store buffer and must
	// produce resource_stalls.sb.
	prog := &storeStorm{n: 20000}
	res := run(t, prog, 20_000_000)
	if got := res.Counts.Read(pmu.EvResourceStallsSB); got == 0 {
		t.Error("expected store-buffer resource stalls")
	}
}

type storeStorm struct{ n, pos int }

func (p *storeStorm) Name() string     { return "store-storm" }
func (p *storeStorm) Reset(seed int64) { p.pos = 0 }
func (p *storeStorm) Next() (isa.Inst, bool) {
	if p.pos >= p.n {
		return isa.Inst{}, false
	}
	addr := 0x5000_0000 + uint64(p.pos)*64%(128<<20)
	p.pos++
	return isa.Inst{PC: 0xd000, Op: isa.OpStore, Addr: addr, Size: 8}, true
}

func TestPerturbSlowsCacheSensitiveWorkload(t *testing.T) {
	// An L1-resident streaming loop; periodic perturbation evicts its
	// lines and must cost cycles.
	mk := func() isa.Program {
		k := &loopProgram{name: "l1loop", block: nil, iters: 1}
		_ = k
		return &l1Stream{n: 60000, ws: 8 << 10}
	}
	runPerturbed := func(perturb bool) uint64 {
		s, err := New(uarch.Default(), mk(), 1)
		if err != nil {
			t.Fatal(err)
		}
		for !s.Done() {
			s.Step(500)
			if perturb {
				s.Perturb(512)
			}
		}
		return s.Cycle()
	}
	base := runPerturbed(false)
	pert := runPerturbed(true)
	if pert <= base {
		t.Errorf("perturbation should cost cycles: %d vs %d", pert, base)
	}
}

type l1Stream struct {
	n, pos int
	ws     uint64
}

func (p *l1Stream) Name() string     { return "l1stream" }
func (p *l1Stream) Reset(seed int64) { p.pos = 0 }
func (p *l1Stream) Next() (isa.Inst, bool) {
	if p.pos >= p.n {
		return isa.Inst{}, false
	}
	addr := 0x6000_0000 + (uint64(p.pos)*8)%p.ws
	p.pos++
	return isa.Inst{PC: 0xe000, Op: isa.OpLoad, Dst: 1, Addr: addr, Size: 8}, true
}

func TestTLBWalks(t *testing.T) {
	// A random pointer chase over 64 MiB touches ~16k pages, far beyond
	// the 64-entry DTLB: nearly every load walks.
	prog := &chaseProgram{n: 2000, stride: 64 * 131, span: 64 << 20}
	res := run(t, prog, 5_000_000)
	if walks := res.Counts.Read(pmu.EvDTLBWalk); walks < 1500 {
		t.Errorf("DTLB walks = %d, want most of 2000 loads", walks)
	}
	// A small resident set stops walking after warmup.
	small := &l1Stream{n: 20000, ws: 8 << 10}
	resS := run(t, small, 1_000_000)
	if walks := resS.Counts.Read(pmu.EvDTLBWalk); walks > 10 {
		t.Errorf("resident-set DTLB walks = %d, want ~2 pages", walks)
	}
	// Big code footprint walks the ITLB.
	big := &bigCodeProgram{n: 30000, insts: 256 * 1024}
	resI := run(t, big, 50_000_000)
	if walks := resI.Counts.Read(pmu.EvITLBWalk); walks == 0 {
		t.Error("1 MiB code footprint should miss the ITLB")
	}
}

func TestHugePagesReduceWalks(t *testing.T) {
	// A no-reuse stream cold-misses every 4 KiB page regardless of TLB
	// size; 2 MiB pages (the hugepages effect) eliminate nearly all
	// walks and their latency.
	mk := func() isa.Program {
		return &independentChase{inner: &chaseProgram{n: 3000, stride: 64 * 131, span: 64 << 20}}
	}
	runCfg := func(pageBytes int) (uint64, uint64) {
		cfg := uarch.Default()
		cfg.PageBytes = pageBytes
		s, err := New(cfg, mk(), 1)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(50_000_000)
		if !res.Drained {
			t.Fatal("did not drain")
		}
		return res.Cycles, res.Counts.Read(pmu.EvDTLBWalk)
	}
	smallCy, smallWalks := runCfg(4096)
	hugeCy, hugeWalks := runCfg(2 << 20)
	if smallWalks < 2500 {
		t.Errorf("4 KiB pages: walks = %d, want ~one per load", smallWalks)
	}
	if hugeWalks > 30 {
		t.Errorf("2 MiB pages: walks = %d, want ~a dozen", hugeWalks)
	}
	if smallCy <= hugeCy {
		t.Errorf("page walks should cost cycles: 4K pages %d cy vs 2M pages %d cy", smallCy, hugeCy)
	}
}
