package sim

import (
	"errors"
	"fmt"

	"spire/internal/pmu"
)

// Multi-hart scheduler simulation. The single-core model in sim.go
// answers "where do on-CPU cycles go"; this file answers the other
// question — where does *wall* time go when a workload has more threads
// than harts and threads block on locks and devices. It is a
// scheduler-level discrete-event model, not N copies of the OOO core:
// wait-for-graph analysis (wPerf) consumes scheduler events, so that is
// the level simulated. Everything is deterministic: FIFO ready queues,
// FIFO lock hand-off, serial devices, and fixed tie-break order.

// MTOpKind identifies one thread-program operation.
type MTOpKind uint8

const (
	// OpCompute burns Cycles cycles of CPU.
	OpCompute MTOpKind = iota
	// OpLock acquires lock Obj, blocking while it is held.
	OpLock
	// OpUnlock releases lock Obj, handing it to the oldest waiter.
	OpUnlock
	// OpIO issues a request taking Cycles cycles on serial device Obj;
	// the thread blocks until it completes.
	OpIO
)

// MTOp is one operation of a thread program.
type MTOp struct {
	Kind   MTOpKind
	Cycles uint64 // compute burst length or device service time
	Obj    string // lock or device name for OpLock/OpUnlock/OpIO
}

// MTThread is one thread: its op list, executed Loop times (Loop <= 0
// means once).
type MTThread struct {
	Ops  []MTOp
	Loop int
}

// MTConfig configures the scheduler simulation.
type MTConfig struct {
	// Harts is the number of hardware threads (>= 1).
	Harts int
	// TimeSlice is the preemption quantum in cycles; 0 disables
	// preemption.
	TimeSlice uint64
}

// MTThreadStat is the simulator's own per-thread time accounting,
// usable as ground truth against the wait-graph partition.
type MTThreadStat struct {
	OnCPU        uint64
	LockWait     uint64
	IOWait       uint64
	RunnableWait uint64
	Start        uint64 // first event time
	End          uint64 // last event time
}

// MTResult is the outcome of a multi-hart run.
type MTResult struct {
	// Cycles is the wall-clock length of the run.
	Cycles uint64
	// Events is the scheduler event log in time order.
	Events []pmu.SchedEvent
	// PerThread holds the simulator's own accounting, indexed by thread.
	PerThread []MTThreadStat
	// Counts snapshots the PMU (cycles = on-CPU cycles summed across
	// threads, instructions = retired across threads).
	Counts pmu.Counts
	// Done reports whether every thread ran to completion within the
	// cycle budget.
	Done bool
}

// ErrDeadlock is returned when no thread can make progress.
var ErrDeadlock = errors.New("sim: deadlock: threads blocked with no pending completion")

// thread run states.
type mtState uint8

const (
	mtRunnable mtState = iota
	mtRunning
	mtBlockedLock
	mtBlockedIO
	mtDone
)

type mtThread struct {
	ops      []MTOp
	loops    int
	pc       int
	iter     int
	state    mtState
	burstRem uint64 // remaining cycles of the current compute op
	hart     int
	stat     MTThreadStat
	started  bool
}

type mtLock struct {
	holder  int // -1 free
	waiters []int
}

type ioCompletion struct {
	at     uint64
	thread int
	obj    string
}

// MTSim is the multi-hart scheduler simulator.
type MTSim struct {
	cfg     MTConfig
	threads []mtThread
	locks   map[string]*mtLock
	devFree map[string]uint64 // serial device: busy until
	ios     []ioCompletion    // pending completions, unordered
	ready   []int             // FIFO run queue
	harts   []int             // occupant thread or -1
	until   []uint64          // current run segment end per hart
	segAt   []uint64          // current run segment start per hart
	now     uint64
	log     pmu.SchedLog
	pmu     pmu.PMU
}

// NewMT validates the configuration and thread programs and builds a
// simulator. All threads start runnable at cycle 0.
func NewMT(cfg MTConfig, threads []MTThread) (*MTSim, error) {
	if cfg.Harts < 1 {
		return nil, errors.New("sim: MTConfig.Harts must be >= 1")
	}
	if len(threads) == 0 {
		return nil, errors.New("sim: no threads")
	}
	m := &MTSim{
		cfg:     cfg,
		locks:   make(map[string]*mtLock),
		devFree: make(map[string]uint64),
		harts:   make([]int, cfg.Harts),
		until:   make([]uint64, cfg.Harts),
		segAt:   make([]uint64, cfg.Harts),
	}
	for i := range m.harts {
		m.harts[i] = -1
	}
	for ti, th := range threads {
		if len(th.Ops) == 0 {
			return nil, fmt.Errorf("sim: thread %d has no ops", ti)
		}
		for oi, op := range th.Ops {
			switch op.Kind {
			case OpCompute:
				if op.Cycles == 0 {
					return nil, fmt.Errorf("sim: thread %d op %d: compute needs cycles > 0", ti, oi)
				}
			case OpLock, OpUnlock:
				if op.Obj == "" {
					return nil, fmt.Errorf("sim: thread %d op %d: lock op needs an object", ti, oi)
				}
			case OpIO:
				if op.Obj == "" || op.Cycles == 0 {
					return nil, fmt.Errorf("sim: thread %d op %d: io op needs object and cycles", ti, oi)
				}
			default:
				return nil, fmt.Errorf("sim: thread %d op %d: unknown kind %d", ti, oi, op.Kind)
			}
		}
		loops := th.Loop
		if loops <= 0 {
			loops = 1
		}
		m.threads = append(m.threads, mtThread{ops: th.Ops, loops: loops, hart: -1})
		m.ready = append(m.ready, ti)
	}
	return m, nil
}

func (m *MTSim) emit(class pmu.SchedClass, thread, hart int, obj string, waker int) {
	m.log.Emit(pmu.SchedEvent{
		Cycle: m.now, Class: class, Thread: thread, Hart: hart, Obj: obj, Waker: waker,
	})
	st := &m.threads[thread].stat
	if !m.threads[thread].started {
		m.threads[thread].started = true
		st.Start = m.now
	}
	st.End = m.now
}

// lockOf returns the lock, creating it free.
func (m *MTSim) lockOf(name string) *mtLock {
	l, ok := m.locks[name]
	if !ok {
		l = &mtLock{holder: -1}
		m.locks[name] = l
	}
	return l
}

// dispatch fills free harts from the ready queue.
func (m *MTSim) dispatch() {
	for h := 0; h < len(m.harts) && len(m.ready) > 0; h++ {
		if m.harts[h] != -1 {
			continue
		}
		ti := m.ready[0]
		m.ready = m.ready[1:]
		t := &m.threads[ti]
		t.state = mtRunning
		t.hart = h
		m.harts[h] = ti
		m.emit(pmu.SchedSwitchIn, ti, h, "", -1)
		m.planSegment(h)
	}
}

// planSegment sets until[h] for the occupant's next run segment:
// min(burst end, quantum end). Threads at a non-compute op get a
// zero-length segment so step() advances them immediately.
func (m *MTSim) planSegment(h int) {
	ti := m.harts[h]
	t := &m.threads[ti]
	var seg uint64
	if t.pc < len(t.ops) && t.ops[t.pc].Kind == OpCompute {
		seg = t.burstRem
		if seg == 0 {
			seg = t.ops[t.pc].Cycles
			t.burstRem = seg
		}
	}
	if m.cfg.TimeSlice > 0 && seg > m.cfg.TimeSlice {
		seg = m.cfg.TimeSlice
	}
	m.segAt[h] = m.now
	m.until[h] = m.now + seg
}

// release hands the CPU back: the occupant leaves hart h.
func (m *MTSim) release(h int) {
	ti := m.harts[h]
	m.harts[h] = -1
	m.threads[ti].hart = -1
}

// advance runs the occupant of hart h up to m.now (its segment end) and
// then executes ops until the thread blocks, is preempted, or finishes.
func (m *MTSim) advance(h int) error {
	ti := m.harts[h]
	t := &m.threads[ti]
	ran := m.now - m.segAt[h]
	t.stat.OnCPU += ran
	m.pmu.Add(pmu.EvCycles, ran)
	if t.pc < len(t.ops) && t.ops[t.pc].Kind == OpCompute {
		if ran >= t.burstRem {
			t.burstRem = 0
		} else {
			t.burstRem -= ran
		}
		if t.burstRem > 0 {
			// Quantum expired mid-burst: preempt.
			m.emit(pmu.SchedSwitchOut, ti, h, "", -1)
			t.state = mtRunnable
			m.release(h)
			m.ready = append(m.ready, ti)
			return nil
		}
		m.pmu.Add(pmu.EvInstRetired, t.ops[t.pc].Cycles) // IPC 1 per burst
		t.pc++
	}
	// Execute zero-cost ops until the thread blocks or needs CPU again.
	for {
		if t.pc >= len(t.ops) {
			t.iter++
			if t.iter >= t.loops {
				m.emit(pmu.SchedSwitchOut, ti, h, "", -1)
				t.state = mtDone
				m.release(h)
				return nil
			}
			t.pc = 0
		}
		op := t.ops[t.pc]
		switch op.Kind {
		case OpCompute:
			m.planSegment(h)
			return nil
		case OpLock:
			l := m.lockOf(op.Obj)
			if l.holder == -1 {
				l.holder = ti
				t.pc++
				continue
			}
			m.emit(pmu.SchedBlockLock, ti, h, op.Obj, l.holder)
			t.state = mtBlockedLock
			l.waiters = append(l.waiters, ti)
			m.release(h)
			return nil
		case OpUnlock:
			l := m.lockOf(op.Obj)
			if l.holder != ti {
				return fmt.Errorf("sim: thread %d unlocks %q held by %d", ti, op.Obj, l.holder)
			}
			t.pc++
			if len(l.waiters) == 0 {
				l.holder = -1
				continue
			}
			// FIFO hand-off: ownership transfers directly.
			w := l.waiters[0]
			l.waiters = l.waiters[1:]
			l.holder = w
			m.emit(pmu.SchedUnblockLock, w, -1, op.Obj, ti)
			m.threads[w].state = mtRunnable
			m.threads[w].pc++ // past its OpLock
			m.ready = append(m.ready, w)
		case OpIO:
			start := m.now
			if m.devFree[op.Obj] > start {
				start = m.devFree[op.Obj]
			}
			done := start + op.Cycles
			m.devFree[op.Obj] = done
			m.emit(pmu.SchedBlockIO, ti, h, op.Obj, -1)
			t.state = mtBlockedIO
			t.pc++
			m.ios = append(m.ios, ioCompletion{at: done, thread: ti, obj: op.Obj})
			m.release(h)
			return nil
		}
	}
}

// Run executes the simulation for at most maxCycles cycles (0 means
// unbounded) and returns the event log and accounting.
func (m *MTSim) Run(maxCycles uint64) (MTResult, error) {
	// Every thread is born runnable at cycle 0; the explicit wakeup
	// anchors each thread's wall-time window so runnable wait before the
	// first switch-in is observable downstream.
	for ti := range m.threads {
		m.emit(pmu.SchedWakeup, ti, -1, "", -1)
	}
	m.dispatch()
	for {
		allDone := true
		for i := range m.threads {
			if m.threads[i].state != mtDone {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		// Next event: earliest hart segment end or IO completion.
		next := uint64(0)
		have := false
		for h, ti := range m.harts {
			if ti == -1 {
				continue
			}
			if !have || m.until[h] < next {
				next, have = m.until[h], true
			}
		}
		for _, io := range m.ios {
			if !have || io.at < next {
				next, have = io.at, true
			}
		}
		if !have {
			return m.result(false), ErrDeadlock
		}
		if maxCycles > 0 && next > maxCycles {
			m.now = maxCycles
			return m.result(false), nil
		}
		m.now = next
		// IO completions first (lowest thread id first for determinism).
		for {
			best := -1
			for i, io := range m.ios {
				if io.at != m.now {
					continue
				}
				if best == -1 || io.thread < m.ios[best].thread {
					best = i
				}
			}
			if best == -1 {
				break
			}
			io := m.ios[best]
			m.ios = append(m.ios[:best], m.ios[best+1:]...)
			m.emit(pmu.SchedUnblockIO, io.thread, -1, io.obj, -1)
			m.threads[io.thread].state = mtRunnable
			m.ready = append(m.ready, io.thread)
		}
		// Then hart segment ends, in hart order.
		for h := 0; h < len(m.harts); h++ {
			ti := m.harts[h]
			if ti == -1 || m.until[h] != m.now {
				continue
			}
			if err := m.advance(h); err != nil {
				return m.result(false), err
			}
		}
		m.dispatch()
	}
	// Account off-CPU waits from the event log so the simulator's own
	// numbers and the wait-graph partition are derived identically.
	m.accountWaits()
	return m.result(true), nil
}

// accountWaits derives LockWait/IOWait/RunnableWait per thread by
// replaying the event log.
func (m *MTSim) accountWaits() {
	type pend struct {
		at    uint64
		state mtState
	}
	last := make([]pend, len(m.threads))
	for i := range last {
		last[i] = pend{at: 0, state: mtRunnable}
	}
	for _, ev := range m.log.Events() {
		st := &m.threads[ev.Thread].stat
		p := &last[ev.Thread]
		dt := ev.Cycle - p.at
		switch p.state {
		case mtBlockedLock:
			st.LockWait += dt
		case mtBlockedIO:
			st.IOWait += dt
		case mtRunnable:
			st.RunnableWait += dt
		}
		switch ev.Class {
		case pmu.SchedSwitchIn:
			p.state = mtRunning
		case pmu.SchedSwitchOut, pmu.SchedWakeup, pmu.SchedUnblockLock, pmu.SchedUnblockIO:
			p.state = mtRunnable
		case pmu.SchedBlockLock:
			p.state = mtBlockedLock
		case pmu.SchedBlockIO:
			p.state = mtBlockedIO
		}
		p.at = ev.Cycle
	}
}

func (m *MTSim) result(done bool) MTResult {
	res := MTResult{
		Cycles: m.now,
		Events: m.log.Events(),
		Counts: m.pmu.Snapshot(),
		Done:   done,
	}
	for i := range m.threads {
		res.PerThread = append(res.PerThread, m.threads[i].stat)
	}
	return res
}

// Events returns the scheduler event log recorded so far.
func (m *MTSim) Events() []pmu.SchedEvent { return m.log.Events() }
