package testutil

import (
	"bufio"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// SSEEvent is one parsed Server-Sent Event: the `id:`, `event:` and raw
// `data:` fields. Data stays raw bytes so the helper is agnostic to the
// payload shape; callers unmarshal into their own types.
type SSEEvent struct {
	ID    uint64
	Event string
	Data  []byte
}

// SSESubscribe attaches to a text/event-stream URL and delivers parsed
// events on the returned channel until the stream closes or the stop
// function is called. Extra headers (Last-Event-ID, tenants) ride along.
func SSESubscribe(t testing.TB, url string, header http.Header) (<-chan SSEEvent, func()) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw := ReadBody(t, resp)
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("subscribe content type %q, want text/event-stream", ct)
	}
	events := make(chan SSEEvent, 256)
	go func() {
		defer close(events)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		var e SSEEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				events <- e
				e = SSEEvent{}
			case strings.HasPrefix(line, "id: "):
				e.ID, _ = strconv.ParseUint(line[4:], 10, 64)
			case strings.HasPrefix(line, "event: "):
				e.Event = line[7:]
			case strings.HasPrefix(line, "data: "):
				e.Data = append([]byte(nil), line[6:]...)
			}
		}
	}()
	return events, func() { resp.Body.Close() }
}

// NextSSE waits for the next event with a generous deadline, failing the
// test on stream close or timeout.
func NextSSE(t testing.TB, events <-chan SSEEvent) SSEEvent {
	t.Helper()
	select {
	case e, ok := <-events:
		if !ok {
			t.Fatal("SSE stream closed early")
		}
		return e
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for SSE event")
		panic("unreachable")
	}
}
