// Package testutil is the shared scaffolding for SPIRE's service-level
// test suites: deterministic model training, canned workloads,
// start-a-server-on-an-ephemeral-port, golden-file comparison,
// Prometheus-exposition scraping, and SSE draining. It exists because
// internal/serve, internal/client, internal/cluster and the cmd/spire
// e2e suite all grew private copies of the same helpers.
//
// The package deliberately imports only internal/core (plus the
// standard library), never the serving packages, so in-package tests of
// internal/serve and friends can use it without an import cycle.
package testutil

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"spire/internal/core"
)

// TrainModel builds a small deterministic two-metric ensemble; scale
// perturbs the sample values so different scales give different
// content-addressed fingerprints. It returns the ensemble and its
// canonical Save encoding (a valid /v1/models upload body).
func TrainModel(t testing.TB, scale float64) (*core.Ensemble, []byte) {
	t.Helper()
	var d core.Dataset
	for _, metric := range []string{"m1", "m2"} {
		for i := 1; i <= 16; i++ {
			d.Add(core.Sample{
				Metric: metric,
				T:      1,
				W:      float64(i) * scale,
				M:      float64(17 - i),
				Window: i,
			})
		}
	}
	ens, err := core.Train(d, core.TrainOptions{WorkUnit: "instructions", TimeUnit: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return ens, buf.Bytes()
}

// WriteModel persists TrainModel(scale)'s canonical encoding under dir
// and returns the file path.
func WriteModel(t testing.TB, dir string, scale float64) string {
	t.Helper()
	_, raw := TrainModel(t, scale)
	path := filepath.Join(dir, "model.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Samples is a small workload overlapping the TrainModel metrics,
// including an unknown metric and an invalid sample that indexing drops.
func Samples() []core.Sample {
	return []core.Sample{
		{Metric: "m1", T: 1, W: 4, M: 2, Window: 1},
		{Metric: "m2", T: 1, W: 4, M: 8, Window: 1},
		{Metric: "m1", T: 2, W: 10, M: 3, Window: 2},
		{Metric: "unknown.metric", T: 1, W: 1, M: 1, Window: 1},
		{Metric: "m2", T: -1, W: 1, M: 1}, // invalid: dropped by indexing
	}
}

// Workload builds the k-th deterministic 400-sample soak workload;
// distinct k give distinct workload content hashes.
func Workload(k int) []core.Sample {
	samples := make([]core.Sample, 0, 400)
	for i := 0; i < 400; i++ {
		metric := "m1"
		if i%2 == 1 {
			metric = "m2"
		}
		samples = append(samples, core.Sample{
			Metric: metric,
			T:      1,
			W:      float64(1+i%16) + float64(k)/64,
			M:      float64(1 + (i*7)%16),
			Window: i,
		})
	}
	return samples
}

// StartHTTP serves h on an ephemeral loopback port and tears it down
// with the test.
func StartHTTP(t testing.TB, h http.Handler) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// PostJSON marshals body and POSTs it as application/json.
func PostJSON(t testing.TB, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// ReadBody drains and closes a response body.
func ReadBody(t testing.TB, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// HTTPGet fetches url and returns status and body.
func HTTPGet(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, ReadBody(t, resp)
}

// HTTPPost posts body and returns status, headers and response body.
func HTTPPost(t testing.TB, url, contentType string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header, ReadBody(t, resp)
}

// ScrapeMetrics fetches base's /metrics exposition over a clean
// connection.
func ScrapeMetrics(t testing.TB, base string) string {
	t.Helper()
	code, raw := HTTPGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics status %d: %s", code, raw)
	}
	return string(raw)
}

// MetricValue returns the value of the exposition sample line that
// starts with series (exact series name, labels included), or 0 when
// absent.
func MetricValue(t testing.TB, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("unparsable sample %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// MustMetric is MetricValue that fails the test when the series is
// absent from the exposition.
func MustMetric(t testing.TB, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("unparsable sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", series, exposition)
	return 0
}

// SumMetric sums every sample of a metric family whose label set
// matches all given `k="v"` fragments (label order independent).
func SumMetric(t testing.TB, exposition, family string, labels ...string) float64 {
	t.Helper()
	re := regexp.MustCompile(`^` + regexp.QuoteMeta(family) + `\{([^}]*)\} ([0-9eE.+-]+)$`)
	var sum float64
	for _, line := range strings.Split(exposition, "\n") {
		m := re.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ok := true
		for _, l := range labels {
			if !strings.Contains(m[1], l) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("unparsable sample %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// AssertServeBooksBalance asserts the serving tier's exact
// admission-accounting identity on the estimate route: requests ==
// admitted + Σ rejected{reason} + degraded-served, with the queue and
// inflight gauges back at zero.
func AssertServeBooksBalance(t testing.TB, exposition string) {
	t.Helper()
	requests := SumMetric(t, exposition, "spire_http_requests_total", `route="/v1/estimate"`)
	admitted := MetricValue(t, exposition, "spire_admission_admitted_total")
	degraded := MetricValue(t, exposition, "spire_estimates_degraded_total")
	var rejected float64
	for _, reason := range []string{"quota", "queue_full", "deadline"} {
		rejected += MetricValue(t, exposition, fmt.Sprintf(`spire_admission_rejected_total{reason=%q}`, reason))
	}
	if requests != admitted+rejected+degraded {
		t.Errorf("books don't balance: requests %v != admitted %v + rejected %v + degraded %v",
			requests, admitted, rejected, degraded)
	}
	if depth := MetricValue(t, exposition, "spire_admission_queue_depth"); depth != 0 {
		t.Errorf("queue depth %v after soak, want 0", depth)
	}
	if inflight := MetricValue(t, exposition, "spire_admission_inflight"); inflight != 0 {
		t.Errorf("admission inflight %v after soak, want 0", inflight)
	}
}

// AssertRouteBooksBalance asserts the routing tier's accounting
// identity for one route: every accepted request resolved to exactly
// one outcome — relayed from the home shard, relayed after failover, or
// rejected by the router itself — and the router's inflight gauge is
// back at zero.
func AssertRouteBooksBalance(t testing.TB, exposition, route string) {
	t.Helper()
	label := fmt.Sprintf("route=%q", route)
	requests := SumMetric(t, exposition, "spire_route_requests_total", label)
	relayed := SumMetric(t, exposition, "spire_route_relayed_total", label)
	rejected := SumMetric(t, exposition, "spire_route_rejected_total", label)
	if requests != relayed+rejected {
		t.Errorf("route books don't balance for %s: requests %v != relayed %v + rejected %v",
			route, requests, relayed, rejected)
	}
	if inflight := MetricValue(t, exposition, "spire_route_inflight_requests"); inflight != 0 {
		t.Errorf("router inflight %v after soak, want 0", inflight)
	}
}

// Golden compares got against the golden file at path, or rewrites the
// file when update is true (the suite's -update flag).
func Golden(t testing.TB, path string, got []byte, update bool) {
	t.Helper()
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden %s (re-run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output diverges from golden %s\ngot:  %s\nwant: %s", path, got, want)
	}
}
