package mem

import "testing"

func TestNewPrefetcherDisabled(t *testing.T) {
	if NewPrefetcher(PrefetchConfig{}) != nil {
		t.Error("disabled config should return nil")
	}
}

func TestPrefetcherDetectsUnitStride(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Enable: true, Degree: 2, MinConfidence: 2})
	var issued []uint64
	for line := uint64(100); line < 120; line++ {
		issued = append(issued, p.Observe(line)...)
	}
	if len(issued) == 0 {
		t.Fatal("unit-stride stream never triggered prefetch")
	}
	// Prefetches must be ahead of the miss stream.
	last := issued[len(issued)-1]
	if last <= 119 {
		t.Errorf("last prefetch %d not ahead of stream", last)
	}
	if p.Issued() != uint64(len(issued)) {
		t.Errorf("Issued = %d, want %d", p.Issued(), len(issued))
	}
}

func TestPrefetcherDetectsLargeStride(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Enable: true, Degree: 1, MinConfidence: 2})
	var issued []uint64
	for i := uint64(0); i < 10; i++ {
		issued = append(issued, p.Observe(1000+8*i)...)
	}
	if len(issued) == 0 {
		t.Fatal("stride-8 stream never triggered prefetch")
	}
	for _, line := range issued {
		if (line-1000)%8 != 0 {
			t.Errorf("prefetch %d off the stride grid", line)
		}
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Enable: true, Degree: 2, MinConfidence: 2})
	// Pseudo-random lines far apart: no stable stride.
	seq := []uint64{5000, 91, 7777, 1234567, 42, 999999, 31337, 2, 888888, 17}
	var issued int
	for _, line := range seq {
		issued += len(p.Observe(line))
	}
	if issued != 0 {
		t.Errorf("random stream triggered %d prefetches", issued)
	}
}

func TestPrefetcherMultipleStreams(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Enable: true, Streams: 4, Degree: 1, MinConfidence: 2})
	var issued int
	// Two interleaved unit-stride streams far apart.
	for i := uint64(0); i < 12; i++ {
		issued += len(p.Observe(1_000 + i))
		issued += len(p.Observe(1_000_000 + i))
	}
	if issued < 12 {
		t.Errorf("interleaved streams produced only %d prefetches", issued)
	}
}

func TestPrefetcherDuplicateMiss(t *testing.T) {
	p := NewPrefetcher(PrefetchConfig{Enable: true, Degree: 1, MinConfidence: 1})
	p.Observe(10)
	if got := p.Observe(10); got != nil {
		t.Errorf("duplicate line should not prefetch, got %v", got)
	}
}

func TestHierarchyPrefetchHidesStreamLatency(t *testing.T) {
	base := HierarchyConfig{
		L1I:  CacheConfig{Name: "L1I", SizeBytes: 1 << 12, LineBytes: 64, Ways: 2, LatencyCycles: 1},
		L1D:  CacheConfig{Name: "L1D", SizeBytes: 1 << 12, LineBytes: 64, Ways: 2, LatencyCycles: 4},
		L2:   CacheConfig{Name: "L2", SizeBytes: 1 << 15, LineBytes: 64, Ways: 4, LatencyCycles: 10},
		L3:   CacheConfig{Name: "L3", SizeBytes: 1 << 17, LineBytes: 64, Ways: 8, LatencyCycles: 26},
		DRAM: DRAMConfig{LatencyCycles: 200, BytesPerCycle: 16, LineBytes: 64},
	}
	run := func(pf bool) uint64 {
		cfg := base
		cfg.Prefetch = PrefetchConfig{Enable: pf, Degree: 4, MinConfidence: 2}
		h := NewHierarchy(cfg)
		var total uint64
		now := uint64(0)
		for i := uint64(0); i < 4000; i++ {
			r := h.AccessData(0x100000+i*64, now)
			total += r.DoneAt - now
			now = r.DoneAt
		}
		return total
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Errorf("prefetcher did not help a unit stream: %d vs %d cycles", with, without)
	}
	if float64(with) > 0.6*float64(without) {
		t.Errorf("prefetcher benefit too small on a pure stream: %d vs %d", with, without)
	}
}

func TestHierarchyPrefetchDoesNotHelpRandom(t *testing.T) {
	base := HierarchyConfig{
		L1I:  CacheConfig{Name: "L1I", SizeBytes: 1 << 12, LineBytes: 64, Ways: 2, LatencyCycles: 1},
		L1D:  CacheConfig{Name: "L1D", SizeBytes: 1 << 12, LineBytes: 64, Ways: 2, LatencyCycles: 4},
		L2:   CacheConfig{Name: "L2", SizeBytes: 1 << 15, LineBytes: 64, Ways: 4, LatencyCycles: 10},
		L3:   CacheConfig{Name: "L3", SizeBytes: 1 << 17, LineBytes: 64, Ways: 8, LatencyCycles: 26},
		DRAM: DRAMConfig{LatencyCycles: 200, BytesPerCycle: 16, LineBytes: 64},
	}
	run := func(pf bool) uint64 {
		cfg := base
		cfg.Prefetch = PrefetchConfig{Enable: pf, Degree: 4, MinConfidence: 2}
		h := NewHierarchy(cfg)
		var total uint64
		now := uint64(0)
		x := uint64(88172645463325252)
		for i := 0; i < 3000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			r := h.AccessData(0x100000+(x%(1<<26))&^63, now)
			total += r.DoneAt - now
			now = r.DoneAt
		}
		return total
	}
	without := run(false)
	with := run(true)
	// Random traffic: prefetching should change little (within 10%).
	lo, hi := float64(without)*0.9, float64(without)*1.1
	if float64(with) < lo || float64(with) > hi {
		t.Errorf("prefetcher distorted random traffic: %d vs %d cycles", with, without)
	}
}
