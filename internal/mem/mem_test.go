package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return NewCache(CacheConfig{Name: "T", SizeBytes: 1024, LineBytes: 64, Ways: 2, LatencyCycles: 1})
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "a", SizeBytes: 1024, LineBytes: 63, Ways: 2},       // line not pow2
		{Name: "b", SizeBytes: 1000, LineBytes: 64, Ways: 2},       // size not divisible
		{Name: "c", SizeBytes: 1024, LineBytes: 64, Ways: 0},       // no ways
		{Name: "d", SizeBytes: 64 * 3 * 1, LineBytes: 64, Ways: 1}, // 3 sets not pow2
		{Name: "e", SizeBytes: -64, LineBytes: 64, Ways: 1},        // negative
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q should be invalid", cfg.Name)
		}
	}
	good := CacheConfig{Name: "g", SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewCachePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCache(CacheConfig{Name: "bad", SizeBytes: 10, LineBytes: 3, Ways: 1})
}

func TestCacheHitMiss(t *testing.T) {
	c := smallCache()
	if c.Access(0x100) {
		t.Error("first access should miss")
	}
	if !c.Access(0x100) {
		t.Error("second access should hit")
	}
	if !c.Access(0x13f) {
		t.Error("same line should hit")
	}
	if c.Access(0x140) {
		t.Error("next line should miss")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits 2 misses", st)
	}
	if st.Accesses() != 4 {
		t.Errorf("accesses = %d, want 4", st.Accesses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1024 B, 64 B lines, 2 ways -> 8 sets. Three lines mapping to set 0:
	// 0x000, 0x200, 0x400 (stride 512).
	c := smallCache()
	c.Access(0x000)
	c.Access(0x200)
	c.Access(0x000) // touch to make 0x200 the LRU
	c.Access(0x400) // evicts 0x200
	if !c.Access(0x000) {
		t.Error("0x000 should still be resident")
	}
	if c.Access(0x200) {
		t.Error("0x200 should have been evicted")
	}
}

func TestCacheFlush(t *testing.T) {
	c := smallCache()
	c.Access(0x80)
	c.Flush()
	if c.Access(0x80) {
		t.Error("flush should invalidate lines")
	}
}

// TestCacheStatsInvariant: hits+misses == accesses under random load, and
// working sets that fit are all-hits after one pass.
func TestCacheStatsInvariant(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache()
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		st := c.Stats()
		return st.Hits+st.Misses == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheResidentSetAllHits(t *testing.T) {
	c := NewCache(CacheConfig{Name: "T", SizeBytes: 4096, LineBytes: 64, Ways: 4, LatencyCycles: 1})
	// Touch 2 KiB (fits in 4 KiB) twice; the second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		c.ResetStats()
		for a := uint64(0); a < 2048; a += 64 {
			c.Access(a)
		}
		if pass == 1 {
			st := c.Stats()
			if st.Misses != 0 {
				t.Errorf("resident set produced %d misses on pass 2", st.Misses)
			}
		}
	}
}

func TestDRAMBandwidthQueueing(t *testing.T) {
	d := NewDRAM(DRAMConfig{LatencyCycles: 100, BytesPerCycle: 8, LineBytes: 64})
	// Service time = 8 cycles/line. Two simultaneous requests: the second
	// queues behind the first.
	t1 := d.Access(0)
	t2 := d.Access(0)
	if t1 != 100 {
		t.Errorf("first access done at %d, want 100", t1)
	}
	if t2 != 108 {
		t.Errorf("second access done at %d, want 108 (8 cycles of queueing)", t2)
	}
	if d.Reads() != 2 {
		t.Errorf("reads = %d, want 2", d.Reads())
	}
	if d.QueueCycles() != 8 {
		t.Errorf("queue cycles = %d, want 8", d.QueueCycles())
	}
	// After the channel drains, no queueing.
	t3 := d.Access(1000)
	if t3 != 1100 {
		t.Errorf("idle access done at %d, want 1100", t3)
	}
}

func TestNewDRAMPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDRAM(DRAMConfig{LatencyCycles: 0, BytesPerCycle: 8, LineBytes: 64})
}

func testHierarchy() *Hierarchy {
	return NewHierarchy(HierarchyConfig{
		L1I:  CacheConfig{Name: "L1I", SizeBytes: 1 << 12, LineBytes: 64, Ways: 2, LatencyCycles: 1},
		L1D:  CacheConfig{Name: "L1D", SizeBytes: 1 << 12, LineBytes: 64, Ways: 2, LatencyCycles: 4},
		L2:   CacheConfig{Name: "L2", SizeBytes: 1 << 14, LineBytes: 64, Ways: 4, LatencyCycles: 10},
		L3:   CacheConfig{Name: "L3", SizeBytes: 1 << 16, LineBytes: 64, Ways: 8, LatencyCycles: 26},
		DRAM: DRAMConfig{LatencyCycles: 100, BytesPerCycle: 8, LineBytes: 64},
	})
}

func TestHierarchyLatencyAccumulates(t *testing.T) {
	h := testHierarchy()
	// Cold access goes all the way to DRAM: 4+10+26 cache latency plus
	// 100 DRAM latency.
	r := h.AccessData(0x1234, 0)
	if r.Level != LevelDRAM {
		t.Fatalf("cold access level = %v, want DRAM", r.Level)
	}
	if r.DoneAt != 4+10+26+100 {
		t.Errorf("cold access done at %d, want 140", r.DoneAt)
	}
	// Now resident in L1.
	r = h.AccessData(0x1234, 1000)
	if r.Level != LevelL1 || r.DoneAt != 1004 {
		t.Errorf("warm access = %+v, want L1 at 1004", r)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := testHierarchy()
	h.AccessData(0x40, 0) // DRAM, fills all levels
	// Evict from L1 only: touch enough conflicting lines. L1 is 4 KiB,
	// 2-way, 32 sets; lines with stride 2 KiB collide in set 0.
	h.AccessData(0x40+2048, 10)
	h.AccessData(0x40+4096, 20)
	r := h.AccessData(0x40, 30)
	if r.Level != LevelL2 {
		t.Errorf("after L1 eviction, access level = %v, want L2", r.Level)
	}
}

func TestHierarchyInstructionSide(t *testing.T) {
	h := testHierarchy()
	r := h.AccessInst(0x8000, 0)
	if r.Level != LevelDRAM {
		t.Errorf("cold fetch level = %v, want DRAM", r.Level)
	}
	r = h.AccessInst(0x8000, 500)
	if r.Level != LevelL1 {
		t.Errorf("warm fetch level = %v, want L1", r.Level)
	}
	// Instruction fills share L2: data access to the same line hits L2.
	r = h.AccessData(0x8000, 600)
	if r.Level != LevelL2 {
		t.Errorf("data access to fetched line = %v, want L2 (shared)", r.Level)
	}
}

func TestLevelString(t *testing.T) {
	names := map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelDRAM: "DRAM", Level(9): "level(9)"}
	for l, want := range names {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, got, want)
		}
	}
}

func TestDoneAtMonotonicUnderLoad(t *testing.T) {
	h := testHierarchy()
	rng := rand.New(rand.NewSource(5))
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		r := h.AccessData(uint64(rng.Intn(1<<22))&^63, now)
		if r.DoneAt < now {
			t.Fatalf("access completed before it started: now=%d done=%d", now, r.DoneAt)
		}
		now += uint64(rng.Intn(3))
	}
}
