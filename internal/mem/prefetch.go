package mem

// PrefetchConfig describes the optional L2 stride prefetcher. The
// prefetcher watches the L1D miss stream: when consecutive misses follow
// a stable stride, it fills the next Degree lines into L2 (and L3) ahead
// of demand, hiding DRAM latency for regular streams while leaving
// irregular (pointer-chasing) traffic untouched.
type PrefetchConfig struct {
	// Enable turns the prefetcher on.
	Enable bool
	// Streams is the number of concurrent stride streams tracked.
	Streams int
	// Degree is how many lines ahead each confirmed stream fetches.
	Degree int
	// MinConfidence is how many consecutive stride matches are needed
	// before prefetching begins.
	MinConfidence int
}

// stream is one tracked miss stream.
type stream struct {
	lastLine   uint64
	stride     int64
	confidence int
	valid      bool
	lastUse    uint64
}

// Prefetcher is a stride prefetcher in front of L2.
type Prefetcher struct {
	cfg     PrefetchConfig
	streams []stream
	clock   uint64

	issued uint64 // prefetches issued
	hits   uint64 // demand accesses that hit a prefetched line
}

// NewPrefetcher builds the prefetcher; a nil return means disabled.
func NewPrefetcher(cfg PrefetchConfig) *Prefetcher {
	if !cfg.Enable {
		return nil
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 8
	}
	if cfg.Degree <= 0 {
		cfg.Degree = 2
	}
	if cfg.MinConfidence <= 0 {
		cfg.MinConfidence = 2
	}
	return &Prefetcher{cfg: cfg, streams: make([]stream, cfg.Streams)}
}

// Issued returns the number of prefetch fills issued.
func (p *Prefetcher) Issued() uint64 { return p.issued }

// Hits returns the number of observed accesses matching a prior
// prefetch target (approximated by stride-stream continuation).
func (p *Prefetcher) Hits() uint64 { return p.hits }

// Observe records an L1D miss at lineAddr (the address divided by the
// line size) and returns the lines to prefetch, if any.
func (p *Prefetcher) Observe(lineAddr uint64) []uint64 {
	p.clock++
	// Find the stream whose last line is closest to this address.
	best := -1
	var bestDelta int64
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		delta := int64(lineAddr) - int64(s.lastLine)
		if delta == 0 {
			return nil // duplicate miss, same line
		}
		if best == -1 || abs64(delta) < abs64(bestDelta) {
			best, bestDelta = i, delta
		}
	}
	// A stream "matches" when the delta repeats its stride and is small
	// enough to be a plausible stream (within 16 lines).
	if best >= 0 && abs64(bestDelta) <= 16 {
		s := &p.streams[best]
		if s.stride == bestDelta {
			s.confidence++
			p.hits++
		} else {
			s.stride = bestDelta
			s.confidence = 1
		}
		s.lastLine = lineAddr
		s.lastUse = p.clock
		if s.confidence >= p.cfg.MinConfidence {
			out := make([]uint64, 0, p.cfg.Degree)
			next := int64(lineAddr)
			for d := 0; d < p.cfg.Degree; d++ {
				next += s.stride
				if next < 0 {
					break
				}
				out = append(out, uint64(next))
			}
			p.issued += uint64(len(out))
			return out
		}
		return nil
	}
	// Allocate a new stream, evicting the least recently used.
	victim := 0
	for i := range p.streams {
		if !p.streams[i].valid {
			victim = i
			break
		}
		if p.streams[i].lastUse < p.streams[victim].lastUse {
			victim = i
		}
	}
	p.streams[victim] = stream{lastLine: lineAddr, valid: true, lastUse: p.clock}
	return nil
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
