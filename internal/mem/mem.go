// Package mem models the memory hierarchy the CPU simulator runs against:
// set-associative write-allocate caches with LRU replacement and a DRAM
// back end with both latency and bandwidth limits. It substitutes for the
// paper's physical DDR4 system; what matters for SPIRE is that the model
// produces distinct latency-bound and bandwidth-bound regimes and per-level
// hit/miss event streams.
package mem

import (
	"fmt"
	"math/bits"
)

// Replacement selects a cache's victim policy.
type Replacement uint8

const (
	// ReplLRU evicts the least recently used way (the default).
	ReplLRU Replacement = iota
	// ReplRandom evicts a pseudo-random way. Unlike LRU it degrades
	// gracefully under cyclic thrash (a loop slightly bigger than the
	// cache keeps a partial hit rate instead of dropping to zero),
	// which is how decoded-uop caches behave in practice.
	ReplRandom
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	// Name labels the level in stats (e.g. "L1D").
	Name string
	// SizeBytes is the total capacity; must be a multiple of
	// LineBytes*Ways.
	SizeBytes int
	// LineBytes is the cache line size; must be a power of two.
	LineBytes int
	// Ways is the set associativity.
	Ways int
	// LatencyCycles is the access (hit) latency contributed by this
	// level.
	LatencyCycles uint64
	// Replacement is the victim policy; zero value is LRU.
	Replacement Replacement
}

// Validate checks the configuration for structural errors.
func (c CacheConfig) Validate() error {
	if c.LineBytes <= 0 || bits.OnesCount(uint(c.LineBytes)) != 1 {
		return fmt.Errorf("mem: %s line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("mem: %s ways %d", c.Name, c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("mem: %s size %d not divisible into %d-way sets of %d-byte lines",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("mem: %s set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// CacheStats counts a level's activity.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// Accesses returns hits + misses.
func (s CacheStats) Accesses() uint64 { return s.Hits + s.Misses }

// cacheLine is one way of a set.
type cacheLine struct {
	tag   uint64
	valid bool
	lru   uint64 // last-touch stamp; larger = more recent
}

// Cache is a set-associative LRU cache.
type Cache struct {
	cfg      CacheConfig
	sets     [][]cacheLine
	setMask  uint64
	lineBits uint
	stamp    uint64
	rngState uint64
	stats    CacheStats
}

// NewCache builds a cache from a validated config; it panics on an
// invalid config since cache shapes are compile-time constants of the
// simulated machine.
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	sets := make([][]cacheLine, nSets)
	lines := make([]cacheLine, nSets*cfg.Ways)
	for i := range sets {
		sets[i] = lines[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setMask:  uint64(nSets - 1),
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		rngState: 0x9E3779B97F4A7C15, // fixed seed: runs stay reproducible
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns the accumulated hit/miss counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// ResetStats zeroes the counters without disturbing cache contents.
func (c *Cache) ResetStats() { c.stats = CacheStats{} }

// Access looks up addr, filling the line on a miss (write-allocate), and
// reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	lineAddr := addr >> c.lineBits
	set := c.sets[lineAddr&c.setMask]
	c.stamp++
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].lru = c.stamp
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	// Fill: choose an invalid way, else a victim per the policy.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		switch c.cfg.Replacement {
		case ReplRandom:
			// xorshift: cheap deterministic pseudo-randomness.
			c.rngState ^= c.rngState << 13
			c.rngState ^= c.rngState >> 7
			c.rngState ^= c.rngState << 17
			victim = int(c.rngState % uint64(len(set)))
		default:
			victim = 0
			for i := 1; i < len(set); i++ {
				if set[i].lru < set[victim].lru {
					victim = i
				}
			}
		}
	}
	set[victim] = cacheLine{tag: lineAddr, valid: true, lru: c.stamp}
	return false
}

// Flush invalidates all lines (stats are preserved).
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = cacheLine{}
		}
	}
}

// DRAMConfig describes the memory back end.
type DRAMConfig struct {
	// LatencyCycles is the idle-system load-to-use latency.
	LatencyCycles uint64
	// BytesPerCycle is the sustainable bandwidth; each line transfer
	// occupies the channel for LineBytes/BytesPerCycle cycles.
	BytesPerCycle float64
	// LineBytes is the transfer granularity (cache line size).
	LineBytes int
}

// DRAM models main memory with a single busy channel: requests queue
// behind each other for bandwidth while still paying full latency.
type DRAM struct {
	cfg       DRAMConfig
	busyUntil uint64
	serviceCy uint64
	// Reads counts line transfers served.
	reads uint64
	// StallCycles accumulates time requests spent waiting for the
	// channel (a bandwidth-boundedness signal).
	queueCycles uint64
}

// NewDRAM builds the DRAM model; it panics on nonsensical configs.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.LatencyCycles == 0 || cfg.BytesPerCycle <= 0 || cfg.LineBytes <= 0 {
		panic(fmt.Sprintf("mem: invalid DRAM config %+v", cfg))
	}
	service := uint64(float64(cfg.LineBytes) / cfg.BytesPerCycle)
	if service == 0 {
		service = 1
	}
	return &DRAM{cfg: cfg, serviceCy: service}
}

// Access issues a line fetch at cycle now and returns the cycle the data
// arrives.
func (d *DRAM) Access(now uint64) uint64 {
	start := now
	if d.busyUntil > start {
		d.queueCycles += d.busyUntil - start
		start = d.busyUntil
	}
	d.busyUntil = start + d.serviceCy
	d.reads++
	return start + d.cfg.LatencyCycles
}

// Reads returns the number of line transfers served.
func (d *DRAM) Reads() uint64 { return d.reads }

// QueueCycles returns total cycles requests spent queued for bandwidth.
func (d *DRAM) QueueCycles() uint64 { return d.queueCycles }

// Level identifies where an access was satisfied.
type Level uint8

// Hierarchy levels, nearest first.
const (
	LevelL1 Level = iota + 1
	LevelL2
	LevelL3
	LevelDRAM
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelDRAM:
		return "DRAM"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// AccessResult describes a completed hierarchy access.
type AccessResult struct {
	// Level is where the access hit.
	Level Level
	// DoneAt is the cycle the data is available.
	DoneAt uint64
}

// HierarchyConfig assembles a full memory system.
type HierarchyConfig struct {
	L1I, L1D, L2, L3 CacheConfig
	DRAM             DRAMConfig
	// Prefetch configures the optional L2 stride prefetcher.
	Prefetch PrefetchConfig
}

// Hierarchy is a three-level cache hierarchy with split L1s and unified
// L2/L3, backed by DRAM, optionally fronted by a stride prefetcher on
// the L1D miss stream.
type Hierarchy struct {
	L1I, L1D, L2, L3 *Cache
	DRAM             *DRAM
	Prefetcher       *Prefetcher
}

// NewHierarchy builds the hierarchy; panics on invalid configs.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1I:        NewCache(cfg.L1I),
		L1D:        NewCache(cfg.L1D),
		L2:         NewCache(cfg.L2),
		L3:         NewCache(cfg.L3),
		DRAM:       NewDRAM(cfg.DRAM),
		Prefetcher: NewPrefetcher(cfg.Prefetch),
	}
}

// AccessData walks the data-side hierarchy for addr starting at cycle
// now. Writes are treated as write-allocate fills with the same latency
// as reads (store latency is hidden by the store buffer in the core
// model; the traffic still occupies the hierarchy).
func (h *Hierarchy) AccessData(addr, now uint64) AccessResult {
	lat := h.L1D.Config().LatencyCycles
	if h.L1D.Access(addr) {
		return AccessResult{Level: LevelL1, DoneAt: now + lat}
	}
	if h.Prefetcher != nil {
		lineBits := h.L1D.lineBits
		for _, line := range h.Prefetcher.Observe(addr >> lineBits) {
			h.prefetchFill(line<<lineBits, now)
		}
	}
	lat += h.L2.Config().LatencyCycles
	if h.L2.Access(addr) {
		return AccessResult{Level: LevelL2, DoneAt: now + lat}
	}
	lat += h.L3.Config().LatencyCycles
	if h.L3.Access(addr) {
		return AccessResult{Level: LevelL3, DoneAt: now + lat}
	}
	done := h.DRAM.Access(now + lat)
	return AccessResult{Level: LevelDRAM, DoneAt: done}
}

// prefetchFill pulls a line into L2/L3 ahead of demand. The fill is
// asynchronous from the demand access's point of view but still consumes
// DRAM bandwidth when the line is off-chip.
func (h *Hierarchy) prefetchFill(addr, now uint64) {
	if h.L2.Access(addr) {
		return // already on chip close enough
	}
	if h.L3.Access(addr) {
		return
	}
	h.DRAM.Access(now)
}

// AccessInst walks the instruction-side hierarchy for pc starting at
// cycle now. The L1I shares L2/L3 with data.
func (h *Hierarchy) AccessInst(pc, now uint64) AccessResult {
	lat := h.L1I.Config().LatencyCycles
	if h.L1I.Access(pc) {
		return AccessResult{Level: LevelL1, DoneAt: now + lat}
	}
	lat += h.L2.Config().LatencyCycles
	if h.L2.Access(pc) {
		return AccessResult{Level: LevelL2, DoneAt: now + lat}
	}
	lat += h.L3.Config().LatencyCycles
	if h.L3.Access(pc) {
		return AccessResult{Level: LevelL3, DoneAt: now + lat}
	}
	done := h.DRAM.Access(now + lat)
	return AccessResult{Level: LevelDRAM, DoneAt: done}
}
