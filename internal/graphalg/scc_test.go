package graphalg

import (
	"math/rand"
	"reflect"
	"testing"
)

// randDAG builds a random DAG over n vertices: edges only go from lower
// to higher vertex id, so it is acyclic by construction.
func randDAG(rng *rand.Rand, n int, p float64) *Graph {
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v, rng.Float64())
			}
		}
	}
	return g
}

func TestSCCsSingletonsOnDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		g := randDAG(rng, n, 0.2)
		comps := g.SCCs()
		if len(comps) != n {
			t.Fatalf("trial %d: DAG with %d vertices produced %d SCCs", trial, n, len(comps))
		}
		for _, c := range comps {
			if len(c) != 1 {
				t.Fatalf("trial %d: DAG produced non-singleton SCC %v", trial, c)
			}
		}
		if g.HasCycle() {
			t.Fatalf("trial %d: HasCycle reported a cycle in a DAG", trial)
		}
	}
}

func TestSCCsPartitionProperty(t *testing.T) {
	// Every vertex appears in exactly one component, regardless of the
	// random edge structure (cycles allowed).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		g := NewGraph(n)
		for e := 0; e < 3*n; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Float64())
		}
		seen := make([]int, n)
		for _, comp := range g.SCCs() {
			for i, v := range comp {
				if v < 0 || v >= n {
					t.Fatalf("trial %d: vertex %d out of range", trial, v)
				}
				seen[v]++
				if i > 0 && comp[i-1] >= v {
					t.Fatalf("trial %d: component %v not sorted ascending", trial, comp)
				}
			}
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("trial %d: vertex %d appeared in %d components", trial, v, c)
			}
		}
	}
}

func TestSCCsDeterminism(t *testing.T) {
	// Building the same graph twice (same edge insertion order) must
	// yield byte-identical component lists.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(25)
		type e struct{ u, v int }
		var edges []e
		for k := 0; k < 4*n; k++ {
			edges = append(edges, e{rng.Intn(n), rng.Intn(n)})
		}
		build := func() *Graph {
			g := NewGraph(n)
			for _, ed := range edges {
				g.AddEdge(ed.u, ed.v, 1)
			}
			return g
		}
		a := build().SCCs()
		b := build().SCCs()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: SCCs not deterministic:\n%v\n%v", trial, a, b)
		}
	}
}

func TestSCCsReverseTopologicalOrder(t *testing.T) {
	// Tarjan emits components in reverse topological order of the
	// condensation: every cross-component edge must point from a
	// later-emitted component to an earlier one.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(30)
		g := NewGraph(n)
		for k := 0; k < 3*n; k++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		comps := g.SCCs()
		compOf := make([]int, n)
		for ci, comp := range comps {
			for _, v := range comp {
				compOf[v] = ci
			}
		}
		for u := 0; u < n; u++ {
			for _, v := range neighbors(g, u) {
				if compOf[u] != compOf[v] && compOf[u] < compOf[v] {
					t.Fatalf("trial %d: edge %d->%d goes from component %d to later component %d",
						trial, u, v, compOf[u], compOf[v])
				}
			}
		}
	}
}

func neighbors(g *Graph, u int) []int {
	var out []int
	for _, e := range g.adj[u] {
		out = append(out, e.to)
	}
	return out
}

func TestCycleDetectionOnDAGPlusBackEdge(t *testing.T) {
	// A random DAG has no cycle; adding a single back-edge along an
	// existing path always creates one, and the two endpoints must land
	// in the same SCC.
	rng := rand.New(rand.NewSource(5))
	trials := 0
	for trials < 150 {
		n := 3 + rng.Intn(25)
		g := randDAG(rng, n, 0.3)
		// Find a pair (u, v) with a path u -> v, u < v.
		u, v := -1, -1
		for a := 0; a < n && u < 0; a++ {
			for b := a + 1; b < n; b++ {
				if _, _, err := g.ShortestPath(a, b); err == nil {
					u, v = a, b
					break
				}
			}
		}
		if u < 0 {
			continue // edgeless draw; try another graph
		}
		trials++
		g.AddEdge(v, u, 0.5) // back-edge closes the cycle
		if !g.HasCycle() {
			t.Fatalf("trial %d: back-edge %d->%d did not register as a cycle", trials, v, u)
		}
		compOf := make(map[int]int)
		for ci, comp := range g.SCCs() {
			for _, x := range comp {
				compOf[x] = ci
			}
		}
		if compOf[u] != compOf[v] {
			t.Fatalf("trial %d: cycle endpoints %d,%d in different SCCs", trials, u, v)
		}
	}
}

func TestHasCycleSelfLoop(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	if g.HasCycle() {
		t.Fatal("no cycle expected")
	}
	g.AddEdge(2, 2, 1)
	if !g.HasCycle() {
		t.Fatal("self-loop must count as a cycle")
	}
}

func TestKnots(t *testing.T) {
	// Component {0,1} cycles and points at {2,3}; {2,3} cycles and has
	// no outgoing edges, so it is the only knot. Vertex 4 is isolated
	// (no internal edge, not a knot).
	g := NewGraph(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 2, 1)
	knots := g.Knots()
	if len(knots) != 1 || !reflect.DeepEqual(knots[0], []int{2, 3}) {
		t.Fatalf("knots = %v, want [[2 3]]", knots)
	}
}

func TestKnotsSelfLoopSink(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 1, 1) // sink that waits on itself
	knots := g.Knots()
	if len(knots) != 1 || !reflect.DeepEqual(knots[0], []int{1}) {
		t.Fatalf("knots = %v, want [[1]]", knots)
	}
}

func TestKnotsNoneOnDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		g := randDAG(rng, 2+rng.Intn(20), 0.3)
		if k := g.Knots(); len(k) != 0 {
			t.Fatalf("trial %d: DAG produced knots %v", trial, k)
		}
	}
}
