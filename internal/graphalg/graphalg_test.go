package graphalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestShortestPathLine(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	path, w, err := g.ShortestPath(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 {
		t.Errorf("weight = %g, want 3", w)
	}
	want := []int{0, 1, 2}
	if len(path) != 3 {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestShortestPathPrefersCheaperDetour(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 3, 10)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	path, w, err := g.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 || len(path) != 4 {
		t.Errorf("path=%v w=%g, want detour of weight 3", path, w)
	}
}

func TestShortestPathNoPath(t *testing.T) {
	g := NewGraph(2)
	if _, _, err := g.ShortestPath(0, 1); err != ErrNoPath {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := NewGraph(1)
	path, w, err := g.ShortestPath(0, 0)
	if err != nil || w != 0 || len(path) != 1 || path[0] != 0 {
		t.Errorf("self path = %v w=%g err=%v", path, w, err)
	}
}

func TestShortestPathOutOfRange(t *testing.T) {
	g := NewGraph(2)
	if _, _, err := g.ShortestPath(-1, 1); err == nil {
		t.Error("expected range error for src=-1")
	}
	if _, _, err := g.ShortestPath(0, 5); err == nil {
		t.Error("expected range error for dst=5")
	}
}

func TestAddEdgePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative weight")
		}
	}()
	g := NewGraph(2)
	g.AddEdge(0, 1, -1)
}

func TestZeroWeightEdges(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	_, w, err := g.ShortestPath(0, 2)
	if err != nil || w != 0 {
		t.Errorf("w=%g err=%v, want 0/nil", w, err)
	}
}

// bruteForce computes the shortest path weight by DFS enumeration on small
// DAés/graphs with a depth cap; used as the property-test oracle.
func bruteForce(g *Graph, src, dst int) float64 {
	best := math.Inf(1)
	visited := make([]bool, g.Len())
	var dfs func(v int, cost float64)
	dfs = func(v int, cost float64) {
		if cost >= best {
			return
		}
		if v == dst {
			best = cost
			return
		}
		visited[v] = true
		for _, e := range g.adj[v] {
			if !visited[e.to] {
				dfs(e.to, cost+e.weight)
			}
		}
		visited[v] = false
	}
	dfs(src, 0)
	return best
}

func TestShortestPathMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(8)
		g := NewGraph(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.4 {
					g.AddEdge(u, v, float64(rng.Intn(20)))
				}
			}
		}
		want := bruteForce(g, 0, n-1)
		path, got, err := g.ShortestPath(0, n-1)
		if math.IsInf(want, 1) {
			if err != ErrNoPath {
				t.Fatalf("trial %d: expected ErrNoPath, got path %v", trial, path)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: unexpected error %v (brute force found %g)", trial, err, want)
		}
		if got != want {
			t.Fatalf("trial %d: dijkstra %g != brute force %g", trial, got, want)
		}
		// Path weight must equal the reported distance.
		var sum float64
		for i := 1; i < len(path); i++ {
			bestEdge := math.Inf(1)
			for _, e := range g.adj[path[i-1]] {
				if e.to == path[i] && e.weight < bestEdge {
					bestEdge = e.weight
				}
			}
			sum += bestEdge
		}
		if sum != got {
			t.Fatalf("trial %d: path edges sum %g != reported %g", trial, sum, got)
		}
	}
}

func TestEdgeCount(t *testing.T) {
	g := NewGraph(3)
	if g.EdgeCount() != 0 {
		t.Error("fresh graph should have no edges")
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	if got := g.EdgeCount(); got != 3 {
		t.Errorf("EdgeCount = %d, want 3", got)
	}
}
