package graphalg

// Strongly connected components, cycle detection, and knot
// identification. These serve internal/waitgraph: a wPerf-style wait-for
// graph names its "waiting bottleneck" as a knot — a strongly connected
// component with no edges leaving it — because every thread inside waits
// only on other members, so nothing outside can make the group progress.

// SCCs returns the strongly connected components of the graph using
// Tarjan's algorithm (iterative, so deep graphs cannot overflow the
// goroutine stack). The result is deterministic for a given edge
// insertion order: components are emitted in reverse topological order
// of the condensation, and vertices within each component are sorted
// ascending.
func (g *Graph) SCCs() [][]int {
	n := g.Len()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		comps [][]int
		stack []int // Tarjan's component stack
		next  int   // next DFS index
	)
	// Explicit DFS frames: v plus the position in its adjacency list.
	type frame struct {
		v  int
		ei int
	}
	var dfs []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			if f.ei < len(g.adj[f.v]) {
				w := g.adj[f.v][f.ei].to
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				if p := dfs[len(dfs)-1].v; low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sortInts(comp)
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// HasCycle reports whether the graph contains a directed cycle: either a
// strongly connected component with more than one vertex, or a self-loop.
func (g *Graph) HasCycle() bool {
	for u, es := range g.adj {
		for _, e := range es {
			if e.to == u {
				return true
			}
		}
	}
	for _, comp := range g.SCCs() {
		if len(comp) > 1 {
			return true
		}
	}
	return false
}

// Knots returns the knots of the graph: strongly connected components
// that contain at least one edge (a cycle or self-loop, so the members
// genuinely wait on each other) and have no edge leaving the component.
// Components are returned in the same deterministic order SCCs emits
// them, vertices sorted ascending.
func (g *Graph) Knots() [][]int {
	comps := g.SCCs()
	compOf := make([]int, g.Len())
	for ci, comp := range comps {
		for _, v := range comp {
			compOf[v] = ci
		}
	}
	var knots [][]int
	for ci, comp := range comps {
		internal := false
		escapes := false
		for _, v := range comp {
			for _, e := range g.adj[v] {
				if compOf[e.to] == ci {
					internal = true
				} else {
					escapes = true
				}
			}
		}
		if internal && !escapes {
			knots = append(knots, comp)
		}
	}
	return knots
}

// sortInts is insertion sort: SCC components in wait graphs are tiny
// (a handful of threads), so this avoids pulling in package sort.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
