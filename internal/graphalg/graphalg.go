// Package graphalg provides the weighted directed graph and Dijkstra
// shortest-path search used by SPIRE's right-region roofline fitting
// (paper §III-D). It is deliberately small: dense fitting graphs have at
// most a few thousand vertices.
package graphalg

import (
	"container/heap"
	"errors"
	"math"
)

// ErrNoPath is returned by ShortestPath when the target is unreachable.
var ErrNoPath = errors.New("graphalg: no path between vertices")

// edge is an outgoing arc with a non-negative weight.
type edge struct {
	to     int
	weight float64
}

// Graph is a directed graph with float64 edge weights and integer vertex
// ids in [0, N).
type Graph struct {
	adj [][]edge
}

// NewGraph creates a graph with n vertices and no edges.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]edge, n)}
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.adj) }

// AddEdge inserts a directed edge from u to v. Negative or NaN weights
// panic: Dijkstra's correctness depends on non-negative weights, and SPIRE
// edge weights are squared errors which are non-negative by construction,
// so a violation is a programming error.
func (g *Graph) AddEdge(u, v int, w float64) {
	if w < 0 || math.IsNaN(w) {
		panic("graphalg: edge weight must be non-negative")
	}
	g.adj[u] = append(g.adj[u], edge{to: v, weight: w})
}

// EdgeCount returns the total number of edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, es := range g.adj {
		n += len(es)
	}
	return n
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath runs Dijkstra's algorithm from src and returns the
// minimum-weight path to dst as a vertex sequence (inclusive of both
// endpoints) along with its total weight. ErrNoPath is returned when dst
// cannot be reached.
func (g *Graph) ShortestPath(src, dst int) ([]int, float64, error) {
	n := g.Len()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, 0, errors.New("graphalg: vertex out of range")
	}
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{v: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if it.v == dst {
			break
		}
		for _, e := range g.adj[it.v] {
			if done[e.to] {
				continue
			}
			nd := dist[it.v] + e.weight
			if nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = it.v
				heap.Push(q, pqItem{v: e.to, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, 0, ErrNoPath
	}
	// Reconstruct.
	var path []int
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst], nil
}
