// Package cluster implements the spire routing tier: a stateless router
// that consistent-hashes estimate traffic across N spire serve shards
// using the engine's workload content-hash as the ring key, fails over
// on shard death, and converges every shard onto the same
// content-addressed model.
//
// The router holds no estimation state of its own — every response body
// a client receives was produced byte-for-byte by some shard (the
// cluster tier's core invariant, pinned by the differential harness in
// this package's tests). What the router adds is placement (bounded-load
// consistent hashing, so one workload's degraded-cache and index-cache
// entries concentrate on one shard), liveness (health-checked membership
// with ring-walk failover), and convergence (model push-on-mismatch
// keyed by fingerprint).
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"strings"
	"time"
)

// Shard is one backend spire serve instance.
type Shard struct {
	// Name is the stable ring identity: hashing is over the name, not
	// the URL, so a shard can move addresses (restart, re-schedule)
	// without reshuffling the ring.
	Name string `json:"name"`
	// URL is the shard's base URL, e.g. "http://127.0.0.1:9090".
	URL string `json:"url"`
}

// Duration is a time.Duration that JSON-decodes from a Go duration
// string ("250ms", "2s"). Bare numbers are rejected: a config that says
// "2" is ambiguous between seconds and nanoseconds, and this file is
// hand-written.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"250ms\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	if v < 0 {
		return fmt.Errorf("duration %q is negative", s)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Config describes one router.
type Config struct {
	// Shards is the backend membership. At least one required.
	Shards []Shard `json:"shards"`
	// VNodes is the number of virtual nodes each shard contributes to
	// the ring. More vnodes → smoother key distribution, linearly more
	// ring memory. 0 selects 64; the ceiling is 1024.
	VNodes int `json:"vnodes,omitempty"`
	// LoadFactor bounds per-shard load: a shard is skipped (the walk
	// moves to the next ring successor) while its in-flight count
	// exceeds LoadFactor times the fair share. 0 selects 1.25; must be
	// in [1, 8].
	LoadFactor float64 `json:"loadFactor,omitempty"`
	// HealthInterval is the /readyz probe period. 0 selects 1s.
	HealthInterval Duration `json:"healthInterval,omitempty"`
	// SyncInterval is the model-convergence sweep period. 0 selects 2s.
	SyncInterval Duration `json:"syncInterval,omitempty"`
	// ShardTimeout caps one router→shard exchange. 0 selects 30s.
	ShardTimeout Duration `json:"shardTimeout,omitempty"`
	// ShardAttempts is the per-shard transport retry budget before the
	// walk fails over to the next shard. 0 selects 2.
	ShardAttempts int `json:"shardAttempts,omitempty"`
	// MaxBodyBytes caps request bodies the router will buffer for
	// routing. 0 selects 8 MiB.
	MaxBodyBytes int64 `json:"maxBodyBytes,omitempty"`
}

// configLimits bound the knobs a config file may set; Validate enforces
// them so a typo'd exponent cannot allocate a gigabyte of ring.
const (
	maxVNodes     = 1024
	maxLoadFactor = 8.0
	minInterval   = 10 * time.Millisecond
)

// shardNameOK reports whether a shard name is ring-safe: nonempty,
// ≤64 bytes, and drawn from [A-Za-z0-9._-] so names survive metrics
// labels and log lines unquoted.
func shardNameOK(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks invariants and fills defaults in place.
func (c *Config) Validate() error {
	if len(c.Shards) == 0 {
		return fmt.Errorf("cluster: no shards configured")
	}
	seen := make(map[string]bool, len(c.Shards))
	for i := range c.Shards {
		sh := &c.Shards[i]
		if !shardNameOK(sh.Name) {
			return fmt.Errorf("cluster: shard %d name %q: must be 1-64 chars of [A-Za-z0-9._-]", i, sh.Name)
		}
		if seen[sh.Name] {
			return fmt.Errorf("cluster: duplicate shard name %q", sh.Name)
		}
		seen[sh.Name] = true
		sh.URL = strings.TrimRight(sh.URL, "/")
		u, err := url.Parse(sh.URL)
		if err != nil {
			return fmt.Errorf("cluster: shard %q url: %w", sh.Name, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("cluster: shard %q url %q: must be http(s)://host[:port]", sh.Name, sh.URL)
		}
		if u.RawQuery != "" || u.Fragment != "" {
			return fmt.Errorf("cluster: shard %q url %q: query/fragment not allowed", sh.Name, sh.URL)
		}
	}
	if c.VNodes == 0 {
		c.VNodes = 64
	}
	if c.VNodes < 1 || c.VNodes > maxVNodes {
		return fmt.Errorf("cluster: vnodes %d out of range [1, %d]", c.VNodes, maxVNodes)
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 1.25
	}
	if c.LoadFactor < 1 || c.LoadFactor > maxLoadFactor {
		return fmt.Errorf("cluster: loadFactor %g out of range [1, %g]", c.LoadFactor, maxLoadFactor)
	}
	for _, iv := range []struct {
		name string
		d    *Duration
		def  time.Duration
	}{
		{"healthInterval", &c.HealthInterval, time.Second},
		{"syncInterval", &c.SyncInterval, 2 * time.Second},
		{"shardTimeout", &c.ShardTimeout, 30 * time.Second},
	} {
		if *iv.d == 0 {
			*iv.d = Duration(iv.def)
			continue
		}
		if time.Duration(*iv.d) < minInterval {
			return fmt.Errorf("cluster: %s %s below minimum %s", iv.name, time.Duration(*iv.d), minInterval)
		}
	}
	if c.ShardAttempts == 0 {
		c.ShardAttempts = 2
	}
	if c.ShardAttempts < 1 || c.ShardAttempts > 10 {
		return fmt.Errorf("cluster: shardAttempts %d out of range [1, 10]", c.ShardAttempts)
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBodyBytes < 0 {
		return fmt.Errorf("cluster: maxBodyBytes %d is negative", c.MaxBodyBytes)
	}
	return nil
}

// ParseConfig reads a JSON cluster config, validates it, and fills
// defaults. Unknown fields are rejected — a typo'd knob silently
// falling back to its default is the worst failure mode a config
// format can have.
func ParseConfig(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(io.LimitReader(r, 1<<20))
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("cluster: parsing config: %w", err)
	}
	// Trailing garbage after the object is a malformed file, not data
	// to ignore.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("cluster: trailing data after config object")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// ParseShardList parses the compact flag form "name=url,name=url,…"
// into a shard slice. Whitespace around entries is trimmed; empty
// entries (doubled commas) are rejected.
func ParseShardList(s string) ([]Shard, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster: empty shard list")
	}
	parts := strings.Split(s, ",")
	shards := make([]Shard, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("cluster: empty shard entry in %q", s)
		}
		name, u, ok := strings.Cut(p, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: shard entry %q: want name=url", p)
		}
		shards = append(shards, Shard{Name: strings.TrimSpace(name), URL: strings.TrimSpace(u)})
	}
	return shards, nil
}
