package cluster_test

// Hierarchy extension of the cluster differential: routed estimates for
// a hierarchical model must be byte-identical to a single node serving
// the same model (the shard hop re-encodes the hierarchy section too),
// and the single-level degenerate model routed through a cluster must
// produce estimation bytes indistinguishable from a flat model's.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"spire/internal/core"
	"spire/internal/serve"
	"spire/internal/wire"
)

// hierClusterModel builds the four-level bandwidth-roofline model used
// across the hierarchy differentials. levels trims the hierarchy
// (0 = flat, 1 = degenerate single level).
func hierClusterModel(t testing.TB, levels int) []byte {
	t.Helper()
	betas := map[string]float64{"L1": 64, "L2": 16, "L3": 8, "DRAM": 2}
	ens := &core.Ensemble{
		Rooflines: map[string]*core.Roofline{},
		WorkUnit:  "instructions",
		TimeUnit:  "cycles",
	}
	all := core.DefaultHierarchyLevels()
	for _, lv := range all {
		r, err := core.BandwidthRoofline(lv.Metric, 4, betas[lv.Level], 64)
		if err != nil {
			t.Fatal(err)
		}
		ens.Rooflines[lv.Metric] = r
	}
	if levels > 0 {
		ens.Hierarchy = &core.HierarchyModel{Levels: all[:levels]}
	}
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// hierClusterSamples puts dominant traffic on L2 with a trickle on the
// other levels, so the binding verdict is unambiguous.
func hierClusterSamples() []core.Sample {
	const cycles, insts = 1e6, 2e6
	return []core.Sample{
		{Metric: "mem_load_retired.l1_hit", T: cycles, W: insts, M: 1000},
		{Metric: "mem_load_retired.l2_hit", T: cycles, W: insts, M: 4e5},
		{Metric: "mem_load_retired.l3_hit", T: cycles, W: insts, M: 100},
		{Metric: "mem_load_retired.l3_miss", T: cycles, W: insts, M: 10},
	}
}

// hierParityReqs renders the same workload as a JSON and an SPB1
// request, each under both Accept encodings.
func hierParityReqs(t testing.TB) []parityReq {
	t.Helper()
	jbody, err := json.Marshal(serve.EstimateRequest{Samples: hierClusterSamples()})
	if err != nil {
		t.Fatal(err)
	}
	bbody := wire.AppendEstimateRequest(nil, &wire.EstimateRequest{Samples: hierClusterSamples()})
	return []parityReq{
		{kind: "hier-json", body: jbody, contentType: "application/json"},
		{kind: "hier-json-bin-accept", body: jbody, contentType: "application/json", accept: wire.ContentTypeBin},
		{kind: "hier-bin", body: bbody, contentType: wire.ContentTypeBin},
		{kind: "hier-bin-json-accept", body: bbody, contentType: wire.ContentTypeBin, accept: "application/json"},
	}
}

// TestClusterHierarchyParity: a routed hierarchical estimate equals the
// single-node one byte for byte on every encoding pair, and the routed
// body names the right binding level.
func TestClusterHierarchyParity(t *testing.T) {
	model := hierClusterModel(t, 4)
	single := startSingle(t, serve.Config{}, model)
	tc := startCluster(t, clusterOpts{shards: 3})
	tc.waitConverged(t, tc.pushModel(t, model), 5_000_000_000)

	for _, pr := range hierParityReqs(t) {
		sStatus, sCT, sModel, sBody := doEstimate(t, single.URL, pr)
		cStatus, cCT, cModel, cBody := doEstimate(t, tc.url, pr)
		if sStatus != cStatus || sCT != cCT || sModel != cModel || !bytes.Equal(sBody, cBody) {
			t.Fatalf("%s: single=(%d, %s, model=%q, %d bytes) cluster=(%d, %s, model=%q, %d bytes)\nsingle: %.300s\ncluster: %.300s",
				pr.kind, sStatus, sCT, sModel, len(sBody), cStatus, cCT, cModel, len(cBody), sBody, cBody)
		}
		if cStatus != http.StatusOK {
			t.Fatalf("%s: status %d: %s", pr.kind, cStatus, cBody)
		}

		// Independently decode the routed body and check the verdict.
		var est *core.Estimation
		if cCT == wire.ContentTypeBin {
			res, err := wire.DecodeEstimateResponse(cBody)
			if err != nil {
				t.Fatalf("%s: decode SPB1: %v", pr.kind, err)
			}
			est = res.Estimation
		} else {
			var er serve.EstimateResponse
			if err := json.Unmarshal(cBody, &er); err != nil {
				t.Fatalf("%s: decode JSON: %v", pr.kind, err)
			}
			est = er.Estimation
		}
		h := est.Hierarchy
		if h == nil || h.BindingLevel != "L2" || len(h.Levels) != 4 {
			t.Fatalf("%s: routed hierarchy %+v, want 4-level verdict binding L2", pr.kind, h)
		}
	}
}

// TestClusterSingleLevelParity: a single-level hierarchy routed through
// the cluster serves the same estimation bytes as a flat model on a
// single node — the degenerate freeze holds across the shard hop.
func TestClusterSingleLevelParity(t *testing.T) {
	single := startSingle(t, serve.Config{}, hierClusterModel(t, 0))
	tc := startCluster(t, clusterOpts{shards: 3})
	tc.waitConverged(t, tc.pushModel(t, hierClusterModel(t, 1)), 5_000_000_000)

	for _, pr := range hierParityReqs(t) {
		sStatus, sCT, _, sBody := doEstimate(t, single.URL, pr)
		cStatus, cCT, _, cBody := doEstimate(t, tc.url, pr)
		if sStatus != http.StatusOK || cStatus != http.StatusOK || sCT != cCT {
			t.Fatalf("%s: statuses (%d, %d), content types (%s, %s)", pr.kind, sStatus, cStatus, sCT, cCT)
		}

		// The model ids differ (different blobs), so compare the
		// estimation region only — it must be byte-identical.
		var sFrame, cFrame []byte
		if cCT == wire.ContentTypeBin {
			sRes, err := wire.DecodeEstimateResponse(sBody)
			if err != nil {
				t.Fatal(err)
			}
			cRes, err := wire.DecodeEstimateResponse(cBody)
			if err != nil {
				t.Fatal(err)
			}
			if cRes.Estimation.Hierarchy != nil {
				t.Fatalf("%s: single-level model served a hierarchy over SPB1", pr.kind)
			}
			sFrame = wire.AppendEstimateResponse(nil, &wire.EstimateResponse{Estimation: sRes.Estimation})
			cFrame = wire.AppendEstimateResponse(nil, &wire.EstimateResponse{Estimation: cRes.Estimation})
		} else {
			var sER, cER serve.EstimateResponse
			if err := json.Unmarshal(sBody, &sER); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(cBody, &cER); err != nil {
				t.Fatal(err)
			}
			if cER.Estimation.Hierarchy != nil {
				t.Fatalf("%s: single-level model served a hierarchy over JSON", pr.kind)
			}
			sFrame, _ = json.Marshal(sER.Estimation)
			cFrame, _ = json.Marshal(cER.Estimation)
		}
		if !bytes.Equal(sFrame, cFrame) {
			t.Fatalf("%s: single-level estimation diverged from flat:\nflat: %.300s\none:  %.300s", pr.kind, sFrame, cFrame)
		}
	}
}
