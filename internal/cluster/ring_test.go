package cluster

import (
	"fmt"
	"testing"
)

// TestRingWalkCoversAllShards: every walk is a permutation of all
// shards with the home shard first, and deterministic.
func TestRingWalkCoversAllShards(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	r := buildRing(names, 64)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("workload-%d", i)
		order := r.walk(key)
		if len(order) != len(names) {
			t.Fatalf("walk(%q) visited %d shards, want %d", key, len(order), len(names))
		}
		seen := map[int]bool{}
		for _, idx := range order {
			if idx < 0 || idx >= len(names) || seen[idx] {
				t.Fatalf("walk(%q) = %v: not a permutation", key, order)
			}
			seen[idx] = true
		}
		again := r.walk(key)
		for j := range order {
			if order[j] != again[j] {
				t.Fatalf("walk(%q) not deterministic: %v vs %v", key, order, again)
			}
		}
	}
}

// TestRingDistribution: with 64 vnodes, no shard of five owns a
// grossly skewed share of 10k keys (fair share 20%; accept 8–40%).
func TestRingDistribution(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	r := buildRing(names, 64)
	counts := make([]int, len(names))
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.walk(fmt.Sprintf("key-%d", i))[0]]++
	}
	for i, c := range counts {
		share := float64(c) / keys
		if share < 0.08 || share > 0.40 {
			t.Errorf("shard %s owns %.1f%% of keys (counts %v); vnode smoothing failed", names[i], 100*share, counts)
		}
	}
}

// TestRingStability: removing one shard must re-home only the keys it
// owned — every other key keeps its home. This is the property that
// makes per-shard caches survive membership churn.
func TestRingStability(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	without := []string{"a", "b", "c", "e"} // "d" (index 3) removed
	rAll := buildRing(names, 64)
	rLess := buildRing(without, 64)
	moved, kept := 0, 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("key-%d", i)
		home := names[rAll.walk(key)[0]]
		newHome := without[rLess.walk(key)[0]]
		if home == "d" {
			moved++
			continue
		}
		if home != newHome {
			t.Fatalf("key %q re-homed %s→%s though its shard survived", key, home, newHome)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestRingFailoverOrderIsSuccessor: the second walk entry for a key is
// exactly the first entry the ring yields once the home shard is gone —
// failover lands where the key would live after the membership change,
// so a later permanent removal is a no-op for that key's placement.
func TestRingFailoverOrderIsSuccessor(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	rAll := buildRing(names, 64)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		order := rAll.walk(key)
		home, next := names[order[0]], names[order[1]]
		remaining := make([]string, 0, 3)
		for _, n := range names {
			if n != home {
				remaining = append(remaining, n)
			}
		}
		rLess := buildRing(remaining, 64)
		if got := remaining[rLess.walk(key)[0]]; got != next {
			t.Fatalf("key %q: failover target %s but post-removal home %s", key, next, got)
		}
	}
}

func TestFNV64aKnownVectors(t *testing.T) {
	// Reference values for FNV-1a 64 (RFC draft test vectors).
	cases := map[string]uint64{
		"":    0xcbf29ce484222325,
		"a":   0xaf63dc4c8601ec8c,
		"foo": 0xdcb27518fed9d577,
	}
	for in, want := range cases {
		if got := fnv64a(in); got != want {
			t.Errorf("fnv64a(%q) = %#x, want %#x", in, got, want)
		}
	}
}
