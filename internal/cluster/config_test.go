package cluster

import (
	"strings"
	"testing"
	"time"
)

func TestParseConfigTable(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		wantErr string // substring; "" = success
		check   func(t *testing.T, c *Config)
	}{
		{
			name: "minimal",
			in:   `{"shards":[{"name":"a","url":"http://127.0.0.1:9090"}]}`,
			check: func(t *testing.T, c *Config) {
				if c.VNodes != 64 || c.LoadFactor != 1.25 {
					t.Errorf("defaults not applied: vnodes=%d loadFactor=%g", c.VNodes, c.LoadFactor)
				}
				if time.Duration(c.HealthInterval) != time.Second || time.Duration(c.SyncInterval) != 2*time.Second {
					t.Errorf("interval defaults not applied: %+v", c)
				}
			},
		},
		{
			name: "full",
			in: `{"shards":[{"name":"a","url":"http://h:1"},{"name":"b","url":"https://h:2/"}],
			      "vnodes":128,"loadFactor":2,"healthInterval":"500ms","syncInterval":"3s",
			      "shardTimeout":"10s","shardAttempts":3,"maxBodyBytes":1024}`,
			check: func(t *testing.T, c *Config) {
				if c.Shards[1].URL != "https://h:2" {
					t.Errorf("trailing slash not trimmed: %q", c.Shards[1].URL)
				}
				if c.VNodes != 128 || time.Duration(c.HealthInterval) != 500*time.Millisecond {
					t.Errorf("explicit values lost: %+v", c)
				}
			},
		},
		{name: "no shards", in: `{"shards":[]}`, wantErr: "no shards"},
		{name: "empty object", in: `{}`, wantErr: "no shards"},
		{name: "empty input", in: ``, wantErr: "parsing config"},
		{name: "not json", in: `shards: [a]`, wantErr: "parsing config"},
		{name: "unknown field", in: `{"shards":[{"name":"a","url":"http://h"}],"vnode_count":9}`, wantErr: "parsing config"},
		{name: "trailing garbage", in: `{"shards":[{"name":"a","url":"http://h"}]} {}`, wantErr: "trailing data"},
		{name: "dup name", in: `{"shards":[{"name":"a","url":"http://h:1"},{"name":"a","url":"http://h:2"}]}`, wantErr: "duplicate shard name"},
		{name: "empty name", in: `{"shards":[{"name":"","url":"http://h"}]}`, wantErr: "must be 1-64 chars"},
		{name: "bad name chars", in: `{"shards":[{"name":"a b","url":"http://h"}]}`, wantErr: "must be 1-64 chars"},
		{name: "name too long", in: `{"shards":[{"name":"` + strings.Repeat("x", 65) + `","url":"http://h"}]}`, wantErr: "must be 1-64 chars"},
		{name: "bad scheme", in: `{"shards":[{"name":"a","url":"ftp://h"}]}`, wantErr: "must be http(s)"},
		{name: "no host", in: `{"shards":[{"name":"a","url":"http://"}]}`, wantErr: "must be http(s)"},
		{name: "url query", in: `{"shards":[{"name":"a","url":"http://h?x=1"}]}`, wantErr: "query/fragment"},
		{name: "vnodes too big", in: `{"shards":[{"name":"a","url":"http://h"}],"vnodes":4096}`, wantErr: "vnodes 4096 out of range"},
		{name: "vnodes negative", in: `{"shards":[{"name":"a","url":"http://h"}],"vnodes":-1}`, wantErr: "out of range"},
		{name: "load factor below one", in: `{"shards":[{"name":"a","url":"http://h"}],"loadFactor":0.5}`, wantErr: "loadFactor"},
		{name: "load factor huge", in: `{"shards":[{"name":"a","url":"http://h"}],"loadFactor":100}`, wantErr: "loadFactor"},
		{name: "interval too small", in: `{"shards":[{"name":"a","url":"http://h"}],"healthInterval":"1ms"}`, wantErr: "below minimum"},
		{name: "interval negative", in: `{"shards":[{"name":"a","url":"http://h"}],"healthInterval":"-1s"}`, wantErr: "negative"},
		{name: "interval bare number", in: `{"shards":[{"name":"a","url":"http://h"}],"healthInterval":5}`, wantErr: "must be a string"},
		{name: "interval garbage", in: `{"shards":[{"name":"a","url":"http://h"}],"healthInterval":"soon"}`, wantErr: "parsing config"},
		{name: "attempts out of range", in: `{"shards":[{"name":"a","url":"http://h"}],"shardAttempts":99}`, wantErr: "shardAttempts"},
		{name: "negative body cap", in: `{"shards":[{"name":"a","url":"http://h"}],"maxBodyBytes":-1}`, wantErr: "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := ParseConfig(strings.NewReader(tc.in))
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("ParseConfig succeeded (%+v), want error containing %q", cfg, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseConfig: %v", err)
			}
			if tc.check != nil {
				tc.check(t, cfg)
			}
		})
	}
}

func TestParseShardListTable(t *testing.T) {
	cases := []struct {
		name, in string
		wantErr  string
		want     []Shard
	}{
		{
			name: "two shards",
			in:   "a=http://h:1, b=http://h:2",
			want: []Shard{{Name: "a", URL: "http://h:1"}, {Name: "b", URL: "http://h:2"}},
		},
		{
			name: "url with port only",
			in:   "solo=http://127.0.0.1:9090",
			want: []Shard{{Name: "solo", URL: "http://127.0.0.1:9090"}},
		},
		{name: "empty", in: "", wantErr: "empty shard list"},
		{name: "blank", in: "   ", wantErr: "empty shard list"},
		{name: "doubled comma", in: "a=http://h,,b=http://h2", wantErr: "empty shard entry"},
		{name: "missing equals", in: "a-http://h", wantErr: "want name=url"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseShardList(tc.in)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseShardList(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseShardList(%q): %v", tc.in, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("entry %d: got %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestShardListIntoValidate: the flag path composes with Validate the
// same way the file path does — a URL with an = in the name position
// still errors cleanly, never panics.
func TestShardListIntoValidate(t *testing.T) {
	shards, err := ParseShardList("a=http://h:1,b=not-a-url")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Shards: shards}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted a scheme-less shard URL")
	}
}
