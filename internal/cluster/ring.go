package cluster

import (
	"sort"
	"strconv"
)

// The ring is classic consistent hashing with virtual nodes: each shard
// contributes VNodes points at fnv64a(name + "#" + i), and a key routes
// to the first point clockwise from fnv64a(key). Hashing shard *names*
// keeps placement stable across address changes and across membership
// changes elsewhere on the ring: adding or removing one shard moves only
// the keys in that shard's arcs. Bounded load (Google's
// consistent-hashing-with-bounded-loads) is applied by the walk's
// caller: the router skips a candidate whose in-flight count exceeds
// its fair share times the configured load factor, spilling the key to
// the next successor instead of hot-spotting.

// fnv64a is FNV-1a, the same hash family the engine's workload key and
// the serve-side caches use; inlined to keep the ring dependency-free.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// ringHash is fnv64a finished with murmur3's fmix64. Raw FNV-1a of
// short, similar strings ("shard-1#17", workload keys) clusters in the
// high bits — the bits that decide ring position — and a clustered
// ring hands one shard half the keyspace. The finalizer's two
// xor-shift-multiply rounds avalanche every input bit across the word,
// restoring the uniform arc lengths consistent hashing assumes.
func ringHash(s string) uint64 {
	h := fnv64a(s)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringPoint is one virtual node: a position and the shard index owning it.
type ringPoint struct {
	hash  uint64
	shard int
}

// ring is an immutable consistent-hash ring over shard indices.
type ring struct {
	points []ringPoint // sorted by hash
	shards int
}

// buildRing places vnodes points per shard name.
func buildRing(names []string, vnodes int) *ring {
	r := &ring{
		points: make([]ringPoint, 0, len(names)*vnodes),
		shards: len(names),
	}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  ringHash(name + "#" + strconv.Itoa(v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		// Tie-break on shard index so the order is deterministic even in
		// the astronomically unlikely event of a vnode hash collision.
		return pa.shard < pb.shard
	})
	return r
}

// walk returns every shard index exactly once, in ring order starting
// from the key's position: element 0 is the key's home shard, element 1
// its first failover target, and so on. The caller filters by health
// and load.
func (r *ring) walk(key string) []int {
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	order := make([]int, 0, r.shards)
	seen := make([]bool, r.shards)
	for i := 0; i < len(r.points) && len(order) < r.shards; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			order = append(order, p.shard)
		}
	}
	return order
}
