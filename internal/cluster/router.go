package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spire/internal/buildinfo"
	"spire/internal/client"
	"spire/internal/core"
	"spire/internal/engine"
	"spire/internal/metrics"
	"spire/internal/wire"
)

// shard is one backend's runtime state.
type shard struct {
	name string
	url  string

	// cl is the relay client: transport-level retries only, every
	// received response definitive (DoRaw) so shard 429s and 4xxs relay
	// byte-for-byte.
	cl *client.Client
	// proxy streams /v1/stream exchanges (SSE and chunked feeds) that
	// DoRaw's buffer-whole-body model cannot carry.
	proxy *httputil.ReverseProxy

	healthy  atomic.Bool
	inflight atomic.Int64
	// modelID is the fingerprint this shard last reported/accepted;
	// the sync loop pushes when it diverges from the router's.
	modelID atomic.Value // string
}

// Router consistent-hashes requests across shards. Stateless: safe to
// run N routers over the same shard set.
type Router struct {
	cfg    Config
	ring   *ring
	shards []*shard

	// model is the router's replicated-model source of truth: canonical
	// bytes plus fingerprint, pushed to any shard that diverges.
	modelMu    sync.RWMutex
	modelBytes []byte
	modelID    string

	reg        *metrics.Registry
	mRequests  map[string]*metrics.Counter // route → requests
	mRelayed   map[string]*metrics.Counter // route|path → definitive relays
	mRejected  map[string]*metrics.Counter // route|reason → router-generated rejections
	mFailovers *metrics.Counter
	mPushes    *metrics.Counter
	mHealthy   []*metrics.Gauge // per shard
	mInflight  *metrics.Gauge
	mStreams   *metrics.Counter

	handler   http.Handler
	draining  atomic.Bool
	closeOnce sync.Once
	closed    chan struct{}
	loops     sync.WaitGroup
}

// RouterOptions carries test seams that are not config-file material.
type RouterOptions struct {
	// Transport, when set, underlies every router→shard HTTP exchange
	// (relay clients, health probes, model pushes, stream proxies). The
	// chaos harness injects faults on the router↔shard hop here.
	Transport http.RoundTripper
}

// routes instrumented for the books-balance identity: per route,
// requests == relayed{primary} + relayed{failover} + Σ rejected{reason}.
var bookRoutes = []string{"/v1/estimate", "/v1/ingest"}

// rejection reasons the router itself can produce.
var rejectReasons = []string{"no_shard", "body_too_large", "draining"}

// NewRouter validates cfg and builds the router. Start health/sync
// loops with Run (Serve does both).
func NewRouter(cfg Config, opts RouterOptions) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	names := make([]string, len(cfg.Shards))
	for i, sh := range cfg.Shards {
		names[i] = sh.Name
	}
	reg := metrics.NewRegistry()
	rt := &Router{
		cfg:        cfg,
		ring:       buildRing(names, cfg.VNodes),
		reg:        reg,
		mRequests:  map[string]*metrics.Counter{},
		mRelayed:   map[string]*metrics.Counter{},
		mRejected:  map[string]*metrics.Counter{},
		mFailovers: reg.Counter("spire_route_failovers_total", "Estimate/ingest requests answered by a non-home shard after the home shard failed."),
		mPushes:    reg.Counter("spire_route_model_pushes_total", "Model blobs pushed to shards by the convergence loop or POST /v1/models."),
		mInflight:  reg.Gauge("spire_route_inflight_requests", "Router→shard exchanges currently in flight."),
		mStreams:   reg.Counter("spire_route_stream_proxied_total", "Stream exchanges (feeds and SSE subscriptions) proxied to a shard."),
		closed:     make(chan struct{}),
	}
	for _, route := range bookRoutes {
		rt.mRequests[route] = reg.Counter("spire_route_requests_total",
			"Requests accepted for routing.", metrics.L("route", route))
		for _, path := range []string{"primary", "failover"} {
			rt.mRelayed[route+"|"+path] = reg.Counter("spire_route_relayed_total",
				"Definitive shard responses relayed to clients.",
				metrics.L("route", route), metrics.L("path", path))
		}
		for _, reason := range rejectReasons {
			rt.mRejected[route+"|"+reason] = reg.Counter("spire_route_rejected_total",
				"Requests the router itself rejected.",
				metrics.L("route", route), metrics.L("reason", reason))
		}
	}

	hc := &http.Client{Timeout: time.Duration(cfg.ShardTimeout), Transport: opts.Transport}
	for i, sc := range cfg.Shards {
		cl, err := client.New(client.Config{
			BaseURL:     sc.URL,
			HTTPClient:  hc,
			MaxAttempts: cfg.ShardAttempts,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
			Seed:        int64(i + 1),
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %q: %w", sc.Name, err)
		}
		target, _ := url.Parse(sc.URL) // validated above
		proxy := &httputil.ReverseProxy{
			Rewrite: func(pr *httputil.ProxyRequest) {
				pr.SetURL(target)
				pr.Out.Host = target.Host
			},
			// SSE frames must flush as they arrive, not on buffer fill.
			FlushInterval: -1,
			ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
				writeError(w, http.StatusBadGateway, "shard %s unreachable: %v", sc.Name, err)
			},
		}
		if opts.Transport != nil {
			proxy.Transport = opts.Transport
		}
		sh := &shard{name: sc.Name, url: sc.URL, cl: cl, proxy: proxy}
		sh.modelID.Store("")
		// Optimistic start: shards are assumed healthy until the first
		// probe or a transport failure says otherwise, so a router can
		// serve immediately after boot.
		sh.healthy.Store(true)
		rt.shards = append(rt.shards, sh)
		rt.mHealthy = append(rt.mHealthy, reg.Gauge("spire_route_shard_healthy",
			"1 when the shard's last /readyz probe succeeded.", metrics.L("shard", sc.Name)))
		rt.mHealthy[i].Set(1)
	}

	mux := http.NewServeMux()
	mux.Handle("POST /v1/estimate", http.HandlerFunc(rt.handleEstimate))
	mux.Handle("POST /v1/ingest", http.HandlerFunc(rt.handleIngest))
	mux.Handle("POST /v1/models", http.HandlerFunc(rt.handleModelsPost))
	mux.Handle("GET /v1/models", http.HandlerFunc(rt.handleModelsGet))
	mux.Handle("POST /v1/stream", http.HandlerFunc(rt.handleStream))
	mux.Handle("GET /v1/stream", http.HandlerFunc(rt.handleStream))
	mux.Handle("GET /healthz", http.HandlerFunc(rt.handleHealthz))
	mux.Handle("GET /readyz", http.HandlerFunc(rt.handleReadyz))
	mux.Handle("GET /metrics", http.HandlerFunc(rt.handleMetrics))
	rt.handler = mux
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Metrics returns the router's metrics registry (tests and embedding).
func (rt *Router) Metrics() *metrics.Registry { return rt.reg }

// Close stops background loops. Idempotent.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.closed) })
	rt.loops.Wait()
}

// Run starts the health and model-sync loops; they stop when ctx is
// canceled or Close is called.
func (rt *Router) Run(ctx context.Context) {
	rt.loops.Add(2)
	go rt.healthLoop(ctx)
	go rt.syncLoop(ctx)
}

// SetModel installs a model blob as the router's replication source of
// truth (validated, fingerprinted) without pushing it anywhere yet; the
// sync loop converges shards onto it. Used by `spire route -model`.
func (rt *Router) SetModel(blob []byte) (string, error) {
	ens, err := core.LoadEnsemble(bytes.NewReader(blob))
	if err != nil {
		return "", err
	}
	if err := ens.CheckInvariants(); err != nil {
		return "", err
	}
	id, err := ens.Fingerprint()
	if err != nil {
		return "", err
	}
	rt.modelMu.Lock()
	rt.modelBytes = append([]byte(nil), blob...)
	rt.modelID = id
	rt.modelMu.Unlock()
	return id, nil
}

// --- routing core ---------------------------------------------------

// errNoShard means every shard was unhealthy or load-saturated.
var errNoShard = errors.New("no healthy shard available")

// pick returns candidate shards for key in failover order: the
// bounded-load walk first (healthy shards under their fair share), then
// any remaining healthy shards as overflow targets — a saturated shard
// beats a 503.
func (rt *Router) pick(key string) []*shard {
	order := rt.ring.walk(key)
	candidates := make([]*shard, 0, len(order))
	var overflow []*shard
	healthyCount := 0
	var totalLoad int64
	for _, sh := range rt.shards {
		if sh.healthy.Load() {
			healthyCount++
			totalLoad += sh.inflight.Load()
		}
	}
	if healthyCount == 0 {
		return nil
	}
	// Bounded load: fair share of (totalLoad+1) scaled by the factor,
	// and never below 1 so an idle cluster always admits.
	capacity := int64(rt.cfg.LoadFactor * float64(totalLoad+1) / float64(healthyCount))
	if capacity < 1 {
		capacity = 1
	}
	for _, idx := range order {
		sh := rt.shards[idx]
		if !sh.healthy.Load() {
			continue
		}
		if sh.inflight.Load() >= capacity {
			overflow = append(overflow, sh)
			continue
		}
		candidates = append(candidates, sh)
	}
	return append(candidates, overflow...)
}

// relay walks candidates until one yields a definitive response. The
// bool reports whether a non-first candidate answered (failover).
func (rt *Router) relay(ctx context.Context, candidates []*shard, req client.RawRequest) (*client.RawResponse, *shard, bool, error) {
	var lastErr error
	for i, sh := range candidates {
		sh.inflight.Add(1)
		rt.mInflight.Add(1)
		res, err := sh.cl.DoRaw(ctx, req)
		sh.inflight.Add(-1)
		rt.mInflight.Add(-1)
		if err != nil {
			// Transport-level death: mark the shard down immediately so
			// concurrent requests stop walking into it; the health loop
			// restores it when /readyz answers again.
			sh.healthy.Store(false)
			lastErr = err
			continue
		}
		// Gateway-ish statuses mean the shard is up but cannot serve
		// (draining, no model yet): fail over rather than relay, unless
		// this is the last candidate — then the honest shard answer beats
		// a synthetic router error.
		if (res.Status == http.StatusBadGateway || res.Status == http.StatusServiceUnavailable ||
			res.Status == http.StatusGatewayTimeout) && i < len(candidates)-1 {
			lastErr = fmt.Errorf("shard %s: status %d", sh.name, res.Status)
			continue
		}
		return res, sh, i > 0, nil
	}
	if lastErr == nil {
		lastErr = errNoShard
	}
	return nil, nil, false, lastErr
}

// copyRelayHeaders forwards the shard's response headers, dropping the
// ones the router's own write recomputes.
func copyRelayHeaders(dst http.ResponseWriter, src http.Header) {
	for k, vs := range src {
		switch k {
		case "Date", "Content-Length", "Transfer-Encoding", "Connection":
			continue
		}
		for _, v := range vs {
			dst.Header().Add(k, v)
		}
	}
}

// serveRelay routes one buffered exchange and writes the outcome,
// keeping the books balanced: exactly one of relayed{primary},
// relayed{failover}, rejected{reason} per request.
func (rt *Router) serveRelay(w http.ResponseWriter, r *http.Request, route, key string, req client.RawRequest) {
	rt.mRequests[route].Inc()
	if rt.draining.Load() {
		rt.reject(w, route, "draining", http.StatusServiceUnavailable, "router draining")
		return
	}
	candidates := rt.pick(key)
	if len(candidates) == 0 {
		rt.reject(w, route, "no_shard", http.StatusServiceUnavailable, "no healthy shard available")
		return
	}
	res, sh, failedOver, err := rt.relay(r.Context(), candidates, req)
	if err != nil {
		rt.reject(w, route, "no_shard", http.StatusServiceUnavailable, "all shards failed: %v", err)
		return
	}
	path := "primary"
	if failedOver {
		path = "failover"
		rt.mFailovers.Inc()
	}
	rt.mRelayed[route+"|"+path].Inc()
	copyRelayHeaders(w, res.Header)
	w.Header().Set("X-Spire-Shard", sh.name)
	w.WriteHeader(res.Status)
	w.Write(res.Body)
}

// reject writes a router-generated error and books it under reason.
func (rt *Router) reject(w http.ResponseWriter, route, reason string, code int, format string, args ...any) {
	rt.mRejected[route+"|"+reason].Inc()
	writeError(w, code, format, args...)
}

// writeError emits the same {"error": "..."} JSON shape serve uses.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	raw, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
	w.Write(append(raw, '\n'))
}

// readBody buffers up to the configured cap; a true second return means
// the body exceeded it and the request must be rejected.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		return nil, true
	}
	return body, false
}

// bodyKey is the routing fallback for bodies the router cannot decode:
// stable content hash so retries of the same bad payload land on the
// same shard (and its error answer stays byte-identical).
func bodyKey(body []byte) string {
	h := fnv.New64a()
	h.Write(body)
	return fmt.Sprintf("body:%x", h.Sum64())
}

// handleEstimate decodes the workload (JSON or SPB1), routes by the
// engine's workload content key, and relays the shard's bytes
// verbatim. The shard hop is always SPB1 when the body decodes — the
// compact encoding — while the response encoding follows the client's
// own Accept header, which passes through untouched.
func (rt *Router) handleEstimate(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/estimate"
	body, tooBig := rt.readBody(w, r)
	if tooBig {
		rt.mRequests[route].Inc()
		rt.reject(w, route, "body_too_large", http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes", rt.cfg.MaxBodyBytes)
		return
	}

	key := ""
	upstreamBody := body
	upstreamCT := r.Header.Get("Content-Type")
	if req, err := decodeEstimate(body, upstreamCT); err == nil && len(req.Samples) > 0 {
		key = engine.WorkloadKey(req.Samples)
		upstreamBody = wire.AppendEstimateRequest(nil, req)
		upstreamCT = wire.ContentTypeBin
	} else {
		// Undecodable or empty payloads still route — to a stable shard
		// — so the client receives the shard's canonical error body,
		// byte-identical to what a single node would say.
		key = bodyKey(body)
	}

	rt.serveRelay(w, r, route, key, client.RawRequest{
		Path:        "/v1/estimate",
		Query:       r.URL.RawQuery,
		Body:        upstreamBody,
		ContentType: upstreamCT,
		Accept:      r.Header.Get("Accept"),
		Tenant:      r.Header.Get(client.TenantHeader),
		Idempotent:  true,
	})
}

// decodeEstimate parses an estimate body in either wire format into the
// binary request shape.
func decodeEstimate(body []byte, contentType string) (*wire.EstimateRequest, error) {
	if wire.IsBinMedia(contentType) {
		return wire.DecodeEstimateRequest(body)
	}
	var req struct {
		Samples []core.Sample     `json:"samples"`
		Top     int               `json:"top"`
		Workers int               `json:"workers"`
		Sched   []core.SchedEvent `json:"sched"`
	}
	// Mirror serve's decodeQuiet strictness exactly (unknown fields
	// tolerated, trailing data rejected): a body serve would reject must
	// fail here too, falling back to raw forwarding so the shard's
	// canonical error — identical to a single node's — reaches the
	// client.
	dec := json.NewDecoder(bytes.NewReader(body))
	if err := dec.Decode(&req); err != nil {
		return nil, err
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("trailing data after JSON body")
	}
	return &wire.EstimateRequest{Top: req.Top, Workers: req.Workers, Samples: req.Samples, Sched: req.Sched}, nil
}

// handleIngest routes a stateless parse by body content hash.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/ingest"
	body, tooBig := rt.readBody(w, r)
	if tooBig {
		rt.mRequests[route].Inc()
		rt.reject(w, route, "body_too_large", http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes", rt.cfg.MaxBodyBytes)
		return
	}
	rt.serveRelay(w, r, route, bodyKey(body), client.RawRequest{
		Path:        "/v1/ingest",
		Query:       r.URL.RawQuery,
		Body:        body,
		ContentType: r.Header.Get("Content-Type"),
		Accept:      r.Header.Get("Accept"),
		Tenant:      r.Header.Get(client.TenantHeader),
		Idempotent:  true,
	})
}

// handleStream proxies feed POSTs and SSE GETs to a tenant-sticky
// shard: a tenant's feeds and subscriptions share one shard's hub, so
// subscribers see the windows their feeds close. Streams are
// long-lived and incremental — they bypass DoRaw's buffered relay and
// ride a flushing reverse proxy instead.
func (rt *Router) handleStream(w http.ResponseWriter, r *http.Request) {
	key := "stream:" + r.Header.Get(client.TenantHeader)
	var target *shard
	for _, sh := range rt.pick(key) {
		target = sh
		break
	}
	if target == nil {
		writeError(w, http.StatusServiceUnavailable, "no healthy shard available")
		return
	}
	rt.mStreams.Inc()
	w.Header().Set("X-Spire-Shard", target.name)
	target.proxy.ServeHTTP(w, r)
}

// --- model replication ----------------------------------------------

// handleModelsPost validates the uploaded model, records it as the
// replication source of truth, and pushes it to every healthy shard.
// The response aggregates per-shard outcomes; the sync loop repairs any
// shard that was down or diverged.
func (rt *Router) handleModelsPost(w http.ResponseWriter, r *http.Request) {
	body, tooBig := rt.readBody(w, r)
	if tooBig {
		writeError(w, http.StatusRequestEntityTooLarge, "model exceeds %d bytes", rt.cfg.MaxBodyBytes)
		return
	}
	id, err := rt.SetModel(body)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "model rejected: %v", err)
		return
	}
	pushed, errs := rt.pushAll(r.Context())
	type pushResult struct {
		ID     string   `json:"id"`
		Pushed int      `json:"pushed"`
		Shards int      `json:"shards"`
		Errors []string `json:"errors,omitempty"`
	}
	res := pushResult{ID: id, Pushed: pushed, Shards: len(rt.shards), Errors: errs}
	code := http.StatusOK
	if pushed == 0 {
		// Accepted locally but landed nowhere yet; the sync loop will
		// keep trying. 202 tells the caller convergence is pending.
		code = http.StatusAccepted
	}
	raw, _ := json.Marshal(res)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(raw, '\n'))
}

// handleModelsGet reports the router's source-of-truth model and each
// shard's last-known serving model — the convergence picture.
func (rt *Router) handleModelsGet(w http.ResponseWriter, r *http.Request) {
	rt.modelMu.RLock()
	id := rt.modelID
	rt.modelMu.RUnlock()
	type shardModel struct {
		Model   string `json:"model,omitempty"`
		Healthy bool   `json:"healthy"`
	}
	out := struct {
		Current string                `json:"current,omitempty"`
		Shards  map[string]shardModel `json:"shards"`
	}{Current: id, Shards: make(map[string]shardModel, len(rt.shards))}
	for _, sh := range rt.shards {
		out.Shards[sh.name] = shardModel{
			Model:   sh.modelID.Load().(string),
			Healthy: sh.healthy.Load(),
		}
	}
	raw, _ := json.Marshal(out)
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(raw, '\n'))
}

// pushAll pushes the current model to every diverged shard. It
// deliberately ignores the health flag: a freshly restarted shard is
// reachable but UNready (no model yet, so its /readyz says 503) — the
// push is exactly what makes it ready. Skipping unhealthy shards here
// would deadlock the recovery: unready because no model, no model
// because unready. Truly dead shards just fail the POST quickly.
func (rt *Router) pushAll(ctx context.Context) (pushed int, errs []string) {
	rt.modelMu.RLock()
	blob, id := rt.modelBytes, rt.modelID
	rt.modelMu.RUnlock()
	if id == "" {
		return 0, nil
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		if sh.modelID.Load().(string) == id {
			continue
		}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			err := rt.pushOne(ctx, sh, blob, id)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Sprintf("%s: %v", sh.name, err))
				return
			}
			pushed++
		}(sh)
	}
	wg.Wait()
	return pushed, errs
}

// pushOne POSTs the blob to one shard and verifies the shard derived
// the same fingerprint — content addressing makes the push idempotent
// and detects corruption in transit.
func (rt *Router) pushOne(ctx context.Context, sh *shard, blob []byte, id string) error {
	res, err := sh.cl.DoRaw(ctx, client.RawRequest{
		Path:        "/v1/models",
		Body:        blob,
		ContentType: "application/octet-stream",
		Idempotent:  true,
	})
	if err != nil {
		sh.healthy.Store(false)
		return err
	}
	if res.Status != http.StatusOK {
		return fmt.Errorf("status %d: %s", res.Status, strings.TrimSpace(string(res.Body)))
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(res.Body, &info); err != nil {
		return fmt.Errorf("bad model response: %w", err)
	}
	if info.ID != id {
		return fmt.Errorf("fingerprint mismatch: pushed %s, shard derived %s", id, info.ID)
	}
	sh.modelID.Store(id)
	rt.mPushes.Inc()
	return nil
}

// --- background loops -----------------------------------------------

func (rt *Router) healthLoop(ctx context.Context) {
	defer rt.loops.Done()
	tick := time.NewTicker(time.Duration(rt.cfg.HealthInterval))
	defer tick.Stop()
	for {
		rt.probeAll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-rt.closed:
			return
		case <-tick.C:
		}
	}
}

// probeAll refreshes every shard's health and serving model in one
// sweep; concurrent so one dead shard's timeout doesn't delay the rest.
func (rt *Router) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, time.Duration(rt.cfg.HealthInterval))
			defer cancel()
			ready, err := sh.cl.Readyz(pctx)
			ok := err == nil && ready
			sh.healthy.Store(ok)
			if ok {
				rt.mHealthy[i].Set(1)
				rt.refreshShardModel(pctx, sh)
			} else {
				rt.mHealthy[i].Set(0)
				// A restarted shard comes back empty; forget its model so
				// the sync loop re-pushes.
				sh.modelID.Store("")
			}
		}(i, sh)
	}
	wg.Wait()
}

// refreshShardModel records what the shard says it is serving.
func (rt *Router) refreshShardModel(ctx context.Context, sh *shard) {
	res, err := sh.cl.DoRaw(ctx, client.RawRequest{Method: http.MethodGet, Path: "/v1/models", Idempotent: true})
	if err != nil || res.Status != http.StatusOK {
		return
	}
	var out struct {
		Current *struct {
			ID string `json:"id"`
		} `json:"current"`
	}
	if json.Unmarshal(res.Body, &out) == nil {
		if out.Current != nil {
			sh.modelID.Store(out.Current.ID)
		} else {
			sh.modelID.Store("")
		}
	}
}

func (rt *Router) syncLoop(ctx context.Context) {
	defer rt.loops.Done()
	tick := time.NewTicker(time.Duration(rt.cfg.SyncInterval))
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-rt.closed:
			return
		case <-tick.C:
			rt.pushAll(ctx)
		}
	}
}

// --- health & metrics endpoints -------------------------------------

// RouterHealth is the router's GET /healthz response body. Like the
// shard endpoint it carries the build info, so a cluster operator can
// audit version skew across the fleet from health probes alone.
type RouterHealth struct {
	Status    string `json:"status"`
	Shards    int    `json:"shards"`
	Version   string `json:"version"`
	Revision  string `json:"revision,omitempty"`
	GoVersion string `json:"goVersion"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	raw, _ := json.Marshal(RouterHealth{
		Status:    "ok",
		Shards:    len(rt.shards),
		Version:   buildinfo.Version,
		Revision:  buildinfo.Revision(),
		GoVersion: buildinfo.GoVersion(),
	})
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(raw, '\n'))
}

// handleReadyz is ready when at least one shard is — a router with no
// backends cannot serve anything.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	for _, sh := range rt.shards {
		if sh.healthy.Load() {
			healthy++
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if rt.draining.Load() || healthy == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "unready: %d/%d shards healthy\n", healthy, len(rt.shards))
		return
	}
	fmt.Fprintf(w, "ok: %d/%d shards healthy\n", healthy, len(rt.shards))
}

// aggregated families pulled from shard /metrics into the router's own
// exposition under a shard label — the cluster-wide serving picture at
// one scrape address.
var aggregateFamilies = []string{
	"spire_estimates_served_total",
	"spire_estimates_degraded_total",
	"spire_ingested_samples_total",
	"spire_model_swaps_total",
}

// handleMetrics renders the router's own registry, then appends
// shard-labelled copies of a fixed allowlist of backend families,
// scraped live. One scrape endpoint tells the whole cluster story; a
// down shard simply contributes nothing this scrape.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.reg.Render(w)

	type scraped struct {
		name  string
		lines []string
	}
	results := make([]scraped, len(rt.shards))
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		if !sh.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
			defer cancel()
			res, err := sh.cl.DoRaw(ctx, client.RawRequest{Method: http.MethodGet, Path: "/metrics", Idempotent: true})
			if err != nil || res.Status != http.StatusOK {
				return
			}
			results[i] = scraped{name: sh.name, lines: filterFamilies(string(res.Body), aggregateFamilies)}
		}(i, sh)
	}
	wg.Wait()
	for _, sc := range results {
		for _, line := range sc.lines {
			fmt.Fprintf(w, "%s\n", relabelWithShard(line, sc.name))
		}
	}
}

// filterFamilies keeps sample lines (not comments) whose family is in
// the allowlist.
func filterFamilies(exposition string, families []string) []string {
	var out []string
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		for _, fam := range families {
			if name == fam {
				out = append(out, line)
				break
			}
		}
	}
	return out
}

// relabelWithShard rewrites `family{a="b"} v` / `family v` into
// `spire_cluster_family{shard="name",a="b"} v`.
func relabelWithShard(line, shard string) string {
	name := line
	rest := ""
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name, rest = line[:i], line[i:]
	}
	label := fmt.Sprintf("{shard=%q", shard)
	switch {
	case strings.HasPrefix(rest, "{"):
		return "spire_cluster_" + strings.TrimPrefix(name, "spire_") + label + "," + rest[1:]
	default:
		return "spire_cluster_" + strings.TrimPrefix(name, "spire_") + label + "}" + rest
	}
}

// --- serving --------------------------------------------------------

// Serve runs the router on ln with background loops until ctx is
// canceled, then flips readiness, drains for up to drain, and returns.
func (rt *Router) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	rt.Run(ctx)
	srv := &http.Server{Handler: rt.handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		rt.Close()
		return err
	case <-ctx.Done():
	}
	// Drain order mirrors serve: readiness flips first so load
	// balancers stop sending, then in-flight exchanges finish.
	rt.draining.Store(true)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(sctx)
	rt.Close()
	return err
}
