package cluster_test

// Endpoint-level router behaviour that the differential and soak suites
// don't pin directly: tenant-sticky stream proxying, shard quota
// passthrough, readiness semantics, the aggregated metrics view, and
// placement stickiness.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"spire/internal/client"
	"spire/internal/cluster"
	"spire/internal/serve"
	"spire/internal/testutil"
)

// TestRouterStreamStickyProxy: a tenant's feed and subscription land on
// the same shard through the router, so windows close end to end; SSE
// frames flush through the proxy as they are produced.
func TestRouterStreamStickyProxy(t *testing.T) {
	_, model := testutil.TrainModel(t, 1)
	tc := startCluster(t, clusterOpts{shards: 3, shardCfg: serve.Config{StreamWindow: 1}})
	tc.waitConverged(t, tc.pushModel(t, model), 5*time.Second)

	hdr := http.Header{client.TenantHeader: []string{"tenant-a"}}
	events, stop := testutil.SSESubscribe(t, tc.url+"/v1/stream", hdr)
	defer stop()

	csv := func(ts int) string {
		return fmt.Sprintf("%d.0,100,,cycles,1,100.00,,\n%d.0,50,,instructions,1,100.00,,\n"+
			"%d.0,10,,m1,1,25.00,,\n%d.0,7,,m2,1,25.00,,\n", ts, ts, ts, ts)
	}
	feed := func(ts int) {
		req, err := http.NewRequest(http.MethodPost, tc.url+"/v1/stream", strings.NewReader(csv(ts)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "text/csv")
		req.Header.Set(client.TenantHeader, "tenant-a")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feed %d status %d", ts, resp.StatusCode)
		}
	}
	// Interval 1 closes when interval 2 opens — two feeds, one window.
	feed(1)
	feed(2)
	ev := testutil.NextSSE(t, events)
	if ev.Event != "window" {
		t.Fatalf("first SSE event %q, want window", ev.Event)
	}
	var res struct {
		Seq   int    `json:"seq"`
		Model string `json:"model"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(ev.Data, &res); err != nil {
		t.Fatalf("SSE payload %s: %v", ev.Data, err)
	}
	if res.Seq != 1 || res.Error != "" || res.Model == "" {
		t.Fatalf("window result through proxy: %+v", res)
	}
}

// TestRouterQuotaPassthrough: per-tenant quotas live on the shards; the
// router relays a shard's 429 verbatim — status, Retry-After, body —
// and books it as a RELAYED outcome, not a router rejection. Admission
// stays a serving-tier decision; the router never second-guesses it.
func TestRouterQuotaPassthrough(t *testing.T) {
	_, model := testutil.TrainModel(t, 1)
	// One shard so every request hits the same quota bucket.
	tc := startCluster(t, clusterOpts{
		shards:   1,
		shardCfg: serve.Config{TenantRate: 0.0001, TenantBurst: 2},
	})
	tc.waitConverged(t, tc.pushModel(t, model), 5*time.Second)

	body, err := json.Marshal(serve.EstimateRequest{Samples: testutil.Workload(0)})
	if err != nil {
		t.Fatal(err)
	}
	var got429 bool
	for i := 0; i < 6; i++ {
		req, err := http.NewRequest(http.MethodPost, tc.url+"/v1/estimate", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(client.TenantHeader, "greedy")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw := testutil.ReadBody(t, resp)
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Error("relayed 429 lost its Retry-After header")
			}
			if !strings.Contains(string(raw), "overloaded") {
				t.Errorf("relayed 429 body %q is not the shard's admission error", raw)
			}
		}
	}
	if !got429 {
		t.Fatal("quota of 2 burst never produced a 429 across 6 requests")
	}
	exposition := testutil.ScrapeMetrics(t, tc.url)
	testutil.AssertRouteBooksBalance(t, exposition, "/v1/estimate")
	if rej := testutil.SumMetric(t, exposition, "spire_route_rejected_total", `route="/v1/estimate"`); rej != 0 {
		t.Errorf("shard 429s were booked as router rejections (%v); they are relays", rej)
	}
}

// TestRouterReadiness: the router is ready iff ≥1 shard is ready, and
// flips back as shards come and go. /healthz is liveness only — always
// 200 while the process serves.
func TestRouterReadiness(t *testing.T) {
	_, model := testutil.TrainModel(t, 1)
	tc := startCluster(t, clusterOpts{shards: 2})
	tc.waitConverged(t, tc.pushModel(t, model), 5*time.Second)

	if code, _ := testutil.HTTPGet(t, tc.url+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz %d", code)
	}
	if code, body := testutil.HTTPGet(t, tc.url+"/readyz"); code != http.StatusOK || !strings.Contains(string(body), "2/2") {
		t.Fatalf("readyz with all shards up: %d %s", code, body)
	}

	// Kill both shards: readiness must flip to 503 once probes notice.
	for _, sh := range tc.shards {
		sh.stop()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := testutil.HTTPGet(t, tc.url+"/readyz")
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router stayed ready with every shard dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code, _ := testutil.HTTPGet(t, tc.url+"/healthz"); code != http.StatusOK {
		t.Fatal("healthz must stay 200 while unready — liveness is not readiness")
	}

	// Restart: replication + probes must restore readiness without any
	// operator action.
	for _, sh := range tc.shards {
		sh.start()
	}
	tc.waitReady(t, 10*time.Second)
}

// TestRouterMetricsAggregation: one scrape of the router shows the
// router's own families AND shard-labelled copies of the backend
// serving counters, summing to the traffic actually served.
func TestRouterMetricsAggregation(t *testing.T) {
	_, model := testutil.TrainModel(t, 1)
	tc := startCluster(t, clusterOpts{shards: 3})
	tc.waitConverged(t, tc.pushModel(t, model), 5*time.Second)

	c, err := client.New(client.Config{BaseURL: tc.url, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := c.Estimate(context.Background(), testutil.Workload(i%6), client.EstimateOptions{}); err != nil {
			t.Fatalf("estimate %d: %v", i, err)
		}
	}
	exposition := testutil.ScrapeMetrics(t, tc.url)
	if served := testutil.SumMetric(t, exposition, "spire_cluster_estimates_served_total"); served != n {
		t.Errorf("aggregated shard estimates %v, want %d\n%s", served, n, exposition)
	}
	// Per-shard labels present, one series per shard that served.
	var labelled int
	for _, sh := range tc.shards {
		if strings.Contains(exposition, fmt.Sprintf("spire_cluster_estimates_served_total{shard=%q", sh.name)) {
			labelled++
		}
	}
	if labelled == 0 {
		t.Error("no shard-labelled aggregate series in router exposition")
	}
	if testutil.SumMetric(t, exposition, "spire_route_relayed_total", `route="/v1/estimate"`) != n {
		t.Errorf("router relay count missing from exposition")
	}
}

// TestRouterPlacementSticky: the same workload routes to the same shard
// every time (X-Spire-Shard header), and distinct workloads spread.
func TestRouterPlacementSticky(t *testing.T) {
	_, model := testutil.TrainModel(t, 1)
	tc := startCluster(t, clusterOpts{shards: 4})
	tc.waitConverged(t, tc.pushModel(t, model), 5*time.Second)

	shardOf := func(k int) string {
		body, err := json.Marshal(serve.EstimateRequest{Samples: testutil.Workload(k)})
		if err != nil {
			t.Fatal(err)
		}
		_, hdr, _ := testutil.HTTPPost(t, tc.url+"/v1/estimate", "application/json", body)
		name := hdr.Get("X-Spire-Shard")
		if name == "" {
			t.Fatal("relay response missing X-Spire-Shard")
		}
		return name
	}
	spread := map[string]bool{}
	for k := 0; k < 12; k++ {
		first := shardOf(k)
		spread[first] = true
		for rep := 0; rep < 3; rep++ {
			if again := shardOf(k); again != first {
				t.Fatalf("workload %d moved %s→%s with stable membership", k, first, again)
			}
		}
	}
	if len(spread) < 2 {
		t.Errorf("12 workloads all routed to one shard: %v", spread)
	}
}

// TestRouterModelEndpoints: upload validation and the convergence view.
func TestRouterModelEndpoints(t *testing.T) {
	_, model := testutil.TrainModel(t, 1)
	tc := startCluster(t, clusterOpts{shards: 2})

	// Garbage model: 422, nothing replicated.
	code, _, body := testutil.HTTPPost(t, tc.url+"/v1/models", "application/octet-stream", []byte("not a model"))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("garbage model: status %d %s", code, body)
	}

	id := tc.pushModel(t, model)
	tc.waitConverged(t, id, 5*time.Second)

	code, body = testutil.HTTPGet(t, tc.url+"/v1/models")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/models: %d", code)
	}
	var out struct {
		Current string `json:"current"`
		Shards  map[string]struct {
			Model   string `json:"model"`
			Healthy bool   `json:"healthy"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("models view %s: %v", body, err)
	}
	if out.Current != id || len(out.Shards) != 2 {
		t.Fatalf("models view: %+v, want current %s over 2 shards", out, id)
	}
	for name, sm := range out.Shards {
		if sm.Model != id || !sm.Healthy {
			t.Errorf("shard %s view %+v, want converged healthy", name, sm)
		}
	}

	// Idempotent re-push of the same bytes: same id, zero or more pushes,
	// still 200.
	if again := tc.pushModel(t, model); again != id {
		t.Fatalf("re-push changed id %s→%s", id, again)
	}
}

// TestRouterDeadShards: a router whose entire membership is unreachable
// rejects with 503 and books every request — no hangs, no leaks.
func TestRouterDeadShards(t *testing.T) {
	rt, err := cluster.NewRouter(cluster.Config{
		Shards: []cluster.Shard{
			{Name: "gone-1", URL: "http://127.0.0.1:1"},
			{Name: "gone-2", URL: "http://127.0.0.1:1"},
		},
		ShardTimeout:   cluster.Duration(2 * time.Second),
		HealthInterval: cluster.Duration(25 * time.Millisecond),
		SyncInterval:   cluster.Duration(time.Hour),
	}, cluster.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ts := testutil.StartHTTP(t, rt.Handler())

	body, err := json.Marshal(serve.EstimateRequest{Samples: testutil.Workload(0)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		code, _, raw := testutil.HTTPPost(t, ts.URL+"/v1/estimate", "application/json", body)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("estimate against dead membership: %d %s", code, raw)
		}
	}
	exposition := testutil.ScrapeMetrics(t, ts.URL)
	testutil.AssertRouteBooksBalance(t, exposition, "/v1/estimate")
	if rej := testutil.SumMetric(t, exposition, "spire_route_rejected_total", `route="/v1/estimate"`, `reason="no_shard"`); rej != 3 {
		t.Errorf("no_shard rejections %v, want 3", rej)
	}
}
