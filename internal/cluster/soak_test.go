package cluster_test

// The kill/restart soak: retrying clients hammer the router while a
// reaper cycles shards down and up — abrupt kills, restarts with EMPTY
// model registries on the same address. Run under -race by `make
// chaos-cluster`. The contract:
//
//   - zero hangs: the whole soak completes inside its deadline;
//   - byte parity survives failover: every successful estimate equals
//     the pre-soak golden for its workload;
//   - the routed books balance exactly: requests == relayed{primary} +
//     relayed{failover} + Σ rejected{reason};
//   - the cluster re-converges: after the last restart every shard
//     serves the same fingerprint again.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spire/internal/client"
	"spire/internal/testutil"
)

func TestClusterKillRestartSoak(t *testing.T) {
	_, model := testutil.TrainModel(t, 1)
	tc := startCluster(t, clusterOpts{shards: 4})
	id := tc.pushModel(t, model)
	tc.waitConverged(t, id, 5*time.Second)

	const workloads = 4
	plain, err := client.New(client.Config{BaseURL: tc.url, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	goldens := make([][]byte, workloads)
	for k := range goldens {
		res, err := plain.Estimate(context.Background(), testutil.Workload(k), client.EstimateOptions{})
		if err != nil {
			t.Fatalf("golden %d: %v", k, err)
		}
		goldens[k] = res.Raw
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	const (
		goroutines = 6
		iterations = 25
	)
	var calls, failures, pushes atomic.Int64
	var wg sync.WaitGroup

	// Estimators: retrying clients; successes must match goldens even
	// when served by a failover shard.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.New(client.Config{
				BaseURL:     tc.url,
				Tenant:      fmt.Sprintf("tenant-%d", g%3),
				HTTPClient:  &http.Client{Timeout: 20 * time.Second},
				MaxAttempts: 6,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    100 * time.Millisecond,
				Seed:        int64(g + 1),
			})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iterations && ctx.Err() == nil; i++ {
				k := (g + i) % workloads
				calls.Add(1)
				res, err := c.Estimate(ctx, testutil.Workload(k), client.EstimateOptions{})
				if err != nil {
					// Mid-kill the router may answer 503 (no shard) and the
					// budget can run out; that is a classified failure, not
					// a parity break. 4xx would be a real bug.
					failures.Add(1)
					var ae *client.APIError
					if errors.As(err, &ae) && ae.Status != http.StatusServiceUnavailable &&
						ae.Status != http.StatusTooManyRequests && ae.Status != http.StatusBadGateway {
						t.Errorf("estimator %d: unexpected API failure: %v", g, err)
					}
					continue
				}
				if !bytes.Equal(res.Raw, goldens[k]) {
					t.Errorf("estimator %d iter %d: routed estimate diverged from golden (%d vs %d bytes)",
						g, i, len(res.Raw), len(goldens[k]))
				}
				time.Sleep(time.Millisecond)
			}
		}(g)
	}

	// Pusher: re-POSTs the same model through the router. Content
	// addressing makes this idempotent; it races the sync loop on
	// freshly restarted shards, which is the point.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20 && ctx.Err() == nil; i++ {
			code, _, _ := testutil.HTTPPost(t, tc.url+"/v1/models", "application/octet-stream", model)
			if code == http.StatusOK || code == http.StatusAccepted {
				pushes.Add(1)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Reaper: kills each shard in turn — abruptly — waits, restarts it
	// empty on the same address, and lets the router re-replicate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(7))
		for round := 0; round < 2 && ctx.Err() == nil; round++ {
			for _, sh := range tc.shards {
				sh.stop()
				time.Sleep(time.Duration(30+r.Intn(60)) * time.Millisecond)
				sh.start()
				// Let health + model sync catch up before the next kill so
				// at most one shard is down at a time.
				time.Sleep(150 * time.Millisecond)
			}
		}
	}()

	wg.Wait()
	if ctx.Err() != nil {
		t.Fatal("soak hit its deadline — something hung")
	}

	// Re-convergence: every (restarted, empty) shard must be serving the
	// fingerprint again.
	tc.waitConverged(t, id, 10*time.Second)
	for i, sh := range tc.shards {
		srv := sh.server()
		if srv == nil {
			t.Fatalf("shard %d not running after soak", i)
		}
		_, info := srv.Models().Current()
		if info == nil || info.ID != id {
			t.Errorf("shard %d model after soak = %+v, want %s", i, info, id)
		}
	}

	total, failed := calls.Load(), failures.Load()
	exposition := testutil.ScrapeMetrics(t, tc.url)
	failovers := testutil.MustMetric(t, exposition, "spire_route_failovers_total")
	t.Logf("soak: %d calls, %d failed, %d model pushes, %v failovers", total, failed, pushes.Load(), failovers)

	// The identity that makes the soak a test and not a demo.
	testutil.AssertRouteBooksBalance(t, exposition, "/v1/estimate")
	if failed*4 > total {
		t.Fatalf("error rate too high: %d/%d calls failed", failed, total)
	}
	if pushes.Load() == 0 {
		t.Fatal("no model push succeeded during the soak")
	}
	// Requests kept flowing while shards died, so some must have been
	// answered by a non-home shard.
	if failovers == 0 {
		t.Error("soak killed every shard twice yet recorded zero failovers")
	}
}
