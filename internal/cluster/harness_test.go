package cluster_test

// The in-process cluster harness: N real serve.Server shards on
// loopback listeners plus one Router in front, with shard kill/restart
// on a *fixed* address — the router must rediscover a reborn shard at
// the same URL and re-replicate the model into its empty registry.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spire/internal/cluster"
	"spire/internal/serve"
	"spire/internal/testutil"
)

// testShard is one restartable backend.
type testShard struct {
	t    testing.TB
	name string
	cfg  serve.Config

	mu   sync.Mutex
	addr string // fixed after the first start
	srv  *serve.Server
	hsrv *http.Server
}

// start listens (first time on :0, afterwards on the remembered
// address) and serves a FRESH serve.Server — a restarted shard has an
// empty model registry, exactly like a re-scheduled process without a
// model dir.
func (s *testShard) start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hsrv != nil {
		s.t.Fatalf("shard %s already running", s.name)
	}
	addr := s.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	// The old listener just closed; give the kernel a beat to release
	// the port on the rare contended restart.
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		s.t.Fatalf("shard %s listen %s: %v", s.name, addr, err)
	}
	s.addr = ln.Addr().String()
	s.srv = serve.New(s.cfg)
	s.hsrv = &http.Server{Handler: s.srv.Handler()}
	go s.hsrv.Serve(ln)
}

// stop kills the shard abruptly (no drain) — the crash the soak
// simulates.
func (s *testShard) stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hsrv == nil {
		return
	}
	s.hsrv.Close()
	s.srv.Close()
	s.hsrv, s.srv = nil, nil
}

func (s *testShard) url() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return "http://" + s.addr
}

// server returns the live serve.Server, nil while stopped.
func (s *testShard) server() *serve.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.srv
}

// testCluster is a router fronting n shards.
type testCluster struct {
	router *cluster.Router
	rts    *httptest.Server
	shards []*testShard
	url    string
}

// clusterOpts tweak the harness.
type clusterOpts struct {
	shards    int
	shardCfg  serve.Config
	transport http.RoundTripper
	tune      func(*cluster.Config)
}

// startCluster boots shards, then the router with fast probe/sync
// intervals, and registers teardown.
func startCluster(t testing.TB, opts clusterOpts) *testCluster {
	t.Helper()
	if opts.shards == 0 {
		opts.shards = 4
	}
	tc := &testCluster{}
	cfg := cluster.Config{
		HealthInterval: cluster.Duration(25 * time.Millisecond),
		SyncInterval:   cluster.Duration(25 * time.Millisecond),
		ShardTimeout:   cluster.Duration(20 * time.Second),
	}
	for i := 0; i < opts.shards; i++ {
		sh := &testShard{t: t, name: fmt.Sprintf("shard-%d", i), cfg: opts.shardCfg}
		sh.start()
		tc.shards = append(tc.shards, sh)
		cfg.Shards = append(cfg.Shards, cluster.Shard{Name: sh.name, URL: sh.url()})
	}
	if opts.tune != nil {
		opts.tune(&cfg)
	}
	rt, err := cluster.NewRouter(cfg, cluster.RouterOptions{Transport: opts.transport})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt.Run(ctx)
	tc.router = rt
	tc.rts = httptest.NewServer(rt.Handler())
	tc.url = tc.rts.URL
	t.Cleanup(func() {
		tc.rts.Close()
		cancel()
		rt.Close()
		for _, sh := range tc.shards {
			sh.stop()
		}
	})
	return tc
}

// pushModel installs a model through the router and returns its id.
func (tc *testCluster) pushModel(t testing.TB, blob []byte) string {
	t.Helper()
	code, _, body := testutil.HTTPPost(t, tc.url+"/v1/models", "application/octet-stream", blob)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("model push status %d: %s", code, body)
	}
	var res struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("model push response %s: %v", body, err)
	}
	return res.ID
}

// waitConverged polls GET /v1/models until every shard reports the
// model id, or fails after deadline.
func (tc *testCluster) waitConverged(t testing.TB, id string, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		code, body := testutil.HTTPGet(t, tc.url+"/v1/models")
		if code == http.StatusOK {
			var out struct {
				Current string `json:"current"`
				Shards  map[string]struct {
					Model   string `json:"model"`
					Healthy bool   `json:"healthy"`
				} `json:"shards"`
			}
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatalf("models response %s: %v", body, err)
			}
			done := out.Current == id && len(out.Shards) == len(tc.shards)
			for _, sm := range out.Shards {
				if sm.Model != id || !sm.Healthy {
					done = false
				}
			}
			if done {
				return
			}
		}
		if time.Now().After(stop) {
			_, body := testutil.HTTPGet(t, tc.url+"/v1/models")
			t.Fatalf("cluster did not converge on model %s within %s: %s", id, deadline, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitReady polls the router's /readyz until 200.
func (tc *testCluster) waitReady(t testing.TB, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		code, _ := testutil.HTTPGet(t, tc.url+"/readyz")
		if code == http.StatusOK {
			return
		}
		if time.Now().After(stop) {
			t.Fatalf("router not ready within %s", deadline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startSingle boots the reference single-node server with the same
// model — the differential suite's source of truth.
func startSingle(t testing.TB, cfg serve.Config, model []byte) *httptest.Server {
	t.Helper()
	s := serve.New(cfg)
	t.Cleanup(s.Close)
	if _, err := s.Models().Load(bytes.NewReader(model), "single"); err != nil {
		t.Fatal(err)
	}
	return testutil.StartHTTP(t, s.Handler())
}
