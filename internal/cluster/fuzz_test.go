package cluster

// Fuzzing the membership/config surface: everything a cluster config
// file or -shards flag can contain must either parse into a config
// whose invariants hold, or fail with a clean error — never panic,
// never accept a config Validate would reject, never produce a ring
// the router cannot build.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func FuzzParseConfig(f *testing.F) {
	f.Add([]byte(`{"shards":[{"name":"a","url":"http://127.0.0.1:9090"}]}`))
	f.Add([]byte(`{"shards":[{"name":"a","url":"http://h:1"},{"name":"b","url":"https://h:2/"}],"vnodes":128,"loadFactor":2,"healthInterval":"500ms","syncInterval":"3s","shardTimeout":"10s","shardAttempts":3,"maxBodyBytes":1024}`))
	f.Add([]byte(`{"shards":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"shards":[{"name":"a","url":"http://h"}],"vnodes":-1}`))
	f.Add([]byte(`{"shards":[{"name":"a","url":"http://h"}],"healthInterval":5}`))
	f.Add([]byte(`{"shards":[{"name":"a","url":"http://h"}]} {}`))
	f.Add([]byte(`{"shards":[{"name":"` + strings.Repeat("x", 65) + `","url":"http://h"}]}`))
	f.Add([]byte("\x00\x01\x02"))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(bytes.NewReader(data))
		if err != nil {
			if cfg != nil {
				t.Fatal("non-nil config returned alongside an error")
			}
			return
		}
		// A successful parse must uphold every invariant Validate
		// promises — downstream code builds rings and clients from these
		// fields without re-checking.
		if len(cfg.Shards) == 0 {
			t.Fatal("accepted config with no shards")
		}
		names := map[string]bool{}
		for _, sh := range cfg.Shards {
			if !shardNameOK(sh.Name) || names[sh.Name] {
				t.Fatalf("accepted bad/duplicate shard name %q", sh.Name)
			}
			names[sh.Name] = true
			if !strings.HasPrefix(sh.URL, "http://") && !strings.HasPrefix(sh.URL, "https://") {
				t.Fatalf("accepted non-http url %q", sh.URL)
			}
		}
		if cfg.VNodes < 1 || cfg.VNodes > maxVNodes {
			t.Fatalf("accepted vnodes %d", cfg.VNodes)
		}
		if cfg.LoadFactor < 1 || cfg.LoadFactor > maxLoadFactor {
			t.Fatalf("accepted loadFactor %g", cfg.LoadFactor)
		}
		for _, d := range []Duration{cfg.HealthInterval, cfg.SyncInterval, cfg.ShardTimeout} {
			if time.Duration(d) < minInterval {
				t.Fatalf("accepted interval %s below minimum", time.Duration(d))
			}
		}
		// Validate must be idempotent on its own output.
		before := *cfg
		if err := cfg.Validate(); err != nil {
			t.Fatalf("re-validation of accepted config failed: %v", err)
		}
		if cfg.VNodes != before.VNodes || cfg.LoadFactor != before.LoadFactor {
			t.Fatal("re-validation changed an already-defaulted config")
		}
		// The accepted config must round-trip through its own encoding.
		enc, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("accepted config does not re-marshal: %v", err)
		}
		if _, err := ParseConfig(bytes.NewReader(enc)); err != nil {
			t.Fatalf("re-marshalled config does not re-parse: %v\n%s", err, enc)
		}
		// And the ring it implies must build: every walk a permutation.
		names2 := make([]string, len(cfg.Shards))
		for i, sh := range cfg.Shards {
			names2[i] = sh.Name
		}
		// Cap ring size so fuzzing stays fast regardless of vnodes.
		vn := cfg.VNodes
		if vn > 16 {
			vn = 16
		}
		rg := buildRing(names2, vn)
		if got := len(rg.walk("probe")); got != len(cfg.Shards) {
			t.Fatalf("ring walk visited %d of %d shards", got, len(cfg.Shards))
		}
	})
}

func FuzzParseShardList(f *testing.F) {
	f.Add("a=http://127.0.0.1:9090")
	f.Add("a=http://h:1,b=http://h:2")
	f.Add("a=http://h:1, b = http://h:2 ")
	f.Add("")
	f.Add(",")
	f.Add("a=http://h,,b=http://h")
	f.Add("no-equals")
	f.Add("x=")
	f.Add("=http://h")
	f.Add("a=http://h?q=1,b=ftp://h")

	f.Fuzz(func(t *testing.T, s string) {
		shards, err := ParseShardList(s)
		if err != nil {
			if shards != nil {
				t.Fatal("non-nil shards returned alongside an error")
			}
			return
		}
		if len(shards) == 0 {
			t.Fatal("accepted empty shard list")
		}
		// The flag path feeds straight into Validate; the pair must never
		// panic regardless of what the list contained.
		cfg := Config{Shards: shards}
		_ = cfg.Validate()
	})
}
