package cluster_test

// Chaos on the router↔shard hop: the faultinject transport stalls,
// resets, slow-writes, and truncates the router's OWN upstream
// exchanges — relays, health probes, model pushes — while plain clients
// talk to the router over a clean network. The router must absorb the
// damaged hop the way a client would: failover and per-shard retries
// turn injected faults into byte-identical successes or classified
// errors, never hangs and never corrupted relays, with the routed books
// still balancing exactly.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spire/internal/client"
	"spire/internal/faultinject"
	"spire/internal/testutil"
)

func TestChaosClusterHop(t *testing.T) {
	chaos := faultinject.NewChaos(faultinject.ChaosConfig{
		Seed:          11,
		StallRate:     0.08,
		Stall:         time.Millisecond,
		ResetRate:     0.10,
		SlowriteRate:  0.08,
		ChunkSize:     256,
		ChunkDelay:    50 * time.Microsecond,
		TruncateRate:  0.10,
		TruncateAfter: 64,
	})
	_, model := testutil.TrainModel(t, 1)
	tc := startCluster(t, clusterOpts{shards: 4, transport: chaos.Transport(nil)})
	id := tc.pushModel(t, model)
	tc.waitConverged(t, id, 10*time.Second)

	// Goldens through the chaotic hop: retries make them land; bytes are
	// bytes regardless of the weather between router and shard.
	const workloads = 4
	plain, err := client.New(client.Config{BaseURL: tc.url, Seed: 2, MaxAttempts: 8,
		BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	goldens := make([][]byte, workloads)
	for k := range goldens {
		res, err := plain.Estimate(context.Background(), testutil.Workload(k), client.EstimateOptions{})
		if err != nil {
			t.Fatalf("golden %d: %v", k, err)
		}
		goldens[k] = res.Raw
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	const goroutines, iterations = 6, 12
	var calls, failures atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.New(client.Config{
				BaseURL:     tc.url,
				Tenant:      fmt.Sprintf("tenant-%d", g%3),
				HTTPClient:  &http.Client{Timeout: 20 * time.Second},
				MaxAttempts: 6,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(g + 1),
			})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iterations; i++ {
				k := (g + i) % workloads
				calls.Add(1)
				res, err := c.Estimate(ctx, testutil.Workload(k), client.EstimateOptions{})
				if err != nil {
					failures.Add(1)
					var ae *client.APIError
					if errors.As(err, &ae) && ae.Status != http.StatusTooManyRequests &&
						ae.Status != http.StatusServiceUnavailable && ae.Status != http.StatusBadGateway {
						t.Errorf("goroutine %d: unexpected API failure through chaotic hop: %v", g, err)
					}
					continue
				}
				if !bytes.Equal(res.Raw, goldens[k]) {
					t.Errorf("goroutine %d iter %d: estimate diverged through chaotic hop (%d vs %d bytes)",
						g, i, len(res.Raw), len(goldens[k]))
				}
			}
		}(g)
	}
	wg.Wait()
	if ctx.Err() != nil {
		t.Fatal("chaos soak hit its deadline — something hung")
	}

	total, failed := calls.Load(), failures.Load()
	t.Logf("cluster hop chaos: %d calls, %d failed, faults %v", total, failed, chaos.Counts())
	if chaos.Total() == 0 {
		t.Fatal("chaos injected nothing — the soak tested a clean hop")
	}
	if failed*4 > total {
		t.Fatalf("error rate too high: %d/%d calls failed", failed, total)
	}
	testutil.AssertRouteBooksBalance(t, testutil.ScrapeMetrics(t, tc.url), "/v1/estimate")
}

// TestChaosClusterConvergence: model replication itself must converge
// through a damaged hop — push retries plus the sync sweep repair any
// shard whose accept was cut mid-flight.
func TestChaosClusterConvergence(t *testing.T) {
	chaos := faultinject.NewChaos(faultinject.ChaosConfig{
		Seed:          13,
		ResetRate:     0.25,
		TruncateRate:  0.20,
		TruncateAfter: 128,
	})
	_, model := testutil.TrainModel(t, 1)
	tc := startCluster(t, clusterOpts{shards: 5, transport: chaos.Transport(nil)})
	id := tc.pushModel(t, model)
	// A quarter of upstream exchanges die, yet content-addressed
	// convergence is monotone: every sweep can only move shards toward
	// the fingerprint.
	tc.waitConverged(t, id, 20*time.Second)
	if chaos.Total() == 0 {
		t.Fatal("chaos injected nothing")
	}
	t.Logf("converged on %s through faults %v", id[:12], chaos.Counts())
}
