package cluster_test

// The differential byte-parity suite: a routed cluster must be
// observationally indistinguishable from one `spire serve` process.
// For 1000+ randomized request pairs — JSON and SPB1 bodies, JSON and
// SPB1 Accepts, valid, degenerate, and malformed payloads — the routed
// response (status, content type, body bytes) must equal the
// single-node response exactly. This is the cluster tier's contract:
// placement, failover, and re-encoding on the shard hop may change
// WHERE an answer is computed, never WHAT the client reads.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"spire/internal/core"
	"spire/internal/serve"
	"spire/internal/testutil"
	"spire/internal/wire"
)

// parityReq is one generated request, sent identically to both targets.
type parityReq struct {
	kind        string // generator bucket, for failure triage
	body        []byte
	contentType string
	accept      string
}

// parityMetrics is the name pool: the two modeled metrics, the two
// throughput counters, and one the model has never seen.
var parityMetrics = []string{"m1", "m2", "cycles", "instructions", "bogus.metric"}

// randSamples draws a workload of 1..24 samples, occasionally invalid
// (t <= 0) so quarantine behaviour is part of the contract under test.
func randSamples(r *rand.Rand) []core.Sample {
	n := 1 + r.Intn(24)
	samples := make([]core.Sample, n)
	for i := range samples {
		t := 1 + r.Float64()*99
		if r.Intn(12) == 0 {
			t = -t // invalid: quarantined by the engine on both targets
		}
		samples[i] = core.Sample{
			Metric: parityMetrics[r.Intn(len(parityMetrics))],
			T:      t,
			W:      r.Float64() * 16,
			M:      r.Float64() * 20,
			Window: r.Intn(4),
		}
	}
	return samples
}

// genParityRequests produces a deterministic mixed population from one
// seed: mostly valid bodies across both wire formats, plus the
// degenerate and malformed tails where error-path parity lives.
func genParityRequests(seed int64, n int) []parityReq {
	r := rand.New(rand.NewSource(seed))
	reqs := make([]parityReq, 0, n)
	for i := 0; i < n; i++ {
		accept := ""
		if r.Intn(3) == 0 {
			accept = wire.ContentTypeBin
		}
		switch pick := r.Intn(10); {
		case pick < 5: // JSON body
			body, err := json.Marshal(serve.EstimateRequest{
				Samples: randSamples(r), Top: r.Intn(4), Workers: r.Intn(3),
			})
			if err != nil {
				panic(err)
			}
			reqs = append(reqs, parityReq{kind: "json", body: body, contentType: "application/json", accept: accept})
		case pick < 8: // SPB1 body
			body := wire.AppendEstimateRequest(nil, &wire.EstimateRequest{
				Samples: randSamples(r), Top: r.Intn(4), Workers: r.Intn(3),
			})
			reqs = append(reqs, parityReq{kind: "bin", body: body, contentType: wire.ContentTypeBin, accept: accept})
		case pick == 8: // degenerate but well-formed
			switch r.Intn(3) {
			case 0:
				reqs = append(reqs, parityReq{kind: "empty-samples", body: []byte(`{"samples":[]}`), contentType: "application/json", accept: accept})
			case 1:
				reqs = append(reqs, parityReq{kind: "empty-object", body: []byte(`{}`), contentType: "application/json", accept: accept})
			default:
				// Unknown fields are tolerated by serve; the router must
				// not be stricter.
				body, _ := json.Marshal(map[string]any{
					"samples": randSamples(r), "unknown_field": true,
				})
				reqs = append(reqs, parityReq{kind: "unknown-field", body: body, contentType: "application/json", accept: accept})
			}
		default: // malformed
			switch r.Intn(4) {
			case 0:
				reqs = append(reqs, parityReq{kind: "bad-json", body: []byte(`{"samples": [`), contentType: "application/json", accept: accept})
			case 1:
				reqs = append(reqs, parityReq{kind: "trailing", body: []byte(`{"samples":[]} extra`), contentType: "application/json", accept: accept})
			case 2:
				full := wire.AppendEstimateRequest(nil, &wire.EstimateRequest{Samples: randSamples(r)})
				reqs = append(reqs, parityReq{kind: "bin-truncated", body: full[:len(full)-1-r.Intn(8)], contentType: wire.ContentTypeBin, accept: accept})
			default:
				reqs = append(reqs, parityReq{kind: "empty-body", body: nil, contentType: "application/json", accept: accept})
			}
		}
	}
	return reqs
}

// doEstimate posts one parity request and returns the response triple
// that must match across targets.
func doEstimate(t testing.TB, base string, pr parityReq) (int, string, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/estimate", bytes.NewReader(pr.body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", pr.contentType)
	if pr.accept != "" {
		req.Header.Set("Accept", pr.accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), resp.Header.Get("X-Spire-Model"), body
}

// TestClusterByteParity is the headline differential: 1200 randomized
// request pairs against a 4-shard cluster and a single node sharing one
// model, compared byte for byte.
func TestClusterByteParity(t *testing.T) {
	_, model := testutil.TrainModel(t, 1)
	single := startSingle(t, serve.Config{}, model)
	tc := startCluster(t, clusterOpts{shards: 4})
	id := tc.pushModel(t, model)
	tc.waitConverged(t, id, 5_000_000_000) // 5s

	const pairs = 1200
	reqs := genParityRequests(0xC0FFEE, pairs)

	kinds := map[string]int{}
	for _, pr := range reqs {
		kinds[pr.kind]++
	}
	t.Logf("parity population: %v", kinds)
	// The generator must actually cover the error paths, or "parity"
	// silently shrinks to the happy path.
	for _, want := range []string{"json", "bin", "empty-samples", "bad-json", "trailing", "bin-truncated"} {
		if kinds[want] == 0 {
			t.Fatalf("generator produced no %q requests", want)
		}
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	var mu sync.Mutex
	mismatches := 0
	for i, pr := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pr parityReq) {
			defer wg.Done()
			defer func() { <-sem }()
			sStatus, sCT, sModel, sBody := doEstimate(t, single.URL, pr)
			cStatus, cCT, cModel, cBody := doEstimate(t, tc.url, pr)
			if sStatus != cStatus || sCT != cCT || sModel != cModel || !bytes.Equal(sBody, cBody) {
				mu.Lock()
				mismatches++
				if mismatches <= 5 {
					t.Errorf("pair %d (%s): single=(%d, %s, model=%q, %d bytes) cluster=(%d, %s, model=%q, %d bytes)\nsingle body: %.200s\ncluster body: %.200s",
						i, pr.kind, sStatus, sCT, sModel, len(sBody), cStatus, cCT, cModel, len(cBody), sBody, cBody)
				}
				mu.Unlock()
			}
		}(i, pr)
	}
	wg.Wait()
	if mismatches > 0 {
		t.Fatalf("%d of %d pairs diverged from single-node responses", mismatches, pairs)
	}
	// Routing books must balance over the whole run.
	exposition := testutil.ScrapeMetrics(t, tc.url)
	testutil.AssertRouteBooksBalance(t, exposition, "/v1/estimate")
	if reqsTotal := testutil.SumMetric(t, exposition, "spire_route_requests_total", `route="/v1/estimate"`); reqsTotal != pairs {
		t.Errorf("router accounted %v estimate requests, want %d", reqsTotal, pairs)
	}
}

// TestClusterParityIngest extends the differential to the stateless
// parse route, JSON and CSV alike.
func TestClusterParityIngest(t *testing.T) {
	_, model := testutil.TrainModel(t, 1)
	single := startSingle(t, serve.Config{}, model)
	tc := startCluster(t, clusterOpts{shards: 3})
	// Shards without a model report unready (serve's /readyz contract),
	// so even the stateless route needs the cluster converged first.
	tc.waitConverged(t, tc.pushModel(t, model), 5_000_000_000)

	csv := func(rows int) []byte {
		var b bytes.Buffer
		for i := 1; i <= rows; i++ {
			fmt.Fprintf(&b, "%d.0,100,,cycles,1,100.00,,\n%d.0,50,,instructions,1,100.00,,\n", i, i)
			fmt.Fprintf(&b, "%d.0,10,,m1,1,25.00,,\n", i)
		}
		return b.Bytes()
	}
	cases := []struct {
		name, ct string
		body     []byte
	}{
		{"csv-small", "text/csv", csv(2)},
		{"csv-large", "text/csv", csv(40)},
		{"csv-garbled", "text/csv", []byte("not,perf\ngarbage\n")},
		{"empty", "text/csv", nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sCode, _, sBody := testutil.HTTPPost(t, single.URL+"/v1/ingest", c.ct, c.body)
			cCode, _, cBody := testutil.HTTPPost(t, tc.url+"/v1/ingest", c.ct, c.body)
			if sCode != cCode || !bytes.Equal(sBody, cBody) {
				t.Fatalf("ingest diverged: single=(%d, %.200s) cluster=(%d, %.200s)", sCode, sBody, cCode, cBody)
			}
		})
	}
	testutil.AssertRouteBooksBalance(t, testutil.ScrapeMetrics(t, tc.url), "/v1/ingest")
}
