// Package buildinfo is the single source of the spire release version
// and build metadata. The CLI `spire version` subcommand and the
// /healthz endpoints on serve and route all report from here, so an
// operator can match a running process to a source revision without
// guessing.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version is the spire release version. Bumped by hand on release; the
// VCS revision (when the binary was built from a checkout) is reported
// alongside it, not instead of it.
const Version = "0.10.0"

// Revision returns the VCS revision the binary was built from,
// shortened to 12 characters, with a "+dirty" suffix for modified
// trees. Empty when the build carried no VCS stamp (e.g. `go test`).
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// GoVersion returns the toolchain that built the binary.
func GoVersion() string { return runtime.Version() }

// String renders the one-line form used by `spire version`:
//
//	spire 0.10.0 (go1.24.1, rev 0123abcd4567)
func String() string {
	if rev := Revision(); rev != "" {
		return fmt.Sprintf("spire %s (%s, rev %s)", Version, GoVersion(), rev)
	}
	return fmt.Sprintf("spire %s (%s)", Version, GoVersion())
}
