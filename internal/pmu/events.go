// Package pmu models the hardware performance monitoring unit of the
// simulated core: a registry of countable events (named after the Skylake
// events in the paper's Table III), always-on architectural counters, and
// the metadata SPIRE's analysis output needs (abbreviations and the
// closest top-level TMA bottleneck area per event).
//
// The measurement-side constraint of real PMUs — only a few events can be
// counted at once — is modeled by the perfstat package, which schedules
// event groups onto the limited programmable counters and scales the
// observed deltas, exactly like Linux perf's multiplexing.
package pmu

import (
	"fmt"
	"sort"
)

// Area is the top-level TMA category most closely associated with an
// event (paper Table III's colour coding).
type Area uint8

// TMA areas.
const (
	AreaNone Area = iota
	AreaFrontEnd
	AreaBadSpeculation
	AreaMemory
	AreaCore
	AreaRetiring
)

// String names the area as the paper does.
func (a Area) String() string {
	switch a {
	case AreaFrontEnd:
		return "Front-End"
	case AreaBadSpeculation:
		return "Bad Speculation"
	case AreaMemory:
		return "Memory"
	case AreaCore:
		return "Core"
	case AreaRetiring:
		return "Retiring"
	}
	return "-"
}

// EventID indexes the event registry. IDs are dense and stable within a
// process; persist event names, not IDs.
type EventID int

// Event is one countable quantity.
type Event struct {
	ID EventID
	// Name is the perf-style event name, e.g. "idq.dsb_uops".
	Name string
	// Abbr is the short label used in analysis tables, e.g. "DB.2".
	Abbr string
	// Area is the closest top-level TMA bottleneck.
	Area Area
	// Fixed events are always counted (architectural counters) and do
	// not compete for programmable counter slots.
	Fixed bool
	// InPaperTable marks the events listed in the paper's Table III.
	InPaperTable bool
	// Desc is a one-line description.
	Desc string
}

// Registry event IDs. The fixed counters come first.
const (
	// EvInstRetired counts retired instructions (the work measure W).
	EvInstRetired EventID = iota
	// EvCycles counts unhalted core cycles (the time measure T).
	EvCycles
	// EvUopsRetiredSlots counts retired uops (TMA retiring slots).
	EvUopsRetiredSlots

	// Front-end latency/bubble events.
	EvFEBubbles1
	EvFEBubbles2
	EvFEBubbles3
	EvICacheStall
	EvDSB2MITESwitchCycles

	// Decoded stream buffer (DSB) events.
	EvDSBCycles
	EvDSBUops
	EvDSBMissRetired
	EvAllDSBCyclesAnyUops
	EvMITEUops
	EvMITECycles

	// Microcode sequencer (MS) events.
	EvMSSwitches
	EvMSDSBCycles
	EvMSUops
	EvMSCycles

	// Uop-delivery (DQ) events.
	EvUopsNotDeliveredLE1
	EvUopsNotDeliveredLE2
	EvUopsNotDeliveredLE3
	EvUopsNotDeliveredCore
	EvUopsNotDeliveredFEWasOK

	// Branch / speculation events.
	EvBrMispRetired
	EvRecoveryCycles
	EvRecoveryCyclesAny
	EvBrInstRetired
	EvMachineClears

	// Memory events.
	EvCyclesMemAny
	EvStallsMemAny
	EvCyclesL1DMiss
	EvStallsL1DMiss
	EvL1DPendMissCycles
	EvL3Miss
	EvL3Ref
	EvLockLoads
	EvLoadL1Hit
	EvLoadL1Miss
	EvLoadL2Hit
	EvLoadL2Miss
	EvLoadL3Hit
	EvLoadL3Miss
	EvStallsL2Miss
	EvStallsL3Miss
	EvDRAMQueueCycles
	EvDTLBWalk
	EvITLBWalk

	// Core / execution events.
	EvStallsTotal
	EvUopsRetiredStallCycles
	EvUopsIssuedStallCycles
	EvUopsExecutedStallCycles
	EvResourceStallsAny
	EvResourceStallsSB
	EvExeBound0Ports
	EvExe1PortUtil
	EvExe2PortUtil
	EvUopsExecCoreCyclesGE1
	EvUopsExecCyclesGE1
	EvUopsExecCyclesGE2
	EvVecWidthMismatch
	EvDividerActive

	// Per-port dispatch counters (uops_dispatched_port.port_N). Ports
	// beyond the configured core's width simply never fire.
	EvPort0
	EvPort1
	EvPort2
	EvPort3
	EvPort4
	EvPort5
	EvPort6
	EvPort7

	// Issue-side totals (TMA inputs).
	EvUopsIssuedAny
	EvUopsExecutedThread

	// NumEvents is the registry size.
	NumEvents
)

// registry is the ordered event table.
var registry = [NumEvents]Event{
	EvInstRetired:      {Name: "inst_retired.any", Abbr: "INST", Area: AreaNone, Fixed: true, Desc: "retired instructions (work W)"},
	EvCycles:           {Name: "cpu_clk_unhalted.thread", Abbr: "CYC", Area: AreaNone, Fixed: true, Desc: "unhalted core cycles (time T)"},
	EvUopsRetiredSlots: {Name: "uops_retired.retire_slots", Abbr: "RET", Area: AreaRetiring, Fixed: true, Desc: "retired uops (retire slots)"},

	EvFEBubbles1:           {Name: "frontend_retired.latency_ge_2_bubbles_ge_1", Abbr: "FE.1", Area: AreaFrontEnd, InPaperTable: true, Desc: "retired after >=1 front-end bubble of >=2 cycles"},
	EvFEBubbles2:           {Name: "frontend_retired.latency_ge_2_bubbles_ge_2", Abbr: "FE.2", Area: AreaFrontEnd, InPaperTable: true, Desc: "retired after >=2 front-end bubbles of >=2 cycles"},
	EvFEBubbles3:           {Name: "frontend_retired.latency_ge_2_bubbles_ge_3", Abbr: "FE.3", Area: AreaFrontEnd, InPaperTable: true, Desc: "retired after >=3 front-end bubbles of >=2 cycles"},
	EvICacheStall:          {Name: "icache_16b.ifdata_stall", Abbr: "IC", Area: AreaFrontEnd, Desc: "cycles fetch stalled on an L1I miss"},
	EvDSB2MITESwitchCycles: {Name: "dsb2mite_switches.penalty_cycles", Abbr: "D2M", Area: AreaFrontEnd, Desc: "cycles lost switching DSB to legacy decode"},

	EvDSBCycles:           {Name: "idq.dsb_cycles", Abbr: "DB.1", Area: AreaFrontEnd, InPaperTable: true, Desc: "cycles uops were delivered from the DSB"},
	EvDSBUops:             {Name: "idq.dsb_uops", Abbr: "DB.2", Area: AreaFrontEnd, InPaperTable: true, Desc: "uops delivered from the DSB"},
	EvDSBMissRetired:      {Name: "frontend_retired.dsb_miss", Abbr: "DB.3", Area: AreaFrontEnd, InPaperTable: true, Desc: "retired instructions that missed the DSB"},
	EvAllDSBCyclesAnyUops: {Name: "idq.all_dsb_cycles_any_uops", Abbr: "DB.4", Area: AreaFrontEnd, InPaperTable: true, Desc: "cycles with any DSB uop delivered"},
	EvMITEUops:            {Name: "idq.mite_uops", Abbr: "MI.U", Area: AreaFrontEnd, Desc: "uops delivered by the legacy decode pipeline"},
	EvMITECycles:          {Name: "idq.mite_cycles", Abbr: "MI.C", Area: AreaFrontEnd, Desc: "cycles the legacy decode pipeline delivered uops"},

	EvMSSwitches:  {Name: "idq.ms_switches", Abbr: "MS.1", Area: AreaFrontEnd, InPaperTable: true, Desc: "switches into the microcode sequencer"},
	EvMSDSBCycles: {Name: "idq.ms_dsb_cycles", Abbr: "MS.2", Area: AreaFrontEnd, InPaperTable: true, Desc: "cycles MS uops initiated by the DSB"},
	EvMSUops:      {Name: "idq.ms_uops", Abbr: "MS.U", Area: AreaFrontEnd, Desc: "uops delivered by the microcode sequencer"},
	EvMSCycles:    {Name: "idq.ms_cycles", Abbr: "MS.C", Area: AreaFrontEnd, Desc: "cycles the microcode sequencer delivered uops"},

	EvUopsNotDeliveredLE1:     {Name: "idq_uops_not_delivered.cycles_le_1_uop_deliv.core", Abbr: "DQ.1", Area: AreaFrontEnd, InPaperTable: true, Desc: "cycles with <=1 uop delivered while the back-end wanted more"},
	EvUopsNotDeliveredLE2:     {Name: "idq_uops_not_delivered.cycles_le_2_uop_deliv.core", Abbr: "DQ.2", Area: AreaFrontEnd, InPaperTable: true, Desc: "cycles with <=2 uops delivered while the back-end wanted more"},
	EvUopsNotDeliveredLE3:     {Name: "idq_uops_not_delivered.cycles_le_3_uop_deliv.core", Abbr: "DQ.3", Area: AreaFrontEnd, InPaperTable: true, Desc: "cycles with <=3 uops delivered while the back-end wanted more"},
	EvUopsNotDeliveredCore:    {Name: "idq_uops_not_delivered.core", Abbr: "DQ.C", Area: AreaFrontEnd, InPaperTable: true, Desc: "issue slots with no uop delivered (front-end bound slots)"},
	EvUopsNotDeliveredFEWasOK: {Name: "idq_uops_not_delivered.cycles_fe_was_ok", Abbr: "DQ.K", Area: AreaFrontEnd, InPaperTable: true, Desc: "cycles the front-end was ready but the back-end stalled issue"},

	EvBrMispRetired:     {Name: "br_misp_retired.all_branches", Abbr: "BP.1", Area: AreaBadSpeculation, InPaperTable: true, Desc: "retired mispredicted branches"},
	EvRecoveryCycles:    {Name: "int_misc.recovery_cycles", Abbr: "BP.2", Area: AreaBadSpeculation, InPaperTable: true, Desc: "cycles the allocator was stalled recovering from a clear"},
	EvRecoveryCyclesAny: {Name: "int_misc.recovery_cycles_any", Abbr: "BP.3", Area: AreaBadSpeculation, InPaperTable: true, Desc: "recovery cycles including machine clears"},
	EvBrInstRetired:     {Name: "br_inst_retired.all_branches", Abbr: "BR", Area: AreaBadSpeculation, Desc: "retired branches"},
	EvMachineClears:     {Name: "machine_clears.count", Abbr: "MC", Area: AreaBadSpeculation, Desc: "machine clears (memory ordering, etc.)"},

	EvCyclesMemAny:      {Name: "cycle_activity.cycles_mem_any", Abbr: "M", Area: AreaMemory, InPaperTable: true, Desc: "cycles with an outstanding memory load"},
	EvStallsMemAny:      {Name: "cycle_activity.stalls_mem_any", Abbr: "M.S", Area: AreaMemory, Desc: "execution stall cycles with an outstanding load"},
	EvCyclesL1DMiss:     {Name: "cycle_activity.cycles_l1d_miss", Abbr: "L1.1", Area: AreaMemory, InPaperTable: true, Desc: "cycles with an outstanding L1D miss"},
	EvStallsL1DMiss:     {Name: "cycle_activity.stalls_l1d_miss", Abbr: "L1.2", Area: AreaMemory, InPaperTable: true, Desc: "execution stall cycles with an outstanding L1D miss"},
	EvL1DPendMissCycles: {Name: "l1d_pend_miss.pending_cycles", Abbr: "L1.3", Area: AreaMemory, InPaperTable: true, Desc: "cycles with at least one L1D miss pending"},
	EvL3Miss:            {Name: "longest_lat_cache.miss", Abbr: "L3", Area: AreaMemory, InPaperTable: true, Desc: "last-level cache misses"},
	EvL3Ref:             {Name: "longest_lat_cache.reference", Abbr: "L3.R", Area: AreaMemory, Desc: "last-level cache references"},
	EvLockLoads:         {Name: "mem_inst_retired.lock_loads", Abbr: "LK", Area: AreaMemory, InPaperTable: true, Desc: "retired locked (atomic) loads"},
	EvLoadL1Hit:         {Name: "mem_load_retired.l1_hit", Abbr: "LD1H", Area: AreaMemory, Desc: "retired loads that hit L1D"},
	EvLoadL1Miss:        {Name: "mem_load_retired.l1_miss", Abbr: "LD1M", Area: AreaMemory, Desc: "retired loads that missed L1D"},
	EvLoadL2Hit:         {Name: "mem_load_retired.l2_hit", Abbr: "LD2H", Area: AreaMemory, Desc: "retired loads that hit L2"},
	EvLoadL2Miss:        {Name: "mem_load_retired.l2_miss", Abbr: "LD2M", Area: AreaMemory, Desc: "retired loads that missed L2"},
	EvLoadL3Hit:         {Name: "mem_load_retired.l3_hit", Abbr: "LD3H", Area: AreaMemory, Desc: "retired loads that hit L3"},
	EvLoadL3Miss:        {Name: "mem_load_retired.l3_miss", Abbr: "LD3M", Area: AreaMemory, Desc: "retired loads that missed L3"},
	EvStallsL2Miss:      {Name: "cycle_activity.stalls_l2_miss", Abbr: "L2.S", Area: AreaMemory, Desc: "execution stall cycles with an outstanding L2 miss"},
	EvStallsL3Miss:      {Name: "cycle_activity.stalls_l3_miss", Abbr: "L3.S", Area: AreaMemory, Desc: "execution stall cycles with an outstanding L3 miss"},
	EvDRAMQueueCycles:   {Name: "offcore_requests_outstanding.cycles_with_data_rd", Abbr: "DRQ", Area: AreaMemory, Desc: "cycles DRAM requests queued for bandwidth"},
	EvDTLBWalk:          {Name: "dtlb_load_misses.miss_causes_a_walk", Abbr: "DT", Area: AreaMemory, Desc: "data TLB misses causing a page walk"},
	EvITLBWalk:          {Name: "itlb_misses.miss_causes_a_walk", Abbr: "IT", Area: AreaFrontEnd, Desc: "instruction TLB misses causing a page walk"},

	EvStallsTotal:             {Name: "cycle_activity.stalls_total", Abbr: "CS.1", Area: AreaCore, InPaperTable: true, Desc: "cycles with no uop executed"},
	EvUopsRetiredStallCycles:  {Name: "uops_retired.stall_cycles", Abbr: "CS.2", Area: AreaCore, InPaperTable: true, Desc: "cycles with no uop retired"},
	EvUopsIssuedStallCycles:   {Name: "uops_issued.stall_cycles", Abbr: "CS.3", Area: AreaCore, InPaperTable: true, Desc: "cycles with no uop issued"},
	EvUopsExecutedStallCycles: {Name: "uops_executed.stall_cycles", Abbr: "CS.4", Area: AreaCore, InPaperTable: true, Desc: "cycles with no uop executed (thread)"},
	EvResourceStallsAny:       {Name: "resource_stalls.any", Abbr: "CS.5", Area: AreaCore, InPaperTable: true, Desc: "allocation stalls from any back-end resource"},
	EvResourceStallsSB:        {Name: "resource_stalls.sb", Abbr: "SB", Area: AreaCore, Desc: "allocation stalls from a full store buffer"},
	EvExeBound0Ports:          {Name: "exe_activity.exe_bound_0_ports", Abbr: "CS.6", Area: AreaCore, InPaperTable: true, Desc: "cycles the back-end had work but no port executed"},
	EvExe1PortUtil:            {Name: "exe_activity.1_ports_util", Abbr: "C1.3", Area: AreaCore, InPaperTable: true, Desc: "cycles exactly one port executed"},
	EvExe2PortUtil:            {Name: "exe_activity.2_ports_util", Abbr: "C2", Area: AreaCore, Desc: "cycles exactly two ports executed"},
	EvUopsExecCoreCyclesGE1:   {Name: "uops_executed.core_cycles_ge_1", Abbr: "C1.1", Area: AreaCore, InPaperTable: true, Desc: "core cycles with at least one uop executed"},
	EvUopsExecCyclesGE1:       {Name: "uops_executed.cycles_ge_1_uop_exec", Abbr: "C1.2", Area: AreaCore, InPaperTable: true, Desc: "cycles with at least one uop executed (thread)"},
	EvUopsExecCyclesGE2:       {Name: "uops_executed.cycles_ge_2_uop_exec", Abbr: "C2.2", Area: AreaCore, Desc: "cycles with at least two uops executed"},
	EvVecWidthMismatch:        {Name: "uops_issued.vector_width_mismatch", Abbr: "VW", Area: AreaCore, InPaperTable: true, Desc: "uops issued after a SIMD width change"},
	EvDividerActive:           {Name: "arith.divider_active", Abbr: "DIV", Area: AreaCore, Desc: "cycles the divider was busy"},

	EvPort0: {Name: "uops_dispatched_port.port_0", Abbr: "P0", Area: AreaCore, Desc: "uops dispatched to port 0"},
	EvPort1: {Name: "uops_dispatched_port.port_1", Abbr: "P1", Area: AreaCore, Desc: "uops dispatched to port 1"},
	EvPort2: {Name: "uops_dispatched_port.port_2", Abbr: "P2", Area: AreaCore, Desc: "uops dispatched to port 2"},
	EvPort3: {Name: "uops_dispatched_port.port_3", Abbr: "P3", Area: AreaCore, Desc: "uops dispatched to port 3"},
	EvPort4: {Name: "uops_dispatched_port.port_4", Abbr: "P4", Area: AreaCore, Desc: "uops dispatched to port 4"},
	EvPort5: {Name: "uops_dispatched_port.port_5", Abbr: "P5", Area: AreaCore, Desc: "uops dispatched to port 5"},
	EvPort6: {Name: "uops_dispatched_port.port_6", Abbr: "P6", Area: AreaCore, Desc: "uops dispatched to port 6"},
	EvPort7: {Name: "uops_dispatched_port.port_7", Abbr: "P7", Area: AreaCore, Desc: "uops dispatched to port 7"},

	EvUopsIssuedAny:      {Name: "uops_issued.any", Abbr: "ISS", Area: AreaNone, Desc: "uops issued by the allocator"},
	EvUopsExecutedThread: {Name: "uops_executed.thread", Abbr: "EXE", Area: AreaNone, Desc: "uops executed"},
}

var byName map[string]EventID

func init() {
	byName = make(map[string]EventID, NumEvents)
	for id := EventID(0); id < NumEvents; id++ {
		ev := registry[id]
		if ev.Name == "" {
			panic(fmt.Sprintf("pmu: event %d has no registry entry", id))
		}
		if _, dup := byName[ev.Name]; dup {
			panic(fmt.Sprintf("pmu: duplicate event name %q", ev.Name))
		}
		registry[id].ID = id
		byName[ev.Name] = id
	}
}

// Lookup resolves an event name to its registry entry.
func Lookup(name string) (Event, bool) {
	id, ok := byName[name]
	if !ok {
		return Event{}, false
	}
	return registry[id], true
}

// Describe returns the registry entry for id. An out-of-range id — which
// can reach analysis code through corrupt persisted data — resolves to a
// synthetic placeholder event instead of panicking; use DescribeOK when
// the distinction matters.
func Describe(id EventID) Event {
	if id < 0 || id >= NumEvents {
		return Event{
			ID:   id,
			Name: fmt.Sprintf("unknown_event_%d", id),
			Abbr: "?",
			Area: AreaNone,
			Desc: "out-of-range event id (corrupt data?)",
		}
	}
	return registry[id]
}

// DescribeOK returns the registry entry for id and whether id is a real
// registry event (false for the synthetic placeholder Describe would
// fabricate).
func DescribeOK(id EventID) (Event, bool) {
	if id < 0 || id >= NumEvents {
		return Describe(id), false
	}
	return registry[id], true
}

// Events returns all registry entries in ID order.
func Events() []Event {
	out := make([]Event, NumEvents)
	copy(out, registry[:])
	return out
}

// MetricEvents returns the non-fixed events — the candidate SPIRE metrics
// — in ID order.
func MetricEvents() []Event {
	var out []Event
	for _, ev := range registry {
		if !ev.Fixed {
			out = append(out, ev)
		}
	}
	return out
}

// PaperTableEvents returns the events listed in the paper's Table III,
// sorted by abbreviation.
func PaperTableEvents() []Event {
	var out []Event
	for _, ev := range registry {
		if ev.InPaperTable {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Abbr < out[j].Abbr })
	return out
}
