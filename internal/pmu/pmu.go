package pmu

// PMU is the core's counter block. The simulator increments events
// unconditionally (an oracle view); measurement-side restrictions —
// limited programmable counters and multiplexing — are applied by readers
// that snapshot deltas only while an event is scheduled, which is exactly
// how time-multiplexed counting behaves on real hardware.
type PMU struct {
	counts [NumEvents]uint64
}

// New returns a zeroed PMU.
func New() *PMU { return &PMU{} }

// Add accumulates n occurrences of ev.
func (p *PMU) Add(ev EventID, n uint64) { p.counts[ev] += n }

// Inc accumulates one occurrence of ev.
func (p *PMU) Inc(ev EventID) { p.counts[ev]++ }

// Read returns the current count of ev.
func (p *PMU) Read(ev EventID) uint64 { return p.counts[ev] }

// Snapshot copies all counters; used by samplers to compute deltas.
func (p *PMU) Snapshot() Counts {
	var c Counts
	c.counts = p.counts
	return c
}

// Reset zeroes all counters.
func (p *PMU) Reset() { p.counts = [NumEvents]uint64{} }

// Counts is an immutable copy of the counter block.
type Counts struct {
	counts [NumEvents]uint64
}

// Read returns the snapshot's count of ev.
func (c Counts) Read(ev EventID) uint64 { return c.counts[ev] }

// CounterWidth is the modeled hardware counter width in bits. Real PMU
// general counters are 48 bits wide on the modeled core family; a counter
// observed "going backwards" between two snapshots is therefore assumed to
// have wrapped once at 2^48, the standard recovery real perf tooling
// applies.
const CounterWidth = 48

// counterWrap is the modulus a wrapped counter rolled over at.
const counterWrap = uint64(1) << CounterWidth

// Delta returns the per-event difference now - earlier, recovering from
// counter wraparound: a counter that went backwards is assumed to have
// wrapped once at 2^CounterWidth. Use DeltaWrapped to learn which events
// (if any) needed recovery.
func (c Counts) Delta(earlier Counts) Counts {
	d, _ := c.DeltaWrapped(earlier)
	return d
}

// DeltaWrapped returns the per-event difference now - earlier together
// with the list of events whose counters went backwards and were recovered.
// Recovery assumes a single wrap at 2^CounterWidth; a backwards counter
// whose values cannot be explained by one 48-bit wrap (e.g. both readings
// already exceed the counter range) saturates to zero instead of producing
// a garbage delta. wrapped is nil when no counter wrapped.
func (c Counts) DeltaWrapped(earlier Counts) (d Counts, wrapped []EventID) {
	for i := range c.counts {
		now, was := c.counts[i], earlier.counts[i]
		if now >= was {
			d.counts[i] = now - was
			continue
		}
		wrapped = append(wrapped, EventID(i))
		if was < counterWrap {
			// One wrap at 2^48 explains the readings.
			d.counts[i] = now + (counterWrap - was)
		} else {
			// Readings outside the physical counter range: corruption we
			// cannot model. Saturate rather than guess.
			d.counts[i] = 0
		}
	}
	return d, wrapped
}

// IPC returns the snapshot's instructions-per-cycle, or 0 when no cycles
// elapsed.
func (c Counts) IPC() float64 {
	cy := c.Read(EvCycles)
	if cy == 0 {
		return 0
	}
	return float64(c.Read(EvInstRetired)) / float64(cy)
}
