package pmu

import "fmt"

// PMU is the core's counter block. The simulator increments events
// unconditionally (an oracle view); measurement-side restrictions —
// limited programmable counters and multiplexing — are applied by readers
// that snapshot deltas only while an event is scheduled, which is exactly
// how time-multiplexed counting behaves on real hardware.
type PMU struct {
	counts [NumEvents]uint64
}

// New returns a zeroed PMU.
func New() *PMU { return &PMU{} }

// Add accumulates n occurrences of ev.
func (p *PMU) Add(ev EventID, n uint64) { p.counts[ev] += n }

// Inc accumulates one occurrence of ev.
func (p *PMU) Inc(ev EventID) { p.counts[ev]++ }

// Read returns the current count of ev.
func (p *PMU) Read(ev EventID) uint64 { return p.counts[ev] }

// Snapshot copies all counters; used by samplers to compute deltas.
func (p *PMU) Snapshot() Counts {
	var c Counts
	c.counts = p.counts
	return c
}

// Reset zeroes all counters.
func (p *PMU) Reset() { p.counts = [NumEvents]uint64{} }

// Counts is an immutable copy of the counter block.
type Counts struct {
	counts [NumEvents]uint64
}

// Read returns the snapshot's count of ev.
func (c Counts) Read(ev EventID) uint64 { return c.counts[ev] }

// Delta returns the per-event difference now - earlier. It panics if any
// counter went backwards, which would indicate counter corruption.
func (c Counts) Delta(earlier Counts) Counts {
	var d Counts
	for i := range c.counts {
		if c.counts[i] < earlier.counts[i] {
			panic(fmt.Sprintf("pmu: counter %s went backwards (%d -> %d)",
				Describe(EventID(i)).Name, earlier.counts[i], c.counts[i]))
		}
		d.counts[i] = c.counts[i] - earlier.counts[i]
	}
	return d
}

// IPC returns the snapshot's instructions-per-cycle, or 0 when no cycles
// elapsed.
func (c Counts) IPC() float64 {
	cy := c.Read(EvCycles)
	if cy == 0 {
		return 0
	}
	return float64(c.Read(EvInstRetired)) / float64(cy)
}
