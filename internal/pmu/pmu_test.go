package pmu

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	seenAbbr := make(map[string]string)
	for id := EventID(0); id < NumEvents; id++ {
		ev := Describe(id)
		if ev.ID != id {
			t.Errorf("%s: ID %d != index %d", ev.Name, ev.ID, id)
		}
		if ev.Name == "" || ev.Abbr == "" || ev.Desc == "" {
			t.Errorf("event %d has empty metadata: %+v", id, ev)
		}
		if prev, dup := seenAbbr[ev.Abbr]; dup {
			t.Errorf("abbreviation %q used by both %s and %s", ev.Abbr, prev, ev.Name)
		}
		seenAbbr[ev.Abbr] = ev.Name
		if strings.ToLower(ev.Name) != ev.Name {
			t.Errorf("event name %q should be lowercase perf style", ev.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	ev, ok := Lookup("idq.dsb_uops")
	if !ok || ev.Abbr != "DB.2" || ev.Area != AreaFrontEnd {
		t.Errorf("Lookup(idq.dsb_uops) = %+v, %v", ev, ok)
	}
	if _, ok := Lookup("no.such.event"); ok {
		t.Error("unknown event should not resolve")
	}
}

func TestDescribeOutOfRange(t *testing.T) {
	for _, id := range []EventID{NumEvents, -1, NumEvents + 100} {
		ev := Describe(id)
		if ev.Name == "" || ev.Abbr != "?" {
			t.Errorf("Describe(%d) = %+v, want synthetic placeholder", id, ev)
		}
		if _, ok := DescribeOK(id); ok {
			t.Errorf("DescribeOK(%d) reported a real event", id)
		}
	}
	if ev, ok := DescribeOK(EvCycles); !ok || ev.Name != "cpu_clk_unhalted.thread" {
		t.Errorf("DescribeOK(EvCycles) = %+v, %v", ev, ok)
	}
}

func TestFixedCounters(t *testing.T) {
	fixed := map[EventID]bool{EvInstRetired: true, EvCycles: true, EvUopsRetiredSlots: true}
	for id, want := range fixed {
		if Describe(id).Fixed != want {
			t.Errorf("%s fixed = %v, want %v", Describe(id).Name, Describe(id).Fixed, want)
		}
	}
	for _, ev := range MetricEvents() {
		if ev.Fixed {
			t.Errorf("MetricEvents returned fixed counter %s", ev.Name)
		}
	}
	if len(MetricEvents())+3 != int(NumEvents) {
		t.Errorf("MetricEvents = %d, want %d", len(MetricEvents()), NumEvents-3)
	}
}

func TestPaperTableEvents(t *testing.T) {
	evs := PaperTableEvents()
	// The paper's Table III lists 33 metrics.
	if len(evs) != 33 {
		t.Errorf("paper table has %d events, want 33", len(evs))
	}
	wantAbbrs := []string{"FE.1", "FE.2", "FE.3", "DB.1", "DB.2", "DB.3", "DB.4",
		"MS.1", "MS.2", "DQ.1", "DQ.2", "DQ.3", "DQ.C", "DQ.K",
		"BP.1", "BP.2", "BP.3", "M", "L1.1", "L1.2", "L1.3", "L3", "LK",
		"CS.1", "CS.2", "CS.3", "CS.4", "CS.5", "CS.6", "C1.1", "C1.2", "C1.3", "VW"}
	have := make(map[string]bool)
	for _, ev := range evs {
		have[ev.Abbr] = true
	}
	for _, a := range wantAbbrs {
		if !have[a] {
			t.Errorf("paper abbreviation %s missing from registry", a)
		}
	}
}

func TestAreaString(t *testing.T) {
	cases := map[Area]string{
		AreaFrontEnd:       "Front-End",
		AreaBadSpeculation: "Bad Speculation",
		AreaMemory:         "Memory",
		AreaCore:           "Core",
		AreaRetiring:       "Retiring",
		AreaNone:           "-",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("Area(%d) = %q, want %q", a, got, want)
		}
	}
}

func TestPMUCounting(t *testing.T) {
	p := New()
	p.Inc(EvCycles)
	p.Add(EvCycles, 9)
	p.Inc(EvInstRetired)
	if p.Read(EvCycles) != 10 || p.Read(EvInstRetired) != 1 {
		t.Errorf("counts = %d/%d", p.Read(EvCycles), p.Read(EvInstRetired))
	}
	snap := p.Snapshot()
	p.Add(EvCycles, 5)
	if snap.Read(EvCycles) != 10 {
		t.Error("snapshot must be immutable")
	}
	d := p.Snapshot().Delta(snap)
	if d.Read(EvCycles) != 5 || d.Read(EvInstRetired) != 0 {
		t.Errorf("delta = %d/%d, want 5/0", d.Read(EvCycles), d.Read(EvInstRetired))
	}
	p.Reset()
	if p.Read(EvCycles) != 0 {
		t.Error("reset failed")
	}
}

func TestDeltaWrapRecovery(t *testing.T) {
	// A counter that "went backwards" is recovered as one 48-bit wrap.
	var earlier, later Counts
	earlier.counts[EvCycles] = counterWrap - 100
	later.counts[EvCycles] = 50
	d, wrapped := later.DeltaWrapped(earlier)
	if got := d.Read(EvCycles); got != 150 {
		t.Errorf("wrap delta = %d, want 150", got)
	}
	if len(wrapped) != 1 || wrapped[0] != EvCycles {
		t.Errorf("wrapped = %v, want [EvCycles]", wrapped)
	}
	// Delta must agree and no longer panic.
	if got := later.Delta(earlier).Read(EvCycles); got != 150 {
		t.Errorf("Delta wrap delta = %d, want 150", got)
	}
	// Unexplainable readings (earlier beyond the counter range) saturate.
	earlier.counts[EvCycles] = counterWrap + 7
	d, wrapped = later.DeltaWrapped(earlier)
	if got := d.Read(EvCycles); got != 0 {
		t.Errorf("saturated delta = %d, want 0", got)
	}
	if len(wrapped) != 1 {
		t.Errorf("saturation should still be flagged, wrapped = %v", wrapped)
	}
	// No wrap: flag list stays nil.
	if _, w := earlier.DeltaWrapped(Counts{}); w != nil {
		t.Errorf("forward delta flagged wraps: %v", w)
	}
}

func TestCountsIPC(t *testing.T) {
	p := New()
	if got := p.Snapshot().IPC(); got != 0 {
		t.Errorf("IPC with no cycles = %g, want 0", got)
	}
	p.Add(EvCycles, 4)
	p.Add(EvInstRetired, 6)
	if got := p.Snapshot().IPC(); got != 1.5 {
		t.Errorf("IPC = %g, want 1.5", got)
	}
}

func TestEventsCopy(t *testing.T) {
	evs := Events()
	if len(evs) != int(NumEvents) {
		t.Fatalf("Events() returned %d entries", len(evs))
	}
	evs[0].Name = "mutated"
	if Describe(0).Name == "mutated" {
		t.Error("Events() must return a copy")
	}
}
