package pmu

// Scheduler event classes. Unlike the counter events in events.go, which
// are sampled aggregates, scheduler events are discrete timestamped
// records: a thread started running on a hart, blocked on a lock, and so
// on. They are what a wait-for graph (wPerf) is built from, and they are
// the raw material for partitioning wall time into on-CPU and off-CPU.

// SchedClass identifies one scheduler event class.
type SchedClass uint8

const (
	// SchedSwitchIn: the thread started running on a hart.
	SchedSwitchIn SchedClass = iota
	// SchedSwitchOut: the thread stopped running (blocked or preempted).
	SchedSwitchOut
	// SchedWakeup: the thread became runnable; Waker is the thread that
	// made it runnable, if known.
	SchedWakeup
	// SchedBlockLock: the thread blocked acquiring lock Obj.
	SchedBlockLock
	// SchedUnblockLock: lock Obj was handed to the thread; Waker is the
	// releasing holder.
	SchedUnblockLock
	// SchedBlockIO: the thread blocked waiting for I/O on device Obj.
	SchedBlockIO
	// SchedUnblockIO: the I/O on device Obj completed.
	SchedUnblockIO

	// NumSchedClasses is the number of known scheduler event classes.
	NumSchedClasses
)

// schedClassNames is indexed by SchedClass. The "sched." prefix is the
// namespace that separates scheduler rows from counter rows in perf-CSV
// streams (ingest keys off it).
var schedClassNames = [NumSchedClasses]string{
	SchedSwitchIn:    "sched.switch_in",
	SchedSwitchOut:   "sched.switch_out",
	SchedWakeup:      "sched.wakeup",
	SchedBlockLock:   "sched.block_lock",
	SchedUnblockLock: "sched.unblock_lock",
	SchedBlockIO:     "sched.block_io",
	SchedUnblockIO:   "sched.unblock_io",
}

// Name returns the canonical "sched.*" name for the class, or "" for an
// out-of-range value.
func (c SchedClass) Name() string {
	if c >= NumSchedClasses {
		return ""
	}
	return schedClassNames[c]
}

// String implements fmt.Stringer.
func (c SchedClass) String() string { return c.Name() }

// LookupSchedClass resolves a canonical "sched.*" name to its class.
func LookupSchedClass(name string) (SchedClass, bool) {
	for c, n := range schedClassNames {
		if n == name {
			return SchedClass(c), true
		}
	}
	return 0, false
}

// SchedClassNames returns all known class names in class order.
func SchedClassNames() []string {
	out := make([]string, NumSchedClasses)
	copy(out, schedClassNames[:])
	return out
}

// SchedEvent is one scheduler event as recorded by the simulator.
// Cycle is the simulation time; Thread and Hart identify who and where;
// Obj names the lock or device for block/unblock classes; Waker is the
// thread responsible for making this one runnable (-1 when not
// applicable). This is the in-memory form — core.SchedEvent is the
// serialized form with the class spelled by name.
type SchedEvent struct {
	Cycle  uint64
	Class  SchedClass
	Thread int
	Hart   int
	Obj    string
	Waker  int
}

// SchedLog is an append-only record of scheduler events in cycle order.
type SchedLog struct {
	events []SchedEvent
}

// Emit appends one event.
func (l *SchedLog) Emit(ev SchedEvent) { l.events = append(l.events, ev) }

// Len returns the number of recorded events.
func (l *SchedLog) Len() int { return len(l.events) }

// Events returns the recorded events (not a copy; callers must not
// mutate).
func (l *SchedLog) Events() []SchedEvent { return l.events }

// Reset clears the log, keeping capacity.
func (l *SchedLog) Reset() { l.events = l.events[:0] }
