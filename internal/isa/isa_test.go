package isa

import "testing"

func TestOpString(t *testing.T) {
	if OpIntALU.String() != "int_alu" || OpBranch.String() != "branch" {
		t.Errorf("unexpected op names: %s %s", OpIntALU, OpBranch)
	}
	if Op(200).String() != "op(200)" {
		t.Errorf("out-of-range op name = %s", Op(200))
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpLoad.IsMemory() || !OpStore.IsMemory() || !OpLoadLocked.IsMemory() {
		t.Error("memory ops misclassified")
	}
	if OpIntALU.IsMemory() || OpBranch.IsMemory() {
		t.Error("non-memory ops misclassified")
	}
	if !OpVecALU.IsVector() || !OpVecFMA.IsVector() || !OpVecMul.IsVector() {
		t.Error("vector ops misclassified")
	}
	if OpFPAdd.IsVector() {
		t.Error("fp_add is not a vector op")
	}
	if !OpIntALU.Valid() || Op(100).Valid() {
		t.Error("validity check wrong")
	}
}

func TestInstUops(t *testing.T) {
	if (Inst{Op: OpIntALU}).Uops() != 1 {
		t.Error("simple inst should be 1 uop")
	}
	if (Inst{Op: OpMicrocoded, UopCount: 7}).Uops() != 7 {
		t.Error("microcoded expansion wrong")
	}
	if (Inst{Op: OpMicrocoded, UopCount: 1}).Uops() != 1 {
		t.Error("single-uop microcoded wrong")
	}
}

func TestInstValidate(t *testing.T) {
	bad := []Inst{
		{Op: Op(99)},
		{Op: OpIntALU, Dst: NumRegs},
		{Op: OpLoad, Size: 0},
		{Op: OpVecALU, VecWidth: 100},
		{Op: OpMicrocoded, UopCount: 0},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d should be invalid: %+v", i, in)
		}
	}
	good := []Inst{
		{Op: OpIntALU, Dst: 1, Src1: 2},
		{Op: OpLoad, Size: 8, Addr: 0x1000},
		{Op: OpVecFMA, VecWidth: 512},
		{Op: OpMicrocoded, UopCount: 12},
		{Op: OpBranch, Taken: true, Target: 0x2000},
	}
	for i, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("case %d should be valid: %v", i, err)
		}
	}
}

func TestSlicePlayer(t *testing.T) {
	p := &SlicePlayer{Insts: []Inst{{Op: OpIntALU}, {Op: OpBranch}}}
	if p.Name() != "slice" {
		t.Errorf("default name = %q", p.Name())
	}
	p.ProgName = "custom"
	if p.Name() != "custom" {
		t.Errorf("custom name = %q", p.Name())
	}
	got := Collect(p, 10)
	if len(got) != 2 || got[1].Op != OpBranch {
		t.Errorf("Collect = %v", got)
	}
	if _, ok := p.Next(); ok {
		t.Error("exhausted player should report not-ok")
	}
	p.Reset(99)
	if in, ok := p.Next(); !ok || in.Op != OpIntALU {
		t.Error("reset should rewind")
	}
}

func TestCollectRespectsMax(t *testing.T) {
	p := &SlicePlayer{Insts: make([]Inst, 100)}
	if got := Collect(p, 10); len(got) != 10 {
		t.Errorf("Collect clamped to %d, want 10", len(got))
	}
}
