package isa

import "strings"

// Concat runs programs back to back: the composite stream is p1's
// instructions, then p2's, and so on — the natural way to build phased
// workloads from simple kernels.
func Concat(progs ...Program) Program {
	return &concat{progs: progs}
}

type concat struct {
	progs []Program
	cur   int
	seed  int64
}

func (c *concat) Name() string {
	names := make([]string, len(c.progs))
	for i, p := range c.progs {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

func (c *concat) Reset(seed int64) {
	c.cur = 0
	c.seed = seed
	for i, p := range c.progs {
		p.Reset(seed + int64(i))
	}
}

func (c *concat) Next() (Inst, bool) {
	for c.cur < len(c.progs) {
		if in, ok := c.progs[c.cur].Next(); ok {
			return in, true
		}
		c.cur++
	}
	return Inst{}, false
}

// Repeat replays a program n times (re-Reset with a varying seed between
// iterations so data-dependent behaviour differs across repeats while the
// whole composite stays deterministic).
func Repeat(p Program, n int) Program {
	return &repeat{p: p, n: n}
}

type repeat struct {
	p    Program
	n    int
	iter int
	seed int64
}

func (r *repeat) Name() string { return r.p.Name() + "*n" }

func (r *repeat) Reset(seed int64) {
	r.iter = 0
	r.seed = seed
	r.p.Reset(seed)
}

func (r *repeat) Next() (Inst, bool) {
	for {
		if r.iter >= r.n {
			return Inst{}, false
		}
		if in, ok := r.p.Next(); ok {
			return in, true
		}
		r.iter++
		if r.iter < r.n {
			r.p.Reset(r.seed + int64(r.iter))
		}
	}
}

// Interleave alternates between programs in fixed-size chunks (chunk
// instructions from each in turn) until all are exhausted — a model of
// fine-grained phase mixing. Chunk must be positive; it is clamped to 1.
func Interleave(chunk int, progs ...Program) Program {
	if chunk < 1 {
		chunk = 1
	}
	return &interleave{progs: progs, chunk: chunk, done: make([]bool, len(progs))}
}

type interleave struct {
	progs []Program
	chunk int
	cur   int
	emit  int
	done  []bool
}

func (iv *interleave) Name() string {
	names := make([]string, len(iv.progs))
	for i, p := range iv.progs {
		names[i] = p.Name()
	}
	return strings.Join(names, "|")
}

func (iv *interleave) Reset(seed int64) {
	iv.cur, iv.emit = 0, 0
	for i, p := range iv.progs {
		p.Reset(seed + int64(i))
		iv.done[i] = false
	}
}

func (iv *interleave) Next() (Inst, bool) {
	remaining := len(iv.progs)
	for _, d := range iv.done {
		if d {
			remaining--
		}
	}
	if remaining == 0 {
		return Inst{}, false
	}
	for tries := 0; tries < len(iv.progs); tries++ {
		if iv.done[iv.cur] || iv.emit >= iv.chunk {
			iv.cur = (iv.cur + 1) % len(iv.progs)
			iv.emit = 0
			continue
		}
		in, ok := iv.progs[iv.cur].Next()
		if !ok {
			iv.done[iv.cur] = true
			iv.cur = (iv.cur + 1) % len(iv.progs)
			iv.emit = 0
			continue
		}
		iv.emit++
		return in, true
	}
	// All programs were skipped this pass (chunk boundaries aligned);
	// retry once after the rotation above advanced state.
	for i := range iv.progs {
		if iv.done[i] {
			continue
		}
		if in, ok := iv.progs[i].Next(); ok {
			iv.cur = i
			iv.emit = 1
			return in, true
		}
		iv.done[i] = true
	}
	return Inst{}, false
}
