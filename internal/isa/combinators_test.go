package isa

import "testing"

func mkSlice(op Op, n int) *SlicePlayer {
	insts := make([]Inst, n)
	for i := range insts {
		insts[i] = Inst{PC: uint64(0x1000 + 4*i), Op: op, Dst: 1}
	}
	return &SlicePlayer{ProgName: op.String(), Insts: insts}
}

func TestConcat(t *testing.T) {
	p := Concat(mkSlice(OpIntALU, 3), mkSlice(OpFPAdd, 2))
	p.Reset(1)
	got := Collect(p, 100)
	if len(got) != 5 {
		t.Fatalf("length %d, want 5", len(got))
	}
	for i := 0; i < 3; i++ {
		if got[i].Op != OpIntALU {
			t.Errorf("inst %d = %v, want int_alu", i, got[i].Op)
		}
	}
	for i := 3; i < 5; i++ {
		if got[i].Op != OpFPAdd {
			t.Errorf("inst %d = %v, want fp_add", i, got[i].Op)
		}
	}
	if p.Name() != "int_alu+fp_add" {
		t.Errorf("name = %q", p.Name())
	}
	// Reset rewinds completely.
	p.Reset(1)
	if again := Collect(p, 100); len(again) != 5 {
		t.Errorf("after reset: %d insts", len(again))
	}
}

func TestConcatEmpty(t *testing.T) {
	p := Concat()
	p.Reset(0)
	if _, ok := p.Next(); ok {
		t.Error("empty concat should be exhausted")
	}
}

func TestRepeat(t *testing.T) {
	p := Repeat(mkSlice(OpIntALU, 4), 3)
	p.Reset(9)
	got := Collect(p, 100)
	if len(got) != 12 {
		t.Fatalf("length %d, want 12", len(got))
	}
	p.Reset(9)
	if again := Collect(p, 100); len(again) != 12 {
		t.Errorf("after reset: %d", len(again))
	}
	zero := Repeat(mkSlice(OpIntALU, 4), 0)
	zero.Reset(1)
	if _, ok := zero.Next(); ok {
		t.Error("zero repeats should be empty")
	}
}

func TestInterleave(t *testing.T) {
	p := Interleave(2, mkSlice(OpIntALU, 4), mkSlice(OpFPAdd, 4))
	p.Reset(1)
	got := Collect(p, 100)
	if len(got) != 8 {
		t.Fatalf("length %d, want 8", len(got))
	}
	wantOps := []Op{OpIntALU, OpIntALU, OpFPAdd, OpFPAdd, OpIntALU, OpIntALU, OpFPAdd, OpFPAdd}
	for i, w := range wantOps {
		if got[i].Op != w {
			t.Fatalf("inst %d = %v, want %v (chunked alternation)", i, got[i].Op, w)
		}
	}
	if p.Name() != "int_alu|fp_add" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestInterleaveUnevenLengths(t *testing.T) {
	p := Interleave(3, mkSlice(OpIntALU, 2), mkSlice(OpFPAdd, 7))
	p.Reset(1)
	got := Collect(p, 100)
	if len(got) != 9 {
		t.Fatalf("length %d, want 9 (no instruction lost)", len(got))
	}
	alu, fp := 0, 0
	for _, in := range got {
		switch in.Op {
		case OpIntALU:
			alu++
		case OpFPAdd:
			fp++
		}
	}
	if alu != 2 || fp != 7 {
		t.Errorf("counts alu=%d fp=%d", alu, fp)
	}
}

func TestInterleaveChunkClamp(t *testing.T) {
	p := Interleave(0, mkSlice(OpIntALU, 2), mkSlice(OpFPAdd, 2))
	p.Reset(1)
	if got := Collect(p, 10); len(got) != 4 {
		t.Errorf("length %d, want 4", len(got))
	}
}

func TestCombinatorsCompose(t *testing.T) {
	// Phased workload: (A then B) repeated twice.
	p := Repeat(Concat(mkSlice(OpIntALU, 3), mkSlice(OpLoad, 0)), 2)
	p.Reset(5)
	if got := Collect(p, 100); len(got) != 6 {
		t.Errorf("length %d, want 6", len(got))
	}
}
