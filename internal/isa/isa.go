// Package isa defines the dynamic-instruction representation consumed by
// the CPU simulator. Workloads are programs that stream Inst records: the
// executed path of a kernel, with resolved memory addresses and branch
// outcomes, in the style of a trace-driven simulator front end.
//
// This substitutes for the paper's real x86 binaries: SPIRE never sees
// instructions, only performance counter values, so a trace-level IR that
// exercises the same microarchitectural resources is sufficient.
package isa

import "fmt"

// Op is a dynamic instruction's operation class. The class determines the
// execution ports it may use, its latency, and its decode cost.
type Op uint8

const (
	// OpNop retires without using an execution port.
	OpNop Op = iota
	// OpIntALU is a single-cycle integer ALU operation.
	OpIntALU
	// OpIntMul is a pipelined integer multiply.
	OpIntMul
	// OpIntDiv is a non-pipelined integer divide.
	OpIntDiv
	// OpFPAdd is a pipelined floating-point add.
	OpFPAdd
	// OpFPMul is a pipelined floating-point multiply.
	OpFPMul
	// OpFPDiv is a non-pipelined floating-point divide.
	OpFPDiv
	// OpFMA is a fused multiply-add.
	OpFMA
	// OpVecALU is a SIMD integer/logic operation; width matters.
	OpVecALU
	// OpVecMul is a SIMD multiply; width matters.
	OpVecMul
	// OpVecFMA is a SIMD fused multiply-add; width matters.
	OpVecFMA
	// OpLoad reads memory.
	OpLoad
	// OpStore writes memory.
	OpStore
	// OpLoadLocked is an atomic read-modify-write load (LOCK prefix):
	// it serializes the memory pipeline.
	OpLoadLocked
	// OpBranch is a conditional or indirect branch with a resolved
	// outcome.
	OpBranch
	// OpMicrocoded is a complex instruction decoded by the microcode
	// sequencer into UopCount micro-ops.
	OpMicrocoded
	opCount
)

var opNames = [...]string{
	"nop", "int_alu", "int_mul", "int_div", "fp_add", "fp_mul", "fp_div",
	"fma", "vec_alu", "vec_mul", "vec_fma", "load", "store", "load_locked",
	"branch", "microcoded",
}

// String returns the op's mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether the op is a defined class.
func (o Op) Valid() bool { return o < opCount }

// IsMemory reports whether the op accesses data memory.
func (o Op) IsMemory() bool {
	return o == OpLoad || o == OpStore || o == OpLoadLocked
}

// IsVector reports whether the op's SIMD width is meaningful.
func (o Op) IsVector() bool {
	return o == OpVecALU || o == OpVecMul || o == OpVecFMA
}

// Reg identifies an architectural register. Register 0 is the "no
// register" sentinel (reads are always ready, writes are discarded).
type Reg uint8

// NumRegs is the architectural register file size, including the
// zero-register sentinel.
const NumRegs = 64

// Inst is one dynamic instruction. The zero value is a NOP at PC 0.
type Inst struct {
	// PC is the instruction's address; it drives the instruction cache,
	// the decoded-uop cache (DSB), and branch prediction structures.
	PC uint64
	// Op is the operation class.
	Op Op
	// Dst is the destination register (0 = none).
	Dst Reg
	// Src1 and Src2 are source registers (0 = always ready).
	Src1, Src2 Reg
	// Addr is the data address for memory ops.
	Addr uint64
	// Size is the access size in bytes for memory ops.
	Size uint8
	// VecWidth is the SIMD width in bits (128, 256 or 512) for vector
	// ops.
	VecWidth uint16
	// Taken is the resolved outcome for branches.
	Taken bool
	// Target is the resolved target PC for taken branches.
	Target uint64
	// UopCount is the micro-op expansion for OpMicrocoded (>= 1);
	// ignored (treated as 1) for other ops.
	UopCount uint8
}

// Uops returns the number of micro-ops the instruction decodes into.
func (in Inst) Uops() int {
	if in.Op == OpMicrocoded && in.UopCount > 1 {
		return int(in.UopCount)
	}
	return 1
}

// Validate reports structural problems with the instruction; the
// simulator rejects invalid programs early rather than mis-counting.
func (in Inst) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid op %d", in.Op)
	}
	if in.Dst >= NumRegs || in.Src1 >= NumRegs || in.Src2 >= NumRegs {
		return fmt.Errorf("isa: register out of range in %v", in)
	}
	if in.Op.IsMemory() && in.Size == 0 {
		return fmt.Errorf("isa: memory op with zero size at pc %#x", in.PC)
	}
	if in.Op.IsVector() {
		switch in.VecWidth {
		case 128, 256, 512:
		default:
			return fmt.Errorf("isa: vector op with width %d at pc %#x", in.VecWidth, in.PC)
		}
	}
	if in.Op == OpMicrocoded && in.UopCount == 0 {
		return fmt.Errorf("isa: microcoded op with zero uop count at pc %#x", in.PC)
	}
	return nil
}

// Program is a replayable stream of dynamic instructions. Implementations
// must be deterministic for a given seed so that experiments reproduce.
type Program interface {
	// Name identifies the workload, e.g. "tnn".
	Name() string
	// Reset rewinds the stream to the beginning with the given seed.
	Reset(seed int64)
	// Next returns the next instruction; ok is false at end of stream.
	Next() (in Inst, ok bool)
}

// Collect drains up to max instructions from a program into a slice,
// mostly for tests and debugging.
func Collect(p Program, max int) []Inst {
	var out []Inst
	for len(out) < max {
		in, ok := p.Next()
		if !ok {
			break
		}
		out = append(out, in)
	}
	return out
}

// SlicePlayer replays a fixed instruction slice; the seed is ignored.
// Useful for tests that need exact instruction sequences.
type SlicePlayer struct {
	ProgName string
	Insts    []Inst
	pos      int
}

// Name implements Program.
func (s *SlicePlayer) Name() string {
	if s.ProgName == "" {
		return "slice"
	}
	return s.ProgName
}

// Reset implements Program.
func (s *SlicePlayer) Reset(seed int64) { s.pos = 0 }

// Next implements Program.
func (s *SlicePlayer) Next() (Inst, bool) {
	if s.pos >= len(s.Insts) {
		return Inst{}, false
	}
	in := s.Insts[s.pos]
	s.pos++
	return in, true
}

// ParseOp resolves a mnemonic (as produced by Op.String) back to its Op.
func ParseOp(name string) (Op, bool) {
	for i, n := range opNames {
		if n == name {
			return Op(i), true
		}
	}
	return 0, false
}
