package trace

import (
	"bytes"
	"errors"
	"testing"

	"spire/internal/isa"
)

// FuzzRead hammers the trace decoder with arbitrary bytes: it must either
// return a valid instruction slice or a wrapped ErrBadTrace — never panic
// or hand back instructions that fail validation.
func FuzzRead(f *testing.F) {
	// Seed with a genuine trace plus adversarial variants.
	insts := []isa.Inst{
		{PC: 0x1000, Op: isa.OpIntALU, Dst: 1},
		{PC: 0x1004, Op: isa.OpLoad, Dst: 2, Addr: 0x2000, Size: 8},
		{PC: 0x1008, Op: isa.OpBranch, Taken: true, Target: 0x1000},
		{PC: 0x100c, Op: isa.OpVecFMA, Dst: 3, VecWidth: 512},
		{PC: 0x1010, Op: isa.OpMicrocoded, Dst: 4, UopCount: 9},
	}
	var buf bytes.Buffer
	if err := Write(&buf, insts); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(append(append([]byte{}, good...), 0xff, 0x00))
	if len(good) > 4 {
		f.Add(good[:len(good)-3])
		mut := append([]byte{}, good...)
		mut[len(mut)/2] ^= 0x55
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("non-ErrBadTrace failure: %v", err)
			}
			return
		}
		for i, in := range got {
			if verr := in.Validate(); verr != nil {
				t.Fatalf("decoder returned invalid instruction %d: %v", i, verr)
			}
		}
	})
}

// FuzzRoundTrip: any instruction slice the encoder accepts must decode to
// exactly itself.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint8(1), uint8(2), uint16(256), true)
	f.Add(uint64(0), uint8(0), uint8(63), uint16(512), false)
	f.Fuzz(func(t *testing.T, pc uint64, op, reg uint8, vw uint16, taken bool) {
		in := isa.Inst{
			PC:  pc,
			Op:  isa.Op(op % 16),
			Dst: isa.Reg(reg % 64),
		}
		switch {
		case in.Op.IsMemory():
			in.Size = 8
			in.Addr = pc * 3
		case in.Op.IsVector():
			widths := []uint16{128, 256, 512}
			in.VecWidth = widths[int(vw)%3]
		case in.Op == isa.OpBranch:
			in.Taken = taken
			in.Target = pc + 64
		case in.Op == isa.OpMicrocoded:
			in.UopCount = 1 + reg%20
		}
		var buf bytes.Buffer
		if err := Write(&buf, []isa.Inst{in}); err != nil {
			t.Skip() // encoder rejected it (invalid combination)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if len(got) != 1 || got[0] != in {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
		}
	})
}
