// Package trace records and replays dynamic instruction streams. A trace
// captures exactly what the simulator would execute — resolved addresses
// and branch outcomes included — so experiments can be re-run without the
// original workload generator, shared between machines, or diffed between
// generator versions.
//
// The format is a gzip stream of delta/varint-encoded records behind a
// small versioned header. PCs and addresses are delta-encoded against the
// previous instruction, which compresses loopy traces well.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"spire/internal/isa"
)

const (
	magic   = "SPIRTRC"
	version = 1
)

// ErrBadTrace is wrapped by all decode errors.
var ErrBadTrace = errors.New("trace: malformed trace")

// Write encodes instructions to w.
func Write(w io.Writer, insts []isa.Inst) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], version)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(insts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	zw := gzip.NewWriter(bw)
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := zw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := zw.Write(buf[:n])
		return err
	}
	var prevPC, prevAddr uint64
	for i := range insts {
		in := &insts[i]
		if err := in.Validate(); err != nil {
			return fmt.Errorf("trace: instruction %d: %w", i, err)
		}
		flags := uint64(0)
		if in.Taken {
			flags |= 1
		}
		if err := putUvarint(uint64(in.Op) | flags<<6); err != nil {
			return err
		}
		if err := putVarint(int64(in.PC) - int64(prevPC)); err != nil {
			return err
		}
		prevPC = in.PC
		// Pack the small operands into one varint.
		packed := uint64(in.Dst) | uint64(in.Src1)<<8 | uint64(in.Src2)<<16 |
			uint64(in.Size)<<24 | uint64(in.UopCount)<<32 | uint64(in.VecWidth)<<40
		if err := putUvarint(packed); err != nil {
			return err
		}
		if in.Op.IsMemory() {
			if err := putVarint(int64(in.Addr) - int64(prevAddr)); err != nil {
				return err
			}
			prevAddr = in.Addr
		}
		if in.Op == isa.OpBranch {
			if err := putUvarint(in.Target); err != nil {
				return err
			}
		}
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// Read decodes a full trace from r.
func Read(r io.Reader) ([]isa.Inst, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+12)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	if v := binary.LittleEndian.Uint32(head[len(magic) : len(magic)+4]); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	count := binary.LittleEndian.Uint64(head[len(magic)+4:])
	const maxTrace = 1 << 30
	if count > maxTrace {
		return nil, fmt.Errorf("%w: implausible instruction count %d", ErrBadTrace, count)
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	defer zr.Close()
	zbr := bufio.NewReader(zr)

	// Never preallocate from the untrusted count — a forged header could
	// demand gigabytes. Grow as records actually decode.
	capHint := count
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	insts := make([]isa.Inst, 0, capHint)
	var prevPC, prevAddr uint64
	for i := uint64(0); i < count; i++ {
		opFlags, err := binary.ReadUvarint(zbr)
		if err != nil {
			return nil, fmt.Errorf("%w: inst %d op: %v", ErrBadTrace, i, err)
		}
		var in isa.Inst
		in.Op = isa.Op(opFlags & 0x3f)
		in.Taken = opFlags>>6&1 == 1
		dpc, err := binary.ReadVarint(zbr)
		if err != nil {
			return nil, fmt.Errorf("%w: inst %d pc: %v", ErrBadTrace, i, err)
		}
		in.PC = uint64(int64(prevPC) + dpc)
		prevPC = in.PC
		packed, err := binary.ReadUvarint(zbr)
		if err != nil {
			return nil, fmt.Errorf("%w: inst %d operands: %v", ErrBadTrace, i, err)
		}
		in.Dst = isa.Reg(packed)
		in.Src1 = isa.Reg(packed >> 8)
		in.Src2 = isa.Reg(packed >> 16)
		in.Size = uint8(packed >> 24)
		in.UopCount = uint8(packed >> 32)
		in.VecWidth = uint16(packed >> 40)
		if in.Op.IsMemory() {
			da, err := binary.ReadVarint(zbr)
			if err != nil {
				return nil, fmt.Errorf("%w: inst %d addr: %v", ErrBadTrace, i, err)
			}
			in.Addr = uint64(int64(prevAddr) + da)
			prevAddr = in.Addr
		}
		if in.Op == isa.OpBranch {
			in.Target, err = binary.ReadUvarint(zbr)
			if err != nil {
				return nil, fmt.Errorf("%w: inst %d target: %v", ErrBadTrace, i, err)
			}
		}
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("%w: inst %d: %v", ErrBadTrace, i, err)
		}
		insts = append(insts, in)
	}
	return insts, nil
}

// Record drains up to max instructions from a program (reset with seed)
// and writes them as a trace. It returns the number of instructions
// captured.
func Record(w io.Writer, p isa.Program, seed int64, max int) (int, error) {
	p.Reset(seed)
	insts := isa.Collect(p, max)
	if len(insts) == 0 {
		return 0, errors.New("trace: program produced no instructions")
	}
	return len(insts), Write(w, insts)
}

// Load reads a trace and wraps it as a replayable program.
func Load(r io.Reader, name string) (isa.Program, error) {
	insts, err := Read(r)
	if err != nil {
		return nil, err
	}
	return &isa.SlicePlayer{ProgName: name, Insts: insts}, nil
}
