package trace

import (
	"bytes"
	"errors"
	"testing"

	"spire/internal/isa"
	"spire/internal/sim"
	"spire/internal/uarch"
	"spire/internal/workloads"
)

func sampleTrace(t *testing.T, n int) []isa.Inst {
	t.Helper()
	spec, err := workloads.ByName("numenta-nab")
	if err != nil {
		t.Fatal(err)
	}
	p := spec.Build(1)
	p.Reset(9)
	insts := isa.Collect(p, n)
	if len(insts) != n {
		t.Fatalf("collected %d, want %d", len(insts), n)
	}
	return insts
}

func TestRoundTrip(t *testing.T) {
	insts := sampleTrace(t, 5000)
	var buf bytes.Buffer
	if err := Write(&buf, insts); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insts) {
		t.Fatalf("length %d != %d", len(got), len(insts))
	}
	for i := range insts {
		if got[i] != insts[i] {
			t.Fatalf("inst %d differs:\n got %+v\nwant %+v", i, got[i], insts[i])
		}
	}
}

func TestCompression(t *testing.T) {
	insts := sampleTrace(t, 20000)
	var buf bytes.Buffer
	if err := Write(&buf, insts); err != nil {
		t.Fatal(err)
	}
	// A loopy trace should compress far below a naive fixed encoding
	// (~40 bytes per instruction).
	perInst := float64(buf.Len()) / float64(len(insts))
	if perInst > 4 {
		t.Errorf("trace uses %.1f bytes/inst, want < 4", perInst)
	}
}

func TestRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTATRACE_______________"),
		"short":     []byte("SPIRTRC\x01"),
	}
	for name, payload := range cases {
		if _, err := Read(bytes.NewReader(payload)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: err = %v, want ErrBadTrace", name, err)
		}
	}
}

func TestRejectsTruncatedBody(t *testing.T) {
	insts := sampleTrace(t, 1000)
	var buf bytes.Buffer
	if err := Write(&buf, insts); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Error("expected error for truncated trace")
	}
}

func TestWriteRejectsInvalidInst(t *testing.T) {
	bad := []isa.Inst{{Op: isa.OpLoad, Size: 0}}
	var buf bytes.Buffer
	if err := Write(&buf, bad); err == nil {
		t.Error("expected validation error")
	}
}

func TestRecordAndLoadSimulateIdentically(t *testing.T) {
	spec, err := workloads.ByName("fftw")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Record(&buf, spec.Build(0.02), 4, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing recorded")
	}
	replay, err := Load(&buf, "fftw-replay")
	if err != nil {
		t.Fatal(err)
	}
	if replay.Name() != "fftw-replay" {
		t.Errorf("name = %q", replay.Name())
	}

	// Simulating the replayed trace must match simulating the original.
	s1, err := sim.New(uarch.Default(), spec.Build(0.02), 4)
	if err != nil {
		t.Fatal(err)
	}
	r1 := s1.Run(50_000_000)
	s2, err := sim.New(uarch.Default(), replay, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2 := s2.Run(50_000_000)
	if r1.Cycles != r2.Cycles || r1.Instructions != r2.Instructions {
		t.Errorf("replay diverged: %d cy/%d inst vs %d cy/%d inst",
			r1.Cycles, r1.Instructions, r2.Cycles, r2.Instructions)
	}
}

func TestRecordEmptyProgram(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(&buf, &isa.SlicePlayer{}, 0, 100); err == nil {
		t.Error("expected error for empty program")
	}
}
