package waitgraph

import (
	"math"
	"reflect"
	"testing"

	"spire/internal/core"
)

// fuzzClasses mixes every known scheduler class with an unknown one and
// an empty one, so the replay's skip paths stay exercised.
var fuzzClasses = []string{
	"sched.switch_in", "sched.switch_out", "sched.wakeup",
	"sched.block_lock", "sched.unblock_lock",
	"sched.block_io", "sched.unblock_io",
	"sched.mystery", "",
}

var fuzzObjs = []string{"", "a", "b", "dev0"}

// eventsFromBytes decodes fuzz input into an event stream, four bytes
// per event: class selector, thread/hart, obj/waker, and a signed time
// delta. Deltas may be negative, driving the stream out of order and —
// once the running clock goes below zero — structurally invalid, so
// every tolerance path in Build sees traffic.
func eventsFromBytes(data []byte) []core.SchedEvent {
	var evs []core.SchedEvent
	var t float64
	for i := 0; i+4 <= len(data); i += 4 {
		b := data[i : i+4]
		dt := float64(b[3] >> 4)
		if b[3]&8 != 0 {
			dt = -dt
		}
		t += dt
		evs = append(evs, core.SchedEvent{
			Time:   t,
			Class:  fuzzClasses[int(b[0])%len(fuzzClasses)],
			Thread: int(b[1] & 7),
			Hart:   int(b[1]>>3) % 4,
			Obj:    fuzzObjs[int(b[2])%len(fuzzObjs)],
			Waker:  int(b[2]>>4)%6 - 1,
			Window: -1,
		})
	}
	return evs
}

// FuzzWaitGraphBuild drives Build/Partition/Verdicts with arbitrary
// event streams and asserts the structural contract: total (no panic),
// deterministic, and an exact wall-time partition no matter how garbled
// the input ordering is.
func FuzzWaitGraphBuild(f *testing.F) {
	seeds := [][]byte{
		{},
		// One thread: in, block on lock a, unblock, in, out.
		{0, 0, 1, 0x50, 3, 0, 1, 0x30, 4, 0, 1, 0x20, 0, 0, 1, 0x10, 1, 0, 1, 0x40},
		// Two threads ping-ponging one lock with a wakeup edge.
		{0, 0, 0, 0x10, 0, 1, 0, 0x10, 3, 0, 1, 0x20, 2, 0, 0x11, 0x10, 4, 0, 1, 0x10, 1, 1, 0, 0x30},
		// Unknown classes and out-of-order deltas.
		{7, 0, 0, 0x18, 8, 1, 0, 0x28, 0, 2, 0, 0x98, 5, 3, 3, 0x40, 6, 3, 3, 0x20},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events := eventsFromBytes(data)
		g := Build(events)
		if g == nil {
			t.Fatal("Build returned nil")
		}
		if g2 := Build(events); !reflect.DeepEqual(g, g2) {
			t.Fatal("Build is not deterministic")
		}

		ids := make(map[int]bool, len(g.Threads))
		for i, th := range g.Threads {
			if i > 0 && g.Threads[i-1].Thread >= th.Thread {
				t.Fatalf("threads not ascending: %d then %d", g.Threads[i-1].Thread, th.Thread)
			}
			ids[th.Thread] = true
			for _, v := range []float64{th.Running, th.LockWait, th.IOWait, th.RunnableWait} {
				if math.IsNaN(v) || v < 0 {
					t.Fatalf("thread %d has negative/NaN component: %+v", th.Thread, th)
				}
			}
			// Exact by construction: the same additions, same order.
			if th.Wall != th.Running+th.LockWait+th.IOWait+th.RunnableWait {
				t.Fatalf("thread %d wall %v != component sum", th.Thread, th.Wall)
			}
		}

		p := g.Partition()
		if p.OffCPU != p.LockWait+p.IOWait+p.RunnableWait {
			t.Fatalf("partition off-CPU %v != lock %v + io %v + runnable %v",
				p.OffCPU, p.LockWait, p.IOWait, p.RunnableWait)
		}
		if p.Wall != p.OnCPU+p.OffCPU {
			t.Fatalf("partition wall %v != on %v + off %v", p.Wall, p.OnCPU, p.OffCPU)
		}
		if p.Threads != len(g.Threads) {
			t.Fatalf("partition thread count %d != %d", p.Threads, len(g.Threads))
		}

		for _, e := range g.Edges {
			if e.Wait <= 0 || e.Count <= 0 {
				t.Fatalf("degenerate edge survived: %+v", e)
			}
			if e.From == "" || e.To == "" {
				t.Fatalf("edge with unnamed endpoint: %+v", e)
			}
		}

		for _, knot := range g.Knots {
			if len(knot) == 0 {
				t.Fatal("empty knot")
			}
			for i, id := range knot {
				if !ids[id] {
					t.Fatalf("knot member %d is not a graph thread", id)
				}
				if i > 0 && knot[i-1] >= id {
					t.Fatalf("knot ids not ascending: %v", knot)
				}
			}
		}

		vs := g.Verdicts()
		for i, v := range vs {
			if i > 0 && vs[i-1].Wait < v.Wait {
				t.Fatalf("verdicts not descending by wait: %v then %v", vs[i-1].Wait, v.Wait)
			}
			if v.Wait < 0 || math.IsNaN(v.Wait) {
				t.Fatalf("verdict with negative/NaN wait: %+v", v)
			}
			if v.Share < 0 || math.IsNaN(v.Share) {
				t.Fatalf("verdict with negative/NaN share: %+v", v)
			}
		}
	})
}
