package waitgraph

import (
	"math"
	"reflect"
	"testing"

	"spire/internal/core"
	"spire/internal/perfstat"
	"spire/internal/sim"
)

// runMT runs a thread roster and returns the serialized events plus the
// simulator's ground-truth accounting.
func runMT(t *testing.T, harts int, slice uint64, threads []sim.MTThread) ([]core.SchedEvent, sim.MTResult) {
	t.Helper()
	m, err := sim.NewMT(sim.MTConfig{Harts: harts, TimeSlice: slice}, threads)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("sim did not finish")
	}
	return perfstat.ConvertSched(res.Events, 0), res
}

func convoy(n int) []sim.MTThread {
	var ts []sim.MTThread
	for i := 0; i < n; i++ {
		ts = append(ts, sim.MTThread{
			Ops: []sim.MTOp{
				{Kind: sim.OpLock, Obj: "hot"},
				{Kind: sim.OpCompute, Cycles: 100},
				{Kind: sim.OpUnlock, Obj: "hot"},
				{Kind: sim.OpCompute, Cycles: 10},
			},
			Loop: 5,
		})
	}
	return ts
}

func TestBuildMatchesSimulatorAccounting(t *testing.T) {
	events, res := runMT(t, 2, 64, []sim.MTThread{
		{Ops: []sim.MTOp{{Kind: sim.OpCompute, Cycles: 400}}, Loop: 3},
		{Ops: []sim.MTOp{{Kind: sim.OpCompute, Cycles: 30}, {Kind: sim.OpIO, Obj: "disk", Cycles: 200}}, Loop: 4},
		{Ops: []sim.MTOp{{Kind: sim.OpLock, Obj: "l"}, {Kind: sim.OpCompute, Cycles: 80}, {Kind: sim.OpUnlock, Obj: "l"}}, Loop: 4},
		{Ops: []sim.MTOp{{Kind: sim.OpLock, Obj: "l"}, {Kind: sim.OpCompute, Cycles: 80}, {Kind: sim.OpUnlock, Obj: "l"}}, Loop: 4},
	})
	g := Build(events)
	if len(g.Threads) != len(res.PerThread) {
		t.Fatalf("threads = %d, want %d", len(g.Threads), len(res.PerThread))
	}
	for _, tt := range g.Threads {
		want := res.PerThread[tt.Thread]
		if tt.Running != float64(want.OnCPU) || tt.LockWait != float64(want.LockWait) ||
			tt.IOWait != float64(want.IOWait) || tt.RunnableWait != float64(want.RunnableWait) {
			t.Fatalf("thread %d: graph times %+v != sim %+v", tt.Thread, tt, want)
		}
	}
}

func TestPartitionExactSum(t *testing.T) {
	events, _ := runMT(t, 2, 50, convoy(4))
	g := Build(events)
	p := g.Partition()
	if p.Wall != p.OnCPU+p.OffCPU {
		t.Fatalf("wall %v != onCPU %v + offCPU %v", p.Wall, p.OnCPU, p.OffCPU)
	}
	if p.OffCPU != p.LockWait+p.IOWait+p.RunnableWait {
		t.Fatalf("offCPU %v != lock %v + io %v + runnable %v", p.OffCPU, p.LockWait, p.IOWait, p.RunnableWait)
	}
	if p.Threads != 4 {
		t.Fatalf("threads = %d", p.Threads)
	}
	// Per-thread wall is also exact.
	for _, tt := range g.Threads {
		if tt.Wall != tt.Running+tt.LockWait+tt.IOWait+tt.RunnableWait {
			t.Fatalf("thread %d wall not exact: %+v", tt.Thread, tt)
		}
	}
}

func TestConvoyTopVerdictIsLock(t *testing.T) {
	events, _ := runMT(t, 4, 0, convoy(4))
	g := Build(events)
	vs := g.Verdicts()
	if len(vs) == 0 {
		t.Fatal("no verdicts")
	}
	if vs[0].Kind != "lock" || vs[0].Object != "hot" {
		t.Fatalf("top verdict = %+v, want lock hot", vs[0])
	}
	if vs[0].Waiters < 3 {
		t.Fatalf("waiters = %d, want >= 3", vs[0].Waiters)
	}
	// Single-lock convoy: the mutual-wait group is named by its lock, so
	// no knot verdict.
	for _, v := range vs {
		if v.Kind == "knot" {
			t.Fatalf("single-lock convoy produced a knot verdict: %+v", v)
		}
	}
}

func TestIOVerdict(t *testing.T) {
	events, _ := runMT(t, 2, 0, []sim.MTThread{
		{Ops: []sim.MTOp{{Kind: sim.OpCompute, Cycles: 10}, {Kind: sim.OpIO, Obj: "disk", Cycles: 300}}, Loop: 4},
		{Ops: []sim.MTOp{{Kind: sim.OpCompute, Cycles: 10}, {Kind: sim.OpIO, Obj: "disk", Cycles: 300}}, Loop: 4},
	})
	g := Build(events)
	vs := g.Verdicts()
	if vs[0].Kind != "io" || vs[0].Object != "disk" {
		t.Fatalf("top verdict = %+v, want io disk", vs[0])
	}
	if vs[0].Share <= 0.5 {
		t.Fatalf("io share = %v, want > 0.5", vs[0].Share)
	}
}

func TestRunnableVerdict(t *testing.T) {
	// 6 pure-compute threads on 1 hart: most time is runnable wait.
	var threads []sim.MTThread
	for i := 0; i < 6; i++ {
		threads = append(threads, sim.MTThread{
			Ops: []sim.MTOp{{Kind: sim.OpCompute, Cycles: 200}}, Loop: 3,
		})
	}
	events, _ := runMT(t, 1, 100, threads)
	g := Build(events)
	vs := g.Verdicts()
	if vs[0].Kind != "runnable" {
		t.Fatalf("top verdict = %+v, want runnable", vs[0])
	}
	if vs[0].Waiters != 6 {
		t.Fatalf("waiters = %d, want 6", vs[0].Waiters)
	}
}

func TestKnotDetection(t *testing.T) {
	// False serialization: three threads pass a ring of three locks with
	// co-prime section lengths, so the phases drift and every thread
	// eventually waits on every other — a 3-thread knot spanning three
	// lock objects. (Locks are never held nested, so no deadlock.)
	locks := []string{"l0", "l1", "l2"}
	hold := []uint64{97, 71, 113}
	next := []uint64{41, 67, 29}
	var threads []sim.MTThread
	for i := 0; i < 3; i++ {
		threads = append(threads, sim.MTThread{Ops: []sim.MTOp{
			{Kind: sim.OpLock, Obj: locks[i]},
			{Kind: sim.OpCompute, Cycles: hold[i]},
			{Kind: sim.OpUnlock, Obj: locks[i]},
			{Kind: sim.OpLock, Obj: locks[(i+1)%3]},
			{Kind: sim.OpCompute, Cycles: next[i]},
			{Kind: sim.OpUnlock, Obj: locks[(i+1)%3]},
		}, Loop: 20})
	}
	events, _ := runMT(t, 3, 0, threads)
	g := Build(events)
	if len(g.Knots) == 0 {
		t.Fatal("no knot found")
	}
	if !reflect.DeepEqual(g.Knots[0], []int{0, 1, 2}) {
		t.Fatalf("knot = %v, want [0 1 2]", g.Knots[0])
	}
	var knot *core.WaitVerdict
	for _, v := range g.Verdicts() {
		if v.Kind == "knot" {
			vv := v
			knot = &vv
			break
		}
	}
	if knot == nil {
		t.Fatal("no knot verdict despite multi-lock knot")
	}
	if !reflect.DeepEqual(knot.Threads, []int{0, 1, 2}) {
		t.Fatalf("knot threads = %v", knot.Threads)
	}
}

func TestBuildDeterministic(t *testing.T) {
	events, _ := runMT(t, 2, 64, convoy(3))
	a, b := Build(events), Build(events)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Build not deterministic")
	}
}

func TestBuildTolerance(t *testing.T) {
	events := []core.SchedEvent{
		{Time: 0, Class: "sched.wakeup", Thread: 0, Waker: -1},
		{Time: 10, Class: "sched.switch_in", Thread: 0, Waker: -1},
		{Time: math.NaN(), Class: "sched.switch_out", Thread: 0, Waker: -1}, // invalid: skipped
		{Time: 20, Class: "sched.future_class", Thread: 0, Waker: -1},       // unknown: skipped
		{Time: 5, Class: "sched.switch_out", Thread: 0, Waker: -1},          // out of order: dt clamps to 0
		{Time: -3, Class: "sched.switch_in", Thread: 1, Waker: -1},          // invalid time
		{Time: 30, Class: "sched.block_lock", Thread: 2, Obj: "l", Waker: 5},
	}
	g := Build(events)
	p := g.Partition()
	if p.Threads != 2 { // threads 0 and 2; thread 1's only event was invalid
		t.Fatalf("threads = %d, want 2", p.Threads)
	}
	if p.Wall != p.OnCPU+p.OffCPU {
		t.Fatal("partition not exact under hostile input")
	}
	// Truncated lock wait with a recorded holder still becomes an edge...
	// here the block is the last event, so no time elapsed and no edge.
	if len(g.Edges) != 1 { // thread 0's 10-cycle runnable span
		t.Fatalf("edges = %+v", g.Edges)
	}
}

func TestBuildEmpty(t *testing.T) {
	g := Build(nil)
	if len(g.Threads) != 0 || len(g.Edges) != 0 || len(g.Knots) != 0 {
		t.Fatalf("empty build produced %+v", g)
	}
	if p := g.Partition(); p.Threads != 0 || p.Wall != 0 {
		t.Fatalf("partition = %+v", p)
	}
	if vs := g.Verdicts(); len(vs) != 0 {
		t.Fatalf("verdicts = %+v", vs)
	}
}

func TestTruncatedLockSpanBlamesHolder(t *testing.T) {
	events := []core.SchedEvent{
		{Time: 0, Class: "sched.switch_in", Thread: 1, Waker: -1},
		{Time: 0, Class: "sched.switch_in", Thread: 0, Waker: -1},
		{Time: 10, Class: "sched.block_lock", Thread: 0, Obj: "l", Waker: 1},
		{Time: 110, Class: "sched.switch_out", Thread: 0, Waker: -1}, // trace cut before unblock
	}
	g := Build(events)
	found := false
	for _, e := range g.Edges {
		if e.Kind == "lock" && e.From == ThreadNode(0) && e.To == ThreadNode(1) && e.Wait == 100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no lock edge to recorded holder: %+v", g.Edges)
	}
}

func TestOffShareHelper(t *testing.T) {
	p := core.TimePartition{Wall: 200, OffCPU: 50}
	if p.OffShare() != 0.25 {
		t.Fatalf("offShare = %v", p.OffShare())
	}
	if (core.TimePartition{}).OffShare() != 0 {
		t.Fatal("zero wall must give 0 share")
	}
}
