// Package waitgraph builds wPerf-style thread wait-for graphs from
// scheduler events ("Identifying bottlenecks in multithreaded
// applications", PAPERS.md). Rooflines explain where *on-CPU* time
// goes; this package explains the rest: for each thread it partitions
// wall time into running, lock wait, I/O wait, and runnable wait, and
// it identifies which locks, devices, and thread groups the waiting is
// *for*. A knot — a strongly connected component of the thread
// wait-for graph with no edges leaving it — is the classic waiting
// bottleneck: every member waits only on other members, so no outside
// progress can help.
package waitgraph

import (
	"fmt"
	"sort"
	"strings"

	"spire/internal/core"
	"spire/internal/graphalg"
	"spire/internal/pmu"
)

// ThreadTimes is the exact per-thread wall-time partition. Wall ==
// Running + LockWait + IOWait + RunnableWait by construction (the same
// additions build both sides).
type ThreadTimes struct {
	Thread       int     `json:"thread"`
	Running      float64 `json:"running"`
	LockWait     float64 `json:"lockWait"`
	IOWait       float64 `json:"ioWait"`
	RunnableWait float64 `json:"runnableWait"`
	Wall         float64 `json:"wall"`
}

// Edge is one aggregated wait-for relation: From waited on To for Wait
// cycles in total. To is a thread node ("thread:3") for lock waits with
// a known holder, a device node ("io:disk"), or the run queue ("cpu").
type Edge struct {
	From  string  `json:"from"`
	To    string  `json:"to"`
	Kind  string  `json:"kind"` // "lock", "io", or "runnable"
	Obj   string  `json:"obj,omitempty"`
	Wait  float64 `json:"wait"`
	Count int     `json:"count"`
}

// Graph is the built wait-for graph.
type Graph struct {
	// Threads holds the per-thread partition, ascending by thread id.
	Threads []ThreadTimes `json:"threads"`
	// Edges holds the aggregated wait-for edges in deterministic order
	// (by From, To, Obj).
	Edges []Edge `json:"edges"`
	// Knots lists thread groups (ascending ids) that waited only on
	// each other in the thread-to-thread lock subgraph.
	Knots [][]int `json:"knots,omitempty"`
}

// ThreadNode and friends name graph nodes.
func ThreadNode(id int) string { return fmt.Sprintf("thread:%d", id) }

// IONode names the pseudo-node for a device.
func IONode(obj string) string { return "io:" + obj }

// CPUNode is the pseudo-node for the run queue.
const CPUNode = "cpu"

// thread wait states for the replay state machine.
type wState uint8

const (
	wUnknown wState = iota
	wRunning
	wRunnable
	wBlockedLock
	wBlockedIO
)

type threadState struct {
	state    wState
	at       float64 // time of last accepted event
	obj      string  // lock/device while blocked
	holder   int     // lock holder recorded at block time (-1 unknown)
	times    ThreadTimes
	seen     bool
	lockAcc  float64 // wait accumulated in the current blocked-on-lock span
	ioAcc    float64
	runnAcc  float64
}

type edgeKey struct {
	from, to, kind, obj string
}

// Build replays the event log into a wait-for graph. It is total and
// tolerant: structurally invalid events, unknown classes, and
// out-of-order timestamps are skipped or clamped, never fatal —
// upstream ingest is responsible for reporting them.
func Build(events []core.SchedEvent) *Graph {
	threads := make(map[int]*threadState)
	edges := make(map[edgeKey]*Edge)
	get := func(id int) *threadState {
		ts, ok := threads[id]
		if !ok {
			ts = &threadState{holder: -1}
			threads[id] = ts
		}
		return ts
	}
	addEdge := func(from, to, kind, obj string, wait float64) {
		if wait <= 0 {
			return
		}
		k := edgeKey{from, to, kind, obj}
		e, ok := edges[k]
		if !ok {
			e = &Edge{From: from, To: to, Kind: kind, Obj: obj}
			edges[k] = e
		}
		e.Wait += wait
		e.Count++
	}
	for _, ev := range events {
		if !ev.Valid() {
			continue
		}
		if _, known := pmu.LookupSchedClass(ev.Class); !known {
			continue
		}
		ts := get(ev.Thread)
		if !ts.seen {
			ts.seen = true
			ts.at = ev.Time
		}
		dt := ev.Time - ts.at
		if dt < 0 {
			dt = 0 // out-of-order: clamp, keep the later anchor
		} else {
			ts.at = ev.Time
		}
		// Attribute the elapsed span to the state the thread was in.
		switch ts.state {
		case wRunning:
			ts.times.Running += dt
		case wRunnable:
			ts.times.RunnableWait += dt
			ts.runnAcc += dt
		case wBlockedLock:
			ts.times.LockWait += dt
			ts.lockAcc += dt
		case wBlockedIO:
			ts.times.IOWait += dt
			ts.ioAcc += dt
		}
		from := ThreadNode(ev.Thread)
		// Close wait spans and transition.
		switch ev.Class {
		case "sched.switch_in":
			if ts.state == wRunnable && ts.runnAcc > 0 {
				addEdge(from, CPUNode, "runnable", "", ts.runnAcc)
				ts.runnAcc = 0
			}
			ts.state = wRunning
		case "sched.switch_out", "sched.wakeup":
			ts.state = wRunnable
		case "sched.block_lock":
			ts.state = wBlockedLock
			ts.obj = ev.Obj
			ts.holder = ev.Waker
		case "sched.unblock_lock":
			holder := ev.Waker
			if holder < 0 {
				holder = ts.holder
			}
			if ts.lockAcc > 0 && holder >= 0 {
				addEdge(from, ThreadNode(holder), "lock", ts.obj, ts.lockAcc)
			}
			ts.lockAcc = 0
			ts.holder = -1
			ts.state = wRunnable
		case "sched.block_io":
			ts.state = wBlockedIO
			ts.obj = ev.Obj
		case "sched.unblock_io":
			if ts.ioAcc > 0 {
				addEdge(from, IONode(ts.obj), "io", ts.obj, ts.ioAcc)
			}
			ts.ioAcc = 0
			ts.state = wRunnable
		}
	}
	// Close any span left open at trace end (truncated collection).
	for id, ts := range threads {
		from := ThreadNode(id)
		if ts.runnAcc > 0 {
			addEdge(from, CPUNode, "runnable", "", ts.runnAcc)
		}
		if ts.lockAcc > 0 && ts.holder >= 0 {
			addEdge(from, ThreadNode(ts.holder), "lock", ts.obj, ts.lockAcc)
		}
		if ts.ioAcc > 0 {
			addEdge(from, IONode(ts.obj), "io", ts.obj, ts.ioAcc)
		}
	}
	g := &Graph{}
	ids := make([]int, 0, len(threads))
	for id := range threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t := threads[id].times
		t.Thread = id
		t.Wall = t.Running + t.LockWait + t.IOWait + t.RunnableWait
		g.Threads = append(g.Threads, t)
	}
	for _, e := range edges {
		g.Edges = append(g.Edges, *e)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		a, b := g.Edges[i], g.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Obj < b.Obj
	})
	g.Knots = g.findKnots(ids)
	return g
}

// findKnots runs SCC/knot detection over the thread-to-thread lock
// subgraph: an SCC with internal edges and none leaving it is a group
// of threads waiting only on each other.
func (g *Graph) findKnots(ids []int) [][]int {
	if len(ids) == 0 {
		return nil
	}
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	lg := graphalg.NewGraph(len(ids))
	for _, e := range g.Edges {
		if e.Kind != "lock" {
			continue
		}
		var from, to int
		if _, err := fmt.Sscanf(e.From, "thread:%d", &from); err != nil {
			continue
		}
		if _, err := fmt.Sscanf(e.To, "thread:%d", &to); err != nil {
			continue
		}
		fi, fok := idx[from]
		toi, tok := idx[to]
		if !fok || !tok {
			continue
		}
		lg.AddEdge(fi, toi, e.Wait)
	}
	var knots [][]int
	for _, comp := range lg.Knots() {
		members := make([]int, 0, len(comp))
		for _, v := range comp {
			members = append(members, ids[v])
		}
		knots = append(knots, members)
	}
	return knots
}

// Partition aggregates the per-thread times into the exact wall-time
// split: OffCPU == LockWait + IOWait + RunnableWait and Wall == OnCPU +
// OffCPU, built from the same float64 additions so equality is exact.
func (g *Graph) Partition() core.TimePartition {
	var p core.TimePartition
	for _, t := range g.Threads {
		p.OnCPU += t.Running
		p.LockWait += t.LockWait
		p.IOWait += t.IOWait
		p.RunnableWait += t.RunnableWait
	}
	p.OffCPU = p.LockWait + p.IOWait + p.RunnableWait
	p.Wall = p.OnCPU + p.OffCPU
	p.Threads = len(g.Threads)
	return p
}

// Verdicts ranks the off-CPU wait causes: contended locks, saturated
// devices, run-queue pressure, and multi-lock knots (false
// serialization — no single lock explains the group's mutual waiting).
// Sorted descending by Wait, then by kind and object for determinism.
func (g *Graph) Verdicts() []core.WaitVerdict {
	p := g.Partition()
	share := func(w float64) float64 {
		if p.Wall <= 0 {
			return 0
		}
		return w / p.Wall
	}
	type agg struct {
		wait    float64
		waiters map[string]bool
	}
	locks := make(map[string]*agg)
	ios := make(map[string]*agg)
	var runnable agg
	runnable.waiters = make(map[string]bool)
	bump := func(m map[string]*agg, obj, from string, w float64) {
		a, ok := m[obj]
		if !ok {
			a = &agg{waiters: make(map[string]bool)}
			m[obj] = a
		}
		a.wait += w
		a.waiters[from] = true
	}
	for _, e := range g.Edges {
		switch e.Kind {
		case "lock":
			bump(locks, e.Obj, e.From, e.Wait)
		case "io":
			bump(ios, e.Obj, e.From, e.Wait)
		case "runnable":
			runnable.wait += e.Wait
			runnable.waiters[e.From] = true
		}
	}
	var out []core.WaitVerdict
	for obj, a := range locks {
		out = append(out, core.WaitVerdict{
			Kind: "lock", Object: obj, Wait: a.wait,
			Share: share(a.wait), Waiters: len(a.waiters),
		})
	}
	for obj, a := range ios {
		out = append(out, core.WaitVerdict{
			Kind: "io", Object: obj, Wait: a.wait,
			Share: share(a.wait), Waiters: len(a.waiters),
		})
	}
	if runnable.wait > 0 {
		out = append(out, core.WaitVerdict{
			Kind: "runnable", Wait: runnable.wait,
			Share: share(runnable.wait), Waiters: len(runnable.waiters),
		})
	}
	// Knots spanning more than one lock object: false serialization.
	for _, knot := range g.Knots {
		member := make(map[string]bool, len(knot))
		for _, id := range knot {
			member[ThreadNode(id)] = true
		}
		objs := make(map[string]bool)
		var wait float64
		waiters := make(map[string]bool)
		for _, e := range g.Edges {
			if e.Kind == "lock" && member[e.From] && member[e.To] {
				objs[e.Obj] = true
				wait += e.Wait
				waiters[e.From] = true
			}
		}
		if len(objs) < 2 {
			continue // a single hot lock already names this group
		}
		names := make([]string, len(knot))
		for i, id := range knot {
			names[i] = fmt.Sprintf("%d", id)
		}
		out = append(out, core.WaitVerdict{
			Kind:    "knot",
			Object:  "threads " + strings.Join(names, ","),
			Wait:    wait,
			Share:   share(wait),
			Waiters: len(waiters),
			Threads: append([]int(nil), knot...),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Wait != b.Wait {
			return a.Wait > b.Wait
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Object < b.Object
	})
	return out
}
