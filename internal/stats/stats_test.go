package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeightedMean(t *testing.T) {
	got, err := WeightedMean([]Weighted{{Value: 2, Weight: 1}, {Value: 4, Weight: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("WeightedMean = %g, want %g", got, want)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	if _, err := WeightedMean(nil); err != ErrNoData {
		t.Errorf("empty: err = %v, want ErrNoData", err)
	}
	if _, err := WeightedMean([]Weighted{{Value: 1, Weight: 0}}); err != ErrNoData {
		t.Errorf("zero weight: err = %v, want ErrNoData", err)
	}
	if _, err := WeightedMean([]Weighted{{Value: 1, Weight: -1}}); err == nil {
		t.Error("negative weight: expected error")
	}
}

// TestWeightedMeanBounds is the paper-relevant TWA property: the
// time-weighted average lies between the min and max values.
func TestWeightedMeanBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var ws []Weighted
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i+1 < len(raw); i += 2 {
			v := float64(raw[i])
			w := float64(raw[i+1]%10) + 1
			ws = append(ws, Weighted{Value: v, Weight: w})
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		m, err := WeightedMean(ws)
		if err != nil {
			return false
		}
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndMinMax(t *testing.T) {
	if _, err := Mean(nil); err != ErrNoData {
		t.Error("Mean(nil) should return ErrNoData")
	}
	m, _ := Mean([]float64{1, 2, 3})
	if m != 2 {
		t.Errorf("Mean = %g, want 2", m)
	}
	lo, hi, err := MinMax([]float64{3, -1, 7})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %g,%g,%v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err != ErrNoData {
		t.Error("MinMax(nil) should return ErrNoData")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("expected error for q > 1")
	}
	if _, err := Quantile(nil, 0.5); err != ErrNoData {
		t.Error("expected ErrNoData")
	}
	one, _ := Quantile([]float64{5}, 0.9)
	if one != 5 {
		t.Errorf("single-element quantile = %g, want 5", one)
	}
	// Input must not be reordered.
	if xs[0] != 4 || xs[3] != 2 {
		t.Error("Quantile modified its input")
	}
}

func TestStdDev(t *testing.T) {
	got, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", got)
	}
}

func TestRankAscending(t *testing.T) {
	idx := RankAscending([]float64{3, 1, 2})
	want := []int{1, 2, 0}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("RankAscending = %v, want %v", idx, want)
		}
	}
	// Stability on ties.
	idx = RankAscending([]float64{1, 1, 0})
	if idx[0] != 2 || idx[1] != 0 || idx[2] != 1 {
		t.Errorf("tie order not stable: %v", idx)
	}
}

func TestSpearmanRho(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	rho, err := SpearmanRho(a, b)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Errorf("perfect correlation: rho=%g err=%v", rho, err)
	}
	rev := []float64{5, 4, 3, 2, 1}
	rho, err = SpearmanRho(a, rev)
	if err != nil || math.Abs(rho+1) > 1e-12 {
		t.Errorf("perfect anticorrelation: rho=%g err=%v", rho, err)
	}
	if _, err := SpearmanRho(a, a[:3]); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := SpearmanRho([]float64{1}, []float64{1}); err != ErrNoData {
		t.Error("expected ErrNoData for single element")
	}
	if _, err := SpearmanRho([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("expected zero-variance error")
	}
}

func TestSpearmanRhoRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		rho, err := SpearmanRho(a, b)
		if err != nil {
			continue
		}
		if rho < -1-1e-9 || rho > 1+1e-9 {
			t.Fatalf("rho out of range: %g", rho)
		}
	}
}

func TestOverlapAtK(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1.1, 2.1, 9, 10}
	got, err := OverlapAtK(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("OverlapAtK = %g, want 1 (both pick indices 0,1)", got)
	}
	c := []float64{10, 9, 1, 2}
	got, _ = OverlapAtK(a, c, 2)
	if got != 0 {
		t.Errorf("disjoint top-2 overlap = %g, want 0", got)
	}
	if _, err := OverlapAtK(a, b, 0); err == nil {
		t.Error("expected k range error")
	}
	if _, err := OverlapAtK(a, b, 5); err == nil {
		t.Error("expected k range error")
	}
	if _, err := OverlapAtK(a, b[:2], 1); err == nil {
		t.Error("expected length mismatch error")
	}
}
