// Package stats holds small statistical helpers shared across SPIRE:
// time-weighted averages (paper Eq. 1), summary statistics, and ranking
// utilities.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by aggregations over empty inputs.
var ErrNoData = errors.New("stats: no data")

// Weighted is a value with an associated non-negative weight. For SPIRE
// the weight is a sample's period length T.
type Weighted struct {
	Value  float64
	Weight float64
}

// WeightedMean computes sum(w_i * v_i) / sum(w_i) — SPIRE's time-weighted
// average when weights are period lengths. Entries with zero weight
// contribute nothing; if the total weight is zero, ErrNoData is returned.
func WeightedMean(ws []Weighted) (float64, error) {
	var num, den float64
	for _, w := range ws {
		if w.Weight < 0 || math.IsNaN(w.Weight) {
			return 0, errors.New("stats: negative or NaN weight")
		}
		num += w.Weight * w.Value
		den += w.Weight
	}
	if den == 0 {
		return 0, ErrNoData
	}
	return num / den, nil
}

// Mean returns the arithmetic mean, or ErrNoData for empty input.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// MinMax returns the extrema of xs, or ErrNoData for empty input.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrNoData
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0], nil
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo], nil
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// RankAscending returns the indices of xs sorted by ascending value
// (ties keep the lower index first). xs is not modified.
func RankAscending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

// SpearmanRho computes Spearman's rank correlation between two equal-length
// series; used by ablation benches to compare metric rankings. Returns
// ErrNoData for fewer than 2 elements.
func SpearmanRho(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(a) < 2 {
		return 0, ErrNoData
	}
	ra := ranks(a)
	rb := ranks(b)
	ma, _ := Mean(ra)
	mb, _ := Mean(rb)
	var num, da, db float64
	for i := range ra {
		x := ra[i] - ma
		y := rb[i] - mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0, errors.New("stats: zero rank variance")
	}
	return num / math.Sqrt(da*db), nil
}

// ranks assigns average ranks (1-based) with tie averaging.
func ranks(xs []float64) []float64 {
	idx := RankAscending(xs)
	r := make([]float64, len(xs))
	i := 0
	for i < len(idx) {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// OverlapAtK returns |topK(a) ∩ topK(b)| / k where topK takes the k
// lowest-valued indices of each series. SPIRE's analysis ranks metrics by
// ascending estimation, so this measures agreement of bottleneck pools.
func OverlapAtK(a, b []float64, k int) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: length mismatch")
	}
	if k <= 0 || k > len(a) {
		return 0, errors.New("stats: k out of range")
	}
	ia := RankAscending(a)[:k]
	ib := RankAscending(b)[:k]
	set := make(map[int]bool, k)
	for _, i := range ia {
		set[i] = true
	}
	n := 0
	for _, i := range ib {
		if set[i] {
			n++
		}
	}
	return float64(n) / float64(k), nil
}
