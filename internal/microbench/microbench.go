// Package microbench generates targeted training kernels, the paper's
// preferred way to train a SPIRE model (§III-A): "Ideally, this is done
// using optimized workloads specifically designed to exercise each metric
// (e.g., microbenchmarks)". Each generator sweeps one microarchitectural
// behaviour across a wide range of operational intensities while keeping
// everything else as fast as possible, so the per-metric rooflines see
// high-throughput samples across their whole input range.
//
// The suite is organized by the knob being swept, not by event: one sweep
// typically feeds several related metrics (e.g. the miss-rate sweep trains
// every cache-level event at once).
package microbench

import (
	"fmt"
	"math/rand"

	"spire/internal/isa"
)

// Sweep is one family of microbenchmarks: a generator instantiated at
// several knob positions.
type Sweep struct {
	// Name identifies the sweep, e.g. "mispredict-rate".
	Name string
	// Points are the knob positions; each yields one program.
	Points []Point
}

// Point is one microbenchmark instance.
type Point struct {
	// Label describes the knob position, e.g. "1/64".
	Label string
	// Build constructs the program.
	Build func(insts int) isa.Program
}

// Programs instantiates every point of every sweep with the given dynamic
// instruction budget per program.
func Programs(insts int) []isa.Program {
	var out []isa.Program
	for _, sw := range Suite() {
		for _, pt := range sw.Points {
			out = append(out, pt.Build(insts))
		}
	}
	return out
}

// Suite returns the standard sweep collection.
func Suite() []Sweep {
	return []Sweep{
		mispredictSweep(),
		missRateSweep(),
		loadDensitySweep(),
		stallSweep(),
		dsbCoverageSweep(),
		microcodeSweep(),
		dividerSweep(),
		lockSweep(),
		bandwidthSweep(),
		peakSweep(),
	}
}

// --- generator plumbing --------------------------------------------------

// gen is a deterministic program built from a per-index instruction
// function.
type gen struct {
	name  string
	n     int
	pos   int
	rng   *rand.Rand
	make_ func(g *gen, i int) isa.Inst
}

func (g *gen) Name() string { return g.name }
func (g *gen) Reset(seed int64) {
	g.pos = 0
	g.rng = rand.New(rand.NewSource(seed ^ int64(len(g.name))))
}
func (g *gen) Next() (isa.Inst, bool) {
	if g.rng == nil {
		g.Reset(1)
	}
	if g.pos >= g.n {
		return isa.Inst{}, false
	}
	i := g.pos
	g.pos++
	return g.make_(g, i), true
}

func newGen(name string, n int, f func(g *gen, i int) isa.Inst) isa.Program {
	return &gen{name: name, n: n, make_: f}
}

// alu returns an independent single-cycle op in a tiny footprint.
func alu(i int) isa.Inst {
	return isa.Inst{PC: 0x100000 + uint64(i%16)*4, Op: isa.OpIntALU, Dst: isa.Reg(1 + i%8)}
}

// --- sweeps ----------------------------------------------------------------

// mispredictSweep varies instructions-per-mispredict: branches with
// random outcomes every N instructions, filler ALU between. Trains BP.*
// and BR across 5 decades of intensity.
func mispredictSweep() Sweep {
	sw := Sweep{Name: "mispredict-rate"}
	for _, every := range []int{4, 16, 64, 256, 1024, 8192} {
		every := every
		sw.Points = append(sw.Points, Point{
			Label: fmt.Sprintf("1/%d", every),
			Build: func(insts int) isa.Program {
				return newGen(fmt.Sprintf("ub-misp-%d", every), insts, func(g *gen, i int) isa.Inst {
					if i%every == every-1 {
						return isa.Inst{
							PC: 0x110000, Op: isa.OpBranch,
							Taken:  g.rng.Intn(2) == 0,
							Target: 0x110100,
						}
					}
					return alu(i)
				})
			},
		})
	}
	return sw
}

// missRateSweep varies the working set from L1-resident to DRAM-sized
// with streaming loads every 4th instruction. Trains the cache-level and
// memory-activity events.
func missRateSweep() Sweep {
	sw := Sweep{Name: "miss-rate"}
	for _, ws := range []uint64{16 << 10, 128 << 10, 512 << 10, 4 << 20, 64 << 20} {
		ws := ws
		sw.Points = append(sw.Points, Point{
			Label: fmt.Sprintf("%dKiB", ws>>10),
			Build: func(insts int) isa.Program {
				return newGen(fmt.Sprintf("ub-miss-%d", ws), insts, func(g *gen, i int) isa.Inst {
					if i%4 == 0 {
						addr := 0x20000000 + (uint64(i/4)*64)%ws
						return isa.Inst{PC: 0x120000, Op: isa.OpLoad, Dst: 1, Size: 8, Addr: addr}
					}
					return alu(i)
				})
			},
		})
	}
	return sw
}

// loadDensitySweep varies how often an L1-resident load appears in the
// stream, sweeping the intensity of the hit/activity metrics (LD1H, M)
// at high throughput — the fast-and-memory-touching regime applications
// live in.
func loadDensitySweep() Sweep {
	sw := Sweep{Name: "load-density"}
	for _, every := range []int{1, 2, 4, 8, 16} {
		every := every
		sw.Points = append(sw.Points, Point{
			Label: fmt.Sprintf("load 1/%d", every),
			Build: func(insts int) isa.Program {
				return newGen(fmt.Sprintf("ub-ldden-%d", every), insts, func(g *gen, i int) isa.Inst {
					if i%every == 0 {
						addr := 0x28000000 + (uint64(i)*8)%(8<<10)
						return isa.Inst{PC: 0x125000, Op: isa.OpLoad, Dst: isa.Reg(1 + i%4), Size: 8, Addr: addr}
					}
					return alu(i)
				})
			},
		})
	}
	return sw
}

// stallSweep varies dependency-chain density: a fraction of ops join a
// serial multiply chain. Trains the stall-cycle and port-utilization
// counters over a wide intensity range.
func stallSweep() Sweep {
	sw := Sweep{Name: "stall-density"}
	for _, every := range []int{1, 2, 4, 16, 64} {
		every := every
		sw.Points = append(sw.Points, Point{
			Label: fmt.Sprintf("chain 1/%d", every),
			Build: func(insts int) isa.Program {
				return newGen(fmt.Sprintf("ub-stall-%d", every), insts, func(g *gen, i int) isa.Inst {
					if i%every == 0 {
						return isa.Inst{PC: 0x130000 + uint64(i%16)*4, Op: isa.OpIntMul, Dst: 9, Src1: 9}
					}
					return alu(i)
				})
			},
		})
	}
	return sw
}

// dsbCoverageSweep varies the code footprint from DSB-resident to several
// times the uop cache. Trains DB.*, MI.*, IC and the delivery counters.
func dsbCoverageSweep() Sweep {
	sw := Sweep{Name: "dsb-coverage"}
	for _, body := range []int{64, 1024, 4096, 12288, 49152} {
		body := body
		sw.Points = append(sw.Points, Point{
			Label: fmt.Sprintf("%d insts", body),
			Build: func(insts int) isa.Program {
				return newGen(fmt.Sprintf("ub-dsb-%d", body), insts, func(g *gen, i int) isa.Inst {
					return isa.Inst{
						PC:  0x200000 + uint64(i%body)*4,
						Op:  isa.OpIntALU,
						Dst: isa.Reg(1 + i%8),
					}
				})
			},
		})
	}
	return sw
}

// microcodeSweep varies microcoded-instruction frequency. Trains MS.*.
func microcodeSweep() Sweep {
	sw := Sweep{Name: "microcode-rate"}
	for _, every := range []int{2, 8, 32, 256} {
		every := every
		sw.Points = append(sw.Points, Point{
			Label: fmt.Sprintf("1/%d", every),
			Build: func(insts int) isa.Program {
				return newGen(fmt.Sprintf("ub-ms-%d", every), insts, func(g *gen, i int) isa.Inst {
					if i%every == 0 {
						return isa.Inst{PC: 0x140000, Op: isa.OpMicrocoded, Dst: 2, UopCount: 8}
					}
					return alu(i)
				})
			},
		})
	}
	return sw
}

// dividerSweep varies divide frequency. Trains DIV and the unpipelined
// port behaviour.
func dividerSweep() Sweep {
	sw := Sweep{Name: "divider-rate"}
	for _, every := range []int{2, 8, 32, 256} {
		every := every
		sw.Points = append(sw.Points, Point{
			Label: fmt.Sprintf("1/%d", every),
			Build: func(insts int) isa.Program {
				return newGen(fmt.Sprintf("ub-div-%d", every), insts, func(g *gen, i int) isa.Inst {
					if i%every == 0 {
						return isa.Inst{PC: 0x150000, Op: isa.OpFPDiv, Dst: 3, Src1: 3}
					}
					return alu(i)
				})
			},
		})
	}
	return sw
}

// lockSweep varies atomic-operation frequency. Trains LK.
func lockSweep() Sweep {
	sw := Sweep{Name: "lock-rate"}
	for _, every := range []int{4, 32, 256} {
		every := every
		sw.Points = append(sw.Points, Point{
			Label: fmt.Sprintf("1/%d", every),
			Build: func(insts int) isa.Program {
				return newGen(fmt.Sprintf("ub-lock-%d", every), insts, func(g *gen, i int) isa.Inst {
					if i%every == 0 {
						return isa.Inst{PC: 0x160000, Op: isa.OpLoadLocked, Dst: 4, Size: 8, Addr: 0x30000000}
					}
					return alu(i)
				})
			},
		})
	}
	return sw
}

// bandwidthSweep saturates DRAM with independent streaming loads at
// varying density. Trains DRQ, L3 and the bandwidth-bound regime.
func bandwidthSweep() Sweep {
	sw := Sweep{Name: "dram-bandwidth"}
	for _, every := range []int{1, 2, 8} {
		every := every
		sw.Points = append(sw.Points, Point{
			Label: fmt.Sprintf("load 1/%d", every),
			Build: func(insts int) isa.Program {
				return newGen(fmt.Sprintf("ub-bw-%d", every), insts, func(g *gen, i int) isa.Inst {
					if i%every == 0 {
						addr := 0x40000000 + uint64(i)*64%(256<<20)
						return isa.Inst{PC: 0x170000, Op: isa.OpLoad, Dst: isa.Reg(1 + i%4), Size: 8, Addr: addr}
					}
					return alu(i)
				})
			},
		})
	}
	return sw
}

// peakSweep is pure independent ALU work: it anchors every roofline's
// peak-throughput samples (the machine's best case).
func peakSweep() Sweep {
	return Sweep{
		Name: "peak",
		Points: []Point{{
			Label: "alu",
			Build: func(insts int) isa.Program {
				return newGen("ub-peak", insts, func(g *gen, i int) isa.Inst {
					return alu(i)
				})
			},
		}},
	}
}
