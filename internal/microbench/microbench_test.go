package microbench

import (
	"testing"

	"spire/internal/isa"
	"spire/internal/pmu"
	"spire/internal/sim"
	"spire/internal/uarch"
)

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) < 8 {
		t.Fatalf("suite has %d sweeps, want >= 8", len(suite))
	}
	names := map[string]bool{}
	for _, sw := range suite {
		if sw.Name == "" || len(sw.Points) == 0 {
			t.Errorf("sweep %+v malformed", sw.Name)
		}
		if names[sw.Name] {
			t.Errorf("duplicate sweep name %s", sw.Name)
		}
		names[sw.Name] = true
		for _, pt := range sw.Points {
			if pt.Label == "" || pt.Build == nil {
				t.Errorf("%s: malformed point %q", sw.Name, pt.Label)
			}
		}
	}
}

func TestProgramsValidateAndTerminate(t *testing.T) {
	progs := Programs(3000)
	if len(progs) < 30 {
		t.Fatalf("only %d programs", len(progs))
	}
	seen := map[string]bool{}
	for _, p := range progs {
		if seen[p.Name()] {
			t.Errorf("duplicate program name %s", p.Name())
		}
		seen[p.Name()] = true
		if err := sim.Validate(p, 7, 10_000); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
		p.Reset(7)
		n := 0
		for {
			if _, ok := p.Next(); !ok {
				break
			}
			n++
			if n > 10_000 {
				t.Fatalf("%s did not terminate", p.Name())
			}
		}
		if n != 3000 {
			t.Errorf("%s emitted %d instructions, want 3000", p.Name(), n)
		}
	}
}

func TestProgramDeterminism(t *testing.T) {
	build := Suite()[0].Points[0].Build
	a, b := build(500), build(500)
	a.Reset(3)
	b.Reset(3)
	for {
		ia, oka := a.Next()
		ib, okb := b.Next()
		if oka != okb {
			t.Fatal("lengths differ")
		}
		if !oka {
			break
		}
		if ia != ib {
			t.Fatalf("instructions differ: %+v vs %+v", ia, ib)
		}
	}
}

// TestSweepsExerciseTargetEvents runs one representative point per sweep
// and checks the intended counter actually fires.
func TestSweepsExerciseTargetEvents(t *testing.T) {
	targets := map[string]pmu.EventID{
		"mispredict-rate": pmu.EvBrMispRetired,
		"miss-rate":       pmu.EvLoadL1Miss,
		"load-density":    pmu.EvLoadL1Hit,
		"stall-density":   pmu.EvStallsTotal,
		"dsb-coverage":    pmu.EvMITEUops,
		"microcode-rate":  pmu.EvMSUops,
		"divider-rate":    pmu.EvDividerActive,
		"lock-rate":       pmu.EvLockLoads,
		"dram-bandwidth":  pmu.EvL3Miss,
		"peak":            pmu.EvDSBUops,
	}
	for _, sw := range Suite() {
		ev, ok := targets[sw.Name]
		if !ok {
			t.Errorf("no target event registered for sweep %s", sw.Name)
			continue
		}
		// The most aggressive point is first by construction.
		prog := sw.Points[0].Build(20_000)
		s, err := sim.New(uarch.Default(), prog, 5)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(10_000_000)
		if !res.Drained {
			t.Fatalf("%s did not drain", prog.Name())
		}
		if res.Counts.Read(ev) == 0 {
			t.Errorf("%s: target event %s never fired", sw.Name, pmu.Describe(ev).Name)
		}
	}
}

// TestMispredictSweepSpansIntensity: the sweep's whole point is to spread
// the metric's operational intensity over decades.
func TestMispredictSweepSpansIntensity(t *testing.T) {
	sw := Suite()[0] // mispredict-rate
	rate := func(p isa.Program) float64 {
		s, err := sim.New(uarch.Default(), p, 5)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run(10_000_000)
		m := res.Counts.Read(pmu.EvBrMispRetired)
		if m == 0 {
			return 0
		}
		return float64(res.Instructions) / float64(m)
	}
	lo := rate(sw.Points[0].Build(20_000))
	hi := rate(sw.Points[len(sw.Points)-1].Build(200_000))
	if lo <= 0 || hi <= 0 {
		t.Fatalf("sweep endpoints did not mispredict (lo=%g hi=%g)", lo, hi)
	}
	if hi < 20*lo {
		t.Errorf("intensity span too narrow: %g .. %g", lo, hi)
	}
}
