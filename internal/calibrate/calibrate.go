// Package calibrate discovers a machine's roofline parameters by running
// probe kernels and reading only elapsed time and work — the empirical
// machine characterization that classic roofline practice performs with
// STREAM- and pointer-chase-style microbenchmarks. Nothing here inspects
// the simulator's configuration: the discovered numbers can be compared
// against the configured ones to validate both the probes and the model
// (and on a real machine, the same probes would calibrate a real
// roofline).
package calibrate

import (
	"fmt"
	"math"
	"sort"

	"spire/internal/isa"
	"spire/internal/sim"
	"spire/internal/uarch"
)

// Machine is the discovered characterization.
type Machine struct {
	// PeakIPC is the best sustained instructions-per-cycle observed on
	// independent single-cycle work.
	PeakIPC float64
	// LoadUseLatency maps working-set sizes to measured dependent-load
	// latency (cycles), ascending by size.
	LoadUseLatency []LatencyPoint
	// CacheSizes are the detected capacity knees (bytes), smallest
	// first — typically L1D, L2, L3.
	CacheSizes []uint64
	// DRAMLatency is the dependent-load latency at the largest probed
	// working set.
	DRAMLatency float64
	// DRAMBandwidth is the best sustained single-stream bandwidth in
	// bytes per cycle. Without a prefetcher this is typically the
	// MSHR-limited wall (outstanding misses x line size / latency), not
	// the channel rate — the same gap real single-core STREAM runs show.
	DRAMBandwidth float64
	// BranchMispredictPenalty is the measured per-mispredict cost in
	// cycles.
	BranchMispredictPenalty float64
}

// LatencyPoint is one working-set size's measured load-use latency.
type LatencyPoint struct {
	WorkingSet uint64
	Cycles     float64
}

// Options bounds probe effort.
type Options struct {
	// Insts is the dynamic instruction budget per probe (default 60k).
	Insts int
	// MaxWorkingSet caps the latency sweep (default 64 MiB).
	MaxWorkingSet uint64
	// Seed drives probe randomness.
	Seed int64
}

func (o *Options) setDefaults() {
	if o.Insts <= 0 {
		o.Insts = 60_000
	}
	if o.MaxWorkingSet == 0 {
		o.MaxWorkingSet = 64 << 20
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
}

// Discover characterizes the core.
func Discover(cfg *uarch.Config, opts Options) (*Machine, error) {
	opts.setDefaults()
	m := &Machine{}

	run := func(p isa.Program, maxCycles uint64) (sim.Result, error) {
		s, err := sim.New(cfg, p, opts.Seed)
		if err != nil {
			return sim.Result{}, err
		}
		res := s.Run(maxCycles)
		if !res.Drained {
			return res, fmt.Errorf("calibrate: probe %s did not finish in %d cycles", p.Name(), maxCycles)
		}
		return res, nil
	}

	// Peak IPC: independent ALU work in a tiny loop.
	res, err := run(&aluProbe{n: opts.Insts}, 1<<30)
	if err != nil {
		return nil, err
	}
	m.PeakIPC = res.IPC

	// Load-use latency sweep: a dependent load chain over a random
	// permutation footprint; latency = cycles per load.
	sizes := []uint64{8 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
	for _, ws := range sizes {
		if ws > opts.MaxWorkingSet {
			break
		}
		loads := opts.Insts / 8
		p := &chaseProbe{loads: loads, ws: ws}
		res, err := run(p, 1<<32)
		if err != nil {
			return nil, err
		}
		lat := float64(res.Cycles) / float64(loads)
		m.LoadUseLatency = append(m.LoadUseLatency, LatencyPoint{WorkingSet: ws, Cycles: lat})
	}
	if n := len(m.LoadUseLatency); n > 0 {
		m.DRAMLatency = m.LoadUseLatency[n-1].Cycles
	}
	m.CacheSizes = detectKnees(m.LoadUseLatency)

	// Streaming bandwidth: dense independent loads over a DRAM-sized
	// buffer; bandwidth = touched bytes / cycles (one line per load).
	{
		loads := opts.Insts / 2
		p := &streamProbe{loads: loads, ws: 256 << 20}
		res, err := run(p, 1<<32)
		if err != nil {
			return nil, err
		}
		m.DRAMBandwidth = float64(loads) * 64 / float64(res.Cycles)
	}

	// Branch mispredict penalty: difference between a random-branch loop
	// and a never-taken-branch loop, divided by mispredict count.
	{
		n := opts.Insts
		rnd, err := run(&branchProbe{n: n, random: true}, 1<<31)
		if err != nil {
			return nil, err
		}
		pred, err := run(&branchProbe{n: n, random: false}, 1<<31)
		if err != nil {
			return nil, err
		}
		extra := float64(rnd.Cycles) - float64(pred.Cycles)
		// Roughly half the random branches mispredict.
		misp := float64(n) / 2 * 0.5
		if misp > 0 && extra > 0 {
			m.BranchMispredictPenalty = extra / misp
		}
	}
	return m, nil
}

// detectKnees finds working-set sizes where latency jumps by more than
// 60% over the previous point — the classic capacity-knee detector. It
// returns the last size *before* each jump. Note that on cores with a
// small TLB one knee is the TLB reach, not a cache capacity; both are
// real capacity effects a roofline practitioner needs to know about.
func detectKnees(pts []LatencyPoint) []uint64 {
	var knees []uint64
	for i := 1; i < len(pts); i++ {
		if pts[i].Cycles > pts[i-1].Cycles*1.6 {
			knees = append(knees, pts[i-1].WorkingSet)
		}
	}
	sort.Slice(knees, func(i, j int) bool { return knees[i] < knees[j] })
	return knees
}

// --- probes -----------------------------------------------------------

type aluProbe struct{ n, pos int }

func (p *aluProbe) Name() string     { return "cal-alu" }
func (p *aluProbe) Reset(seed int64) { p.pos = 0 }
func (p *aluProbe) Next() (isa.Inst, bool) {
	if p.pos >= p.n {
		return isa.Inst{}, false
	}
	i := p.pos
	p.pos++
	return isa.Inst{PC: 0x1000 + uint64(i%16)*4, Op: isa.OpIntALU, Dst: isa.Reg(1 + i%8)}, true
}

// chaseProbe issues serially dependent loads over a pseudo-random walk of
// the working set (each load's address register feeds the next).
type chaseProbe struct {
	loads int
	ws    uint64
	pos   int
	state uint64
}

func (p *chaseProbe) Name() string     { return fmt.Sprintf("cal-chase-%d", p.ws) }
func (p *chaseProbe) Reset(seed int64) { p.pos = 0; p.state = uint64(seed)*2654435761 + 1 }
func (p *chaseProbe) Next() (isa.Inst, bool) {
	if p.pos >= p.loads {
		return isa.Inst{}, false
	}
	p.pos++
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	addr := 0x10000000 + (p.state%(p.ws/64))*64
	return isa.Inst{PC: 0x2000, Op: isa.OpLoad, Dst: 9, Src1: 9, Size: 8, Addr: addr}, true
}

// streamProbe issues independent sequential line-stride loads.
type streamProbe struct {
	loads int
	ws    uint64
	pos   int
}

func (p *streamProbe) Name() string     { return "cal-stream" }
func (p *streamProbe) Reset(seed int64) { p.pos = 0 }
func (p *streamProbe) Next() (isa.Inst, bool) {
	if p.pos >= p.loads {
		return isa.Inst{}, false
	}
	i := p.pos
	p.pos++
	addr := 0x20000000 + (uint64(i)*64)%p.ws
	return isa.Inst{PC: 0x3000, Op: isa.OpLoad, Dst: isa.Reg(1 + i%4), Size: 8, Addr: addr}, true
}

// branchProbe alternates ALU work with a branch whose outcome is either
// random or constant.
type branchProbe struct {
	n      int
	random bool
	pos    int
	state  uint64
}

func (p *branchProbe) Name() string {
	if p.random {
		return "cal-br-random"
	}
	return "cal-br-predictable"
}
func (p *branchProbe) Reset(seed int64) { p.pos = 0; p.state = uint64(seed) | 1 }
func (p *branchProbe) Next() (isa.Inst, bool) {
	if p.pos >= p.n {
		return isa.Inst{}, false
	}
	i := p.pos
	p.pos++
	if i%2 == 1 {
		taken := false
		if p.random {
			p.state ^= p.state << 13
			p.state ^= p.state >> 7
			p.state ^= p.state << 17
			taken = p.state&1 == 1
		}
		return isa.Inst{PC: 0x4000, Op: isa.OpBranch, Taken: taken, Target: 0x4100}, true
	}
	return isa.Inst{PC: 0x4004, Op: isa.OpIntALU, Dst: 2}, true
}

// Report renders the characterization alongside the configured truth for
// validation.
func (m *Machine) Report(cfg *uarch.Config) string {
	out := fmt.Sprintf("peak IPC:        measured %.2f (issue width %d)\n", m.PeakIPC, cfg.IssueWidth)
	out += "load-use latency by working set:\n"
	for _, p := range m.LoadUseLatency {
		out += fmt.Sprintf("  %8d KiB: %6.1f cycles\n", p.WorkingSet>>10, p.Cycles)
	}
	out += fmt.Sprintf("capacity knees:  %v (configured L1D %d, L2 %d, L3 %d)\n",
		m.CacheSizes, cfg.Mem.L1D.SizeBytes, cfg.Mem.L2.SizeBytes, cfg.Mem.L3.SizeBytes)
	out += fmt.Sprintf("DRAM latency:    measured %.0f cycles (configured %d + cache levels)\n",
		m.DRAMLatency, cfg.Mem.DRAM.LatencyCycles)
	out += fmt.Sprintf("DRAM bandwidth:  measured %.1f B/cy sustained single-stream (channel %.1f; MSHR wall ~%.1f)\n",
		m.DRAMBandwidth, cfg.Mem.DRAM.BytesPerCycle, float64(cfg.MSHRs)*64/math.Max(m.DRAMLatency, 1))
	out += fmt.Sprintf("mispredict cost: measured %.1f cycles (configured %d)\n",
		m.BranchMispredictPenalty, cfg.BranchMispredictPenalty)
	return out
}

// Validate does a coarse consistency check of the discovery against a
// configuration, returning the first gross mismatch. Tolerances are wide:
// probes measure effective behaviour, not datasheet numbers.
func (m *Machine) Validate(cfg *uarch.Config) error {
	if m.PeakIPC < float64(cfg.IssueWidth)*0.5 || m.PeakIPC > float64(cfg.IssueWidth)+0.01 {
		return fmt.Errorf("calibrate: peak IPC %.2f inconsistent with issue width %d", m.PeakIPC, cfg.IssueWidth)
	}
	if m.DRAMLatency < float64(cfg.Mem.DRAM.LatencyCycles) {
		return fmt.Errorf("calibrate: DRAM latency %.0f below configured %d", m.DRAMLatency, cfg.Mem.DRAM.LatencyCycles)
	}
	if m.DRAMBandwidth > cfg.Mem.DRAM.BytesPerCycle*1.05 {
		return fmt.Errorf("calibrate: bandwidth %.1f exceeds configured %.1f", m.DRAMBandwidth, cfg.Mem.DRAM.BytesPerCycle)
	}
	if len(m.LoadUseLatency) >= 2 {
		first := m.LoadUseLatency[0].Cycles
		last := m.LoadUseLatency[len(m.LoadUseLatency)-1].Cycles
		if !(last > first) || math.IsNaN(first) {
			return fmt.Errorf("calibrate: latency sweep not increasing (%.1f .. %.1f)", first, last)
		}
	}
	return nil
}
