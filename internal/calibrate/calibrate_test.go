package calibrate

import (
	"strings"
	"testing"

	"spire/internal/uarch"
)

func discover(t *testing.T, cfg *uarch.Config) *Machine {
	t.Helper()
	m, err := Discover(cfg, Options{Insts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDiscoverDefaultCore(t *testing.T) {
	cfg := uarch.Default()
	m := discover(t, cfg)
	if err := m.Validate(cfg); err != nil {
		t.Fatalf("%v\n%s", err, m.Report(cfg))
	}
	// Peak IPC approaches the 4-wide issue limit.
	if m.PeakIPC < 3.2 {
		t.Errorf("peak IPC = %.2f, want near 4", m.PeakIPC)
	}
	// The latency sweep spans L1-hit latency up to DRAM latency.
	first := m.LoadUseLatency[0].Cycles
	if first > 10 {
		t.Errorf("L1-resident latency = %.1f cycles, want small", first)
	}
	if m.DRAMLatency < 150 {
		t.Errorf("DRAM latency = %.1f cycles, want > 150", m.DRAMLatency)
	}
	// Capacity knees: at least the L1 (32K) and one outer-level knee.
	if len(m.CacheSizes) < 2 {
		t.Fatalf("detected knees = %v, want >= 2\n%s", m.CacheSizes, m.Report(cfg))
	}
	if m.CacheSizes[0] > 64<<10 {
		t.Errorf("first knee at %d, want near the 32 KiB L1", m.CacheSizes[0])
	}
	// Sustained single-stream bandwidth sits well below the channel
	// rate — the classic MSHR-limited single-core wall (MSHRs x line /
	// load-to-use latency) — but must be a meaningful fraction of it
	// and never exceed it.
	if m.DRAMBandwidth < 0.2*cfg.Mem.DRAM.BytesPerCycle {
		t.Errorf("bandwidth = %.1f B/cy, want >= 20%% of %.1f",
			m.DRAMBandwidth, cfg.Mem.DRAM.BytesPerCycle)
	}
	if m.DRAMBandwidth > cfg.Mem.DRAM.BytesPerCycle {
		t.Errorf("bandwidth = %.1f B/cy exceeds the %.1f channel",
			m.DRAMBandwidth, cfg.Mem.DRAM.BytesPerCycle)
	}
	wall := float64(cfg.MSHRs) * 64 / m.DRAMLatency
	if m.DRAMBandwidth > wall*1.3 {
		t.Errorf("bandwidth %.1f B/cy exceeds the MSHR wall %.1f", m.DRAMBandwidth, wall)
	}
	// Mispredict penalty in the right ballpark of the configured 16.
	if m.BranchMispredictPenalty < 5 || m.BranchMispredictPenalty > 80 {
		t.Errorf("mispredict penalty = %.1f, configured %d",
			m.BranchMispredictPenalty, cfg.BranchMispredictPenalty)
	}
}

func TestDiscoverLittleCore(t *testing.T) {
	cfg := uarch.LittleCore()
	m := discover(t, cfg)
	if err := m.Validate(cfg); err != nil {
		t.Fatalf("%v\n%s", err, m.Report(cfg))
	}
	if m.PeakIPC > 2.01 {
		t.Errorf("little-core peak IPC = %.2f, cannot exceed 2", m.PeakIPC)
	}
	// The little core's probes must clearly differ from the big core's.
	big := discover(t, uarch.Default())
	if m.PeakIPC >= big.PeakIPC {
		t.Errorf("little peak %.2f should trail big %.2f", m.PeakIPC, big.PeakIPC)
	}
	if m.DRAMBandwidth >= big.DRAMBandwidth {
		t.Errorf("little bandwidth %.1f should trail big %.1f", m.DRAMBandwidth, big.DRAMBandwidth)
	}
}

func TestReportMentionsEverything(t *testing.T) {
	cfg := uarch.Default()
	m := discover(t, cfg)
	rep := m.Report(cfg)
	for _, want := range []string{"peak IPC", "capacity knees", "DRAM latency", "DRAM bandwidth", "mispredict cost"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestDetectKnees(t *testing.T) {
	pts := []LatencyPoint{
		{WorkingSet: 8 << 10, Cycles: 5},
		{WorkingSet: 16 << 10, Cycles: 5.5}, // +10%: no knee
		{WorkingSet: 64 << 10, Cycles: 14},  // knee after 16K
		{WorkingSet: 256 << 10, Cycles: 15},
		{WorkingSet: 1 << 20, Cycles: 15.5},
		{WorkingSet: 4 << 20, Cycles: 40}, // knee after 1M
	}
	knees := detectKnees(pts)
	if len(knees) != 2 || knees[0] != 16<<10 || knees[1] != 1<<20 {
		t.Errorf("knees = %v, want [16K 1M]", knees)
	}
	if got := detectKnees(nil); got != nil {
		t.Errorf("empty input knees = %v", got)
	}
}

func TestValidateCatchesNonsense(t *testing.T) {
	cfg := uarch.Default()
	bad := &Machine{PeakIPC: 9, DRAMLatency: 500, DRAMBandwidth: 1}
	if err := bad.Validate(cfg); err == nil {
		t.Error("impossible peak IPC should fail validation")
	}
	bad2 := &Machine{PeakIPC: 3.8, DRAMLatency: 10, DRAMBandwidth: 1}
	if err := bad2.Validate(cfg); err == nil {
		t.Error("too-low DRAM latency should fail validation")
	}
	bad3 := &Machine{PeakIPC: 3.8, DRAMLatency: 300, DRAMBandwidth: 99}
	if err := bad3.Validate(cfg); err == nil {
		t.Error("impossible bandwidth should fail validation")
	}
}
