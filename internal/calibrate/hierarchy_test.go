package calibrate

import (
	"testing"

	"spire/internal/uarch"
)

func TestDiscoverHierarchyDefaultCore(t *testing.T) {
	hm, err := DiscoverHierarchy(uarch.Default(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hm.PeakIPC < 3 || hm.PeakIPC > 4.1 {
		t.Errorf("peak IPC %.2f outside [3, 4.1] for a 4-wide core", hm.PeakIPC)
	}
	if len(hm.Levels) != 4 {
		t.Fatalf("got %d levels, want 4: %+v", len(hm.Levels), hm.Levels)
	}
	order := []string{"L1", "L2", "L3", "DRAM"}
	for i, l := range hm.Levels {
		if l.Level != order[i] {
			t.Fatalf("level %d is %s, want %s", i, l.Level, order[i])
		}
		if l.BytesPerCycle <= 0 {
			t.Errorf("%s bandwidth %.2f not positive", l.Level, l.BytesPerCycle)
		}
		if i > 0 && l.BytesPerCycle >= hm.Levels[i-1].BytesPerCycle {
			t.Errorf("bandwidths not strictly decreasing: %s %.2f >= %s %.2f",
				l.Level, l.BytesPerCycle, hm.Levels[i-1].Level, hm.Levels[i-1].BytesPerCycle)
		}
	}
	// DRAM streaming can't beat the configured bus width.
	dram := hm.Levels[3].BytesPerCycle
	if bus := float64(uarch.Default().Mem.DRAM.BytesPerCycle); dram > bus {
		t.Errorf("DRAM bandwidth %.2f above the %.0f B/cy bus", dram, bus)
	}
}

func TestHierarchyModel(t *testing.T) {
	hm, err := DiscoverHierarchy(uarch.Default(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SweepSparsity(uarch.Default(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	vw, err := SweepVecWidthMix(uarch.Default(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := hm.Model(sp, vw)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Hierarchy == nil || len(ens.Hierarchy.Levels) != 4 {
		t.Fatalf("model hierarchy: %+v", ens.Hierarchy)
	}
	if len(ens.Hierarchy.Surfaces) != 2 {
		t.Fatalf("got %d surfaces, want 2", len(ens.Hierarchy.Surfaces))
	}
	for _, lv := range ens.Hierarchy.Levels {
		if ens.Rooflines[lv.Metric] == nil {
			t.Errorf("no roofline for level metric %s", lv.Metric)
		}
	}
	if rep := hm.Report(); rep == "" {
		t.Error("empty report")
	}

	// An empty characterization refuses to build a model.
	if _, err := (&HierarchyMachine{}).Model(); err == nil {
		t.Error("empty machine: want error")
	}
}

func TestSweepSurfacesShape(t *testing.T) {
	cfg := uarch.Default()
	sp, err := SweepSparsity(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Points) < 3 {
		t.Fatalf("sparsity surface has %d points", len(sp.Points))
	}
	if sp.Param != "br_misp_retired.all_branches" {
		t.Errorf("sparsity param metric %q", sp.Param)
	}
	// Dense kernels (low mispredict rate) must out-run heavily skipping
	// ones: the first ceiling beats the last.
	first, last := sp.Points[0], sp.Points[len(sp.Points)-1]
	if first.Param >= last.Param {
		t.Errorf("params not ascending: %.4f .. %.4f", first.Param, last.Param)
	}
	if first.Ceiling <= last.Ceiling {
		t.Errorf("sparsity ceiling should fall with mispredict rate: %.2f .. %.2f", first.Ceiling, last.Ceiling)
	}

	vw, err := SweepVecWidthMix(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vw.Points) < 3 {
		t.Fatalf("vec-width surface has %d points", len(vw.Points))
	}
	if vw.Param != "uops_issued.vector_width_mismatch" {
		t.Errorf("vec-width param metric %q", vw.Param)
	}
	first, last = vw.Points[0], vw.Points[len(vw.Points)-1]
	if first.Param != 0 {
		t.Errorf("constant-width probe should have mismatch rate 0, got %.4f", first.Param)
	}
	if first.Ceiling <= last.Ceiling {
		t.Errorf("vec-width ceiling should fall with mismatch rate: %.2f .. %.2f", first.Ceiling, last.Ceiling)
	}
}
