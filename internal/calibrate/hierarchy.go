package calibrate

// Hierarchical machine characterization: per-level deliverable bandwidth
// measured with wrapping line-stride streams sized to each cache level
// (classic hierarchical-roofline practice), plus parameterized-ceiling
// sweeps that train roofline surfaces — the achievable IPC ceiling as a
// function of an observable workload parameter (vector-width mismatch
// rate, sparse-skip mispredict rate). The sweeps read only counters a
// real collection would have, so the trained surfaces transfer to any
// workload whose dataset samples the parameter metric.

import (
	"fmt"
	"sort"

	"spire/internal/core"
	"spire/internal/isa"
	"spire/internal/pmu"
	"spire/internal/sim"
	"spire/internal/uarch"
)

// LevelBandwidth is one memory level's measured streaming bandwidth.
type LevelBandwidth struct {
	// Level names the memory level ("L1".."DRAM").
	Level string
	// WorkingSet is the probe footprint that kept the stream resident in
	// (or past) this level.
	WorkingSet uint64
	// BytesPerCycle is the sustained line bandwidth observed.
	BytesPerCycle float64
}

// HierarchyMachine is the hierarchical characterization: the compute roof
// plus one bandwidth ceiling per memory level.
type HierarchyMachine struct {
	// PeakIPC is the best sustained IPC on independent single-cycle work.
	PeakIPC float64
	// Levels are the measured per-level bandwidths, fastest first.
	Levels []LevelBandwidth
	// LineBytes is the line granularity the bandwidths are measured at.
	LineBytes float64
}

// levelFootprint sizes each level's probe: small enough to stay resident
// in the target level, large enough to overflow the previous one.
var levelFootprint = []struct {
	level string
	ws    uint64
	cold  bool // cold single pass (DRAM) instead of a wrapping stream
}{
	{level: "L1", ws: 16 << 10},
	{level: "L2", ws: 128 << 10},
	{level: "L3", ws: 2 << 20},
	{level: "DRAM", ws: 256 << 20, cold: true},
}

// DiscoverHierarchy measures the stacked per-level bandwidths with
// line-stride load streams: cache levels use a wrapping stream whose
// steady state is served by the target level, DRAM a cold never-wrapping
// one. Only elapsed cycles and load counts are read, as on real hardware.
func DiscoverHierarchy(cfg *uarch.Config, opts Options) (*HierarchyMachine, error) {
	opts.setDefaults()
	hm := &HierarchyMachine{LineBytes: 64}

	run := func(p isa.Program, maxCycles uint64) (sim.Result, error) {
		s, err := sim.New(cfg, p, opts.Seed)
		if err != nil {
			return sim.Result{}, err
		}
		res := s.Run(maxCycles)
		if !res.Drained {
			return res, fmt.Errorf("calibrate: probe %s did not finish in %d cycles", p.Name(), maxCycles)
		}
		return res, nil
	}

	res, err := run(&aluProbe{n: opts.Insts}, 1<<30)
	if err != nil {
		return nil, err
	}
	hm.PeakIPC = res.IPC

	for _, lf := range levelFootprint {
		if lf.ws > opts.MaxWorkingSet && !lf.cold {
			continue
		}
		loads := opts.Insts / 2
		if !lf.cold {
			// Wrap the footprint several times so first-pass cold misses
			// are diluted and the steady state is served by the level.
			if min := 6 * int(lf.ws/64); loads < min {
				loads = min
			}
		}
		p := &streamProbe{loads: loads, ws: lf.ws}
		res, err := run(p, 1<<32)
		if err != nil {
			return nil, err
		}
		hm.Levels = append(hm.Levels, LevelBandwidth{
			Level:         lf.level,
			WorkingSet:    lf.ws,
			BytesPerCycle: float64(loads) * 64 / float64(res.Cycles),
		})
	}
	return hm, nil
}

// Model builds a hierarchical SPIRE ensemble from the characterization:
// one bandwidth roofline per measured level on the standard per-level
// traffic metrics, the level map, and any trained surfaces.
func (hm *HierarchyMachine) Model(surfaces ...core.Surface) (*core.Ensemble, error) {
	if len(hm.Levels) == 0 {
		return nil, fmt.Errorf("calibrate: hierarchy machine has no levels")
	}
	byLevel := make(map[string]LevelBandwidth, len(hm.Levels))
	for _, l := range hm.Levels {
		byLevel[l.Level] = l
	}
	ens := &core.Ensemble{
		Rooflines: make(map[string]*core.Roofline, len(hm.Levels)),
		WorkUnit:  "instructions",
		TimeUnit:  "cycles",
		Hierarchy: &core.HierarchyModel{Surfaces: surfaces},
	}
	for _, lv := range core.DefaultHierarchyLevels() {
		l, ok := byLevel[lv.Level]
		if !ok {
			continue
		}
		r, err := core.BandwidthRoofline(lv.Metric, hm.PeakIPC, l.BytesPerCycle, hm.LineBytes)
		if err != nil {
			return nil, err
		}
		ens.Rooflines[lv.Metric] = r
		ens.Hierarchy.Levels = append(ens.Hierarchy.Levels, lv)
	}
	if err := ens.Hierarchy.Validate(); err != nil {
		return nil, err
	}
	return ens, nil
}

// Report renders the hierarchical characterization.
func (hm *HierarchyMachine) Report() string {
	out := fmt.Sprintf("peak IPC: %.2f\nper-level streaming bandwidth:\n", hm.PeakIPC)
	for _, l := range hm.Levels {
		out += fmt.Sprintf("  %-4s (%6d KiB footprint): %6.1f B/cy\n", l.Level, l.WorkingSet>>10, l.BytesPerCycle)
	}
	return out
}

// --- surface sweeps ----------------------------------------------------

// surfaceFromSamples sorts sweep observations by parameter value,
// collapses duplicate abscissae to the lower ceiling (the conservative
// envelope), and validates the result.
func surfaceFromSamples(name, param string, pts []core.SurfacePoint) (core.Surface, error) {
	if len(pts) == 0 {
		return core.Surface{}, fmt.Errorf("calibrate: surface %s swept no points", name)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Param < pts[j].Param })
	out := pts[:0]
	for _, p := range pts {
		if n := len(out); n > 0 && out[n-1].Param == p.Param {
			if p.Ceiling < out[n-1].Ceiling {
				out[n-1].Ceiling = p.Ceiling
			}
			continue
		}
		out = append(out, p)
	}
	s := core.Surface{Name: name, Param: param, Points: out}
	probe := core.HierarchyModel{
		Levels:   core.DefaultHierarchyLevels(),
		Surfaces: []core.Surface{s},
	}
	if err := probe.Validate(); err != nil {
		return core.Surface{}, err
	}
	return s, nil
}

// SweepVecWidthMix trains the vector-width-mix surface: probes that
// alternate SIMD widths at different rates, each observed as (width-
// mismatch events per instruction, achieved IPC). The resulting ceiling
// falls as the mismatch rate rises.
func SweepVecWidthMix(cfg *uarch.Config, opts Options) (core.Surface, error) {
	opts.setDefaults()
	var pts []core.SurfacePoint
	for _, switchEvery := range []int{0, 16, 8, 4, 2, 1} {
		p := &vecMixProbe{n: opts.Insts, switchEvery: switchEvery}
		s, err := sim.New(cfg, p, opts.Seed)
		if err != nil {
			return core.Surface{}, err
		}
		res := s.Run(1 << 32)
		if !res.Drained {
			return core.Surface{}, fmt.Errorf("calibrate: probe %s did not finish", p.Name())
		}
		c := s.PMU().Snapshot()
		insts := float64(c.Read(pmu.EvInstRetired))
		if insts == 0 {
			return core.Surface{}, fmt.Errorf("calibrate: probe %s retired nothing", p.Name())
		}
		rate := float64(c.Read(pmu.EvVecWidthMismatch)) / insts
		pts = append(pts, core.SurfacePoint{Param: rate, Ceiling: res.IPC})
	}
	return surfaceFromSamples("vec-width-mix", "uops_issued.vector_width_mismatch", pts)
}

// SweepSparsity trains the sparsity surface. Density itself is not a
// counter, so the surface is keyed on its observable signature: the
// skip-branch mispredict rate. Probes run a zero-skipping vector kernel
// at densities from fully dense to nearly empty; each is observed as
// (mispredicts per instruction, achieved IPC).
func SweepSparsity(cfg *uarch.Config, opts Options) (core.Surface, error) {
	opts.setDefaults()
	var pts []core.SurfacePoint
	for _, density := range []float64{1, 0.9, 0.75, 0.5, 0.25, 0.1} {
		p := &sparseProbe{n: opts.Insts, density: density}
		s, err := sim.New(cfg, p, opts.Seed)
		if err != nil {
			return core.Surface{}, err
		}
		res := s.Run(1 << 32)
		if !res.Drained {
			return core.Surface{}, fmt.Errorf("calibrate: probe %s did not finish", p.Name())
		}
		c := s.PMU().Snapshot()
		insts := float64(c.Read(pmu.EvInstRetired))
		if insts == 0 {
			return core.Surface{}, fmt.Errorf("calibrate: probe %s retired nothing", p.Name())
		}
		rate := float64(c.Read(pmu.EvBrMispRetired)) / insts
		pts = append(pts, core.SurfacePoint{Param: rate, Ceiling: res.IPC})
	}
	return surfaceFromSamples("sparsity", "br_misp_retired.all_branches", pts)
}

// vecMixProbe issues vector FMAs whose SIMD width flips between 128 and
// 512 bits every switchEvery instructions (0 = constant width).
type vecMixProbe struct {
	n, switchEvery int
	pos            int
}

func (p *vecMixProbe) Name() string     { return fmt.Sprintf("cal-vecmix-%d", p.switchEvery) }
func (p *vecMixProbe) Reset(seed int64) { p.pos = 0 }
func (p *vecMixProbe) Next() (isa.Inst, bool) {
	if p.pos >= p.n {
		return isa.Inst{}, false
	}
	i := p.pos
	p.pos++
	w := uint16(128)
	if p.switchEvery > 0 && (i/p.switchEvery)%2 == 1 {
		w = 512
	}
	return isa.Inst{PC: 0x5000 + uint64(i%16)*4, Op: isa.OpVecFMA, VecWidth: w, Dst: isa.Reg(16 + i%8)}, true
}

// sparseProbe models a zero-skipping sparse vector kernel: per element a
// load, a data-dependent skip branch (taken = element is zero), and two
// vector FMAs only when the element is nonzero.
type sparseProbe struct {
	n       int
	density float64
	pos     int
	emitted int
	state   uint64
	queue   []isa.Inst
}

func (p *sparseProbe) Name() string { return fmt.Sprintf("cal-sparse-%.2f", p.density) }
func (p *sparseProbe) Reset(seed int64) {
	p.pos, p.emitted = 0, 0
	p.state = uint64(seed)*6364136223846793005 + 1
	p.queue = p.queue[:0]
}

func (p *sparseProbe) rand() float64 {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return float64(p.state>>11) / float64(1<<53)
}

func (p *sparseProbe) Next() (isa.Inst, bool) {
	if len(p.queue) == 0 {
		if p.emitted >= p.n {
			return isa.Inst{}, false
		}
		addr := 0x30000000 + uint64(p.pos)*8%(4<<20)
		p.pos++
		skip := p.rand() >= p.density
		p.queue = append(p.queue,
			isa.Inst{PC: 0x6000, Op: isa.OpLoad, Dst: 1, Size: 8, Addr: addr},
			isa.Inst{PC: 0x6004, Op: isa.OpBranch, Taken: skip, Target: 0x6010},
		)
		if !skip {
			p.queue = append(p.queue,
				isa.Inst{PC: 0x6008, Op: isa.OpVecFMA, VecWidth: 256, Dst: 17, Src1: 17},
				isa.Inst{PC: 0x600c, Op: isa.OpVecFMA, VecWidth: 256, Dst: 18, Src1: 18},
			)
		}
	}
	in := p.queue[0]
	p.queue = p.queue[1:]
	p.emitted++
	return in, true
}
