package perfstat

import (
	"math"
	"testing"

	"spire/internal/isa"
	"spire/internal/pmu"
	"spire/internal/sim"
	"spire/internal/uarch"
)

// steadyProgram is a uniform instruction stream so that multiplexing
// scaling should be nearly unbiased.
type steadyProgram struct {
	n   int
	pos int
}

func (p *steadyProgram) Name() string     { return "steady" }
func (p *steadyProgram) Reset(seed int64) { p.pos = 0 }
func (p *steadyProgram) Next() (isa.Inst, bool) {
	if p.pos >= p.n {
		return isa.Inst{}, false
	}
	pc := 0x1000 + uint64(p.pos%64)*4
	p.pos++
	return isa.Inst{PC: pc, Op: isa.OpIntALU, Dst: isa.Reg(1 + p.pos%8)}, true
}

func newSim(t *testing.T, n int) *sim.Sim {
	t.Helper()
	s, err := sim.New(uarch.Default(), &steadyProgram{n: n}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCollectBasic(t *testing.T) {
	s := newSim(t, 200_000)
	data, rep, err := Collect(s, "steady", Options{IntervalCycles: 10_000, Multiplex: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drained {
		t.Error("program should drain")
	}
	if rep.Intervals == 0 || rep.Samples == 0 {
		t.Fatalf("no samples: %+v", rep)
	}
	if data.Len() != rep.Samples {
		t.Errorf("dataset %d != reported samples %d", data.Len(), rep.Samples)
	}
	// Every metric event appears.
	metrics := data.Metrics()
	if len(metrics) != len(pmu.MetricEvents()) {
		t.Errorf("sampled %d metrics, want %d", len(metrics), len(pmu.MetricEvents()))
	}
	// Samples must be structurally valid with shared T/W per interval.
	for _, smp := range data.Samples {
		if !smp.Valid() {
			t.Fatalf("invalid sample: %v", smp)
		}
	}
	if rep.GroupSwitches == 0 || rep.OverheadFraction <= 0 {
		t.Errorf("multiplexing accounting missing: %+v", rep)
	}
}

func TestCollectScalingUnbiasedOnSteadyStream(t *testing.T) {
	// Oracle run.
	sOracle := newSim(t, 400_000)
	oracle, _, err := Collect(sOracle, "steady", Options{IntervalCycles: 20_000, Multiplex: false})
	if err != nil {
		t.Fatal(err)
	}
	// Multiplexed run.
	sMux := newSim(t, 400_000)
	mux, _, err := Collect(sMux, "steady", Options{IntervalCycles: 20_000, Multiplex: true})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the per-cycle rate of a steady event (uops_issued.any is
	// near-constant per cycle here) between oracle and multiplexed runs;
	// rotation means a metric may skip intervals, so totals are not
	// directly comparable but rates must agree.
	const ev = "uops_issued.any"
	var oM, oT, mM, mT float64
	for _, s := range oracle.Samples {
		if s.Metric == ev {
			oM += s.M
			oT += s.T
		}
	}
	for _, s := range mux.Samples {
		if s.Metric == ev {
			mM += s.M
			mT += s.T
		}
	}
	if oM == 0 || mT == 0 {
		t.Fatal("missing samples for uops_issued.any")
	}
	oRate, mRate := oM/oT, mM/mT
	rel := math.Abs(oRate-mRate) / oRate
	if rel > 0.10 {
		t.Errorf("multiplexing bias %.1f%% on a steady stream (oracle %.3f/cy, mux %.3f/cy)", 100*rel, oRate, mRate)
	}
}

func TestCollectSubsetOfEvents(t *testing.T) {
	s := newSim(t, 100_000)
	data, _, err := Collect(s, "steady", Options{
		Events:         []pmu.EventID{pmu.EvDSBUops, pmu.EvBrMispRetired},
		IntervalCycles: 10_000,
		Multiplex:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := data.Metrics()
	if len(m) != 2 {
		t.Fatalf("metrics = %v, want 2", m)
	}
}

func TestCollectRejectsFixedCounter(t *testing.T) {
	s := newSim(t, 10_000)
	_, _, err := Collect(s, "steady", Options{Events: []pmu.EventID{pmu.EvCycles}, Multiplex: true})
	if err == nil {
		t.Error("expected error for fixed counter as metric")
	}
}

func TestCollectRejectsBadEventID(t *testing.T) {
	s := newSim(t, 10_000)
	_, _, err := Collect(s, "steady", Options{Events: []pmu.EventID{pmu.NumEvents + 5}, Multiplex: true})
	if err == nil {
		t.Error("expected error for out-of-range event")
	}
}

func TestCollectTooShortProgram(t *testing.T) {
	s := newSim(t, 10)
	_, _, err := Collect(s, "steady", Options{IntervalCycles: 1_000_000, Multiplex: true})
	// A tiny program still completes an (early-terminated) interval, so
	// either outcome must be sane: error or non-empty data.
	if err != nil {
		t.Logf("short program: %v (acceptable)", err)
	}
}

func TestCollectMaxCyclesCap(t *testing.T) {
	s := newSim(t, 10_000_000)
	_, rep, err := Collect(s, "steady", Options{IntervalCycles: 10_000, MaxCycles: 50_000, Multiplex: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drained {
		t.Error("run should have been capped")
	}
	if rep.Cycles > 60_000 {
		t.Errorf("cycles = %d, want <= cap (+1 interval)", rep.Cycles)
	}
}

func TestSharedTWAcrossMetrics(t *testing.T) {
	s := newSim(t, 150_000)
	data, _, err := Collect(s, "steady", Options{IntervalCycles: 15_000, Multiplex: true})
	if err != nil {
		t.Fatal(err)
	}
	// All samples within one interval share (T, W): count distinct pairs
	// and compare with interval count.
	type tw struct{ t, w float64 }
	pairs := make(map[tw]bool)
	for _, smp := range data.Samples {
		pairs[tw{smp.T, smp.W}] = true
	}
	// Distinct (T, W) pairs should be about one per interval, far fewer
	// than the number of samples.
	if len(pairs)*3 > data.Len() {
		t.Errorf("T/W not shared: %d distinct pairs for %d samples", len(pairs), data.Len())
	}
}
