package perfstat

import (
	"errors"

	"spire/internal/core"
	"spire/internal/pmu"
	"spire/internal/sim"
)

// Scheduler-event collection. Counter samples are multiplexed and
// scaled (perfstat.go); scheduler events are not — perf records every
// one — so collection here is a faithful conversion from the
// simulator's compact log to the serialized core form, with window
// numbers assigned by the same interval convention Collect uses
// (1-based, IntervalCycles wide).

// ConvertSched converts a scheduler event log to its serialized form.
// intervalCycles > 0 assigns 1-based window numbers by timestamp;
// 0 leaves windows unset.
func ConvertSched(events []pmu.SchedEvent, intervalCycles uint64) []core.SchedEvent {
	if len(events) == 0 {
		return nil
	}
	out := make([]core.SchedEvent, 0, len(events))
	for _, ev := range events {
		window := 0
		if intervalCycles > 0 {
			window = int(ev.Cycle/intervalCycles) + 1
		}
		out = append(out, core.SchedEvent{
			Time:   float64(ev.Cycle),
			Class:  ev.Class.Name(),
			Thread: ev.Thread,
			Hart:   max(ev.Hart, 0),
			Obj:    ev.Obj,
			Waker:  ev.Waker,
			Window: window,
		})
	}
	return out
}

// CollectMT runs the multi-hart scheduler simulation to completion (or
// maxCycles) and returns a dataset carrying its scheduler events plus
// the run result. The dataset has no counter samples: scheduler-level
// simulation does not model per-metric counters, and datasets merge, so
// callers combine it with a counter dataset when they want both halves.
func CollectMT(m *sim.MTSim, maxCycles, intervalCycles uint64) (core.Dataset, sim.MTResult, error) {
	res, err := m.Run(maxCycles)
	if err != nil {
		return core.Dataset{}, res, err
	}
	if len(res.Events) == 0 {
		return core.Dataset{}, res, errors.New("perfstat: run emitted no scheduler events")
	}
	var ds core.Dataset
	ds.AddSched(ConvertSched(res.Events, intervalCycles)...)
	return ds, res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
