// Package perfstat samples the simulated core's performance counters the
// way Linux `perf stat` samples a real PMU (paper §IV, "Sample
// collection"): work (W) and time (T) come from always-on fixed counters,
// while metric events share a small number of programmable counters
// through time multiplexing, with observed deltas scaled up by the
// enabled/running ratio.
//
// Each sampling interval (the analogue of the paper's 2-second period)
// yields one core.Sample per metric event: (T, W, M_x) with T and W
// measured over the full interval and M_x estimated from the event's
// multiplexing slice.
package perfstat

import (
	"errors"
	"fmt"

	"spire/internal/core"
	"spire/internal/pmu"
	"spire/internal/sim"
)

// Options configures sample collection.
type Options struct {
	// Events lists the metric events to sample; nil means all non-fixed
	// registry events.
	Events []pmu.EventID
	// GroupSize is the number of programmable counters, i.e. how many
	// metric events can be counted simultaneously. Defaults to 4, the
	// per-thread general-counter budget of the modeled core.
	GroupSize int
	// IntervalCycles is the sampling interval; one sample per metric is
	// emitted per interval. Defaults to 100 000 cycles.
	IntervalCycles uint64
	// RotationCycles is the multiplexing slice length: how long one
	// event group stays on the counters before the next is scheduled
	// (perf's timer-driven rotation, much shorter than the reporting
	// interval). Defaults to 2 500 cycles.
	RotationCycles uint64
	// MaxCycles caps the run; zero means run to program completion
	// (callers should cap indirectly via program length).
	MaxCycles uint64
	// SwitchOverheadCycles models the perf-stat reprogramming cost per
	// group rotation; it is accounted (for the overhead experiment), not
	// simulated. The default of 40 cycles per 2.5k-cycle rotation lands
	// near the paper's reported 1.6% average overhead.
	SwitchOverheadCycles uint64
	// Multiplex enables counter multiplexing. When false the sampler
	// behaves like an oracle PMU that counts every event all the time
	// (used by the multiplexing ablation).
	Multiplex bool
	// PerturbLines, when positive, models the sampler's cache footprint:
	// that many cache lines are touched through the hierarchy at every
	// group switch, evicting workload data — the measured component of
	// sampling overhead (the overhead experiment compares against an
	// unsampled baseline run).
	PerturbLines int
}

func (o *Options) setDefaults() {
	if len(o.Events) == 0 {
		for _, ev := range pmu.MetricEvents() {
			o.Events = append(o.Events, ev.ID)
		}
	}
	if o.GroupSize <= 0 {
		o.GroupSize = 4
	}
	if o.IntervalCycles == 0 {
		o.IntervalCycles = 100_000
	}
	if o.RotationCycles == 0 {
		o.RotationCycles = 2_500
	}
	if o.SwitchOverheadCycles == 0 {
		o.SwitchOverheadCycles = 40
	}
}

// Report summarizes a collection run.
type Report struct {
	// Workload is the program name.
	Workload string
	// Cycles and Instructions cover the whole run; IPC is their ratio.
	Cycles       uint64
	Instructions uint64
	IPC          float64
	// Intervals is the number of completed sampling intervals.
	Intervals int
	// Samples is the number of samples emitted.
	Samples int
	// GroupSwitches counts counter reprogrammings.
	GroupSwitches int
	// CounterWraps counts per-event 48-bit counter wraparounds recovered
	// while computing deltas (zero on a healthy run; nonzero indicates
	// the PMU readings needed wrap recovery).
	CounterWraps int
	// OverheadFraction estimates the sampling overhead as accounted
	// switch cost over total run time.
	OverheadFraction float64
	// Drained reports whether the program ran to completion.
	Drained bool
}

// Collect runs the simulator, sampling its PMU per opts, and returns the
// sample dataset plus a run report.
func Collect(s *sim.Sim, name string, opts Options) (core.Dataset, Report, error) {
	opts.setDefaults()
	var data core.Dataset
	rep := Report{Workload: name}
	for _, id := range opts.Events {
		if id < 0 || id >= pmu.NumEvents {
			return data, rep, fmt.Errorf("perfstat: event id %d out of range", id)
		}
		if pmu.Describe(id).Fixed {
			return data, rep, fmt.Errorf("perfstat: %s is a fixed counter, not a metric event", pmu.Describe(id).Name)
		}
	}
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 1 << 62
	}

	var groups [][]pmu.EventID
	if opts.Multiplex {
		for i := 0; i < len(opts.Events); i += opts.GroupSize {
			end := i + opts.GroupSize
			if end > len(opts.Events) {
				end = len(opts.Events)
			}
			groups = append(groups, opts.Events[i:end])
		}
	} else {
		groups = [][]pmu.EventID{opts.Events}
	}

	p := s.PMU()
	rotIdx := 0 // persists across intervals so rotation stays fair
	for s.Cycle() < opts.MaxCycles && !s.Done() {
		intervalStart := p.Snapshot()
		startCycle := s.Cycle()
		budget := opts.IntervalCycles
		if rem := opts.MaxCycles - s.Cycle(); rem < budget {
			budget = rem
		}

		type groupObs struct {
			raw     []uint64
			running uint64
		}
		obs := make([]groupObs, len(groups))
		for gi, g := range groups {
			obs[gi] = groupObs{raw: make([]uint64, len(g))}
		}
		// Rotate groups in short slices like perf's timer-driven
		// multiplexing; a group may be scheduled several times per
		// interval, which averages over program phases.
		for {
			elapsed := s.Cycle() - startCycle
			if elapsed >= budget {
				break
			}
			want := opts.RotationCycles
			if rem := budget - elapsed; rem < want {
				want = rem
			}
			gi := rotIdx % len(groups)
			rotIdx++
			before := p.Snapshot()
			ran := s.Step(want)
			after := p.Snapshot()
			d, wraps := after.DeltaWrapped(before)
			rep.CounterWraps += len(wraps)
			o := &obs[gi]
			o.running += ran
			for i, ev := range groups[gi] {
				o.raw[i] += d.Read(ev)
			}
			if opts.Multiplex {
				rep.GroupSwitches++
				if opts.PerturbLines > 0 {
					s.Perturb(opts.PerturbLines)
				}
			}
			if ran < want {
				break // program drained mid-slice
			}
		}

		intervalEnd := p.Snapshot()
		d, wraps := intervalEnd.DeltaWrapped(intervalStart)
		rep.CounterWraps += len(wraps)
		T := d.Read(pmu.EvCycles)
		W := d.Read(pmu.EvInstRetired)
		if T == 0 {
			break
		}
		for gi, g := range groups {
			o := obs[gi]
			if o.running == 0 {
				continue // event group never scheduled this interval
			}
			scale := float64(T) / float64(o.running)
			for i, ev := range g {
				data.Add(core.Sample{
					Metric: pmu.Describe(ev).Name,
					T:      float64(T),
					W:      float64(W),
					M:      float64(o.raw[i]) * scale,
					Window: rep.Intervals + 1,
				})
				rep.Samples++
			}
		}
		rep.Intervals++
	}

	rep.Cycles = s.Cycle()
	rep.Instructions = s.Instructions()
	if rep.Cycles > 0 {
		rep.IPC = float64(rep.Instructions) / float64(rep.Cycles)
	}
	rep.Drained = s.Done()
	if rep.Cycles > 0 {
		oh := float64(uint64(rep.GroupSwitches) * opts.SwitchOverheadCycles)
		rep.OverheadFraction = oh / (oh + float64(rep.Cycles))
	}
	if data.Len() == 0 {
		return data, rep, errors.New("perfstat: no samples collected (program too short for the interval)")
	}
	return data, rep, nil
}
