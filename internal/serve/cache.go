package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"spire/internal/core"
)

// indexCache is a bounded LRU of pre-indexed workloads keyed by the
// content hash of their sample set. Estimation requests that resend the
// same workload (dashboards polling, diff loops, retries) skip the
// group-and-derive indexing pass entirely; the cached *core.WorkloadIndex
// is immutable and shared by concurrent readers. The cache key is
// independent of the served model, so indexes survive model hot-swaps.
type indexCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recent
	items map[string]*list.Element // key -> element whose Value is *cacheEntry
}

type cacheEntry struct {
	key string
	ix  *core.WorkloadIndex
}

// newIndexCache returns an LRU holding at most capacity indexes; a
// non-positive capacity disables caching (every lookup misses).
func newIndexCache(capacity int) *indexCache {
	return &indexCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// workloadKey content-hashes a sample set. Marshaling re-canonicalizes
// the samples, so two requests differing only in JSON whitespace or field
// order share a key.
func workloadKey(samples []core.Sample) (string, error) {
	raw, err := json.Marshal(samples)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// get returns the cached index for key, marking it most recently used.
func (c *indexCache) get(key string) (*core.WorkloadIndex, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).ix, true
}

// put inserts an index, evicting the least recently used entry past
// capacity.
func (c *indexCache) put(key string, ix *core.WorkloadIndex) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).ix = ix
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, ix: ix})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached indexes.
func (c *indexCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
