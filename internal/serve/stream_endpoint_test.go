package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"spire/internal/stream"

	"spire/internal/testutil"
)

// streamIntervalCSV renders one complete interval: fixed counters plus
// the two modeled events (trainModel's m1 and m2).
func streamIntervalCSV(ts int) string {
	return fmt.Sprintf("%d.0,100,,cycles,1,100.00,,\n%d.0,50,,instructions,1,100.00,,\n"+
		"%d.0,10,,m1,1,25.00,,\n%d.0,7,,m2,1,25.00,,\n", ts, ts, ts, ts)
}

// postStream feeds a CSV fragment to /v1/stream and decodes the reply.
func postStream(t *testing.T, url, body string) StreamFeedResponse {
	t.Helper()
	resp, err := http.Post(url+"/v1/stream", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream feed status %d: %s", resp.StatusCode, raw)
	}
	var out StreamFeedResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad feed response %s: %v", raw, err)
	}
	return out
}

// sseFrame is testutil's parsed SSE event with the data payload decoded
// into this suite's stream.Result shape.
type sseFrame struct {
	ID     uint64
	Event  string
	Result stream.Result
}

// sseSubscribe adapts testutil.SSESubscribe: the wire parsing is shared,
// only the payload decoding is suite-specific.
func sseSubscribe(t *testing.T, url, query string) (<-chan sseFrame, func()) {
	t.Helper()
	events, stop := testutil.SSESubscribe(t, url+"/v1/stream"+query, nil)
	frames := make(chan sseFrame, 256)
	go func() {
		defer close(frames)
		for e := range events {
			f := sseFrame{ID: e.ID, Event: e.Event}
			if len(e.Data) > 0 {
				json.Unmarshal(e.Data, &f.Result)
			}
			frames <- f
		}
	}()
	return frames, stop
}

func nextFrame(t *testing.T, frames <-chan sseFrame) sseFrame {
	t.Helper()
	select {
	case f, ok := <-frames:
		if !ok {
			t.Fatal("SSE stream closed early")
		}
		return f
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for SSE frame")
		panic("unreachable")
	}
}

// TestStreamEndpointLive drives the full loop: feed intervals over
// several POSTs (one split mid-line), watch windows arrive over SSE, and
// hot-swap the model mid-stream — the next window must be estimated by
// the new model.
func TestStreamEndpointLive(t *testing.T) {
	s, ts := newTestServer(t, Config{StreamWindow: 2})
	ensA, modelA := testutil.TrainModel(t, 1)
	_, modelB := testutil.TrainModel(t, 3)
	idA, err := ensA.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Models().Load(bytes.NewReader(modelA), "test"); err != nil {
		t.Fatal(err)
	}

	frames, stop := sseSubscribe(t, ts.URL, "")
	defer stop()

	// Interval 1 completes once interval 2's first row arrives — even
	// though that row is split across two POST bodies mid-line.
	fr := postStream(t, ts.URL, streamIntervalCSV(1)+"2.0,100,,cy")
	if fr.Bytes == 0 || fr.Stats.Lines < 4 {
		t.Fatalf("feed response: %+v", fr)
	}
	postStream(t, ts.URL, "cles,1,100.00,,\n2.0,50,,instructions,1,100.00,,\n"+
		"2.0,10,,m1,1,25.00,,\n2.0,7,,m2,1,25.00,,\n")

	first := nextFrame(t, frames)
	if first.Event != "window" || first.ID != 1 || first.Result.Seq != 1 {
		t.Fatalf("first frame: %+v", first)
	}
	if first.Result.Model != idA || first.Result.Error != "" || first.Result.Estimation == nil {
		t.Fatalf("first result: %+v", first.Result)
	}
	if first.Result.Intervals != 1 || first.Result.Samples != 2 {
		t.Fatalf("first window bookkeeping: %+v", first.Result)
	}

	// Hot-swap, then complete interval 2: the new model must serve it.
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", bytes.NewReader(modelB))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(resp)
	var info ModelInfo
	if err := json.Unmarshal(raw, &info); err != nil || resp.StatusCode != 200 {
		t.Fatalf("swap failed: %d %s", resp.StatusCode, raw)
	}
	postStream(t, ts.URL, streamIntervalCSV(3))
	second := nextFrame(t, frames)
	if second.Result.Seq != 2 || second.Result.Model != info.ID {
		t.Fatalf("window after swap: %+v (want model %s)", second.Result, info.ID)
	}
	if second.Result.Intervals != 2 || second.Result.Samples != 4 {
		t.Fatalf("second window bookkeeping: %+v", second.Result)
	}
}

// TestStreamEndpointTop: ?top=N truncates rankings per subscriber.
func TestStreamEndpointTop(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, modelA := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(modelA), "test"); err != nil {
		t.Fatal(err)
	}
	full, stopFull := sseSubscribe(t, ts.URL, "")
	defer stopFull()
	top, stopTop := sseSubscribe(t, ts.URL, "?top=1")
	defer stopTop()

	postStream(t, ts.URL, streamIntervalCSV(1)+streamIntervalCSV(2))
	ff, tf := nextFrame(t, full), nextFrame(t, top)
	if ff.Result.Estimation == nil || len(ff.Result.Estimation.PerMetric) != 2 {
		t.Fatalf("full frame: %+v", ff.Result)
	}
	if tf.Result.Estimation == nil || len(tf.Result.Estimation.PerMetric) != 1 {
		t.Fatalf("top frame: %+v", tf.Result)
	}
	if ff.Result.Estimation.PerMetric[0] != tf.Result.Estimation.PerMetric[0] {
		t.Fatal("truncation changed the ranking head")
	}

	resp, err := http.Get(ts.URL + "/v1/stream?top=x")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad top: status %d (%s)", resp.StatusCode, raw)
	}
}

// TestStreamEndpointNoModel: windows flow before any model is loaded,
// carrying an in-band error instead of an estimation.
func TestStreamEndpointNoModel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	frames, stop := sseSubscribe(t, ts.URL, "")
	defer stop()
	postStream(t, ts.URL, streamIntervalCSV(1)+streamIntervalCSV(2))
	f := nextFrame(t, frames)
	if f.Result.Error != "no model loaded" || f.Result.Estimation != nil || f.Result.Model != "" {
		t.Fatalf("no-model frame: %+v", f.Result)
	}
}

// TestStreamEndpointCloseDetaches: Server.Close ends open SSE streams.
func TestStreamEndpointCloseDetaches(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	frames, stop := sseSubscribe(t, ts.URL, "")
	defer stop()
	s.Close()
	select {
	case _, ok := <-frames:
		if ok {
			t.Fatal("frame after close")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE client not detached by Close")
	}
	resp, err := http.Post(ts.URL+"/v1/stream", "text/csv", strings.NewReader(streamIntervalCSV(1)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := readAll(resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("feed after close: status %d (%s)", resp.StatusCode, raw)
	}
}

// TestStreamEndpointDiagsSurface: parser diagnostics come back on the
// feed that drained them, and stats accumulate across feeders.
func TestStreamEndpointDiagsSurface(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	fr := postStream(t, ts.URL, "garbage line\n"+streamIntervalCSV(1))
	if len(fr.Diags) != 1 || fr.Diags[0].ClassName != "garbled" {
		t.Fatalf("diags: %+v", fr.Diags)
	}
	fr = postStream(t, ts.URL, streamIntervalCSV(2))
	if len(fr.Diags) != 0 {
		t.Fatalf("drained diags resurfaced: %+v", fr.Diags)
	}
	if fr.Stats.Lines != 9 {
		t.Fatalf("stats lines %d, want 9", fr.Stats.Lines)
	}
}

// TestStreamPostUncapped: POST /v1/stream is exempt from MaxBodyBytes —
// its memory is bounded by chunked reads and the hub's drop-oldest queue
// — so a feeder can stream a body far beyond the cap that still 413s the
// batch routes.
func TestStreamPostUncapped(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxBodyBytes: 1024, StreamWindow: 2})
	_, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "test"); err != nil {
		t.Fatal(err)
	}

	var body strings.Builder
	for i := 1; body.Len() <= 8*1024; i++ {
		body.WriteString(streamIntervalCSV(i))
	}
	fr := postStream(t, ts.URL, body.String())
	if fr.Bytes != int64(body.Len()) {
		t.Fatalf("fed %d of %d bytes", fr.Bytes, body.Len())
	}
	if fr.Stats.Intervals == 0 {
		t.Fatalf("no intervals parsed from oversized stream body: %+v", fr.Stats)
	}

	// The cap still guards the batch routes.
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/csv", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := readAll(resp); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("/v1/ingest oversized body status = %d, want 413", resp.StatusCode)
	}
}
