package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"spire/internal/ingest"
	"spire/internal/wire"
)

// StreamFeedResponse is the POST /v1/stream response body.
type StreamFeedResponse struct {
	// Bytes is how much of the request body was fed into the stream.
	Bytes int64 `json:"bytes"`
	// Stats is the hub's cumulative ingestion accounting (all feeders).
	Stats ingest.Stats `json:"stats"`
	// Diags are parser diagnostics newly retained since the last feed
	// that drained them.
	Diags []ingest.Diag `json:"diags,omitempty"`
}

// handleStreamPost pipes the request body into the shared stream hub.
// Bodies may end mid-line or mid-interval: the resumable parser carries
// the fragment over to the next POST, so a feeder can deliver one
// interval per request or stream an endless body — both advance the same
// window. The route is registered without the body-size cap: memory
// stays bounded by the chunked reads here and the hub's drop-oldest
// queue, so the endless case really works.
func (s *Server) handleStreamPost(w http.ResponseWriter, r *http.Request) {
	// Feeders are metered per tenant like any other caller; the
	// concurrency gate is estimation-only, so feeds never wait on it.
	if err := s.adm.Quota(tenantOf(r)); err != nil {
		writeRejected(w, err)
		return
	}
	if isBinMedia(r.Header.Get("Content-Type")) {
		s.handleStreamPostBin(w, r)
		return
	}
	buf := make([]byte, 32<<10)
	var fed int64
	for {
		n, rerr := r.Body.Read(buf)
		if n > 0 {
			fed += int64(n)
			if err := s.hub.Feed(buf[:n]); err != nil {
				writeErr(w, http.StatusServiceUnavailable, "stream closed: %v", err)
				return
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			writeErr(w, http.StatusBadRequest, "reading body: %v", rerr)
			return
		}
	}
	writeJSON(w, http.StatusOK, StreamFeedResponse{
		Bytes: fed,
		Stats: s.hub.Stats(),
		Diags: s.hub.Diags(),
	})
}

// handleStreamPostBin feeds SPB1 MsgSampleBatch frames into the hub:
// each frame is one pre-parsed interval, decoded as soon as its bytes
// are complete (frames may split across reads and requests may carry
// many frames). A malformed or truncated frame fails the request with a
// decode error — never a partial-success 200 — though intervals decoded
// before the bad frame were already fed, exactly as the CSV path feeds
// whole lines preceding a bad one. Buffering is bounded by one frame
// (wire.MaxPayload), so the endless-body contract of the route holds.
func (s *Server) handleStreamPostBin(w http.ResponseWriter, r *http.Request) {
	var (
		acc []byte
		tmp = make([]byte, 32<<10)
		fed int64
	)
	for {
		n, rerr := r.Body.Read(tmp)
		if n > 0 {
			fed += int64(n)
			acc = append(acc, tmp[:n]...)
			consumed := 0
			for {
				size, err := wire.FrameSize(acc[consumed:])
				if err != nil {
					writeErr(w, http.StatusBadRequest, "bad stream frame: %v", err)
					return
				}
				if size == 0 || len(acc)-consumed < size {
					break
				}
				sb, err := wire.DecodeSampleBatch(acc[consumed : consumed+size : consumed+size])
				if err != nil {
					writeErr(w, http.StatusBadRequest, "bad stream frame: %v", err)
					return
				}
				consumed += size
				iv := ingest.Interval{TS: sb.TS, Window: sb.Window, Samples: sb.Samples, Sched: sb.Sched}
				if err := s.hub.FeedInterval(iv); err != nil {
					writeErr(w, http.StatusServiceUnavailable, "stream closed: %v", err)
					return
				}
			}
			if consumed > 0 {
				acc = append(acc[:0], acc[consumed:]...)
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			writeErr(w, http.StatusBadRequest, "reading body: %v", rerr)
			return
		}
	}
	if len(acc) != 0 {
		writeErr(w, http.StatusBadRequest, "truncated frame at end of feed (%d buffered bytes)", len(acc))
		return
	}
	writeJSON(w, http.StatusOK, StreamFeedResponse{
		Bytes: fed,
		Stats: s.hub.Stats(),
		Diags: s.hub.Diags(),
	})
}

// handleStreamGet subscribes the client to the live window stream as
// Server-Sent Events. Each completed window is one `event: window` frame
// whose data is a stream.Result; `id:` carries the window sequence
// number, so a client that reconnects can detect both its own losses
// (Last-Event-ID vs first received id) and backpressure drops mid-stream
// (gaps between consecutive ids). `?top=N` truncates each ranking for
// this subscriber only.
func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	if err := s.adm.Quota(tenantOf(r)); err != nil {
		writeRejected(w, err)
		return
	}
	top := 0
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad top %q", v)
			return
		}
		top = n
	}
	sub := s.hub.Subscribe()
	defer sub.Close()

	// Exempt this long-lived response from the server-wide WriteTimeout:
	// an SSE feed is supposed to outlive any per-response bound. The
	// instrumentation wrapper exposes the real writer via Unwrap; if the
	// transport can't do per-request deadlines (e.g. some test harness),
	// the feed just stays subject to the global timeout.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.hub.Done():
			return
		case res, ok := <-sub.C():
			if !ok {
				return
			}
			raw, err := json.Marshal(res.Truncate(top))
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: window\ndata: %s\n\n", res.Seq, raw); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
