package serve

// Serve-tier tests for the SPB1 binary wire paths: request decoding and
// Accept negotiation on /v1/estimate, and the pre-parsed frame feed on
// POST /v1/stream. Transport-level chaos for the same paths lives in
// internal/client; these pin the handler semantics directly.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"spire/internal/core"
	"spire/internal/testutil"
	"spire/internal/wire"
)

// postRaw sends body with explicit Content-Type and Accept headers.
func postRaw(t *testing.T, url, contentType, accept string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func binEstimateBody(samples []core.Sample) []byte {
	return wire.AppendEstimateRequest(nil, &wire.EstimateRequest{Samples: samples})
}

// TestEstimateBinParity: a binary request with a binary Accept must
// produce a decodable SPB1 response whose estimation is byte-identical
// (as JSON) to the plain JSON route, and repeats must be byte-stable.
func TestEstimateBinParity(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "test"); err != nil {
		t.Fatal(err)
	}
	samples := testutil.Samples()

	resp := testutil.PostJSON(t, ts.URL+"/v1/estimate", EstimateRequest{Samples: samples})
	var jres EstimateResponse
	if err := json.Unmarshal(testutil.ReadBody(t, resp), &jres); err != nil {
		t.Fatal(err)
	}

	resp = postRaw(t, ts.URL+"/v1/estimate", wire.ContentTypeBin, wire.ContentTypeBin, binEstimateBody(samples))
	first := testutil.ReadBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("bin estimate status = %d: %s", resp.StatusCode, first)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeBin {
		t.Fatalf("bin-accepting request answered with Content-Type %q", ct)
	}
	bres, err := wire.DecodeEstimateResponse(first)
	if err != nil {
		t.Fatalf("decoding binary response: %v", err)
	}
	if bres.Model != jres.Model {
		t.Errorf("model ID over bin = %q, over JSON = %q", bres.Model, jres.Model)
	}
	wantJSON, _ := json.Marshal(jres.Estimation)
	gotJSON, _ := json.Marshal(bres.Estimation)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("binary estimation differs from JSON route:\n%s\nvs\n%s", gotJSON, wantJSON)
	}

	// Identical binary request: byte-identical frame, index-cache hit.
	resp = postRaw(t, ts.URL+"/v1/estimate", wire.ContentTypeBin, wire.ContentTypeBin, binEstimateBody(samples))
	if got := resp.Header.Get("X-Spire-Cache"); got != "hit" {
		t.Errorf("second bin request cache header = %q, want hit", got)
	}
	if second := testutil.ReadBody(t, resp); !bytes.Equal(first, second) {
		t.Error("identical binary requests produced different frames")
	}
}

// TestEstimateBinNegotiation: binary responses are strictly opt-in via
// Accept — request encoding and response encoding are independent.
func TestEstimateBinNegotiation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "test"); err != nil {
		t.Fatal(err)
	}
	jsonBody, err := json.Marshal(EstimateRequest{Samples: testutil.Samples()})
	if err != nil {
		t.Fatal(err)
	}
	binBody := binEstimateBody(testutil.Samples())

	cases := []struct {
		name, ct, accept string
		body             []byte
		wantBin          bool
	}{
		{"bin request, no accept", wire.ContentTypeBin, "", binBody, false},
		{"bin request, accept */*", wire.ContentTypeBin, "*/*", binBody, false},
		{"json request, accept bin among others", "application/json",
			"text/html, application/x-spire-bin;q=0.9", jsonBody, true},
		{"bin request, accept bin", wire.ContentTypeBin, wire.ContentTypeBin, binBody, true},
	}
	for _, tc := range cases {
		resp := postRaw(t, ts.URL+"/v1/estimate", tc.ct, tc.accept, tc.body)
		raw := testutil.ReadBody(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", tc.name, resp.StatusCode, raw)
		}
		gotBin := resp.Header.Get("Content-Type") == wire.ContentTypeBin
		if gotBin != tc.wantBin {
			t.Errorf("%s: response Content-Type %q, want bin=%v",
				tc.name, resp.Header.Get("Content-Type"), tc.wantBin)
		}
		if tc.wantBin {
			if _, err := wire.DecodeEstimateResponse(raw); err != nil {
				t.Errorf("%s: undecodable binary response: %v", tc.name, err)
			}
		} else {
			var er EstimateResponse
			if err := json.Unmarshal(raw, &er); err != nil || er.Estimation == nil {
				t.Errorf("%s: bad JSON response (err=%v): %s", tc.name, err, raw)
			}
		}
	}
}

// TestEstimateBinMalformed: damaged or mistyped binary bodies fail with
// a JSON 400/422, never a hang or a misdecoded success.
func TestEstimateBinMalformed(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "test"); err != nil {
		t.Fatal(err)
	}
	valid := binEstimateBody(testutil.Samples())
	wrongType := wire.AppendSampleBatch(nil, &wire.SampleBatch{TS: 1, Window: 1, Samples: testutil.Samples()})

	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"garbage", []byte("not a frame at all"), 400},
		{"truncated frame", valid[:len(valid)-5], 400},
		{"wrong frame type", wrongType, 400},
		{"empty samples", binEstimateBody(nil), 422},
	}
	for _, tc := range cases {
		resp := postRaw(t, ts.URL+"/v1/estimate", wire.ContentTypeBin, "", tc.body)
		raw := testutil.ReadBody(t, resp)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, raw)
		}
		var e errorBody
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body must be JSON, got %s", tc.name, raw)
		}
	}
}

// binInterval renders one complete pre-parsed interval as an SPB1
// SampleBatch frame, with the two modeled metrics (trainModel's m1/m2).
func binInterval(dst []byte, window int) []byte {
	return wire.AppendSampleBatch(dst, &wire.SampleBatch{
		TS:     float64(window),
		Window: window,
		Samples: []core.Sample{
			{Metric: "m1", T: 100, W: 50, M: 10, Window: window},
			{Metric: "m2", T: 100, W: 50, M: 7, Window: window},
		},
	})
}

// postStreamBin feeds raw bytes to POST /v1/stream as SPB1.
func postStreamBin(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	return postRaw(t, url+"/v1/stream", wire.ContentTypeBin, "", body)
}

// TestStreamFeedBin: multi-frame binary feeds advance the hub exactly
// like the CSV path; damaged frames fail the request without crediting
// the broken tail, and frames before the damage still land.
func TestStreamFeedBin(t *testing.T) {
	s, ts := newTestServer(t, Config{StreamWindow: 2})
	_, model := testutil.TrainModel(t, 1)
	if _, err := s.Models().Load(bytes.NewReader(model), "test"); err != nil {
		t.Fatal(err)
	}

	feed := binInterval(nil, 1)
	feed = binInterval(feed, 2)
	resp := postStreamBin(t, ts.URL, feed)
	raw := testutil.ReadBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("clean bin feed status = %d: %s", resp.StatusCode, raw)
	}
	var out StreamFeedResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Bytes != int64(len(feed)) {
		t.Errorf("fed %d bytes, response reports %d", len(feed), out.Bytes)
	}
	if out.Stats.Intervals != 2 || out.Stats.Samples != 4 {
		t.Errorf("stats after clean feed = %+v, want 2 intervals / 4 samples", out.Stats)
	}

	wantFeedErr := func(name string, body []byte, frag string) {
		t.Helper()
		resp := postStreamBin(t, ts.URL, body)
		raw := testutil.ReadBody(t, resp)
		if resp.StatusCode != 400 {
			t.Fatalf("%s: status = %d, want 400 (%s)", name, resp.StatusCode, raw)
		}
		var e errorBody
		if err := json.Unmarshal(raw, &e); err != nil || !strings.Contains(e.Error, frag) {
			t.Errorf("%s: error %s, want JSON containing %q", name, raw, frag)
		}
	}
	good := binInterval(nil, 3)
	cut := binInterval(nil, 4)
	wantFeedErr("truncated tail", append(append([]byte(nil), good...), cut[:len(cut)-7]...),
		"truncated frame")
	wantFeedErr("garbage", []byte("metric,1,2,3\n"), "bad stream frame")
	bad := binInterval(nil, 5)
	bad[4] = 0x7f // corrupt the frame type
	wantFeedErr("corrupt type", bad, "bad stream frame")
	wrongType := binEstimateBody(testutil.Samples())
	wantFeedErr("wrong frame type", wrongType, "bad stream frame")

	// The good frame ahead of the truncated tail landed; the damaged
	// feeds credited nothing else. 2 clean + 1 pre-damage = 3.
	resp = postStreamBin(t, ts.URL, binInterval(nil, 6))
	raw = testutil.ReadBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("follow-up feed status = %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Stats.Intervals != 4 || out.Stats.Samples != 8 {
		t.Errorf("stats after damaged feeds = %+v, want 4 intervals / 8 samples", out.Stats)
	}
}
